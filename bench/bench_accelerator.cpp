// Accelerator-level validation of the paper's performance claim (Sec. VI):
// "The performance gain for Stripes' MAC unit can be derived directly from
// the table because their performance scales almost linearly with the
// saving in effective_bitwidth."
//
// We run the tile-level bit-serial simulator on NiN and ResNet-50 with
// (a) uniform bitwidth sweeps, checking speedup ~ baseline_bits/B, and
// (b) the pipeline-optimized per-layer bitwidths, comparing the measured
// simulator speedup against the effective-bitwidth prediction.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "hw/accelerator_sim.hpp"
#include "io/table.hpp"

namespace {
using namespace mupod;
using namespace mupod::bench;
}  // namespace

int main() {
  print_header("Accelerator simulation — speedup vs effective bitwidth",
               "Sec. VI: performance scales ~linearly with effective_bitwidth (Stripes)");

  for (const char* name : {"nin", "resnet50"}) {
    std::printf("--- %s ---\n\n", name);
    ExperimentConfig cfg;
    cfg.eval_images = 128;
    cfg.profile_images = 16;
    Experiment e = make_experiment(name, cfg);
    const auto& analyzed = e.model.analyzed;
    const AcceleratorConfig accel = AcceleratorConfig::stripes_like();

    // (a) uniform sweep.
    TextTable t({"uniform bits", "sim speedup", "16/B prediction"});
    for (int b : {16, 12, 10, 8, 6, 4}) {
      const std::vector<int> bits(analyzed.size(), b);
      const auto r = simulate_network(accel, e.model.net, analyzed, bits, 16);
      t.add_row({std::to_string(b), TextTable::fmt(r.speedup_vs_baseline, 2),
                 TextTable::fmt(16.0 / b, 2)});
    }
    std::printf("%s\n", t.render_text().c_str());

    // (b) pipeline-optimized bitwidths.
    PipelineConfig pcfg;
    pcfg.harness.profile_images = cfg.profile_images;
    pcfg.harness.eval_images = cfg.eval_images;
  pcfg.harness.metric = cfg.metric;
    pcfg.profiler.points = 8;
    pcfg.profiler.reps_per_point = 1;
    pcfg.sigma.relative_accuracy_drop = 0.01;
    const std::vector<ObjectiveSpec> objectives = {
        objective_mac_energy(e.model.net, analyzed)};
    const PipelineResult r = run_pipeline(const_cast<Network&>(e.harness->net()), analyzed,
                                          *e.dataset, objectives, pcfg);
    const auto& bits = r.objectives[0].alloc.bits;
    const auto sim = simulate_network(accel, e.model.net, analyzed, bits, 16);
    const double eff = effective_bitwidth(objectives[0].rho, bits);
    std::printf("optimized-for-MAC bits: sim speedup = %.2fx, effective bitwidth = %.2f\n",
                sim.speedup_vs_baseline, eff);
    std::printf("linear-scaling prediction 16/effective = %.2fx  (claim: ~equal)\n",
                16.0 / eff);
    int bandwidth_bound = 0;
    for (const auto& l : sim.layers) bandwidth_bound += l.bandwidth_bound ? 1 : 0;
    std::printf("bandwidth-bound layers: %d/%zu (these cap the linear scaling)\n\n",
                bandwidth_bound, sim.layers.size());
  }
  std::printf("expected shape: compute-bound layers track 16/B exactly; the aggregate\n"
              "speedup tracks 16/effective_bitwidth within the bandwidth-bound residue.\n");
  return 0;
}
