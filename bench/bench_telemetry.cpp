// bench_telemetry: bounds the cost of FULL observability on the serving
// path — metrics + tracing + flight recording all enabled at once, against
// everything off — through a loaded InferenceServer.
//
// The telemetry layer (src/obs/telemetry.hpp) only earns its place if
// operators can leave the whole stack on in production: every submit mints
// a trace context and opens an async lane, every batch records dispatch
// events, every resolve deposits a flight-recorder record. This bench
// closed-loops a client fleet through the batcher in both modes,
// alternating per round (min-of-N, same discipline as
// bench_observability), and FAILS (exit 1) when the fully-enabled mode is
// more than 3% slower than the fully-disabled one.
//
// Usage: bench_telemetry [--net NAME] [--requests N] [--clients N]
//                        [--reps N] [--json FILE]
// scripts/run_benchmarks.sh parks the JSON at bench_logs/BENCH_telemetry.json.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "infer/server.hpp"
#include "io/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mupod;

constexpr double kMaxOverheadPct = 3.0;

void set_all(bool on) {
  set_metrics_enabled(on);
  set_tracing_enabled(on);
  set_flight_recording_enabled(on);
}

// One closed-loop round: `clients` threads, one outstanding request each,
// `requests` total, fresh server per round so queue state never leaks
// across modes. Returns wall seconds.
double round_s(const bench::Experiment& e, const std::vector<Tensor>& pool, int clients,
               int requests, std::atomic<std::int64_t>* failures) {
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 2500;
  cfg.max_queue = static_cast<std::size_t>(clients) * 2 + 8;
  InferenceServer server(cfg);
  server.register_model("m", e.model.net, e.model.analyzed);
  server.start();

  std::atomic<int> next{0};
  bench::Stopwatch sw;
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        const InferenceResult res =
            server.submit(Tensor(pool[static_cast<std::size_t>(i) % pool.size()])).get();
        if (res.status != InferStatus::kOk) failures->fetch_add(1);
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  const double s = sw.seconds();
  server.stop();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_name = "tiny";
  std::string json_out;
  int requests = 256;
  int clients = 4;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" && i + 1 < argc) net_name = argv[++i];
    else if (arg == "--requests" && i + 1 < argc) requests = std::atoi(argv[++i]);
    else if (arg == "--clients" && i + 1 < argc) clients = std::atoi(argv[++i]);
    else if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_out = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: bench_telemetry [--net NAME] [--requests N] [--clients N] [--reps N] "
                   "[--json FILE]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (clients < 1) clients = 1;
  if (requests < clients) requests = clients;

  bench::print_header("telemetry overhead: serving path, full observability off vs on",
                      "obs telemetry layer; bound: < 3% through the batcher");

  bench::ExperimentConfig ecfg;
  bench::Experiment e = bench::make_experiment(net_name, ecfg);

  std::vector<Tensor> pool;
  for (int i = 0; i < 32; ++i) {
    Tensor t(Shape({1, e.model.channels, e.model.height, e.model.width}));
    e.dataset->render_image(i, t, 0);
    pool.push_back(std::move(t));
  }

  std::atomic<std::int64_t> failures{0};

  // One untimed warm-up round per mode: pages in caches, registers the
  // lazy instruments, and sizes the tracer/flight-recorder rings so the
  // timed "on" rounds measure steady state.
  set_all(false);
  (void)round_s(e, pool, clients, requests, &failures);
  set_all(true);
  (void)round_s(e, pool, clients, requests, &failures);

  std::vector<double> off_s, on_s;
  for (int r = 0; r < reps; ++r) {
    set_all(false);
    off_s.push_back(round_s(e, pool, clients, requests, &failures));
    set_all(true);
    on_s.push_back(round_s(e, pool, clients, requests, &failures));
  }
  set_all(false);

  const std::int64_t flight_records = flight_recorder().recorded();
  const std::size_t trace_events = tracer().size();

  const double off_min = *std::min_element(off_s.begin(), off_s.end());
  const double on_min = *std::min_element(on_s.begin(), on_s.end());
  const double overhead_pct = off_min > 0.0 ? (on_min / off_min - 1.0) * 100.0 : 0.0;
  const bool served_ok = failures.load() == 0;
  const bool pass = overhead_pct < kMaxOverheadPct && served_ok;

  std::printf("network %s, %d client(s) x %d request(s), %d rep(s) per mode (min-of-N):\n",
              net_name.c_str(), clients, requests, reps);
  std::printf("  observability off     %8.1f ms\n", off_min * 1e3);
  std::printf("  observability on      %8.1f ms  (metrics + tracing + flight recorder)\n",
              on_min * 1e3);
  std::printf("  overhead              %+7.2f %%  (bound %.1f %%)  -> %s\n", overhead_pct,
              kMaxOverheadPct, pass ? "PASS" : "FAIL");
  std::printf("  flight records        %8lld   trace events retained %zu\n",
              static_cast<long long>(flight_records), trace_events);
  if (!served_ok)
    std::printf("  WARNING: %lld request(s) did not resolve ok\n",
                static_cast<long long>(failures.load()));

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "telemetry");
    j.kv("network", net_name);
    j.kv("clients", clients);
    j.kv("requests_per_round", requests);
    j.kv("reps", reps);
    j.kv("serve_off_ms_min", off_min * 1e3);
    j.kv("serve_on_ms_min", on_min * 1e3);
    j.kv("overhead_pct", overhead_pct);
    j.kv("bound_pct", kMaxOverheadPct);
    j.kv("flight_records", flight_records);
    j.kv("trace_events_retained", static_cast<std::int64_t>(trace_events));
    j.kv("failures", failures.load());
    j.kv("pass", pass);
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
