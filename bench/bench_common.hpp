// Shared setup for the experiment-reproduction binaries (one per paper
// table/figure). Each binary prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/harness.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod::bench {

struct Experiment {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  std::unique_ptr<AnalysisHarness> harness;
};

struct ExperimentConfig {
  // 20 synthetic classes: enough for the linear-head classifiers of the
  // calibrated zoo models to reach paper-like top-1 accuracies (40-98%)
  // with genuine decision margins (see DESIGN.md, substitutions).
  int num_classes = 20;
  std::uint64_t model_seed = 1234;
  std::uint64_t data_seed = 42;
  int calibration_images = 16;
  int profile_images = 32;
  int eval_images = 256;
  int batch = 64;
  // The experiment binaries measure accuracy against labels, as the paper
  // does (see AccuracyMetric).
  AccuracyMetric metric = AccuracyMetric::kLabels;
};

inline Experiment make_experiment(const std::string& name, const ExperimentConfig& cfg = {}) {
  Experiment e;
  ZooOptions zo;
  zo.num_classes = cfg.num_classes;
  zo.seed = cfg.model_seed;
  zo.data_seed = cfg.data_seed;
  zo.calibration_images = cfg.calibration_images;
  e.model = build_model(name, zo);

  DatasetConfig dc;
  dc.num_classes = cfg.num_classes;
  dc.channels = e.model.channels;
  dc.height = e.model.height;
  dc.width = e.model.width;
  dc.seed = cfg.data_seed;
  e.dataset = std::make_unique<SyntheticImageDataset>(dc);

  HarnessConfig hc;
  hc.profile_images = cfg.profile_images;
  hc.eval_images = cfg.eval_images;
  hc.batch = cfg.batch;
  hc.metric = cfg.metric;
  e.harness = std::make_unique<AnalysisHarness>(e.model.net, e.model.analyzed, *e.dataset, hc);
  return e;
}

class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==========================================================================\n");
  std::printf("mupod-cpp reproduction | %s\n", experiment);
  std::printf("paper reference        | %s\n", paper_ref);
  std::printf("==========================================================================\n\n");
}

}  // namespace mupod::bench
