// Fig. 3 reproduction (AlexNet):
//   left  — classification accuracy vs sigma_{Y_L} under the two error
//           injection schemes (equal_scheme and gaussian_approx), with the
//           worst-case variation over corner xi assignments (xi_K = 0.8)
//           as "error bars", and the Eq. 7 approximation check;
//   right — the final-layer error histogram against a perfect N(0,1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/profiler.hpp"
#include "core/sigma_search.hpp"
#include "io/table.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace {

using namespace mupod;
using namespace mupod::bench;

}  // namespace

int main() {
  print_header("Fig. 3 — accuracy vs sigma_YL; output-error normality",
               "Sec. V-C, Fig. 3 (AlexNet, equal_scheme vs gaussian_approx)");

  ExperimentConfig cfg;
  cfg.eval_images = 192;
  Experiment e = make_experiment("alexnet", cfg);
  const std::size_t L = e.model.analyzed.size();

  ProfilerConfig pc;
  pc.points = 10;
  pc.reps_per_point = 2;
  const auto models = profile_lambda_theta(*e.harness, pc);

  // --- left panel: accuracy vs sigma under both schemes -------------------
  std::printf("accuracy vs sigma_YL (%zu-layer AlexNet, %d eval images, 2 reps/point)\n\n",
              L, cfg.eval_images);
  TextTable table({"sigma_YL", "equal_scheme", "gaussian_approx", "corner_xi_range",
                   "eq7_sigma_err"});

  const std::vector<double> sweep = {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
  const std::vector<double> equal_xi(L, 1.0 / static_cast<double>(L));
  for (double sigma : sweep) {
    double acc_equal = 0.0, acc_gauss = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      acc_equal +=
          accuracy_for_sigma(*e.harness, models, sigma, AccuracyScheme::kEqualInjection, rep);
      acc_gauss +=
          accuracy_for_sigma(*e.harness, models, sigma, AccuracyScheme::kGaussianOutput, rep);
    }
    acc_equal /= 2.0;
    acc_gauss /= 2.0;

    // Corner cases: xi_K = 0.8 on one layer, rest share 0.2 (paper's
    // worst-possible-variation probe; the black error bars).
    double corner_min = 1.0, corner_max = 0.0;
    for (std::size_t big = 0; big < L; ++big) {
      std::vector<double> xi(L, 0.2 / static_cast<double>(L - 1));
      xi[big] = 0.8;
      const auto inject = injection_for_xi(models, sigma, xi);
      const double acc = e.harness->accuracy_with_injection(inject);
      corner_min = std::min(corner_min, acc);
      corner_max = std::max(corner_max, acc);
    }

    // Eq. 7 consistency: measured output sigma under equal_scheme vs target.
    const double measured =
        e.harness->output_sigma_for_injection_map(injection_for_xi(models, sigma, equal_xi));
    const double eq7_err = std::fabs(measured - sigma) / sigma;

    table.add_row({TextTable::fmt(sigma, 3), TextTable::fmt(acc_equal, 4),
                   TextTable::fmt(acc_gauss, 4),
                   "[" + TextTable::fmt(corner_min, 3) + ", " + TextTable::fmt(corner_max, 3) + "]",
                   TextTable::fmt(eq7_err * 100, 1) + "%"});
  }
  std::printf("%s\n", table.render_text().c_str());
  std::printf("paper: both schemes track each other; corner-xi variation tolerable while\n"
              "       accuracy loss < 5%%; eq.7 sigma approximation error < 5%% (500 imgs).\n\n");

  // --- right panel: final-layer error distribution vs N(0,1) --------------
  std::printf("final-layer error histogram under equal_scheme targeting sigma_YL = 0.5\n\n");
  const auto inject = injection_for_xi(models, 0.5, equal_xi);
  std::vector<float> errors;
  for (int rep = 0; rep < 16; ++rep) {
    const auto chunk = e.harness->output_errors_for_injection(inject, rep);
    errors.insert(errors.end(), chunk.begin(), chunk.end());
  }
  RunningStats rs;
  std::vector<double> derr;
  derr.reserve(errors.size());
  for (float v : errors) {
    rs.add(v);
    derr.push_back(v);
  }
  // Normalize to the measured scale before comparing against N(0,1).
  const double sd = rs.stddev();
  for (double& v : derr) v /= sd;

  Histogram hist(-4.0, 4.0, 33);
  for (double v : derr) hist.add(v);
  std::printf("%s\n", hist.render(56).c_str());
  std::printf("samples = %zu | mean = %.2e | s.d. = %.4f (target 0.5; ratio %.2f)\n",
              errors.size(), rs.mean(), sd, sd / 0.5);
  std::printf("KS statistic vs N(0,1) of normalized errors = %.4f\n",
              ks_statistic_vs_normal(derr, 0.0, 1.0));
  std::printf("paper: histogram matches N(0,1); s.d. = 0.99, mean = 7e-5 on 5e5 samples\n");
  return 0;
}
