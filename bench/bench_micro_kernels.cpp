// Microbenchmarks (google-benchmark) of the kernels behind the experiment
// harness: convolution, inner product, quantization, injection, and the
// partial-forward machinery that makes profiling affordable. These support
// the timing claims in bench_timing_resnet152.
#include <benchmark/benchmark.h>

#include <memory>

#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "quant/fixed_point.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace mupod;

Tensor random_tensor(const Shape& s, std::uint64_t seed) {
  Tensor t(s);
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.gaussian());
  return t;
}

Shape out_of(const Layer& layer, const Shape& in) {
  const Shape shapes[1] = {in};
  return layer.output_shape(shapes);
}

void BM_Conv3x3(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  Conv2DLayer::Config cfg;
  cfg.in_channels = channels;
  cfg.out_channels = channels;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  Conv2DLayer conv(cfg);
  Rng rng(1);
  for (std::int64_t i = 0; i < conv.mutable_weights()->numel(); ++i)
    (*conv.mutable_weights())[i] = static_cast<float>(rng.gaussian());

  const Tensor x = random_tensor(Shape({4, channels, 16, 16}), 2);
  Tensor y(out_of(conv, x.shape()));
  const Tensor* ins[1] = {&x};
  for (auto _ : state) {
    conv.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
  const Shape shapes[1] = {x.shape()};
  state.SetItemsProcessed(state.iterations() * conv.cost(shapes).macs * 4);
}
BENCHMARK(BM_Conv3x3)->Arg(16)->Arg(64);

void BM_DepthwiseConv(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  Conv2DLayer::Config cfg;
  cfg.in_channels = channels;
  cfg.out_channels = channels;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  cfg.groups = channels;
  Conv2DLayer conv(cfg);
  const Tensor x = random_tensor(Shape({4, channels, 16, 16}), 3);
  Tensor y(out_of(conv, x.shape()));
  const Tensor* ins[1] = {&x};
  for (auto _ : state) {
    conv.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DepthwiseConv)->Arg(64);

// Contested shapes for the Conv2D use_gemm gate (src/nn/conv.cpp): shapes
// near the measured direct/GEMM crossover, runnable under both paths via
// set_gemm_mode. Re-run these (plus the K x icg x ocg x HW sweep described
// in docs/method.md §11) before changing the gate constants.
//   args: ocg, K, HW, mode (0 = legacy scalar paths, 1 = blocked GEMM)
void BM_ConvCrossover(benchmark::State& state) {
  const int ocg = static_cast<int>(state.range(0));
  const int K = static_cast<int>(state.range(1));
  const int HW = static_cast<int>(state.range(2));
  const GemmMode mode = state.range(3) == 0 ? GemmMode::kLegacy : GemmMode::kBlocked;
  const int groups = 4;  // grouped, so ocg stays small while the layer is real
  Conv2DLayer::Config cfg;
  cfg.in_channels = 8 * groups;
  cfg.out_channels = ocg * groups;
  cfg.kernel_h = cfg.kernel_w = K;
  cfg.pad = K / 2;
  cfg.groups = groups;
  Conv2DLayer conv(cfg);
  Rng rng(9);
  for (std::int64_t i = 0; i < conv.mutable_weights()->numel(); ++i)
    (*conv.mutable_weights())[i] = static_cast<float>(rng.gaussian());

  const Tensor x = random_tensor(Shape({1, cfg.in_channels, HW, HW}), 10);
  Tensor y(out_of(conv, x.shape()));
  const Tensor* ins[1] = {&x};
  const GemmMode saved = gemm_mode();
  set_gemm_mode(mode);
  for (auto _ : state) {
    conv.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_gemm_mode(saved);
  const Shape shapes[1] = {x.shape()};
  state.SetItemsProcessed(state.iterations() * conv.cost(shapes).macs);
}
BENCHMARK(BM_ConvCrossover)
    // Pointwise, few output channels: GEMM wins from ocg >= 2.
    ->Args({2, 1, 16, 0})
    ->Args({2, 1, 16, 1})
    // 3x3 at the ocg == 3 boundary: GEMM wins everywhere measured.
    ->Args({3, 3, 16, 0})
    ->Args({3, 3, 16, 1})
    // 5x5 at ocg == 3: break-even at 8x8 (gate keeps direct), GEMM past 16x16.
    ->Args({3, 5, 8, 0})
    ->Args({3, 5, 8, 1})
    ->Args({3, 5, 16, 0})
    ->Args({3, 5, 16, 1})
    // Comfortably past the crossover: the common zoo shape.
    ->Args({16, 3, 16, 0})
    ->Args({16, 3, 16, 1});

void BM_InnerProduct(benchmark::State& state) {
  InnerProductLayer fc(1024, 256);
  Rng rng(4);
  for (std::int64_t i = 0; i < fc.mutable_weights()->numel(); ++i)
    (*fc.mutable_weights())[i] = static_cast<float>(rng.gaussian());
  const Tensor x = random_tensor(Shape({16, 1024}), 5);
  Tensor y(out_of(fc, x.shape()));
  const Tensor* ins[1] = {&x};
  for (auto _ : state) {
    fc.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 16LL * 1024 * 256);
}
BENCHMARK(BM_InnerProduct);

void BM_QuantizeTensor(benchmark::State& state) {
  Tensor t = random_tensor(Shape({1 << 16}), 6);
  const FixedPointFormat fmt{.integer_bits = 4, .fraction_bits = 6};
  for (auto _ : state) {
    Tensor copy = t;
    quantize_tensor(copy, fmt);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_QuantizeTensor);

void BM_UniformInjection(benchmark::State& state) {
  Tensor t = random_tensor(Shape({1 << 16}), 7);
  const InjectionSpec spec = InjectionSpec::uniform(0.01);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Tensor copy = t;
    apply_injection(copy, spec, ++seed, 3);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_UniformInjection);

// Full forward vs partial forward-from on a deep network: the speedup that
// makes 156-layer profiling tractable.
void BM_FullForward_ResNet50(benchmark::State& state) {
  static ZooModel model = [] {
    ZooOptions opts;
    opts.calibration_images = 4;
    return build_resnet50(opts);
  }();
  const Tensor x = random_tensor(Shape({4, 3, 32, 32}), 8);
  for (auto _ : state) {
    Tensor y = model.net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FullForward_ResNet50);

void BM_PartialForward_ResNet50_LastQuarter(benchmark::State& state) {
  static ZooModel model = [] {
    ZooOptions opts;
    opts.calibration_images = 4;
    return build_resnet50(opts);
  }();
  const Tensor x = random_tensor(Shape({4, 3, 32, 32}), 8);
  const std::vector<Tensor> cache = model.net.forward_all(x);
  const int from = model.net.num_nodes() * 3 / 4;
  for (auto _ : state) {
    Tensor y = model.net.forward_from(from, cache);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_PartialForward_ResNet50_LastQuarter);

}  // namespace

BENCHMARK_MAIN();
