// Microbenchmarks (google-benchmark) of the kernels behind the experiment
// harness: convolution, inner product, quantization, injection, and the
// partial-forward machinery that makes profiling affordable. These support
// the timing claims in bench_timing_resnet152.
//
// Two modes share this binary:
//   * default: the google-benchmark suite below (pass-through CLI);
//   * --json FILE [--reps N]: a roofline sweep of the tensor/kernels/
//     micro-kernels — per kernel x available ISA, min-of-N GFLOPS / GOPS /
//     Gelem/s achieved vs a theoretical single-port-model peak for that
//     ISA, emitted as BENCH_micro_kernels.json by scripts/run_benchmarks.sh.
//   * --print-isa: print the dispatched kernel ISA name and exit (the
//     bench runner stamps it into BENCH_manifest.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "io/json_writer.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "quant/fixed_point.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"
#include "tensor/qgemm.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace mupod;

Tensor random_tensor(const Shape& s, std::uint64_t seed) {
  Tensor t(s);
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.gaussian());
  return t;
}

Shape out_of(const Layer& layer, const Shape& in) {
  const Shape shapes[1] = {in};
  return layer.output_shape(shapes);
}

void BM_Conv3x3(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  Conv2DLayer::Config cfg;
  cfg.in_channels = channels;
  cfg.out_channels = channels;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  Conv2DLayer conv(cfg);
  Rng rng(1);
  for (std::int64_t i = 0; i < conv.mutable_weights()->numel(); ++i)
    (*conv.mutable_weights())[i] = static_cast<float>(rng.gaussian());

  const Tensor x = random_tensor(Shape({4, channels, 16, 16}), 2);
  Tensor y(out_of(conv, x.shape()));
  const Tensor* ins[1] = {&x};
  for (auto _ : state) {
    conv.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
  const Shape shapes[1] = {x.shape()};
  state.SetItemsProcessed(state.iterations() * conv.cost(shapes).macs * 4);
}
BENCHMARK(BM_Conv3x3)->Arg(16)->Arg(64);

void BM_DepthwiseConv(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  Conv2DLayer::Config cfg;
  cfg.in_channels = channels;
  cfg.out_channels = channels;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  cfg.groups = channels;
  Conv2DLayer conv(cfg);
  const Tensor x = random_tensor(Shape({4, channels, 16, 16}), 3);
  Tensor y(out_of(conv, x.shape()));
  const Tensor* ins[1] = {&x};
  for (auto _ : state) {
    conv.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DepthwiseConv)->Arg(64);

// Contested shapes for the Conv2D use_gemm gate (src/nn/conv.cpp): shapes
// near the measured direct/GEMM crossover, runnable under both paths via
// set_gemm_mode. Re-run these (plus the K x icg x ocg x HW sweep described
// in docs/method.md §11) before changing the gate constants.
//   args: ocg, K, HW, mode (0 = legacy scalar paths, 1 = blocked GEMM)
void BM_ConvCrossover(benchmark::State& state) {
  const int ocg = static_cast<int>(state.range(0));
  const int K = static_cast<int>(state.range(1));
  const int HW = static_cast<int>(state.range(2));
  const GemmMode mode = state.range(3) == 0 ? GemmMode::kLegacy : GemmMode::kBlocked;
  const int groups = 4;  // grouped, so ocg stays small while the layer is real
  Conv2DLayer::Config cfg;
  cfg.in_channels = 8 * groups;
  cfg.out_channels = ocg * groups;
  cfg.kernel_h = cfg.kernel_w = K;
  cfg.pad = K / 2;
  cfg.groups = groups;
  Conv2DLayer conv(cfg);
  Rng rng(9);
  for (std::int64_t i = 0; i < conv.mutable_weights()->numel(); ++i)
    (*conv.mutable_weights())[i] = static_cast<float>(rng.gaussian());

  const Tensor x = random_tensor(Shape({1, cfg.in_channels, HW, HW}), 10);
  Tensor y(out_of(conv, x.shape()));
  const Tensor* ins[1] = {&x};
  const GemmMode saved = gemm_mode();
  set_gemm_mode(mode);
  for (auto _ : state) {
    conv.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
  set_gemm_mode(saved);
  const Shape shapes[1] = {x.shape()};
  state.SetItemsProcessed(state.iterations() * conv.cost(shapes).macs);
}
BENCHMARK(BM_ConvCrossover)
    // Pointwise, few output channels: GEMM wins from ocg >= 2.
    ->Args({2, 1, 16, 0})
    ->Args({2, 1, 16, 1})
    // 3x3 at the ocg == 3 boundary: GEMM wins everywhere measured.
    ->Args({3, 3, 16, 0})
    ->Args({3, 3, 16, 1})
    // 5x5 at ocg == 3: break-even at 8x8 (gate keeps direct), GEMM past 16x16.
    ->Args({3, 5, 8, 0})
    ->Args({3, 5, 8, 1})
    ->Args({3, 5, 16, 0})
    ->Args({3, 5, 16, 1})
    // Comfortably past the crossover: the common zoo shape.
    ->Args({16, 3, 16, 0})
    ->Args({16, 3, 16, 1});

void BM_InnerProduct(benchmark::State& state) {
  InnerProductLayer fc(1024, 256);
  Rng rng(4);
  for (std::int64_t i = 0; i < fc.mutable_weights()->numel(); ++i)
    (*fc.mutable_weights())[i] = static_cast<float>(rng.gaussian());
  const Tensor x = random_tensor(Shape({16, 1024}), 5);
  Tensor y(out_of(fc, x.shape()));
  const Tensor* ins[1] = {&x};
  for (auto _ : state) {
    fc.forward(ins, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 16LL * 1024 * 256);
}
BENCHMARK(BM_InnerProduct);

void BM_QuantizeTensor(benchmark::State& state) {
  Tensor t = random_tensor(Shape({1 << 16}), 6);
  const FixedPointFormat fmt{.integer_bits = 4, .fraction_bits = 6};
  for (auto _ : state) {
    Tensor copy = t;
    quantize_tensor(copy, fmt);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_QuantizeTensor);

void BM_UniformInjection(benchmark::State& state) {
  Tensor t = random_tensor(Shape({1 << 16}), 7);
  const InjectionSpec spec = InjectionSpec::uniform(0.01);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Tensor copy = t;
    apply_injection(copy, spec, ++seed, 3);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_UniformInjection);

// Full forward vs partial forward-from on a deep network: the speedup that
// makes 156-layer profiling tractable.
void BM_FullForward_ResNet50(benchmark::State& state) {
  static ZooModel model = [] {
    ZooOptions opts;
    opts.calibration_images = 4;
    return build_resnet50(opts);
  }();
  const Tensor x = random_tensor(Shape({4, 3, 32, 32}), 8);
  for (auto _ : state) {
    Tensor y = model.net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FullForward_ResNet50);

void BM_PartialForward_ResNet50_LastQuarter(benchmark::State& state) {
  static ZooModel model = [] {
    ZooOptions opts;
    opts.calibration_images = 4;
    return build_resnet50(opts);
  }();
  const Tensor x = random_tensor(Shape({4, 3, 32, 32}), 8);
  const std::vector<Tensor> cache = model.net.forward_all(x);
  const int from = model.net.num_nodes() * 3 / 4;
  for (auto _ : state) {
    Tensor y = model.net.forward_from(from, cache);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_PartialForward_ResNet50_LastQuarter);

// ---------------------------------------------------------------------------
// Roofline mode (--json): the SIMD micro-kernels of src/tensor/kernels/
// measured through their public entry points (gemm / qgemm / quantize_to)
// at every available ISA, against a theoretical per-cycle peak.
//
// The peak model is the standard 2-SIMD-port ceiling for the instruction
// each kernel leans on (Haswell/Zen class; a MAC counts as 2 ops):
//
//                      scalar(SSE2 autovec)   avx2            avx2fma
//   sgemm              8  flop/cyc            16 (mul+add)    32 (2x fma)
//   qgemm8 / qgemv8    8  op/cyc              64 (vpmaddwd 16 MAC x 2/cyc)
//   qgemm8 maddubs     8                      64 (vpmaddubsw+vpmaddwd pair)
//   qgemm16            8                      64 (madd; s64 widening eats in)
//   quantize8/16       1  elem/cyc            8  (one 8-float vector/cyc)
//
// Cycles are converted to seconds with a measured clock estimate (a
// dependent xorshift64 chain, 6 cycles/iteration), so "pct_peak" is an
// estimate good to the quality of that clock reading — the point of the
// columns is the ORDER OF MAGNITUDE gap per ISA, not a calibrated number.
// Peaks scale with the worker count the sweep runs under.

struct RoofSpec {
  const char* kernel;
  const char* unit;  // what "achieved"/"peak" count
  double scalar_opc, avx2_opc, fma_opc;
};

double ops_per_cycle(const RoofSpec& spec, KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return spec.scalar_opc;
    case KernelIsa::kAvx2: return spec.avx2_opc;
    case KernelIsa::kAvx2Fma: return spec.fma_opc;
  }
  return spec.scalar_opc;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Clock estimate from a serially-dependent xorshift64 chain: each
// iteration is three shift+xor pairs, 6 latency-bound cycles on every
// x86-64 core of the last decade. Min over a few runs rejects preemption.
double estimate_ghz() {
  double best_ghz = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    const std::int64_t iters = 50'000'000;
    const double t0 = now_ms();
    for (std::int64_t i = 0; i < iters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    asm volatile("" : "+r"(x));  // keep the chain
    const double ms = now_ms() - t0;
    if (ms > 0.0) best_ghz = std::max(best_ghz, 6.0 * static_cast<double>(iters) / (ms * 1e6));
  }
  return best_ghz;
}

struct RoofRow {
  std::string kernel;
  std::string isa;
  std::string unit;
  std::int64_t m = 0, n = 0, k = 0;
  double ms_min = 0.0;
  double achieved = 0.0;  // G<unit>/s
  double peak = 0.0;
  double pct_peak = 0.0;
};

template <typename Fn>
double min_of_ms(Fn&& fn, int iters, int reps) {
  fn();  // warm-up (first call populates scratch arenas)
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, (now_ms() - t0) / iters);
  }
  return best;
}

std::vector<float> roof_floats(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

// Signed integers in [lo, hi], first element pinned to hi so the qgemm8
// B-range scan dispatches exactly the kernel the row claims to measure
// (|b| <= 64 => maddubs fast path, any |b| > 64 => k-pair madd path).
template <typename T>
std::vector<T> roof_ints(std::size_t n, int lo, int hi, std::uint64_t seed) {
  std::vector<T> v(n);
  Rng rng(seed);
  for (auto& x : v)
    x = static_cast<T>(lo + static_cast<int>(rng.uniform() * (hi - lo + 1)));
  if (!v.empty()) v[0] = static_cast<T>(hi);
  return v;
}

int run_roofline(const std::string& json_out, int reps) {
  const double ghz = estimate_ghz();
  const int workers = parallel_worker_count();

  const RoofSpec kSgemm = {"sgemm", "flops", 8, 16, 32};
  const RoofSpec kQ8Madd = {"qgemm8_madd", "ops", 8, 64, 64};
  const RoofSpec kQ8Maddubs = {"qgemm8_maddubs", "ops", 8, 64, 64};
  const RoofSpec kQ16 = {"qgemm16", "ops", 8, 64, 64};
  const RoofSpec kQgemv8 = {"qgemv8", "ops", 8, 64, 64};
  const RoofSpec kQuant8 = {"quantize8", "elems", 1, 8, 8};
  const RoofSpec kQuant16 = {"quantize16", "elems", 1, 8, 8};

  // GEMM shapes: multiples of the widest micro-tile so the full-tile
  // kernel (not the edge path) dominates; k past a few KC strips.
  const std::int64_t M = 240, N = 256, K = 256;    // sgemm (6x16 tiles)
  const std::int64_t QM = 256, QN = 256, QK = 512; // qgemm (4x16 tiles)
  const std::int64_t GM = 4096, GK = 1024;         // gemv
  const std::int64_t QE = 1 << 16;                 // quantize elements

  const std::vector<float> a_f = roof_floats(static_cast<std::size_t>(M * K), 31);
  const std::vector<float> b_f = roof_floats(static_cast<std::size_t>(K * N), 32);
  std::vector<float> c_f(static_cast<std::size_t>(M * N));

  const auto a8 = roof_ints<std::int8_t>(static_cast<std::size_t>(QM * QK), -128, 127, 33);
  const auto b8_wide = roof_ints<std::int8_t>(static_cast<std::size_t>(QK * QN), -128, 127, 34);
  const auto b8_narrow = roof_ints<std::int8_t>(static_cast<std::size_t>(QK * QN), -64, 64, 35);
  const auto a16 = roof_ints<std::int16_t>(static_cast<std::size_t>(QM * QK), -32767, 32767, 36);
  const auto b16 = roof_ints<std::int16_t>(static_cast<std::size_t>(QK * QN), -32767, 32767, 37);
  const auto g8 = roof_ints<std::int8_t>(static_cast<std::size_t>(GM * GK), -128, 127, 38);
  const auto x8 = roof_ints<std::int8_t>(static_cast<std::size_t>(GK), -128, 127, 39);
  std::vector<float> qc(static_cast<std::size_t>(QM * QN));
  std::vector<float> gc(static_cast<std::size_t>(GM));
  const std::vector<float> quant_in = roof_floats(static_cast<std::size_t>(QE), 40);
  std::vector<std::int8_t> quant_out8(static_cast<std::size_t>(QE));
  std::vector<std::int16_t> quant_out16(static_cast<std::size_t>(QE));
  QGemmEpilogue dequant;  // float store, scale 1.0

  std::vector<RoofRow> rows;
  auto push = [&](const RoofSpec& spec, KernelIsa isa, std::int64_t m, std::int64_t n,
                  std::int64_t k, double total_ops, double ms) {
    RoofRow r;
    r.kernel = spec.kernel;
    r.isa = kernel_isa_name(isa);
    r.unit = spec.unit;
    r.m = m;
    r.n = n;
    r.k = k;
    r.ms_min = ms;
    r.achieved = total_ops / (ms * 1e6);  // G<unit>/s
    r.peak = ops_per_cycle(spec, isa) * ghz * workers;
    r.pct_peak = r.peak > 0.0 ? 100.0 * r.achieved / r.peak : 0.0;
    rows.push_back(r);
  };

  const KernelIsa saved = kernel_isa();
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx2Fma}) {
    if (!kernel_isa_available(isa)) continue;
    set_kernel_isa(isa);

    push(kSgemm, isa, M, N, K, 2.0 * M * N * K,
         min_of_ms([&] { gemm(M, N, K, a_f.data(), K, b_f.data(), N, 0.0f, c_f.data(), N); },
                   2, reps));
    push(kQ8Madd, isa, QM, QN, QK, 2.0 * QM * QN * QK,
         min_of_ms([&] {
           qgemm(QType::kInt8, QM, QN, QK, a8.data(), QK, b8_wide.data(), QN, qc.data(), QN,
                 dequant);
         }, 1, reps));
    push(kQ8Maddubs, isa, QM, QN, QK, 2.0 * QM * QN * QK,
         min_of_ms([&] {
           qgemm(QType::kInt8, QM, QN, QK, a8.data(), QK, b8_narrow.data(), QN, qc.data(), QN,
                 dequant);
         }, 1, reps));
    push(kQ16, isa, QM, QN, QK, 2.0 * QM * QN * QK,
         min_of_ms([&] {
           qgemm(QType::kInt16, QM, QN, QK, a16.data(), QK, b16.data(), QN, qc.data(), QN,
                 dequant);
         }, 1, reps));
    push(kQgemv8, isa, GM, 1, GK, 2.0 * GM * GK,
         min_of_ms([&] {
           qgemm(QType::kInt8, GM, 1, GK, g8.data(), GK, x8.data(), 1, gc.data(), 1, dequant);
         }, 8, reps));
    push(kQuant8, isa, QE, 0, 0, static_cast<double>(QE),
         min_of_ms([&] {
           quantize_to(QType::kInt8, quant_in.data(), QE, 1.0 / 64, -128, 127,
                       quant_out8.data());
         }, 16, reps));
    push(kQuant16, isa, QE, 0, 0, static_cast<double>(QE),
         min_of_ms([&] {
           quantize_to(QType::kInt16, quant_in.data(), QE, 1.0 / 1024, -32768, 32767,
                       quant_out16.data());
         }, 16, reps));
  }
  set_kernel_isa(saved);

  std::printf("micro-kernel roofline: dispatched ISA %s, est clock %.2f GHz, workers %d, "
              "min of %d rep(s)\n\n",
              kernel_isa_name(kernel_isa()), ghz, workers, reps);
  std::printf("%-16s %-8s %5s %5s %5s  %10s %12s %12s %8s\n", "kernel", "isa", "m", "n", "k",
              "min ms", "achieved", "peak", "% peak");
  for (const RoofRow& r : rows)
    std::printf("%-16s %-8s %5lld %5lld %5lld  %10.3f %9.2f G%s %9.2f G%s %7.1f%%\n",
                r.kernel.c_str(), r.isa.c_str(), static_cast<long long>(r.m),
                static_cast<long long>(r.n), static_cast<long long>(r.k), r.ms_min, r.achieved,
                r.unit.c_str(), r.peak, r.unit.c_str(), r.pct_peak);

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "micro_kernels");
    j.kv("workers", workers);
    j.kv("reps", reps);
    j.kv("kernel_isa", kernel_isa_name(kernel_isa()));
    j.kv("est_ghz", ghz);
    j.key("rows").begin_array();
    for (const RoofRow& r : rows) {
      j.begin_object();
      j.kv("kernel", r.kernel);
      j.kv("isa", r.isa);
      j.kv("unit", r.unit);
      j.kv("m", r.m);
      j.kv("n", r.n);
      j.kv("k", r.k);
      j.kv("ms_min", r.ms_min);
      j.kv("achieved_gops", r.achieved);
      j.kv("peak_gops", r.peak);
      j.kv("pct_peak", r.pct_peak);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("\nwrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Roofline / manifest flags take the binary over entirely; anything
  // else falls through to google-benchmark's own CLI.
  std::string json_out;
  int reps = 5;
  bool roofline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
      roofline = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
      roofline = true;
    } else if (arg == "--print-isa") {
      std::printf("%s\n", mupod::kernel_isa_name(mupod::kernel_isa()));
      return 0;
    }
  }
  if (roofline) return run_roofline(json_out, reps);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
