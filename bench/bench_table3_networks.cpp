// Table III reproduction: all eight CNNs, optimizing input bitwidths for
// bandwidth (BW) and for MAC energy at 1% and 5% relative accuracy drop.
//
// For each network and drop level we print: # layers, the uniform weight
// bitwidth W from the Sec. V-E search, the baseline effective bitwidths
// (search-based for shallow nets, smallest-uniform otherwise — mirroring
// the paper, which used published Stripes bitwidths where available and
// uniform elsewhere), the two optimized allocations evaluated under both
// criteria, the bandwidth saving and the MAC-energy saving (bit-serial
// Stripes-like model), plus the validated accuracy.
#include <cstdio>
#include <vector>

#include "baseline/search_baseline.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "hw/energy_model.hpp"
#include "io/table.hpp"

namespace {
using namespace mupod;
using namespace mupod::bench;

struct Row {
  std::string net;
  double drop;
  int layers;
  int weight_bits;
  double base_in, base_mac;
  double opt_in_in, opt_in_mac, bw_save;
  double opt_mac_in, opt_mac_mac, ener_save;
  double acc_in, acc_mac;
  // Held-out generalization (paper Sec. I: search-based assignment
  // "will likely over-fit the precision result to the testing data set").
  double float_holdout = 0.0;
  double base_holdout = 0.0;  // baseline bits, held-out accuracy
  double ours_holdout = 0.0;  // opt-MAC bits, held-out accuracy
};

Row run_one(const std::string& name, double drop) {
  // Sized for a single-core machine: the full table (8 nets x 2 drops)
  // must complete in tens of minutes, not hours.
  ExperimentConfig cfg;
  cfg.eval_images = 256;  // 1% budgets need sub-0.5% accuracy granularity
  cfg.profile_images = name == "googlenet" ? 32 : 16;
  Experiment e = make_experiment(name, cfg);
  const auto& analyzed = e.model.analyzed;

  PipelineConfig pcfg;
  pcfg.harness.profile_images = cfg.profile_images;
  pcfg.harness.eval_images = cfg.eval_images;
  pcfg.harness.metric = cfg.metric;
  pcfg.profiler.points = 8;
  pcfg.profiler.reps_per_point = 2;
  pcfg.sigma.relative_accuracy_drop = drop;
  pcfg.search_weights = true;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(e.model.net, analyzed),
      objective_mac_energy(e.model.net, analyzed),
  };
  const PipelineResult r =
      run_pipeline(const_cast<Network&>(e.harness->net()), analyzed, *e.dataset, objectives, pcfg);

  // Baseline: per-layer search when affordable, uniform otherwise (the
  // paper likewise only had Stripes per-layer bitwidths for shallow nets).
  BaselineConfig bcfg;
  bcfg.relative_accuracy_drop = drop;
  bcfg.min_bits = 3;
  bcfg.max_bits = 12;
  const BaselineResult base = analyzed.size() <= 12 ? profile_search_baseline(*e.harness, bcfg)
                                                    : uniform_baseline(*e.harness, bcfg);

  const auto& in_rho = objectives[0].rho;
  const auto& mac_rho = objectives[1].rho;
  const auto& opt_in = r.objectives[0];
  const auto& opt_mac = r.objectives[1];

  Row row;
  row.net = name;
  row.drop = drop;
  row.layers = static_cast<int>(analyzed.size());
  row.weight_bits = opt_in.weight_bits;
  row.base_in = effective_bitwidth(in_rho, base.bits);
  row.base_mac = effective_bitwidth(mac_rho, base.bits);
  row.opt_in_in = effective_bitwidth(in_rho, opt_in.alloc.bits);
  row.opt_in_mac = effective_bitwidth(mac_rho, opt_in.alloc.bits);
  row.opt_mac_in = effective_bitwidth(in_rho, opt_mac.alloc.bits);
  row.opt_mac_mac = effective_bitwidth(mac_rho, opt_mac.alloc.bits);
  row.bw_save = percent_saving(row.base_in, row.opt_in_in);

  const MacEnergyModel energy = MacEnergyModel::stripes_like();
  const double base_e = energy.network_energy(mac_rho, base.bits, row.weight_bits);
  const double opt_e = energy.network_energy(mac_rho, opt_mac.alloc.bits, row.weight_bits);
  row.ener_save = percent_saving(base_e, opt_e);
  row.acc_in = opt_in.validated_accuracy;
  row.acc_mac = opt_mac.validated_accuracy;

  // Held-out check: both methods' bitwidths, fresh images.
  {
    HarnessConfig hc;
    hc.profile_images = 4;
    hc.eval_images = 256;
    hc.metric = cfg.metric;
    hc.eval_start_index = 3'000'000;
    AnalysisHarness holdout(e.model.net, analyzed, *e.dataset, hc);
    row.float_holdout = holdout.float_accuracy();
    const auto eval_bits = [&](const std::vector<int>& bits) {
      std::unordered_map<int, InjectionSpec> inject;
      const auto fmts = formats_for_bits(r.ranges, bits);
      for (std::size_t k = 0; k < analyzed.size(); ++k)
        inject.emplace(analyzed[k], InjectionSpec::quantize(fmts[k]));
      return holdout.accuracy_with_injection(inject);
    };
    row.base_holdout = eval_bits(base.bits);
    row.ours_holdout = eval_bits(opt_mac.alloc.bits);
  }
  return row;
}

}  // namespace

int main() {
  print_header("Table III — eight CNNs, BW and MAC-energy optimization at 1% / 5% drop",
               "Sec. VI Table III (effective bitwidths; BW save; Ener save)");

  for (double drop : {0.01, 0.05}) {
    std::printf(">>> relative accuracy drop = %.0f%%\n\n", drop * 100);
    TextTable t({"network", "#layers", "W", "Base:Input", "Base:MAC", "OptIn:Input",
                 "OptIn:MAC", "BWsave%", "OptMAC:Input", "OptMAC:MAC", "EnerSave%", "acc_in",
                 "acc_mac"});
    TextTable holdout({"network", "float(holdout)", "threshold", "baseline bits", "our bits"});
    double sum_bw = 0.0, sum_ener = 0.0;
    int base_viol = 0, ours_viol = 0;
    int n = 0;
    for (const std::string& name : zoo_model_names()) {
      Stopwatch sw;
      const Row row = run_one(name, drop);
      t.add_row({row.net, std::to_string(row.layers), std::to_string(row.weight_bits),
                 TextTable::fmt(row.base_in, 2), TextTable::fmt(row.base_mac, 2),
                 TextTable::fmt(row.opt_in_in, 2), TextTable::fmt(row.opt_in_mac, 2),
                 TextTable::fmt(row.bw_save, 1), TextTable::fmt(row.opt_mac_in, 2),
                 TextTable::fmt(row.opt_mac_mac, 2), TextTable::fmt(row.ener_save, 1),
                 TextTable::fmt(row.acc_in, 3), TextTable::fmt(row.acc_mac, 3)});
      const double thr = (1.0 - drop) * row.float_holdout;
      holdout.add_row({row.net, TextTable::fmt(row.float_holdout, 3), TextTable::fmt(thr, 3),
                       TextTable::fmt(row.base_holdout, 3) +
                           (row.base_holdout < thr ? " VIOLATED" : ""),
                       TextTable::fmt(row.ours_holdout, 3) +
                           (row.ours_holdout < thr ? " VIOLATED" : "")});
      if (row.base_holdout < thr) ++base_viol;
      if (row.ours_holdout < thr) ++ours_viol;
      sum_bw += row.bw_save;
      sum_ener += row.ener_save;
      ++n;
      std::fprintf(stderr, "[table3] %s @%.0f%%: done in %.1f s\n", name.c_str(), drop * 100,
                   sw.seconds());
    }
    t.add_row({"Average", "-", "-", "-", "-", "-", "-", TextTable::fmt(sum_bw / n, 1), "-", "-",
               TextTable::fmt(sum_ener / n, 1), "-", "-"});
    std::printf("%s\n", t.render_text().c_str());
    std::printf("held-out generalization (paper Sec. I: search \"will likely over-fit ... to\n"
                "the testing data set\"): accuracy of each method's bitwidths on 256 FRESH\n"
                "images (both were tuned on a different set):\n\n%s",
                holdout.render_text().c_str());
    std::printf("held-out constraint violations: baseline (search) %d/%d, ours %d/%d\n\n",
                base_viol, n, ours_viol, n);
  }

  std::printf("paper averages: BW save 12.3%% (1%%) / 8.8%% (5%%); "
              "Ener save 23.8%% (1%%) / 17.8%% (5%%)\n");
  std::printf("expected shape: OptIn wins the Input column, OptMAC wins the MAC column for\n"
              "every network; savings in the single-to-double-digit %% band; no accuracy\n"
              "constraint violated.\n");
  return 0;
}
