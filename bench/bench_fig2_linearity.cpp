// Fig. 2 reproduction: the per-layer linear relationship between the
// injected uniform-error boundary Delta_XK and the measured final-layer
// error s.d. sigma_{Y_{K->L}} (Eq. 5), on GoogleNet and VGG-19.
//
// The paper plots one regression line per layer and reports that the fit
// predicts Delta mostly within 5% (worst case ~10%). We print each
// layer's (lambda, theta, R^2, max relative prediction error) plus the
// raw sweep for a subset of layers, and summary statistics.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/profiler.hpp"
#include "io/table.hpp"

namespace {

using namespace mupod;
using namespace mupod::bench;

void run_network(const char* name) {
  std::printf("--- %s ---\n", name);
  ExperimentConfig cfg;
  // The paper used 500 images; we use 64 plus replicate averaging (the
  // 50-200 image claim is itself tested in bench_ablation).
  // VGG's convolutions are ~10x costlier per image than GoogleNet's, so
  // the probe budget is split accordingly (GoogleNet's narrow layers also
  // need more images for stable sigma estimates).
  cfg.profile_images = std::string(name) == "vgg19" ? 32 : 96;
  Experiment e = make_experiment(name, cfg);

  Stopwatch sw;
  ProfilerConfig pc;
  pc.points = 12;
  pc.reps_per_point = 2;
  const auto models = profile_lambda_theta(*e.harness, pc);
  std::printf("profiled %d layers in %.1f s\n\n", static_cast<int>(models.size()), sw.seconds());

  TextTable table({"layer", "node", "lambda", "theta", "R^2", "max_rel_err"});
  double worst_rel = 0.0, worst_r2 = 1.0;
  int within5 = 0, within10 = 0;
  for (const auto& m : models) {
    table.add_row({std::to_string(m.layer_index), e.model.net.node(m.node).name,
                   TextTable::fmt(m.lambda, 4), TextTable::fmt(m.theta, 5),
                   TextTable::fmt(m.r2, 5), TextTable::fmt(m.max_rel_error * 100, 1) + "%"});
    worst_rel = std::max(worst_rel, m.max_rel_error);
    worst_r2 = std::min(worst_r2, m.r2);
    if (m.max_rel_error < 0.05) ++within5;
    if (m.max_rel_error < 0.10) ++within10;
  }
  std::printf("%s\n", table.render_text().c_str());

  std::printf("summary: worst R^2 = %.4f | %d/%d layers predict Delta within 5%%, "
              "%d/%d within 10%% | worst rel err = %.1f%%\n",
              worst_r2, within5, static_cast<int>(models.size()), within10,
              static_cast<int>(models.size()), worst_rel * 100);
  std::printf("paper:   fits mostly <5%% error, worst case ~10%% of actual value\n\n");

  // Raw sweep for the first, middle and last layer — the "lines" of Fig. 2.
  for (std::size_t pick : {std::size_t{0}, models.size() / 2, models.size() - 1}) {
    const auto& m = models[pick];
    std::printf("sweep layer %d (%s): Delta vs sigma_Y\n", m.layer_index,
                e.model.net.node(m.node).name.c_str());
    for (std::size_t i = 0; i < m.deltas.size(); ++i) {
      std::printf("  sigma=%.6f  Delta=%.6f  fit=%.6f\n", m.sigmas[i], m.deltas[i],
                  m.delta_for_sigma(m.sigmas[i]));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  print_header("Fig. 2 — cross-layer linear relationship Delta_XK ~ sigma_{Y_K->L}",
               "Sec. IV, Fig. 2 (GoogleNet & VGG-19, ~20 points/layer)");
  run_network("googlenet");
  run_network("vgg19");
  return 0;
}
