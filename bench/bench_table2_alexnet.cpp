// Table II reproduction: AlexNet bitwidth optimization on two different
// objectives (#Input bandwidth vs #MAC energy) at 1% relative accuracy
// drop. Prints the same rows as the paper's Table II: per-layer #Input,
// #MAC, max|X_K|, the search-based baseline bitwidths, and the two
// optimized assignments with their objective totals and savings.
#include <cstdio>
#include <numeric>
#include <vector>

#include "baseline/search_baseline.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "hw/energy_model.hpp"
#include "io/table.hpp"

namespace {
using namespace mupod;
using namespace mupod::bench;

std::string join_bits(const std::vector<int>& bits) {
  std::string s;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(bits[i]);
  }
  return s;
}
}  // namespace

int main() {
  print_header("Table II — AlexNet, two objectives, 1% relative accuracy drop",
               "Sec. V-D Table II (baseline from search, Opt_for_#Input, Opt_for_#MAC)");

  ExperimentConfig cfg;
  cfg.eval_images = 192;
  Experiment e = make_experiment("alexnet", cfg);
  const auto& analyzed = e.model.analyzed;
  const std::size_t L = analyzed.size();

  PipelineConfig pcfg;
  pcfg.harness.profile_images = cfg.profile_images;
  pcfg.harness.eval_images = cfg.eval_images;
  pcfg.harness.metric = cfg.metric;
  pcfg.profiler.points = 10;
  pcfg.profiler.reps_per_point = 2;
  pcfg.sigma.relative_accuracy_drop = 0.01;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(e.model.net, analyzed),
      objective_mac_energy(e.model.net, analyzed),
  };

  Stopwatch sw;
  const PipelineResult r =
      run_pipeline(const_cast<Network&>(e.harness->net()), analyzed, *e.dataset, objectives, pcfg);
  std::printf("pipeline: sigma_YL = %.3f found in %d accuracy evals; total %.1f s\n",
              r.sigma.sigma_yl, r.sigma.evaluations, sw.seconds());
  std::printf("paper:    sigma_YL ~= 0.32 for their AlexNet at 1%% drop\n\n");

  // Search-based baseline (the paper takes Stripes' published bitwidths;
  // we regenerate per-layer bitwidths with the same class of search).
  BaselineConfig bcfg;
  bcfg.relative_accuracy_drop = 0.01;
  bcfg.min_bits = 3;
  bcfg.max_bits = 12;
  const BaselineResult base = profile_search_baseline(*e.harness, bcfg);

  const ObjectiveSpec& in_obj = objectives[0];
  const ObjectiveSpec& mac_obj = objectives[1];
  const auto& opt_in = r.objectives[0].alloc;
  const auto& opt_mac = r.objectives[1].alloc;

  // --- the table -----------------------------------------------------------
  TextTable t({"row", "conv1", "conv2", "conv3", "conv4", "conv5", "Total"});
  const auto add_int_row = [&](const char* name, const std::vector<std::int64_t>& v, double scale) {
    std::vector<std::string> cells = {name};
    double total = 0;
    for (std::size_t k = 0; k < L; ++k) {
      cells.push_back(TextTable::fmt(static_cast<double>(v[k]) / scale, 1));
      total += static_cast<double>(v[k]) / scale;
    }
    cells.push_back(TextTable::fmt(total, 1));
    t.add_row(cells);
  };
  const auto add_bits_row = [&](const char* name, const std::vector<int>& bits) {
    std::vector<std::string> cells = {name};
    for (std::size_t k = 0; k < L; ++k) cells.push_back(std::to_string(bits[k]));
    cells.push_back("-");
    t.add_row(cells);
  };
  const auto add_weighted_row = [&](const char* name, const std::vector<std::int64_t>& rho,
                                    const std::vector<int>& bits, double scale) {
    std::vector<std::string> cells = {name};
    double total = 0;
    for (std::size_t k = 0; k < L; ++k) {
      const double v = static_cast<double>(rho[k]) * bits[k] / scale;
      cells.push_back(TextTable::fmt(v, 1));
      total += v;
    }
    cells.push_back(TextTable::fmt(total, 1));
    t.add_row(cells);
  };

  add_int_row("#Input(x10^3)", in_obj.rho, 1e3);
  add_int_row("#MAC(x10^6)", mac_obj.rho, 1e6);
  {
    std::vector<std::string> cells = {"max|X_K|"};
    for (std::size_t k = 0; k < L; ++k) cells.push_back(TextTable::fmt(r.ranges[k], 2));
    cells.push_back("-");
    t.add_row(cells);
  }
  add_bits_row("Baseline(search)", base.bits);
  add_weighted_row("#Input_bits(x10^3)", in_obj.rho, base.bits, 1e3);
  add_weighted_row("#MAC_bits(x10^6)", mac_obj.rho, base.bits, 1e6);
  add_bits_row("Opt_for_#Input", opt_in.bits);
  add_weighted_row("#Input_bits(x10^3)", in_obj.rho, opt_in.bits, 1e3);
  add_bits_row("Opt_for_#MAC", opt_mac.bits);
  add_weighted_row("#MAC_bits(x10^6)", mac_obj.rho, opt_mac.bits, 1e6);
  std::printf("%s\n", t.render_text().c_str());

  // --- savings summary -------------------------------------------------------
  const double base_in = static_cast<double>(total_weighted_bits(in_obj.rho, base.bits));
  const double base_mac = static_cast<double>(total_weighted_bits(mac_obj.rho, base.bits));
  const double opt_in_val = static_cast<double>(total_weighted_bits(in_obj.rho, opt_in.bits));
  const double opt_mac_val = static_cast<double>(total_weighted_bits(mac_obj.rho, opt_mac.bits));

  std::printf("xi (Opt_for_#Input) = ");
  for (double x : opt_in.xi) std::printf("%.2f ", x);
  std::printf("\nxi (Opt_for_#MAC)   = ");
  for (double x : opt_mac.xi) std::printf("%.2f ", x);
  std::printf("\n\n");

  std::printf("input-bits saving vs search baseline: %.1f%%   (paper: 15%% vs Stripes)\n",
              percent_saving(base_in, opt_in_val));
  std::printf("MAC-bits saving vs search baseline:   %.1f%%   (paper: 9.5%%)\n",
              percent_saving(base_mac, opt_mac_val));

  // Second comparison point: the smallest uniform bitwidth (the baseline
  // mode the paper uses when no published per-layer bitwidths exist).
  const BaselineResult uni = uniform_baseline(*e.harness, bcfg);
  const double uni_in = static_cast<double>(total_weighted_bits(in_obj.rho, uni.bits));
  const double uni_mac = static_cast<double>(total_weighted_bits(mac_obj.rho, uni.bits));
  std::printf("vs uniform-%d-bit baseline: input-bits %.1f%%, MAC-bits %.1f%% saving\n",
              uni.bits.empty() ? 0 : uni.bits[0], percent_saving(uni_in, opt_in_val),
              percent_saving(uni_mac, opt_mac_val));
  std::printf("validated accuracy (real input quantization): opt_input=%.4f  opt_mac=%.4f\n",
              r.objectives[0].validated_accuracy, r.objectives[1].validated_accuracy);
  std::printf("baseline accuracy: %.4f | constraint: >= 0.99 relative\n", base.accuracy);
  std::printf("paper: both optimized bitwidths kept <1%% loss on 25k ImageNet test images\n");
  return 0;
}
