// Sec. VI-A timing reproduction: the paper's headline efficiency claim is
// that the analytic method replaces the search-based assignment with
// (1) lambda/theta profiling ("a few minutes"), (2) a binary search on
// sigma_YL ("< 1 hour on ResNet-152 with a P100"), and (3) an optimization
// step ("5 minutes") that can be re-run for new constraints without
// re-profiling. We reproduce the cost *structure* on the CPU-scaled
// ResNet-152: profiling dominates, re-optimization is near-free, and the
// whole flow costs orders of magnitude fewer network evaluations than the
// per-layer search baseline.
#include <cstdio>

#include "baseline/search_baseline.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "io/table.hpp"

int main() {
  using namespace mupod;
  using namespace mupod::bench;

  print_header("Timing — ResNet-152 cost breakdown (156 layers)",
               "Sec. VI-A: profiling minutes; sigma search < 1 h; re-optimization ~5 min");

  ExperimentConfig cfg;
  cfg.profile_images = 8;
  cfg.eval_images = 128;
  Stopwatch total;
  Experiment e = make_experiment("resnet152", cfg);
  const auto& analyzed = e.model.analyzed;
  std::printf("network built: %d nodes, %zu analyzed layers, %lld MACs/image\n\n",
              e.model.net.num_nodes(), analyzed.size(),
              static_cast<long long>(e.model.net.total_macs()));

  PipelineConfig pcfg;
  pcfg.harness.profile_images = cfg.profile_images;
  pcfg.harness.eval_images = cfg.eval_images;
  pcfg.harness.metric = cfg.metric;
  pcfg.profiler.points = 6;
  pcfg.profiler.reps_per_point = 1;
  pcfg.sigma.relative_accuracy_drop = 0.01;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(e.model.net, analyzed),
      objective_mac_energy(e.model.net, analyzed),
  };
  const PipelineResult r =
      run_pipeline(const_cast<Network&>(e.harness->net()), analyzed, *e.dataset, objectives, pcfg);

  TextTable t({"stage", "wall_time_s", "note"});
  t.add_row({"harness (ranges + caches)", TextTable::fmt(r.timings.harness_ms / 1e3, 1),
             "exact activations cached once"});
  t.add_row({"profile lambda/theta", TextTable::fmt(r.timings.profile_ms / 1e3, 1),
             "156 layers x 6 deltas, partial re-execution"});
  t.add_row({"binary search sigma_YL", TextTable::fmt(r.timings.sigma_ms / 1e3, 1),
             "Scheme 2: noise on cached logits"});
  t.add_row({"xi optimization (2 objectives)", TextTable::fmt(r.timings.allocate_ms / 1e3, 3),
             "re-runnable for new constraints"});
  t.add_row({"validation (real quantization)", TextTable::fmt(r.timings.validate_ms / 1e3, 1),
             "one quantized pass per objective"});
  std::printf("%s\n", t.render_text().c_str());

  std::printf("sigma_YL = %.3f (%d evals) | validated acc: %.3f / %.3f\n\n", r.sigma.sigma_yl,
              r.sigma.evaluations, r.objectives[0].validated_accuracy,
              r.objectives[1].validated_accuracy);

  // Changing user constraints re-runs only the last step (paper claim).
  Stopwatch reopt;
  ObjectiveSpec custom;
  custom.name = "custom_2x_input";
  custom.rho = objectives[0].rho;
  for (auto& v : custom.rho) v *= 2;
  (void)allocate_bitwidths(r.models, r.sigma.sigma_yl, r.ranges, custom);
  std::printf("re-optimization for a new objective: %.3f s (no re-profiling needed)\n\n",
              reopt.seconds());

  // Cost comparison vs the search-based baseline, in image-forward units.
  const std::int64_t ours = r.forward_count;
  std::printf("our pipeline issued ~%lld image-forward equivalents.\n",
              static_cast<long long>(ours));
  std::printf("a per-layer profile search needs ~#layers x #bit-candidates x #eval images\n");
  std::printf("  = 156 x 15 x %d = %lld image-forwards for stage 1 alone (>= %.0fx more).\n",
              cfg.eval_images, 156LL * 15 * cfg.eval_images,
              static_cast<double>(156LL * 15 * cfg.eval_images) / static_cast<double>(ours));
  std::printf("\ntotal wall time: %.1f s (paper: < 1 h 5 min on an Nvidia P100 at\n"
              "ImageNet scale; our substrate is a scaled CPU simulator — the *structure*\n"
              "of the cost, profiling-dominant with near-free re-optimization, is the claim)\n",
              total.seconds());
  return 0;
}
