// bench_sweep: quantifies what the plan service buys over the naive use of
// the pipeline. The workload is the paper's own framing — the full
// multi-objective tradeoff grid for one network (3 objectives x 4 accuracy
// targets) — served three ways:
//
//   cold        N*M independent run_pipeline calls (each re-profiles,
//               re-searches sigma, re-allocates)
//   warm        one PlanService sweep (1 profile + M sigma searches +
//               N*M allocation tails)
//   tails only  the fan-out re-timed serial vs concurrent after clearing
//               only the plan memo (profiles/sigma stay cached)
//
// It also verifies the service's core guarantee: every warm plan is
// byte-identical to its cold counterpart (same bits, formats, sigma,
// validated accuracy) — the caches change the cost, never the answer.
//
// Usage: bench_sweep [--net NAME] [--json FILE]
// --json writes a machine-readable summary (scripts/run_benchmarks.sh
// parks it at BENCH_sweep.json).
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/json_writer.hpp"
#include "io/table.hpp"
#include "serve/sweep.hpp"
#include "tensor/parallel.hpp"

namespace {

using namespace mupod;
using mupod::bench::Stopwatch;

struct ColdCell {
  double target = 0.0;
  std::string objective;
  ObjectiveResult result;
};

// Field-by-field equality of a cold pipeline answer and a warm service
// answer. Exact comparison on purpose: both paths run the same
// run_objective_stage on the same inputs, so the doubles must match to
// the last bit, not within a tolerance.
bool plans_identical(const ColdCell& cold, const PlanResult& warm) {
  const BitwidthAllocation& a = cold.result.alloc;
  const BitwidthAllocation& b = warm.alloc;
  if (a.bits != b.bits || a.xi != b.xi || a.deltas != b.deltas) return false;
  if (a.formats.size() != b.formats.size()) return false;
  for (std::size_t i = 0; i < a.formats.size(); ++i)
    if (a.formats[i].integer_bits != b.formats[i].integer_bits ||
        a.formats[i].fraction_bits != b.formats[i].fraction_bits)
      return false;
  return cold.result.sigma_used == warm.sigma_used &&
         cold.result.validated_accuracy == warm.validated_accuracy &&
         cold.result.refinements == warm.refinements;
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_name = "tiny";
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" && i + 1 < argc) net_name = argv[++i];
    else if (arg == "--json" && i + 1 < argc) json_out = argv[++i];
    else {
      std::fprintf(stderr, "usage: bench_sweep [--net NAME] [--json FILE]\n");
      return 2;
    }
  }

  bench::print_header("plan service: cached sweep vs independent pipeline runs",
                      "Sec. V (pipeline structure); serving-layer extension");

  bench::ExperimentConfig ecfg;
  bench::Experiment e = bench::make_experiment(net_name, ecfg);
  Network& net = e.model.net;
  const std::vector<int>& analyzed = e.model.analyzed;

  const std::vector<double> targets = {0.005, 0.01, 0.02, 0.05};
  std::vector<ObjectiveSpec> objectives;
  objectives.push_back(objective_input_bits(net, analyzed));
  objectives.push_back(objective_mac_energy(net, analyzed));
  ObjectiveSpec equal;
  equal.name = "equal";
  equal.rho.assign(analyzed.size(), 1);
  objectives.push_back(equal);

  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = ecfg.profile_images;
  scfg.pipeline.harness.eval_images = ecfg.eval_images;
  scfg.pipeline.harness.batch = ecfg.batch;
  scfg.pipeline.harness.metric = ecfg.metric;
  scfg.pipeline.search_weights = false;

  const int workers = parallel_worker_count();
  const std::size_t n_cells = targets.size() * objectives.size();
  std::printf("network %s: %zu analyzed layers; grid %zu targets x %zu objectives = %zu plans; "
              "%d pool worker(s)\n\n",
              net_name.c_str(), analyzed.size(), targets.size(), objectives.size(), n_cells,
              workers);

  // --- cold: N*M independent full pipeline runs ---------------------------
  std::vector<ColdCell> cold_cells;
  std::int64_t cold_forwards = 0;
  Stopwatch cold_sw;
  for (double target : targets) {
    for (const ObjectiveSpec& obj : objectives) {
      PipelineConfig cfg = scfg.pipeline;
      cfg.sigma.relative_accuracy_drop = target;
      const PipelineResult r = run_pipeline(net, analyzed, *e.dataset, {obj}, cfg);
      cold_forwards += r.forward_count;
      cold_cells.push_back({target, obj.name, r.objectives.at(0)});
    }
  }
  const double cold_ms = cold_sw.seconds() * 1e3;
  std::printf("cold: %zu x run_pipeline            %8.0f ms  (%lld forwards)\n", n_cells, cold_ms,
              static_cast<long long>(cold_forwards));

  // --- warm: one PlanService sweep ----------------------------------------
  PlanService service(scfg);
  const PlanKey key = service.register_network(net, analyzed, *e.dataset);
  SweepSpec spec;
  spec.accuracy_targets = targets;
  spec.objectives = objectives;
  Stopwatch warm_sw;
  SweepResult sweep = run_sweep(service, key, spec);
  const double warm_ms = warm_sw.seconds() * 1e3;
  const std::int64_t warm_forwards = service.forward_count(key);
  std::printf("warm: PlanService sweep            %8.0f ms  (%lld forwards; profile %.0f, "
              "sigma %.0f, tails %.0f)\n",
              warm_ms, static_cast<long long>(warm_forwards), sweep.profile_warm_ms,
              sweep.sigma_warm_ms, sweep.tails_ms);

  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  std::printf("speedup                             %7.2fx  (>= 3x required)\n\n", speedup);

  // --- byte-identity: every warm plan equals its cold counterpart ---------
  int mismatches = 0;
  for (const SweepCell& cell : sweep.cells) {
    const PlanResult& warm = cell.result;
    bool found = false;
    for (const ColdCell& cold : cold_cells) {
      if (cold.target != warm.query.accuracy_target || cold.objective != warm.query.objective.name)
        continue;
      found = true;
      if (!plans_identical(cold, warm)) {
        ++mismatches;
        std::printf("MISMATCH at drop=%.3f objective=%s\n", cold.target, cold.objective.c_str());
      }
      break;
    }
    if (!found) ++mismatches;
  }
  std::printf("plan identity: %s (%zu cells, %d mismatch(es))\n\n",
              mismatches == 0 ? "byte-identical" : "MISMATCH", n_cells, mismatches);

  // --- replay: serve the identical grid again (pure memo hits) ------------
  Stopwatch replay_sw;
  SweepResult replay = run_sweep(service, key, spec);
  const double replay_ms = replay_sw.seconds() * 1e3;
  (void)replay;

  // --- tails only: serial vs concurrent fan-out ---------------------------
  service.clear_plan_memo();
  SweepSpec serial_spec = spec;
  serial_spec.concurrent = false;
  Stopwatch serial_sw;
  SweepResult serial_sweep = run_sweep(service, key, serial_spec);
  const double serial_tails_ms = serial_sweep.tails_ms;
  (void)serial_sw;

  service.clear_plan_memo();
  SweepResult conc_sweep = run_sweep(service, key, spec);
  const double concurrent_tails_ms = conc_sweep.tails_ms;

  std::printf("replay (all memo hits)             %8.2f ms\n", replay_ms);
  std::printf("tails, serial                      %8.0f ms\n", serial_tails_ms);
  std::printf("tails, concurrent (%d worker(s))    %8.0f ms\n", workers, concurrent_tails_ms);

  const CacheStats stats = service.stats();
  std::printf("\ncache: profile %lld miss / %lld hit; sigma %lld miss / %lld hit; "
              "plan %lld miss / %lld hit\n",
              static_cast<long long>(stats.profile_misses),
              static_cast<long long>(stats.profile_hits),
              static_cast<long long>(stats.sigma_misses), static_cast<long long>(stats.sigma_hits),
              static_cast<long long>(stats.plan_misses), static_cast<long long>(stats.plan_hits));

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "sweep");
    j.kv("network", net_name);
    j.kv("targets", static_cast<int>(targets.size()));
    j.kv("objectives", static_cast<int>(objectives.size()));
    j.kv("cells", static_cast<int>(n_cells));
    j.kv("workers", workers);
    j.kv("cold_ms", cold_ms);
    j.kv("warm_ms", warm_ms);
    j.kv("speedup", speedup);
    j.kv("replay_ms", replay_ms);
    j.kv("serial_tails_ms", serial_tails_ms);
    j.kv("concurrent_tails_ms", concurrent_tails_ms);
    j.kv("cold_forwards", cold_forwards);
    j.kv("warm_forwards", warm_forwards);
    j.kv("plans_identical", mismatches == 0);
    j.key("cache").begin_object();
    j.kv("profile_misses", stats.profile_misses).kv("profile_hits", stats.profile_hits);
    j.kv("sigma_misses", stats.sigma_misses).kv("sigma_hits", stats.sigma_hits);
    j.kv("plan_misses", stats.plan_misses).kv("plan_hits", stats.plan_hits);
    j.end_object();
    j.end_object();
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }

  if (mismatches != 0) return 1;
  if (speedup < 3.0) {
    std::printf("WARNING: speedup below the 3x bar\n");
    return 1;
  }
  return 0;
}
