// bench_observability: bounds the cost of the metrics/tracing subsystem.
//
// The obs instrumentation rides the hot measurement path (every
// Network::forward checks the metrics flag; the profile stage is the
// heaviest consumer), so its overhead must be demonstrably negligible or
// nobody will leave it on. This bench times run_profile_stage with
// instrumentation fully disabled and fully enabled (metrics + tracing),
// interleaved, and FAILS (exit 1) when the enabled path is more than 3%
// slower.
//
// Method: min-of-N per mode, alternating modes each round. The min is
// robust against scheduler noise on small machines — any one quiet run
// bounds the true cost from above, and both modes get the same number of
// chances at a quiet machine.
//
// Usage: bench_observability [--net NAME] [--reps N] [--json FILE]
// --json writes a machine-readable summary (scripts/run_benchmarks.sh
// parks it at BENCH_observability.json).
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {
using namespace mupod;
using mupod::bench::Stopwatch;

constexpr double kMaxOverheadPct = 3.0;

double profile_stage_ms(const AnalysisHarness& harness, const ProfilerConfig& cfg) {
  Stopwatch sw;
  const ProfileStageResult prof = run_profile_stage(harness, cfg, nullptr);
  const double ms = sw.seconds() * 1e3;
  // Keep the result alive past the clock so the stage cannot be elided.
  if (prof.models.empty()) std::fprintf(stderr, "warning: profile produced no models\n");
  return ms;
}
}  // namespace

int main(int argc, char** argv) {
  std::string net_name = "tiny";
  std::string json_out;
  // Min-of-9 per mode: a single profile run is ~100ms, so the extra reps
  // are cheap insurance against scheduler spikes on small/shared machines.
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" && i + 1 < argc) net_name = argv[++i];
    else if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_out = argv[++i];
    else {
      std::fprintf(stderr, "usage: bench_observability [--net NAME] [--reps N] [--json FILE]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  bench::print_header("observability overhead: profile stage, instrumentation off vs on",
                      "obs subsystem; bound: < 3% on the hottest stage");

  bench::ExperimentConfig ecfg;
  bench::Experiment e = bench::make_experiment(net_name, ecfg);

  ProfilerConfig pcfg;
  // One untimed warm-up run per mode: page in the caches and force the
  // lazy metric registrations so the timed "on" runs measure steady state.
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  (void)profile_stage_ms(*e.harness, pcfg);
  set_metrics_enabled(true);
  set_tracing_enabled(true);
  (void)profile_stage_ms(*e.harness, pcfg);

  std::vector<double> off_ms, on_ms;
  for (int r = 0; r < reps; ++r) {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
    off_ms.push_back(profile_stage_ms(*e.harness, pcfg));
    set_metrics_enabled(true);
    set_tracing_enabled(true);
    on_ms.push_back(profile_stage_ms(*e.harness, pcfg));
  }
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  // What the enabled runs recorded: the profile stage's forward passes are
  // the cost being protected, so the JSON carries the stage split too.
  const MetricsSnapshot snap = metrics().snapshot();

  const double off_min = *std::min_element(off_ms.begin(), off_ms.end());
  const double on_min = *std::min_element(on_ms.begin(), on_ms.end());
  const double overhead_pct = off_min > 0.0 ? (on_min / off_min - 1.0) * 100.0 : 0.0;
  const bool pass = overhead_pct < kMaxOverheadPct;

  std::printf("network %s, %d rep(s) per mode (min-of-N):\n", net_name.c_str(), reps);
  std::printf("  instrumentation off   %8.1f ms\n", off_min);
  std::printf("  instrumentation on    %8.1f ms\n", on_min);
  std::printf("  overhead              %+7.2f %%  (bound %.1f %%)  -> %s\n", overhead_pct,
              kMaxOverheadPct, pass ? "PASS" : "FAIL");
  std::printf("  profile forwards      %8lld  (per instrumented run: %lld)\n",
              static_cast<long long>(snap.counter("stage.profile.forwards")),
              static_cast<long long>(snap.counter("stage.profile.forwards") / (reps + 1)));

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "observability");
    j.kv("network", net_name);
    j.kv("reps", reps);
    j.kv("profile_off_ms_min", off_min);
    j.kv("profile_on_ms_min", on_min);
    j.kv("overhead_pct", overhead_pct);
    j.kv("bound_pct", kMaxOverheadPct);
    j.kv("pass", pass);
    j.key("forwards_per_stage").begin_object();
    j.kv("harness", snap.counter("stage.harness.forwards"));
    j.kv("profile", snap.counter("stage.profile.forwards"));
    j.kv("sigma", snap.counter("stage.sigma.forwards"));
    j.kv("objective", snap.counter("stage.objective.forwards"));
    j.kv("other", snap.counter("stage.other.forwards"));
    j.end_object();
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
