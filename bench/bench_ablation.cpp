// Ablation studies of the design choices DESIGN.md calls out:
//   A. the intercept theta in Eq. 5 (on vs off) — does the additive
//      constant of Sec. III-B matter for prediction quality?
//   B. Scheme 1 (equal-injection) vs Scheme 2 (gaussian output) for the
//      sigma search — agreement and cost.
//   C. profiling image count — the paper claims 50-200 images give stable
//      regressions; we sweep 4..64 on the scaled substrate.
//   D. xi solver — closed-form (theta=0 KKT) vs projected gradient vs
//      SQP: objective quality and wall time (the paper used Octave sqp).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/sigma_search.hpp"
#include "core/weight_profiler.hpp"
#include "core/weight_search.hpp"
#include "hw/energy_model.hpp"
#include "opt/search.hpp"
#include "io/table.hpp"

namespace {
using namespace mupod;
using namespace mupod::bench;
}  // namespace

int main() {
  print_header("Ablations — theta term, schemes, profile set size, xi solver",
               "Secs. III-B, V-A, V-C, V-D design choices");

  // Single-core sizing.
  ExperimentConfig cfg;
  cfg.eval_images = 160;
  cfg.profile_images = 24;
  Experiment e = make_experiment("nin", cfg);

  // --- A: theta on/off ------------------------------------------------------
  std::printf("[A] Eq. 5 intercept theta: prediction error with and without\n\n");
  {
    ProfilerConfig with_cfg, without_cfg;
    with_cfg.points = 10;
    with_cfg.reps_per_point = 1;
    without_cfg.points = 10;
    without_cfg.reps_per_point = 1;
    without_cfg.no_intercept = true;
    const auto with_theta = profile_lambda_theta(*e.harness, with_cfg);
    const auto without_theta = profile_lambda_theta(*e.harness, without_cfg);
    double worst_with = 0, worst_without = 0, mean_with = 0, mean_without = 0;
    for (std::size_t k = 0; k < with_theta.size(); ++k) {
      worst_with = std::max(worst_with, with_theta[k].max_rel_error);
      worst_without = std::max(worst_without, without_theta[k].max_rel_error);
      mean_with += with_theta[k].max_rel_error;
      mean_without += without_theta[k].max_rel_error;
    }
    mean_with /= static_cast<double>(with_theta.size());
    mean_without /= static_cast<double>(without_theta.size());
    std::printf("  with theta:    mean max-rel-err %.2f%%, worst %.2f%%\n", mean_with * 100,
                worst_with * 100);
    std::printf("  without theta: mean max-rel-err %.2f%%, worst %.2f%%\n", mean_without * 100,
                worst_without * 100);
    std::printf("  (Sec. III-B argues the additive constant is needed once output errors\n"
                "   are grouped across a whole tensor.)\n\n");
  }

  // --- B: scheme 1 vs scheme 2 ----------------------------------------------
  std::printf("[B] sigma search scheme comparison (1%% drop)\n\n");
  {
    ProfilerConfig pc;
    pc.points = 10;
    pc.reps_per_point = 1;
    const auto models = profile_lambda_theta(*e.harness, pc);
    TextTable t({"scheme", "sigma_YL", "acc@sigma", "wall_s"});
    for (auto scheme : {AccuracyScheme::kEqualInjection, AccuracyScheme::kGaussianOutput}) {
      SigmaSearchConfig sc;
      sc.relative_accuracy_drop = 0.01;
      sc.scheme = scheme;
      Stopwatch sw;
      const SigmaSearchResult res = search_sigma_yl(*e.harness, models, sc);
      t.add_row({scheme == AccuracyScheme::kEqualInjection ? "1 equal_scheme" : "2 gaussian",
                 TextTable::fmt(res.sigma_yl, 4), TextTable::fmt(res.accuracy_at_sigma, 4),
                 TextTable::fmt(sw.seconds(), 2)});
    }
    std::printf("%s", t.render_text().c_str());
    std::printf("  (Scheme 2 avoids network evaluation entirely; the paper uses it for\n"
                "   speed and Fig. 3 shows both give compatible accuracy estimates.)\n\n");
  }

  // --- C: profiling image count ------------------------------------------------
  std::printf("[C] lambda stability vs profiling set size (paper: 50-200 images at\n"
              "    ImageNet scale; the substrate is ~50x smaller)\n\n");
  {
    TextTable t({"images", "lambda(layer1)", "lambda(layer6)", "lambda(layer12)"});
    std::vector<double> ref;
    for (int images : {4, 8, 16, 32, 64}) {
      ExperimentConfig c2 = cfg;
      c2.profile_images = images;
      c2.eval_images = 32;  // only the profiling set matters here
      Experiment e2 = make_experiment("nin", c2);
      ProfilerConfig pc;
      pc.points = 8;
      pc.reps_per_point = 1;
      const LayerLinearModel l1 = profile_layer(*e2.harness, 0, pc);
      const LayerLinearModel l6 = profile_layer(*e2.harness, 5, pc);
      const LayerLinearModel l12 = profile_layer(*e2.harness, 11, pc);
      t.add_row({std::to_string(images), TextTable::fmt(l1.lambda, 4),
                 TextTable::fmt(l6.lambda, 4), TextTable::fmt(l12.lambda, 4)});
    }
    std::printf("%s", t.render_text().c_str());
    std::printf("  (lambdas should stabilize well below the paper's image budget.)\n\n");
  }

  // --- D: xi solver comparison --------------------------------------------------
  std::printf("[D] xi solver: objective value F(xi) and time, MAC objective @ sigma found\n\n");
  {
    ProfilerConfig pc;
    pc.points = 10;
    pc.reps_per_point = 1;
    const auto models = profile_lambda_theta(*e.harness, pc);
    SigmaSearchConfig sc;
    sc.relative_accuracy_drop = 0.01;
    const SigmaSearchResult sres = search_sigma_yl(*e.harness, models, sc);
    const ObjectiveSpec obj = objective_mac_energy(e.model.net, e.model.analyzed);

    TextTable t({"solver", "F(xi)", "iterations", "wall_ms"});
    for (auto solver : {XiSolver::kClosedForm, XiSolver::kProjectedGradient, XiSolver::kSqp}) {
      AllocatorConfig ac;
      ac.solver = solver;
      Stopwatch sw;
      const BitwidthAllocation a =
          allocate_bitwidths(models, sres.sigma_yl, e.harness->input_ranges(), obj, ac);
      const char* name = solver == XiSolver::kClosedForm
                             ? "closed-form (theta=0 KKT)"
                             : solver == XiSolver::kProjectedGradient ? "projected gradient"
                                                                      : "SQP (diag Newton)";
      t.add_row({name, TextTable::fmt(a.objective_value, 2), std::to_string(a.solver_iterations),
                 TextTable::fmt(sw.seconds() * 1e3, 1)});
    }
    std::printf("%s", t.render_text().c_str());
    std::printf("  (With small theta, xi_K ~ rho_K/sum(rho) is already near-optimal; the\n"
                "   iterative solvers only polish it — which is why the paper's 5-minute\n"
                "   Octave sqp step is cheap.)\n\n");
  }

  // --- E: analytic weight allocation (extension) vs the paper's search ----
  std::printf("[E] weight bitwidths: Sec. V-E uniform search vs the analytic per-layer\n"
              "    extension (Eq. 5 profiled on weight perturbations)\n\n");
  {
    Network& net = const_cast<Network&>(e.harness->net());
    WeightSearchConfig wcfg;
    wcfg.relative_accuracy_drop = 0.05;
    Stopwatch sw_search;
    const WeightSearchResult uniform = search_weight_bitwidth(net, *e.harness, {}, wcfg);
    const double t_search = sw_search.seconds();

    Stopwatch sw_analytic;
    ProfilerConfig wpc;
    wpc.points = 8;
    wpc.reps_per_point = 1;
    const auto wmodels = profile_weight_lambda_theta(net, *e.harness, wpc);
    const auto wranges = weight_ranges(net, e.model.analyzed);
    ObjectiveSpec wobj = objective_mac_energy(e.model.net, e.model.analyzed);
    // Binary-search the analytic weight budget against the same constraint.
    const double threshold = (1.0 - wcfg.relative_accuracy_drop) * e.harness->float_accuracy();
    const auto satisfied = [&](double sigma_w) {
      const BitwidthAllocation a = allocate_weight_bitwidths(wmodels, sigma_w, wranges, wobj);
      const Network::WeightSnapshot snap = net.snapshot_weights();
      apply_weight_formats(net, e.model.analyzed, a.formats);
      const double acc = e.harness->accuracy_full_forward({});
      net.restore_weights(snap);
      return acc >= threshold;
    };
    BinarySearchOptions bso;
    bso.initial_upper = 0.05;
    bso.relative_tolerance = 0.1;
    bso.tolerance = 1e-9;
    const BinarySearchResult found = binary_search_max_satisfying(satisfied, bso);
    const BitwidthAllocation analytic = found.value > 0.0
        ? allocate_weight_bitwidths(wmodels, found.value, wranges, wobj)
        : BitwidthAllocation{};
    const double t_analytic = sw_analytic.seconds();

    double analytic_eff = 0.0;
    if (!analytic.bits.empty())
      analytic_eff = effective_bitwidth(wobj.rho, analytic.bits);
    std::printf("  uniform search: W = %d bits everywhere (%.1f s)\n", uniform.bits, t_search);
    std::printf("  analytic:       effective W = %.2f bits, MAC-weighted (%.1f s)\n",
                analytic_eff, t_analytic);
    std::printf("  (the analytic variant allocates weight precision per layer — an\n"
                "   extension the paper leaves to 'other weight quantization techniques')\n");
  }
  return 0;
}
