// Fig. 4 reproduction: NiN (12 layers) — optimizing for MAC energy
// sacrifices bitwidth on low-MAC layers to cut bits on MAC-heavy layers.
// The paper shows per-layer bitwidths (baseline vs optimized-for-MAC),
// a 22.8% MAC-energy saving, and a bandwidth that is 5.6% WORSE than the
// baseline — the cross-objective trade-off.
#include <cstdio>
#include <vector>

#include "baseline/search_baseline.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "hw/energy_model.hpp"
#include "io/table.hpp"

int main() {
  using namespace mupod;
  using namespace mupod::bench;

  print_header("Fig. 4 — NiN per-layer bitwidths, optimized for MAC energy (1% drop)",
               "Sec. VI-A Fig. 4 (12 layers; 22.8% energy saving; bandwidth 5.6% worse)");

  ExperimentConfig cfg;
  cfg.eval_images = 192;
  Experiment e = make_experiment("nin", cfg);
  const auto& analyzed = e.model.analyzed;

  PipelineConfig pcfg;
  pcfg.harness.profile_images = cfg.profile_images;
  pcfg.harness.eval_images = cfg.eval_images;
  pcfg.harness.metric = cfg.metric;
  pcfg.profiler.points = 10;
  pcfg.profiler.reps_per_point = 2;
  pcfg.sigma.relative_accuracy_drop = 0.01;
  pcfg.search_weights = true;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(e.model.net, analyzed),
      objective_mac_energy(e.model.net, analyzed),
  };
  const PipelineResult r =
      run_pipeline(const_cast<Network&>(e.harness->net()), analyzed, *e.dataset, objectives, pcfg);

  BaselineConfig bcfg;
  bcfg.relative_accuracy_drop = 0.01;
  bcfg.min_bits = 3;
  bcfg.max_bits = 12;
  const BaselineResult base = profile_search_baseline(*e.harness, bcfg);

  const auto& mac_rho = objectives[1].rho;
  const auto& in_rho = objectives[0].rho;
  const auto& opt = r.objectives[1].alloc;
  const int weight_bits = r.objectives[1].weight_bits;
  const MacEnergyModel energy = MacEnergyModel::stripes_like();

  TextTable t({"layer", "name", "#MAC(x10^6)", "base_bits", "opt_bits", "base_E", "opt_E"});
  for (std::size_t k = 0; k < analyzed.size(); ++k) {
    const double base_e = static_cast<double>(mac_rho[k]) *
                          energy.mac_energy(base.bits[k], weight_bits) / 1e6;
    const double opt_e = static_cast<double>(mac_rho[k]) *
                         energy.mac_energy(opt.bits[k], weight_bits) / 1e6;
    t.add_row({std::to_string(k + 1), e.model.net.node(analyzed[k]).name,
               TextTable::fmt(static_cast<double>(mac_rho[k]) / 1e6, 2),
               std::to_string(base.bits[k]), std::to_string(opt.bits[k]),
               TextTable::fmt(base_e, 2), TextTable::fmt(opt_e, 2)});
  }
  std::printf("%s\n", t.render_text().c_str());

  const double base_e = energy.network_energy(mac_rho, base.bits, weight_bits);
  const double opt_e = energy.network_energy(mac_rho, opt.bits, weight_bits);
  const double base_bw = static_cast<double>(total_weighted_bits(in_rho, base.bits));
  const double opt_bw = static_cast<double>(total_weighted_bits(in_rho, opt.bits));

  std::printf("total MAC energy saving:  %.1f%%   (paper: 22.8%%)\n",
              percent_saving(base_e, opt_e));
  std::printf("bandwidth change:         %+.1f%%  (paper: 5.6%% WORSE, i.e. -5.6%%)\n",
              percent_saving(base_bw, opt_bw));
  std::printf("validated accuracy:       %.4f  (constraint: >= 0.99 relative)\n",
              r.objectives[1].validated_accuracy);
  std::printf("\nexpected shape: bits drop on MAC-heavy layers (conv blocks), rise on the\n"
              "cheap 1x1 cccp layers; energy saving at the cost of some bandwidth.\n");
  return 0;
}
