// bench_cluster: chaos bench for the sharded plan-serving cluster
// (src/cluster). Three phases, all on replicas warmed so that measured
// latency is routing + verified-cache work, never plan computation:
//
//   healthy     closed-loop queries against an unharmed cluster: the
//               latency floor (p50/p99) for the hedged configuration.
//   straggler   a kDelay fault (50 ms, ~30% of dispatches) is armed on
//               the replica the router prefers when idle. Run once with
//               hedging on (a second replica is tried after 5 ms; first
//               response wins) and once with hedging off. The hedged p99
//               must undercut the unhedged p99 — that gap is what hedged
//               retries buy against stragglers.
//   recovery    a replica is killed under load. Measures the time from
//               the kill until its circuit breaker opens (queries fail
//               over meanwhile) and, after reviving it, the time until a
//               half-open probe closes the breaker again.
//
// Every successful response is checked byte-identical to a single-process
// PlanService answer for the same query — chaos must never change the
// plan, only the path it takes. Exit code reflects the contract.
//
// Usage: bench_cluster [--net NAME] [--queries N] [--json FILE]
// --json writes a machine-readable summary (scripts/run_benchmarks.sh
// parks it at BENCH_cluster.json).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "core/fault.hpp"
#include "io/json_writer.hpp"

namespace {

using namespace mupod;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

bool plans_identical(const PlanResult& a, const PlanResult& b) {
  return a.alloc.bits == b.alloc.bits && a.alloc.xi == b.alloc.xi &&
         a.alloc.deltas == b.alloc.deltas && a.alloc.formats == b.alloc.formats &&
         a.sigma_used == b.sigma_used && a.objective_cost == b.objective_cost &&
         plan_result_checksum(a) == plan_result_checksum(b);
}

// Warms every replica's own PlanService (bypassing the router) so chaos
// phases only ever exercise the memoized path on healthy nodes.
void warm_replicas(ClusterController& cluster, const PlanKey& key,
                   const std::vector<PlanQuery>& queries) {
  cluster.replicate_profile(key);
  for (int id : cluster.replicas_for_hash(key.net_hash))
    for (const PlanQuery& q : queries) cluster.node(id).service().plan(key, q);
}

struct PhaseResult {
  std::vector<double> wall_ms;
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  std::int64_t mismatched = 0;
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
};

PhaseResult run_phase(ClusterController& cluster, const PlanKey& key,
                      const std::vector<PlanQuery>& queries,
                      const std::vector<PlanResult>& expected, int n) {
  PhaseResult r;
  for (int i = 0; i < n; ++i) {
    const std::size_t qi = static_cast<std::size_t>(i) % queries.size();
    const ClusterQueryResult q = cluster.plan(key, queries[qi]);
    if (!q.ok) {
      ++r.failed;
      continue;
    }
    ++r.ok;
    r.wall_ms.push_back(q.wall_ms);
    r.hedges += q.hedges;
    r.hedge_wins += q.hedge_won ? 1 : 0;
    if (!plans_identical(q.plan, expected[qi])) ++r.mismatched;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_name = "tiny";
  std::string json_out;
  int n_queries = 120;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" && i + 1 < argc) net_name = argv[++i];
    else if (arg == "--queries" && i + 1 < argc) n_queries = std::max(8, std::atoi(argv[++i]));
    else if (arg == "--json" && i + 1 < argc) json_out = argv[++i];
    else {
      std::fprintf(stderr, "usage: bench_cluster [--net NAME] [--queries N] [--json FILE]\n");
      return 2;
    }
  }

  bench::print_header("plan-serving cluster: hedged retries and breaker recovery under chaos",
                      "serving-layer extension; robustness contract (docs/method.md sec. 13)");

  bench::ExperimentConfig ecfg;
  bench::Experiment e = bench::make_experiment(net_name, ecfg);

  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = ecfg.profile_images;
  scfg.pipeline.harness.eval_images = 64;  // warm-up cost only; latency is cache-path
  scfg.pipeline.harness.batch = ecfg.batch;
  scfg.pipeline.profiler.points = 5;
  scfg.pipeline.search_weights = false;

  // Single-process ground truth: chaos must reproduce these byte-for-byte.
  PlanService baseline(scfg);
  const PlanKey key =
      baseline.register_network(e.model.net, e.model.analyzed, *e.dataset);
  std::vector<PlanQuery> queries(2);
  queries[0].accuracy_target = 0.02;
  queries[0].objective = objective_input_bits(e.model.net, e.model.analyzed);
  queries[1].accuracy_target = 0.05;
  queries[1].objective = objective_mac_energy(e.model.net, e.model.analyzed);
  std::vector<PlanResult> expected;
  for (const PlanQuery& q : queries) expected.push_back(baseline.plan(key, q));

  ClusterConfig hedged_cfg;
  hedged_cfg.nodes = 3;
  hedged_cfg.replicas = 2;
  hedged_cfg.node_threads = 2;
  hedged_cfg.attempt_timeout_us = 2'000'000;
  hedged_cfg.hedge_delay_us = 5'000;
  hedged_cfg.deadline_us = 30'000'000;
  ClusterConfig unhedged_cfg = hedged_cfg;
  unhedged_cfg.hedging = false;

  // The kDelay straggler: ~30% of dispatches to the victim stall 50 ms.
  // The victim is the lowest-id replica — the router's tie-break favorite
  // when both replicas are idle, so primaries genuinely hit it.
  FaultSchedule straggle;
  straggle.kind = FaultKind::kDelay;
  straggle.delay_us = 50'000;
  straggle.probability = 0.3;
  straggle.seed = 7;

  // --- healthy + straggler (hedging on) -----------------------------------
  ClusterController hedged(hedged_cfg, scfg);
  const PlanKey hkey = hedged.register_network(e.model.net, e.model.analyzed, *e.dataset);
  warm_replicas(hedged, hkey, queries);
  const std::vector<int> reps = hedged.replicas_for_hash(hkey.net_hash);
  const int straggler = *std::min_element(reps.begin(), reps.end());

  const PhaseResult healthy = run_phase(hedged, hkey, queries, expected, n_queries);
  hedged.faults().arm(hedged.node(straggler).fault_point(), straggle);
  const PhaseResult slow_hedged = run_phase(hedged, hkey, queries, expected, n_queries);

  // --- straggler (hedging off) --------------------------------------------
  ClusterController unhedged(unhedged_cfg, scfg);
  const PlanKey ukey = unhedged.register_network(e.model.net, e.model.analyzed, *e.dataset);
  warm_replicas(unhedged, ukey, queries);
  unhedged.faults().arm(unhedged.node(straggler).fault_point(), straggle);
  const PhaseResult slow_unhedged = run_phase(unhedged, ukey, queries, expected, n_queries);

  // --- kill / recovery -----------------------------------------------------
  ClusterConfig chaos_cfg = hedged_cfg;
  chaos_cfg.attempt_timeout_us = 400'000;
  chaos_cfg.hedge_delay_us = 30'000;
  chaos_cfg.max_attempts = 6;
  chaos_cfg.deadline_us = 60'000'000;
  chaos_cfg.breaker.failure_threshold = 1;  // a killed node gets few dispatches
  chaos_cfg.breaker.cooldown_us = 150'000;
  ClusterController chaos(chaos_cfg, scfg);
  const PlanKey ckey = chaos.register_network(e.model.net, e.model.analyzed, *e.dataset);
  warm_replicas(chaos, ckey, queries);
  const std::vector<int> creps = chaos.replicas_for_hash(ckey.net_hash);
  const int victim = *std::min_element(creps.begin(), creps.end());

  const std::int64_t t_kill = cluster_now_us();
  chaos.kill_node(victim);
  PhaseResult outage = run_phase(chaos, ckey, queries, expected, 8);
  double time_to_open_ms = -1.0;
  for (int i = 0; i < 500; ++i) {  // parked dispatches resolve at attempt_timeout
    chaos.sweep_pending();
    if (chaos.breaker(victim).counters().opened >= 1) {
      time_to_open_ms = static_cast<double>(cluster_now_us() - t_kill) / 1000.0;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  const std::int64_t t_revive = cluster_now_us();
  chaos.revive_node(victim);
  double time_to_recover_ms = -1.0;
  for (int i = 0; i < 1000; ++i) {  // cooldown, then a probe query closes it
    const ClusterQueryResult q = chaos.plan(ckey, queries[i % queries.size()]);
    if (q.ok) {
      outage.ok++;
      if (!plans_identical(q.plan, expected[i % queries.size()])) outage.mismatched++;
    } else {
      outage.failed++;
    }
    chaos.sweep_pending();
    if (chaos.breaker(victim).counters().closed >= 1 &&
        chaos.breaker(victim).state(cluster_now_us()) == BreakerState::kClosed) {
      time_to_recover_ms = static_cast<double>(cluster_now_us() - t_revive) / 1000.0;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // --- report --------------------------------------------------------------
  const double healthy_p50 = percentile(healthy.wall_ms, 0.50);
  const double healthy_p99 = percentile(healthy.wall_ms, 0.99);
  const double hedged_p50 = percentile(slow_hedged.wall_ms, 0.50);
  const double hedged_p99 = percentile(slow_hedged.wall_ms, 0.99);
  const double unhedged_p50 = percentile(slow_unhedged.wall_ms, 0.50);
  const double unhedged_p99 = percentile(slow_unhedged.wall_ms, 0.99);
  const double p99_speedup = hedged_p99 > 0.0 ? unhedged_p99 / hedged_p99 : 0.0;
  const double hedge_win_rate =
      slow_hedged.hedges > 0
          ? static_cast<double>(slow_hedged.hedge_wins) / static_cast<double>(slow_hedged.hedges)
          : 0.0;

  const std::int64_t mismatched =
      healthy.mismatched + slow_hedged.mismatched + slow_unhedged.mismatched + outage.mismatched;
  const std::int64_t failed =
      healthy.failed + slow_hedged.failed + slow_unhedged.failed + outage.failed;
  const bool recovered = time_to_open_ms >= 0.0 && time_to_recover_ms >= 0.0;
  const bool pass =
      mismatched == 0 && failed == 0 && recovered && hedged_p99 < unhedged_p99;

  std::printf("network %s, %d queries per phase, straggler node %d (50 ms delay, p=0.3):\n",
              net_name.c_str(), n_queries, straggler);
  std::printf("  healthy                p50 %7.2f ms   p99 %7.2f ms\n", healthy_p50, healthy_p99);
  std::printf("  straggler, hedging on  p50 %7.2f ms   p99 %7.2f ms   (%lld hedges, "
              "win rate %.2f)\n",
              hedged_p50, hedged_p99, static_cast<long long>(slow_hedged.hedges),
              hedge_win_rate);
  std::printf("  straggler, hedging off p50 %7.2f ms   p99 %7.2f ms\n", unhedged_p50,
              unhedged_p99);
  std::printf("  hedging p99 speedup    %.2fx\n", p99_speedup);
  std::printf("  node %d killed: breaker opened after %.1f ms, closed %.1f ms after revive\n",
              victim, time_to_open_ms, time_to_recover_ms);
  std::printf("  byte-identical plans   %lld/%lld responses, %lld failed  -> %s\n",
              static_cast<long long>(healthy.ok + slow_hedged.ok + slow_unhedged.ok + outage.ok -
                                     mismatched),
              static_cast<long long>(healthy.ok + slow_hedged.ok + slow_unhedged.ok + outage.ok),
              static_cast<long long>(failed), pass ? "PASS" : "FAIL");

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "cluster");
    j.kv("network", net_name);
    j.kv("queries_per_phase", n_queries);
    j.kv("straggler_node", straggler);
    j.kv("straggler_delay_ms", 50.0);
    j.kv("straggler_probability", 0.3);
    j.key("healthy").begin_object();
    j.kv("p50_ms", healthy_p50).kv("p99_ms", healthy_p99);
    j.end_object();
    j.key("straggler_hedged").begin_object();
    j.kv("p50_ms", hedged_p50).kv("p99_ms", hedged_p99);
    j.kv("hedges", slow_hedged.hedges).kv("hedge_wins", slow_hedged.hedge_wins);
    j.kv("hedge_win_rate", hedge_win_rate);
    j.end_object();
    j.key("straggler_unhedged").begin_object();
    j.kv("p50_ms", unhedged_p50).kv("p99_ms", unhedged_p99);
    j.end_object();
    j.kv("hedge_p99_speedup", p99_speedup);
    j.key("recovery").begin_object();
    j.kv("victim_node", victim);
    j.kv("time_to_open_ms", time_to_open_ms);
    j.kv("time_to_recover_ms", time_to_recover_ms);
    j.end_object();
    j.kv("mismatched", mismatched);
    j.kv("failed", failed);
    j.kv("pass", pass);
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
