// bench_serve: load generator for the online inference server (src/infer).
//
// Closed-loop phases (client threads, each keeping one request
// outstanding) measure serving throughput and latency on both backends.
// The headline contract is the dynamic-batching story itself: against the
// SAME cap-8 batching server, a lone single-request-at-a-time caller pays
// the batch window on every request (the batcher waits max_wait_us for
// companions that never arrive, then timeout-flushes a 1-row batch), while
// a concurrent fleet fills batches before the window expires (size
// flushes) and amortizes the window across max_batch rows:
//
//     batched fleet throughput >= 2x single-request-at-a-time throughput
//
// at batch cap 8 (exit code enforces it, float path). A cap-1 fleet phase
// is also recorded as the no-batching reference — on a host whose kernels
// have no batch-level efficiency (one core, per-image im2col) it bounds
// what batching alone can add to aggregate throughput.
//
// Open-loop phases submit at a fixed offered rate with a deadline attached,
// under and over the measured batched capacity: the overloaded run must
// degrade by diagnosed statuses (queue-full sheds, queued expiries), never
// by unbounded queueing.
//
// A final determinism phase re-checks the bit contract end to end: logits
// rows served out of coalesced batches are memcmp-identical to
// one-at-a-time Network::forward calls.
//
// Latency and batch-size distributions come from the infer.* histograms
// (obs::HistogramMetric::summary), reset per phase — the bench consumes
// the same instruments operators would scrape.
//
// Usage: bench_serve [--net NAME] [--requests N] [--clients N] [--json FILE]
// scripts/run_benchmarks.sh parks the JSON at bench_logs/BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/clock.hpp"
#include "infer/server.hpp"
#include "io/json_writer.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace mupod;

struct PhaseResult {
  std::string label;
  InferBackend backend = InferBackend::kFloat;
  int max_batch = 1;
  int clients = 1;
  int requests = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  ServerStats stats;
  HistogramSummary latency_ms;
  HistogramSummary batch_size;
  std::vector<double> batch_bounds;
  std::vector<std::int64_t> batch_counts;
};

std::optional<MetricsSnapshot::HistogramValue> find_histogram(const MetricsSnapshot& snap,
                                                              const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return h;
  return std::nullopt;
}

void fill_from_metrics(PhaseResult& r) {
  const MetricsSnapshot snap = metrics().snapshot();
  if (const auto lat = find_histogram(snap, "infer.latency.ms")) r.latency_ms = lat->summary();
  if (const auto bs = find_histogram(snap, "infer.batch.size")) {
    r.batch_size = bs->summary();
    r.batch_bounds = bs->bounds;
    r.batch_counts = bs->counts;
  }
}

// One closed-loop phase: `clients` threads, one outstanding request each,
// `requests` total. A fresh server (and fresh metrics window) per phase so
// stats and histograms describe exactly this load.
// The serving batch window. Both sides of the headline ratio run under
// this same configuration — what varies is the client pattern, not the
// server.
constexpr std::int64_t kMaxWaitUs = 2500;

PhaseResult closed_loop(const bench::Experiment& e, const std::vector<Tensor>& pool,
                        InferBackend backend, int max_batch, int clients, int requests,
                        const std::vector<FixedPointFormat>* formats) {
  metrics().reset();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = max_batch;
  cfg.batch.max_wait_us = kMaxWaitUs;
  cfg.max_queue = static_cast<std::size_t>(clients) * 2 + 8;
  InferenceServer server(cfg);
  server.register_model("m", e.model.net, e.model.analyzed);
  if (formats != nullptr) server.install_plan("m", *formats);
  server.start();

  std::atomic<int> next{0};
  std::atomic<int> failures{0};
  bench::Stopwatch sw;
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        InferOptions opts;
        opts.backend = backend;
        const InferenceResult res =
            server.submit(Tensor(pool[static_cast<std::size_t>(i) % pool.size()]), opts).get();
        if (res.status != InferStatus::kOk) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : fleet) t.join();
  const double wall = sw.seconds();
  server.stop();

  PhaseResult r;
  r.backend = backend;
  r.max_batch = max_batch;
  r.clients = clients;
  r.requests = requests;
  r.wall_s = wall;
  r.throughput_rps = wall > 0 ? static_cast<double>(requests) / wall : 0.0;
  r.stats = server.stats();
  fill_from_metrics(r);
  if (failures.load() > 0) r.requests = -1;  // signal to the caller
  return r;
}

struct OpenLoopResult {
  double offered_rps = 0.0;
  int offered = 0;
  std::int64_t ok = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t expired_in_queue = 0;
  std::int64_t deadline_exceeded = 0;
  double p99_ms = 0.0;
};

// One open-loop phase: a single submitter paces `offered` requests at
// `rate_rps` with a deadline attached; a bounded queue converts overload
// into diagnosed sheds/expiries instead of latency collapse.
OpenLoopResult open_loop(const bench::Experiment& e, const std::vector<Tensor>& pool,
                         double rate_rps, int offered) {
  metrics().reset();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 1000;
  cfg.max_queue = 32;
  InferenceServer server(cfg);
  server.register_model("m", e.model.net, e.model.analyzed);
  server.start();

  std::vector<std::future<InferenceResult>> futs;
  futs.reserve(static_cast<std::size_t>(offered));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < offered; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(static_cast<std::int64_t>(
                    1e6 * static_cast<double>(i) / rate_rps)));
    InferOptions opts;
    opts.deadline_us = 50000;  // 50 ms: overload turns into expiries, visibly
    futs.push_back(
        server.submit(Tensor(pool[static_cast<std::size_t>(i) % pool.size()]), opts));
  }
  for (auto& f : futs) f.get();
  server.stop();

  OpenLoopResult r;
  r.offered_rps = rate_rps;
  r.offered = offered;
  const ServerStats s = server.stats();
  r.ok = s.completed;
  r.rejected_queue_full = s.rejected_queue_full;
  r.expired_in_queue = s.expired_in_queue;
  r.deadline_exceeded = s.deadline_exceeded;
  const MetricsSnapshot snap = metrics().snapshot();
  if (const auto lat = find_histogram(snap, "infer.latency.ms"))
    r.p99_ms = lat->percentile(0.99);
  return r;
}

void print_phase(const PhaseResult& r) {
  std::printf("  %-22s %8.1f req/s   p50 %7.2f ms   p99 %7.2f ms   mean batch %.2f\n",
              r.label.c_str(), r.throughput_rps, r.latency_ms.p50, r.latency_ms.p99,
              r.batch_size.mean);
}

void json_phase(JsonWriter& j, const PhaseResult& r) {
  j.begin_object();
  j.kv("label", r.label);
  j.kv("backend", infer_backend_name(r.backend));
  j.kv("max_batch", r.max_batch);
  j.kv("clients", r.clients);
  j.kv("requests", r.requests);
  j.kv("wall_s", r.wall_s);
  j.kv("throughput_rps", r.throughput_rps);
  j.key("latency_ms").begin_object();
  j.kv("count", r.latency_ms.count).kv("mean", r.latency_ms.mean);
  j.kv("p50", r.latency_ms.p50).kv("p90", r.latency_ms.p90).kv("p99", r.latency_ms.p99);
  j.end_object();
  j.key("batch_size").begin_object();
  j.kv("mean", r.batch_size.mean).kv("p50", r.batch_size.p50).kv("p99", r.batch_size.p99);
  j.key("bounds").begin_array();
  for (double b : r.batch_bounds) j.value(b);
  j.end_array();
  j.key("counts").begin_array();
  for (std::int64_t c : r.batch_counts) j.value(c);
  j.end_array();
  j.end_object();
  j.key("flushes").begin_object();
  j.kv("size", r.stats.size_flushes).kv("timeout", r.stats.timeout_flushes);
  j.kv("drain", r.stats.drain_flushes);
  j.end_object();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_name = "nin";
  std::string json_out;
  int requests = 240;
  int clients = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" && i + 1 < argc) net_name = argv[++i];
    else if (arg == "--requests" && i + 1 < argc) requests = std::max(16, std::atoi(argv[++i]));
    else if (arg == "--clients" && i + 1 < argc) clients = std::max(1, std::atoi(argv[++i]));
    else if (arg == "--json" && i + 1 < argc) json_out = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: bench_serve [--net NAME] [--requests N] [--clients N] [--json FILE]\n");
      return 2;
    }
  }

  bench::print_header("online inference serving: dynamic batching, float vs integer",
                      "serving-layer extension; batching contract (docs/method.md sec. 14)");

  bench::ExperimentConfig ecfg;
  bench::Experiment e = bench::make_experiment(net_name, ecfg);
  std::printf("network %s  (%d analyzed layers)  clients %d  requests/phase %d\n\n",
              net_name.c_str(), static_cast<int>(e.model.analyzed.size()), clients, requests);

  // Pre-rendered image pool: submit cost is a tensor copy, so the phases
  // measure serving, not synthetic-image rendering.
  std::vector<Tensor> pool;
  for (int i = 0; i < 32; ++i) {
    Tensor t(Shape({1, e.model.channels, e.model.height, e.model.width}));
    e.dataset->render_image(i, t, 0);
    pool.push_back(std::move(t));
  }
  // Uniform Q8.8 plan for the integer phases: the bench measures serving
  // throughput; plan *quality* is the pipeline benches' business.
  const std::vector<FixedPointFormat> formats(e.model.analyzed.size(),
                                              FixedPointFormat{8, 8});

  set_metrics_enabled(true);

  std::printf("closed loop (batch window %lld us)\n", static_cast<long long>(kMaxWaitUs));
  std::vector<PhaseResult> phases;
  const struct {
    const char* label;
    InferBackend backend;
    int max_batch;
    int clients;
  } kPhases[] = {
      // The headline pair: same cap-8 server, sequential caller vs fleet.
      {"float  seq cap=8", InferBackend::kFloat, 8, 1},
      {"float  fleet cap=8", InferBackend::kFloat, 8, -1},
      // No-batching reference: the fleet against a cap-1 server.
      {"float  fleet cap=1", InferBackend::kFloat, 1, -1},
      {"integer seq cap=8", InferBackend::kInteger, 8, 1},
      {"integer fleet cap=8", InferBackend::kInteger, 8, -1},
  };
  bool all_ok = true;
  for (const auto& p : kPhases) {
    const int n_clients = p.clients < 0 ? clients : p.clients;
    PhaseResult r = closed_loop(e, pool, p.backend, p.max_batch, n_clients, requests,
                                p.backend == InferBackend::kInteger ? &formats : nullptr);
    r.label = p.label;
    if (r.requests < 0) {
      std::fprintf(stderr, "error: phase '%s' had failed requests\n", p.label);
      all_ok = false;
      r.requests = requests;
    }
    print_phase(r);
    phases.push_back(std::move(r));
  }

  const double float_speedup =
      phases[0].throughput_rps > 0 ? phases[1].throughput_rps / phases[0].throughput_rps : 0.0;
  const double int_speedup =
      phases[3].throughput_rps > 0 ? phases[4].throughput_rps / phases[3].throughput_rps : 0.0;
  const bool speedup_ok = float_speedup >= 2.0;
  std::printf("\n  batched speedup        float %.2fx  integer %.2fx   (>= 2.00x float: %s)\n",
              float_speedup, int_speedup, speedup_ok ? "PASS" : "FAIL");

  // Open loop: under and over the measured batched capacity.
  const double capacity = phases[1].throughput_rps;
  std::printf("\nopen loop (paced submitter, 50 ms deadline, queue bound 32)\n");
  std::vector<OpenLoopResult> open;
  for (const double frac : {0.5, 1.5}) {
    const double rate = std::max(capacity * frac, 10.0);
    OpenLoopResult r = open_loop(e, pool, rate, requests);
    std::printf(
        "  offered %8.1f req/s   ok %4lld   shed %4lld   expired %4lld   late %3lld   p99 "
        "%7.2f ms\n",
        r.offered_rps, static_cast<long long>(r.ok),
        static_cast<long long>(r.rejected_queue_full),
        static_cast<long long>(r.expired_in_queue),
        static_cast<long long>(r.deadline_exceeded), r.p99_ms);
    open.push_back(r);
  }

  // Determinism gate: batched rows vs one-at-a-time forwards, bitwise.
  bool determinism_ok = true;
  {
    InferenceServerConfig cfg;
    cfg.batch.max_batch = 8;
    cfg.batch.max_wait_us = 1000000;
    InferenceServer server(cfg);
    server.register_model("m", e.model.net, e.model.analyzed);
    std::vector<std::future<InferenceResult>> futs;
    for (int i = 0; i < 8; ++i) futs.push_back(server.submit(Tensor(pool[i])));
    server.start();  // queue == cap: one coalesced batch
    for (int i = 0; i < 8; ++i) {
      const InferenceResult r = futs[static_cast<std::size_t>(i)].get();
      const Tensor solo = e.model.net.forward(pool[static_cast<std::size_t>(i)]);
      if (r.status != InferStatus::kOk || r.batch_rows != 8 ||
          static_cast<std::int64_t>(r.logits.size()) != solo.numel() ||
          std::memcmp(r.logits.data(), solo.data(), r.logits.size() * sizeof(float)) != 0) {
        determinism_ok = false;
        break;
      }
    }
    server.stop();
  }
  std::printf("\n  batched == sequential  (bitwise, 8 rows) -> %s\n",
              determinism_ok ? "PASS" : "FAIL");

  const bool pass = all_ok && speedup_ok && determinism_ok;

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "serve");
    j.kv("network", net_name);
    j.kv("clients", clients);
    j.kv("requests_per_phase", requests);
    j.key("closed_loop").begin_array();
    for (const PhaseResult& r : phases) json_phase(j, r);
    j.end_array();
    j.kv("batched_speedup_float", float_speedup);
    j.kv("batched_speedup_integer", int_speedup);
    j.key("open_loop").begin_array();
    for (const OpenLoopResult& r : open) {
      j.begin_object();
      j.kv("offered_rps", r.offered_rps);
      j.kv("offered", r.offered);
      j.kv("ok", r.ok);
      j.kv("rejected_queue_full", r.rejected_queue_full);
      j.kv("expired_in_queue", r.expired_in_queue);
      j.kv("deadline_exceeded", r.deadline_exceeded);
      j.kv("p99_ms", r.p99_ms);
      j.end_object();
    }
    j.end_array();
    j.kv("determinism_ok", determinism_ok);
    j.kv("pass", pass);
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
