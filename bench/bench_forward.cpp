// bench_forward: min-of-N forward throughput per zoo network, old scalar
// path vs the register-blocked packed GEMM path (src/tensor/gemm.cpp), on
// the same binary via set_gemm_mode. Two batch sizes per network:
//
//   batch 1   the serving case — the old conv path had no intra-image
//             parallelism (it fanned over image x group), so this is where
//             GEMM tile-task scheduling matters most;
//   batch 8   the profiling case, where both paths parallelise across
//             images and the win is per-core kernel throughput.
//
// Each (network, batch) row also cross-checks the two paths against each
// other (max |Δ| over the output logits) — the kernel swap must change
// wall time, never the answer beyond float reassociation.
//
// Each row additionally times the INTEGER execution backend
// (quant/qexec + tensor/qgemm) at int16 and int8 activation formats
// derived from the network's own profiled input ranges — the
// edge-deployment measurement the paper's cost models predict. The
// integer columns report wall time plus max |Δ| vs the float logits
// (bounded by the formats' quantization error, NOT zero).
//
// Usage: bench_forward [--nets a,b,c] [--reps N] [--json FILE]
// scripts/run_benchmarks.sh parks the JSON at bench_logs/BENCH_forward.json
// so the forward-throughput trajectory is machine-readable per commit.
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/json_writer.hpp"
#include "quant/qexec.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace mupod;
using mupod::bench::Stopwatch;

struct Row {
  std::string net;
  int batch = 0;
  double legacy_ms = 0.0;
  double blocked_ms = 0.0;
  double max_abs_diff = 0.0;
  double int16_ms = 0.0;
  double int8_ms = 0.0;
  double int16_max_diff = 0.0;  // vs float logits; bounded by quant error
  double int8_max_diff = 0.0;
  double speedup() const { return blocked_ms > 0.0 ? legacy_ms / blocked_ms : 0.0; }
};

// Activation formats for the integer rows, derived the way the allocator
// does: I from the profiled max |X_K| of each analyzed layer's input,
// F = total bits - I.
std::vector<FixedPointFormat> uniform_formats(const ZooModel& model, const Tensor& x, int bits) {
  const std::vector<double> ranges = model.net.profile_input_ranges(x);
  std::vector<FixedPointFormat> fmts;
  fmts.reserve(model.analyzed.size());
  for (int id : model.analyzed) {
    FixedPointFormat f;
    f.integer_bits = FixedPointFormat::integer_bits_for_range(ranges[static_cast<std::size_t>(id)]);
    f.fraction_bits = bits - f.integer_bits;
    fmts.push_back(f);
  }
  return fmts;
}

double min_qforward_ms(const QuantizedNetwork& qnet, const Tensor& x, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Tensor y = qnet.forward(x);
    best = std::min(best, sw.seconds() * 1e3);
  }
  return best;
}

double max_diff(const Tensor& a, const Tensor& b) {
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

Tensor random_input(const ZooModel& model, int batch, std::uint64_t seed) {
  Tensor x(Shape({batch, model.channels, model.height, model.width}));
  Rng rng(seed);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  return x;
}

double min_forward_ms(Network& net, const Tensor& x, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Tensor y = net.forward(x);
    best = std::min(best, sw.seconds() * 1e3);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> nets = {"nin", "alexnet", "mobilenet"};
  int reps = 5;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nets" && i + 1 < argc) {
      nets.clear();
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        nets.push_back(list.substr(pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--nets a,b,c] [--reps N] [--json FILE]\n", argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  bench::print_header("forward throughput: legacy scalar path vs blocked GEMM path",
                      "forward hot path (Eq. 5 profiling / sigma search cost)");
  std::printf("workers %d (MUPOD_THREADS to pin), min of %d rep(s), kernel ISA %s\n\n",
              parallel_worker_count(), reps, kernel_isa_name(kernel_isa()));
  std::printf("%-10s %5s  %12s %12s %8s %12s %10s %10s\n", "net", "batch", "legacy ms",
              "blocked ms", "speedup", "max |diff|", "int16 ms", "int8 ms");

  std::vector<Row> rows;
  bool all_finite = true;
  for (const std::string& name : nets) {
    // Forward timing only: skip calibration and head training so the
    // build cost stays out of the benchmark.
    ZooOptions zo;
    zo.calibration_images = 0;
    zo.head_images = 0;
    ZooModel model = build_model(name, zo);
    for (const int batch : {1, 8}) {
      const Tensor x = random_input(model, batch, 7 + batch);

      set_gemm_mode(GemmMode::kLegacy);
      Tensor y_legacy = model.net.forward(x);  // warm-up + parity reference
      const double legacy_ms = min_forward_ms(model.net, x, reps);

      set_gemm_mode(GemmMode::kBlocked);
      Tensor y_blocked = model.net.forward(x);
      const double blocked_ms = min_forward_ms(model.net, x, reps);
      set_gemm_mode(GemmMode::kBlocked);

      Row row;
      row.net = name;
      row.batch = batch;
      row.legacy_ms = legacy_ms;
      row.blocked_ms = blocked_ms;
      for (std::int64_t i = 0; i < y_legacy.numel(); ++i) {
        const double d = std::abs(static_cast<double>(y_legacy[i]) - y_blocked[i]);
        if (!(d < 1e30)) all_finite = false;
        row.max_abs_diff = std::max(row.max_abs_diff, d);
      }

      // Integer backend: uniform 16-bit and 8-bit activation formats from
      // the network's own profiled ranges, weights at the same width.
      {
        QExecOptions qo16;
        qo16.weight_bits = 16;
        QuantizedNetwork q16(model.net, model.analyzed, uniform_formats(model, x, 16), qo16);
        Tensor y16 = q16.forward(x);  // warm-up + parity sample
        row.int16_ms = min_qforward_ms(q16, x, reps);
        row.int16_max_diff = max_diff(y_blocked, y16);

        QExecOptions qo8;
        qo8.weight_bits = 8;
        QuantizedNetwork q8(model.net, model.analyzed, uniform_formats(model, x, 8), qo8);
        Tensor y8 = q8.forward(x);
        row.int8_ms = min_qforward_ms(q8, x, reps);
        row.int8_max_diff = max_diff(y_blocked, y8);
        if (!(row.int16_max_diff < 1e30) || !(row.int8_max_diff < 1e30)) all_finite = false;
      }

      rows.push_back(row);
      std::printf("%-10s %5d  %12.2f %12.2f %7.2fx %12.2e %10.2f %10.2f\n", name.c_str(), batch,
                  legacy_ms, blocked_ms, row.speedup(), row.max_abs_diff, row.int16_ms,
                  row.int8_ms);
    }
  }

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "forward");
    j.kv("workers", parallel_worker_count());
    j.kv("reps", reps);
    j.kv("kernel_isa", kernel_isa_name(kernel_isa()));
    j.kv("paths_agree", all_finite);
    j.key("rows").begin_array();
    for (const Row& r : rows) {
      j.begin_object();
      j.kv("net", r.net);
      j.kv("batch", r.batch);
      j.kv("legacy_ms_min", r.legacy_ms);
      j.kv("blocked_ms_min", r.blocked_ms);
      j.kv("speedup", r.speedup());
      j.kv("max_abs_diff", r.max_abs_diff);
      j.kv("int16_ms_min", r.int16_ms);
      j.kv("int8_ms_min", r.int8_ms);
      j.kv("int16_max_diff", r.int16_max_diff);
      j.kv("int8_max_diff", r.int8_max_diff);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("\nwrote %s\n", json_out.c_str());
  }
  return 0;
}
