// bench_forward: min-of-N forward throughput per zoo network, old scalar
// path vs the register-blocked packed GEMM path (src/tensor/gemm.cpp), on
// the same binary via set_gemm_mode. Two batch sizes per network:
//
//   batch 1   the serving case — the old conv path had no intra-image
//             parallelism (it fanned over image x group), so this is where
//             GEMM tile-task scheduling matters most;
//   batch 8   the profiling case, where both paths parallelise across
//             images and the win is per-core kernel throughput.
//
// Each (network, batch) row also cross-checks the two paths against each
// other (max |Δ| over the output logits) — the kernel swap must change
// wall time, never the answer beyond float reassociation.
//
// Each row additionally times the INTEGER execution backend
// (quant/qexec + tensor/qgemm) at int16 and int8 activation formats
// derived from the network's own profiled input ranges — the
// edge-deployment measurement the paper's cost models predict. The
// integer columns report wall time plus max |Δ| vs the float logits
// (bounded by the formats' quantization error, NOT zero).
//
// Each row ALSO times the §17 graph-compiler artifacts — the fused float
// program the inference server registers and the fused int8 program a
// plan install builds — against their unfused counterparts. The fused
// float program must be bitwise identical to the blocked path
// (fused_max_diff == 0); fused int8 elides the interior
// dequantize/requantize passes and the separate ReLU passes, so it must
// beat unfused int8 at batch 1 (the int8_fused_speedup column /
// `fused_int8_wins_batch1` in the JSON). Per-net fusion counts land in
// the JSON rows; `--print-fusion` emits them alone as a JSON object for
// the bench manifest.
//
// Usage: bench_forward [--nets a,b,c] [--reps N] [--json FILE] [--print-fusion]
// scripts/run_benchmarks.sh parks the JSON at bench_logs/BENCH_forward.json
// so the forward-throughput trajectory is machine-readable per commit.
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compile/compiled_network.hpp"
#include "compile/graph_compiler.hpp"
#include "io/json_writer.hpp"
#include "quant/qexec.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"
#include "zoo/zoo.hpp"

namespace {

using namespace mupod;
using mupod::bench::Stopwatch;

struct Row {
  std::string net;
  int batch = 0;
  double legacy_ms = 0.0;
  double blocked_ms = 0.0;
  double max_abs_diff = 0.0;
  double int16_ms = 0.0;
  double int8_ms = 0.0;
  double int16_max_diff = 0.0;  // vs float logits; bounded by quant error
  double int8_max_diff = 0.0;
  double fused_ms = 0.0;           // compiled float program (§17)
  double fused_max_diff = 0.0;     // vs blocked path; must be exactly 0
  double int8_fused_ms = 0.0;      // compiled int8 program
  double int8_fused_max_diff = 0.0;
  FusionCoverage fusion;           // from the int8 compile
  double speedup() const { return blocked_ms > 0.0 ? legacy_ms / blocked_ms : 0.0; }
  double int8_fused_speedup() const {
    return int8_fused_ms > 0.0 ? int8_ms / int8_fused_ms : 0.0;
  }
};

// Activation formats for the integer rows, derived the way the allocator
// does: I from the profiled max |X_K| of each analyzed layer's input,
// F = total bits - I.
std::vector<FixedPointFormat> uniform_formats(const ZooModel& model, const Tensor& x, int bits) {
  const std::vector<double> ranges = model.net.profile_input_ranges(x);
  std::vector<FixedPointFormat> fmts;
  fmts.reserve(model.analyzed.size());
  for (int id : model.analyzed) {
    FixedPointFormat f;
    f.integer_bits = FixedPointFormat::integer_bits_for_range(ranges[static_cast<std::size_t>(id)]);
    f.fraction_bits = bits - f.integer_bits;
    fmts.push_back(f);
  }
  return fmts;
}

double min_qforward_ms(const QuantizedNetwork& qnet, const Tensor& x, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Tensor y = qnet.forward(x);
    best = std::min(best, sw.seconds() * 1e3);
  }
  return best;
}

double min_cforward_ms(const CompiledNetwork& cnet, const Tensor& x, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Tensor y = cnet.forward(x);
    best = std::min(best, sw.seconds() * 1e3);
  }
  return best;
}

// Interleaved min-of-N for the fused-vs-unfused comparison: alternating
// the two programs rep by rep inside one loop means slow clock drift
// (VM frequency wander, thermal throttling) lands on both measurements
// equally, so the difference between the two minima reflects real work
// rather than which program happened to run during the fast phase.
std::pair<double, double> min_interleaved_ms(const QuantizedNetwork& qnet,
                                             const CompiledNetwork& cnet, const Tensor& x,
                                             int reps) {
  double best_q = 1e300, best_c = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Stopwatch sw;
      Tensor y = qnet.forward(x);
      best_q = std::min(best_q, sw.seconds() * 1e3);
    }
    {
      Stopwatch sw;
      Tensor y = cnet.forward(x);
      best_c = std::min(best_c, sw.seconds() * 1e3);
    }
  }
  return {best_q, best_c};
}

double max_diff(const Tensor& a, const Tensor& b) {
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

Tensor random_input(const ZooModel& model, int batch, std::uint64_t seed) {
  Tensor x(Shape({batch, model.channels, model.height, model.width}));
  Rng rng(seed);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  return x;
}

double min_forward_ms(Network& net, const Tensor& x, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Tensor y = net.forward(x);
    best = std::min(best, sw.seconds() * 1e3);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> nets = {"nin", "alexnet", "mobilenet"};
  int reps = 5;
  bool print_fusion = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-fusion") {
      print_fusion = true;
    } else if (arg == "--nets" && i + 1 < argc) {
      nets.clear();
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        nets.push_back(list.substr(pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--nets a,b,c] [--reps N] [--json FILE] [--print-fusion]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  if (print_fusion) {
    // Per-net fusion counts for the int8 compile, as one JSON object —
    // embedded verbatim into BENCH_manifest.json by run_benchmarks.sh.
    JsonWriter j;
    j.begin_object();
    for (const std::string& name : nets) {
      ZooOptions zo;
      zo.calibration_images = 0;
      zo.head_images = 0;
      ZooModel model = build_model(name, zo);
      const Tensor x = random_input(model, 1, 8);
      CompileOptions co;
      co.weight_bits = 8;
      const CompiledGraph g =
          GraphCompiler(co).rewrite(model.net, model.analyzed, uniform_formats(model, x, 8));
      const FusionCoverage& c = g.coverage;
      j.key(name).begin_object();
      j.kv("relu_fused", c.relu_fused);
      j.kv("norm_folded", c.norm_folded);
      j.kv("noops_dropped", c.noops_dropped);
      j.kv("qdq_elided", c.qdq_elided);
      j.kv("regions", c.regions);
      j.end_object();
    }
    j.end_object();
    std::printf("%s\n", j.str().c_str());
    return 0;
  }

  bench::print_header("forward throughput: legacy scalar path vs blocked GEMM path",
                      "forward hot path (Eq. 5 profiling / sigma search cost)");
  std::printf("workers %d (MUPOD_THREADS to pin), min of %d rep(s), kernel ISA %s\n\n",
              parallel_worker_count(), reps, kernel_isa_name(kernel_isa()));
  std::printf("%-10s %5s  %12s %12s %8s %12s %10s %10s %10s %10s %8s\n", "net", "batch",
              "legacy ms", "blocked ms", "speedup", "max |diff|", "int16 ms", "int8 ms",
              "fused ms", "i8fuse ms", "i8 gain");

  std::vector<Row> rows;
  bool all_finite = true;
  for (const std::string& name : nets) {
    // Forward timing only: skip calibration and head training so the
    // build cost stays out of the benchmark.
    ZooOptions zo;
    zo.calibration_images = 0;
    zo.head_images = 0;
    ZooModel model = build_model(name, zo);
    for (const int batch : {1, 8}) {
      const Tensor x = random_input(model, batch, 7 + batch);

      set_gemm_mode(GemmMode::kLegacy);
      Tensor y_legacy = model.net.forward(x);  // warm-up + parity reference
      const double legacy_ms = min_forward_ms(model.net, x, reps);

      set_gemm_mode(GemmMode::kBlocked);
      Tensor y_blocked = model.net.forward(x);
      const double blocked_ms = min_forward_ms(model.net, x, reps);
      set_gemm_mode(GemmMode::kBlocked);

      Row row;
      row.net = name;
      row.batch = batch;
      row.legacy_ms = legacy_ms;
      row.blocked_ms = blocked_ms;
      for (std::int64_t i = 0; i < y_legacy.numel(); ++i) {
        const double d = std::abs(static_cast<double>(y_legacy[i]) - y_blocked[i]);
        if (!(d < 1e30)) all_finite = false;
        row.max_abs_diff = std::max(row.max_abs_diff, d);
      }

      // Integer backend: uniform 16-bit and 8-bit activation formats from
      // the network's own profiled ranges, weights at the same width.
      {
        QExecOptions qo16;
        qo16.weight_bits = 16;
        QuantizedNetwork q16(model.net, model.analyzed, uniform_formats(model, x, 16), qo16);
        Tensor y16 = q16.forward(x);  // warm-up + parity sample
        row.int16_ms = min_qforward_ms(q16, x, reps);
        row.int16_max_diff = max_diff(y_blocked, y16);

        QExecOptions qo8;
        qo8.weight_bits = 8;
        QuantizedNetwork q8(model.net, model.analyzed, uniform_formats(model, x, 8), qo8);
        Tensor y8 = q8.forward(x);
        row.int8_max_diff = max_diff(y_blocked, y8);
        if (!(row.int16_max_diff < 1e30) || !(row.int8_max_diff < 1e30)) all_finite = false;

        // §17 compiled artifacts: the fused float program (must be bitwise
        // identical to the blocked path) and the fused int8 program, whose
        // fused relu epilogues and elided interior requantize passes are
        // the serving-path win.
        const CompiledNetwork cf = GraphCompiler().compile(model.net);
        Tensor yf = cf.forward(x);  // warm-up + parity
        row.fused_ms = min_cforward_ms(cf, x, reps);
        row.fused_max_diff = max_diff(y_blocked, yf);
        if (row.fused_max_diff != 0.0) all_finite = false;

        CompileOptions co;
        co.weight_bits = 8;
        const CompiledNetwork c8 =
            GraphCompiler(co).compile(model.net, model.analyzed, uniform_formats(model, x, 8));
        Tensor y8f = c8.forward(x);
        row.int8_fused_max_diff = max_diff(y_blocked, y8f);
        row.fusion = c8.coverage();
        if (!(row.int8_fused_max_diff < 1e30)) all_finite = false;

        // Fused vs unfused int8 is the headline claim, and at batch 1 the
        // true gap is a few percent — so measure the pair interleaved, and
        // with extra reps at batch 1 where a single forward is ~1 ms.
        const int ireps = batch == 1 ? reps * 8 : reps;
        const auto [q8_ms, c8_ms] = min_interleaved_ms(q8, c8, x, ireps);
        row.int8_ms = q8_ms;
        row.int8_fused_ms = c8_ms;
      }

      rows.push_back(row);
      std::printf("%-10s %5d  %12.2f %12.2f %7.2fx %12.2e %10.2f %10.2f %10.2f %10.2f %7.2fx\n",
                  name.c_str(), batch, legacy_ms, blocked_ms, row.speedup(), row.max_abs_diff,
                  row.int16_ms, row.int8_ms, row.fused_ms, row.int8_fused_ms,
                  row.int8_fused_speedup());
    }
  }

  // The §17 serving claim: the fused int8 program strictly beats unfused
  // int8 at batch 1 on the conv workhorses (true whenever both nets ran;
  // vacuously recorded false when neither is in --nets).
  bool fused_int8_wins_batch1 = false;
  bool saw_batch1_conv_net = false;
  for (const Row& r : rows) {
    if (r.batch != 1 || (r.net != "nin" && r.net != "alexnet")) continue;
    if (!saw_batch1_conv_net) fused_int8_wins_batch1 = true;
    saw_batch1_conv_net = true;
    fused_int8_wins_batch1 = fused_int8_wins_batch1 && r.int8_fused_ms < r.int8_ms;
  }

  if (!json_out.empty()) {
    JsonWriter j;
    j.begin_object();
    j.kv("bench", "forward");
    j.kv("workers", parallel_worker_count());
    j.kv("reps", reps);
    j.kv("kernel_isa", kernel_isa_name(kernel_isa()));
    j.kv("paths_agree", all_finite);
    j.kv("fused_int8_wins_batch1", fused_int8_wins_batch1);
    j.key("rows").begin_array();
    for (const Row& r : rows) {
      j.begin_object();
      j.kv("net", r.net);
      j.kv("batch", r.batch);
      j.kv("legacy_ms_min", r.legacy_ms);
      j.kv("blocked_ms_min", r.blocked_ms);
      j.kv("speedup", r.speedup());
      j.kv("max_abs_diff", r.max_abs_diff);
      j.kv("int16_ms_min", r.int16_ms);
      j.kv("int8_ms_min", r.int8_ms);
      j.kv("int16_max_diff", r.int16_max_diff);
      j.kv("int8_max_diff", r.int8_max_diff);
      j.kv("fused_ms_min", r.fused_ms);
      j.kv("fused_max_diff", r.fused_max_diff);
      j.kv("int8_fused_ms_min", r.int8_fused_ms);
      j.kv("int8_fused_max_diff", r.int8_fused_max_diff);
      j.kv("int8_fused_speedup", r.int8_fused_speedup());
      j.key("fusion").begin_object();
      j.kv("relu_fused", r.fusion.relu_fused);
      j.kv("norm_folded", r.fusion.norm_folded);
      j.kv("noops_dropped", r.fusion.noops_dropped);
      j.kv("qdq_elided", r.fusion.qdq_elided);
      j.kv("regions", r.fusion.regions);
      j.end_object();
      j.end_object();
    }
    j.end_array();
    j.end_object();
    errno = 0;
    if (!write_json_file(json_out, j.str())) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n", json_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("\nwrote %s\n", json_out.c_str());
  }
  return 0;
}
