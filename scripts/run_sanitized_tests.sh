#!/usr/bin/env bash
# Build and run the full test suite under ASan + UBSan
# (-fno-sanitize-recover=all: any finding aborts the test).
#
# Usage: scripts/run_sanitized_tests.sh [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

cmake -B "$BUILD_DIR" -S . -DMUPOD_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
