#!/usr/bin/env bash
# Build and run the test suite under sanitizers
# (-fno-sanitize-recover=all: any finding aborts the test).
#
# Usage:
#   scripts/run_sanitized_tests.sh [ctest-args...]          # ASan+UBSan, full suite
#   scripts/run_sanitized_tests.sh --tsan [ctest-args...]   # TSan, concurrency tests
#
# --tsan builds with -DMUPOD_SANITIZE=thread and runs only the tests
# labeled `sanitize` or `quant` (ctest -L 'sanitize|quant'): the
# DiagnosticSink / metrics / PlanService threading hammers in
# tests/test_diag_threading.cpp, the GEMM pack/tile-task suite in
# tests/test_gemm.cpp, the cluster chaos suite in tests/test_cluster.cpp,
# the inference-server battery in tests/test_infer.cpp (batcher thread,
# shared-mutex plan hot-swap under load, concurrent submitters, seeded
# kDelay chaos on the forward path), the graph-compiler battery in
# tests/test_compile*.cpp (fused gemm/qgemm epilogues cross threads, and
# the differential equivalence checks sweep worker counts), and the
# integer-backend battery in tests/test_qgemm_property.cpp +
# test_plan_conformance.cpp (the qgemm pack/tile tasks and
# quantize-on-load chunking cross threads) — the
# interesting ones under TSan; the full suite under TSan is an order of
# magnitude slower for no extra interleaving coverage. The TSan run pins
# MUPOD_THREADS=4 so the pool (and the GEMM tile fan-out) exercises real
# cross-thread interleavings even on single-core machines.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=address
if [ "${1:-}" = "--tsan" ]; then
  MODE=thread
  shift
fi

# Cheap static gate before the expensive sanitized build: every metric-name
# literal in src/ must follow the naming scheme and appear in the
# docs/method.md registry tables (§15).
scripts/check_metric_names.sh

if [ "$MODE" = "thread" ]; then
  BUILD_DIR=build-tsan
  CTEST_EXTRA=(-L 'sanitize|quant')
  # Force a multi-worker pool: on few-core CI boxes the pool would
  # otherwise collapse to 1 worker and TSan would see no interleavings.
  export MUPOD_THREADS="${MUPOD_THREADS:-4}"
else
  BUILD_DIR=build-asan
  CTEST_EXTRA=()
fi

cmake -B "$BUILD_DIR" -S . -DMUPOD_SANITIZE="$MODE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "${CTEST_EXTRA[@]}" "$@"

# Second lane, forced-scalar kernels: the AVX2/FMA intrinsic TUs sit
# behind runtime CPUID dispatch, so on AVX2 hardware the run above never
# executes the generic C++ kernel paths that non-x86 builds (and older
# CPUs) fall back to. MUPOD_FORCE_KERNEL=scalar re-runs the kernel-facing
# batteries (`sanitize` covers gemm + dispatch, `quant` the integer
# backend) through those paths under the same sanitizer. Same build dir:
# dispatch is a startup env read, no recompile needed. PlanConformance is
# excluded here, not hidden: its golden file pins end-to-end numbers
# recorded under the machine's *detected* ISA, and forcing scalar shifts
# the float calibration (no FMA contraction) those numbers depend on —
# the cross-ISA contracts that must hold exactly (integer byte equality,
# float tolerance) are asserted by the included batteries instead.
echo "=== re-running kernel batteries with MUPOD_FORCE_KERNEL=scalar ($MODE) ==="
MUPOD_FORCE_KERNEL=scalar \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -L 'sanitize|quant' -E 'PlanConformance' "$@"
