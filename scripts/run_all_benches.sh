#!/bin/bash
# Runs every experiment binary sequentially and collects outputs under
# bench_logs/. Sequential on purpose: the binaries are internally
# parallel, and on small machines concurrent runs distort the timing
# experiments (Sec. VI-A reproduction).
set -u
cd "$(dirname "$0")/.."
mkdir -p bench_logs

BENCHES=(
  bench_fig2_linearity
  bench_fig3_accuracy_vs_sigma
  bench_table2_alexnet
  bench_table3_networks
  bench_fig4_nin_energy
  bench_timing_resnet152
  bench_accelerator
  bench_ablation
)

for b in "${BENCHES[@]}"; do
  echo "=== $b $(date +%H:%M:%S) ==="
  ./build/bench/"$b" | tee "bench_logs/$b.txt"
done

echo "=== bench_micro_kernels $(date +%H:%M:%S) ==="
./build/bench/bench_micro_kernels --benchmark_min_time=0.2 | tee bench_logs/bench_micro_kernels.txt
echo "all benches done"
