#!/bin/bash
# Machine-readable benchmark runner: executes the serving-layer benchmark
# and leaves BENCH_*.json files in bench_logs/ for dashboards or CI
# thresholds to consume. (run_all_benches.sh remains the human-readable
# paper-reproduction sweep.)
#
# BENCH_sweep.json records, for a 3-objective x 4-target grid:
#   cold_ms / warm_ms / speedup   12 pipeline runs vs one PlanService sweep
#   serial_tails_ms / concurrent_tails_ms
#   cache {profile,sigma,plan} x {misses,hits}
#   plans_identical               warm answers byte-equal the cold path
#
# BENCH_observability.json records the instrumentation cost on the profile
# stage (off vs on, min-of-N) and fails the run when it exceeds 3%.
set -eu
cd "$(dirname "$0")/.."
mkdir -p bench_logs

for b in bench_sweep bench_observability; do
  if [ ! -x "build/bench/$b" ]; then
    echo "build/bench/$b not found — build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

echo "=== bench_sweep $(date +%H:%M:%S) (MUPOD_THREADS=${MUPOD_THREADS:-unset}) ==="
./build/bench/bench_sweep --json bench_logs/BENCH_sweep.json | tee bench_logs/bench_sweep.txt

echo
echo "=== bench_observability $(date +%H:%M:%S) ==="
./build/bench/bench_observability --json bench_logs/BENCH_observability.json \
  | tee bench_logs/bench_observability.txt

echo
for f in bench_logs/BENCH_sweep.json bench_logs/BENCH_observability.json; do
  echo "wrote $f:"
  cat "$f"
done
