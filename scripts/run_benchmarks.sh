#!/bin/bash
# Machine-readable benchmark runner: executes every serving-layer benchmark
# and leaves BENCH_*.json files in bench_logs/ for dashboards or CI
# thresholds to consume, plus BENCH_manifest.json recording which benches
# ran (and their exit status) so a dashboard can tell "bench failed" from
# "bench never ran". (run_all_benches.sh remains the human-readable
# paper-reproduction sweep.)
#
# BENCH_sweep.json records, for a 3-objective x 4-target grid:
#   cold_ms / warm_ms / speedup   12 pipeline runs vs one PlanService sweep
#   serial_tails_ms / concurrent_tails_ms
#   cache {profile,sigma,plan} x {misses,hits}
#   plans_identical               warm answers byte-equal the cold path
#
# BENCH_observability.json records the instrumentation cost on the profile
# stage (off vs on, min-of-N) and fails the run when it exceeds 3%.
#
# BENCH_forward.json records min-of-N forward wall time per zoo network
# (NiN, AlexNet, MobileNet) x batch {1, 8}, legacy scalar path vs blocked
# GEMM path, plus the old/new max |diff| parity check — and the §17
# graph-compiler columns: fused float (bitwise parity gate) and fused
# int8 vs unfused int8, with per-row fusion counts and the
# fused_int8_wins_batch1 serving claim. The manifest embeds the per-net
# fusion counts (bench_forward --print-fusion) next to the kernel ISA.
#
# BENCH_cluster.json records the chaos bench on the sharded plan-serving
# cluster: straggler p50/p99 with hedging on vs off, hedge win rate,
# breaker time-to-open after a node kill and time-to-recover after the
# revive, and the byte-identical-plans contract (mismatched must be 0).
#
# BENCH_serve.json records the online inference server under load: closed-
# loop throughput and p50/p99 latency per backend (sequential caller vs
# client fleet against the cap-8 batcher, plus the cap-1 no-batching
# reference), batch-size histograms, open-loop shed/expiry behaviour over
# capacity, and the batched == sequential bitwise-determinism gate.
#
# BENCH_telemetry.json records the full-observability cost on the serving
# path (tracing + metrics + flight recorder on vs everything off, min-of-N
# through InferenceServer) and fails the run when it exceeds 3%.
#
# BENCH_micro_kernels.json records the SIMD micro-kernel roofline sweep
# (bench_micro_kernels --json): per kernel x available ISA, min-of-N
# achieved GFLOPS/GOPS/Gelem-per-s vs the theoretical per-cycle peak.
#
# pipefail: each bench pipes through tee for the .txt transcript; without
# it the pipeline's status is tee's (always 0) and a crashed bench would
# be recorded as exit_status 0 in the manifest AND the script would exit
# clean. With it, a failed bench marks its manifest row nonzero and the
# script exits 1 — loud, so CI can gate on it.
set -eu -o pipefail
cd "$(dirname "$0")/.."
mkdir -p bench_logs

BENCHES="bench_sweep bench_observability bench_forward bench_cluster bench_serve bench_telemetry bench_micro_kernels"

for b in $BENCHES; do
  if [ ! -x "build/bench/$b" ]; then
    echo "build/bench/$b not found — build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

overall=0
manifest_entries=""
for b in $BENCHES; do
  json="bench_logs/BENCH_${b#bench_}.json"
  echo "=== $b $(date +%H:%M:%S) (MUPOD_THREADS=${MUPOD_THREADS:-unset}) ==="
  status=0
  "./build/bench/$b" --json "$json" | tee "bench_logs/$b.txt" || status=$?
  [ "$status" -ne 0 ] && overall=1
  [ -n "$manifest_entries" ] && manifest_entries="$manifest_entries,"
  manifest_entries="$manifest_entries
  {\"bench\": \"$b\", \"json\": \"$json\", \"exit_status\": $status}"
  echo
done

# The manifest is the one line dashboards read first: which benches ran,
# where each report landed, and whether its internal contract passed —
# stamped with the commit, build flags, and wall-clock so a bench
# trajectory stays attributable across PRs.
kernel_isa=$("./build/bench/bench_micro_kernels" --print-isa 2>/dev/null || echo unknown)
fusion_counts=$("./build/bench/bench_forward" --print-fusion 2>/dev/null || echo '{}')
git_sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
git_dirty=false
[ -n "$(git status --porcelain 2>/dev/null)" ] && git_dirty=true
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
build_type=unknown
native=unknown
sanitize=unknown
if [ -f build/CMakeCache.txt ]; then
  build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt)
  native=$(sed -n 's/^MUPOD_NATIVE:[^=]*=//p' build/CMakeCache.txt)
  sanitize=$(sed -n 's/^MUPOD_SANITIZE:[^=]*=//p' build/CMakeCache.txt)
fi
cat > bench_logs/BENCH_manifest.json <<EOF
{"generated_by": "scripts/run_benchmarks.sh",
 "git_sha": "$git_sha", "git_dirty": $git_dirty, "timestamp": "$timestamp",
 "kernel_isa": "$kernel_isa",
 "fusion": $fusion_counts,
 "build": {"type": "$build_type", "native": "$native", "sanitize": "$sanitize"},
 "benches": [$manifest_entries
]}
EOF

echo "manifest: $(tr -d '\n' < bench_logs/BENCH_manifest.json)"
echo
for b in $BENCHES; do
  f="bench_logs/BENCH_${b#bench_}.json"
  echo "wrote $f:"
  cat "$f"
done
exit $overall
