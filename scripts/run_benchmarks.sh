#!/bin/bash
# Machine-readable benchmark runner: executes the serving-layer benchmark
# and leaves BENCH_*.json files in bench_logs/ for dashboards or CI
# thresholds to consume. (run_all_benches.sh remains the human-readable
# paper-reproduction sweep.)
#
# BENCH_sweep.json records, for a 3-objective x 4-target grid:
#   cold_ms / warm_ms / speedup   12 pipeline runs vs one PlanService sweep
#   serial_tails_ms / concurrent_tails_ms
#   cache {profile,sigma,plan} x {misses,hits}
#   plans_identical               warm answers byte-equal the cold path
#
# BENCH_observability.json records the instrumentation cost on the profile
# stage (off vs on, min-of-N) and fails the run when it exceeds 3%.
#
# BENCH_forward.json records min-of-N forward wall time per zoo network
# (NiN, AlexNet, MobileNet) x batch {1, 8}, legacy scalar path vs blocked
# GEMM path, plus the old/new max |diff| parity check.
#
# BENCH_cluster.json records the chaos bench on the sharded plan-serving
# cluster: straggler p50/p99 with hedging on vs off, hedge win rate,
# breaker time-to-open after a node kill and time-to-recover after the
# revive, and the byte-identical-plans contract (mismatched must be 0).
set -eu
cd "$(dirname "$0")/.."
mkdir -p bench_logs

for b in bench_sweep bench_observability bench_forward bench_cluster; do
  if [ ! -x "build/bench/$b" ]; then
    echo "build/bench/$b not found — build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

echo "=== bench_sweep $(date +%H:%M:%S) (MUPOD_THREADS=${MUPOD_THREADS:-unset}) ==="
./build/bench/bench_sweep --json bench_logs/BENCH_sweep.json | tee bench_logs/bench_sweep.txt

echo
echo "=== bench_observability $(date +%H:%M:%S) ==="
./build/bench/bench_observability --json bench_logs/BENCH_observability.json \
  | tee bench_logs/bench_observability.txt

echo
echo "=== bench_forward $(date +%H:%M:%S) (MUPOD_THREADS=${MUPOD_THREADS:-unset}) ==="
./build/bench/bench_forward --json bench_logs/BENCH_forward.json \
  | tee bench_logs/bench_forward.txt

echo
echo "=== bench_cluster $(date +%H:%M:%S) ==="
./build/bench/bench_cluster --json bench_logs/BENCH_cluster.json \
  | tee bench_logs/bench_cluster.txt

echo
for f in bench_logs/BENCH_sweep.json bench_logs/BENCH_observability.json \
         bench_logs/BENCH_forward.json bench_logs/BENCH_cluster.json; do
  echo "wrote $f:"
  cat "$f"
done
