#!/bin/bash
# Metric-name lint: every metric-name string literal in src/ must follow
# the naming scheme (docs/method.md §10) and be listed in the method.md
# naming tables, so the docs registry can never silently drift from the
# code. Run standalone or via scripts/run_sanitized_tests.sh.
#
# Scheme: dot-separated lowercase `<area>.<object>.<property>`, 2-4
# segments, [a-z0-9_] per segment, first segment starting with a letter
# (units are suffixes like _us / _ms, not extra segments).
#
# Extraction: the files are whitespace-collapsed before scanning so a
# wrapped call (name literal on the line after the open paren) and a
# ternary (`bump(cond ? "a.b" : "a.c")`) are both caught — a naive
# line-based grep misses both shapes.
set -eu
cd "$(dirname "$0")/.."

DOC=docs/method.md
SCHEME='^[a-z][a-z0-9_]*(\.[a-z0-9_]+){1,3}$'

# Every dotted string literal inside a metric-instrument call
# (counter/gauge/histogram accessors and the bump() helpers).
names=$(
  find src -name '*.cpp' -o -name '*.hpp' | sort | while read -r f; do
    tr '\n' ' ' < "$f"
    echo
  done |
  grep -oE '(counter|gauge|histogram|bump)[[:space:]]*\([^;{}]*' |
  grep -oE '"[a-z][a-z0-9_]*(\.[a-z0-9_]+)+"' |
  tr -d '"' | sort -u
)

if [ -z "$names" ]; then
  echo "check_metric_names: extracted no metric names from src/ — extractor broken?" >&2
  exit 1
fi

total=0
bad_scheme=0
undocumented=0
for n in $names; do
  total=$((total + 1))
  if ! echo "$n" | grep -qE "$SCHEME"; then
    echo "SCHEME VIOLATION: '$n' (want <area>.<object>.<property>, 2-4 lowercase segments)" >&2
    bad_scheme=$((bad_scheme + 1))
    continue
  fi
  if ! grep -qF "$n" "$DOC"; then
    echo "UNDOCUMENTED: '$n' missing from the $DOC naming tables" >&2
    undocumented=$((undocumented + 1))
  fi
done

echo "check_metric_names: $total metric name(s) checked, $bad_scheme scheme violation(s), $undocumented undocumented"
[ "$bad_scheme" -eq 0 ] && [ "$undocumented" -eq 0 ]
