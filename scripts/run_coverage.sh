#!/usr/bin/env bash
# Line-coverage lane for the numeric kernels and the integer backend.
#
# Builds a separate tree with -DMUPOD_COVERAGE=ON (gcov instrumentation,
# -O0 so inlining doesn't fold lines away — see the option in the root
# CMakeLists.txt), runs the `quant` and `sanitize` test labels (the
# integer-backend battery plus the GEMM pack/tile suite — the code whose
# coverage we actually track), and writes a machine-readable summary to
# bench_logs/COVERAGE.json restricted to src/tensor and src/quant.
#
# Uses gcovr when it exists; this container only ships plain gcov, so the
# fallback parses gcov's own "File '...'" / "Lines executed:" report pairs.
#
# Usage:
#   scripts/run_coverage.sh [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
BUILD_DIR=build-cov
OUT_DIR=bench_logs
OUT_JSON=$OUT_DIR/COVERAGE.json

cmake -B "$BUILD_DIR" -S . -DMUPOD_COVERAGE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Stale counters from a previous run would inflate the numbers.
find "$BUILD_DIR" -name '*.gcda' -delete

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -L 'quant|sanitize' "$@"

mkdir -p "$OUT_DIR"

if command -v gcovr > /dev/null 2>&1; then
  gcovr --root "$ROOT" --filter 'src/(tensor|quant)/' --json-summary-pretty \
        --output "$OUT_JSON" "$BUILD_DIR"
  echo "coverage summary (gcovr) -> $OUT_JSON"
  exit 0
fi

# Plain-gcov fallback. Run gcov over every .gcda in a scratch dir (it
# litters .gcov files next to the cwd), then aggregate its stdout:
#   File '/abs/path/src/tensor/qgemm.cpp'
#   Lines executed:93.21% of 472
# The same source shows up once per object file that includes it (headers,
# or a .cpp built into several targets); keep the max — each report is a
# lower bound on what the combined test run executed.
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

GCOV_RAW=$SCRATCH/gcov.out
find "$ROOT/$BUILD_DIR" -name '*.gcda' -print0 \
  | (cd "$SCRATCH" && xargs -0 gcov > "$GCOV_RAW" 2> /dev/null || true)

awk -v root="$ROOT/" '
  /^File / {
    # File <quote>/root/repo/src/tensor/qgemm.cpp<quote> -> strip the 6-char
    # prefix and the closing quote, then the absolute root prefix.
    f = substr($0, 7, length($0) - 7)
    sub(root, "", f)
    next
  }
  /^Lines executed:/ {
    if (f !~ /^src\/(tensor|quant)\//) { f = ""; next }
    pct = $0; sub(/^Lines executed:/, "", pct); sub(/% of .*/, "", pct)
    total = $0; sub(/.*% of /, "", total)
    if (!(f in best_pct) || pct + 0 > best_pct[f] + 0) {
      best_pct[f] = pct; best_total[f] = total
    }
    f = ""
  }
  END {
    n = 0
    for (f in best_pct) keys[n++] = f
    # insertion sort: stable file order for diff-friendly output
    for (i = 1; i < n; i++) {
      k = keys[i]
      for (j = i - 1; j >= 0 && keys[j] > k; j--) keys[j + 1] = keys[j]
      keys[j + 1] = k
    }
    printf "{\n  \"tool\": \"gcov\",\n  \"filter\": \"src/(tensor|quant)/\",\n"
    printf "  \"labels\": \"quant|sanitize\",\n  \"files\": [\n"
    sum_total = 0; sum_cov = 0
    for (i = 0; i < n; i++) {
      f = keys[i]
      covered = int(best_pct[f] * best_total[f] / 100 + 0.5)
      sum_total += best_total[f]; sum_cov += covered
      printf "    {\"file\": \"%s\", \"line_percent\": %s, \"lines_total\": %s, \"lines_covered\": %d}%s\n", \
             f, best_pct[f], best_total[f], covered, (i < n - 1 ? "," : "")
    }
    printf "  ],\n  \"totals\": {\"lines_total\": %d, \"lines_covered\": %d, \"line_percent\": %.2f}\n}\n", \
           sum_total, sum_cov, (sum_total > 0 ? 100.0 * sum_cov / sum_total : 0)
  }
' "$GCOV_RAW" > "$OUT_JSON"

echo "coverage summary (gcov fallback) -> $OUT_JSON"
