// Determinism guarantees (satellite of the plan-service PR): the whole
// pipeline is seeded and single-source-of-truth, so identical runs must be
// *identical* — bit-equal allocations and byte-equal reports — and the plan
// service's warm path must reproduce the cold path exactly. Anything less
// makes content-addressed caching unsound.
#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "io/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/plan_service.hpp"
#include "tensor/parallel.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct PipelineRun {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  PipelineResult result;
};

PipelineConfig fast_config() {
  PipelineConfig cfg;
  cfg.harness.profile_images = 16;
  cfg.harness.eval_images = 128;
  cfg.profiler.points = 6;
  cfg.sigma.relative_accuracy_drop = 0.05;
  return cfg;
}

PipelineRun fresh_run() {
  PipelineRun r;
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 8;
  r.model = build_tiny_cnn(zo);
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 8;
  r.dataset = std::make_unique<SyntheticImageDataset>(dc);
  r.result = run_pipeline(r.model.net, r.model.analyzed, *r.dataset,
                          {objective_input_bits(r.model.net, r.model.analyzed),
                           objective_mac_energy(r.model.net, r.model.analyzed)},
                          fast_config());
  return r;
}

TEST(Determinism, IdenticalRunsProduceBitIdenticalAllocations) {
  const PipelineRun a = fresh_run();
  const PipelineRun b = fresh_run();

  EXPECT_EQ(a.result.sigma.sigma_yl, b.result.sigma.sigma_yl);
  EXPECT_EQ(a.result.sigma_calibrated, b.result.sigma_calibrated);
  EXPECT_EQ(a.result.forward_count, b.result.forward_count);
  ASSERT_EQ(a.result.models.size(), b.result.models.size());
  for (std::size_t k = 0; k < a.result.models.size(); ++k) {
    EXPECT_EQ(a.result.models[k].lambda, b.result.models[k].lambda);
    EXPECT_EQ(a.result.models[k].theta, b.result.models[k].theta);
    EXPECT_EQ(a.result.ranges[k], b.result.ranges[k]);
  }
  ASSERT_EQ(a.result.objectives.size(), b.result.objectives.size());
  for (std::size_t i = 0; i < a.result.objectives.size(); ++i) {
    const ObjectiveResult& oa = a.result.objectives[i];
    const ObjectiveResult& ob = b.result.objectives[i];
    EXPECT_EQ(oa.alloc.bits, ob.alloc.bits);
    EXPECT_EQ(oa.alloc.xi, ob.alloc.xi);
    EXPECT_EQ(oa.alloc.deltas, ob.alloc.deltas);
    EXPECT_EQ(oa.alloc.formats, ob.alloc.formats);
    EXPECT_EQ(oa.sigma_used, ob.sigma_used);
    EXPECT_EQ(oa.validated_accuracy, ob.validated_accuracy);
    EXPECT_EQ(oa.refinements, ob.refinements);
  }
}

TEST(Determinism, IdenticalRunsRenderIdenticalReports) {
  const PipelineRun a = fresh_run();
  const PipelineRun b = fresh_run();
  // Wall-clock timings are the one legitimately run-dependent section;
  // everything else must be byte-equal.
  ReportOptions opts;
  opts.include_timings = false;
  const std::string ra = render_report(a.model.net, a.model.analyzed, a.result, opts);
  const std::string rb = render_report(b.model.net, b.model.analyzed, b.result, opts);
  EXPECT_EQ(ra, rb);  // byte-equal markdown, not merely similar
}

TEST(Determinism, InstrumentationDoesNotPerturbResultsOrReports) {
  // The observability layer's contract: flipping metrics/tracing on
  // changes what is *recorded*, never what is *computed* — and with the
  // default ReportOptions (include_metrics = false) the rendered report
  // stays byte-identical, run-dependent counters notwithstanding.
  const PipelineRun plain = fresh_run();

  set_metrics_enabled(true);
  set_tracing_enabled(true);
  const PipelineRun instrumented = fresh_run();
  set_metrics_enabled(false);
  set_tracing_enabled(false);

  EXPECT_EQ(plain.result.sigma.sigma_yl, instrumented.result.sigma.sigma_yl);
  EXPECT_EQ(plain.result.forward_count, instrumented.result.forward_count);
  ASSERT_EQ(plain.result.objectives.size(), instrumented.result.objectives.size());
  for (std::size_t i = 0; i < plain.result.objectives.size(); ++i) {
    EXPECT_EQ(plain.result.objectives[i].alloc.bits, instrumented.result.objectives[i].alloc.bits);
    EXPECT_EQ(plain.result.objectives[i].alloc.xi, instrumented.result.objectives[i].alloc.xi);
    EXPECT_EQ(plain.result.objectives[i].validated_accuracy,
              instrumented.result.objectives[i].validated_accuracy);
  }

  ReportOptions opts;
  opts.include_timings = false;  // defaults otherwise: include_metrics off
  const std::string rp = render_report(plain.model.net, plain.model.analyzed, plain.result, opts);
  const std::string ri = render_report(instrumented.model.net, instrumented.model.analyzed,
                                       instrumented.result, opts);
  EXPECT_EQ(rp, ri);  // byte-equal despite the now-populated registry

  // Opting in is the only way metrics reach a report.
  opts.include_metrics = true;
  const std::string with_metrics =
      render_report(plain.model.net, plain.model.analyzed, plain.result, opts);
  EXPECT_NE(with_metrics.find("## Metrics"), std::string::npos);
  EXPECT_EQ(rp.find("## Metrics"), std::string::npos);
}

TEST(Determinism, IdenticalNetworksHashIdentically) {
  const PipelineRun a = fresh_run();
  const PipelineRun b = fresh_run();
  EXPECT_EQ(network_topology_hash(a.model.net), network_topology_hash(b.model.net));
  EXPECT_EQ(network_content_hash(a.model.net), network_content_hash(b.model.net));
}

TEST(Determinism, WarmServiceAnswerEqualsColdPipelineAnswer) {
  // The service's central promise: caching changes the cost of an answer,
  // never its value. Ask the service the same question twice (cold tail,
  // then memo replay) and compare both against a fresh pipeline run.
  const PipelineRun cold = fresh_run();

  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 8;
  ZooModel model = build_tiny_cnn(zo);
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 8;
  SyntheticImageDataset dataset(dc);

  PlanServiceConfig scfg;
  scfg.pipeline = fast_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(model.net, model.analyzed, dataset);
  PlanQuery q;
  q.accuracy_target = 0.05;
  q.objective = objective_input_bits(model.net, model.analyzed);
  const PlanResult warm = service.plan(key, q);
  const PlanResult replay = service.plan(key, q);

  const ObjectiveResult& ref = cold.result.objectives[0];
  for (const PlanResult* r : {&warm, &replay}) {
    EXPECT_EQ(ref.alloc.bits, r->alloc.bits);
    EXPECT_EQ(ref.alloc.xi, r->alloc.xi);
    EXPECT_EQ(ref.alloc.formats, r->alloc.formats);
    EXPECT_EQ(ref.sigma_used, r->sigma_used);
    EXPECT_EQ(ref.validated_accuracy, r->validated_accuracy);
    EXPECT_EQ(cold.result.sigma.sigma_yl, r->sigma_searched);
  }
  EXPECT_FALSE(warm.plan_cached);
  EXPECT_TRUE(replay.plan_cached);
}

TEST(Determinism, ValidatePlanBitIdenticalAcrossWorkerCountsAndRuns) {
  // The integer execution backend extends the determinism contract to
  // plan validation: the quantize-on-load chunking and the qgemm tile
  // fan-out must not leak into the measured accuracy. One validation per
  // worker count, plus a repetition within each service — every field of
  // the ground truth must be bit-equal.
  std::vector<PlanValidation> per_worker;
  for (const int workers : {1, 4}) {
    set_parallel_worker_count(workers);
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 404;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    ZooModel model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    SyntheticImageDataset dataset(dc);

    PlanServiceConfig scfg;
    scfg.pipeline = fast_config();
    PlanService service(scfg);
    const PlanKey key = service.register_network(model.net, model.analyzed, dataset);
    PlanQuery q;
    q.accuracy_target = 0.05;
    q.objective = objective_input_bits(model.net, model.analyzed);

    const PlanValidation a = service.validate_plan(key, q);
    const PlanValidation b = service.validate_plan(key, q);  // repetition
    EXPECT_EQ(a.integer_accuracy, b.integer_accuracy) << workers << " worker(s)";
    EXPECT_EQ(a.emulated_accuracy, b.emulated_accuracy) << workers << " worker(s)";
    EXPECT_EQ(a.act_saturated, b.act_saturated) << workers << " worker(s)";
    per_worker.push_back(a);
  }
  set_parallel_worker_count(0);  // restore the default pool

  ASSERT_EQ(per_worker.size(), 2u);
  const PlanValidation& w1 = per_worker[0];
  const PlanValidation& w4 = per_worker[1];
  EXPECT_EQ(w1.float_accuracy, w4.float_accuracy);
  EXPECT_EQ(w1.emulated_accuracy, w4.emulated_accuracy);
  EXPECT_EQ(w1.integer_accuracy, w4.integer_accuracy);
  EXPECT_EQ(w1.integer_drop, w4.integer_drop);
  EXPECT_EQ(w1.act_saturated, w4.act_saturated);
  EXPECT_EQ(w1.plan.alloc.bits, w4.plan.alloc.bits);
  EXPECT_EQ(w1.plan.alloc.formats, w4.plan.alloc.formats);
  EXPECT_EQ(w1.within_budget, w4.within_budget);
}

}  // namespace
}  // namespace mupod
