// Fault-injection suite: the pipeline must survive poisoned activations,
// adversarial objectives, and corrupted profile files with diagnostics and
// a valid conservative result — never a crash, never a silently wrong
// allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"
#include "fault_injection.hpp"
#include "fixtures.hpp"
#include "io/profile_io.hpp"

namespace mupod {
namespace {

using faulttest::FaultKind;
using faulttest::FaultSchedule;
using faulttest::FaultyNet;
using faulttest::build_faulty_net;
using faulttest::make_faulty_dataset;

PipelineConfig small_pipeline_config() {
  PipelineConfig cfg;
  cfg.harness.profile_images = 32;
  cfg.harness.eval_images = 64;
  cfg.harness.batch = 16;
  cfg.profiler.points = 8;
  cfg.profiler.reps_per_point = 1;
  cfg.search_weights = false;
  return cfg;
}

bool allocation_is_valid(const BitwidthAllocation& a, std::size_t layers) {
  if (a.xi.size() != layers || a.bits.size() != layers || a.deltas.size() != layers) return false;
  for (double x : a.xi)
    if (!std::isfinite(x) || x < 0.0) return false;
  for (int b : a.bits)
    if (b < 1 || b > 64) return false;
  for (double d : a.deltas)
    if (!std::isfinite(d) || d <= 0.0) return false;
  return true;
}

// --- the wrapper itself --------------------------------------------------

TEST(FaultyLayer, PoisonsOnSchedule) {
  const SyntheticImageDataset dataset = make_faulty_dataset();
  FaultSchedule s;
  s.kind = FaultKind::kNaN;
  s.first_call = 1;  // first forward clean, second poisoned
  s.period = 2;
  FaultyNet f = build_faulty_net(s, dataset);

  const Tensor batch = dataset.make_batch(0, 4);
  // Inspect the faulty node's own activation: downstream max-pooling can
  // swallow NaNs (std::max comparisons with NaN are false), so the logits
  // are not a reliable witness.
  const std::vector<Tensor> clean = f.net.forward_all(batch);
  EXPECT_TRUE(clean[static_cast<std::size_t>(f.faulty_node)].all_finite());
  const std::vector<Tensor> poisoned = f.net.forward_all(batch);
  EXPECT_FALSE(poisoned[static_cast<std::size_t>(f.faulty_node)].all_finite());
  EXPECT_EQ(f.fault->calls(), 2);
}

TEST(FaultyLayer, SaturateStaysFinite) {
  const SyntheticImageDataset dataset = make_faulty_dataset();
  FaultSchedule s;
  s.kind = FaultKind::kSaturate;
  s.first_call = 0;
  FaultyNet f = build_faulty_net(s, dataset);
  const Tensor out = f.net.forward(dataset.make_batch(0, 4));
  EXPECT_TRUE(out.all_finite());
  EXPECT_GT(out.max_abs(), 1e3);  // the saturation reached the logits
}

// --- harness quarantine --------------------------------------------------

TEST(FaultInjection, HarnessQuarantinesPoisonedProfilingBatches) {
  const SyntheticImageDataset dataset = make_faulty_dataset();
  FaultSchedule s;
  s.kind = FaultKind::kNaN;
  s.first_call = 0;  // poison the very first construction forward
  s.period = 3;      // then every 3rd call: replacements can succeed
  FaultyNet f = build_faulty_net(s, dataset);

  HarnessConfig hc;
  hc.profile_images = 32;
  hc.eval_images = 32;
  hc.batch = 16;
  DiagnosticSink diag;
  AnalysisHarness harness(f.net, f.analyzed, dataset, hc, &diag);

  EXPECT_GE(harness.quarantined_profile_batches() + harness.quarantined_eval_batches(), 1);
  EXPECT_GT(harness.profile_batch_count(), 0);
  EXPECT_GT(harness.eval_batch_count(), 0);
  EXPECT_GE(diag.count(PipelineStage::kHarness, DiagSeverity::kWarning), 1);
  // The surviving caches really are clean.
  for (int k = 0; k < harness.num_layers(); ++k) {
    EXPECT_TRUE(std::isfinite(harness.input_ranges()[static_cast<std::size_t>(k)]));
  }
}

// --- end-to-end with intermittent NaN faults -----------------------------

TEST(FaultInjection, PipelineSurvivesNaNFaultsWithAttribution) {
  const SyntheticImageDataset dataset = make_faulty_dataset();
  FaultSchedule s;
  s.kind = FaultKind::kNaN;
  s.first_call = 5;  // construction (4 batches) mostly clean
  s.period = 4;      // intermittent during the profiling sweeps
  FaultyNet f = build_faulty_net(s, dataset);

  PipelineConfig cfg = small_pipeline_config();
  const std::vector<ObjectiveSpec> objectives = {objective_mac_energy(f.net, f.analyzed)};
  const PipelineResult res = run_pipeline(f.net, f.analyzed, dataset, objectives, cfg);

  // The run completed and produced a structurally valid allocation.
  ASSERT_EQ(res.objectives.size(), 1u);
  EXPECT_TRUE(allocation_is_valid(res.objectives[0].alloc, f.analyzed.size()));

  // The faults were seen and reported, attributed to a real stage.
  EXPECT_FALSE(res.diagnostics.empty());
  int attributed = 0;
  for (const Diagnostic& d : res.diagnostics.entries()) {
    EXPECT_TRUE(d.stage == PipelineStage::kHarness || d.stage == PipelineStage::kProfile ||
                d.stage == PipelineStage::kSigmaSearch || d.stage == PipelineStage::kAllocate ||
                d.stage == PipelineStage::kValidate);
    if (d.layer >= 0) ++attributed;
  }
  // NaN sweep measurements only arise downstream of conv1 (the injection
  // that re-executes the faulty relu), so at least one diagnostic must be
  // attributed to a specific layer.
  EXPECT_GE(attributed, 1);
}

TEST(FaultInjection, AllBatchesPoisonedFallsBackConservatively) {
  const SyntheticImageDataset dataset = make_faulty_dataset();
  FaultSchedule s;
  s.kind = FaultKind::kNaN;
  s.first_call = 0;
  s.period = 1;  // every forward poisoned: no clean batch can ever be drawn
  FaultyNet f = build_faulty_net(s, dataset);

  PipelineConfig cfg = small_pipeline_config();
  const std::vector<ObjectiveSpec> objectives = {objective_mac_energy(f.net, f.analyzed)};
  const PipelineResult res = run_pipeline(f.net, f.analyzed, dataset, objectives, cfg);

  // Nothing was measurable: the sigma search must fail its bracket rather
  // than claim a budget, and every layer must be pinned.
  EXPECT_EQ(res.sigma.status, SigmaSearchStatus::kBracketFailed);
  EXPECT_FALSE(res.sigma.bracket_ok());
  EXPECT_EQ(res.sigma_calibrated, 0.0);
  EXPECT_EQ(res.sigma.accuracy_at_sigma, -1.0);
  for (const LayerLinearModel& m : res.models) {
    EXPECT_EQ(m.fit_status, FitStatus::kPinned);
    EXPECT_FALSE(m.usable());
  }
  EXPECT_TRUE(res.diagnostics.has_errors());
  EXPECT_GE(res.diagnostics.count(PipelineStage::kHarness, DiagSeverity::kError), 1);

  // The conservative allocation still exists and is max-precision shaped.
  ASSERT_EQ(res.objectives.size(), 1u);
  EXPECT_TRUE(allocation_is_valid(res.objectives[0].alloc, f.analyzed.size()));
}

TEST(FaultInjection, SaturatedFaultsDegradeFitAndAreReported) {
  const SyntheticImageDataset dataset = make_faulty_dataset();
  FaultSchedule s;
  s.kind = FaultKind::kSaturate;  // finite: passes the quarantine check
  s.first_call = 5;
  s.period = 2;  // alternating sweep measurements are wrecked
  FaultyNet f = build_faulty_net(s, dataset);

  PipelineConfig cfg = small_pipeline_config();
  const std::vector<ObjectiveSpec> objectives = {objective_mac_energy(f.net, f.analyzed)};
  const PipelineResult res = run_pipeline(f.net, f.analyzed, dataset, objectives, cfg);

  ASSERT_EQ(res.objectives.size(), 1u);
  EXPECT_TRUE(allocation_is_valid(res.objectives[0].alloc, f.analyzed.size()));

  // conv1 is the analyzed layer whose sweep re-executes the faulty relu:
  // its fit cannot have sailed through the quality gates silently.
  const LayerLinearModel& conv1 = res.models.front();
  EXPECT_NE(conv1.fit_status, FitStatus::kOk);
  EXPECT_GE(res.diagnostics.count(PipelineStage::kProfile, DiagSeverity::kWarning), 1);
}

// --- solver escalation ---------------------------------------------------

TEST(FaultInjection, AdversarialSolverBudgetEscalatesToClosedForm) {
  // Three healthy synthetic layers.
  std::vector<LayerLinearModel> models(3);
  std::vector<double> ranges = {4.0, 2.0, 1.0};
  for (int k = 0; k < 3; ++k) {
    models[static_cast<std::size_t>(k)].node = k;
    models[static_cast<std::size_t>(k)].layer_index = k;
    models[static_cast<std::size_t>(k)].lambda = 1.0 + k;
    models[static_cast<std::size_t>(k)].theta = 0.0;
    models[static_cast<std::size_t>(k)].deltas = {1e-4, 1e-3, 1e-2};
    models[static_cast<std::size_t>(k)].sigmas = {1e-4, 1e-3, 1e-2};
  }
  ObjectiveSpec spec;
  spec.name = "test";
  spec.rho = {100, 10, 1};

  AllocatorConfig cfg;
  cfg.solver = XiSolver::kSqp;
  cfg.solver_options.max_iterations = 0;  // both iterative solvers must fail

  DiagnosticSink diag;
  const BitwidthAllocation a = allocate_bitwidths(models, 0.5, ranges, spec, cfg, &diag);

  EXPECT_EQ(a.solver_used, XiSolver::kClosedForm);
  EXPECT_EQ(a.solver_downgrades, 2);
  EXPECT_TRUE(a.solver_converged);
  EXPECT_TRUE(allocation_is_valid(a, models.size()));
  EXPECT_EQ(diag.count(PipelineStage::kAllocate, DiagSeverity::kWarning), 2);
  // Closed form: xi proportional to rho.
  EXPECT_GT(a.xi[0], a.xi[1]);
  EXPECT_GT(a.xi[1], a.xi[2]);
}

// --- corrupted profile files --------------------------------------------

TEST(FaultInjection, TruncatedProfileFileThrowsDescriptiveError) {
  ProfileBundle b;
  b.network = "trunc-net";
  b.sigma_yl = 0.5;
  b.sigma_calibrated = 0.45;
  for (int k = 0; k < 3; ++k) {
    LayerLinearModel m;
    m.node = k;
    m.layer_index = k;
    m.lambda = 1.5;
    m.theta = 0.01;
    m.r2 = 0.99;
    m.deltas = {1e-3, 2e-3, 4e-3};
    m.sigmas = {1e-3, 2e-3, 4e-3};
    b.models.push_back(m);
    b.ranges.push_back(2.0);
    b.layer_names.push_back("layer" + std::to_string(k));
    b.input_elems.push_back(100);
    b.macs.push_back(1000);
  }
  const std::string text = serialize_profile(b);

  // A full round trip works.
  EXPECT_NO_THROW({
    const ProfileBundle back = parse_profile(text);
    EXPECT_EQ(back.models.size(), 3u);
  });

  // Any truncation at a line boundary is caught (the v2 end marker).
  std::size_t pos = text.find('\n');
  while (pos != std::string::npos && pos + 1 < text.size()) {
    const std::string cut = text.substr(0, pos + 1);
    EXPECT_THROW(parse_profile(cut), std::runtime_error) << "truncated at byte " << pos + 1;
    pos = text.find('\n', pos + 1);
  }

  // The error message of a corrupted line names line number and content.
  std::string corrupted = text;
  const std::size_t layer_pos = corrupted.find("layer 1 ");
  ASSERT_NE(layer_pos, std::string::npos);
  corrupted.replace(layer_pos, 7, "lay$er!");
  try {
    parse_profile(corrupted);
    FAIL() << "expected parse_profile to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lay$er!"), std::string::npos) << msg;
  }
}

// --- sigma bracket failure ----------------------------------------------

TEST(FaultInjection, SigmaBracketFailureIsExplicitAndConservative) {
  const auto& fix = testfix::tiny();
  const std::vector<LayerLinearModel> models = profile_lambda_theta(*fix.harness);

  SigmaSearchConfig cfg;
  cfg.relative_accuracy_drop = -0.5;  // threshold 1.5x float accuracy: unsatisfiable
  DiagnosticSink diag;
  const SigmaSearchResult r = search_sigma_yl(*fix.harness, models, cfg, &diag);

  EXPECT_EQ(r.status, SigmaSearchStatus::kBracketFailed);
  EXPECT_FALSE(r.bracket_ok());
  EXPECT_EQ(r.sigma_yl, 0.0);
  EXPECT_EQ(r.accuracy_at_sigma, -1.0);  // NOT masked as perfect accuracy
  EXPECT_GE(diag.count(PipelineStage::kSigmaSearch, DiagSeverity::kError), 1);

  // Allocating against the failed budget takes the max-precision path.
  ObjectiveSpec spec;
  spec.name = "bw";
  spec.rho.assign(models.size(), 1);
  DiagnosticSink adiag;
  const BitwidthAllocation a =
      allocate_bitwidths(models, r.sigma_yl, fix.harness->input_ranges(), spec, {}, &adiag);
  EXPECT_TRUE(allocation_is_valid(a, models.size()));
  for (std::size_t k = 0; k < models.size(); ++k) {
    // Max precision: the realized Delta sits at the profiled floor.
    EXPECT_LE(a.deltas[k], models[k].deltas.front());
  }
}

}  // namespace
}  // namespace mupod
