#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace mupod {
namespace {

DatasetConfig trainer_data() {
  DatasetConfig cfg;
  cfg.num_classes = 4;
  cfg.channels = 1;
  cfg.height = 8;
  cfg.width = 8;
  cfg.noise = 0.2f;
  cfg.seed = 123;
  return cfg;
}

TEST(Trainer, LossDecreasesOnFixedBatch) {
  SyntheticImageDataset ds(trainer_data());
  TrainableNet net(1, 8, 8, /*seed=*/3);
  net.conv(4, 3, 1, 1).relu().maxpool().fc(4);

  const Tensor batch = ds.make_batch(0, 32);
  const std::vector<int> labels = ds.labels(0, 32);

  const float first = net.train_step(batch, labels, 0.05f);
  float last = first;
  for (int i = 0; i < 30; ++i) last = net.train_step(batch, labels, 0.05f);
  EXPECT_LT(last, first * 0.7f);
}

TEST(Trainer, LearnsSyntheticClasses) {
  SyntheticImageDataset ds(trainer_data());
  TrainableNet net(1, 8, 8, /*seed=*/5);
  net.conv(8, 3, 1, 1).relu().maxpool().fc(4);

  for (int epoch = 0; epoch < 15; ++epoch) {
    for (int b = 0; b < 8; ++b) {
      const Tensor batch = ds.make_batch(b * 16, 16);
      net.train_step(batch, ds.labels(b * 16, 16), 0.05f);
    }
  }
  // Held-out accuracy far above chance (0.25).
  const Tensor test = ds.make_batch(10000, 64);
  EXPECT_GT(net.accuracy(test, ds.labels(10000, 64)), 0.6);
}

TEST(Trainer, ExportedNetworkMatchesForward) {
  SyntheticImageDataset ds(trainer_data());
  TrainableNet net(1, 8, 8, /*seed=*/7);
  net.conv(4, 3, 1, 1).relu().maxpool().fc(4);

  const Tensor batch = ds.make_batch(0, 8);
  net.train_step(batch, ds.labels(0, 8), 0.01f);  // move off the init

  const Tensor trainer_logits = net.forward(batch);
  Network inference = net.export_network("exported");
  const Tensor inference_logits = inference.forward(batch);
  EXPECT_EQ(trainer_logits.shape().dim(0), inference_logits.shape().dim(0));
  EXPECT_NEAR(max_abs_diff(trainer_logits, inference_logits), 0.0, 1e-4);
}

TEST(Trainer, ExportedNetworkIsAnalyzable) {
  TrainableNet net(1, 8, 8, 9);
  net.conv(4, 3, 1, 1).relu().conv(8, 3, 1, 1).relu().maxpool().fc(4);
  Network exported = net.export_network();
  EXPECT_EQ(exported.analyzable_nodes().size(), 3u);  // 2 convs + 1 fc
  EXPECT_TRUE(exported.finalized());
}

TEST(Trainer, ParamCountReported) {
  TrainableNet net(1, 8, 8, 9);
  net.conv(4, 3, 1, 1).fc(10);
  // conv: 4*1*3*3 + 4 = 40; fc: (4*8*8)*10 + 10 = 2570.
  EXPECT_EQ(net.num_params(), 40 + 2570);
}

TEST(Trainer, AccuracyOnUntrainedIsNearChance) {
  SyntheticImageDataset ds(trainer_data());
  TrainableNet net(1, 8, 8, 11);
  net.conv(4, 3, 1, 1).relu().fc(4);
  const Tensor test = ds.make_batch(0, 200);
  const double acc = net.accuracy(test, ds.labels(0, 200));
  // An untrained net carries no label information; anything well below the
  // trained-model regime (>0.6 in LearnsSyntheticClasses) is acceptable —
  // random-feature predictors can land anywhere below chance, too.
  EXPECT_LT(acc, 0.6);
}

}  // namespace
}  // namespace mupod
