#include "quant/block_float.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace mupod {
namespace {

Tensor random_tensor(std::int64_t n, double scale, std::uint64_t seed) {
  Tensor t(Shape({static_cast<int>(n)}));
  Rng rng(seed);
  for (std::int64_t i = 0; i < n; ++i)
    t[i] = static_cast<float>(rng.gaussian(0.0, scale));
  return t;
}

TEST(BlockFloat, ErrorBoundedByBlockDelta) {
  BlockFloatFormat fmt{.mantissa_bits = 6, .block_size = 8};
  Tensor t = random_tensor(512, 3.0, 1);
  Tensor q = t;
  quantize_tensor_bfp(q, fmt);
  for (std::int64_t b = 0; b < t.numel(); b += fmt.block_size) {
    double block_max = 0.0;
    for (int i = 0; i < fmt.block_size; ++i)
      block_max = std::max(block_max, std::fabs(static_cast<double>(t[b + i])));
    const double bound = bfp_delta_for_block_max(block_max, fmt) * (1 + 1e-9) + 1e-12;
    for (int i = 0; i < fmt.block_size; ++i)
      EXPECT_LE(std::fabs(q[b + i] - t[b + i]), bound) << b + i;
  }
}

TEST(BlockFloat, ZeroBlockUntouched) {
  BlockFloatFormat fmt{.mantissa_bits = 4, .block_size = 4};
  Tensor t(Shape({8}), 0.0f);
  quantize_tensor_bfp(t, fmt);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(BlockFloat, MoreMantissaBitsSmallerError) {
  Tensor t = random_tensor(4096, 1.0, 2);
  double prev = 1e300;
  for (int m : {4, 6, 8, 10}) {
    BlockFloatFormat fmt{.mantissa_bits = m, .block_size = 16};
    const BfpErrorStats st = bfp_error_stats(t, fmt);
    EXPECT_LT(st.stddev, prev);
    prev = st.stddev;
  }
}

TEST(BlockFloat, SmallerBlocksTrackLocalScale) {
  // With mixed-scale data, small blocks adapt their exponent: on the
  // LOW-scale segments the error must shrink by roughly the scale ratio
  // (the global stddev is dominated by the high-scale segments, where
  // both block sizes behave identically).
  Tensor t(Shape({4096}));
  Rng rng(3);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const double scale = (i / 64) % 2 == 0 ? 0.01 : 10.0;
    t[i] = static_cast<float>(rng.gaussian(0.0, scale));
  }
  BlockFloatFormat small{.mantissa_bits = 6, .block_size = 8};
  BlockFloatFormat large{.mantissa_bits = 6, .block_size = 1024};

  const auto low_scale_error = [&](const BlockFloatFormat& fmt) {
    Tensor q = t;
    quantize_tensor_bfp(q, fmt);
    double acc = 0.0;
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      if ((i / 64) % 2 != 0) continue;  // low-scale segments only
      const double e = static_cast<double>(q[i]) - t[i];
      acc += e * e;
      ++n;
    }
    return std::sqrt(acc / static_cast<double>(n));
  };
  EXPECT_LT(low_scale_error(small), low_scale_error(large) * 0.1);
}

TEST(BlockFloat, BitsPerValueAmortizesExponent) {
  BlockFloatFormat fmt{.mantissa_bits = 8, .block_size = 16};
  EXPECT_DOUBLE_EQ(fmt.bits_per_value(), 8.5);
  fmt.block_size = 8;
  EXPECT_DOUBLE_EQ(fmt.bits_per_value(), 9.0);
}

TEST(BlockFloat, ErrorUnbiased) {
  BlockFloatFormat fmt{.mantissa_bits = 7, .block_size = 32};
  Tensor t = random_tensor(100000, 2.0, 4);
  const BfpErrorStats st = bfp_error_stats(t, fmt);
  EXPECT_NEAR(st.mean, 0.0, st.stddev * 0.05);
}

TEST(BlockFloat, IdempotentQuantization) {
  BlockFloatFormat fmt{.mantissa_bits = 5, .block_size = 4};
  Tensor t = random_tensor(256, 1.0, 5);
  Tensor q1 = t;
  quantize_tensor_bfp(q1, fmt);
  Tensor q2 = q1;
  quantize_tensor_bfp(q2, fmt);
  EXPECT_DOUBLE_EQ(max_abs_diff(q1, q2), 0.0);
}

}  // namespace
}  // namespace mupod
