#include "io/netdef.hpp"

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

constexpr const char* kSimpleNet = R"(
# A LeNet-ish classifier.
name: simple
input: 3 16 16
layer conv1 type=conv in=data out=8 kernel=3 stride=1 pad=1
layer relu1 type=relu in=conv1
layer pool1 type=maxpool in=relu1 kernel=2 stride=2
layer conv2 type=conv in=pool1 out=16 kernel=3 pad=1
layer relu2 type=relu in=conv2
layer gap type=avgpool in=relu2 global=1
layer fc type=fc in=gap out=10
)";

TEST(Netdef, ParsesSimpleNet) {
  Network net = parse_netdef(kSimpleNet);
  EXPECT_EQ(net.name(), "simple");
  EXPECT_EQ(net.num_nodes(), 8);
  EXPECT_TRUE(net.finalized());
  EXPECT_EQ(net.analyzable_nodes().size(), 3u);
  EXPECT_EQ(net.node(net.node_id("fc")).unit_shape, Shape({1, 10}));
}

TEST(Netdef, ParsedNetRuns) {
  Network net = parse_netdef(kSimpleNet);
  init_weights_he(net, 5);
  Tensor x(Shape({2, 3, 16, 16}), 0.5f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(Netdef, BranchAndConcat) {
  Network net = parse_netdef(R"(
input: 1 8 8
layer a type=conv in=data out=2 kernel=1
layer b type=conv in=data out=3 kernel=1
layer cat type=concat in=a,b
)");
  EXPECT_EQ(net.node(net.node_id("cat")).unit_shape, Shape({1, 5, 8, 8}));
}

TEST(Netdef, EltwiseResidual) {
  Network net = parse_netdef(R"(
input: 1 4 4
layer c1 type=conv in=data out=1 kernel=3 pad=1
layer add type=eltwise in=c1,data
layer r type=relu in=add
)");
  EXPECT_EQ(net.node(net.node_id("add")).unit_shape, Shape({1, 1, 4, 4}));
}

TEST(Netdef, GroupedConv) {
  Network net = parse_netdef(R"(
input: 4 4 4
layer dw type=conv in=data out=4 kernel=3 pad=1 groups=4
)");
  const auto& cfg = static_cast<const Conv2DLayer&>(net.layer(net.node_id("dw"))).config();
  EXPECT_EQ(cfg.groups, 4);
}

TEST(Netdef, ErrorsCarryLineNumbers) {
  try {
    parse_netdef("input: 1 4 4\nlayer bad type=warp in=data\n");
    FAIL() << "expected NetdefError";
  } catch (const NetdefError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("warp"), std::string::npos);
  }
}

TEST(Netdef, RejectsMissingInput) {
  EXPECT_THROW(parse_netdef("layer r type=relu in=data\n"), NetdefError);
}

TEST(Netdef, RejectsUnknownUpstream) {
  EXPECT_THROW(parse_netdef("input: 1 4 4\nlayer r type=relu in=ghost\n"), NetdefError);
}

TEST(Netdef, RejectsMalformedAttributes) {
  EXPECT_THROW(parse_netdef("input: 1 4 4\nlayer c type=conv in=data out\n"), NetdefError);
  EXPECT_THROW(parse_netdef("input: 0 4 4\n"), NetdefError);
}

TEST(Netdef, RoundTripThroughSerializer) {
  Network net = parse_netdef(kSimpleNet);
  const std::string text = to_netdef(net);
  Network again = parse_netdef(text);
  EXPECT_EQ(again.num_nodes(), net.num_nodes());
  // Forward equality after identical init.
  init_weights_he(net, 7);
  init_weights_he(again, 7);
  Tensor x(Shape({1, 3, 16, 16}), 0.25f);
  EXPECT_DOUBLE_EQ(max_abs_diff(net.forward(x), again.forward(x)), 0.0);
}

TEST(Netdef, ZooModelsRoundTrip) {
  // Every zoo topology must survive netdef serialization (LRN, groups,
  // eltwise, concat, global pooling all exercised).
  for (const char* name : {"alexnet", "nin", "googlenet", "resnet50", "squeezenet", "mobilenet"}) {
    ZooOptions opts;
    opts.calibration_images = 0;
    ZooModel m = build_model(name, opts);
    Network round = parse_netdef(to_netdef(m.net));
    EXPECT_EQ(round.num_nodes(), m.net.num_nodes()) << name;
    EXPECT_EQ(round.analyzable_nodes().size(), m.net.analyzable_nodes().size()) << name;
  }
}

}  // namespace
}  // namespace mupod
