// The register-blocked packed GEMM (src/tensor/gemm.cpp) against a naive
// triple-loop reference, the conv/fc layers that consume it, and the
// determinism contract the plan-service suite depends on. Lives in the
// `sanitize`-labeled binary so run_sanitized_tests.sh covers the packing
// and tile-task paths under both ASan and TSan (the TSan run pins
// MUPOD_THREADS=4 so the tile parallelism actually crosses threads).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/layers.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

// Naive reference: C = A·B + beta*C with double accumulation.
void ref_gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a, std::int64_t lda,
              const float* b, std::int64_t ldb, float beta, float* c, std::int64_t ldc,
              bool trans_b) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float bv = trans_b ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += static_cast<double>(a[i * lda + kk]) * bv;
      }
      float& out = c[i * ldc + j];
      out = static_cast<float>(acc + (beta == 0.0f ? 0.0 : static_cast<double>(beta) * out));
    }
}

struct GemmCase {
  std::int64_t m, n, k;
  float beta;
  bool trans_b;
};

class GemmVsReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVsReference, Matches) {
  const GemmCase& p = GetParam();
  const std::int64_t lda = p.k, ldb = p.trans_b ? p.k : p.n, ldc = p.n;
  const std::vector<float> a = random_vec(static_cast<std::size_t>(p.m * p.k), 1);
  const std::vector<float> b =
      random_vec(static_cast<std::size_t>(p.k * p.n), 2);
  std::vector<float> c = random_vec(static_cast<std::size_t>(p.m * p.n), 3);
  std::vector<float> c_ref = c;

  gemm(p.m, p.n, p.k, a.data(), lda, b.data(), ldb, p.beta, c.data(), ldc, p.trans_b);
  ref_gemm(p.m, p.n, p.k, a.data(), lda, b.data(), ldb, p.beta, c_ref.data(), ldc, p.trans_b);

  // Scale the tolerance with the reduction length: each float accumulation
  // step contributes O(eps * |partial sum|).
  const double tol = 1e-4 * std::max<double>(1.0, std::sqrt(static_cast<double>(p.k)));
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], tol) << "element " << i << " of " << p.m << "x" << p.n << "x"
                                     << p.k;
}

std::vector<GemmCase> gemm_cases() {
  const GemmBlocking bl = gemm_blocking();
  std::vector<GemmCase> cases = {
      // Degenerate extents.
      {1, 1, 1, 0.0f, false},
      {1, 257, 3, 0.0f, false},
      {257, 1, 5, 1.0f, false},  // the batch-1 inner-product (GEMV) shape
      {3, 4, 1, 0.5f, false},
      // Non-multiples of MR/NR straddling one register tile.
      {bl.mr - 1, bl.nr - 1, 7, 0.0f, false},
      {bl.mr + 1, bl.nr + 1, 33, 1.0f, false},
      {2 * bl.mr + 3, 3 * bl.nr - 5, 64, 0.0f, true},
      // Straddling the cache blocks: KC boundary, MC boundary, NC boundary.
      {5, 9, bl.kc + 17, 1.0f, false},
      {bl.mc + bl.mr / 2, 31, bl.kc - 1, 0.0f, false},
      {9, bl.nc + bl.nr / 2, 40, 0.0f, true},
      // A mid-size everything-at-once shape.
      {130, 70, 300, 0.5f, true},
  };
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmVsReference, ::testing::ValuesIn(gemm_cases()));

TEST(Gemm, KZeroAppliesBetaOnly) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  gemm(2, 2, 0, nullptr, 1, nullptr, 1, 0.5f, c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
  gemm(2, 2, 0, nullptr, 1, nullptr, 1, 0.0f, c.data(), 2);
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  // beta == 0 must never read C, so NaNs in the output buffer are erased.
  const std::vector<float> a = random_vec(4 * 8, 4);
  const std::vector<float> b = random_vec(8 * 4, 5);
  std::vector<float> c(16, std::numeric_limits<float>::quiet_NaN());
  gemm(4, 4, 8, a.data(), 8, b.data(), 4, 0.0f, c.data(), 4);
  for (float v : c) EXPECT_TRUE(std::isfinite(v));
}

TEST(Gemm, RepeatCallsAreBitIdentical) {
  const std::vector<float> a = random_vec(100 * 300, 6);
  const std::vector<float> b = random_vec(300 * 90, 7);
  std::vector<float> c1(100 * 90, 0.0f), c2(100 * 90, 0.0f);
  gemm(100, 90, 300, a.data(), 300, b.data(), 90, 0.0f, c1.data(), 90);
  gemm(100, 90, 300, a.data(), 300, b.data(), 90, 0.0f, c2.data(), 90);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// Layer-level parity: blocked vs legacy paths

Conv2DLayer make_conv(const Conv2DLayer::Config& cfg, std::uint64_t seed) {
  Conv2DLayer conv(cfg);
  Rng rng(seed);
  for (std::int64_t i = 0; i < conv.mutable_weights()->numel(); ++i)
    (*conv.mutable_weights())[i] = static_cast<float>(rng.gaussian());
  if (conv.mutable_bias() != nullptr)
    for (std::int64_t i = 0; i < conv.mutable_bias()->numel(); ++i)
      (*conv.mutable_bias())[i] = static_cast<float>(rng.gaussian(0.0, 0.1));
  return conv;
}

struct ConvParityCase {
  int in_c, out_c, k, stride, pad, groups, h, w, batch;
};

class ConvPathParity : public ::testing::TestWithParam<ConvParityCase> {};

TEST_P(ConvPathParity, BlockedMatchesLegacy) {
  const ConvParityCase& p = GetParam();
  Conv2DLayer::Config cfg;
  cfg.in_channels = p.in_c;
  cfg.out_channels = p.out_c;
  cfg.kernel_h = cfg.kernel_w = p.k;
  cfg.stride = p.stride;
  cfg.pad = p.pad;
  cfg.groups = p.groups;
  const Conv2DLayer conv = make_conv(cfg, 11 * p.in_c + p.out_c);

  Tensor x(Shape({p.batch, p.in_c, p.h, p.w}));
  Rng rng(99);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());

  const Shape shapes[1] = {x.shape()};
  const Tensor* ins[1] = {&x};
  Tensor y_blocked(conv.output_shape(shapes));
  Tensor y_legacy(conv.output_shape(shapes));

  set_gemm_mode(GemmMode::kBlocked);
  conv.forward(ins, y_blocked);
  set_gemm_mode(GemmMode::kLegacy);
  conv.forward(ins, y_legacy);
  set_gemm_mode(GemmMode::kBlocked);

  for (std::int64_t i = 0; i < y_blocked.numel(); ++i)
    ASSERT_NEAR(y_blocked[i], y_legacy[i], 1e-4) << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvPathParity,
    ::testing::Values(ConvParityCase{8, 16, 3, 1, 1, 1, 12, 12, 2},   // padded 3x3
                      ConvParityCase{16, 32, 5, 2, 2, 1, 17, 17, 1},  // strided 5x5, odd extent
                      ConvParityCase{16, 16, 1, 1, 0, 1, 9, 9, 2},    // pointwise fast path
                      ConvParityCase{12, 24, 3, 1, 1, 4, 10, 10, 2},  // grouped
                      ConvParityCase{16, 16, 3, 1, 1, 16, 8, 8, 1},   // depthwise (direct)
                      ConvParityCase{6, 10, 3, 2, 0, 2, 15, 11, 3},   // grouped + strided,
                                                                      // non-square
                      ConvParityCase{32, 48, 3, 1, 1, 1, 16, 16, 1}   // straddles KC in k_dim
                      ));

TEST(InnerProductParity, BlockedMatchesLegacyAcrossBatch) {
  InnerProductLayer fc(137, 75);  // non-multiples of every tile size
  Rng rng(21);
  for (std::int64_t i = 0; i < fc.mutable_weights()->numel(); ++i)
    (*fc.mutable_weights())[i] = static_cast<float>(rng.gaussian());
  for (std::int64_t i = 0; i < fc.mutable_bias()->numel(); ++i)
    (*fc.mutable_bias())[i] = static_cast<float>(rng.gaussian());

  for (const int batch : {1, 2, 9}) {
    Tensor x(Shape({batch, 137}));
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
    const Shape shapes[1] = {x.shape()};
    const Tensor* ins[1] = {&x};
    Tensor y_blocked(fc.output_shape(shapes));
    Tensor y_legacy(fc.output_shape(shapes));
    set_gemm_mode(GemmMode::kBlocked);
    fc.forward(ins, y_blocked);
    set_gemm_mode(GemmMode::kLegacy);
    fc.forward(ins, y_legacy);
    set_gemm_mode(GemmMode::kBlocked);
    for (std::int64_t i = 0; i < y_blocked.numel(); ++i)
      ASSERT_NEAR(y_blocked[i], y_legacy[i], 1e-4) << "batch " << batch << " element " << i;
  }
}

// ---------------------------------------------------------------------------
// Determinism: the contract PR 2's bit-identical-run suite leans on.

TEST(GemmDeterminism, ForwardTwiceIsBitIdentical) {
  ZooOptions zo;
  zo.calibration_images = 4;
  zo.head_images = 0;
  ZooModel model = build_tiny_cnn(zo);
  Tensor x(Shape({2, model.channels, model.height, model.width}));
  Rng rng(5);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());

  const Tensor y1 = model.net.forward(x);
  const Tensor y2 = model.net.forward(x);
  ASSERT_EQ(y1.numel(), y2.numel());
  EXPECT_EQ(0, std::memcmp(y1.data(), y2.data(),
                           static_cast<std::size_t>(y1.numel()) * sizeof(float)));
}

// Batched and single-image forwards decompose the work differently (outer
// image/group fan-out vs inner tile fan-out), but the fixed per-tile
// accumulation order means each image's result must be bitwise identical
// either way.
TEST(GemmDeterminism, BatchDecompositionInvariant) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 24;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  const Conv2DLayer conv = make_conv(cfg, 31);

  const int batch = 3;
  Tensor x(Shape({batch, 16, 14, 14}));
  Rng rng(32);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());

  const Shape shapes[1] = {x.shape()};
  const Tensor* ins[1] = {&x};
  Tensor y_batch(conv.output_shape(shapes));
  set_gemm_mode(GemmMode::kBlocked);
  conv.forward(ins, y_batch);

  const std::int64_t img_in = x.numel() / batch;
  const std::int64_t img_out = y_batch.numel() / batch;
  for (int n = 0; n < batch; ++n) {
    Tensor xi(Shape({1, 16, 14, 14}));
    std::memcpy(xi.data(), x.data() + n * img_in, static_cast<std::size_t>(img_in) * sizeof(float));
    const Shape si[1] = {xi.shape()};
    const Tensor* ii[1] = {&xi};
    Tensor yi(conv.output_shape(si));
    conv.forward(ii, yi);
    EXPECT_EQ(0, std::memcmp(yi.data(), y_batch.data() + n * img_out,
                             static_cast<std::size_t>(img_out) * sizeof(float)))
        << "image " << n;
  }
}

// ---------------------------------------------------------------------------
// Scratch arena + instrumentation

TEST(GemmScratchArena, GrowsOnceAndReportsBytes) {
  // Force an allocation large enough to be new.
  GemmScratch& s = GemmScratch::local();
  (void)s.col(1 << 12);
  const std::int64_t after_first = gemm_scratch_bytes();
  EXPECT_GE(after_first, static_cast<std::int64_t>((1 << 12) * sizeof(float)));
  EXPECT_GT(s.bytes(), 0u);

  // Same-size reuse must not grow the arena.
  (void)s.col(1 << 12);
  EXPECT_EQ(gemm_scratch_bytes(), after_first);
}

TEST(GemmMetrics, CountersAndScratchGauge) {
  metrics().reset();
  set_metrics_enabled(true);

  const std::vector<float> a = random_vec(40 * 600, 8);
  const std::vector<float> b = random_vec(600 * 50, 9);
  std::vector<float> c(40 * 50, 0.0f);
  gemm(40, 50, 600, a.data(), 600, b.data(), 50, 0.0f, c.data(), 50);

  // Trip a fresh scratch growth while metrics are on so the gauge is set.
  (void)GemmScratch::local().col(static_cast<std::size_t>(gemm_scratch_bytes()) / sizeof(float) +
                                 4096);

  const MetricsSnapshot snap = metrics().snapshot();
  set_metrics_enabled(false);

  EXPECT_GE(snap.counter("gemm.calls"), 1);
  EXPECT_GE(snap.counter("gemm.flops"), 2LL * 40 * 50 * 600);
  const GemmBlocking bl = gemm_blocking();
  const std::int64_t want_tiles = ((40 + bl.mr - 1) / bl.mr) * ((50 + bl.nr - 1) / bl.nr) *
                                  ((600 + bl.kc - 1) / bl.kc);
  EXPECT_GE(snap.counter("gemm.tiles"), want_tiles);

  std::int64_t gauge = -1;
  for (const auto& g : snap.gauges)
    if (g.name == "tensor.scratch.bytes") gauge = g.value;
  EXPECT_GT(gauge, 0) << "tensor.scratch.bytes gauge not set";
  EXPECT_EQ(gauge, gemm_scratch_bytes());
}

}  // namespace
}  // namespace mupod
