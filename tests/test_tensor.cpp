#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mupod {
namespace {

TEST(Tensor, ConstructFill) {
  Tensor t(Shape({2, 3}), 1.5f);
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, NchwIndexing) {
  Tensor t(Shape({2, 3, 4, 5}));
  t.at(1, 2, 3, 4) = 42.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119
  EXPECT_FLOAT_EQ(t[119], 42.0f);
  EXPECT_EQ(t.index(1, 2, 3, 4), 119);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape({2, 6}));
  t[7] = 3.0f;
  t.reshape(Shape({2, 3, 2, 1}));
  EXPECT_EQ(t.shape(), Shape({2, 3, 2, 1}));
  EXPECT_FLOAT_EQ(t[7], 3.0f);  // data untouched
}

TEST(Tensor, Arithmetic) {
  Tensor a(Shape({4}), 2.0f);
  Tensor b(Shape({4}), 3.0f);
  a += b;
  EXPECT_FLOAT_EQ(a[0], 5.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[2], 2.0f);
  a *= 4.0f;
  EXPECT_FLOAT_EQ(a[3], 8.0f);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape({4}));
  t[0] = -3.0f;
  t[1] = 1.0f;
  t[2] = 2.0f;
  t[3] = 0.0f;
  EXPECT_FLOAT_EQ(t.max_abs(), 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(Tensor, Stddev) {
  Tensor t(Shape({2}));
  t[0] = -1.0f;
  t[1] = 1.0f;
  EXPECT_NEAR(t.stddev(), 1.0, 1e-12);  // population stddev
}

TEST(Tensor, ArgmaxRow) {
  Tensor t(Shape({2, 3}));
  t[0] = 0.1f; t[1] = 0.9f; t[2] = 0.3f;   // row 0 -> 1
  t[3] = 5.0f; t[4] = -1.0f; t[5] = 4.9f;  // row 1 -> 0
  EXPECT_EQ(t.argmax_row(0), 1);
  EXPECT_EQ(t.argmax_row(1), 0);
}

TEST(Tensor, ArgmaxRowRank4) {
  Tensor t(Shape({1, 4, 1, 1}));
  t[2] = 7.0f;
  EXPECT_EQ(t.argmax_row(0), 2);
}

TEST(Tensor, Subtract) {
  Tensor a(Shape({3}), 5.0f);
  Tensor b(Shape({3}), 2.0f);
  Tensor c = subtract(a, b);
  EXPECT_FLOAT_EQ(c[1], 3.0f);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(Shape({3}), 1.0f);
  Tensor b(Shape({3}), 1.0f);
  b[2] = -1.0f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(Tensor, StddevOfDiffMatchesMaterialized) {
  Tensor a(Shape({64}));
  Tensor b(Shape({64}));
  for (int i = 0; i < 64; ++i) {
    a[i] = static_cast<float>(i) * 0.25f;
    b[i] = static_cast<float>(i % 7) - 2.0f;
  }
  const Tensor d = subtract(a, b);
  EXPECT_NEAR(stddev_of_diff(a, b), d.stddev(), 1e-9);
}

TEST(Tensor, ApplyTransform) {
  Tensor t(Shape({3}), -2.0f);
  t.apply([](float v) { return std::fabs(v); });
  EXPECT_FLOAT_EQ(t[0], 2.0f);
}

}  // namespace
}  // namespace mupod
