#include "io/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct ReportFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  PipelineResult result;
};

const ReportFixture& fixture() {
  static ReportFixture* fix = [] {
    auto* f = new ReportFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 77;
    zo.calibration_images = 8;
    f->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    f->dataset = std::make_unique<SyntheticImageDataset>(dc);
    PipelineConfig cfg;
    cfg.harness.profile_images = 16;
    cfg.harness.eval_images = 128;
    cfg.profiler.points = 6;
    cfg.sigma.relative_accuracy_drop = 0.05;
    cfg.search_weights = true;
    f->result = run_pipeline(f->model.net, f->model.analyzed, *f->dataset,
                             {objective_input_bits(f->model.net, f->model.analyzed)}, cfg);
    return f;
  }();
  return *fix;
}

TEST(Report, ContainsAllSections) {
  const ReportFixture& f = fixture();
  ReportOptions opts;
  opts.title = "tiny report";
  const std::string md = render_report(f.model.net, f.model.analyzed, f.result, opts);
  EXPECT_NE(md.find("# tiny report"), std::string::npos);
  EXPECT_NE(md.find("Per-layer error propagation"), std::string::npos);
  EXPECT_NE(md.find("Objective `input_bits`"), std::string::npos);
  EXPECT_NE(md.find("## Timings"), std::string::npos);
  // Every analyzed layer appears by name.
  for (int id : f.model.analyzed)
    EXPECT_NE(md.find(f.model.net.node(id).name), std::string::npos);
}

TEST(Report, OmitsOptionalSections) {
  const ReportFixture& f = fixture();
  ReportOptions opts;
  opts.include_lambda_theta = false;
  opts.include_xi = false;
  const std::string md = render_report(f.model.net, f.model.analyzed, f.result, opts);
  EXPECT_EQ(md.find("Per-layer error propagation"), std::string::npos);
  EXPECT_EQ(md.find("| xi |"), std::string::npos);
}

TEST(Report, WritesFile) {
  const ReportFixture& f = fixture();
  const std::string path = std::string(::testing::TempDir()) + "/report.md";
  ASSERT_TRUE(write_report(path, f.model.net, f.model.analyzed, f.result));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("# ", 0), 0u);
  std::remove(path.c_str());
}

TEST(Report, WriteFailsOnBadPath) {
  const ReportFixture& f = fixture();
  EXPECT_FALSE(write_report("/nonexistent_dir_xyz/report.md", f.model.net, f.model.analyzed,
                            f.result));
}

}  // namespace
}  // namespace mupod
