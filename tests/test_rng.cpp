#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mupod {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntervalBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform(-1.0, 1.0);
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  // Var of U[-1,1] = (b-a)^2/12 = 1/3.
  EXPECT_NEAR(var, 1.0 / 3.0, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 0.5);
    sum += g;
    sumsq += (g - 5.0) * (g - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.02);
  EXPECT_NEAR(std::sqrt(sumsq / n), 0.5, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(42);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(10), 10u);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Splitmix, AdvancesState) {
  std::uint64_t s = 1;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mupod
