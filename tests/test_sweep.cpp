#include "serve/sweep.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

SweepCell cell(const std::string& objective, double loss, std::int64_t cost) {
  SweepCell c;
  c.result.query.objective.name = objective;
  c.result.accuracy_loss = loss;
  c.result.objective_cost = cost;
  return c;
}

TEST(ParetoFront, SingleCellIsAlwaysOnFront) {
  std::vector<SweepCell> cells = {cell("input", 0.01, 100)};
  mark_pareto_front(cells);
  EXPECT_TRUE(cells[0].pareto);
}

TEST(ParetoFront, DominatedCellIsMarked) {
  // b loses on both axes -> dominated; a and c trade off -> both on front.
  std::vector<SweepCell> cells = {
      cell("input", 0.01, 100),  // a
      cell("input", 0.02, 150),  // b: worse loss AND worse cost than a
      cell("input", 0.03, 50),   // c: worse loss but better cost
  };
  mark_pareto_front(cells);
  EXPECT_TRUE(cells[0].pareto);
  EXPECT_FALSE(cells[1].pareto);
  EXPECT_TRUE(cells[2].pareto);
}

TEST(ParetoFront, EqualCellsDoNotDominateEachOther) {
  std::vector<SweepCell> cells = {cell("input", 0.01, 100), cell("input", 0.01, 100)};
  mark_pareto_front(cells);
  EXPECT_TRUE(cells[0].pareto);
  EXPECT_TRUE(cells[1].pareto);
}

TEST(ParetoFront, TieOnOneAxisDominatesWhenOtherIsStrictlyBetter) {
  std::vector<SweepCell> cells = {cell("input", 0.01, 100), cell("input", 0.01, 120)};
  mark_pareto_front(cells);
  EXPECT_TRUE(cells[0].pareto);
  EXPECT_FALSE(cells[1].pareto);
}

TEST(ParetoFront, ObjectiveGroupsAreIndependent) {
  // The mac cell would be crushed by the input cell on raw numbers, but
  // costs under different rho vectors are not comparable.
  std::vector<SweepCell> cells = {cell("input", 0.01, 100), cell("mac", 0.5, 100000)};
  mark_pareto_front(cells);
  EXPECT_TRUE(cells[0].pareto);
  EXPECT_TRUE(cells[1].pareto);
}

// --- end-to-end sweeps through a real service ------------------------------

struct SweepFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
};

const SweepFixture& fixture() {
  static SweepFixture* f = [] {
    auto* fx = new SweepFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 404;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    fx->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    fx->dataset = std::make_unique<SyntheticImageDataset>(dc);
    return fx;
  }();
  return *f;
}

PlanServiceConfig fast_service_config() {
  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = 16;
  scfg.pipeline.harness.eval_images = 128;
  scfg.pipeline.profiler.points = 6;
  return scfg;
}

SweepSpec grid_spec(const SweepFixture& f) {
  SweepSpec spec;
  spec.accuracy_targets = {0.01, 0.05};
  spec.objectives = {objective_input_bits(f.model.net, f.model.analyzed),
                     objective_mac_energy(f.model.net, f.model.analyzed)};
  return spec;
}

TEST(Sweep, GridShapeAndStats) {
  const SweepFixture& f = fixture();
  PlanService service(fast_service_config());
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const SweepResult r = run_sweep(service, key, grid_spec(f));

  ASSERT_EQ(r.cells.size(), 4u);
  EXPECT_GE(r.workers, 1);
  // Row-major over targets x objectives.
  EXPECT_EQ(r.cells[0].result.query.accuracy_target, 0.01);
  EXPECT_EQ(r.cells[0].result.query.objective.name, "input_bits");
  EXPECT_EQ(r.cells[1].result.query.objective.name, "mac_energy");
  EXPECT_EQ(r.cells[3].result.query.accuracy_target, 0.05);

  // The amortization contract: the grid costs 1 profile + M sigma searches
  // + N*M tails, never more.
  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_misses, 1);
  EXPECT_EQ(s.sigma_misses, 2);
  EXPECT_EQ(s.plan_misses, 4);
  EXPECT_EQ(s.plan_hits, 0);
}

TEST(Sweep, EveryObjectiveGroupHasAFrontCell) {
  const SweepFixture& f = fixture();
  PlanService service(fast_service_config());
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const SweepResult r = run_sweep(service, key, grid_spec(f));

  int input_front = 0, mac_front = 0;
  for (const SweepCell& c : r.cells) {
    if (!c.pareto) continue;
    if (c.result.query.objective.name == "input_bits") ++input_front;
    if (c.result.query.objective.name == "mac_energy") ++mac_front;
  }
  EXPECT_GE(input_front, 1);
  EXPECT_GE(mac_front, 1);
}

TEST(Sweep, SerialAndConcurrentProduceIdenticalPlans) {
  const SweepFixture& f = fixture();

  PlanService serial_service(fast_service_config());
  const PlanKey sk = serial_service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  SweepSpec serial_spec = grid_spec(f);
  serial_spec.concurrent = false;
  const SweepResult serial = run_sweep(serial_service, sk, serial_spec);

  PlanService conc_service(fast_service_config());
  const PlanKey ck = conc_service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const SweepResult conc = run_sweep(conc_service, ck, grid_spec(f));

  ASSERT_EQ(serial.cells.size(), conc.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const PlanResult& a = serial.cells[i].result;
    const PlanResult& b = conc.cells[i].result;
    EXPECT_EQ(a.alloc.bits, b.alloc.bits) << "cell " << i;
    EXPECT_EQ(a.alloc.formats, b.alloc.formats) << "cell " << i;
    EXPECT_EQ(a.sigma_used, b.sigma_used) << "cell " << i;
    EXPECT_EQ(a.objective_cost, b.objective_cost) << "cell " << i;
    EXPECT_EQ(serial.cells[i].pareto, conc.cells[i].pareto) << "cell " << i;
  }
}

TEST(Sweep, LooserTargetsNeverCostMore) {
  // Within one objective, relaxing the accuracy constraint can only shrink
  // (or hold) the bit budget — the monotonicity the Pareto table rests on.
  const SweepFixture& f = fixture();
  PlanService service(fast_service_config());
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  SweepSpec spec = grid_spec(f);
  spec.accuracy_targets = {0.01, 0.02, 0.05};
  spec.objectives = {objective_input_bits(f.model.net, f.model.analyzed)};
  const SweepResult r = run_sweep(service, key, spec);
  ASSERT_EQ(r.cells.size(), 3u);
  EXPECT_GE(r.cells[0].result.objective_cost, r.cells[1].result.objective_cost);
  EXPECT_GE(r.cells[1].result.objective_cost, r.cells[2].result.objective_cost);
}

}  // namespace
}  // namespace mupod
