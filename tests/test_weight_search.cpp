#include "core/weight_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

TEST(WeightSearch, FindsSatisfyingBitwidth) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  WeightSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  const WeightSearchResult res = search_weight_bitwidth(net, *tiny().harness, {}, cfg);
  EXPECT_GE(res.bits, cfg.min_bits);
  EXPECT_LE(res.bits, cfg.max_bits);
  EXPECT_GE(res.accuracy, 0.95);
  EXPECT_GT(res.evaluations, 1);
}

TEST(WeightSearch, RestoresWeights) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  DatasetConfig dc;
  dc.height = 16;
  dc.width = 16;
  SyntheticImageDataset ds(dc);
  const Tensor probe = ds.make_batch(5000, 4);
  const Tensor before = net.forward(probe);

  WeightSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  (void)search_weight_bitwidth(net, *tiny().harness, {}, cfg);
  const Tensor after = net.forward(probe);
  EXPECT_DOUBLE_EQ(max_abs_diff(before, after), 0.0);
}

TEST(WeightSearch, TighterConstraintNeedsMoreBits) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  WeightSearchConfig tight, loose;
  tight.relative_accuracy_drop = 0.01;
  loose.relative_accuracy_drop = 0.20;
  const int b_tight = search_weight_bitwidth(net, *tiny().harness, {}, tight).bits;
  const int b_loose = search_weight_bitwidth(net, *tiny().harness, {}, loose).bits;
  EXPECT_GE(b_tight, b_loose);
}

TEST(WeightSearch, InputQuantizationConsumesBudget) {
  // With aggressive input quantization already applied, the weight search
  // cannot need FEWER bits than with exact inputs.
  Network& net = const_cast<Network&>(tiny().harness->net());
  WeightSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;

  std::unordered_map<int, InjectionSpec> harsh;
  for (int node : tiny().harness->analyzed()) {
    FixedPointFormat f{.integer_bits = 3, .fraction_bits = 2};
    harsh.emplace(node, InjectionSpec::quantize(f));
  }
  const int with_inputs = search_weight_bitwidth(net, *tiny().harness, harsh, cfg).bits;
  const int without = search_weight_bitwidth(net, *tiny().harness, {}, cfg).bits;
  EXPECT_GE(with_inputs, without);
}

}  // namespace
}  // namespace mupod
