#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hpp"

namespace mupod {
namespace {

TEST(Regression, ExactLine) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys = {3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_EQ(f.n, 4);
}

TEST(Regression, PredictAndInvert) {
  LinearFit f;
  f.slope = 3.0;
  f.intercept = -1.0;
  EXPECT_DOUBLE_EQ(f.predict(2.0), 5.0);
  EXPECT_DOUBLE_EQ(f.invert(5.0), 2.0);
}

TEST(Regression, NoisyLineRecovered) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(0.7 * x + 2.0 + rng.gaussian(0.0, 0.05));
  }
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 0.7, 0.01);
  EXPECT_NEAR(f.intercept, 2.0, 0.05);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Regression, DegenerateInputs) {
  std::vector<double> one = {1.0};
  EXPECT_EQ(fit_linear(one, one).n, 0);

  std::vector<double> xs = {2.0, 2.0, 2.0};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(fit_linear(xs, ys).n, 0);  // vertical line: no fit
}

TEST(Regression, MismatchedSizes) {
  std::vector<double> xs = {1.0, 2.0};
  std::vector<double> ys = {1.0};
  EXPECT_EQ(fit_linear(xs, ys).n, 0);
}

TEST(Regression, ConstantYsPerfectFlatFit) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  std::vector<double> ys = {4.0, 4.0, 4.0};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);
}

TEST(RegressionNoIntercept, ExactProportional) {
  std::vector<double> xs = {1.0, 2.0, 4.0};
  std::vector<double> ys = {2.5, 5.0, 10.0};
  const LinearFit f = fit_linear_no_intercept(xs, ys);
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(f.intercept, 0.0);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(RegressionNoIntercept, BiasedDataFitsWorse) {
  // y = x + 10: the through-origin fit must have lower r2 than the full fit.
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys = {11.0, 12.0, 13.0, 14.0, 15.0};
  const LinearFit with = fit_linear(xs, ys);
  const LinearFit without = fit_linear_no_intercept(xs, ys);
  EXPECT_GT(with.r2, without.r2);
}

}  // namespace
}  // namespace mupod
