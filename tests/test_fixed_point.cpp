#include "quant/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace mupod {
namespace {

TEST(FixedPoint, StepAndDelta) {
  FixedPointFormat f{.integer_bits = 4, .fraction_bits = 3};
  EXPECT_DOUBLE_EQ(f.step(), 0.125);
  EXPECT_DOUBLE_EQ(f.delta(), 0.0625);  // 2^-(F+1)
  EXPECT_EQ(f.total_bits(), 7);
}

TEST(FixedPoint, NegativeFractionBits) {
  // Delta > 1: the implicit-shift formats of Stripes/Loom.
  FixedPointFormat f{.integer_bits = 9, .fraction_bits = -3};
  EXPECT_DOUBLE_EQ(f.step(), 8.0);
  EXPECT_DOUBLE_EQ(f.delta(), 4.0);
  EXPECT_EQ(f.total_bits(), 6);
}

TEST(FixedPoint, RangeLimits) {
  FixedPointFormat f{.integer_bits = 4, .fraction_bits = 2};
  EXPECT_DOUBLE_EQ(f.max_value(), 8.0 - 0.25);
  EXPECT_DOUBLE_EQ(f.min_value(), -8.0);
}

TEST(FixedPoint, IntegerBitsForRangeMatchesPaperTable2) {
  // Paper Table II: max|X| of (161, 139, 139, 443, 415) -> I = (9,9,9,10,10).
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(161.0), 9);
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(139.0), 9);
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(443.0), 10);
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(415.0), 10);
}

TEST(FixedPoint, IntegerBitsEdgeCases) {
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(0.0), 1);
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(-1.0), 1);
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(1.0), 1);   // ceil(log2 1)=0 -> 1
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(1.5), 2);
  EXPECT_EQ(FixedPointFormat::integer_bits_for_range(2.0), 2);
}

TEST(FixedPoint, FractionBitsForDelta) {
  // F = smallest integer with 2^-(F+1) <= delta.
  EXPECT_EQ(FixedPointFormat::fraction_bits_for_delta(0.0625), 3);
  EXPECT_EQ(FixedPointFormat::fraction_bits_for_delta(0.05), 4);
  EXPECT_EQ(FixedPointFormat::fraction_bits_for_delta(0.5), 0);
  EXPECT_EQ(FixedPointFormat::fraction_bits_for_delta(4.0), -3);
}

TEST(FixedPoint, DerivedFormatDeltaNeverExceedsRequest) {
  for (double delta : {1e-4, 3e-3, 0.02, 0.3, 1.7, 10.0}) {
    const int f = FixedPointFormat::fraction_bits_for_delta(delta);
    EXPECT_LE(std::exp2(-(f + 1)), delta + 1e-15);
    // One fewer fraction bit must violate the bound (minimality).
    EXPECT_GT(std::exp2(-f), delta);
  }
}

TEST(FixedPoint, QuantizeRounding) {
  FixedPointFormat f{.integer_bits = 4, .fraction_bits = 2};  // step 0.25
  EXPECT_FLOAT_EQ(quantize_value(1.1f, f), 1.0f);
  EXPECT_FLOAT_EQ(quantize_value(1.13f, f), 1.25f);
  EXPECT_FLOAT_EQ(quantize_value(-0.9f, f), -1.0f);
  EXPECT_FLOAT_EQ(quantize_value(0.0f, f), 0.0f);  // zeros always exact
}

TEST(FixedPoint, QuantizeSaturates) {
  FixedPointFormat f{.integer_bits = 3, .fraction_bits = 1};  // [-4, 3.5]
  EXPECT_FLOAT_EQ(quantize_value(100.0f, f), 3.5f);
  EXPECT_FLOAT_EQ(quantize_value(-100.0f, f), -4.0f);
}

TEST(FixedPoint, WorstCaseErrorBoundedByDelta) {
  FixedPointFormat f{.integer_bits = 6, .fraction_bits = 5};
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.uniform(-30.0, 30.0));
    const float q = quantize_value(x, f);
    EXPECT_LE(std::fabs(q - x), f.delta() + 1e-7) << "x=" << x;
  }
}

TEST(FixedPoint, QuantizeTensorMatchesScalar) {
  FixedPointFormat f{.integer_bits = 3, .fraction_bits = 4};
  Tensor t(Shape({64}));
  Rng rng(5);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-4.0, 4.0));
  const Tensor q = quantized(t, f);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    EXPECT_FLOAT_EQ(q[i], quantize_value(t[i], f));
}

TEST(FixedPoint, NoiseStddevMatchesUniformModel) {
  // Quantization error of a dense value population ~ U[-Delta, Delta] with
  // s.d. 2*Delta/sqrt(12) (Widrow's model, paper Sec. II-A).
  FixedPointFormat f{.integer_bits = 2, .fraction_bits = 6};
  Tensor t(Shape({200000}));
  Rng rng(33);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.5, 1.5));
  const QuantErrorStats st = quantization_error_stats(t, f);
  EXPECT_NEAR(st.mean, 0.0, 1e-4);
  EXPECT_NEAR(st.stddev, f.noise_stddev(), f.noise_stddev() * 0.02);
  EXPECT_LE(st.max_abs, f.delta() + 1e-7);
  EXPECT_EQ(st.saturated, 0);
}

TEST(FixedPoint, ErrorStatsCountsExactValues) {
  FixedPointFormat f{.integer_bits = 4, .fraction_bits = 1};  // step 0.5
  Tensor t(Shape({4}));
  t[0] = 0.0f;
  t[1] = 0.5f;
  t[2] = 0.3f;
  t[3] = 2.25f;
  const QuantErrorStats st = quantization_error_stats(t, f);
  EXPECT_EQ(st.exact, 2);
  EXPECT_EQ(st.count, 4);
}

TEST(FixedPoint, ForRangeAndDelta) {
  const FixedPointFormat f = FixedPointFormat::for_range_and_delta(161.0, 0.03);
  EXPECT_EQ(f.integer_bits, 9);
  EXPECT_EQ(f.fraction_bits, 5);  // 2^-6 = 0.0156 <= 0.03, 2^-5 = 0.031 > 0.03
  EXPECT_EQ(f.total_bits(), 14);
}

TEST(FixedPoint, ForRangeAndDeltaMinimumOneBit) {
  const FixedPointFormat f = FixedPointFormat::for_range_and_delta(1.0, 100.0);
  EXPECT_GE(f.total_bits(), 1);
}

TEST(FixedPoint, ToString) {
  FixedPointFormat f{.integer_bits = 9, .fraction_bits = -3};
  EXPECT_EQ(f.to_string(), "9.-3");
}

}  // namespace
}  // namespace mupod
