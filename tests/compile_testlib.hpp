// Shared helpers for the graph-compiler batteries (test_compile.cpp,
// test_compile_equivalence.cpp): a seeded random-network generator that
// deliberately exercises fusible and non-fusible boundaries — norm layers
// on and off the conv spine, branching (multi-consumer producers),
// depthwise convs, dropout/flatten noops including as the output node —
// plus format pickers that create both homogeneous int8 regions and
// mixed-precision region splits.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "quant/fixed_point.hpp"
#include "stats/rng.hpp"

namespace mupod::compiletest {

inline void fill_gaussian(Tensor* t, Rng* rng, double scale) {
  float* p = t->data();
  for (std::int64_t i = 0; i < t->numel(); ++i)
    p[i] = static_cast<float>(rng->gaussian() * scale);
}

// Fills a freshly added weight-bearing layer so activations stay O(1).
inline void init_layer(Network* net, int id, Rng* rng) {
  Tensor* w = net->layer(id).mutable_weights();
  if (w == nullptr || w->numel() == 0) return;
  const std::int64_t fan_in = w->numel() / w->shape().dim(0);
  fill_gaussian(w, rng, 1.2 / std::sqrt(static_cast<double>(fan_in)));
  Tensor* b = net->layer(id).mutable_bias();
  if (b != nullptr) fill_gaussian(b, rng, 0.1);
}

inline void init_norm(Network* net, int id, Rng* rng) {
  auto& bn = static_cast<BatchNormScaleLayer&>(net->layer(id));
  float* s = bn.scale().data();
  float* t = bn.shift().data();
  for (std::int64_t i = 0; i < bn.scale().numel(); ++i) {
    s[i] = static_cast<float>(rng->uniform(0.6, 1.4));
    t[i] = static_cast<float>(rng->gaussian() * 0.1);
  }
}

struct RandomNet {
  Network net{"rand"};
  std::vector<int> analyzed;  // conv/fc node ids in topological order
  int channels = 3, height = 8, width = 8;
};

// Deterministic function of `seed`. Every structural feature the rewriter
// guards on appears with positive probability, so a modest seed sweep
// covers all rule/non-rule boundaries (the vacuity guards assert it did).
inline RandomNet make_random_net(std::uint64_t seed) {
  RandomNet r;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 12345);
  int ch = r.channels, hh = r.height, ww = r.width;
  int cur = r.net.add_input("in", ch, hh, ww);
  int name_id = 0;
  const auto nm = [&](const char* base) { return std::string(base) + std::to_string(name_id++); };

  const auto add_conv = [&](int in_id, int out_ch, int k, int pad, int groups) {
    Conv2DLayer::Config cc;
    cc.in_channels = ch;
    cc.out_channels = out_ch;
    cc.kernel_h = cc.kernel_w = k;
    cc.pad = pad;
    cc.groups = groups;
    const int id = r.net.add(nm("conv"), std::make_unique<Conv2DLayer>(cc), std::vector<int>{in_id});
    init_layer(&r.net, id, &rng);
    r.analyzed.push_back(id);
    ch = out_ch;
    return id;
  };

  const int blocks = 2 + static_cast<int>(rng.uniform_index(3));
  for (int b = 0; b < blocks; ++b) {
    switch (rng.uniform_index(6)) {
      case 0:
      case 1: {  // conv spine: conv [+ BN] [+ ReLU] — the fusible shape
        cur = add_conv(cur, 4 + 4 * static_cast<int>(rng.uniform_index(2)), 3, 1, 1);
        if (rng.uniform() < 0.5) {
          const int bn =
              r.net.add(nm("bn"), std::make_unique<BatchNormScaleLayer>(ch), std::vector<int>{cur});
          init_norm(&r.net, bn, &rng);
          cur = bn;
        }
        if (rng.uniform() < 0.7)
          cur = r.net.add(nm("relu"), std::make_unique<ReLULayer>(), std::vector<int>{cur});
        break;
      }
      case 2: {  // depthwise conv (+ ReLU): fusible, group-lowered
        cur = add_conv(cur, ch, 3, 1, ch);
        if (rng.uniform() < 0.6)
          cur = r.net.add(nm("relu"), std::make_unique<ReLULayer>(), std::vector<int>{cur});
        break;
      }
      case 3: {  // pool: float interior layer, breaks integer regions
        if (hh >= 4 && ww >= 4) {
          PoolLayer::Config pc;
          pc.mode = rng.uniform() < 0.5 ? PoolLayer::Mode::kMax : PoolLayer::Mode::kAvg;
          cur = r.net.add(nm("pool"), std::make_unique<PoolLayer>(pc), std::vector<int>{cur});
          hh /= 2;
          ww /= 2;
        } else {
          cur = add_conv(cur, ch, 1, 0, 1);
        }
        break;
      }
      case 4: {  // branch + eltwise join: `cur` gets TWO consumers, so
                 // nothing may fuse into it and its store stays float
        const int keep_ch = ch;
        const int a = add_conv(cur, keep_ch, 3, 1, 1);
        ch = keep_ch;
        const int bconv = add_conv(cur, keep_ch, 1, 0, 1);
        cur = r.net.add(nm("add"), std::make_unique<EltwiseAddLayer>(), std::vector<int>{a, bconv});
        if (rng.uniform() < 0.5)  // ReLU on a non-dot-product producer: must NOT fuse
          cur = r.net.add(nm("relu"), std::make_unique<ReLULayer>(), std::vector<int>{cur});
        break;
      }
      case 5: {  // norm with a non-conv producer: fold-norm must not fire
        const int bn =
            r.net.add(nm("bn"), std::make_unique<BatchNormScaleLayer>(ch), std::vector<int>{cur});
        init_norm(&r.net, bn, &rng);
        cur = bn;
        break;
      }
    }
  }

  if (rng.uniform() < 0.4)
    cur = r.net.add(nm("drop"), std::make_unique<DropoutLayer>(), std::vector<int>{cur});
  if (rng.uniform() < 0.5)  // explicit flatten before the FC head (droppable)
    cur = r.net.add(nm("flat"), std::make_unique<FlattenLayer>(), std::vector<int>{cur});
  const int feats = ch * hh * ww;
  {
    const int fc = r.net.add(nm("fc"), std::make_unique<InnerProductLayer>(feats, 8),
                             std::vector<int>{cur});
    init_layer(&r.net, fc, &rng);
    r.analyzed.push_back(fc);
    cur = fc;
  }
  if (rng.uniform() < 0.6)
    cur = r.net.add(nm("relu"), std::make_unique<ReLULayer>(), std::vector<int>{cur});
  {
    const int fc =
        r.net.add(nm("fc"), std::make_unique<InnerProductLayer>(8, 5), std::vector<int>{cur});
    init_layer(&r.net, fc, &rng);
    r.analyzed.push_back(fc);
    cur = fc;
  }
  if (rng.uniform() < 0.25)  // noop as the OUTPUT node: dropped, output resolves through it
    cur = r.net.add(nm("drop"), std::make_unique<DropoutLayer>(), std::vector<int>{cur});

  r.net.finalize();
  return r;
}

// Homogeneous int8-able activation formats (7 bits; with 8-bit weights
// every lowered layer lands in int8, maximizing fused regions).
inline std::vector<FixedPointFormat> int8_formats(std::size_t n) {
  return std::vector<FixedPointFormat>(n, FixedPointFormat{2, 5});
}

// Mixed formats: every third analyzed layer gets a 14-bit activation
// (int16 storage), splitting the int8 regions at type boundaries.
inline std::vector<FixedPointFormat> mixed_formats(std::size_t n) {
  std::vector<FixedPointFormat> f(n, FixedPointFormat{2, 5});
  for (std::size_t i = 2; i < n; i += 3) f[i] = FixedPointFormat{2, 12};
  return f;
}

inline Tensor random_input(int n, int c, int h, int w, std::uint64_t seed) {
  Tensor t(Shape({n, c, h, w}));
  Rng rng(seed);
  fill_gaussian(&t, &rng, 1.0);
  return t;
}

}  // namespace mupod::compiletest
