// Kernel registry + runtime ISA dispatch (src/tensor/kernels/): the name
// round-trip and env-override parsing, availability clamping, registry
// geometry vs gemm_blocking(), the tensor.kernel.isa gauge, and the
// per-ISA SGEMM contracts — scalar-vs-SIMD agreement within the
// documented float bound, and bitwise determinism across worker counts
// within each fixed ISA. (Bitwise INTEGER equality across ISAs is
// asserted in test_qgemm_property.cpp, next to the exact-int64 battery.)
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"

namespace mupod {
namespace {

std::vector<KernelIsa> available_isas() {
  std::vector<KernelIsa> v;
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx2Fma})
    if (kernel_isa_available(isa)) v.push_back(isa);
  return v;
}

// RAII: every test restores the startup ISA no matter how it exits.
struct IsaGuard {
  KernelIsa saved = kernel_isa();
  ~IsaGuard() { set_kernel_isa(saved); }
};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

TEST(KernelDispatch, NamesAndParseRoundTrip) {
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx2Fma}) {
    KernelIsa parsed;
    ASSERT_TRUE(parse_kernel_isa(kernel_isa_name(isa), &parsed)) << kernel_isa_name(isa);
    EXPECT_EQ(parsed, isa);
  }
  KernelIsa parsed;
  EXPECT_TRUE(parse_kernel_isa("avx2_fma", &parsed));
  EXPECT_EQ(parsed, KernelIsa::kAvx2Fma);
  EXPECT_TRUE(parse_kernel_isa("fma", &parsed));
  EXPECT_EQ(parsed, KernelIsa::kAvx2Fma);
  EXPECT_FALSE(parse_kernel_isa("avx512", &parsed));
  EXPECT_FALSE(parse_kernel_isa("", &parsed));
  EXPECT_FALSE(parse_kernel_isa(nullptr, &parsed));
}

TEST(KernelDispatch, DetectedAndActiveIsasAreRunnable) {
  EXPECT_TRUE(kernel_isa_available(KernelIsa::kScalar));  // on every target
  EXPECT_TRUE(kernel_isa_available(detected_kernel_isa()));
  EXPECT_TRUE(kernel_isa_available(kernel_isa()));
}

TEST(KernelDispatch, ForcingAnIsaClampsToAvailable) {
  IsaGuard guard;
  for (KernelIsa want : {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx2Fma}) {
    set_kernel_isa(want);
    if (kernel_isa_available(want))
      EXPECT_EQ(kernel_isa(), want);
    else
      EXPECT_EQ(kernel_isa(), detected_kernel_isa());
  }
}

TEST(KernelDispatch, RegistryGeometryDrivesBlocking) {
  IsaGuard guard;
  for (KernelIsa isa : available_isas()) {
    set_kernel_isa(isa);
    const KernelRegistry& reg = kernel_registry();
    EXPECT_EQ(reg.isa, isa);
    ASSERT_NE(reg.sgemm_micro, nullptr);
    EXPECT_GE(reg.mr, 1);
    EXPECT_LE(reg.mr, kMaxMr);
    EXPECT_GE(reg.nr, 1);
    EXPECT_LE(reg.nr, kMaxNr);
    const GemmBlocking bl = gemm_blocking();
    EXPECT_EQ(bl.mr, reg.mr);
    EXPECT_EQ(bl.nr, reg.nr);
    EXPECT_EQ(bl.mc, 24 * reg.mr);
    EXPECT_EQ(bl.nc, 64 * reg.nr);
    if (isa == KernelIsa::kScalar) {
      // The generic qgemm templates ARE the scalar integer path.
      EXPECT_EQ(reg.qmicro8, nullptr);
      EXPECT_EQ(reg.qdot8, nullptr);
      EXPECT_EQ(reg.quantize8, nullptr);
    } else {
      EXPECT_NE(reg.qmicro8, nullptr);
      EXPECT_NE(reg.qmicro8_maddubs, nullptr);
      EXPECT_NE(reg.qmicro16, nullptr);
      EXPECT_NE(reg.qdot8, nullptr);
      EXPECT_NE(reg.qdot16, nullptr);
      EXPECT_NE(reg.quantize8, nullptr);
      EXPECT_NE(reg.quantize16, nullptr);
    }
  }
}

TEST(KernelDispatch, IsaGaugeMirrorsActiveIsa) {
  IsaGuard guard;
  metrics().reset();
  set_metrics_enabled(true);
  for (KernelIsa isa : available_isas()) {
    set_kernel_isa(isa);
    const MetricsSnapshot snap = metrics().snapshot();
    std::int64_t gauge = -1;
    for (const auto& g : snap.gauges)
      if (g.name == "tensor.kernel.isa") gauge = g.value;
    EXPECT_EQ(gauge, static_cast<std::int64_t>(isa)) << kernel_isa_name(isa);
  }
  set_metrics_enabled(false);
}

// ---------------------------------------------------------------------------
// Per-ISA SGEMM agreement. The ISAs accumulate in different orders /
// with FMA contraction, so this is a tolerance check, not equality: each
// kernel's per-element error vs the exact (double) sum is bounded by
// ~eps * sqrt(k) * |row|·|col| for random +-1-scale data, so two kernels
// differ by at most twice the reference-test bound. Documented in
// docs/method.md §16.
TEST(KernelDispatch, SgemmAgreesAcrossIsasWithinBound) {
  const std::vector<KernelIsa> isas = available_isas();
  struct Case {
    std::int64_t m, n, k;
    float beta;
    bool trans_b;
  };
  const std::vector<Case> cases = {
      {1, 1, 9, 0.0f, false},   {257, 1, 33, 1.0f, false}, {7, 23, 65, 0.5f, true},
      {67, 45, 210, 0.0f, false}, {130, 70, 300, 0.5f, true},
  };
  IsaGuard guard;
  for (const Case& p : cases) {
    const std::int64_t lda = p.k, ldb = p.trans_b ? p.k : p.n, ldc = p.n;
    const std::vector<float> a = random_vec(static_cast<std::size_t>(p.m * p.k), 11);
    const std::vector<float> b = random_vec(static_cast<std::size_t>(p.k * p.n), 12);
    const std::vector<float> c0 = random_vec(static_cast<std::size_t>(p.m * p.n), 13);

    set_kernel_isa(KernelIsa::kScalar);
    std::vector<float> c_scalar = c0;
    gemm(p.m, p.n, p.k, a.data(), lda, b.data(), ldb, p.beta, c_scalar.data(), ldc, p.trans_b);

    const double tol = 2e-4 * std::max<double>(1.0, std::sqrt(static_cast<double>(p.k)));
    for (KernelIsa isa : isas) {
      if (isa == KernelIsa::kScalar) continue;
      set_kernel_isa(isa);
      std::vector<float> c = c0;
      gemm(p.m, p.n, p.k, a.data(), lda, b.data(), ldb, p.beta, c.data(), ldc, p.trans_b);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], c_scalar[i], tol)
            << kernel_isa_name(isa) << " " << p.m << "x" << p.n << "x" << p.k << " element "
            << i;
    }
  }
}

// Within a fixed ISA the float GEMM stays bitwise independent of the
// worker count (one task per output tile per KC step, fixed k order).
TEST(KernelDispatch, SgemmBitIdenticalAcrossWorkersPerIsa) {
  const std::int64_t m = 61, n = 83, k = 300;  // ragged, above the MAC cutoff
  const std::vector<float> a = random_vec(static_cast<std::size_t>(m * k), 21);
  const std::vector<float> b = random_vec(static_cast<std::size_t>(k * n), 22);
  IsaGuard guard;
  for (KernelIsa isa : available_isas()) {
    set_kernel_isa(isa);
    std::vector<std::vector<float>> results;
    for (const int workers : {1, 2, 4}) {
      set_parallel_worker_count(workers);
      std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
      gemm(m, n, k, a.data(), k, b.data(), n, 0.0f, c.data(), n);
      results.push_back(std::move(c));
    }
    set_parallel_worker_count(0);
    for (std::size_t w = 1; w < results.size(); ++w)
      ASSERT_EQ(0, std::memcmp(results[0].data(), results[w].data(),
                               results[0].size() * sizeof(float)))
          << kernel_isa_name(isa) << " worker config " << w;
  }
}

}  // namespace
}  // namespace mupod
