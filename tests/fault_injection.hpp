// Fault-injection harness for the robustness tests: a delegating layer
// wrapper that poisons its output (NaN / Inf / huge saturated values) on a
// configurable call schedule, plus a builder for a small CNN with the
// fault planted mid-network. The pipeline must survive these faults with
// diagnostics and a conservative allocation — never a crash or a
// confident-but-garbage result.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "data/synthetic.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "zoo/zoo.hpp"

namespace mupod::faulttest {

enum class FaultKind {
  kNaN,       // quiet NaNs
  kInf,       // +infinity
  kSaturate,  // finite but absurdly large (~1e6) — degrades fits, not isfinite
};

// Which forward() calls of the wrapped layer emit the fault. Calls are
// counted per FaultyLayer instance, starting at 0.
struct FaultSchedule {
  FaultKind kind = FaultKind::kNaN;
  int first_call = 0;                                 // first faulty call
  int period = 1;                                     // every Nth call after first
  int last_call = std::numeric_limits<int>::max();    // inclusive
  double fraction = 0.25;                             // fraction of elements poisoned
};

// Wraps any Layer and corrupts its output on schedule. The mutable call
// counter mirrors how a real intermittent hardware fault presents: the
// same layer works on some forward passes and emits garbage on others.
class FaultyLayer final : public Layer {
 public:
  FaultyLayer(std::unique_ptr<Layer> inner, FaultSchedule schedule)
      : inner_(std::move(inner)), schedule_(schedule) {}

  LayerKind kind() const override { return inner_->kind(); }
  Shape output_shape(std::span<const Shape> in) const override {
    return inner_->output_shape(in);
  }
  bool analyzable() const override { return inner_->analyzable(); }
  LayerCost cost(std::span<const Shape> in) const override { return inner_->cost(in); }
  const Tensor* weights() const override { return inner_->weights(); }
  Tensor* mutable_weights() override { return inner_->mutable_weights(); }
  const Tensor* bias() const override { return inner_->bias(); }
  Tensor* mutable_bias() override { return inner_->mutable_bias(); }

  void forward(std::span<const Tensor* const> in, Tensor& out) const override {
    inner_->forward(in, out);
    if (!armed_) return;
    const int call = calls_++;
    if (call < schedule_.first_call || call > schedule_.last_call) return;
    if (schedule_.period > 1 && (call - schedule_.first_call) % schedule_.period != 0) return;
    poison(out);
  }

  int calls() const { return calls_; }
  void reset_calls() { calls_ = 0; }
  // Disarmed, the wrapper is a transparent pass-through and calls are not
  // counted — used so weight calibration sees the healthy network.
  void arm(bool on) { armed_ = on; }

 private:
  void poison(Tensor& out) const {
    auto data = out.span();
    if (data.empty()) return;
    const auto n = static_cast<std::size_t>(
        std::clamp(schedule_.fraction, 0.0, 1.0) * static_cast<double>(data.size()));
    const std::size_t stride = n > 0 ? std::max<std::size_t>(data.size() / n, 1) : data.size();
    float v = 0.0f;
    switch (schedule_.kind) {
      case FaultKind::kNaN: v = std::numeric_limits<float>::quiet_NaN(); break;
      case FaultKind::kInf: v = std::numeric_limits<float>::infinity(); break;
      case FaultKind::kSaturate: v = 1e6f; break;
    }
    for (std::size_t i = 0; i < data.size(); i += stride) data[i] = v;
  }

  std::unique_ptr<Layer> inner_;
  FaultSchedule schedule_;
  mutable int calls_ = 0;
  bool armed_ = true;
};

struct FaultyNet {
  Network net;
  std::vector<int> analyzed;     // conv1, conv2, fc — the allocated layers
  int faulty_node = -1;          // node id of the FaultyLayer (the relu)
  FaultyLayer* fault = nullptr;
  int channels = 3, height = 16, width = 16, num_classes = 10;
};

// input 3x16x16 -> conv1 -> [FaultyLayer around ReLU] -> pool -> conv2
// -> relu -> gap -> fc(10). He-initialized and calibrated like the zoo
// nets so activations have sane scales when the fault is dormant.
inline FaultyNet build_faulty_net(const FaultSchedule& schedule,
                                  const SyntheticImageDataset& dataset) {
  FaultyNet f;
  f.net = Network("faulty-net");
  const int in = f.net.add_input("data", f.channels, f.height, f.width);

  Conv2DLayer::Config c1;
  c1.in_channels = 3;
  c1.out_channels = 8;
  c1.kernel_h = c1.kernel_w = 3;
  c1.pad = 1;
  const int conv1 = f.net.add("conv1", std::make_unique<Conv2DLayer>(c1), std::vector<int>{in});

  auto faulty = std::make_unique<FaultyLayer>(std::make_unique<ReLULayer>(), schedule);
  f.fault = faulty.get();
  f.faulty_node = f.net.add("relu1(faulty)", std::move(faulty), std::vector<int>{conv1});

  PoolLayer::Config pc;
  pc.mode = PoolLayer::Mode::kMax;
  const int pool = f.net.add("pool1", std::make_unique<PoolLayer>(pc), std::vector<int>{f.faulty_node});

  Conv2DLayer::Config c2;
  c2.in_channels = 8;
  c2.out_channels = 12;
  c2.kernel_h = c2.kernel_w = 3;
  c2.pad = 1;
  const int conv2 = f.net.add("conv2", std::make_unique<Conv2DLayer>(c2), std::vector<int>{pool});
  const int relu2 = f.net.add("relu2", std::make_unique<ReLULayer>(), std::vector<int>{conv2});

  PoolLayer::Config gc;
  gc.mode = PoolLayer::Mode::kAvg;
  gc.global = true;
  const int gap = f.net.add("gap", std::make_unique<PoolLayer>(gc), std::vector<int>{relu2});
  const int fc =
      f.net.add("fc", std::make_unique<InnerProductLayer>(12, f.num_classes), std::vector<int>{gap});
  (void)fc;
  f.net.finalize();
  f.analyzed = f.net.analyzable_nodes();

  init_weights_he(f.net, 4242);
  // Calibrate with the fault disarmed so scales reflect the healthy net;
  // arm it afterwards with the call counter at zero.
  f.fault->arm(false);
  calibrate_activations(f.net, dataset.make_batch(0, 16));
  center_output_logits(f.net, dataset.make_batch(0, 16));
  f.fault->reset_calls();
  f.fault->arm(true);
  return f;
}

inline SyntheticImageDataset make_faulty_dataset() {
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.channels = 3;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 7;
  return SyntheticImageDataset(dc);
}

}  // namespace mupod::faulttest
