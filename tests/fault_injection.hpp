// Test-side remnants of the fault-injection harness. The reusable
// machinery (FaultKind / FaultSchedule / FaultyLayer / FaultInjector)
// was promoted to src/core/fault.hpp so the cluster layer can inject the
// same faults at node seams; what stays here is the small CNN builder
// with a fault planted mid-network, which depends on the zoo/data helpers
// and is only meaningful to tests. The pipeline must survive these faults
// with diagnostics and a conservative allocation — never a crash or a
// confident-but-garbage result.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "data/synthetic.hpp"
#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "zoo/zoo.hpp"

namespace mupod::faulttest {

using mupod::FaultKind;
using mupod::FaultSchedule;
using mupod::FaultyLayer;

struct FaultyNet {
  Network net;
  std::vector<int> analyzed;     // conv1, conv2, fc — the allocated layers
  int faulty_node = -1;          // node id of the FaultyLayer (the relu)
  FaultyLayer* fault = nullptr;
  int channels = 3, height = 16, width = 16, num_classes = 10;
};

// input 3x16x16 -> conv1 -> [FaultyLayer around ReLU] -> pool -> conv2
// -> relu -> gap -> fc(10). He-initialized and calibrated like the zoo
// nets so activations have sane scales when the fault is dormant.
inline FaultyNet build_faulty_net(const FaultSchedule& schedule,
                                  const SyntheticImageDataset& dataset) {
  FaultyNet f;
  f.net = Network("faulty-net");
  const int in = f.net.add_input("data", f.channels, f.height, f.width);

  Conv2DLayer::Config c1;
  c1.in_channels = 3;
  c1.out_channels = 8;
  c1.kernel_h = c1.kernel_w = 3;
  c1.pad = 1;
  const int conv1 = f.net.add("conv1", std::make_unique<Conv2DLayer>(c1), std::vector<int>{in});

  auto faulty = std::make_unique<FaultyLayer>(std::make_unique<ReLULayer>(), schedule);
  f.fault = faulty.get();
  f.faulty_node = f.net.add("relu1(faulty)", std::move(faulty), std::vector<int>{conv1});

  PoolLayer::Config pc;
  pc.mode = PoolLayer::Mode::kMax;
  const int pool = f.net.add("pool1", std::make_unique<PoolLayer>(pc), std::vector<int>{f.faulty_node});

  Conv2DLayer::Config c2;
  c2.in_channels = 8;
  c2.out_channels = 12;
  c2.kernel_h = c2.kernel_w = 3;
  c2.pad = 1;
  const int conv2 = f.net.add("conv2", std::make_unique<Conv2DLayer>(c2), std::vector<int>{pool});
  const int relu2 = f.net.add("relu2", std::make_unique<ReLULayer>(), std::vector<int>{conv2});

  PoolLayer::Config gc;
  gc.mode = PoolLayer::Mode::kAvg;
  gc.global = true;
  const int gap = f.net.add("gap", std::make_unique<PoolLayer>(gc), std::vector<int>{relu2});
  const int fc =
      f.net.add("fc", std::make_unique<InnerProductLayer>(12, f.num_classes), std::vector<int>{gap});
  (void)fc;
  f.net.finalize();
  f.analyzed = f.net.analyzable_nodes();

  init_weights_he(f.net, 4242);
  // Calibrate with the fault disarmed so scales reflect the healthy net;
  // arm it afterwards with the call counter at zero.
  f.fault->arm(false);
  calibrate_activations(f.net, dataset.make_batch(0, 16));
  center_output_logits(f.net, dataset.make_batch(0, 16));
  f.fault->reset_calls();
  f.fault->arm(true);
  return f;
}

inline SyntheticImageDataset make_faulty_dataset() {
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.channels = 3;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 7;
  return SyntheticImageDataset(dc);
}

}  // namespace mupod::faulttest
