#include "tensor/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mupod {
namespace {

TEST(Parallel, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::int64_t) { count++; });
  parallel_for(5, 3, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 0);
}

TEST(Parallel, ChunkedPartitionsDisjoint) {
  std::vector<std::atomic<int>> hits(512);
  parallel_for_chunked(0, 512, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, NestedCallsFallBackToSerial) {
  std::atomic<long> total{0};
  parallel_for_chunked(0, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      // Nested region must still execute correctly (serially).
      parallel_for(0, 10, [&](std::int64_t) { total++; });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(Parallel, SumMatchesSerial) {
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for_chunked(0, static_cast<std::int64_t>(xs.size()), [&](std::int64_t b, std::int64_t e) {
    long long local = 0;
    for (std::int64_t i = b; i < e; ++i) local += static_cast<long long>(xs[static_cast<std::size_t>(i)]);
    sum += local;
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(Parallel, WorkerCountPositive) {
  EXPECT_GE(parallel_worker_count(), 1);
}

TEST(Parallel, ParseWorkerOverride) {
  // The MUPOD_THREADS parser. The pool reads the environment only at
  // startup, so the unit under test here is the parsing, not the pool.
  EXPECT_EQ(parse_worker_override(nullptr), 0);
  EXPECT_EQ(parse_worker_override(""), 0);
  EXPECT_EQ(parse_worker_override("4"), 4);
  EXPECT_EQ(parse_worker_override("1"), 1);
  EXPECT_EQ(parse_worker_override("  8  "), 8);
  // Invalid or non-positive values mean "no override", never a crash.
  EXPECT_EQ(parse_worker_override("0"), 0);
  EXPECT_EQ(parse_worker_override("-3"), 0);
  EXPECT_EQ(parse_worker_override("lots"), 0);
  EXPECT_EQ(parse_worker_override("4x"), 0);
  EXPECT_EQ(parse_worker_override("999999999999"), 0);  // absurd -> ignored
}

TEST(Parallel, RepeatedInvocationsStable) {
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<int> count{0};
    parallel_for(0, 64, [&](std::int64_t) { count++; });
    ASSERT_EQ(count.load(), 64);
  }
}

}  // namespace
}  // namespace mupod
