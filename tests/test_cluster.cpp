// Sharded plan-serving cluster battery (src/cluster).
//
// Three layers of assertions, all sanitizer-clean (this file is in the
// `sanitize` ctest label, so the TSan lane exercises the controller /
// worker handoff, the hedge race, and the breaker accounting):
//
//  1. CircuitBreaker state machine in isolation, driven by a FAKE CLOCK
//     (explicit microsecond timestamps, no sleeping): closed -> open on
//     the failure threshold, half-open single-probe admission, reopen on
//     probe failure, close on probe success.
//  2. FaultInjector determinism: counter windows and seeded-probability
//     schedules are pre-committed coin flips, identical across injectors.
//  3. The robustness contract end to end: under node kills, injected
//     stragglers, and poisoned (bit-flipped) cache entries, every query
//     either succeeds with a plan BYTE-IDENTICAL to a single-process
//     PlanService run or returns an explicit diagnosed failure — never a
//     crash, never a silently wrong answer.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// --- circuit breaker (fake clock) ------------------------------------------

BreakerConfig fast_breaker() {
  BreakerConfig b;
  b.failure_threshold = 3;
  b.cooldown_us = 1000;
  b.probe_successes = 1;
  return b;
}

TEST(CircuitBreaker, TripsOpenAfterConsecutiveFailures) {
  CircuitBreaker b(fast_breaker());
  EXPECT_EQ(b.admit(0), BreakerDecision::kAdmit);
  b.record_failure(1);
  b.record_failure(2);
  EXPECT_EQ(b.state(3), BreakerState::kClosed);
  // A success resets the consecutive-failure streak.
  b.record_success(3);
  b.record_failure(4);
  b.record_failure(5);
  EXPECT_EQ(b.state(6), BreakerState::kClosed);
  b.record_failure(6);
  EXPECT_EQ(b.state(7), BreakerState::kOpen);
  EXPECT_EQ(b.admit(7), BreakerDecision::kReject);
  const BreakerCounters c = b.counters();
  EXPECT_EQ(c.opened, 1);
  EXPECT_EQ(c.rejected, 1);
}

TEST(CircuitBreaker, CooldownAdmitsExactlyOneProbe) {
  CircuitBreaker b(fast_breaker());
  for (int i = 0; i < 3; ++i) b.record_failure(i);
  EXPECT_EQ(b.admit(500), BreakerDecision::kReject);
  // Cooldown elapsed (2 + 1000): the next caller IS the probe...
  EXPECT_EQ(b.state(1500), BreakerState::kHalfOpen);
  EXPECT_EQ(b.admit(1500), BreakerDecision::kProbe);
  // ...and while it is in flight everyone else fast-fails.
  EXPECT_EQ(b.admit(1501), BreakerDecision::kReject);
  EXPECT_EQ(b.admit(1502), BreakerDecision::kReject);
  b.record_success(1600, /*probe=*/true);
  EXPECT_EQ(b.state(1601), BreakerState::kClosed);
  EXPECT_EQ(b.admit(1601), BreakerDecision::kAdmit);
  const BreakerCounters c = b.counters();
  EXPECT_EQ(c.opened, 1);
  EXPECT_EQ(c.probes, 1);
  EXPECT_EQ(c.closed, 1);
  EXPECT_EQ(c.rejected, 3);
}

TEST(CircuitBreaker, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker b(fast_breaker());
  for (int i = 0; i < 3; ++i) b.record_failure(i);
  EXPECT_EQ(b.admit(1500), BreakerDecision::kProbe);
  b.record_failure(1600, /*probe=*/true);
  EXPECT_EQ(b.state(1601), BreakerState::kOpen);
  EXPECT_EQ(b.admit(2000), BreakerDecision::kReject);  // new cooldown from 1600
  EXPECT_EQ(b.admit(2700), BreakerDecision::kProbe);
  b.record_success(2800, /*probe=*/true);
  EXPECT_EQ(b.state(2801), BreakerState::kClosed);
  const BreakerCounters c = b.counters();
  EXPECT_EQ(c.reopened, 1);
  EXPECT_EQ(c.closed, 1);
  EXPECT_EQ(c.probes, 2);
}

TEST(CircuitBreaker, ClosingCanRequireMultipleProbeSuccesses) {
  BreakerConfig cfg = fast_breaker();
  cfg.failure_threshold = 1;
  cfg.probe_successes = 2;
  CircuitBreaker b(cfg);
  b.record_failure(0);
  EXPECT_EQ(b.admit(1000), BreakerDecision::kProbe);
  b.record_success(1001, /*probe=*/true);
  EXPECT_EQ(b.state(1002), BreakerState::kHalfOpen);  // one success is not enough
  EXPECT_EQ(b.admit(1002), BreakerDecision::kProbe);
  b.record_success(1003, /*probe=*/true);
  EXPECT_EQ(b.state(1004), BreakerState::kClosed);
}

TEST(CircuitBreaker, TransitionObserverSeesEveryEdge) {
  CircuitBreaker b(fast_breaker());
  std::vector<std::pair<BreakerState, BreakerState>> edges;
  b.on_transition([&](BreakerState from, BreakerState to, std::int64_t) {
    edges.emplace_back(from, to);
  });
  for (int i = 0; i < 3; ++i) b.record_failure(i);      // closed -> open
  EXPECT_EQ(b.admit(1500), BreakerDecision::kProbe);    // open -> half-open
  b.record_failure(1600, /*probe=*/true);               // half-open -> open
  EXPECT_EQ(b.admit(2700), BreakerDecision::kProbe);    // open -> half-open
  b.record_success(2800, /*probe=*/true);               // half-open -> closed
  const std::vector<std::pair<BreakerState, BreakerState>> want = {
      {BreakerState::kClosed, BreakerState::kOpen},
      {BreakerState::kOpen, BreakerState::kHalfOpen},
      {BreakerState::kHalfOpen, BreakerState::kOpen},
      {BreakerState::kOpen, BreakerState::kHalfOpen},
      {BreakerState::kHalfOpen, BreakerState::kClosed},
  };
  EXPECT_EQ(edges, want);
}

// --- fault injector ---------------------------------------------------------

TEST(FaultInjector, CounterWindowFiresDeterministically) {
  FaultInjector inj;
  FaultSchedule s;
  s.kind = FaultKind::kDelay;
  s.first_call = 2;
  s.period = 3;
  s.last_call = 8;
  s.delay_us = 123;
  inj.arm("p", s);
  std::vector<int> fired_at;
  for (int i = 0; i < 12; ++i) {
    if (auto a = inj.check("p")) {
      fired_at.push_back(i);
      EXPECT_EQ(a->kind, FaultKind::kDelay);
      EXPECT_EQ(a->delay_us, 123);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<int>{2, 5, 8}));
  EXPECT_EQ(inj.calls("p"), 12);
  EXPECT_EQ(inj.fired("p"), 3);
  inj.disarm("p");
  EXPECT_FALSE(inj.check("p").has_value());
}

TEST(FaultInjector, SeededProbabilityIsAPreCommittedCoinSequence) {
  FaultSchedule s;
  s.kind = FaultKind::kDrop;
  s.probability = 0.3;
  s.seed = 42;
  FaultInjector a, b;
  a.arm("p", s);
  b.arm("q", s);
  int fired = 0;
  for (int i = 0; i < 64; ++i) {
    const bool fa = a.check("p").has_value();
    const bool fb = b.check("q").has_value();
    EXPECT_EQ(fa, fb) << "call " << i;
    EXPECT_EQ(fa, fault_coin(42, i, 0.3)) << "call " << i;
    fired += fa ? 1 : 0;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

// --- sharding ---------------------------------------------------------------

TEST(ClusterSharding, ReplicaSetsAreDeterministicDistinctAndCoverTheRing) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.replicas = 3;
  cfg.node_threads = 1;
  ClusterController cluster(cfg, PlanServiceConfig{});
  std::set<int> seen;
  for (std::uint64_t h = 1; h <= 64; ++h) {
    const std::uint64_t hash = h * 0x9e3779b97f4a7c15ull;
    const std::vector<int> a = cluster.replicas_for_hash(hash);
    const std::vector<int> b = cluster.replicas_for_hash(hash);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(std::set<int>(a.begin(), a.end()).size(), 3u);  // distinct nodes
    for (int id : a) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, 4);
      seen.insert(id);
    }
  }
  EXPECT_EQ(seen.size(), 4u);  // virtual nodes spread keys over every node
}

// --- cluster integration ----------------------------------------------------

PipelineConfig cluster_pipeline_config() {
  PipelineConfig cfg;
  cfg.harness.profile_images = 8;
  cfg.harness.eval_images = 64;
  cfg.profiler.points = 5;
  return cfg;
}

PlanServiceConfig cluster_service_config() {
  PlanServiceConfig scfg;
  scfg.pipeline = cluster_pipeline_config();
  return scfg;
}

struct ClusterFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
};

const ClusterFixture& fixture() {
  static ClusterFixture* f = [] {
    auto* fx = new ClusterFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 505;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    fx->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    fx->dataset = std::make_unique<SyntheticImageDataset>(dc);
    return fx;
  }();
  return *f;
}

// Patient controller configuration: sanitizer builds make cold allocation
// tails slow, so nothing may time out or hedge spuriously. Chaos tests
// tighten the knobs AFTER warming every replica.
ClusterConfig quiet_cluster_config() {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replicas = 2;
  cfg.node_threads = 2;
  cfg.attempt_timeout_us = 60'000'000;
  cfg.hedge_delay_us = 30'000'000;
  cfg.deadline_us = 240'000'000;
  return cfg;
}

ClusterConfig chaos_cluster_config() {
  ClusterConfig cfg = quiet_cluster_config();
  cfg.attempt_timeout_us = 400'000;
  cfg.hedge_delay_us = 30'000;
  cfg.max_attempts = 6;
  cfg.deadline_us = 60'000'000;
  cfg.breaker.failure_threshold = 1;  // a killed node gets few dispatches
  cfg.breaker.cooldown_us = 150'000;
  return cfg;
}

PlanQuery query_for(const ClusterFixture& f, double target, bool energy) {
  PlanQuery q;
  q.accuracy_target = target;
  q.objective = energy ? objective_mac_energy(f.model.net, f.model.analyzed)
                       : objective_input_bits(f.model.net, f.model.analyzed);
  return q;
}

void expect_plan_identical(const PlanResult& a, const PlanResult& b) {
  // Exact equality on purpose: the convergence contract is byte-identical
  // plans, not merely close ones.
  EXPECT_EQ(a.alloc.bits, b.alloc.bits);
  EXPECT_EQ(a.alloc.xi, b.alloc.xi);
  EXPECT_EQ(a.alloc.deltas, b.alloc.deltas);
  EXPECT_EQ(a.alloc.formats, b.alloc.formats);
  EXPECT_EQ(a.sigma_used, b.sigma_used);
  EXPECT_EQ(a.objective_cost, b.objective_cost);
  EXPECT_EQ(a.effective_bits, b.effective_bits);
  EXPECT_EQ(plan_result_checksum(a), plan_result_checksum(b));
}

// Warms every replica's OWN PlanService for the given queries (bypassing
// the router), so chaos phases with tight timeouts only ever exercise the
// cheap memoized path on healthy nodes.
void warm_replicas(ClusterController& cluster, const PlanKey& key,
                   const std::vector<PlanQuery>& queries) {
  cluster.replicate_profile(key);
  for (int id : cluster.replicas_for_hash(key.net_hash))
    for (const PlanQuery& q : queries) cluster.node(id).service().plan(key, q);
}

TEST(Cluster, ServesByteIdenticalPlansToSingleServiceRun) {
  const ClusterFixture& f = fixture();
  // Baseline: one single-process PlanService, same configuration.
  PlanService baseline(cluster_service_config());
  const PlanKey bkey = baseline.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const std::vector<PlanQuery> queries = {query_for(f, 0.02, false), query_for(f, 0.05, true)};
  std::vector<PlanResult> expected;
  for (const PlanQuery& q : queries) expected.push_back(baseline.plan(bkey, q));

  ClusterController cluster(quiet_cluster_config(), cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  EXPECT_EQ(key, bkey);  // content addressing is process-independent
  EXPECT_GE(cluster.replicate_profile(key), 1);

  for (int round = 0; round < 2; ++round)
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const ClusterQueryResult r = cluster.plan(key, queries[i]);
      ASSERT_TRUE(r.ok) << r.error;
      expect_plan_identical(r.plan, expected[i]);
    }

  const ClusterStats s = cluster.stats();
  EXPECT_EQ(s.queries_ok, 4);
  EXPECT_EQ(s.queries_failed, 0);
  std::int64_t hits = 0, misses = 0, accepted = 0;
  for (const NodeStats& n : s.nodes) {
    hits += n.cache_hits;
    misses += n.cache_misses;
    accepted += n.bundles_accepted;
  }
  // Which replica serves each round is load/timing dependent, but every
  // response came off the verified node-local cache path exactly once.
  EXPECT_EQ(hits + misses, 4);
  EXPECT_GE(accepted, 1);  // replication seeded the non-primary replica
}

// Dispatches directly to one node (bypassing the router) and returns its
// response — the deterministic way to pin which node's cache serves.
ClusterResponse submit_and_wait(ClusterController& cluster, int node, const PlanKey& key,
                                const PlanQuery& q) {
  auto state = std::make_shared<ClusterQueryState>();
  auto d = std::make_shared<ClusterDispatch>();
  d->q = state;
  d->key = key;
  d->query = q;
  d->node = node;
  cluster.node(node).submit(d);
  state->wait_until_us(cluster_now_us() + 120'000'000);
  std::lock_guard<std::mutex> lk(state->mu);
  EXPECT_TRUE(state->done);
  return state->resp;
}

TEST(Cluster, PoisonedCacheEntriesAreDetectedAndRecomputedIdentically) {
  const ClusterFixture& f = fixture();
  ClusterController cluster(quiet_cluster_config(), cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const PlanQuery q = query_for(f, 0.02, false);

  const ClusterQueryResult r0 = cluster.plan(key, q);
  ASSERT_TRUE(r0.ok) << r0.error;
  // Pin one replica and make sure its node-local cache holds the plan.
  const int target = cluster.replicas_for_hash(key.net_hash).front();
  const ClusterResponse warm = submit_and_wait(cluster, target, key, q);
  ASSERT_TRUE(warm.ok) << warm.error;
  expect_plan_identical(warm.plan, r0.plan);

  // Flip a bit in that node's cached entry behind its back; the next read
  // must catch the checksum mismatch and recompute identically.
  ASSERT_TRUE(cluster.poison_cache(target, key, q));
  const ClusterResponse r1 = submit_and_wait(cluster, target, key, q);
  ASSERT_TRUE(r1.ok) << r1.error;
  expect_plan_identical(r1.plan, r0.plan);

  // Same corruption via the fault injector at the node seam: the data
  // fault poisons the (re-)cached entry, the same dispatch detects it.
  FaultSchedule s;
  s.kind = FaultKind::kSaturate;
  cluster.faults().arm(cluster.node(target).fault_point(), s);
  const ClusterResponse r2 = submit_and_wait(cluster, target, key, q);
  cluster.faults().disarm(cluster.node(target).fault_point());
  ASSERT_TRUE(r2.ok) << r2.error;
  expect_plan_identical(r2.plan, r0.plan);

  const NodeStats n = cluster.node(target).stats();
  EXPECT_EQ(n.poison_injected, 2);
  EXPECT_EQ(n.poison_rejected, 2);  // every flip was caught, none served
  EXPECT_GE(cluster.diagnostics().count(PipelineStage::kServe, DiagSeverity::kWarning), 2);
}

TEST(Cluster, StragglerIsHedgedAndFirstResponseWins) {
  const ClusterFixture& f = fixture();
  ClusterConfig cfg = quiet_cluster_config();
  cfg.hedge_delay_us = 25'000;  // hedge quickly; everything is pre-warmed
  ClusterController cluster(cfg, cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const PlanQuery q = query_for(f, 0.02, false);
  warm_replicas(cluster, key, {q});

  const ClusterQueryResult r0 = cluster.plan(key, q);
  ASSERT_TRUE(r0.ok) << r0.error;

  // Stall the node that just served (the idle-tie primary) far past the
  // hedge threshold; the hedge to the other replica must win.
  FaultSchedule s;
  s.kind = FaultKind::kDelay;
  s.delay_us = 3'000'000;
  cluster.faults().arm(cluster.node(r0.node).fault_point(), s);
  const ClusterQueryResult r1 = cluster.plan(key, q);
  cluster.faults().disarm(cluster.node(r0.node).fault_point());

  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_GE(r1.hedges, 1);
  EXPECT_TRUE(r1.hedge_won);
  EXPECT_NE(r1.node, r0.node);
  EXPECT_LT(r1.wall_ms, 2900.0);  // did not wait out the straggler
  expect_plan_identical(r1.plan, r0.plan);
  EXPECT_GE(cluster.stats().hedge_wins, 1);
}

TEST(Cluster, KilledNodeFailsOverTripsBreakerAndRecovers) {
  const ClusterFixture& f = fixture();
  ClusterController cluster(chaos_cluster_config(), cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const PlanQuery q = query_for(f, 0.02, false);
  warm_replicas(cluster, key, {q});
  const ClusterQueryResult r0 = cluster.plan(key, q);
  ASSERT_TRUE(r0.ok) << r0.error;
  const int victim = r0.node;

  cluster.kill_node(victim);
  for (int i = 0; i < 6; ++i) {
    const ClusterQueryResult r = cluster.plan(key, q);
    ASSERT_TRUE(r.ok) << "query " << i << ": " << r.error;
    EXPECT_NE(r.node, victim);  // a killed node can never answer
    expect_plan_identical(r.plan, r0.plan);
  }

  // Let the victim's parked dispatch cross its attempt deadline, then
  // sweep: the timeout becomes a breaker failure and the breaker trips.
  std::this_thread::sleep_for(
      std::chrono::microseconds(cluster.config().attempt_timeout_us + 100'000));
  cluster.sweep_pending();
  EXPECT_NE(cluster.breaker(victim).state(cluster_now_us()), BreakerState::kClosed);
  EXPECT_GE(cluster.breaker(victim).counters().opened, 1);

  // Recovery: revive, wait out the cooldown, and keep querying until the
  // half-open probe succeeds and fully closes the breaker again.
  cluster.revive_node(victim);
  bool closed = false;
  for (int i = 0; i < 200 && !closed; ++i) {
    const ClusterQueryResult r = cluster.plan(key, q);
    ASSERT_TRUE(r.ok) << r.error;
    expect_plan_identical(r.plan, r0.plan);
    closed = cluster.breaker(victim).state(cluster_now_us()) == BreakerState::kClosed &&
             cluster.breaker(victim).counters().closed >= 1;
    if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(closed) << "breaker never re-closed after revive";
  EXPECT_EQ(cluster.stats().queries_failed, 0);  // zero crashed queries throughout
}

TEST(Cluster, SeededChaosKillsEveryFewQueriesAndConvergesByteIdentical) {
  const ClusterFixture& f = fixture();
  ClusterController cluster(chaos_cluster_config(), cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const std::vector<PlanQuery> queries = {query_for(f, 0.02, false), query_for(f, 0.05, true)};
  warm_replicas(cluster, key, queries);
  std::vector<PlanResult> expected;
  for (const PlanQuery& q : queries) {
    const ClusterQueryResult r = cluster.plan(key, q);
    ASSERT_TRUE(r.ok) << r.error;
    expected.push_back(r.plan);
  }

  // Seeded schedule: every 4th query rotates which replica is dead (at
  // most one at a time, so a healthy replica always exists).
  const std::vector<int> reps = cluster.replicas_for_hash(key.net_hash);
  ASSERT_EQ(reps.size(), 2u);
  std::uint64_t rng = 0xc0ffee;
  int victim = -1;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int i = 0; i < 24; ++i) {
    if (i % 4 == 0) {
      if (victim >= 0) cluster.revive_node(victim);
      victim = reps[next() % reps.size()];
      cluster.kill_node(victim);
    }
    const ClusterQueryResult r = cluster.plan(key, queries[i % queries.size()]);
    ASSERT_TRUE(r.ok) << "query " << i << " (victim " << victim << "): " << r.error;
    EXPECT_NE(r.node, victim);
    expect_plan_identical(r.plan, expected[i % expected.size()]);
  }
  if (victim >= 0) cluster.revive_node(victim);

  const ClusterStats s = cluster.stats();
  EXPECT_EQ(s.queries_failed, 0);  // every query succeeded despite the churn
  EXPECT_EQ(s.queries_ok, 2 + 24);
}

TEST(Cluster, ExhaustedDeadlineReturnsExplicitDiagnosedFailure) {
  const ClusterFixture& f = fixture();
  ClusterConfig cfg = chaos_cluster_config();
  cfg.nodes = 2;
  cfg.replicas = 2;
  cfg.attempt_timeout_us = 60'000;
  cfg.hedge_delay_us = 10'000;
  cfg.deadline_us = 400'000;
  cfg.max_attempts = 3;
  ClusterController cluster(cfg, cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  cluster.kill_node(0);
  cluster.kill_node(1);  // nobody left to answer

  const ClusterQueryResult r = cluster.plan(key, query_for(f, 0.02, false));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exhausted its deadline"), std::string::npos) << r.error;
  EXPECT_GE(r.attempts, 1);
  EXPECT_GE(r.timeouts, 1);
  EXPECT_GE(cluster.diagnostics().count(PipelineStage::kServe, DiagSeverity::kError), 1);
  EXPECT_EQ(cluster.stats().queries_failed, 1);
  cluster.revive_node(0);
  cluster.revive_node(1);  // let the destructor drain cleanly
}

TEST(Cluster, UnknownKeyFailsExplicitlyWithoutCrashing) {
  ClusterConfig cfg = quiet_cluster_config();
  cfg.node_threads = 1;
  ClusterController cluster(cfg, cluster_service_config());
  PlanKey bogus;
  bogus.net_hash = 0xdeadbeef;
  bogus.config_digest = 0xfeedface;
  PlanQuery q;
  q.objective.name = "input_bits";
  q.objective.rho = {1, 1, 1};
  const ClusterQueryResult r = cluster.plan(bogus, q);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown key"), std::string::npos) << r.error;
}

TEST(Cluster, CorruptReplicatedBundleIsRejectedIntactOneAccepted) {
  const ClusterFixture& f = fixture();
  ClusterController cluster(quiet_cluster_config(), cluster_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const std::vector<int> reps = cluster.replicas_for_hash(key.net_hash);
  ASSERT_EQ(reps.size(), 2u);
  WorkerNode& primary = cluster.node(reps[0]);
  WorkerNode& secondary = cluster.node(reps[1]);
  primary.service().ensure_profile(key);
  const SealedProfile sealed = seal_profile(primary.service().export_profile(key));

  // Bit-flipped payload: the seal no longer matches.
  SealedProfile corrupt_payload = sealed;
  ASSERT_FALSE(corrupt_payload.bundle.ranges.empty());
  corrupt_payload.bundle.ranges[0] += 1.0;
  EXPECT_FALSE(secondary.seed_profile(key, corrupt_payload));

  // Bit-flipped checksum: same rejection.
  SealedProfile corrupt_seal = sealed;
  corrupt_seal.checksum ^= 1;
  EXPECT_FALSE(secondary.seed_profile(key, corrupt_seal));

  EXPECT_EQ(secondary.stats().bundles_rejected, 2);
  EXPECT_EQ(secondary.stats().bundles_accepted, 0);
  EXPECT_GE(cluster.diagnostics().count(PipelineStage::kServe, DiagSeverity::kError), 2);

  // The intact bundle is accepted, and the seeded replica then serves
  // plans identical to the primary's.
  EXPECT_TRUE(secondary.seed_profile(key, sealed));
  EXPECT_EQ(secondary.stats().bundles_accepted, 1);
  const PlanQuery q = query_for(f, 0.02, false);
  const PlanResult a = primary.service().plan(key, q);
  const PlanResult b = secondary.service().plan(key, q);
  expect_plan_identical(a, b);
}

}  // namespace
}  // namespace mupod
