// Equivalence of the production convolution (direct and im2col+GEMM
// paths) against a straightforward reference implementation, swept over a
// parameter grid that straddles the GEMM-path cutoff.
#include <gtest/gtest.h>

#include <vector>

#include "nn/layers.hpp"
#include "stats/rng.hpp"

namespace mupod {
namespace {

struct ConvCase {
  int in_c, out_c, k, stride, pad, groups, h, w;
};

// O(everything) reference convolution.
Tensor reference_conv(const Conv2DLayer& conv, const Tensor& x) {
  const auto& cfg = conv.config();
  const Shape shapes[1] = {x.shape()};
  Tensor y(conv.output_shape(shapes));
  const int N = x.shape().n(), H = x.shape().h(), W = x.shape().w();
  const int OC = y.shape().c(), OH = y.shape().h(), OW = y.shape().w();
  const int icg = cfg.in_channels / cfg.groups;
  const int ocg = OC / cfg.groups;
  const Tensor& wt = *conv.weights();
  const Tensor* bias = conv.bias();

  for (int n = 0; n < N; ++n)
    for (int oc = 0; oc < OC; ++oc) {
      const int g = oc / ocg;
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) {
          double acc = bias != nullptr ? (*bias)[oc] : 0.0f;
          for (int ic = 0; ic < icg; ++ic)
            for (int kh = 0; kh < cfg.kernel_h; ++kh)
              for (int kw = 0; kw < cfg.kernel_w; ++kw) {
                const int ih = oh * cfg.stride - cfg.pad + kh;
                const int iw = ow * cfg.stride - cfg.pad + kw;
                if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
                const std::int64_t widx =
                    ((static_cast<std::int64_t>(oc) * icg + ic) * cfg.kernel_h + kh) *
                        cfg.kernel_w + kw;
                acc += static_cast<double>(x.at(n, g * icg + ic, ih, iw)) * wt[widx];
              }
          y.at(n, oc, oh, ow) = static_cast<float>(acc);
        }
    }
  return y;
}

class ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalence, MatchesReference) {
  const ConvCase& c = GetParam();
  Conv2DLayer::Config cfg;
  cfg.in_channels = c.in_c;
  cfg.out_channels = c.out_c;
  cfg.kernel_h = cfg.kernel_w = c.k;
  cfg.stride = c.stride;
  cfg.pad = c.pad;
  cfg.groups = c.groups;
  Conv2DLayer conv(cfg);

  Rng rng(c.in_c * 1000 + c.out_c * 100 + c.k * 10 + c.stride);
  for (std::int64_t i = 0; i < conv.mutable_weights()->numel(); ++i)
    (*conv.mutable_weights())[i] = static_cast<float>(rng.gaussian());
  for (std::int64_t i = 0; i < conv.mutable_bias()->numel(); ++i)
    (*conv.mutable_bias())[i] = static_cast<float>(rng.gaussian(0.0, 0.1));

  Tensor x(Shape({2, c.in_c, c.h, c.w}));
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());

  const Shape shapes[1] = {x.shape()};
  Tensor fast(conv.output_shape(shapes));
  const Tensor* ins[1] = {&x};
  conv.forward(ins, fast);
  const Tensor ref = reference_conv(conv, x);

  ASSERT_EQ(fast.shape(), ref.shape());
  EXPECT_LT(max_abs_diff(fast, ref), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvEquivalence,
    ::testing::Values(
        // GEMM path (large k_dim, many output channels).
        ConvCase{8, 16, 3, 1, 1, 1, 12, 12},    //
        ConvCase{6, 12, 5, 1, 2, 1, 16, 16},    //
        ConvCase{8, 16, 3, 2, 1, 1, 15, 15},    // stride with odd extent
        ConvCase{12, 8, 3, 1, 0, 2, 10, 10},    // grouped GEMM
        ConvCase{4, 16, 7, 2, 3, 1, 28, 28},    // AlexNet-ish stem
        // Direct path (depthwise / tiny spatial / 1x1).
        ConvCase{8, 8, 3, 1, 1, 8, 12, 12},     // depthwise
        ConvCase{16, 8, 1, 1, 0, 1, 6, 6},      // 1x1
        ConvCase{8, 2, 3, 1, 1, 2, 8, 8},       // few output channels
        ConvCase{4, 4, 3, 1, 1, 1, 3, 3},       // tiny spatial, kernel == extent
        ConvCase{3, 5, 5, 3, 2, 1, 11, 13},     // non-square, odd stride
        // Edge geometry.
        ConvCase{2, 8, 3, 1, 2, 1, 4, 4},       // pad > kernel/2
        ConvCase{2, 8, 4, 4, 0, 1, 8, 8}),      // stride == kernel
    [](const auto& info) {
      const auto& c = info.param;
      return "ic" + std::to_string(c.in_c) + "oc" + std::to_string(c.out_c) + "k" +
             std::to_string(c.k) + "s" + std::to_string(c.stride) + "p" + std::to_string(c.pad) +
             "g" + std::to_string(c.groups) + "h" + std::to_string(c.h) + "w" +
             std::to_string(c.w);
    });

}  // namespace
}  // namespace mupod
