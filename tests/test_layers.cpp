#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mupod {
namespace {

Tensor run(const Layer& layer, const std::vector<const Tensor*>& in) {
  std::vector<Shape> shapes;
  for (const Tensor* t : in) shapes.push_back(t->shape());
  Tensor out(layer.output_shape(shapes));
  layer.forward(in, out);
  return out;
}

LayerCost cost_of(const Layer& layer, const Shape& in) {
  const Shape shapes[1] = {in};
  return layer.cost(shapes);
}

Shape out_shape_of(const Layer& layer, const Shape& in) {
  const Shape shapes[1] = {in};
  return layer.output_shape(shapes);
}

// ---------------------------------------------------------------------------
// Conv2D

TEST(Conv2D, IdentityKernel) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel_h = cfg.kernel_w = 1;
  Conv2DLayer conv(cfg);
  conv.mutable_weights()->fill(1.0f);

  Tensor x(Shape({1, 1, 3, 3}));
  for (int i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor y = run(conv, {&x});
  EXPECT_EQ(y.shape(), x.shape());
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], static_cast<float>(i));
}

TEST(Conv2D, SumKernelWithPadding) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  Conv2DLayer conv(cfg);
  conv.mutable_weights()->fill(1.0f);

  Tensor x(Shape({1, 1, 3, 3}), 1.0f);
  const Tensor y = run(conv, {&x});
  // Center pixel sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0f);
}

TEST(Conv2D, Stride) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel_h = cfg.kernel_w = 2;
  cfg.stride = 2;
  Conv2DLayer conv(cfg);
  conv.mutable_weights()->fill(0.25f);

  Tensor x(Shape({1, 1, 4, 4}));
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = run(conv, {&x});
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  // Mean of {0,1,4,5} = 2.5
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.5f);
  // Mean of {10,11,14,15} = 12.5
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 12.5f);
}

TEST(Conv2D, Bias) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.kernel_h = cfg.kernel_w = 1;
  Conv2DLayer conv(cfg);
  conv.mutable_weights()->fill(0.0f);
  (*conv.mutable_bias())[0] = 1.5f;
  (*conv.mutable_bias())[1] = -2.0f;

  Tensor x(Shape({1, 1, 2, 2}), 7.0f);
  const Tensor y = run(conv, {&x});
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -2.0f);
}

TEST(Conv2D, MultiChannelAccumulation) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 1;
  cfg.kernel_h = cfg.kernel_w = 1;
  Conv2DLayer conv(cfg);
  // w = [1, 2, 3] over channels.
  for (int c = 0; c < 3; ++c) (*conv.mutable_weights())[c] = static_cast<float>(c + 1);

  Tensor x(Shape({1, 3, 1, 1}));
  x[0] = 10.0f;
  x[1] = 20.0f;
  x[2] = 30.0f;
  const Tensor y = run(conv, {&x});
  EXPECT_FLOAT_EQ(y[0], 10.0f + 40.0f + 90.0f);
}

TEST(Conv2D, GroupedIsBlockDiagonal) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.kernel_h = cfg.kernel_w = 1;
  cfg.groups = 2;
  Conv2DLayer conv(cfg);
  conv.mutable_weights()->fill(1.0f);  // each output sees only its own group

  Tensor x(Shape({1, 2, 1, 1}));
  x[0] = 3.0f;
  x[1] = 5.0f;
  const Tensor y = run(conv, {&x});
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
}

TEST(Conv2D, DepthwiseCost) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;
  cfg.groups = 8;
  Conv2DLayer conv(cfg);
  const Shape in({1, 8, 4, 4});
  const LayerCost c = cost_of(conv, in);
  EXPECT_EQ(c.input_elems, 8 * 4 * 4);
  // 8 output channels * 16 positions * (1 in-channel-per-group * 9 taps).
  EXPECT_EQ(c.macs, 8 * 16 * 9);
}

TEST(Conv2D, CostMatchesFormula) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 10;
  cfg.kernel_h = cfg.kernel_w = 5;
  cfg.stride = 1;
  cfg.pad = 2;
  Conv2DLayer conv(cfg);
  const Shape in({1, 3, 16, 16});
  const LayerCost c = cost_of(conv, in);
  EXPECT_EQ(c.input_elems, 3 * 16 * 16);
  EXPECT_EQ(c.macs, 10LL * 16 * 16 * 3 * 5 * 5);
}

// ---------------------------------------------------------------------------
// InnerProduct

TEST(InnerProduct, MatVec) {
  InnerProductLayer fc(3, 2);
  // W = [[1,0,2],[0,1,0]], b = [0.5, -0.5]
  Tensor& w = *fc.mutable_weights();
  w[0] = 1.0f; w[1] = 0.0f; w[2] = 2.0f;
  w[3] = 0.0f; w[4] = 1.0f; w[5] = 0.0f;
  (*fc.mutable_bias())[0] = 0.5f;
  (*fc.mutable_bias())[1] = -0.5f;

  Tensor x(Shape({1, 3}));
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f;
  const Tensor y = run(fc, {&x});
  EXPECT_FLOAT_EQ(y[0], 1.0f + 6.0f + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 2.0f - 0.5f);
}

TEST(InnerProduct, FlattensRank4Input) {
  InnerProductLayer fc(4, 1);
  fc.mutable_weights()->fill(1.0f);
  Tensor x(Shape({2, 1, 2, 2}), 1.0f);
  const Tensor y = run(fc, {&x});
  EXPECT_EQ(y.shape(), Shape({2, 1}));
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
}

TEST(InnerProduct, Cost) {
  InnerProductLayer fc(128, 10);
  const LayerCost c = cost_of(fc, Shape({1, 128}));
  EXPECT_EQ(c.input_elems, 128);
  EXPECT_EQ(c.macs, 1280);
}

// ---------------------------------------------------------------------------
// ReLU / Softmax / Flatten / Dropout

TEST(ReLU, ClampsNegatives) {
  ReLULayer relu;
  Tensor x(Shape({4}));
  x[0] = -1.0f; x[1] = 0.0f; x[2] = 2.0f; x[3] = -0.5f;
  const Tensor y = run(relu, {&x});
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Softmax, NormalizesRows) {
  SoftmaxLayer sm;
  Tensor x(Shape({2, 3}));
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f;
  x[3] = 1000.0f; x[4] = 1000.0f; x[5] = 1000.0f;  // overflow-safety check
  const Tensor y = run(sm, {&x});
  double s0 = y[0] + y[1] + y[2];
  EXPECT_NEAR(s0, 1.0, 1e-6);
  EXPECT_GT(y[2], y[1]);
  EXPECT_NEAR(y[3], 1.0 / 3.0, 1e-6);
}

TEST(Flatten, CollapsesSpatialDims) {
  FlattenLayer fl;
  Tensor x(Shape({2, 3, 4, 5}));
  const Tensor y = run(fl, {&x});
  EXPECT_EQ(y.shape(), Shape({2, 60}));
}

TEST(Dropout, IdentityAtInference) {
  DropoutLayer d;
  Tensor x(Shape({8}), 3.0f);
  const Tensor y = run(d, {&x});
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y[i], 3.0f);
}

// ---------------------------------------------------------------------------
// Pooling

TEST(MaxPool, PicksWindowMax) {
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kMax;
  cfg.kernel = 2;
  cfg.stride = 2;
  cfg.ceil_mode = false;
  PoolLayer pool(cfg);
  Tensor x(Shape({1, 1, 2, 4}));
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 5.0f; x[3] = 4.0f;
  x[4] = 0.0f; x[5] = -1.0f; x[6] = 6.0f; x[7] = 3.0f;
  const Tensor y = run(pool, {&x});
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(AvgPool, AveragesWindow) {
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kAvg;
  cfg.kernel = 2;
  cfg.stride = 2;
  cfg.ceil_mode = false;
  PoolLayer pool(cfg);
  Tensor x(Shape({1, 1, 2, 2}));
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f; x[3] = 6.0f;
  const Tensor y = run(pool, {&x});
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(Pool, CeilModeAddsPartialWindow) {
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kMax;
  cfg.kernel = 3;
  cfg.stride = 2;
  cfg.ceil_mode = true;
  PoolLayer pool(cfg);
  // Caffe-style: (5 - 3)/2 ceil + 1 = 2.
  EXPECT_EQ(out_shape_of(pool, Shape({1, 1, 5, 5})), Shape({1, 1, 2, 2}));
  cfg.ceil_mode = false;
  PoolLayer floor_pool(cfg);
  EXPECT_EQ(out_shape_of(floor_pool, Shape({1, 1, 5, 5})), Shape({1, 1, 2, 2}));
  // Difference shows at 6: ceil (6-3)/2+1 = 2.5 -> 3, floor -> 2.
  EXPECT_EQ(out_shape_of(pool, Shape({1, 1, 6, 6})), Shape({1, 1, 3, 3}));
  EXPECT_EQ(out_shape_of(floor_pool, Shape({1, 1, 6, 6})), Shape({1, 1, 2, 2}));
}

TEST(GlobalAvgPool, PoolsPlaneToOne) {
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kAvg;
  cfg.global = true;
  PoolLayer pool(cfg);
  Tensor x(Shape({1, 2, 2, 2}));
  for (int i = 0; i < 4; ++i) x[i] = 1.0f;       // channel 0: all 1
  for (int i = 4; i < 8; ++i) x[i] = static_cast<float>(i);  // 4,5,6,7
  const Tensor y = run(pool, {&x});
  EXPECT_EQ(y.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 5.5f);
}

TEST(MaxPool, ErrorPreservation) {
  // Paper Sec. III-C: max pooling passes a sub-sample of the input error,
  // so an input perturbed by +eps everywhere shifts the output by +eps.
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kMax;
  cfg.kernel = 2;
  cfg.stride = 2;
  cfg.ceil_mode = false;
  PoolLayer pool(cfg);
  Tensor x(Shape({1, 1, 4, 4}));
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i % 5);
  Tensor xp = x;
  xp.apply([](float v) { return v + 0.125f; });
  const Tensor y = run(pool, {&x});
  const Tensor yp = run(pool, {&xp});
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(yp[i] - y[i], 0.125f, 1e-6);
}

// ---------------------------------------------------------------------------
// BatchNormScale / LRN

TEST(BatchNormScale, PerChannelAffine) {
  BatchNormScaleLayer bn(2);
  bn.scale()[0] = 2.0f;
  bn.scale()[1] = 0.5f;
  bn.shift()[0] = 1.0f;
  bn.shift()[1] = 0.0f;
  Tensor x(Shape({1, 2, 1, 2}), 4.0f);
  const Tensor y = run(bn, {&x});
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 1), 2.0f);
}

TEST(LRN, SuppressesLargeNeighborhoods) {
  LRNLayer::Config cfg;
  LRNLayer lrn(cfg);
  Tensor x(Shape({1, 8, 2, 2}), 10.0f);
  const Tensor y = run(lrn, {&x});
  // All positive input: output strictly less than input (denominator > 1).
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_LT(y[i], 10.0f);
    EXPECT_GT(y[i], 0.0f);
  }
}

TEST(LRN, IdentityWhenAlphaZero) {
  LRNLayer::Config cfg;
  cfg.alpha = 0.0f;
  LRNLayer lrn(cfg);
  Tensor x(Shape({1, 4, 2, 2}), 3.0f);
  const Tensor y = run(lrn, {&x});
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 3.0f, 1e-6);
}

// ---------------------------------------------------------------------------
// Eltwise / Concat

TEST(EltwiseAdd, SumsInputs) {
  EltwiseAddLayer add;
  Tensor a(Shape({1, 2, 1, 1}), 1.0f);
  Tensor b(Shape({1, 2, 1, 1}), 2.0f);
  Tensor c(Shape({1, 2, 1, 1}), 4.0f);
  const Tensor y = run(add, {&a, &b, &c});
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(Concat, StacksChannels) {
  ConcatLayer cat;
  Tensor a(Shape({2, 1, 1, 2}), 1.0f);
  Tensor b(Shape({2, 2, 1, 2}), 2.0f);
  const Tensor y = run(cat, {&a, &b});
  EXPECT_EQ(y.shape(), Shape({2, 3, 1, 2}));
  // Per image: first channel from a, next two from b.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1, 2, 0, 1), 2.0f);
}

}  // namespace
}  // namespace mupod
