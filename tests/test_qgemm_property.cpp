// Property battery for the integer GEMM backend (src/tensor/qgemm.cpp).
//
// The kernels are EXACT: int8 accumulates in int32 (products bounded by
// 2^14, k far below the 2^17 overflow horizon here), int16/int32 widen to
// int64 — so unlike the float GEMM tests there is no tolerance anywhere:
// every comparison against the naive int64 reference is ASSERT_EQ.
// Covered here:
//   * randomized GEMM vs naive int64 reference across edge shapes (M=1,
//     K=1, ragged tiles around the QMR x QNR micro-tile), both operand
//     orientations (trans_b), both bias axes, both store epilogues;
//   * saturating requantize-on-store exactness (apply_requant is the
//     committed scalar contract) and saturation counting;
//   * quantize-on-load saturation at the +-2^(I+F) grid boundaries and
//     bit-compatibility with quant/fixed_point's quantize_tensor;
//   * bitwise determinism across worker counts;
//   * the metamorphic emulated-vs-executed check: a conv layer run with
//     the float kQuantize emulation and through the integer path agree to
//     within one accumulator step (the requantize ULP) per output.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/layers.hpp"
#include "obs/metrics.hpp"
#include "quant/fixed_point.hpp"
#include "quant/qexec.hpp"
#include "stats/rng.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"
#include "tensor/qgemm.hpp"

namespace mupod {
namespace {

// Random integers spanning the full representable range of `bits`-wide
// signed operands (inclusive of the extremes, to stress saturation).
std::vector<std::int32_t> random_ints(std::size_t n, int bits, std::uint64_t seed) {
  std::vector<std::int32_t> v(n);
  Rng rng(seed);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  for (auto& x : v)
    x = static_cast<std::int32_t>(lo + static_cast<std::int64_t>(rng.uniform_index(
                                           static_cast<std::uint64_t>(hi - lo + 1))));
  return v;
}

template <typename T>
std::vector<T> narrow(const std::vector<std::int32_t>& v) {
  std::vector<T> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<T>(v[i]);
  return out;
}

// Naive reference accumulating in int64 — the ground truth every kernel
// instantiation must match bit-for-bit.
void ref_qgemm(std::int64_t m, std::int64_t n, std::int64_t k, const std::int32_t* a,
               std::int64_t lda, const std::int32_t* b, std::int64_t ldb, bool trans_b,
               std::vector<std::int64_t>& acc) {
  acc.assign(static_cast<std::size_t>(m * n), 0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t s = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int64_t bv = trans_b ? b[j * ldb + kk] : b[kk * ldb + j];
        s += static_cast<std::int64_t>(a[i * lda + kk]) * bv;
      }
      acc[static_cast<std::size_t>(i * n + j)] = s;
    }
}

struct QCase {
  std::int64_t m, n, k;
  bool trans_b;
  int bias;  // 0 = none, 1 = bias_row, 2 = bias_col
};

// Shapes chosen around the QMR x QNR = 4 x 16 micro-tile: degenerate
// extents, exact multiples, and ragged remainders on both axes. Large
// enough cases cross the serial-MAC cutoff so tile tasks really fan out.
std::vector<QCase> qgemm_cases() {
  const QGemmBlocking bl = qgemm_blocking();
  std::vector<QCase> cases = {
      {1, 1, 1, false, 0},
      {1, 1, 1, true, 1},
      {1, 257, 3, false, 2},
      {257, 1, 5, false, 1},  // GEMV shape (batch-1 inner product)
      {3, 4, 1, true, 0},     // K = 1
      {bl.mr, bl.nr, 7, false, 1},
      {bl.mr + 1, bl.nr + 1, 9, false, 2},      // one past a full tile
      {3 * bl.mr - 1, 2 * bl.nr - 3, 33, true, 1},  // ragged both axes
      {2 * bl.mr, 4 * bl.nr, 64, false, 0},
      {37, 53, 129, true, 2},
      {64, 96, 256, false, 1},  // big enough to cross the parallel cutoff
  };
  return cases;
}

template <typename T>
void run_dequant_case(QType type, const QCase& p, std::uint64_t seed) {
  const int bits = qtype_bits(type) == 32 ? 15 : qtype_bits(type);  // keep int32 ops modest
  const std::int64_t lda = p.k, ldb = p.trans_b ? p.k : p.n, ldc = p.n;
  const auto a32 = random_ints(static_cast<std::size_t>(p.m * p.k), bits, seed);
  const auto b32 = random_ints(static_cast<std::size_t>(p.k * p.n), bits, seed + 1);
  const auto a = narrow<T>(a32);
  const auto b = narrow<T>(b32);

  std::vector<std::int64_t> bias;
  QGemmEpilogue ep;
  ep.scale = 1.0 / 64.0;
  if (p.bias == 1) {
    bias.resize(static_cast<std::size_t>(p.m));
    Rng rng(seed + 2);
    for (auto& v : bias) v = static_cast<std::int64_t>(rng.uniform_index(100000)) - 50000;
    ep.bias_row = bias.data();
  } else if (p.bias == 2) {
    bias.resize(static_cast<std::size_t>(p.n));
    Rng rng(seed + 3);
    for (auto& v : bias) v = static_cast<std::int64_t>(rng.uniform_index(100000)) - 50000;
    ep.bias_col = bias.data();
  }

  std::vector<float> c(static_cast<std::size_t>(p.m * p.n), -1.0f);
  qgemm(type, p.m, p.n, p.k, a.data(), lda, b.data(), ldb, c.data(), ldc, ep, p.trans_b);

  std::vector<std::int64_t> acc;
  ref_qgemm(p.m, p.n, p.k, a32.data(), lda, b32.data(), ldb, p.trans_b, acc);
  for (std::int64_t i = 0; i < p.m; ++i)
    for (std::int64_t j = 0; j < p.n; ++j) {
      std::int64_t v = acc[static_cast<std::size_t>(i * p.n + j)];
      if (p.bias == 1) v += bias[static_cast<std::size_t>(i)];
      if (p.bias == 2) v += bias[static_cast<std::size_t>(j)];
      const float want = static_cast<float>(static_cast<double>(v) * ep.scale);
      ASSERT_EQ(c[static_cast<std::size_t>(i * ldc + j)], want)
          << qtype_name(type) << " " << p.m << "x" << p.n << "x" << p.k << " at (" << i << ","
          << j << ")";
    }
}

class QGemmVsReference : public ::testing::TestWithParam<QCase> {};

TEST_P(QGemmVsReference, DequantStoreExactInt8) {
  run_dequant_case<std::int8_t>(QType::kInt8, GetParam(), 11);
}

TEST_P(QGemmVsReference, DequantStoreExactInt16) {
  run_dequant_case<std::int16_t>(QType::kInt16, GetParam(), 22);
}

TEST_P(QGemmVsReference, DequantStoreExactInt32) {
  run_dequant_case<std::int32_t>(QType::kInt32, GetParam(), 33);
}

TEST_P(QGemmVsReference, RequantStoreExactInt16) {
  const QCase& p = GetParam();
  const std::int64_t lda = p.k, ldb = p.trans_b ? p.k : p.n, ldc = p.n;
  const auto a32 = random_ints(static_cast<std::size_t>(p.m * p.k), 16, 44);
  const auto b32 = random_ints(static_cast<std::size_t>(p.k * p.n), 16, 45);
  const auto a = narrow<std::int16_t>(a32);
  const auto b = narrow<std::int16_t>(b32);

  QGemmEpilogue ep;
  ep.quant_store = true;
  ep.requant = make_requant(0.0003721);  // an arbitrary awkward scale
  ep.lo = -32768;
  ep.hi = 32767;
  std::atomic<std::int64_t> sat{0};
  ep.saturated = &sat;

  std::vector<std::int16_t> c(static_cast<std::size_t>(p.m * p.n), -1);
  qgemm(QType::kInt16, p.m, p.n, p.k, a.data(), lda, b.data(), ldb, c.data(), ldc, ep, p.trans_b);

  std::vector<std::int64_t> acc;
  ref_qgemm(p.m, p.n, p.k, a32.data(), lda, b32.data(), ldb, p.trans_b, acc);
  std::int64_t want_sat = 0;
  for (std::int64_t i = 0; i < p.m; ++i)
    for (std::int64_t j = 0; j < p.n; ++j) {
      std::int32_t q = apply_requant(acc[static_cast<std::size_t>(i * p.n + j)], ep.requant);
      if (q < ep.lo) { q = ep.lo; ++want_sat; }
      if (q > ep.hi) { q = ep.hi; ++want_sat; }
      ASSERT_EQ(c[static_cast<std::size_t>(i * ldc + j)], static_cast<std::int16_t>(q))
          << p.m << "x" << p.n << "x" << p.k << " at (" << i << "," << j << ")";
    }
  EXPECT_EQ(sat.load(), want_sat);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QGemmVsReference, ::testing::ValuesIn(qgemm_cases()));

// ---------------------------------------------------------------------------
// Requantize saturation: a multiplier big enough to push accumulators past
// the clamp must clip every element and count every clip.
TEST(QGemmRequant, SaturatesAtClampBoundaries) {
  const std::int64_t m = 3, n = 17, k = 4;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), 100);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), 100);  // acc = 4 * 10000 = 40000
  QGemmEpilogue ep;
  ep.quant_store = true;
  ep.requant = make_requant(1.0);  // identity: q = acc = 40000, way past int8
  ep.lo = -128;
  ep.hi = 127;
  std::atomic<std::int64_t> sat{0};
  ep.saturated = &sat;
  std::vector<std::int8_t> c(static_cast<std::size_t>(m * n), 0);
  qgemm(QType::kInt8, m, n, k, a.data(), k, b.data(), n, c.data(), n, ep);
  for (std::int8_t v : c) EXPECT_EQ(v, 127);
  EXPECT_EQ(sat.load(), m * n);

  // Mirror image: negative accumulators clamp at lo.
  for (auto& v : a) v = -100;
  sat.store(0);
  qgemm(QType::kInt8, m, n, k, a.data(), k, b.data(), n, c.data(), n, ep);
  for (std::int8_t v : c) EXPECT_EQ(v, -128);
  EXPECT_EQ(sat.load(), m * n);
}

// make_requant + apply_requant realize round-to-nearest of acc * real
// within one ULP of the q31 representation, and exactly for powers of two.
TEST(QGemmRequant, PowerOfTwoMultipliersAreExact) {
  for (int sh = -8; sh <= 8; ++sh) {
    const double real = std::exp2(static_cast<double>(sh));
    const QRequant rq = make_requant(real);
    for (std::int64_t acc : {0ll, 1ll, -1ll, 255ll, -255ll, 4095ll, -4096ll, 123456ll}) {
      const double want_d = static_cast<double>(acc) * real;
      // Ties round toward +inf (add-half-then-floor), matching the kernel.
      const std::int64_t want = static_cast<std::int64_t>(std::floor(want_d + 0.5));
      ASSERT_EQ(apply_requant(acc, rq), static_cast<std::int32_t>(want))
          << "acc=" << acc << " shift=" << sh;
    }
  }
}

// ---------------------------------------------------------------------------
// quantize_to: bit-compatible with quantize_tensor on the same grid, and
// saturating exactly at the +-2^(I+F) boundary counts.
TEST(QuantizeTo, MatchesQuantizeTensorOnTheGrid) {
  FixedPointFormat fmt;
  fmt.integer_bits = 3;
  fmt.fraction_bits = 4;  // step 1/16, range [-4, 4 - 1/16]
  const int bits = fmt.total_bits();
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  const std::int32_t lo = -(1 << (bits - 1));

  Tensor t(Shape({1, 1, 8, 16}));
  Rng rng(99);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-6.0, 6.0));  // past both boundaries
  t[0] = 0.0f;
  t[1] = 1e9f;    // deep saturation high
  t[2] = -1e9f;   // deep saturation low
  t[3] = 4.0f - 1.0f / 16.0f;   // exactly max_value
  t[4] = -4.0f;                 // exactly min_value
  t[5] = 4.0f;                  // one step past max -> saturates

  std::vector<std::int16_t> q(static_cast<std::size_t>(t.numel()));
  const std::int64_t sat =
      quantize_to(QType::kInt16, t.data(), t.numel(), fmt.step(), lo, hi, q.data());

  Tensor emulated = t;
  quantize_tensor(emulated, fmt);
  std::int64_t want_sat = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    ASSERT_EQ(static_cast<double>(q[static_cast<std::size_t>(i)]) * fmt.step(),
              static_cast<double>(emulated[i]))
        << "element " << i << " value " << t[i];
    const double grid = std::nearbyint(static_cast<double>(t[i]) / fmt.step());
    if (grid > hi || grid < lo) ++want_sat;
  }
  EXPECT_EQ(sat, want_sat);
  EXPECT_GE(sat, 3);  // the hand-planted boundary values alone
}

// ---------------------------------------------------------------------------
// Bitwise determinism across worker counts — integer addition is
// associative, so this is an equality on bytes, not a tolerance.
TEST(QGemmDeterminism, BitIdenticalAcrossWorkerCounts) {
  const std::int64_t m = 61, n = 83, k = 210;  // ragged, above the MAC cutoff
  const auto a32 = random_ints(static_cast<std::size_t>(m * k), 16, 7);
  const auto b32 = random_ints(static_cast<std::size_t>(k * n), 16, 8);
  const auto a = narrow<std::int16_t>(a32);
  const auto b = narrow<std::int16_t>(b32);
  QGemmEpilogue ep;
  ep.scale = 1.0 / 1024.0;

  std::vector<std::vector<float>> results;
  for (const int workers : {1, 2, 4}) {
    set_parallel_worker_count(workers);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    qgemm(QType::kInt16, m, n, k, a.data(), k, b.data(), n, c.data(), n, ep);
    results.push_back(std::move(c));
  }
  set_parallel_worker_count(0);  // restore the default pool
  for (std::size_t w = 1; w < results.size(); ++w)
    for (std::size_t i = 0; i < results[0].size(); ++i)
      ASSERT_EQ(results[0][i], results[w][i]) << "worker config " << w << " element " << i;
}

// ---------------------------------------------------------------------------
// Per-ISA bit equality. Integer kernels compute exact products in modular
// arithmetic, so EVERY compiled ISA variant (scalar templates, AVX2
// vpmaddwd pair kernel, vpmaddubsw quad fast path, GEMV dot kernels) must
// produce byte-identical outputs — across ISAs AND worker counts
// simultaneously. memcmp, not tolerance.

struct IsaGuard {
  KernelIsa saved = kernel_isa();
  ~IsaGuard() { set_kernel_isa(saved); }
};

std::vector<KernelIsa> available_isas() {
  std::vector<KernelIsa> v;
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2, KernelIsa::kAvx2Fma})
    if (kernel_isa_available(isa)) v.push_back(isa);
  return v;
}

template <typename T>
void run_isa_equality_case(QType type, std::int64_t m, std::int64_t n, std::int64_t k,
                           int bits, bool trans_b, std::uint64_t seed) {
  const std::int64_t lda = k, ldb = trans_b ? k : n, ldc = n;
  const auto a32 = random_ints(static_cast<std::size_t>(m * k), bits, seed);
  const auto b32 = random_ints(static_cast<std::size_t>(k * n), bits, seed + 1);
  const auto a = narrow<T>(a32);
  const auto b = narrow<T>(b32);
  QGemmEpilogue ep;
  ep.quant_store = true;
  ep.requant = make_requant(0.0007391);
  ep.lo = -(std::int32_t{1} << (bits - 1));
  ep.hi = (std::int32_t{1} << (bits - 1)) - 1;

  IsaGuard guard;
  set_kernel_isa(KernelIsa::kScalar);
  std::vector<T> want(static_cast<std::size_t>(m * n), T(-1));
  qgemm(type, m, n, k, a.data(), lda, b.data(), ldb, want.data(), ldc, ep, trans_b);

  for (KernelIsa isa : available_isas()) {
    for (const int workers : {1, 3}) {
      set_kernel_isa(isa);
      set_parallel_worker_count(workers);
      std::vector<T> got(static_cast<std::size_t>(m * n), T(-2));
      qgemm(type, m, n, k, a.data(), lda, b.data(), ldb, got.data(), ldc, ep, trans_b);
      set_parallel_worker_count(0);
      ASSERT_EQ(0, std::memcmp(want.data(), got.data(), want.size() * sizeof(T)))
          << kernel_isa_name(isa) << " workers=" << workers << " " << qtype_name(type) << " "
          << m << "x" << n << "x" << k << " bits=" << bits;
    }
  }
}

TEST(QGemmKernelIsa, Int8ByteIdenticalAcrossIsasAndWorkers) {
  // Full-range int8 -> the vpmaddwd pair kernel (quad path ineligible).
  run_isa_equality_case<std::int8_t>(QType::kInt8, 37, 53, 129, 8, false, 101);
  run_isa_equality_case<std::int8_t>(QType::kInt8, 61, 83, 210, 8, true, 102);
  run_isa_equality_case<std::int8_t>(QType::kInt8, 5, 17, 1, 8, false, 103);  // K = 1
}

TEST(QGemmKernelIsa, Int8MaddubsFastPathByteIdentical) {
  // 7-bit B operands (|b| <= 64) select the vpmaddubsw offset-trick
  // kernel on AVX2; its -128*colsum compensation must cancel exactly.
  run_isa_equality_case<std::int8_t>(QType::kInt8, 37, 53, 129, 7, false, 201);
  run_isa_equality_case<std::int8_t>(QType::kInt8, 29, 31, 64, 5, true, 202);
  run_isa_equality_case<std::int8_t>(QType::kInt8, 4, 16, 257, 7, false, 203);  // odd k tail
}

TEST(QGemmKernelIsa, MaddubsEligibilityDispatchesAsCounted) {
  // Guard against the fast path silently decaying: with AVX2 available,
  // a 7-bit B operand must route through the maddubs kernel and a
  // full-range one through the pair kernel, visible in the dispatch
  // counters.
  if (!kernel_isa_available(KernelIsa::kAvx2)) GTEST_SKIP() << "AVX2 kernels not compiled/usable";
  IsaGuard guard;
  set_kernel_isa(KernelIsa::kAvx2);
  metrics().reset();
  set_metrics_enabled(true);
  const std::int64_t m = 8, n = 32, k = 40;
  const auto a = narrow<std::int8_t>(random_ints(static_cast<std::size_t>(m * k), 8, 71));
  const auto b7 = narrow<std::int8_t>(random_ints(static_cast<std::size_t>(k * n), 7, 72));
  const auto b8 = narrow<std::int8_t>(random_ints(static_cast<std::size_t>(k * n), 8, 73));
  QGemmEpilogue ep;
  ep.scale = 1.0 / 64.0;
  std::vector<float> c(static_cast<std::size_t>(m * n));
  qgemm(QType::kInt8, m, n, k, a.data(), k, b7.data(), n, c.data(), n, ep);
  EXPECT_EQ(metrics().counter("kernel.qgemm.maddubs").value(), 1);
  qgemm(QType::kInt8, m, n, k, a.data(), k, b8.data(), n, c.data(), n, ep);
  // b8 spans the full int8 range (seeded wide), so it must take the pair
  // kernel unless the draw landed entirely inside [-64, 64].
  EXPECT_EQ(metrics().counter("kernel.qgemm.maddubs").value() +
                metrics().counter("kernel.qgemm.madd").value(),
            2);
  set_metrics_enabled(false);
}

TEST(QGemmKernelIsa, Int8GemvByteIdentical) {
  // n == 1 takes the qdot8 row-dot path on AVX2 (the batch-1 FC shape).
  run_isa_equality_case<std::int8_t>(QType::kInt8, 257, 1, 300, 8, false, 301);
  run_isa_equality_case<std::int8_t>(QType::kInt8, 1000, 1, 1024, 8, false, 302);
}

TEST(QGemmKernelIsa, Int16ByteIdenticalAcrossIsasAndWorkers) {
  // Full-range int16 INCLUDING -32768: the driver must detect it and
  // fall back to the exact path, still byte-identical.
  run_isa_equality_case<std::int16_t>(QType::kInt16, 37, 53, 129, 16, false, 401);
  run_isa_equality_case<std::int16_t>(QType::kInt16, 61, 83, 210, 16, true, 402);
  // 15-bit operands cannot hit the vpmaddwd corner -> SIMD path runs.
  run_isa_equality_case<std::int16_t>(QType::kInt16, 37, 53, 129, 15, false, 403);
  run_isa_equality_case<std::int16_t>(QType::kInt16, 257, 1, 300, 15, false, 404);  // GEMV
}

TEST(QGemmKernelIsa, QuantizeToByteIdenticalAcrossIsas) {
  // The vectorized quantize-on-load must match the scalar grid contract
  // bit-for-bit, including NaN -> 0, saturation clamps, and the count.
  const std::int64_t n = 1003;  // odd: exercises the vector tail
  std::vector<float> x(static_cast<std::size_t>(n));
  Rng rng(777);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-600.0, 600.0));
  x[0] = std::numeric_limits<float>::quiet_NaN();
  x[1] = std::numeric_limits<float>::infinity();
  x[2] = -std::numeric_limits<float>::infinity();
  x[3] = 0.5f;   // rounds to even: 0
  x[4] = 1.5f;   // rounds to even: 2
  x[5] = -0.5f;
  const double step = 1.0 / 8.0;

  IsaGuard guard;
  for (QType type : {QType::kInt8, QType::kInt16}) {
    const int bits = qtype_bits(type);
    const std::int32_t hi = (std::int32_t{1} << (bits - 1)) - 1;
    const std::int32_t lo = -(std::int32_t{1} << (bits - 1));
    set_kernel_isa(KernelIsa::kScalar);
    std::vector<std::int16_t> want16(static_cast<std::size_t>(n));
    std::vector<std::int8_t> want8(static_cast<std::size_t>(n));
    void* want = type == QType::kInt8 ? static_cast<void*>(want8.data())
                                      : static_cast<void*>(want16.data());
    const std::int64_t want_sat = quantize_to(type, x.data(), n, step, lo, hi, want);

    for (KernelIsa isa : available_isas()) {
      set_kernel_isa(isa);
      std::vector<std::int16_t> got16(static_cast<std::size_t>(n), 99);
      std::vector<std::int8_t> got8(static_cast<std::size_t>(n), 99);
      void* got = type == QType::kInt8 ? static_cast<void*>(got8.data())
                                       : static_cast<void*>(got16.data());
      const std::int64_t got_sat = quantize_to(type, x.data(), n, step, lo, hi, got);
      EXPECT_EQ(got_sat, want_sat) << kernel_isa_name(isa) << " " << qtype_name(type);
      ASSERT_EQ(0, std::memcmp(want, got, static_cast<std::size_t>(n) * qtype_bytes(type)))
          << kernel_isa_name(isa) << " " << qtype_name(type);
    }
  }
}

// ---------------------------------------------------------------------------
// Metamorphic emulated-vs-executed agreement on a real conv layer.
//
// The float pipeline EMULATES a format by rounding the input and
// computing in fp32; the integer path quantizes input AND weights and
// accumulates exactly. With the weights already on their own grid
// (quantize_weights_uniform semantics baked into the lowering) the two
// computations differ only by (a) fp32 rounding of the emulated MACs and
// (b) the final dequantize multiply — both bounded well below one
// accumulator step acc_scale = act_step * w_step for the coarse formats
// used here. The assertion is |emulated - integer| <= acc_scale per
// output element: one ULP of the requantize grid.
TEST(QExecMetamorphic, ConvEmulatedAndIntegerAgreeWithinOneStep) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 8;
  cfg.kernel_h = 3;
  cfg.kernel_w = 3;
  cfg.stride = 1;
  cfg.pad = 1;
  Conv2DLayer conv(cfg);

  // Coarse formats keep acc_scale far above fp32 noise: act 2.4 (step
  // 1/16), weights 6 total bits.
  FixedPointFormat act_fmt;
  act_fmt.integer_bits = 2;
  act_fmt.fraction_bits = 4;
  const int weight_bits = 6;

  Rng rng(314);
  Tensor* w = conv.mutable_weights();
  for (std::int64_t i = 0; i < w->numel(); ++i)
    (*w)[i] = static_cast<float>(rng.gaussian(0.0, 0.3));
  Tensor* bias = conv.mutable_bias();
  for (std::int64_t i = 0; i < bias->numel(); ++i)
    (*bias)[i] = static_cast<float>(rng.gaussian(0.0, 0.1));

  Tensor x(Shape({2, 3, 9, 9}));
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform(-1.5, 1.5));

  // Build a one-layer network so the lowering derives the weight format
  // exactly as quantize_weights_uniform would.
  Network net("one_conv");
  const int in_id = net.add_input("data", 3, 9, 9);
  const int conv_id = net.add("conv", std::make_unique<Conv2DLayer>(cfg), std::vector<int>{in_id});
  {
    Layer& l = net.layer(conv_id);
    *l.mutable_weights() = *conv.weights();
    *l.mutable_bias() = *conv.bias();
  }
  net.finalize();

  QExecOptions qopts;
  qopts.weight_bits = weight_bits;
  QuantizedNetwork qnet(net, {conv_id}, {act_fmt}, qopts);
  ASSERT_EQ(qnet.num_lowered(), 1);
  const QLayerLowering& L = qnet.lowering()[0];
  const double acc_scale = act_fmt.step() * L.w_fmt.step();

  // Emulated: round input and weights onto their grids, compute in fp32.
  Tensor x_emu = x;
  quantize_tensor(x_emu, act_fmt);
  Network emu_net("one_conv_emu");
  const int ein = emu_net.add_input("data", 3, 9, 9);
  const int econv = emu_net.add("conv", std::make_unique<Conv2DLayer>(cfg), std::vector<int>{ein});
  {
    Layer& l = emu_net.layer(econv);
    *l.mutable_weights() = *conv.weights();
    *l.mutable_bias() = *conv.bias();
  }
  emu_net.finalize();
  emu_net.quantize_weights_uniform(weight_bits);
  const Tensor y_emulated = emu_net.forward(x_emu);

  const Tensor y_integer = qnet.forward(x);

  ASSERT_EQ(y_emulated.numel(), y_integer.numel());
  for (std::int64_t i = 0; i < y_emulated.numel(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(y_emulated[i]) - y_integer[i]), acc_scale)
        << "output " << i << ": emulated " << y_emulated[i] << " vs integer " << y_integer[i];
}

// The integer-executed QuantizedNetwork forward is itself bit-identical
// across worker counts (quantize-on-load chunks + qgemm tiles).
TEST(QExecDeterminism, QuantizedForwardBitIdenticalAcrossWorkers) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 12;
  cfg.kernel_h = 3;
  cfg.kernel_w = 3;
  cfg.pad = 1;

  Network net("det_conv");
  const int in_id = net.add_input("data", 4, 16, 16);
  const int conv_id = net.add("conv", std::make_unique<Conv2DLayer>(cfg), std::vector<int>{in_id});
  Rng rng(2718);
  {
    Layer& l = net.layer(conv_id);
    Tensor* w = l.mutable_weights();
    for (std::int64_t i = 0; i < w->numel(); ++i)
      (*w)[i] = static_cast<float>(rng.gaussian(0.0, 0.2));
  }
  net.finalize();

  FixedPointFormat fmt;
  fmt.integer_bits = 4;
  fmt.fraction_bits = 8;
  QuantizedNetwork qnet(net, {conv_id}, {fmt});

  Tensor x(Shape({4, 4, 16, 16}));
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.gaussian());

  std::vector<Tensor> ys;
  for (const int workers : {1, 3}) {
    set_parallel_worker_count(workers);
    ys.push_back(qnet.forward(x));
  }
  set_parallel_worker_count(0);
  ASSERT_EQ(ys[0].numel(), ys[1].numel());
  for (std::int64_t i = 0; i < ys[0].numel(); ++i)
    ASSERT_EQ(ys[0][i], ys[1][i]) << "element " << i;
}

}  // namespace
}  // namespace mupod
