#include "opt/search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mupod {
namespace {

TEST(BinarySearch, FindsThresholdFromBelow) {
  // satisfied(x) == x <= 3.7, starting upper bound 1 (needs doubling).
  const auto res = binary_search_max_satisfying([](double x) { return x <= 3.7; });
  EXPECT_NEAR(res.value, 3.7, 0.01);
  EXPECT_TRUE(res.bounded);
}

TEST(BinarySearch, FindsThresholdBelowInitialUpper) {
  const auto res = binary_search_max_satisfying([](double x) { return x <= 0.32; });
  EXPECT_NEAR(res.value, 0.32, 0.01);
}

TEST(BinarySearch, ToleranceRespected) {
  BinarySearchOptions opts;
  opts.tolerance = 1e-6;
  const auto res = binary_search_max_satisfying([](double x) { return x <= 0.123456; }, opts);
  EXPECT_NEAR(res.value, 0.123456, 1e-6);
}

TEST(BinarySearch, NothingSatisfiesReturnsZero) {
  const auto res = binary_search_max_satisfying([](double) { return false; });
  EXPECT_NEAR(res.value, 0.0, 0.01);
}

TEST(BinarySearch, EverythingSatisfiesReportsUnbounded) {
  BinarySearchOptions opts;
  opts.max_doublings = 5;
  const auto res = binary_search_max_satisfying([](double) { return true; }, opts);
  EXPECT_FALSE(res.bounded);
  EXPECT_GT(res.value, 0.0);
}

TEST(BinarySearch, EvaluationCountIsLogarithmic) {
  BinarySearchOptions opts;
  opts.tolerance = 0.01;
  const auto res = binary_search_max_satisfying([](double x) { return x <= 7.3; }, opts);
  // Doublings (~4) + bisection of [4, 8] down to 0.01 (~9) + slack.
  EXPECT_LT(res.evaluations, 25);
}

TEST(BinarySearch, MonotonePredicateOnNoisyBoundary) {
  // The value the paper searches (sigma vs accuracy) is monotone; check a
  // steep-but-smooth predicate converges to its knee.
  const auto satisfied = [](double x) { return 1.0 / (1.0 + std::exp(10 * (x - 2.0))) > 0.5; };
  const auto res = binary_search_max_satisfying(satisfied);
  EXPECT_NEAR(res.value, 2.0, 0.02);
}

}  // namespace
}  // namespace mupod
