#include "core/sigma_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

const std::vector<LayerLinearModel>& models() {
  static const std::vector<LayerLinearModel>* m = [] {
    ProfilerConfig cfg;
    cfg.points = 8;
    return new std::vector<LayerLinearModel>(profile_lambda_theta(*tiny().harness, cfg));
  }();
  return *m;
}

TEST(SigmaSearch, InjectionMapUsesEq7) {
  const std::vector<double> xi(models().size(), 1.0 / models().size());
  const auto inject = injection_for_xi(models(), 0.5, xi);
  ASSERT_EQ(inject.size(), models().size());
  for (const auto& m : models()) {
    const auto it = inject.find(m.node);
    ASSERT_NE(it, inject.end());
    const double expected = m.lambda * 0.5 * std::sqrt(1.0 / models().size()) + m.theta;
    EXPECT_NEAR(it->second.delta, expected, 1e-12);
  }
}

TEST(SigmaSearch, NonPositiveDeltaSkipped) {
  std::vector<LayerLinearModel> ms = models();
  ms[0].theta = -1e9;  // drives Delta negative
  const std::vector<double> xi(ms.size(), 1.0 / ms.size());
  const auto inject = injection_for_xi(ms, 0.5, xi);
  EXPECT_EQ(inject.size(), ms.size() - 1);
}

TEST(SigmaSearch, Scheme2FindsPositiveSigma) {
  SigmaSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  cfg.scheme = AccuracyScheme::kGaussianOutput;
  const SigmaSearchResult res = search_sigma_yl(*tiny().harness, models(), cfg);
  EXPECT_GT(res.sigma_yl, 0.0);
  EXPECT_GE(res.accuracy_at_sigma, 0.94);  // meets the 5% constraint
  EXPECT_GT(res.evaluations, 3);
}

TEST(SigmaSearch, Scheme1FindsPositiveSigma) {
  // A 10% budget with a fine tolerance: ~5% of the tiny net's eval images
  // have near-zero decision margins (they flip under any noise), so a 5%
  // budget sits exactly on the accuracy-granularity boundary.
  SigmaSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.10;
  cfg.scheme = AccuracyScheme::kEqualInjection;
  cfg.search.tolerance = 0.002;
  const SigmaSearchResult res = search_sigma_yl(*tiny().harness, models(), cfg);
  EXPECT_GT(res.sigma_yl, 0.0);
  EXPECT_GE(res.accuracy_at_sigma, 0.89);
}

TEST(SigmaSearch, TighterConstraintGivesSmallerSigma) {
  SigmaSearchConfig tight, loose;
  tight.relative_accuracy_drop = 0.01;
  loose.relative_accuracy_drop = 0.10;
  const double s_tight = search_sigma_yl(*tiny().harness, models(), tight).sigma_yl;
  const double s_loose = search_sigma_yl(*tiny().harness, models(), loose).sigma_yl;
  EXPECT_LE(s_tight, s_loose);
  EXPECT_GT(s_loose, 0.0);
}

TEST(SigmaSearch, SchemesAgreeWithinFactor) {
  // The paper argues scheme 2 approximates scheme 1 well (Fig. 3). Demand
  // agreement within a factor of ~2.5 on the tiny network.
  SigmaSearchConfig c1, c2;
  c1.relative_accuracy_drop = c2.relative_accuracy_drop = 0.10;
  c1.scheme = AccuracyScheme::kEqualInjection;
  c2.scheme = AccuracyScheme::kGaussianOutput;
  c1.search.tolerance = c2.search.tolerance = 0.002;
  const double s1 = search_sigma_yl(*tiny().harness, models(), c1).sigma_yl;
  const double s2 = search_sigma_yl(*tiny().harness, models(), c2).sigma_yl;
  ASSERT_GT(s1, 0.0);
  ASSERT_GT(s2, 0.0);
  const double ratio = s1 > s2 ? s1 / s2 : s2 / s1;
  EXPECT_LT(ratio, 2.5);
}

TEST(SigmaSearch, AccuracyForSigmaMonotone) {
  const double a_small = accuracy_for_sigma(*tiny().harness, models(), 0.01,
                                            AccuracyScheme::kGaussianOutput);
  const double a_large = accuracy_for_sigma(*tiny().harness, models(), 3.0,
                                            AccuracyScheme::kGaussianOutput);
  EXPECT_GT(a_small, a_large);
}

// Eq. 6/7 consistency. The paper assumes the per-layer error sources are
// mutually independent, giving sigma_total = sqrt(sum sigma_K^2); with
// full positive correlation the bound is sum sigma_K = sqrt(L) * larger.
// On a wide ImageNet network independence holds well (<5% error in the
// paper); on this narrow 4-layer CNN the propagated errors share the same
// few output modes, so we assert the bracket: the measured sigma lies
// between the independent-sum and the fully-correlated-sum predictions.
TEST(SigmaSearch, Eq7ApproximationWithinCorrelationBracket) {
  const double sigma = 0.4;
  const std::size_t L = models().size();
  const std::vector<double> xi(L, 1.0 / static_cast<double>(L));
  const auto inject = injection_for_xi(models(), sigma, xi);
  const double measured = tiny().harness->output_sigma_for_injection_map(inject);

  const double independent = sigma;                        // sqrt(L * (s/sqrt(L))^2)
  const double correlated = sigma * std::sqrt(static_cast<double>(L));
  EXPECT_GE(measured, independent * 0.75);
  EXPECT_LE(measured, correlated * 1.25);
}

TEST(SigmaSearch, DroppedLayersAreRecorded) {
  std::vector<LayerLinearModel> ms = models();
  ms[0].lambda = 0.0;     // no usable model
  ms[1].theta = -1e9;     // Delta driven negative
  const std::vector<double> xi(ms.size(), 1.0 / ms.size());
  std::vector<int> dropped;
  const auto inject = injection_for_xi(ms, 0.5, xi, &dropped);
  EXPECT_EQ(inject.size(), ms.size() - 2);
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[0], ms[0].node);
  EXPECT_EQ(dropped[1], ms[1].node);
}

TEST(SigmaSearch, BracketFailureIsExplicitNotMasked) {
  SigmaSearchConfig cfg;
  cfg.relative_accuracy_drop = -0.5;  // threshold 1.5x float: unsatisfiable
  DiagnosticSink diag;
  const SigmaSearchResult res = search_sigma_yl(*tiny().harness, models(), cfg, &diag);
  EXPECT_EQ(res.status, SigmaSearchStatus::kBracketFailed);
  EXPECT_FALSE(res.bracket_ok());
  EXPECT_EQ(res.sigma_yl, 0.0);
  // The old behavior reported accuracy 1.0 here — a bracket failure
  // masked as a perfect result. It must stay an explicit non-measurement.
  EXPECT_EQ(res.accuracy_at_sigma, -1.0);
  EXPECT_GE(diag.count(PipelineStage::kSigmaSearch, DiagSeverity::kError), 1);
}

TEST(SigmaSearch, AllDegenerateModelsFailBracketUnderScheme1) {
  std::vector<LayerLinearModel> ms = models();
  for (LayerLinearModel& m : ms) m.lambda = 0.0;
  SigmaSearchConfig cfg;
  cfg.scheme = AccuracyScheme::kEqualInjection;
  DiagnosticSink diag;
  const SigmaSearchResult res = search_sigma_yl(*tiny().harness, ms, cfg, &diag);
  EXPECT_EQ(res.status, SigmaSearchStatus::kBracketFailed);
  EXPECT_EQ(res.evaluations, 0);  // no wasted forwards on a meaningless probe
  EXPECT_TRUE(diag.has_errors());
}

}  // namespace
}  // namespace mupod
