// Property tests of the netdef parser: randomized sequential topologies
// round-trip through parse -> serialize -> parse with identical structure
// and forward behavior.
#include <gtest/gtest.h>

#include <sstream>

#include "io/netdef.hpp"
#include "nn/layers.hpp"
#include "stats/rng.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// Generates a random but always-valid sequential netdef.
std::string random_netdef(std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  os << "name: fuzz" << seed << "\n";
  int c = 1 + static_cast<int>(rng.uniform_index(4));
  int h = 8 + static_cast<int>(rng.uniform_index(3)) * 4;  // 8..16
  int w = h;
  os << "input: " << c << ' ' << h << ' ' << w << "\n";
  std::string prev = "data";
  const int layers = 2 + static_cast<int>(rng.uniform_index(5));
  for (int i = 0; i < layers; ++i) {
    const std::string name = "l" + std::to_string(i);
    switch (rng.uniform_index(4)) {
      case 0: {  // conv (kernel always fits)
        const int k = h >= 3 ? 3 : 1;
        const int out = 2 + static_cast<int>(rng.uniform_index(6));
        os << "layer " << name << " type=conv in=" << prev << " out=" << out << " kernel=" << k
           << " pad=" << (k / 2) << "\n";
        c = out;
        break;
      }
      case 1:
        os << "layer " << name << " type=relu in=" << prev << "\n";
        break;
      case 2: {
        if (h >= 4) {
          os << "layer " << name << " type=maxpool in=" << prev << " kernel=2 stride=2\n";
          h /= 2;
          w /= 2;
        } else {
          os << "layer " << name << " type=relu in=" << prev << "\n";
        }
        break;
      }
      default:
        os << "layer " << name << " type=dropout in=" << prev << "\n";
        break;
    }
    prev = name;
  }
  os << "layer gap type=avgpool in=" << prev << " global=1\n";
  os << "layer fc type=fc in=gap out=7\n";
  return os.str();
}

class NetdefFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NetdefFuzz, RoundTripPreservesStructureAndForward) {
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 1000 + trial;
    const std::string text = random_netdef(seed);
    Network net = parse_netdef(text);
    Network again = parse_netdef(to_netdef(net));
    ASSERT_EQ(again.num_nodes(), net.num_nodes()) << text;
    ASSERT_EQ(again.analyzable_nodes(), net.analyzable_nodes()) << text;

    init_weights_he(net, seed);
    init_weights_he(again, seed);
    const auto& in = static_cast<const InputLayer&>(net.layer(net.input_node()));
    Tensor x(Shape({2, in.channels(), in.height(), in.width()}));
    Rng rng(seed ^ 0xabcdef);
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
    EXPECT_DOUBLE_EQ(max_abs_diff(net.forward(x), again.forward(x)), 0.0) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetdefFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mupod
