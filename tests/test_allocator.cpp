#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "core/sigma_search.hpp"
#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

const std::vector<LayerLinearModel>& models() {
  static const std::vector<LayerLinearModel>* m = [] {
    ProfilerConfig cfg;
    cfg.points = 8;
    return new std::vector<LayerLinearModel>(profile_lambda_theta(*tiny().harness, cfg));
  }();
  return *m;
}

ObjectiveSpec unit_objective(std::size_t n) {
  ObjectiveSpec s;
  s.name = "unit";
  s.rho.assign(n, 1);
  return s;
}

TEST(ClosedFormXi, ProportionalToRho) {
  const std::vector<double> xi = closed_form_xi({1, 2, 3, 4});
  EXPECT_NEAR(xi[0], 0.1, 1e-9);
  EXPECT_NEAR(xi[3], 0.4, 1e-9);
  EXPECT_NEAR(std::accumulate(xi.begin(), xi.end(), 0.0), 1.0, 1e-12);
}

TEST(ClosedFormXi, ZeroRhoFallsBackToUniform) {
  const std::vector<double> xi = closed_form_xi({0, 0, 0});
  for (double x : xi) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(Objective, PenalizesSmallDeltas) {
  const std::vector<double> uniform(models().size(), 1.0 / models().size());
  std::vector<double> skewed = uniform;
  skewed[0] = 1e-4;
  skewed[1] += uniform[0] - 1e-4;
  const std::vector<std::int64_t> rho(models().size(), 1);
  // Shrinking xi_0 shrinks Delta_0, costing bits on layer 0.
  const double f_uniform = allocation_objective(models(), 0.3, rho, uniform);
  const double f_skewed = allocation_objective(models(), 0.3, rho, skewed);
  EXPECT_GT(f_skewed, f_uniform);
}

TEST(Allocator, XiSumsToOne) {
  for (XiSolver solver : {XiSolver::kProjectedGradient, XiSolver::kSqp, XiSolver::kClosedForm}) {
    AllocatorConfig cfg;
    cfg.solver = solver;
    const BitwidthAllocation a = allocate_bitwidths(
        models(), 0.3, tiny().harness->input_ranges(), unit_objective(models().size()), cfg);
    EXPECT_NEAR(std::accumulate(a.xi.begin(), a.xi.end(), 0.0), 1.0, 1e-6);
    for (double x : a.xi) EXPECT_GE(x, cfg.min_xi - 1e-9);
  }
}

TEST(Allocator, SolversAgreeOnObjectiveValue) {
  // On the paper's objective all three solvers should land on solutions of
  // nearly equal quality (theta is small after profiling).
  ObjectiveSpec obj;
  obj.name = "macs";
  obj.rho = {100, 400, 1600, 200};
  double best = 1e300, worst = -1e300;
  for (XiSolver solver : {XiSolver::kProjectedGradient, XiSolver::kSqp, XiSolver::kClosedForm}) {
    AllocatorConfig cfg;
    cfg.solver = solver;
    const BitwidthAllocation a =
        allocate_bitwidths(models(), 0.3, tiny().harness->input_ranges(), obj, cfg);
    best = std::min(best, a.objective_value);
    worst = std::max(worst, a.objective_value);
  }
  EXPECT_LT(worst - best, std::fabs(best) * 0.02 + 1.0);
}

TEST(Allocator, HeavierRhoGetsMoreBudget) {
  // A layer with dominant cost weight must receive the largest xi (it is
  // the one whose bits the objective most wants to cut, and more error
  // budget means fewer bits).
  ObjectiveSpec obj;
  obj.name = "skewed";
  obj.rho = {1, 1, 1000, 1};
  AllocatorConfig cfg;
  cfg.solver = XiSolver::kProjectedGradient;
  const BitwidthAllocation a =
      allocate_bitwidths(models(), 0.3, tiny().harness->input_ranges(), obj, cfg);
  for (std::size_t k = 0; k < a.xi.size(); ++k) {
    if (k == 2) continue;
    EXPECT_GT(a.xi[2], a.xi[k]);
  }
}

TEST(Allocator, BitsDecreaseWithLargerSigmaBudget) {
  const ObjectiveSpec obj = unit_objective(models().size());
  const BitwidthAllocation tight =
      allocate_bitwidths(models(), 0.05, tiny().harness->input_ranges(), obj);
  const BitwidthAllocation loose =
      allocate_bitwidths(models(), 0.8, tiny().harness->input_ranges(), obj);
  for (std::size_t k = 0; k < tight.bits.size(); ++k) {
    EXPECT_GE(tight.bits[k], loose.bits[k]) << "layer " << k;
  }
}

TEST(Allocator, FormatsConsistentWithDeltasAndRanges) {
  const BitwidthAllocation a = allocate_bitwidths(models(), 0.3, tiny().harness->input_ranges(),
                                                  unit_objective(models().size()));
  for (std::size_t k = 0; k < a.formats.size(); ++k) {
    // The derived format's worst-case error must not exceed requested Delta.
    EXPECT_LE(a.formats[k].delta(), a.deltas[k] * (1.0 + 1e-9));
    EXPECT_EQ(a.formats[k].integer_bits,
              FixedPointFormat::integer_bits_for_range(tiny().harness->input_ranges()[k]));
    EXPECT_EQ(a.bits[k], a.formats[k].total_bits());
    EXPECT_GE(a.bits[k], 1);
  }
}

TEST(Allocator, ValidatedAccuracyMeetsConstraint) {
  // End-to-end: allocate under a 5% budget and verify with REAL fixed
  // point quantization of every analyzed layer's input.
  SigmaSearchConfig scfg;
  scfg.relative_accuracy_drop = 0.05;
  const SigmaSearchResult sres = search_sigma_yl(*tiny().harness, models(), scfg);
  ASSERT_GT(sres.sigma_yl, 0.0);

  const BitwidthAllocation a = allocate_bitwidths(
      models(), sres.sigma_yl, tiny().harness->input_ranges(), unit_objective(models().size()));
  const auto inject = quantization_for_formats(models(), a.formats);
  const double acc = tiny().harness->accuracy_with_injection(inject);
  // Raw allocation (no refinement loop): the integer polish spends the
  // full Eq. 6 budget, so validated accuracy can land slightly below the
  // target; the pipeline-level test asserts the strict constraint with
  // refinement enabled.
  EXPECT_GE(acc, 0.95 - 0.05);
}

TEST(Allocator, InjectionHelpersCoverAllLayers) {
  const BitwidthAllocation a = allocate_bitwidths(models(), 0.3, tiny().harness->input_ranges(),
                                                  unit_objective(models().size()));
  EXPECT_EQ(injection_for_formats(models(), a.formats).size(), models().size());
  EXPECT_EQ(quantization_for_formats(models(), a.formats).size(), models().size());
}

TEST(FormatsForBits, DerivesIntegerPartFromRange) {
  const std::vector<double> ranges = {161.0, 1.0};
  const std::vector<int> bits = {9, 6};
  const auto fmts = formats_for_bits(ranges, bits);
  EXPECT_EQ(fmts[0].integer_bits, 9);
  EXPECT_EQ(fmts[0].fraction_bits, 0);
  EXPECT_EQ(fmts[1].integer_bits, 1);
  EXPECT_EQ(fmts[1].fraction_bits, 5);
}

}  // namespace
}  // namespace mupod
