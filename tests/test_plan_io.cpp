#include "io/plan_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>

namespace mupod {
namespace {

PlanStore sample_store() {
  PlanStore store;
  PlanRecord a;
  a.net_hash = 0x1234abcd5678ef01ull;
  a.config_digest = 0xfeedface0badc0deull;
  a.network = "tiny";
  a.accuracy_target = 0.01;
  a.objective = "input_bits";
  a.solver = "sqp";
  a.sigma_searched = 0.25;
  a.sigma_used = 0.1625;
  a.validated_accuracy = 0.9921875;
  a.accuracy_loss = 0.0078125;
  a.objective_cost = 7936;
  a.refinements = 1;
  a.formats = {{3, 4}, {2, 5}, {4, 2}, {1, 9}};

  PlanRecord b;
  b.net_hash = a.net_hash;
  b.config_digest = a.config_digest;
  b.network = "tiny";
  b.accuracy_target = 0.05;
  b.objective = "mac_energy";
  b.solver = "closed_form";
  b.sigma_searched = 0.7;
  b.sigma_used = 0.7;
  b.validated_accuracy = 0.953125;
  b.accuracy_loss = 0.046875;
  b.objective_cost = 831680;
  b.refinements = 0;
  b.formats = {{3, 1}, {2, 2}, {4, -1}, {1, 5}};

  store.plans = {a, b};
  return store;
}

TEST(PlanIo, RoundTripPreservesEverything) {
  const PlanStore a = sample_store();
  const PlanStore b = parse_plan_store(serialize_plan_store(a));
  ASSERT_EQ(b.plans.size(), a.plans.size());
  for (std::size_t i = 0; i < a.plans.size(); ++i) {
    const PlanRecord& pa = a.plans[i];
    const PlanRecord& pb = b.plans[i];
    EXPECT_EQ(pb.net_hash, pa.net_hash);
    EXPECT_EQ(pb.config_digest, pa.config_digest);
    EXPECT_EQ(pb.network, pa.network);
    EXPECT_DOUBLE_EQ(pb.accuracy_target, pa.accuracy_target);
    EXPECT_EQ(pb.objective, pa.objective);
    EXPECT_EQ(pb.solver, pa.solver);
    EXPECT_DOUBLE_EQ(pb.sigma_searched, pa.sigma_searched);
    EXPECT_DOUBLE_EQ(pb.sigma_used, pa.sigma_used);
    EXPECT_DOUBLE_EQ(pb.validated_accuracy, pa.validated_accuracy);
    EXPECT_DOUBLE_EQ(pb.accuracy_loss, pa.accuracy_loss);
    EXPECT_DOUBLE_EQ(pb.objective_cost, pa.objective_cost);
    EXPECT_EQ(pb.refinements, pa.refinements);
    ASSERT_EQ(pb.formats.size(), pa.formats.size());
    for (std::size_t k = 0; k < pa.formats.size(); ++k) {
      EXPECT_EQ(pb.formats[k].integer_bits, pa.formats[k].integer_bits);
      EXPECT_EQ(pb.formats[k].fraction_bits, pa.formats[k].fraction_bits);
    }
  }
}

TEST(PlanIo, TotalBitsSumsFormats) {
  const PlanStore store = sample_store();
  const PlanRecord& p = store.plans[0];
  const std::vector<int> bits = p.total_bits();
  ASSERT_EQ(bits.size(), p.formats.size());
  for (std::size_t k = 0; k < bits.size(); ++k)
    EXPECT_EQ(bits[k], p.formats[k].total_bits());
}

TEST(PlanIo, EmptyStoreRoundTrips) {
  const PlanStore b = parse_plan_store(serialize_plan_store(PlanStore{}));
  EXPECT_TRUE(b.plans.empty());
}

TEST(PlanIo, FileRoundTrip) {
  const std::string path = std::string(::testing::TempDir()) + "/plans.txt";
  ASSERT_TRUE(save_plan_store(path, sample_store()));
  const PlanStore loaded = load_plan_store(path);
  EXPECT_EQ(loaded.plans.size(), 2u);
  std::remove(path.c_str());
}

TEST(PlanIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_plan_store(""), std::runtime_error);
  EXPECT_THROW(parse_plan_store("not a plan store\n"), std::runtime_error);
  EXPECT_THROW(parse_plan_store("mupod-plans v1\nbogus tag\nend 0 0\n"), std::runtime_error);
  // fmt without an owning plan.
  EXPECT_THROW(parse_plan_store("mupod-plans v1\nfmt 3 4\nend 0 1\n"), std::runtime_error);
  // Non-finite values.
  EXPECT_THROW(
      parse_plan_store("mupod-plans v1\n"
                       "plan 1 2 n nan input sqp 0.1 0.1 0.9 0.1 10 0 0\n"
                       "end 1 0\n"),
      std::runtime_error);
  // Format bits out of any plausible range.
  EXPECT_THROW(
      parse_plan_store("mupod-plans v1\n"
                       "plan 1 2 n 0.01 input sqp 0.1 0.1 0.9 0.1 10 0 1\n"
                       "fmt 9999 0\n"
                       "end 1 1\n"),
      std::runtime_error);
  // Implausible layer count (guards against allocating from a hostile file).
  EXPECT_THROW(
      parse_plan_store("mupod-plans v1\n"
                       "plan 1 2 n 0.01 input sqp 0.1 0.1 0.9 0.1 10 0 99999999\n"
                       "end 1 0\n"),
      std::runtime_error);
  EXPECT_THROW(load_plan_store("/nonexistent/plans.txt"), std::runtime_error);
}

TEST(PlanIo, RejectsCountMismatches) {
  // A plan declaring more fmt lines than it provides.
  EXPECT_THROW(
      parse_plan_store("mupod-plans v1\n"
                       "plan 1 2 n 0.01 input sqp 0.1 0.1 0.9 0.1 10 0 2\n"
                       "fmt 3 4\n"
                       "end 1 1\n"),
      std::runtime_error);
  // An end marker whose totals disagree with the parsed content.
  EXPECT_THROW(
      parse_plan_store("mupod-plans v1\n"
                       "plan 1 2 n 0.01 input sqp 0.1 0.1 0.9 0.1 10 0 1\n"
                       "fmt 3 4\n"
                       "end 2 1\n"),
      std::runtime_error);
}

TEST(PlanIoProperty, TruncationAtEveryByteIsDetected) {
  const std::string text = serialize_plan_store(sample_store());
  ASSERT_GT(text.size(), 50u);
  // Same property as profile_io v2: any prefix losing more than the final
  // newline must throw — the end marker makes silent shrinkage impossible.
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    EXPECT_THROW(parse_plan_store(text.substr(0, len)), std::runtime_error)
        << "prefix of " << len << " bytes parsed as a valid plan store";
  }
}

TEST(PlanIoProperty, RandomByteCorruptionNeverCrashesOrHalfParses) {
  const std::string text = serialize_plan_store(sample_store());
  std::mt19937 rng(20260806u);
  std::uniform_int_distribution<std::size_t> pos_dist(0, text.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> count_dist(1, 8);

  for (int iter = 0; iter < 200; ++iter) {
    std::string corrupted = text;
    const int flips = count_dist(rng);
    for (int c = 0; c < flips; ++c)
      corrupted[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    try {
      const PlanStore s = parse_plan_store(corrupted);
      // If it parses, every plan must be structurally sound.
      for (const PlanRecord& p : s.plans) {
        EXPECT_TRUE(std::isfinite(p.accuracy_target));
        EXPECT_TRUE(std::isfinite(p.sigma_used));
        for (const FixedPointFormat& f : p.formats) {
          EXPECT_LE(f.integer_bits, 64);
          EXPECT_GE(f.fraction_bits, -64);
        }
      }
    } catch (const std::runtime_error& e) {
      EXPECT_GT(std::strlen(e.what()), 10u);
    }
  }
}

TEST(PlanIoProperty, ErrorsNameLineNumberAndContent) {
  const std::string bad =
      "mupod-plans v1\n"
      "plan GARBAGE\n"
      "end 0 0\n";
  try {
    parse_plan_store(bad);
    FAIL() << "expected parse_plan_store to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("plan GARBAGE"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace mupod
