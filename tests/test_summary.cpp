#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mupod {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 3 + 1;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(MeanStd, Spans) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(1.25), 1e-12);
}

}  // namespace
}  // namespace mupod
