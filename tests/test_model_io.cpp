#include "io/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "zoo/zoo.hpp"

namespace mupod {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ModelIo, RoundTripPreservesForward) {
  ZooOptions opts;
  opts.calibration_images = 4;
  ZooModel a = build_tiny_cnn(opts);
  const std::string path = temp_path("weights_roundtrip.bin");
  ASSERT_TRUE(save_weights(a.net, path));

  // Same topology, different weights.
  ZooOptions other = opts;
  other.seed = opts.seed + 1;
  ZooModel b = build_tiny_cnn(other);

  Tensor x(Shape({2, 3, 16, 16}), 0.3f);
  const Tensor ya = a.net.forward(x);
  EXPECT_GT(max_abs_diff(ya, b.net.forward(x)), 0.0);

  load_weights(b.net, path);
  EXPECT_DOUBLE_EQ(max_abs_diff(ya, b.net.forward(x)), 0.0);
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
  ZooOptions opts;
  opts.calibration_images = 0;
  ZooModel m = build_tiny_cnn(opts);
  EXPECT_THROW(load_weights(m.net, "/nonexistent/dir/weights.bin"), std::runtime_error);
}

TEST(ModelIo, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a weights file";
  }
  ZooOptions opts;
  opts.calibration_images = 0;
  ZooModel m = build_tiny_cnn(opts);
  EXPECT_THROW(load_weights(m.net, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsTopologyMismatch) {
  ZooOptions opts;
  opts.calibration_images = 0;
  ZooModel tiny_model = build_tiny_cnn(opts);
  const std::string path = temp_path("tiny_weights.bin");
  ASSERT_TRUE(save_weights(tiny_model.net, path));

  ZooModel nin_model = build_nin(opts);
  EXPECT_THROW(load_weights(nin_model.net, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsTruncatedFile) {
  ZooOptions opts;
  opts.calibration_images = 0;
  ZooModel m = build_tiny_cnn(opts);
  const std::string path = temp_path("trunc.bin");
  ASSERT_TRUE(save_weights(m.net, path));
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string half(static_cast<std::size_t>(size) / 2, '\0');
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << half;
  }
  EXPECT_THROW(load_weights(m.net, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mupod
