// InferenceServer battery: batch policy fake-clock walks, size/timeout/
// drain flush behaviour, deadline semantics at each lifecycle point,
// admission control, shutdown draining, bit-determinism of batched rows,
// integer-backend serving, plan hot-swap under load, seeded chaos, and the
// ServerStats <-> infer.* metrics symmetry contract. Runs in the
// `sanitize` ctest label so the TSan lane exercises the batcher thread,
// the shared-mutex registry, and concurrent submitters for real.
#include "infer/server.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/clock.hpp"
#include "core/fault.hpp"
#include "data/synthetic.hpp"
#include "infer/batch_policy.hpp"
#include "obs/metrics.hpp"
#include "tensor/parallel.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct InferFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
};

const InferFixture& fixture() {
  static InferFixture* f = [] {
    auto* fx = new InferFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 404;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    zo.head_images = 0;  // serving tests need determinism, not margins
    fx->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    fx->dataset = std::make_unique<SyntheticImageDataset>(dc);
    return fx;
  }();
  return *f;
}

Tensor image(int i) {
  Tensor t(Shape({1, 3, 16, 16}));
  fixture().dataset->render_image(i, t, 0);
  return t;
}

std::vector<FixedPointFormat> uniform_formats(int n, int integer_bits, int fraction_bits) {
  return std::vector<FixedPointFormat>(static_cast<std::size_t>(n),
                                       FixedPointFormat{integer_bits, fraction_bits});
}

// --- BatchPolicy: pure decisions on an explicit clock ----------------------

TEST(BatchPolicy, EmptyQueueNeverFlushes) {
  BatchPolicy p({.max_batch = 4, .max_wait_us = 100});
  const BatchDecision d = p.decide(0, 0, 999999, /*draining=*/true);
  EXPECT_FALSE(d.flush);
  EXPECT_EQ(d.trigger, BatchTrigger::kNone);
}

TEST(BatchPolicy, SizeFlushFiresAtCapRegardlessOfAge) {
  BatchPolicy p({.max_batch = 4, .max_wait_us = 1000});
  const BatchDecision d = p.decide(4, /*oldest=*/100, /*now=*/100, false);
  EXPECT_TRUE(d.flush);
  EXPECT_EQ(d.trigger, BatchTrigger::kSize);
  // Above cap too (collector trims to max_batch).
  EXPECT_EQ(p.decide(9, 100, 100, false).trigger, BatchTrigger::kSize);
}

TEST(BatchPolicy, TimeoutFlushWalksTheClock) {
  BatchPolicy p({.max_batch = 8, .max_wait_us = 1000});
  // Oldest request enqueued at t=500: no flush until t=1500, and the
  // decision reports exactly that due time as the cv wait target.
  BatchDecision d = p.decide(3, 500, 600, false);
  EXPECT_FALSE(d.flush);
  EXPECT_EQ(d.flush_due_us, 1500);
  d = p.decide(3, 500, 1499, false);
  EXPECT_FALSE(d.flush);
  d = p.decide(3, 500, 1500, false);
  EXPECT_TRUE(d.flush);
  EXPECT_EQ(d.trigger, BatchTrigger::kTimeout);
}

TEST(BatchPolicy, DrainFlushesAnyDepthImmediately) {
  BatchPolicy p({.max_batch = 8, .max_wait_us = 1000000});
  const BatchDecision d = p.decide(1, /*oldest=*/0, /*now=*/0, /*draining=*/true);
  EXPECT_TRUE(d.flush);
  EXPECT_EQ(d.trigger, BatchTrigger::kDrain);
  // Size still wins over drain (a full batch is a full batch).
  EXPECT_EQ(p.decide(8, 0, 0, true).trigger, BatchTrigger::kSize);
}

TEST(BatchPolicy, ClampsDegenerateConfig) {
  BatchPolicy p({.max_batch = 0, .max_wait_us = -5});
  EXPECT_EQ(p.config().max_batch, 1);
  EXPECT_EQ(p.config().max_wait_us, 0);
  // max_batch 1 degenerates to no batching: every request size-flushes.
  EXPECT_EQ(p.decide(1, 0, 0, false).trigger, BatchTrigger::kSize);
}

TEST(BatchPolicy, TriggerNamesAreStable) {
  EXPECT_STREQ(batch_trigger_name(BatchTrigger::kNone), "none");
  EXPECT_STREQ(batch_trigger_name(BatchTrigger::kSize), "size");
  EXPECT_STREQ(batch_trigger_name(BatchTrigger::kTimeout), "timeout");
  EXPECT_STREQ(batch_trigger_name(BatchTrigger::kDrain), "drain");
}

// --- Server: batching ------------------------------------------------------

TEST(InferenceServer, CoalescesQueuedRequestsIntoOneSizeFlushedBatch) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 1000000;  // only a size flush can cut this batch
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);

  // Queue up exactly max_batch requests before the batcher exists, so the
  // first decision sees depth == cap: one deterministic size flush.
  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit(image(i)));
  server.start();
  for (auto& fu : futs) {
    const InferenceResult r = fu.get();
    EXPECT_EQ(r.status, InferStatus::kOk) << r.error;
    EXPECT_EQ(r.trigger, BatchTrigger::kSize);
    EXPECT_EQ(r.batch_rows, 8);
    EXPECT_EQ(static_cast<int>(r.logits.size()), f.model.num_classes);
    EXPECT_GE(r.predicted, 0);
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 8);
  EXPECT_EQ(s.completed, 8);
  EXPECT_EQ(s.batches, 1);
  EXPECT_EQ(s.rows, 8);
  EXPECT_EQ(s.size_flushes, 1);
  EXPECT_EQ(s.timeout_flushes, 0);
}

TEST(InferenceServer, FlushesByTimeoutBelowTheSizeCap) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 2000;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);
  server.start();

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(server.submit(image(i)));
  int rows_served = 0;
  for (auto& fu : futs) {
    const InferenceResult r = fu.get();
    EXPECT_EQ(r.status, InferStatus::kOk) << r.error;
    // Never a size flush (3 < 8); the oldest request aged out instead.
    EXPECT_EQ(r.trigger, BatchTrigger::kTimeout);
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 3);
  EXPECT_EQ(s.rows, 3);
  EXPECT_GE(s.timeout_flushes, 1);
  EXPECT_EQ(s.size_flushes, 0);
  rows_served = static_cast<int>(s.rows);
  EXPECT_EQ(rows_served, 3);
}

// --- Server: deadlines -----------------------------------------------------

TEST(InferenceServer, RejectsInfeasibleDeadlinesAtSubmit) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.min_service_us = 1000;
  InferenceServer server(cfg);  // never started: rejection is submit-side
  server.register_model("tiny", f.model.net, f.model.analyzed);

  InferOptions below_floor;
  below_floor.deadline_us = 500;
  InferenceResult r = server.submit(image(0), below_floor).get();
  EXPECT_EQ(r.status, InferStatus::kRejectedDeadline);
  EXPECT_TRUE(r.logits.empty());
  EXPECT_EQ(r.predicted, -1);

  InferOptions negative;
  negative.deadline_us = -1;
  r = server.submit(image(0), negative).get();
  EXPECT_EQ(r.status, InferStatus::kRejectedDeadline);

  // At the floor is feasible: it queues instead of shedding.
  InferOptions at_floor;
  at_floor.deadline_us = 1000;
  auto fu = server.submit(image(0), at_floor);
  EXPECT_EQ(server.queue_depth(), 1);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 3);
  EXPECT_EQ(s.rejected_deadline, 2);
  server.stop();  // resolves the queued request kShutdown
  EXPECT_EQ(fu.get().status, InferStatus::kShutdown);
}

TEST(InferenceServer, DeadlineExpiredInQueueIsNeverExecuted) {
  const InferFixture& f = fixture();
  InferenceServer server;
  server.register_model("tiny", f.model.net, f.model.analyzed);

  // Enqueue with a 1ms deadline while no batcher is running, let it
  // expire, then start: the collector diagnoses it without paying the
  // forward.
  InferOptions opts;
  opts.deadline_us = 1000;
  auto fu = server.submit(image(0), opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.start();
  const InferenceResult r = fu.get();
  EXPECT_EQ(r.status, InferStatus::kExpiredInQueue);
  EXPECT_TRUE(r.logits.empty());
  EXPECT_EQ(r.batch_rows, 0);  // rode no batch
  EXPECT_GT(r.queue_us, 0);
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.expired_in_queue, 1);
  EXPECT_EQ(s.batches, 0);
}

TEST(InferenceServer, DeadlineExceededDuringExecutionStillDeliversLogits) {
  const InferFixture& f = fixture();
  FaultInjector faults;
  FaultSchedule slow;
  slow.kind = FaultKind::kDelay;
  slow.delay_us = 300000;  // the forward takes 300ms...
  slow.last_call = 0;      // ...once
  faults.arm("infer.forward", slow);

  InferenceServer server;
  server.register_model("tiny", f.model.net, f.model.analyzed);
  server.set_fault_injector(&faults);
  server.start();

  InferOptions opts;
  opts.deadline_us = 100000;  // 100ms: collected in time, finished late
  const InferenceResult r = server.submit(image(0), opts).get();
  server.stop();

  EXPECT_EQ(r.status, InferStatus::kDeadlineExceeded);
  // Late data is still data: the caller decides whether to use it.
  EXPECT_EQ(static_cast<int>(r.logits.size()), f.model.num_classes);
  EXPECT_GE(r.predicted, 0);
  EXPECT_GE(r.run_us, 200000);
  EXPECT_EQ(server.stats().deadline_exceeded, 1);
  EXPECT_EQ(faults.fired("infer.forward"), 1);
}

// --- Server: admission control ---------------------------------------------

TEST(InferenceServer, ShedsOnFullQueueThenServesTheAdmitted) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.max_queue = 2;
  cfg.batch.max_wait_us = 0;  // flush as soon as the batcher sees work
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);

  auto f1 = server.submit(image(0));
  auto f2 = server.submit(image(1));
  auto f3 = server.submit(image(2));  // bounced: queue holds 2

  const InferenceResult r3 = f3.get();  // resolved without a batcher
  EXPECT_EQ(r3.status, InferStatus::kRejectedQueueFull);
  EXPECT_EQ(r3.error, "queue full");

  server.start();
  EXPECT_EQ(f1.get().status, InferStatus::kOk);
  EXPECT_EQ(f2.get().status, InferStatus::kOk);
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.rejected_queue_full, 1);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.resolved(), s.submitted);
}

// --- Server: shutdown ------------------------------------------------------

TEST(InferenceServer, StopDrainsQueuedRequestsToCompletion) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 1000000;  // only the drain can cut this batch
  cfg.drain_on_stop = true;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);
  server.start();

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(server.submit(image(i)));
  server.stop();  // returns only after every future resolved
  for (auto& fu : futs) {
    const InferenceResult r = fu.get();
    EXPECT_EQ(r.status, InferStatus::kOk) << r.error;
    EXPECT_EQ(r.trigger, BatchTrigger::kDrain);
  }
  EXPECT_EQ(server.stats().drain_flushes, 1);
  EXPECT_EQ(server.stats().shutdown_unserved, 0);
}

TEST(InferenceServer, StopWithoutDrainResolvesShutdownExplicitly) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.drain_on_stop = false;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);

  auto f1 = server.submit(image(0));
  auto f2 = server.submit(image(1));
  server.stop();
  EXPECT_EQ(f1.get().status, InferStatus::kShutdown);
  EXPECT_EQ(f2.get().status, InferStatus::kShutdown);

  // Submitting after stop fast-fails; a promise is never left dangling.
  const InferenceResult late = server.submit(image(2)).get();
  EXPECT_EQ(late.status, InferStatus::kShutdown);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.shutdown_unserved, 3);
  EXPECT_EQ(s.resolved(), s.submitted);
}

// --- Server: request validation --------------------------------------------

TEST(InferenceServer, UnknownModelAndBadGeometryFailBeforeTheQueue) {
  const InferFixture& f = fixture();
  InferenceServer server;
  server.register_model("tiny", f.model.net, f.model.analyzed);

  InferOptions wrong_model;
  wrong_model.model = "resnet9000";
  InferenceResult r = server.submit(image(0), wrong_model).get();
  EXPECT_EQ(r.status, InferStatus::kError);
  EXPECT_NE(r.error.find("unknown model"), std::string::npos);

  Tensor bad(Shape({1, 3, 8, 8}));
  r = server.submit(std::move(bad), {}).get();
  EXPECT_EQ(r.status, InferStatus::kError);
  EXPECT_NE(r.error.find("does not match"), std::string::npos);

  // A (C, H, W) image is accepted and reshaped to (1, C, H, W).
  Tensor chw = image(0);
  chw.reshape(Shape({3, 16, 16}));
  auto fu = server.submit(std::move(chw));
  EXPECT_EQ(server.queue_depth(), 1);
  server.stop();
  EXPECT_EQ(fu.get().status, InferStatus::kShutdown);
  EXPECT_EQ(server.stats().errors, 2);
}

// --- Determinism: batched rows == one-at-a-time forwards --------------------

TEST(InferenceServer, BatchedRowsAreByteIdenticalToSequentialForwards) {
  const InferFixture& f = fixture();
  for (const int workers : {1, 2, 4}) {
    set_parallel_worker_count(workers);
    InferenceServerConfig cfg;
    cfg.batch.max_batch = 8;
    cfg.batch.max_wait_us = 1000000;
    InferenceServer server(cfg);
    server.register_model("tiny", f.model.net, f.model.analyzed);

    std::vector<std::future<InferenceResult>> futs;
    for (int i = 0; i < 8; ++i) futs.push_back(server.submit(image(i)));
    server.start();  // depth == cap: one 8-row batch
    for (int i = 0; i < 8; ++i) {
      const InferenceResult r = futs[static_cast<std::size_t>(i)].get();
      ASSERT_EQ(r.status, InferStatus::kOk) << r.error;
      ASSERT_EQ(r.batch_rows, 8);
      const Tensor solo = f.model.net.forward(image(i));
      ASSERT_EQ(static_cast<std::int64_t>(r.logits.size()), solo.numel());
      // memcmp, not EXPECT_FLOAT_EQ: the GEMM determinism contract is
      // bitwise per (image, group), independent of batch decomposition
      // and worker count.
      EXPECT_EQ(std::memcmp(r.logits.data(), solo.data(),
                            r.logits.size() * sizeof(float)),
                0)
          << "row " << i << " diverged at " << workers << " workers";
    }
    server.stop();
  }
  set_parallel_worker_count(0);
}

// --- Integer backend --------------------------------------------------------

TEST(InferenceServer, IntegerBackendRequiresAnInstalledPlan) {
  const InferFixture& f = fixture();
  InferenceServer server;
  server.register_model("tiny", f.model.net, f.model.analyzed);
  server.start();
  InferOptions opts;
  opts.backend = InferBackend::kInteger;
  const InferenceResult r = server.submit(image(0), opts).get();
  EXPECT_EQ(r.status, InferStatus::kError);
  EXPECT_NE(r.error.find("no integer plan"), std::string::npos);
  server.stop();
}

TEST(InferenceServer, IntegerBatchesMatchDirectQuantizedNetworkBitwise) {
  const InferFixture& f = fixture();
  const auto formats = uniform_formats(static_cast<int>(f.model.analyzed.size()), 8, 8);
  QExecOptions qopts;
  const QuantizedNetwork direct(f.model.net, f.model.analyzed, formats, qopts);

  InferenceServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 1000000;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);
  EXPECT_EQ(server.plan_version("tiny"), 0u);
  EXPECT_EQ(server.install_plan("tiny", formats, qopts), 1u);
  EXPECT_EQ(server.plan_version("tiny"), 1u);

  std::vector<std::future<InferenceResult>> futs;
  InferOptions opts;
  opts.backend = InferBackend::kInteger;
  for (int i = 0; i < 4; ++i) futs.push_back(server.submit(image(i), opts));
  server.start();
  for (int i = 0; i < 4; ++i) {
    const InferenceResult r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, InferStatus::kOk) << r.error;
    EXPECT_EQ(r.backend, InferBackend::kInteger);
    EXPECT_EQ(r.plan_version, 1u);
    const Tensor solo = direct.forward(image(i));
    ASSERT_EQ(static_cast<std::int64_t>(r.logits.size()), solo.numel());
    EXPECT_EQ(std::memcmp(r.logits.data(), solo.data(), r.logits.size() * sizeof(float)), 0)
        << "integer row " << i << " diverged from the directly lowered plan";
  }
  server.stop();
}

// --- Hot swap under load (the TSan lane earns its keep here) ----------------

TEST(InferenceServer, PlanHotSwapNeverStallsOrCorruptsServing) {
  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 200;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);
  const int n_fmt = static_cast<int>(f.model.analyzed.size());
  server.install_plan("tiny", uniform_formats(n_fmt, 8, 8));
  server.start();

  // Client thread hammers both backends while the main thread swaps plans.
  constexpr int kRequests = 60;
  std::vector<std::future<InferenceResult>> futs(kRequests);
  std::thread client([&] {
    for (int i = 0; i < kRequests; ++i) {
      InferOptions opts;
      opts.backend = (i % 2 == 0) ? InferBackend::kFloat : InferBackend::kInteger;
      futs[static_cast<std::size_t>(i)] = server.submit(image(i % 8), opts);
    }
  });
  for (int swap = 0; swap < 4; ++swap)
    server.install_plan("tiny", uniform_formats(n_fmt, 8, 8 + swap));
  client.join();

  for (auto& fu : futs) {
    const InferenceResult r = fu.get();
    EXPECT_EQ(r.status, InferStatus::kOk) << r.error;
    if (r.backend == InferBackend::kInteger) {
      // Every integer row was served under exactly one installed version.
      EXPECT_GE(r.plan_version, 1u);
      EXPECT_LE(r.plan_version, 5u);
    }
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.plan_swaps, 5);
  EXPECT_EQ(s.completed, kRequests);
  EXPECT_EQ(s.resolved(), s.submitted);
}

// --- Seeded chaos -----------------------------------------------------------

TEST(InferenceServer, SeededDelayChaosKeepsEveryPromiseAccounted) {
  const InferFixture& f = fixture();
  FaultInjector faults;
  FaultSchedule chaos;
  chaos.kind = FaultKind::kDelay;
  chaos.delay_us = 2000;
  chaos.probability = 0.5;  // pre-committed coin flips: deterministic set
  chaos.seed = 7;
  faults.arm("infer.forward", chaos);

  InferenceServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 300;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);
  server.set_fault_injector(&faults);
  server.start();

  constexpr int kRequests = 32;
  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < kRequests; ++i) {
    InferOptions opts;
    // A third of the requests carry a deadline tight enough that a delayed
    // batch pushes them over: chaos turns into diagnosed statuses, never
    // hangs or broken promises.
    if (i % 3 == 0) opts.deadline_us = 1500;
    futs.push_back(server.submit(image(i % 8), opts));
  }
  for (auto& fu : futs) {
    const InferenceResult r = fu.get();
    EXPECT_TRUE(r.status == InferStatus::kOk || r.status == InferStatus::kDeadlineExceeded ||
                r.status == InferStatus::kExpiredInQueue)
        << infer_status_name(r.status) << ": " << r.error;
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, kRequests);
  EXPECT_EQ(s.resolved(), kRequests);
  EXPECT_GT(faults.calls("infer.forward"), 0);
}

// --- ServerStats <-> infer.* symmetry ---------------------------------------

TEST(InferenceServer, StatsMatchMetricsSnapshot) {
  // Mirror of PlanService's CacheLifecycleCountersMatchMetricsSnapshot:
  // the operator-visible infer.* family and the server's own ServerStats
  // must tell the same story, counter for counter.
  set_metrics_enabled(true);
  metrics().reset();

  const InferFixture& f = fixture();
  InferenceServerConfig cfg;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 500;
  cfg.max_queue = 5;
  cfg.min_service_us = 1000;
  cfg.drain_on_stop = false;
  InferenceServer server(cfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);

  // Unstarted phase: fill the queue (4 plain + 1 that will expire), then
  // trip every submit-side shed path once.
  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(server.submit(image(i)));
  InferOptions expiring;
  expiring.deadline_us = 2000;
  futs.push_back(server.submit(image(4), expiring));
  InferOptions infeasible;
  infeasible.deadline_us = -1;
  futs.push_back(server.submit(image(5), infeasible));  // kRejectedDeadline
  futs.push_back(server.submit(image(6)));              // kRejectedQueueFull
  InferOptions wrong;
  wrong.model = "nope";
  futs.push_back(server.submit(image(7), wrong));  // kError

  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expire #5
  server.start();  // size flush of 4, then the expired straggler
  for (int i = 0; i < 4; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get().status,
                                        InferStatus::kOk);
  EXPECT_EQ(futs[4].get().status, InferStatus::kExpiredInQueue);

  // Timeout flush + a plan swap + an integer request.
  server.install_plan("tiny",
                      uniform_formats(static_cast<int>(f.model.analyzed.size()), 8, 8));
  InferOptions integer;
  integer.backend = InferBackend::kInteger;
  EXPECT_EQ(server.submit(image(0), integer).get().status, InferStatus::kOk);

  server.stop();
  EXPECT_EQ(server.submit(image(1)).get().status, InferStatus::kShutdown);

  const ServerStats s = server.stats();
  const MetricsSnapshot snap = metrics().snapshot();
  set_metrics_enabled(false);

  EXPECT_EQ(s.resolved(), s.submitted);
  EXPECT_EQ(snap.counter("infer.requests.submitted"), s.submitted);
  EXPECT_EQ(snap.counter("infer.requests.ok"), s.completed);
  EXPECT_EQ(snap.counter("infer.requests.failed"), s.errors);
  EXPECT_EQ(snap.counter("infer.requests.shutdown"), s.shutdown_unserved);
  EXPECT_EQ(snap.counter("infer.admission.rejected"), s.rejected_queue_full);
  EXPECT_EQ(snap.counter("infer.deadline.rejected"), s.rejected_deadline);
  EXPECT_EQ(snap.counter("infer.deadline.expired_queued"), s.expired_in_queue);
  EXPECT_EQ(snap.counter("infer.deadline.exceeded"), s.deadline_exceeded);
  EXPECT_EQ(snap.counter("infer.batches"), s.batches);
  EXPECT_EQ(snap.counter("infer.batch.rows"), s.rows);
  EXPECT_EQ(snap.counter("infer.batch.size_flushes"), s.size_flushes);
  EXPECT_EQ(snap.counter("infer.batch.timeout_flushes"), s.timeout_flushes);
  EXPECT_EQ(snap.counter("infer.batch.drain_flushes"), s.drain_flushes);
  EXPECT_EQ(snap.counter("infer.plan.swaps"), s.plan_swaps);

  // Spot-check the specific story this scenario told.
  EXPECT_EQ(s.completed, 5);
  EXPECT_EQ(s.rejected_deadline, 1);
  EXPECT_EQ(s.rejected_queue_full, 1);
  EXPECT_EQ(s.expired_in_queue, 1);
  EXPECT_EQ(s.errors, 1);
  EXPECT_EQ(s.shutdown_unserved, 1);
  EXPECT_EQ(s.size_flushes, 1);
  EXPECT_EQ(s.plan_swaps, 1);
}

}  // namespace
}  // namespace mupod
