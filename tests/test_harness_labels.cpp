// Tests of the label-accuracy metric mode (AccuracyMetric::kLabels) — the
// paper-faithful evaluation the experiment binaries use.
#include <gtest/gtest.h>

#include <cmath>

#include "core/harness.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct LabelFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  std::unique_ptr<AnalysisHarness> harness;
};

const LabelFixture& fixture() {
  static LabelFixture* fix = [] {
    auto* f = new LabelFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 606;
    zo.data_seed = 123;  // head trained on the same distribution
    zo.calibration_images = 8;
    f->model = build_tiny_cnn(zo);

    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 123;
    f->dataset = std::make_unique<SyntheticImageDataset>(dc);

    HarnessConfig hc;
    hc.profile_images = 16;
    hc.eval_images = 256;
    hc.metric = AccuracyMetric::kLabels;
    f->harness = std::make_unique<AnalysisHarness>(f->model.net, f->model.analyzed,
                                                   *f->dataset, hc);
    return f;
  }();
  return *fix;
}

TEST(LabelMetric, FloatAccuracyIsMeasuredNotOne) {
  const double acc = fixture().harness->float_accuracy();
  EXPECT_GT(acc, 0.3);  // head-trained tiny net beats chance (0.1) solidly
  EXPECT_LE(acc, 1.0);
}

TEST(LabelMetric, NoInjectionReproducesFloatAccuracy) {
  const AnalysisHarness& h = *fixture().harness;
  EXPECT_DOUBLE_EQ(h.accuracy_with_injection({}), h.float_accuracy());
}

TEST(LabelMetric, HugeNoiseDropsTowardChance) {
  const AnalysisHarness& h = *fixture().harness;
  std::unordered_map<int, InjectionSpec> inject;
  for (int node : h.analyzed()) inject.emplace(node, InjectionSpec::uniform(50.0));
  const double acc = h.accuracy_with_injection(inject);
  EXPECT_LT(acc, h.float_accuracy() * 0.8);
  EXPECT_GT(acc, 0.0);
}

TEST(LabelMetric, GaussianOutputDegradesGently) {
  // Unlike the agreement metric, small output noise can flip borderline
  // images in BOTH directions; accuracy must stay close to float for
  // sigma well below the logits scale.
  const AnalysisHarness& h = *fixture().harness;
  const double base = h.float_accuracy();
  const double small = h.accuracy_with_output_gaussian(0.02);
  EXPECT_NEAR(small, base, 0.05);
  const double large = h.accuracy_with_output_gaussian(10.0);
  EXPECT_LT(large, base);
}

TEST(LabelMetric, AgreementModeStillDefaultsToOne) {
  const LabelFixture& f = fixture();
  HarnessConfig hc;
  hc.profile_images = 8;
  hc.eval_images = 64;
  hc.metric = AccuracyMetric::kAgreement;
  AnalysisHarness agree(f.model.net, f.model.analyzed, *f.dataset, hc);
  EXPECT_DOUBLE_EQ(agree.float_accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(agree.accuracy_with_injection({}), 1.0);
}

TEST(LabelMetric, SingleInjectionBatchConsistent) {
  const AnalysisHarness& h = *fixture().harness;
  std::vector<std::pair<int, InjectionSpec>> candidates;
  candidates.emplace_back(h.analyzed()[0], InjectionSpec::uniform(0.02));
  const auto batch = h.accuracy_single_injections(candidates);
  std::unordered_map<int, InjectionSpec> one;
  one.emplace(candidates[0].first, candidates[0].second);
  EXPECT_NEAR(batch[0], h.accuracy_with_injection(one), 1e-12);
}

}  // namespace
}  // namespace mupod
