#include "hw/accelerator_sim.hpp"

#include <gtest/gtest.h>

#include "zoo/zoo.hpp"

namespace mupod {
namespace {

ZooModel small_model() {
  ZooOptions opts;
  opts.calibration_images = 0;
  return build_nin(opts);
}

std::vector<int> uniform_bits(std::size_t n, int b) { return std::vector<int>(n, b); }

TEST(AcceleratorSim, BaselinePrecisionGivesUnitSpeedup) {
  const ZooModel m = small_model();
  const AcceleratorConfig cfg = AcceleratorConfig::stripes_like();
  const auto r = simulate_network(cfg, m.net, m.analyzed,
                                  uniform_bits(m.analyzed.size(), cfg.baseline_bits), 16);
  EXPECT_NEAR(r.speedup_vs_baseline, 1.0, 1e-9);
}

TEST(AcceleratorSim, SpeedupScalesWithActivationBits) {
  // The paper's performance claim: Stripes' throughput scales ~linearly
  // with effective activation bitwidth.
  const ZooModel m = small_model();
  const AcceleratorConfig cfg = AcceleratorConfig::stripes_like();
  const auto full = simulate_network(cfg, m.net, m.analyzed,
                                     uniform_bits(m.analyzed.size(), 16), 16);
  const auto half = simulate_network(cfg, m.net, m.analyzed,
                                     uniform_bits(m.analyzed.size(), 8), 16);
  // Compute-bound layers run exactly 2x faster at half precision.
  EXPECT_NEAR(half.speedup_vs_baseline / full.speedup_vs_baseline, 2.0, 0.25);
}

TEST(AcceleratorSim, LoomBenefitsFromWeightBitsToo) {
  const ZooModel m = small_model();
  const auto loom = AcceleratorConfig::loom_like();
  const auto bits = uniform_bits(m.analyzed.size(), 8);
  const auto w16 = simulate_network(loom, m.net, m.analyzed, bits, 16);
  const auto w8 = simulate_network(loom, m.net, m.analyzed, bits, 8);
  EXPECT_LT(w8.total_cycles, w16.total_cycles);
  // Stripes is indifferent to weight bits in cycles.
  const auto stripes = AcceleratorConfig::stripes_like();
  EXPECT_DOUBLE_EQ(simulate_network(stripes, m.net, m.analyzed, bits, 16).total_cycles,
                   simulate_network(stripes, m.net, m.analyzed, bits, 8).total_cycles);
}

TEST(AcceleratorSim, PerLayerResultsAreConsistent) {
  const ZooModel m = small_model();
  const AcceleratorConfig cfg = AcceleratorConfig::stripes_like();
  std::vector<int> bits(m.analyzed.size(), 6);
  const auto r = simulate_network(cfg, m.net, m.analyzed, bits, 10);
  ASSERT_EQ(r.layers.size(), m.analyzed.size());
  double cycles = 0.0, energy = 0.0;
  for (const auto& l : r.layers) {
    EXPECT_EQ(l.cycles, std::max(l.compute_cycles, l.bandwidth_cycles));
    EXPECT_GT(l.macs, 0);
    EXPECT_GT(l.energy, 0.0);
    cycles += l.cycles;
    energy += l.energy;
  }
  EXPECT_DOUBLE_EQ(cycles, r.total_cycles);
  EXPECT_DOUBLE_EQ(energy, r.total_energy);
}

TEST(AcceleratorSim, BandwidthCeilingBindsWhenStarved) {
  const ZooModel m = small_model();
  AcceleratorConfig cfg = AcceleratorConfig::stripes_like();
  cfg.offchip_bits_per_cycle = 0.25;  // absurdly slow memory
  const auto r = simulate_network(cfg, m.net, m.analyzed,
                                  uniform_bits(m.analyzed.size(), 8), 16);
  for (const auto& l : r.layers) EXPECT_TRUE(l.bandwidth_bound);
}

TEST(AcceleratorSim, LowerBitsNeverSlower) {
  const ZooModel m = small_model();
  const AcceleratorConfig cfg = AcceleratorConfig::stripes_like();
  double prev = 1e300;
  for (int b : {16, 12, 8, 6, 4, 2}) {
    const auto r = simulate_network(cfg, m.net, m.analyzed,
                                    uniform_bits(m.analyzed.size(), b), 16);
    EXPECT_LE(r.total_cycles, prev);
    prev = r.total_cycles;
  }
}

TEST(AcceleratorSim, BitsClampedToValidRange) {
  const ZooModel m = small_model();
  const AcceleratorConfig cfg = AcceleratorConfig::stripes_like();
  std::vector<int> crazy(m.analyzed.size(), 99);
  const auto r = simulate_network(cfg, m.net, m.analyzed, crazy, 99);
  for (const auto& l : r.layers) {
    EXPECT_LE(l.activation_bits, cfg.baseline_bits);
    EXPECT_GE(l.activation_bits, 1);
  }
}

}  // namespace
}  // namespace mupod
