// Engine-level property tests, parameterized over the smaller zoo
// topologies: batch invariance, partial-forward equivalence at every
// analyzable node, and cost-metadata consistency. These are the
// invariants the paper's measurement methodology silently relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/layers.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

class NetworkProperty : public ::testing::TestWithParam<const char*> {
 protected:
  static ZooModel make() {
    ZooOptions opts;
    opts.num_classes = 16;
    opts.seed = 555;
    opts.calibration_images = 4;
    return build_model(GetParam(), opts);
  }
  static Tensor batch_for(const ZooModel& m, std::int64_t first, int n) {
    DatasetConfig dc;
    dc.num_classes = 16;
    dc.channels = m.channels;
    dc.height = m.height;
    dc.width = m.width;
    dc.seed = 777;
    return SyntheticImageDataset(dc).make_batch(first, n);
  }
};

TEST_P(NetworkProperty, BatchSplitInvariance) {
  // forward(AB) rows must equal forward(A) ++ forward(B): no cross-image
  // leakage anywhere in the engine.
  ZooModel m = make();
  const Tensor whole = batch_for(m, 0, 6);
  const Tensor first = batch_for(m, 0, 3);
  const Tensor second = batch_for(m, 3, 3);

  const Tensor y_whole = m.net.forward(whole);
  const Tensor y_first = m.net.forward(first);
  const Tensor y_second = m.net.forward(second);

  const std::int64_t row = y_whole.numel() / 6;
  for (int n = 0; n < 3; ++n) {
    for (std::int64_t c = 0; c < row; ++c) {
      EXPECT_NEAR(y_whole[n * row + c], y_first[n * row + c], 1e-4);
      EXPECT_NEAR(y_whole[(n + 3) * row + c], y_second[n * row + c], 1e-4);
    }
  }
}

TEST_P(NetworkProperty, PartialForwardEquivalentAtEveryAnalyzedNode) {
  ZooModel m = make();
  const Tensor x = batch_for(m, 10, 2);
  const std::vector<Tensor> cache = m.net.forward_all(x);
  const Tensor& exact = cache[static_cast<std::size_t>(m.net.output_node())];

  for (int node : m.analyzed) {
    std::unordered_map<int, InjectionSpec> inject;
    inject.emplace(node, InjectionSpec::uniform(0.01));
    ForwardOptions opts;
    opts.inject = &inject;
    opts.seed = 31;

    const Tensor full = m.net.forward(x, opts);
    const Tensor partial = m.net.forward_from(node, cache, opts);
    ASSERT_NEAR(max_abs_diff(full, partial), 0.0, 1e-4) << "node " << node;
    // And the injection really did something.
    EXPECT_GT(max_abs_diff(partial, exact), 0.0) << "node " << node;
  }
}

TEST_P(NetworkProperty, CostsConsistentWithShapes) {
  ZooModel m = make();
  for (int node : m.analyzed) {
    const auto& n = m.net.node(node);
    ASSERT_EQ(n.inputs.size(), 1u);
    const auto& producer = m.net.node(n.inputs[0]);
    EXPECT_EQ(n.cost.input_elems, producer.unit_shape.numel())
        << "node " << node << " " << n.name;
    EXPECT_GT(n.cost.macs, 0);
  }
}

TEST_P(NetworkProperty, LogitsFiniteUnderHeavyQuantization) {
  // Even absurdly coarse input quantization must not produce NaN/inf.
  ZooModel m = make();
  std::unordered_map<int, InjectionSpec> inject;
  for (std::size_t k = 0; k < m.analyzed.size(); ++k) {
    FixedPointFormat f{.integer_bits = 3, .fraction_bits = 0};
    inject.emplace(m.analyzed[k], InjectionSpec::quantize(f));
  }
  ForwardOptions opts;
  opts.inject = &inject;
  const Tensor y = m.net.forward(batch_for(m, 20, 2), opts);
  for (std::int64_t i = 0; i < y.numel(); ++i) ASSERT_TRUE(std::isfinite(y[i]));
}

TEST_P(NetworkProperty, RangeProfilingCoversAnalyzedInputs) {
  ZooModel m = make();
  const std::vector<double> ranges = m.net.profile_input_ranges(batch_for(m, 0, 4));
  for (int node : m.analyzed) {
    EXPECT_GT(ranges[static_cast<std::size_t>(node)], 0.0) << "node " << node;
    EXPECT_LT(ranges[static_cast<std::size_t>(node)], 1e4) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallZoo, NetworkProperty,
                         ::testing::Values("tiny", "alexnet", "nin", "squeezenet", "mobilenet"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace mupod
