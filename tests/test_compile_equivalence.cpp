// Differential equivalence battery for the graph compiler: the compiled
// artifact against the executors it replaces.
//
//   * FLOAT: compiled == Network::forward BITWISE, for every zoo model
//     and a seeded sweep of random boundary networks, across worker
//     counts and across forced-scalar vs the detected ISA. Fused
//     epilogues (ReLU, folded norm) apply the exact same float
//     expressions at the same store points, so not a single bit may move.
//   * INTEGER, elision off: compiled == QuantizedNetwork BITWISE — same
//     lowering math (lower_layer_operands), same float-carrier stores, so
//     fusing ReLU into the epilogue is invisible at the bit level.
//   * INTEGER, elision on: each fused boundary is held to the committed
//     one-quantization-step contract. Every lowered step is recomputed
//     with a naive int64 reference from the compiled network's own
//     captured inputs: carrier stores must equal apply_requant(acc)
//     EXACTLY (kernels vs naive), and must sit within one step of the
//     unfused double-rounding value (float dequant store, then
//     quantize-on-load) that the elision replaced.
//   * DETERMINISM: the compiled integer forward is byte-identical across
//     worker counts and across scalar vs detected ISA (the qgemm
//     contract, inherited).
//
// Vacuity guards: the battery asserts each fusion rule and the region
// former actually fired in the nets it checked — a refactor that silently
// stops fusing fails here, not in a benchmark three PRs later.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "compile/compiled_network.hpp"
#include "compile/graph_compiler.hpp"
#include "compile_testlib.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

using compiletest::RandomNet;
using compiletest::int8_formats;
using compiletest::make_random_net;
using compiletest::mixed_formats;
using compiletest::random_input;

ZooOptions small_zoo_options() {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 4;
  return zo;
}

std::vector<KernelIsa> isas_to_test() {
  std::vector<KernelIsa> isas = {KernelIsa::kScalar};
  if (detected_kernel_isa() != KernelIsa::kScalar) isas.push_back(detected_kernel_isa());
  return isas;
}

// RAII: restore worker count + ISA after each configuration sweep.
struct ExecConfigGuard {
  ~ExecConfigGuard() {
    set_parallel_worker_count(0);
    set_kernel_isa(detected_kernel_isa());
  }
};

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << what << ": compiled output differs bitwise";
}

// ---------------------------------------------------------------------------
// Float path: bitwise across every zoo model, worker counts, ISAs.

TEST(CompileEquivalence, FloatBitwiseAcrossZooModels) {
  ExecConfigGuard guard;
  int total_relu_fused = 0;
  for (const std::string& name : zoo_model_names()) {
    ZooModel m = build_model(name, small_zoo_options());
    const CompiledNetwork cn = GraphCompiler().compile(m.net);
    total_relu_fused += cn.coverage().relu_fused;
    const Tensor x = random_input(2, m.channels, m.height, m.width, 77);
    for (KernelIsa isa : isas_to_test()) {
      set_kernel_isa(isa);
      for (int workers : {1, 0}) {
        set_parallel_worker_count(workers);
        const Tensor ref = m.net.forward(x);
        const Tensor got = cn.forward(x);
        expect_bitwise_equal(got, ref,
                             name + " isa=" + kernel_isa_name(isa) +
                                 " workers=" + std::to_string(workers));
      }
    }
  }
  EXPECT_GT(total_relu_fused, 0) << "no zoo model fused a ReLU: battery is vacuous";
}

TEST(CompileEquivalence, FloatBitwiseAcrossRandomBoundaryNets) {
  ExecConfigGuard guard;
  FusionCoverage total;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomNet r = make_random_net(seed);
    const CompiledNetwork cn = GraphCompiler().compile(r.net);
    total.relu_fused += cn.coverage().relu_fused;
    total.norm_folded += cn.coverage().norm_folded;
    total.noops_dropped += cn.coverage().noops_dropped;
    const Tensor x = random_input(3, r.channels, r.height, r.width, 1000 + seed);
    for (int workers : {1, 0}) {
      set_parallel_worker_count(workers);
      expect_bitwise_equal(cn.forward(x), r.net.forward(x),
                           "random net seed " + std::to_string(seed) + " workers=" +
                               std::to_string(workers));
    }
  }
  // The generator must have exercised every float-path fusion rule.
  EXPECT_GT(total.relu_fused, 0);
  EXPECT_GT(total.norm_folded, 0) << "no random net folded a norm: battery is vacuous";
  EXPECT_GT(total.noops_dropped, 0) << "no random net dropped a noop: battery is vacuous";
}

// ---------------------------------------------------------------------------
// Integer path, requantize elision OFF: the compiled program must be
// bitwise identical to the unfused QuantizedNetwork — every store is
// still a float dequant store, fused ReLU applies the same expression the
// separate ReLU layer would, and the operands come from the same
// lower_layer_operands. (fold_norm changes the folded weights' w_fmt, so
// it is disabled here to keep operands identical on nets with norms.)
TEST(CompileEquivalence, IntegerUnfusedElisionOffMatchesQexecBitwise) {
  ExecConfigGuard guard;
  CompileOptions co;
  co.weight_bits = 8;
  co.elide_requant = false;
  co.fold_norm = false;
  QExecOptions qo;
  qo.weight_bits = 8;

  const auto check = [&](const Network& net, const std::vector<int>& analyzed,
                         const std::vector<FixedPointFormat>& formats, const Tensor& x,
                         const std::string& tag) {
    const CompiledNetwork cn = GraphCompiler(co).compile(net, analyzed, formats);
    const QuantizedNetwork qn(net, analyzed, formats, qo);
    for (KernelIsa isa : isas_to_test()) {
      set_kernel_isa(isa);
      for (int workers : {1, 0}) {
        set_parallel_worker_count(workers);
        expect_bitwise_equal(cn.forward(x), qn.forward(x),
                             tag + " isa=" + kernel_isa_name(isa) + " workers=" +
                                 std::to_string(workers));
      }
    }
  };

  for (const char* name : {"tiny", "nin"}) {
    ZooModel m = build_model(name, small_zoo_options());
    check(m.net, m.analyzed, mixed_formats(m.analyzed.size()),
          random_input(2, m.channels, m.height, m.width, 31), name);
  }
  for (std::uint64_t seed : {2, 5, 9}) {
    RandomNet r = make_random_net(seed);
    check(r.net, r.analyzed, mixed_formats(r.analyzed.size()),
          random_input(2, r.channels, r.height, r.width, 400 + seed),
          "random seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Integer path, elision ON: naive int64 reference per lowered step.

template <typename T>
void quantize_input(const Tensor& x, const QGrid& g, std::vector<T>* out) {
  out->resize(static_cast<std::size_t>(x.numel()));
  const double inv = 1.0 / g.step;
  const float* p = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    double q = std::nearbyint(static_cast<double>(p[i]) * inv);
    if (q > g.hi) q = g.hi;
    if (q < g.lo) q = g.lo;
    (*out)[static_cast<std::size_t>(i)] = static_cast<T>(static_cast<std::int32_t>(q));
  }
}

// Naive int64 accumulators for one lowered step from its (quantized)
// input — the ground truth both store modes are judged against.
template <typename T>
std::vector<std::int64_t> naive_accumulate(const CompiledStep& st, const std::vector<T>& xq,
                                           const Shape& in_shape, const Shape& out_shape) {
  const T* w = static_cast<const T*>(st.lw.weights_ptr());
  std::vector<std::int64_t> acc(static_cast<std::size_t>(out_shape.numel()), 0);
  if (st.layer->kind() == LayerKind::kConv) {
    const auto& cfg = static_cast<const Conv2DLayer&>(*st.layer).config();
    const int N = in_shape.n(), IC = in_shape.c(), H = in_shape.h(), W = in_shape.w();
    const int OC = out_shape.c(), OH = out_shape.h(), OW = out_shape.w();
    const int icg = IC / cfg.groups, ocg = OC / cfg.groups;
    for (int n = 0; n < N; ++n)
      for (int oc = 0; oc < OC; ++oc) {
        const int g = oc / ocg;
        for (int oh = 0; oh < OH; ++oh)
          for (int ow = 0; ow < OW; ++ow) {
            std::int64_t a = st.lw.bias.empty() ? 0 : st.lw.bias[static_cast<std::size_t>(oc)];
            for (int ic2 = 0; ic2 < icg; ++ic2) {
              const int ic = g * icg + ic2;
              for (int kh = 0; kh < cfg.kernel_h; ++kh) {
                const int ih = oh * cfg.stride - cfg.pad + kh;
                if (ih < 0 || ih >= H) continue;
                for (int kw = 0; kw < cfg.kernel_w; ++kw) {
                  const int iw = ow * cfg.stride - cfg.pad + kw;
                  if (iw < 0 || iw >= W) continue;
                  const std::int64_t xi = ((static_cast<std::int64_t>(n) * IC + ic) * H + ih) * W + iw;
                  const std::int64_t wi =
                      ((static_cast<std::int64_t>(oc) * icg + ic2) * cfg.kernel_h + kh) *
                          cfg.kernel_w + kw;
                  a += static_cast<std::int64_t>(xq[static_cast<std::size_t>(xi)]) *
                       static_cast<std::int64_t>(w[wi]);
                }
              }
            }
            acc[((static_cast<std::size_t>(n) * OC + oc) * OH + oh) * OW + ow] = a;
          }
      }
  } else {
    const auto& ip = static_cast<const InnerProductLayer&>(*st.layer);
    const int N = in_shape.n(), IF = ip.in_features(), OF = ip.out_features();
    for (int n = 0; n < N; ++n)
      for (int of = 0; of < OF; ++of) {
        std::int64_t a = st.lw.bias.empty() ? 0 : st.lw.bias[static_cast<std::size_t>(of)];
        for (int k = 0; k < IF; ++k)
          a += static_cast<std::int64_t>(xq[static_cast<std::size_t>(n) * IF + k]) *
               static_cast<std::int64_t>(w[static_cast<std::int64_t>(of) * IF + k]);
        acc[static_cast<std::size_t>(n) * OF + of] = a;
      }
  }
  return acc;
}

struct BoundaryStats {
  std::int64_t boundary_elems = 0;  // carrier elements checked at elided edges
  std::int64_t float_elems = 0;     // float store elements checked
  int quant_store_steps = 0;
};

template <typename T>
void verify_lowered_step(const CompiledNetwork& cn, int si, const std::vector<Tensor>& cap,
                         const Tensor& input, BoundaryStats* stats) {
  const CompiledStep& st = cn.steps()[static_cast<std::size_t>(si)];
  ASSERT_EQ(st.inputs.size(), 1u);
  const int pi = st.inputs[0];
  const CompiledStep& producer = cn.steps()[static_cast<std::size_t>(pi)];
  const Tensor& in_t = cap[static_cast<std::size_t>(pi)];
  const Tensor& out_t = cap[static_cast<std::size_t>(si)];

  const QGrid ag = qgrid_for(st.lw.act_fmt);
  const QGrid wg = qgrid_for(st.lw.w_fmt);
  const double acc_scale = ag.step * wg.step;

  std::vector<T> xq;
  if (st.in_quantized) {
    // The producer stored carrier integers already on THIS step's grid.
    ASSERT_TRUE(producer.quant_store);
    const T* c = reinterpret_cast<const T*>(in_t.data());
    xq.assign(c, c + in_t.numel());
  } else {
    quantize_input<T>(in_t, ag, &xq);
  }
  (void)input;

  const std::vector<std::int64_t> acc = naive_accumulate<T>(st, xq, in_t.shape(), out_t.shape());

  if (st.quant_store) {
    ++stats->quant_store_steps;
    const T* got = reinterpret_cast<const T*>(out_t.data());
    for (std::int64_t i = 0; i < out_t.numel(); ++i) {
      const std::int64_t a = acc[static_cast<std::size_t>(i)];
      // Exact contract: the kernel's carrier store IS apply_requant(acc).
      std::int32_t q = apply_requant(a, st.store_requant);
      if (st.relu && q < 0) q = 0;
      if (q > st.store_grid.hi) q = st.store_grid.hi;
      if (q < st.store_grid.lo) q = st.store_grid.lo;
      ASSERT_EQ(static_cast<std::int32_t>(got[i]), q)
          << "step " << si << " elem " << i << ": carrier store != requant(naive acc)";
      // One-step contract vs the unfused double rounding this elision
      // replaced: float dequant store, then quantize-on-load.
      float y = static_cast<float>(static_cast<double>(a) * acc_scale);
      if (st.relu) y = y > 0.0f ? y : 0.0f;
      double qdd = std::nearbyint(static_cast<double>(y) / st.store_grid.step);
      if (qdd > st.store_grid.hi) qdd = st.store_grid.hi;
      if (qdd < st.store_grid.lo) qdd = st.store_grid.lo;
      ASSERT_LE(std::abs(q - static_cast<std::int32_t>(qdd)), 1)
          << "step " << si << " elem " << i
          << ": fused requantize more than one step from the unfused value";
      ++stats->boundary_elems;
    }
  } else {
    const float* got = out_t.data();
    for (std::int64_t i = 0; i < out_t.numel(); ++i) {
      float y = static_cast<float>(static_cast<double>(acc[static_cast<std::size_t>(i)]) *
                                   acc_scale);
      if (st.relu) y = y > 0.0f ? y : 0.0f;
      ASSERT_EQ(got[i], y) << "step " << si << " elem " << i
                           << ": float dequant store != naive reference";
      ++stats->float_elems;
    }
  }
}

TEST(CompileEquivalence, ElidedBoundariesWithinOneQuantStep) {
  ExecConfigGuard guard;
  CompileOptions co;
  co.weight_bits = 8;
  BoundaryStats stats;

  const auto check_net = [&](const Network& net, const std::vector<int>& analyzed,
                             const std::vector<FixedPointFormat>& formats, const Tensor& x) {
    const CompiledNetwork cn = GraphCompiler(co).compile(net, analyzed, formats);
    std::vector<Tensor> cap;
    const Tensor out = cn.forward_captured(x, &cap);
    (void)out;
    for (int si = 0; si < static_cast<int>(cn.steps().size()); ++si) {
      const CompiledStep& st = cn.steps()[static_cast<std::size_t>(si)];
      if (!st.lowered) continue;
      switch (st.lw.type) {
        case QType::kInt8: verify_lowered_step<std::int8_t>(cn, si, cap, x, &stats); break;
        case QType::kInt16: verify_lowered_step<std::int16_t>(cn, si, cap, x, &stats); break;
        case QType::kInt32: verify_lowered_step<std::int32_t>(cn, si, cap, x, &stats); break;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  };

  {
    ZooModel m = build_model("tiny", small_zoo_options());
    check_net(m.net, m.analyzed, int8_formats(m.analyzed.size()),
              random_input(2, m.channels, m.height, m.width, 55));
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  for (std::uint64_t seed : {1, 4, 7}) {
    RandomNet r = make_random_net(seed);
    const Tensor x = random_input(2, r.channels, r.height, r.width, 700 + seed);
    check_net(r.net, r.analyzed, int8_formats(r.analyzed.size()), x);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    check_net(r.net, r.analyzed, mixed_formats(r.analyzed.size()), x);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }

  // Vacuity: the battery must actually have crossed elided boundaries.
  EXPECT_GT(stats.quant_store_steps, 0) << "no requantized store was ever checked";
  EXPECT_GT(stats.boundary_elems, 0);
  EXPECT_GT(stats.float_elems, 0) << "no float dequant store was ever checked";
}

// ---------------------------------------------------------------------------
// Determinism of the fused integer forward: byte-identical across worker
// counts and across scalar vs the detected ISA (every dot-product step in
// these nets is lowered; interior layers are scalar elementwise code).
TEST(CompileEquivalence, CompiledIntegerForwardDeterministicAcrossWorkersAndIsa) {
  ExecConfigGuard guard;
  CompileOptions co;
  co.weight_bits = 8;
  for (std::uint64_t seed : {3, 8}) {
    RandomNet r = make_random_net(seed);
    const CompiledNetwork cn =
        GraphCompiler(co).compile(r.net, r.analyzed, int8_formats(r.analyzed.size()));
    const Tensor x = random_input(2, r.channels, r.height, r.width, 900 + seed);

    set_kernel_isa(KernelIsa::kScalar);
    set_parallel_worker_count(1);
    const Tensor ref = cn.forward(x);
    for (KernelIsa isa : isas_to_test()) {
      set_kernel_isa(isa);
      for (int workers : {1, 2, 0}) {
        set_parallel_worker_count(workers);
        expect_bitwise_equal(cn.forward(x), ref,
                             "seed " + std::to_string(seed) + " isa=" + kernel_isa_name(isa) +
                                 " workers=" + std::to_string(workers));
      }
    }
  }
}

}  // namespace
}  // namespace mupod
