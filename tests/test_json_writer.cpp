// JsonWriter edge cases: the emitter backs the CLI --json modes, the
// benchmark BENCH_*.json files, and now the Chrome-trace exporter — all
// consumed by external parsers (python, chrome://tracing), so the corner
// cases of the JSON grammar must come out exactly right: non-finite
// doubles (JSON has no NaN/Inf), control characters, multi-byte UTF-8,
// and deep nesting.
#include "io/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace mupod {
namespace {

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter j;
  j.begin_object();
  j.kv("nan", std::numeric_limits<double>::quiet_NaN());
  j.kv("inf", std::numeric_limits<double>::infinity());
  j.kv("ninf", -std::numeric_limits<double>::infinity());
  j.kv("finite", 1.5);
  j.end_object();
  EXPECT_EQ(j.str(), R"({"nan":null,"inf":null,"ninf":null,"finite":1.5})");
}

TEST(JsonWriter, ControlCharactersAreEscaped) {
  // The short escapes where JSON defines them, \u00XX for the rest of the
  // C0 range — a raw control byte would make the document unparseable.
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("cr\rlf"), "cr\\rlf");
  EXPECT_EQ(JsonWriter::escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonWriter::escape("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(JsonWriter::escape("quote\"back\\slash"), "quote\\\"back\\\\slash");

  JsonWriter j;
  j.begin_object();
  j.kv("k\n", std::string("v\x02"));
  j.end_object();
  EXPECT_EQ(j.str(), "{\"k\\n\":\"v\\u0002\"}");
}

TEST(JsonWriter, MultiByteUtf8PassesThroughUntouched) {
  // Already-valid UTF-8 must not be escaped or mangled: 2-byte (é),
  // 3-byte (日本語), and 4-byte (emoji, beyond the BMP) sequences.
  const std::string s = "caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e \xf0\x9f\x98\x80";
  EXPECT_EQ(JsonWriter::escape(s), s);
  JsonWriter j;
  j.begin_object();
  j.kv("text", s);
  j.end_object();
  EXPECT_EQ(j.str(), "{\"text\":\"" + s + "\"}");
}

TEST(JsonWriter, DeeplyNestedArraysBalance) {
  // 256 levels — far beyond anything the tools emit; the writer must keep
  // its context stack straight and report completeness only at the end.
  constexpr int kDepth = 256;
  JsonWriter j;
  for (int i = 0; i < kDepth; ++i) j.begin_array();
  j.value(std::int64_t{1});
  EXPECT_FALSE(j.complete());
  for (int i = 0; i < kDepth; ++i) j.end_array();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(j.str(), std::string(kDepth, '[') + "1" + std::string(kDepth, ']'));
}

TEST(JsonWriter, MixedNestingCommasAndTypes) {
  JsonWriter j;
  j.begin_object();
  j.key("rows").begin_array();
  j.begin_object().kv("id", 1).kv("ok", true).end_object();
  j.begin_object().kv("id", 2).kv("ok", false).kv("note", "b").end_object();
  j.end_array();
  j.key("none").null();
  j.kv("big", std::uint64_t{18446744073709551615ull});
  j.end_object();
  EXPECT_EQ(j.str(),
            R"({"rows":[{"id":1,"ok":true},{"id":2,"ok":false,"note":"b"}],)"
            R"("none":null,"big":18446744073709551615})");
}

}  // namespace
}  // namespace mupod
