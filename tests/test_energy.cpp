#include "hw/energy_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mupod {
namespace {

TEST(EffectiveBitwidth, MatchesPaperTable2Example) {
  // Paper Sec. V-D: AlexNet baseline (9,7,4,5,7) with #Input weights gives
  // effective bitwidth 2833/397.6 ~= 7.1.
  const std::vector<std::int64_t> inputs = {154600, 70000, 43200, 64900, 64900};
  const std::vector<int> baseline = {9, 7, 4, 5, 7};
  EXPECT_NEAR(effective_bitwidth(inputs, baseline), 7.1, 0.05);

  // And the optimized-for-input bits (6,6,5,6,7) give ~6.05.
  const std::vector<int> optimized = {6, 6, 5, 6, 7};
  EXPECT_NEAR(effective_bitwidth(inputs, optimized), 6.05, 0.05);
}

TEST(EffectiveBitwidth, UniformBitsIsIdentity) {
  const std::vector<std::int64_t> rho = {10, 20, 30};
  const std::vector<int> bits = {8, 8, 8};
  EXPECT_DOUBLE_EQ(effective_bitwidth(rho, bits), 8.0);
}

TEST(TotalWeightedBits, PaperInputBitsRow) {
  const std::vector<std::int64_t> inputs = {154600, 70000, 43200, 64900, 64900};
  const std::vector<int> baseline = {9, 7, 4, 5, 7};
  // Paper reports 2833 * 10^3 total input bits for the baseline.
  EXPECT_NEAR(static_cast<double>(total_weighted_bits(inputs, baseline)), 2833e3, 5e3);
}

TEST(MacEnergy, BitSerialScalesLinearlyWithInputBits) {
  const MacEnergyModel m = MacEnergyModel::stripes_like();
  const double e4 = m.mac_energy(4, 16);
  const double e8 = m.mac_energy(8, 16);
  // Linear up to the constant term.
  EXPECT_NEAR((e8 - m.serial_base) / (e4 - m.serial_base), 2.0, 1e-9);
}

TEST(MacEnergy, StripesIgnoresWeightBits) {
  const MacEnergyModel m = MacEnergyModel::stripes_like();
  EXPECT_DOUBLE_EQ(m.mac_energy(8, 16), m.mac_energy(8, 4));
}

TEST(MacEnergy, LoomScalesWithWeightBitsToo) {
  const MacEnergyModel m = MacEnergyModel::loom_like();
  EXPECT_LT(m.mac_energy(8, 4), m.mac_energy(8, 16));
}

TEST(MacEnergy, ParallelDominatedByPartialProducts) {
  const MacEnergyModel m = MacEnergyModel::parallel_dwip_like();
  const double e = m.mac_energy(8, 8);
  EXPECT_GT(e, m.pp * 64);            // includes linear + leakage
  EXPECT_LT(m.mac_energy(4, 8), e);   // fewer input bits -> cheaper
  EXPECT_LT(m.mac_energy(8, 4), e);   // fewer weight bits -> cheaper
}

TEST(MacEnergy, NetworkEnergyWeightsByMacs) {
  const MacEnergyModel m = MacEnergyModel::stripes_like();
  const std::vector<std::int64_t> macs = {100, 200};
  const std::vector<int> bits = {8, 4};
  const double expected = 100 * m.mac_energy(8, 16) + 200 * m.mac_energy(4, 16);
  EXPECT_DOUBLE_EQ(m.network_energy(macs, bits, 16), expected);
}

TEST(PercentSaving, Basics) {
  EXPECT_DOUBLE_EQ(percent_saving(100.0, 80.0), 20.0);
  EXPECT_DOUBLE_EQ(percent_saving(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_saving(0.0, 50.0), 0.0);
}

TEST(Bandwidth, MatchesWeightedBits) {
  const std::vector<std::int64_t> inputs = {1000, 2000};
  const std::vector<int> bits = {6, 9};
  EXPECT_EQ(input_bandwidth_bits(inputs, bits), 6000 + 18000);
}

}  // namespace
}  // namespace mupod
