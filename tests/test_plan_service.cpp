#include "serve/plan_service.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.hpp"
#include "io/plan_io.hpp"
#include "obs/metrics.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// Small, fast settings shared by the service and the cold-path pipeline —
// the bit-identity tests only make sense when both run the exact same
// configuration.
PipelineConfig fast_pipeline_config() {
  PipelineConfig cfg;
  cfg.harness.profile_images = 16;
  cfg.harness.eval_images = 128;
  cfg.profiler.points = 6;
  return cfg;
}

struct ServiceFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
};

ServiceFixture make_fixture(std::uint64_t seed = 404) {
  ServiceFixture f;
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = seed;
  zo.data_seed = 8;
  zo.calibration_images = 8;
  f.model = build_tiny_cnn(zo);
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 8;
  f.dataset = std::make_unique<SyntheticImageDataset>(dc);
  return f;
}

const ServiceFixture& fixture() {
  static ServiceFixture* f = new ServiceFixture(make_fixture());
  return *f;
}

void expect_alloc_equal(const BitwidthAllocation& a, const BitwidthAllocation& b) {
  // Exact equality on purpose: warm answers must be bit-identical to cold
  // ones, not merely close.
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.xi, b.xi);
  EXPECT_EQ(a.deltas, b.deltas);
  EXPECT_EQ(a.formats, b.formats);
  EXPECT_EQ(a.solver_used, b.solver_used);
  EXPECT_EQ(a.solver_downgrades, b.solver_downgrades);
}

TEST(PlanService, WarmAnswerIsBitIdenticalToColdPipeline) {
  // Cold path: a full pipeline run. The fixture model is rebuilt so the
  // cold run cannot share any state with the service.
  ServiceFixture cold = make_fixture();
  PipelineConfig cfg = fast_pipeline_config();
  cfg.sigma.relative_accuracy_drop = 0.02;
  const ObjectiveSpec obj = objective_input_bits(cold.model.net, cold.model.analyzed);
  const PipelineResult cold_r =
      run_pipeline(cold.model.net, cold.model.analyzed, *cold.dataset, {obj}, cfg);

  // Warm path: the same query through the service.
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  PlanQuery q;
  q.accuracy_target = 0.02;
  q.objective = objective_input_bits(f.model.net, f.model.analyzed);
  const PlanResult warm = service.plan(key, q);

  ASSERT_EQ(cold_r.objectives.size(), 1u);
  expect_alloc_equal(cold_r.objectives[0].alloc, warm.alloc);
  EXPECT_EQ(cold_r.objectives[0].sigma_used, warm.sigma_used);
  EXPECT_EQ(cold_r.objectives[0].validated_accuracy, warm.validated_accuracy);
  EXPECT_EQ(cold_r.objectives[0].refinements, warm.refinements);
  EXPECT_EQ(cold_r.sigma.sigma_yl, warm.sigma_searched);
}

TEST(PlanService, MemoizedReplayIsIdenticalAndCountsAsHit) {
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  PlanQuery q;
  q.accuracy_target = 0.05;
  q.objective = objective_mac_energy(f.model.net, f.model.analyzed);
  const PlanResult first = service.plan(key, q);
  EXPECT_FALSE(first.plan_cached);
  const PlanResult replay = service.plan(key, q);
  EXPECT_TRUE(replay.plan_cached);
  EXPECT_TRUE(replay.profile_cached);
  EXPECT_TRUE(replay.sigma_cached);

  expect_alloc_equal(first.alloc, replay.alloc);
  EXPECT_EQ(first.objective_cost, replay.objective_cost);
  EXPECT_EQ(first.energy, replay.energy);
  EXPECT_EQ(first.sim_cycles, replay.sim_cycles);

  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_misses, 1);
  EXPECT_EQ(s.sigma_misses, 1);
  EXPECT_EQ(s.plan_misses, 1);
  EXPECT_EQ(s.plan_hits, 1);
  EXPECT_EQ(s.plans_served(), 2);
}

TEST(PlanService, GridCostsOneProfileMSearchesNMTails) {
  // The contract in the header: N objectives x M constraints = 1 profile +
  // M sigma searches + N*M allocation tails.
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  const std::vector<double> targets = {0.01, 0.05};  // M = 2
  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(f.model.net, f.model.analyzed),
      objective_mac_energy(f.model.net, f.model.analyzed)};  // N = 2
  for (double t : targets) {
    for (const ObjectiveSpec& o : objectives) {
      PlanQuery q;
      q.accuracy_target = t;
      q.objective = o;
      service.plan(key, q);
    }
  }
  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_misses, 1);
  EXPECT_EQ(s.sigma_misses, 2);
  EXPECT_EQ(s.plan_misses, 4);
  EXPECT_EQ(s.plan_hits, 0);
}

TEST(PlanService, ContentAddressingSharesIdenticallyBuiltNetworks) {
  // Two networks built with identical seeds hash identically, so the
  // second registration lands on the first one's cache entry.
  const ServiceFixture& f = fixture();
  ServiceFixture twin = make_fixture();
  EXPECT_EQ(network_content_hash(f.model.net), network_content_hash(twin.model.net));

  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey k1 = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const PlanKey k2 = service.register_network(twin.model.net, twin.model.analyzed, *twin.dataset);
  EXPECT_EQ(k1, k2);

  EXPECT_FALSE(service.ensure_profile(k1));  // miss: computed now
  EXPECT_TRUE(service.ensure_profile(k2));   // hit: shared entry
  const CacheStats s = service.stats();
  // Warm-ups are tallied separately; plan() charging never happened.
  EXPECT_EQ(s.profile_warm_misses, 1);
  EXPECT_EQ(s.profile_warm_hits, 1);
  EXPECT_EQ(s.profile_misses, 0);
  EXPECT_EQ(s.profile_hits, 0);
}

TEST(PlanService, LoadedProfileSeedsTheStageAndPreservesAnswers) {
  // Persist a profile from a cold pipeline run, feed it to a fresh service
  // via load_profile, and check the seeded service (a) skips the fit
  // measurements and (b) still answers bit-identically.
  ServiceFixture cold = make_fixture();
  PipelineConfig cfg = fast_pipeline_config();
  cfg.sigma.relative_accuracy_drop = 0.05;
  const ObjectiveSpec cold_obj = objective_input_bits(cold.model.net, cold.model.analyzed);
  const PipelineResult cold_r =
      run_pipeline(cold.model.net, cold.model.analyzed, *cold.dataset, {cold_obj}, cfg);
  const ProfileBundle bundle =
      make_profile_bundle(cold.model.net, cold.model.analyzed, cold_r);
  ASSERT_NE(bundle.net_hash, 0u);

  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  ASSERT_EQ(bundle.net_hash, key.net_hash);  // content-addressing lines up

  EXPECT_TRUE(service.load_profile(key, bundle));
  EXPECT_EQ(service.stats().profile_loads, 1);

  PlanQuery q;
  q.accuracy_target = 0.05;
  q.objective = objective_input_bits(f.model.net, f.model.analyzed);
  const PlanResult r = service.plan(key, q);
  expect_alloc_equal(cold_r.objectives[0].alloc, r.alloc);
  EXPECT_EQ(cold_r.objectives[0].validated_accuracy, r.validated_accuracy);

  // The seeded entry spent strictly fewer forwards than the cold pipeline:
  // the profile-stage measurements were skipped.
  EXPECT_LT(service.forward_count(key), cold_r.forward_count);

  bool seeded_diag = false;
  for (const Diagnostic& d : service.profile_diagnostics(key).snapshot())
    if (d.stage == PipelineStage::kServe && d.message.find("seeded") != std::string::npos)
      seeded_diag = true;
  EXPECT_TRUE(seeded_diag);
}

TEST(PlanService, LoadProfileRejectsUnverifiableOrMismatchedBundles) {
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  ProfileBundle bundle;
  bundle.network = f.model.net.name();
  bundle.models.resize(f.model.analyzed.size());
  bundle.ranges.resize(f.model.analyzed.size(), 1.0);

  // No hash (pre-v3 file): provenance unverifiable, rejected.
  bundle.net_hash = 0;
  EXPECT_FALSE(service.load_profile(key, bundle));
  // Wrong hash: measured on a different network, rejected.
  bundle.net_hash = key.net_hash ^ 0x1;
  EXPECT_FALSE(service.load_profile(key, bundle));
  // Right hash but wrong layer count: rejected.
  bundle.net_hash = key.net_hash;
  bundle.models.resize(f.model.analyzed.size() + 1);
  EXPECT_FALSE(service.load_profile(key, bundle));
  // Already-measured profile: a late (even valid) bundle is refused.
  bundle.models.resize(f.model.analyzed.size());
  service.ensure_profile(key);
  EXPECT_FALSE(service.load_profile(key, bundle));

  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_load_rejected, 4);
  EXPECT_EQ(s.profile_loads, 0);

  // Every rejection is reported through the service diagnostics, never
  // swallowed: a stale profile must fail loudly.
  int rejections = 0;
  bool saw_error = false;
  for (const Diagnostic& d : service.service_diagnostics().snapshot()) {
    if (d.stage != PipelineStage::kServe) continue;
    if (d.message.find("rejected") != std::string::npos) ++rejections;
    if (d.severity == DiagSeverity::kError) saw_error = true;
  }
  EXPECT_EQ(rejections, 4);
  EXPECT_TRUE(saw_error);  // the hash mismatch is an error, not a note
}

TEST(PlanService, PlanMemoEvictionIsBoundedFifoAndCounted) {
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  scfg.max_plans_per_entry = 1;  // pathological cap to force churn
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  PlanQuery qa;
  qa.accuracy_target = 0.05;
  qa.objective = objective_input_bits(f.model.net, f.model.analyzed);
  PlanQuery qb = qa;
  qb.objective = objective_mac_energy(f.model.net, f.model.analyzed);

  const PlanResult a1 = service.plan(key, qa);
  EXPECT_FALSE(a1.plan_cached);
  EXPECT_EQ(service.stats().plan_evictions, 0);

  const PlanResult b1 = service.plan(key, qb);  // evicts qa's memo (FIFO)
  EXPECT_FALSE(b1.plan_cached);
  EXPECT_EQ(service.stats().plan_evictions, 1);

  // qa was the eviction victim: asking again recomputes the tail — and
  // recomputes it identically (caching changes cost, never values).
  const PlanResult a2 = service.plan(key, qa);
  EXPECT_FALSE(a2.plan_cached);
  expect_alloc_equal(a1.alloc, a2.alloc);
  EXPECT_EQ(service.stats().plan_evictions, 2);

  // The churn is visible in the service diagnostics.
  bool eviction_diag = false;
  for (const Diagnostic& d : service.service_diagnostics().snapshot())
    if (d.stage == PipelineStage::kServe &&
        d.message.find("max_plans_per_entry") != std::string::npos)
      eviction_diag = true;
  EXPECT_TRUE(eviction_diag);

  // The expensive stages were untouched by the churn.
  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_misses, 1);
  EXPECT_EQ(s.sigma_misses, 1);
  EXPECT_EQ(s.plan_hits, 0);
}

TEST(PlanService, DifferentWeightsGetDifferentKeys) {
  const ServiceFixture& f = fixture();
  ServiceFixture other = make_fixture(/*seed=*/405);
  EXPECT_NE(network_content_hash(f.model.net), network_content_hash(other.model.net));

  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey k1 = service.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const PlanKey k2 = service.register_network(other.model.net, other.model.analyzed,
                                              *other.dataset);
  EXPECT_NE(k1, k2);
}

TEST(PlanService, ConfigDigestSeparatesMeasurementConfigs) {
  const ServiceFixture& f = fixture();
  PlanServiceConfig a;
  a.pipeline = fast_pipeline_config();
  PlanServiceConfig b = a;
  b.pipeline.harness.eval_images = 64;  // different measurement substrate
  EXPECT_NE(plan_config_digest(a, f.dataset->config()),
            plan_config_digest(b, f.dataset->config()));

  // Same config on a different dataset is also a different profile.
  DatasetConfig other_data = f.dataset->config();
  other_data.seed += 1;
  EXPECT_NE(plan_config_digest(a, f.dataset->config()), plan_config_digest(a, other_data));

  // Per-query knobs must NOT be part of the digest (they are memo keys).
  PlanServiceConfig c = a;
  c.pipeline.allocator.solver = XiSolver::kClosedForm;
  c.pipeline.sigma.relative_accuracy_drop = 0.2;
  EXPECT_EQ(plan_config_digest(a, f.dataset->config()),
            plan_config_digest(c, f.dataset->config()));
}

TEST(PlanService, UnknownKeyThrows) {
  PlanService service;
  PlanKey bogus;
  bogus.net_hash = 1;
  bogus.config_digest = 2;
  EXPECT_THROW(service.ensure_profile(bogus), std::runtime_error);
  EXPECT_THROW(service.plan(bogus, PlanQuery{}), std::runtime_error);
  EXPECT_THROW(service.profile_diagnostics(bogus), std::runtime_error);
}

TEST(PlanService, ExportedPlansRoundTripThroughPlanIo) {
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  PlanQuery q;
  q.accuracy_target = 0.05;
  q.objective = objective_input_bits(f.model.net, f.model.analyzed);
  const PlanResult r = service.plan(key, q);

  const PlanStore store = service.export_plans();
  ASSERT_EQ(store.plans.size(), 1u);
  EXPECT_EQ(store.plans[0].net_hash, key.net_hash);
  EXPECT_EQ(store.plans[0].config_digest, key.config_digest);
  EXPECT_EQ(store.plans[0].objective, "input_bits");
  EXPECT_EQ(store.plans[0].formats, r.alloc.formats);

  const PlanStore reloaded = parse_plan_store(serialize_plan_store(store));
  ASSERT_EQ(reloaded.plans.size(), 1u);
  EXPECT_EQ(reloaded.plans[0].formats, r.alloc.formats);
  EXPECT_EQ(reloaded.plans[0].total_bits(), r.alloc.bits);
}

TEST(PlanService, ClearPlanMemoKeepsProfileAndSigma) {
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  PlanQuery q;
  q.accuracy_target = 0.05;
  q.objective = objective_input_bits(f.model.net, f.model.analyzed);
  const PlanResult first = service.plan(key, q);
  service.clear_plan_memo();
  const PlanResult again = service.plan(key, q);
  EXPECT_FALSE(again.plan_cached);   // memo was dropped...
  EXPECT_TRUE(again.profile_cached); // ...but the expensive stages remain
  EXPECT_TRUE(again.sigma_cached);
  expect_alloc_equal(first.alloc, again.alloc);
}

TEST(PlanService, ExportProfileRoundTripsThroughLoadProfile) {
  // export_profile is the replication-side inverse of load_profile: a
  // bundle exported from one service seeds a fresh one, which then skips
  // the fit measurements and answers bit-identically.
  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  PlanService source(scfg);
  const PlanKey key = source.register_network(f.model.net, f.model.analyzed, *f.dataset);
  EXPECT_THROW(source.export_profile(key), std::runtime_error);  // not measured yet
  source.ensure_profile(key);
  const ProfileBundle bundle = source.export_profile(key);
  EXPECT_EQ(bundle.net_hash, key.net_hash);
  EXPECT_EQ(bundle.models.size(), f.model.analyzed.size());
  EXPECT_EQ(bundle.layer_names.size(), f.model.analyzed.size());

  PlanService seeded(scfg);
  const PlanKey key2 = seeded.register_network(f.model.net, f.model.analyzed, *f.dataset);
  EXPECT_EQ(key2, key);
  EXPECT_TRUE(seeded.load_profile(key2, bundle));

  PlanQuery q;
  q.accuracy_target = 0.05;
  q.objective = objective_input_bits(f.model.net, f.model.analyzed);
  const PlanResult a = source.plan(key, q);
  const PlanResult b = seeded.plan(key2, q);
  expect_alloc_equal(a.alloc, b.alloc);
  EXPECT_EQ(a.sigma_used, b.sigma_used);
  EXPECT_LT(seeded.forward_count(key2), source.forward_count(key));
}

TEST(PlanService, CacheLifecycleCountersMatchMetricsSnapshot) {
  // Symmetry contract: the cache-lifecycle numbers in CacheStats (hits,
  // misses, waits, evictions, loads, rejections) and the serve.* metrics
  // family must tell the same story — sweep_tool --json reports both.
  set_metrics_enabled(true);
  metrics().reset();

  const ServiceFixture& f = fixture();
  PlanServiceConfig scfg;
  scfg.pipeline = fast_pipeline_config();
  scfg.max_plans_per_entry = 1;  // force an eviction below
  PlanService service(scfg);
  const PlanKey key = service.register_network(f.model.net, f.model.analyzed, *f.dataset);

  // One rejected load (hashless bundle), then churn the plan memo.
  ProfileBundle bad;
  bad.network = f.model.net.name();
  bad.net_hash = 0;
  bad.models.resize(f.model.analyzed.size());
  bad.ranges.resize(f.model.analyzed.size(), 1.0);
  EXPECT_FALSE(service.load_profile(key, bad));

  PlanQuery qa;
  qa.accuracy_target = 0.05;
  qa.objective = objective_input_bits(f.model.net, f.model.analyzed);
  PlanQuery qb = qa;
  qb.objective = objective_mac_energy(f.model.net, f.model.analyzed);
  service.plan(key, qa);
  service.plan(key, qb);  // evicts qa's memo
  service.plan(key, qb);  // plan-memo hit

  // One accepted load, into a second service sharing the fixture.
  PlanService seeded(scfg);
  const PlanKey key2 = seeded.register_network(f.model.net, f.model.analyzed, *f.dataset);
  EXPECT_TRUE(seeded.load_profile(key2, service.export_profile(key)));

  const CacheStats s = service.stats();
  const CacheStats s2 = seeded.stats();
  const MetricsSnapshot snap = metrics().snapshot();
  set_metrics_enabled(false);

  EXPECT_EQ(s.profile_load_rejected, 1);
  EXPECT_EQ(s.plan_evictions, 1);
  EXPECT_EQ(s2.profile_loads, 1);
  // The metrics registry is process-global: it saw both services.
  EXPECT_EQ(snap.counter("serve.profile.load_rejected"),
            s.profile_load_rejected + s2.profile_load_rejected);
  EXPECT_EQ(snap.counter("serve.profile.loads"), s.profile_loads + s2.profile_loads);
  EXPECT_EQ(snap.counter("serve.plan.evictions"), s.plan_evictions + s2.plan_evictions);
  EXPECT_EQ(snap.counter("serve.plan.hits"), s.plan_hits + s2.plan_hits);
  EXPECT_EQ(snap.counter("serve.plan.misses"), s.plan_misses + s2.plan_misses);
  EXPECT_EQ(snap.counter("serve.profile.misses"), s.profile_misses + s2.profile_misses);
  EXPECT_EQ(snap.counter("serve.sigma.misses"), s.sigma_misses + s2.sigma_misses);
}

}  // namespace
}  // namespace mupod
