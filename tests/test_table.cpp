#include "io/table.hpp"

#include <gtest/gtest.h>

namespace mupod {
namespace {

TEST(TextTable, AlignedRendering) {
  TextTable t({"layer", "bits"});
  t.add_row({"conv1", "9"});
  t.add_row({"conv10", "6"});
  const std::string s = t.render_text();
  EXPECT_NE(s.find("layer"), std::string::npos);
  EXPECT_NE(s.find("conv10"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, CsvRendering) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t({"a"});
  t.add_row({"x,y"});
  EXPECT_EQ(t.render_csv(), "a\n\"x,y\"\n");
}

TEST(TextTable, MarkdownRendering) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string s = t.render_markdown();
  EXPECT_EQ(s, "| a | b |\n|---|---|\n| 1 | 2 |\n");
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(3.14159, 0), "3");
  EXPECT_EQ(TextTable::fmt_int(1234567), "1234567");
}

TEST(TextTable, Dimensions) {
  TextTable t({"x", "y", "z"});
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.rows(), 0);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1);
}

}  // namespace
}  // namespace mupod
