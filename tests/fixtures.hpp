// Shared expensive fixtures for the core-pipeline tests: a calibrated tiny
// CNN with its dataset and analysis harness, built once per test binary.
#pragma once

#include <memory>

#include "core/harness.hpp"
#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod::testfix {

struct TinyFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  std::unique_ptr<AnalysisHarness> harness;
};

inline const TinyFixture& tiny() {
  static TinyFixture* fix = [] {
    auto* f = new TinyFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 2024;
    zo.data_seed = 99;  // matches the harness dataset below
    zo.calibration_images = 8;
    f->model = build_tiny_cnn(zo);

    DatasetConfig dc;
    dc.num_classes = 10;
    dc.channels = f->model.channels;
    dc.height = f->model.height;
    dc.width = f->model.width;
    dc.seed = 99;
    f->dataset = std::make_unique<SyntheticImageDataset>(dc);

    HarnessConfig hc;
    hc.profile_images = 32;
    hc.eval_images = 256;
    hc.batch = 64;
    f->harness = std::make_unique<AnalysisHarness>(f->model.net, f->model.analyzed,
                                                   *f->dataset, hc);
    return f;
  }();
  return *fix;
}

}  // namespace mupod::testfix
