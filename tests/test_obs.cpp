// Observability subsystem tests: metrics primitives, the span tracer and
// its Chrome-trace export, stage-scoped forward accounting — and the
// acceptance sweep from the PR issue: a 3 objectives x 4 targets NiN grid
// whose cache and forward counters must land on exactly the numbers the
// serving algebra predicts (1 profile + M searches + N*M tails).
//
// Each TEST runs as its own ctest process, but we still reset the global
// registry/tracer at the start of every test that reads them — the unit
// under test is process-global state.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "io/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_scope.hpp"
#include "obs/trace.hpp"
#include "serve/sweep.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON well-formedness checker. The repo has a
// JSON *writer* but deliberately no parser; this is just enough grammar to
// assert that exported documents are syntactically valid JSON (the schema
// details are asserted with targeted substring checks).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    i_ = 0;
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (peek() == '}') { ++i_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (peek() == ']') { ++i_; return true; }
    while (true) {
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') { ++i_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k)
            if (i_ + static_cast<std::size_t>(k) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[i_ + static_cast<std::size_t>(k)])))
              return false;
          i_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++i_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    if (peek() == '.') {
      ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    return i_ > start && std::isdigit(static_cast<unsigned char>(s_[i_ - 1]));
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i_)
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    return true;
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r'))
      ++i_;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  const std::string& s_;
  std::size_t i_ = 0;
};

bool json_well_formed(const std::string& s) { return JsonChecker(s).valid(); }

int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos; p = hay.find(needle, p + 1)) ++n;
  return n;
}

struct ObsReset {
  // Start every test from a clean slate and leave the process-global
  // switches the way the rest of the suite expects (off).
  ObsReset() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
    metrics().reset();
    tracer().clear();
  }
  ~ObsReset() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
  }
};

// --------------------------------------------------------------- metrics --

TEST(Metrics, CheckerAcceptsAndRejectsTheRightDocuments) {
  // Trust-but-verify the test helper itself.
  EXPECT_TRUE(json_well_formed(R"({"a":[1,2.5,-3e2],"b":{"c":null,"d":"x\né"}})"));
  EXPECT_TRUE(json_well_formed("[]"));
  EXPECT_FALSE(json_well_formed(R"({"a":1)"));        // unterminated object
  EXPECT_FALSE(json_well_formed(R"({"a":01x})"));     // trailing garbage in number
  EXPECT_FALSE(json_well_formed(R"(["unclosed)"));    // unterminated string
  EXPECT_FALSE(json_well_formed(R"({"a":1}{)"));      // trailing garbage
  EXPECT_FALSE(json_well_formed("{\"a\":\"\x01\"}")); // raw control char
}

TEST(Metrics, CounterSumsConcurrentIncrements) {
  ObsReset reset;
  Counter c;
  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeSetIsLastWriterWinsAndAddAccumulates) {
  Gauge g;
  g.set(42);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(3);
  g.add(-10);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketsBoundsAndOverflow) {
  HistogramMetric h({1.0, 2.0, 4.0});
  h.record(0.5);   // <= 1
  h.record(1.0);   // <= 1 (bounds are inclusive)
  h.record(3.0);   // <= 4
  h.record(100.0); // overflow
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
}

TEST(Metrics, RegistryHandlesAreStableAndResetKeepsRegistrations) {
  ObsReset reset;
  Counter& a = metrics().counter("test.handle.stability");
  a.add(5);
  Counter& b = metrics().counter("test.handle.stability");
  EXPECT_EQ(&a, &b);  // same instrument, so cached handles stay valid
  metrics().reset();
  EXPECT_EQ(a.value(), 0);  // value zeroed...
  const MetricsSnapshot snap = metrics().snapshot();
  bool found = false;
  for (const auto& c : snap.counters)
    if (c.name == "test.handle.stability") found = true;
  EXPECT_TRUE(found);  // ...but the registration survives
}

TEST(Metrics, SnapshotIsSortedQueryableAndJsonClean) {
  ObsReset reset;
  metrics().counter("test.z.last").add(3);
  metrics().counter("test.a.first").add(1);
  metrics().gauge("test.gauge").set(-4);
  metrics().histogram("test.hist", {1.0, 10.0}).record(5.0);

  const MetricsSnapshot snap = metrics().snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);  // sorted (std::map order)
  EXPECT_EQ(snap.counter("test.z.last"), 3);
  EXPECT_EQ(snap.counter("does.not.exist"), 0);

  JsonWriter j;
  snap.write_json(j);
  ASSERT_TRUE(j.complete());
  EXPECT_TRUE(json_well_formed(j.str()));
  EXPECT_NE(j.str().find("\"test.a.first\""), std::string::npos);
  EXPECT_NE(j.str().find("\"test.hist\""), std::string::npos);
  EXPECT_NE(snap.render_text().find("test.gauge"), std::string::npos);
}

TEST(Metrics, HistogramPercentileInterpolatesWithinTheCrossingBucket) {
  // Hand-built buckets keep the arithmetic checkable: bounds {10, 20, 30},
  // two samples in (0, 10], two in (10, 20].
  const std::vector<double> bounds{10.0, 20.0, 30.0};
  const std::vector<std::int64_t> counts{2, 2, 0, 0};
  // rank(q) = q * (total - 1) + 1: q=0 is the first sample, q=1 the last.
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 0.0), 5.0);    // rank 1 of 2 in (0, 10]
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 0.5), 12.5);   // rank 2.5 -> (10, 20]
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 1.0), 20.0);   // rank 4 = bucket top
  // q is clamped; empty histograms report 0.
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
  // Ranks landing in the overflow bucket cap at the last bound — a
  // fixed-bucket histogram cannot resolve beyond its range.
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {0, 0, 0, 5}, 0.99), 30.0);
  // A negative first bound extends the first bucket's lower edge.
  EXPECT_DOUBLE_EQ(histogram_percentile({-10.0, 10.0}, {1, 0, 0}, 0.0), -10.0);
}

TEST(Metrics, HistogramSummaryReportsCountSumMeanAndQuantiles) {
  ObsReset reset;
  HistogramMetric& h = metrics().histogram("test.summary", {1.0, 2.0, 4.0});
  for (const double x : {0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 100.0}) h.record(x);

  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 7);
  EXPECT_DOUBLE_EQ(s.sum, 112.5);
  EXPECT_DOUBLE_EQ(s.mean, 112.5 / 7.0);
  // Buckets: {1, 2, 3, 1}. rank(0.5) = 4 -> bucket (2, 4] at frac 1/3.
  EXPECT_DOUBLE_EQ(s.p50, 2.0 + 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.5));
  // p99's rank lands on the overflow sample: capped at the last bound.
  EXPECT_DOUBLE_EQ(s.p99, 4.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);

  // The snapshot view computes the identical numbers from its copied
  // buckets (this is what bench reports and serve_tool print).
  const MetricsSnapshot snap = metrics().snapshot();
  for (const auto& hv : snap.histograms) {
    if (hv.name != "test.summary") continue;
    EXPECT_DOUBLE_EQ(hv.percentile(0.5), s.p50);
    const HistogramSummary s2 = hv.summary();
    EXPECT_EQ(s2.count, s.count);
    EXPECT_DOUBLE_EQ(s2.p99, s.p99);
  }

  // write_json carries the summary quantiles alongside the raw buckets.
  JsonWriter j;
  snap.write_json(j);
  ASSERT_TRUE(j.complete());
  EXPECT_NE(j.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(j.str().find("\"p99\""), std::string::npos);
}

// ----------------------------------------------------------------- trace --

TEST(Trace, RingBufferKeepsNewestCountsDropped) {
  Tracer t(4);
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.name = "e" + std::to_string(i);
    e.ts_us = static_cast<std::uint64_t>(i);
    t.record(std::move(e));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2);
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(evs[static_cast<std::size_t>(i)].name,
                                        "e" + std::to_string(i + 2));  // oldest 2 gone
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0);
}

TEST(Trace, ScopedSpanIsInertWhenTracingDisabled) {
  ObsReset reset;
  {
    ScopedSpan span("should.not.record");
    span.arg("k", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer().size(), 0u);
}

TEST(Trace, ScopedSpanRecordsNestingAndArgs) {
  ObsReset reset;
  set_tracing_enabled(true);
  {
    ScopedSpan outer("test.outer");
    outer.arg("cells", 12);
    {
      ScopedSpan inner("test.inner", "unit");
      inner.arg("k", 7);
    }
  }
  set_tracing_enabled(false);
  const std::vector<TraceEvent> evs = tracer().events();
  ASSERT_EQ(evs.size(), 2u);
  // Inner closes first, so it lands first; nesting shows in the times.
  EXPECT_EQ(evs[0].name, "test.inner");
  EXPECT_STREQ(evs[0].category, "unit");
  ASSERT_EQ(evs[0].n_args, 1);
  EXPECT_STREQ(evs[0].args[0].first, "k");
  EXPECT_EQ(evs[0].args[0].second, 7);
  EXPECT_EQ(evs[1].name, "test.outer");
  EXPECT_GE(evs[0].ts_us, evs[1].ts_us);  // inner starts after outer
  EXPECT_LE(evs[0].ts_us + evs[0].dur_us, evs[1].ts_us + evs[1].dur_us);  // and ends inside it
}

TEST(Trace, ChromeTraceJsonIsValidAndCarriesTheSchema) {
  ObsReset reset;
  set_tracing_enabled(true);
  {
    ScopedSpan a("test.span.a");
    a.arg("forwards", 640);
    ScopedSpan b("test.span.b");
  }
  set_tracing_enabled(false);

  const std::string json = tracer().chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
  // One complete ("X") event per span, each with the required fields.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2);
  EXPECT_EQ(count_occurrences(json, "\"pid\":1"), 2);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 2);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 2);
  EXPECT_NE(json.find("\"name\":\"test.span.a\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"forwards\":640}"), std::string::npos);
}

// ----------------------------------------------------- stage attribution --

TEST(StageScope, ChargesForwardsToTheActiveStageAndRestoresOnExit) {
  ObsReset reset;
  set_metrics_enabled(true);
  EXPECT_EQ(current_forward_stage(), ForwardStage::kOther);
  {
    ForwardStageScope profile(ForwardStage::kProfile);
    EXPECT_EQ(current_forward_stage(), ForwardStage::kProfile);
    note_forwards(8);
    {
      ForwardStageScope sigma(ForwardStage::kSigma);
      note_forwards(3);
    }
    // Inner scope restored the outer attribution.
    EXPECT_EQ(current_forward_stage(), ForwardStage::kProfile);
    note_forwards(2);
  }
  EXPECT_EQ(current_forward_stage(), ForwardStage::kOther);
  note_forwards(5);  // unscoped work lands in the kOther bucket
  set_metrics_enabled(false);

  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.counter("stage.profile.forwards"), 10);
  EXPECT_EQ(snap.counter("stage.sigma.forwards"), 3);
  EXPECT_EQ(snap.counter("stage.other.forwards"), 5);
}

TEST(StageScope, DisabledMetricsRecordNothing) {
  ObsReset reset;
  {
    ForwardStageScope scope(ForwardStage::kObjective);
    note_forwards(100);
  }
  EXPECT_EQ(metrics().snapshot().counter("stage.objective.forwards"), 0);
}

// ------------------------------------------------------- acceptance sweep --
//
// The PR's acceptance criterion: with metrics enabled, a 3-objective x
// 4-target sweep over the NiN zoo model must report its forward passes
// split by stage and land the cache counters exactly where the serving
// algebra says: 12 queries = 1 charged profile + 11 profile hits, 4 sigma
// searches + 8 memo hits, 12 allocation tails, 0 plan replays — and the
// trace exported from the run must be valid Chrome-trace JSON.

TEST(ObsAcceptance, NinSweepStageAccountingCacheCountersAndTrace) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 97;
  zo.data_seed = 55;
  zo.calibration_images = 8;
  zo.head_images = 96;
  ZooModel m = build_model("nin", zo);

  DatasetConfig dc;
  dc.num_classes = 10;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  dc.seed = 55;
  SyntheticImageDataset ds(dc);

  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = 8;
  scfg.pipeline.harness.eval_images = 96;
  scfg.pipeline.harness.metric = AccuracyMetric::kLabels;
  scfg.pipeline.profiler.points = 5;
  scfg.pipeline.profiler.reps_per_point = 1;
  PlanService service(scfg);
  const PlanKey key = service.register_network(m.net, m.analyzed, ds);

  // Enable instrumentation only for the sweep itself: the zoo build above
  // issues its own forwards, which belong to nobody's stage budget.
  ObsReset reset;
  set_metrics_enabled(true);
  set_tracing_enabled(true);

  SweepSpec spec;
  spec.accuracy_targets = {0.02, 0.05, 0.10, 0.15};  // M = 4
  ObjectiveSpec uniform;
  uniform.name = "uniform";
  uniform.rho.assign(m.analyzed.size(), 1);
  spec.objectives = {objective_input_bits(m.net, m.analyzed),
                     objective_mac_energy(m.net, m.analyzed), uniform};  // N = 3
  const SweepResult sweep = run_sweep(service, key, spec);
  set_metrics_enabled(false);
  set_tracing_enabled(false);
  ASSERT_EQ(sweep.cells.size(), 12u);

  // Cache disposition: charged-once accounting across the 12 queries.
  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_misses, 1);
  EXPECT_EQ(s.profile_hits, 11);
  EXPECT_EQ(s.sigma_misses, 4);
  EXPECT_EQ(s.sigma_hits, 8);
  EXPECT_EQ(s.plan_misses, 12);
  EXPECT_EQ(s.plan_hits, 0);
  EXPECT_EQ(s.plan_evictions, 0);

  // The same numbers must be visible through the metrics registry (that is
  // what a serve operator actually scrapes).
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.counter("serve.profile.hits"), 11);
  EXPECT_EQ(snap.counter("serve.sigma.hits"), 8);
  EXPECT_EQ(snap.counter("serve.plan.misses"), 12);
  EXPECT_EQ(snap.counter("serve.plan.hits"), 0);

  // Forward passes split by stage: every pipeline stage reports nonzero
  // work, and the split exactly accounts for the harness's own total —
  // the paper's optimization-cost currency, now attributable.
  const std::int64_t harness_fwd = snap.counter("stage.harness.forwards");
  const std::int64_t profile_fwd = snap.counter("stage.profile.forwards");
  const std::int64_t sigma_fwd = snap.counter("stage.sigma.forwards");
  const std::int64_t objective_fwd = snap.counter("stage.objective.forwards");
  EXPECT_GT(harness_fwd, 0);
  EXPECT_GT(profile_fwd, 0);
  EXPECT_GT(sigma_fwd, 0);
  EXPECT_GT(objective_fwd, 0);
  EXPECT_EQ(harness_fwd + profile_fwd + sigma_fwd + objective_fwd, service.forward_count(key));
  // One sigma search per target, with converged brackets in-histogram.
  for (const auto& h : snap.histograms)
    if (h.name == "sigma.search.evaluations") EXPECT_EQ(h.count, 4);

  // The trace of the sweep exports as valid Chrome-trace JSON carrying the
  // stage and serve spans.
  const std::string json = tracer().chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_EQ(count_occurrences(json, "\"name\":\"serve.plan\""), 12);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"serve.sigma\""), 4);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"serve.profile\""), 1);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"sweep.run\""), 1);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"stage.profile\""), 1);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"stage.sigma\""), 4);
  EXPECT_GE(count_occurrences(json, "\"name\":\"stage.objective\""), 12);
}

}  // namespace
}  // namespace mupod
