// Graph-compiler structural battery: metamorphic/property tests over the
// rewriter plus the golden fusion-coverage report.
//
//   * Idempotence / fixpoint: running the structural rule set again (a
//     doubled rule order) emits the identical graph — the fixpoint is
//     genuine, not an artifact of iteration count.
//   * Rule-order invariance: all six permutations of {drop-noop,
//     fold-norm, fuse-relu} emit the identical graph (the rule set is
//     confluent by construction; this is the check that keeps it so).
//   * Guard unit tests: hand-built networks at each fusible/non-fusible
//     boundary — multi-consumer producers, conv->ReLU->BN ordering,
//     flatten before non-FC consumers, mixed-precision region splits.
//   * Golden coverage: per-zoo-model fusion report
//     (tests/golden/fusion_coverage.txt), regenerated with
//     --update-golden / MUPOD_UPDATE_GOLDEN=1 exactly like
//     plan_conformance. Counts are pure graph structure: independent of
//     worker count, ISA, and rule order, so the comparison is exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "compile/compiled_network.hpp"
#include "compile/graph_compiler.hpp"
#include "compile_testlib.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

using compiletest::RandomNet;
using compiletest::init_layer;
using compiletest::init_norm;
using compiletest::int8_formats;
using compiletest::make_random_net;
using compiletest::mixed_formats;

bool g_update_golden = false;

#ifndef MUPOD_SOURCE_DIR
#error "tests/CMakeLists.txt must define MUPOD_SOURCE_DIR"
#endif

std::string golden_path() {
  return std::string(MUPOD_SOURCE_DIR) + "/tests/golden/fusion_coverage.txt";
}

ZooOptions small_zoo_options() {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 4;
  return zo;
}

constexpr RewriteRule kAllRules[] = {RewriteRule::kDropNoop, RewriteRule::kFoldNorm,
                                     RewriteRule::kFuseReLU};

// ---------------------------------------------------------------------------
// Metamorphic: fixpoint + rule-order invariance.

TEST(Compile, RewriteIsDeterministicAndIdempotent) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomNet r = make_random_net(seed);
    const auto formats = mixed_formats(r.analyzed.size());
    GraphCompiler gc;
    const CompiledGraph once = gc.rewrite(r.net, r.analyzed, formats);
    const CompiledGraph again = gc.rewrite(r.net, r.analyzed, formats);
    EXPECT_EQ(once, again) << "seed " << seed << ": rewrite not deterministic";

    // Doubling the rule order runs the whole fixpoint twice; a true
    // fixpoint emits the same graph (compile(compile(g)) == compile(g)).
    const RewriteRule doubled[] = {RewriteRule::kDropNoop, RewriteRule::kFoldNorm,
                                   RewriteRule::kFuseReLU, RewriteRule::kDropNoop,
                                   RewriteRule::kFoldNorm, RewriteRule::kFuseReLU};
    const CompiledGraph twice = gc.rewrite_with_order(r.net, r.analyzed, formats, doubled);
    EXPECT_EQ(once, twice) << "seed " << seed << ": rule fixpoint is not idempotent";
  }
}

TEST(Compile, RuleOrderDoesNotChangeEmittedGraph) {
  std::vector<RewriteRule> order(kAllRules, kAllRules + 3);
  std::sort(order.begin(), order.end(),
            [](RewriteRule a, RewriteRule b) { return static_cast<int>(a) < static_cast<int>(b); });
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomNet r = make_random_net(seed);
    const auto formats = mixed_formats(r.analyzed.size());
    GraphCompiler gc;
    const CompiledGraph ref = gc.rewrite(r.net, r.analyzed, formats);
    std::vector<RewriteRule> perm = order;
    do {
      const CompiledGraph g = gc.rewrite_with_order(r.net, r.analyzed, formats, perm);
      EXPECT_EQ(ref, g) << "seed " << seed << ": rule order changed the emitted graph";
    } while (std::next_permutation(perm.begin(), perm.end(),
                                   [](RewriteRule a, RewriteRule b) {
                                     return static_cast<int>(a) < static_cast<int>(b);
                                   }));
  }
}

TEST(Compile, RuleOrderInvarianceHoldsOnZooModels) {
  for (const char* name : {"tiny", "nin", "mobilenet"}) {
    ZooModel m = build_model(name, small_zoo_options());
    const auto formats = mixed_formats(m.analyzed.size());
    GraphCompiler gc;
    const CompiledGraph ref = gc.rewrite(m.net, m.analyzed, formats);
    std::vector<RewriteRule> perm(kAllRules, kAllRules + 3);
    std::sort(perm.begin(), perm.end(), [](RewriteRule a, RewriteRule b) {
      return static_cast<int>(a) < static_cast<int>(b);
    });
    do {
      EXPECT_EQ(ref, gc.rewrite_with_order(m.net, m.analyzed, formats, perm)) << name;
    } while (std::next_permutation(perm.begin(), perm.end(),
                                   [](RewriteRule a, RewriteRule b) {
                                     return static_cast<int>(a) < static_cast<int>(b);
                                   }));
  }
}

// ---------------------------------------------------------------------------
// Guard unit tests on hand-built boundary networks.

TEST(Compile, ConvNormReluChainFusesIntoOneStep) {
  Rng rng(7);
  Network net("chain");
  const int in = net.add_input("in", 3, 6, 6);
  Conv2DLayer::Config cc;
  cc.in_channels = 3;
  cc.out_channels = 4;
  cc.pad = 1;
  const int conv = net.add("conv", std::make_unique<Conv2DLayer>(cc), std::vector<int>{in});
  init_layer(&net, conv, &rng);
  const int bn =
      net.add("bn", std::make_unique<BatchNormScaleLayer>(4), std::vector<int>{conv});
  init_norm(&net, bn, &rng);
  const int relu = net.add("relu", std::make_unique<ReLULayer>(), std::vector<int>{bn});
  net.finalize();

  const CompiledGraph g = GraphCompiler().rewrite(net);
  EXPECT_EQ(g.coverage.steps, 2);  // input + fused conv
  EXPECT_EQ(g.coverage.norm_folded, 1);
  EXPECT_EQ(g.coverage.relu_fused, 1);
  EXPECT_TRUE(g.nodes[conv].relu_fused);
  EXPECT_EQ(g.nodes[conv].norm_src, bn);
  EXPECT_EQ(g.resolve(relu), conv);
}

TEST(Compile, ConvReluNormKeepsNormSeparate) {
  // conv -> ReLU -> BN: the store epilogue applies norm THEN relu, so
  // folding here would reorder; the BN must stay its own step.
  Rng rng(7);
  Network net("rbn");
  const int in = net.add_input("in", 3, 6, 6);
  Conv2DLayer::Config cc;
  cc.in_channels = 3;
  cc.out_channels = 4;
  cc.pad = 1;
  const int conv = net.add("conv", std::make_unique<Conv2DLayer>(cc), std::vector<int>{in});
  init_layer(&net, conv, &rng);
  const int relu = net.add("relu", std::make_unique<ReLULayer>(), std::vector<int>{conv});
  const int bn = net.add("bn", std::make_unique<BatchNormScaleLayer>(4), std::vector<int>{relu});
  init_norm(&net, bn, &rng);
  net.finalize();

  const CompiledGraph g = GraphCompiler().rewrite(net);
  EXPECT_TRUE(g.nodes[conv].relu_fused);
  EXPECT_EQ(g.nodes[conv].norm_src, -1);
  EXPECT_EQ(g.coverage.norm_folded, 0);
  EXPECT_LT(g.nodes[bn].absorbed_into, 0) << "BN across a fused ReLU must keep executing";
}

TEST(Compile, MultiConsumerProducerBlocksFusionAndElision) {
  // conv0 feeds BOTH a ReLU and a second conv: nothing may absorb into
  // conv0, and with a plan its store must stay float (two readers).
  Rng rng(9);
  Network net("branch");
  const int in = net.add_input("in", 3, 6, 6);
  Conv2DLayer::Config cc;
  cc.in_channels = 3;
  cc.out_channels = 4;
  cc.pad = 1;
  const int c0 = net.add("c0", std::make_unique<Conv2DLayer>(cc), std::vector<int>{in});
  init_layer(&net, c0, &rng);
  const int relu = net.add("relu", std::make_unique<ReLULayer>(), std::vector<int>{c0});
  Conv2DLayer::Config c2;
  c2.in_channels = 4;
  c2.out_channels = 4;
  c2.pad = 1;
  const int c1 = net.add("c1", std::make_unique<Conv2DLayer>(c2), std::vector<int>{c0});
  init_layer(&net, c1, &rng);
  const int c1r = net.add("c1relu", std::make_unique<ReLULayer>(), std::vector<int>{c1});
  const int add =
      net.add("add", std::make_unique<EltwiseAddLayer>(), std::vector<int>{relu, c1r});
  net.finalize();
  (void)add;

  const std::vector<int> analyzed = {c0, c1};
  const CompiledGraph g =
      GraphCompiler().rewrite(net, analyzed, int8_formats(analyzed.size()));
  EXPECT_FALSE(g.nodes[c0].relu_fused) << "ReLU on a two-consumer producer must not fuse";
  EXPECT_LT(g.nodes[relu].absorbed_into, 0) << "that ReLU must keep executing";
  EXPECT_TRUE(g.nodes[c1].relu_fused) << "single-consumer sibling still fuses";
  EXPECT_FALSE(g.nodes[c0].quant_store) << "two readers: no cross-layer requantize";
}

TEST(Compile, NoopDropGuards) {
  Rng rng(11);
  // dropout always drops, including as the output node; flatten drops
  // only when all its live consumers are inner products.
  Network net("noops");
  const int in = net.add_input("in", 2, 4, 4);
  Conv2DLayer::Config cc;
  cc.in_channels = 2;
  cc.out_channels = 2;
  cc.kernel_h = cc.kernel_w = 1;
  const int conv = net.add("conv", std::make_unique<Conv2DLayer>(cc), std::vector<int>{in});
  init_layer(&net, conv, &rng);
  const int drop = net.add("drop", std::make_unique<DropoutLayer>(), std::vector<int>{conv});
  const int flat = net.add("flat", std::make_unique<FlattenLayer>(), std::vector<int>{drop});
  const int fc = net.add("fc", std::make_unique<InnerProductLayer>(2 * 4 * 4, 3),
                         std::vector<int>{flat});
  init_layer(&net, fc, &rng);
  const int dropout_out =
      net.add("drop_out", std::make_unique<DropoutLayer>(), std::vector<int>{fc});
  net.finalize();

  const CompiledGraph g = GraphCompiler().rewrite(net);
  EXPECT_GE(g.nodes[drop].absorbed_into, 0);
  EXPECT_GE(g.nodes[flat].absorbed_into, 0) << "flatten before FC is a noop";
  EXPECT_GE(g.nodes[dropout_out].absorbed_into, 0) << "dropout as output node still drops";
  EXPECT_EQ(g.resolve(dropout_out), fc);
  EXPECT_EQ(g.coverage.noops_dropped, 3);

  // Flatten whose consumer is NOT an inner product stays.
  Network net2("keepflat");
  const int in2 = net2.add_input("in", 2, 4, 4);
  const int flat2 = net2.add("flat", std::make_unique<FlattenLayer>(), std::vector<int>{in2});
  net2.finalize();
  const CompiledGraph g2 = GraphCompiler().rewrite(net2);
  EXPECT_LT(g2.nodes[flat2].absorbed_into, 0)
      << "flatten that produces the observed output shape must keep executing";
}

TEST(Compile, MixedPrecisionSplitsRegionsAtTypeBoundaries) {
  // Three chained convs, the middle one lowered to int16: the int8->int16
  // and int16->int8 edges must NOT elide, leaving zero fused regions.
  Rng rng(13);
  Network net("mixed");
  int cur = net.add_input("in", 3, 6, 6);
  std::vector<int> convs;
  for (int i = 0; i < 3; ++i) {
    Conv2DLayer::Config cc;
    cc.in_channels = i == 0 ? 3 : 4;
    cc.out_channels = 4;
    cc.pad = 1;
    cur = net.add("conv" + std::to_string(i), std::make_unique<Conv2DLayer>(cc),
                  std::vector<int>{cur});
    init_layer(&net, cur, &rng);
    convs.push_back(cur);
  }
  net.finalize();

  const std::vector<FixedPointFormat> split = {{2, 5}, {2, 12}, {2, 5}};
  CompileOptions co;
  co.weight_bits = 8;
  const CompiledGraph g = GraphCompiler(co).rewrite(net, convs, split);
  EXPECT_EQ(g.nodes[convs[0]].type, QType::kInt8);
  EXPECT_EQ(g.nodes[convs[1]].type, QType::kInt16);
  EXPECT_EQ(g.coverage.qdq_elided, 0) << "type boundary must not requantize-elide";
  EXPECT_EQ(g.coverage.regions, 0);

  // Same chain, homogeneous formats: one region spanning all three convs.
  const CompiledGraph h = GraphCompiler(co).rewrite(net, convs, int8_formats(3));
  EXPECT_EQ(h.coverage.qdq_elided, 2);
  EXPECT_EQ(h.coverage.regions, 1);
  EXPECT_EQ(h.coverage.largest_region, 3);
  EXPECT_TRUE(h.nodes[convs[0]].quant_store);
  EXPECT_TRUE(h.nodes[convs[1]].in_quantized);
  EXPECT_TRUE(h.nodes[convs[2]].in_quantized);
  EXPECT_FALSE(h.nodes[convs[2]].quant_store) << "region tail stores dequantized floats";
}

TEST(Compile, CompiledNetworkStepMappingIsConsistent) {
  for (std::uint64_t seed : {3u, 6u}) {
    RandomNet r = make_random_net(seed);
    CompileOptions co;
    co.weight_bits = 8;
    const CompiledNetwork cn =
        GraphCompiler(co).compile(r.net, r.analyzed, int8_formats(r.analyzed.size()));
    const CompiledGraph& g = cn.graph();
    int executing = 0;
    for (int id = 0; id < r.net.num_nodes(); ++id) {
      if (g.nodes[static_cast<std::size_t>(id)].absorbed_into >= 0) {
        EXPECT_EQ(cn.step_of_src(id), -1);
      } else {
        const int si = cn.step_of_src(id);
        ASSERT_GE(si, 0);
        EXPECT_EQ(cn.steps()[static_cast<std::size_t>(si)].src, id);
        ++executing;
      }
    }
    EXPECT_EQ(executing, static_cast<int>(cn.steps().size()));
    EXPECT_EQ(cn.steps()[static_cast<std::size_t>(cn.output_step())].src,
              g.resolve(r.net.output_node()));
    EXPECT_EQ(g.coverage.steps, executing);
  }
}

// ---------------------------------------------------------------------------
// Vacuity guard: across the generator's seed sweep plus the zoo, every
// rewrite rule and the region former fired at least once, and every
// non-fusible guard was exercised (some ReLU/norm/flatten survived).
TEST(Compile, VacuityGuardEveryRuleFires) {
  FusionCoverage total;
  int kept_relu = 0, kept_norm = 0, kept_flatten = 0;
  CompileOptions co;
  co.weight_bits = 8;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomNet r = make_random_net(seed);
    const CompiledGraph g =
        GraphCompiler(co).rewrite(r.net, r.analyzed, int8_formats(r.analyzed.size()));
    total.relu_fused += g.coverage.relu_fused;
    total.norm_folded += g.coverage.norm_folded;
    total.noops_dropped += g.coverage.noops_dropped;
    total.qdq_elided += g.coverage.qdq_elided;
    total.regions += g.coverage.regions;
    total.largest_region = std::max(total.largest_region, g.coverage.largest_region);
    for (const IrNode& n : g.nodes) {
      if (n.absorbed_into >= 0) continue;
      if (n.kind == LayerKind::kReLU) ++kept_relu;
      if (n.kind == LayerKind::kBatchNormScale) ++kept_norm;
      if (n.kind == LayerKind::kFlatten) ++kept_flatten;
    }
  }
  EXPECT_GT(total.relu_fused, 0) << "fuse-relu never fired: battery is vacuous";
  EXPECT_GT(total.norm_folded, 0) << "fold-norm never fired: battery is vacuous";
  EXPECT_GT(total.noops_dropped, 0) << "drop-noop never fired: battery is vacuous";
  EXPECT_GT(total.qdq_elided, 0) << "requantize elision never fired: battery is vacuous";
  EXPECT_GT(total.regions, 0);
  EXPECT_GE(total.largest_region, 2);
  EXPECT_GT(kept_relu, 0) << "generator never produced a non-fusible ReLU";
  EXPECT_GT(kept_norm, 0) << "generator never produced a non-foldable norm";
}

// ---------------------------------------------------------------------------
// Golden fusion-coverage report, one float and one int8-plan line per zoo
// model. Update flow identical to plan_conformance:
//   ./mupod_compile_tests --update-golden   (or MUPOD_UPDATE_GOLDEN=1)
TEST(Compile, FusionCoverageMatchesGolden) {
  std::ostringstream all;
  CompileOptions co8;
  co8.weight_bits = 8;
  int total_elided = 0, max_region = 0;
  for (const std::string& name : zoo_model_names()) {
    ZooModel m = build_model(name, small_zoo_options());
    const CompiledGraph gf = GraphCompiler().rewrite(m.net);
    all << render_fusion_coverage(name + " float:", gf.coverage) << '\n';
    const CompiledGraph gi =
        GraphCompiler(co8).rewrite(m.net, m.analyzed, int8_formats(m.analyzed.size()));
    all << render_fusion_coverage(name + " int8:", gi.coverage) << '\n';

    // Committed floor, independent of the golden: every zoo model has at
    // least one fusible ReLU. Elision is aggregated: branch-everywhere
    // topologies (SqueezeNet fire modules: every conv output feeds two
    // expand convs or a concat) legitimately have no single-consumer
    // integer edge to elide.
    EXPECT_GT(gf.coverage.relu_fused, 0) << name;
    total_elided += gi.coverage.qdq_elided;
    max_region = std::max(max_region, gi.coverage.largest_region);
  }
  EXPECT_GT(total_elided, 0) << "no zoo model elided any boundary";
  EXPECT_GE(max_region, 2);
  const std::string actual = all.str();

  if (g_update_golden) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    std::fprintf(stderr, "updated %s\n", golden_path().c_str());
    return;
  }
  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — run mupod_compile_tests --update-golden once and commit it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "fusion coverage drifted from the golden snapshot; if intentional re-run with "
         "--update-golden and commit the new file";
}

}  // namespace
}  // namespace mupod

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--update-golden") mupod::g_update_golden = true;
  if (std::getenv("MUPOD_UPDATE_GOLDEN") != nullptr) mupod::g_update_golden = true;
  return RUN_ALL_TESTS();
}
