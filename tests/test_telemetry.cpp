// Telemetry layer battery (src/obs/telemetry, src/obs/trace ring):
//
//  1. Tracer ring wraparound: dropped-event accounting and the
//     per-thread chronological-order invariant under concurrent
//     recorders (this file is in the `sanitize` ctest label, so the
//     TSan lane exercises the ring mutex and the relaxed counters).
//  2. TelemetryExporter: the explicit-clock due()/flush() split, the
//     EXACT delta discipline (summing every JSONL record's counter
//     deltas reproduces the final snapshot to the count), Prometheus
//     name mangling, and the background driver thread.
//  3. FlightRecorder: shard-ring retention, trigger-based incident
//     bundles with the max_incidents bound.
//  4. The acceptance chaos run from the PR issue: seeded kill +
//     straggler + hedge through ClusterController AND a deadline-laden
//     burst through InferenceServer, asserting that EVERY request ends
//     with a connected trace (submit -> dispatch -> attempts -> resolve
//     sharing one trace_id, present in the Chrome-trace export) or a
//     flight-recorder record with a terminal failure status — and that
//     the exporter's JSONL series sums exactly to the final snapshot.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/fault.hpp"
#include "data/synthetic.hpp"
#include "infer/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// Minimal recursive-descent JSON well-formedness checker (the repo has a
// writer but deliberately no parser; schema details are asserted with
// targeted substring checks). Same shape as the one in test_obs.cpp.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    i_ = 0;
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;
    ws();
    if (peek() == '}') { ++i_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;
    ws();
    if (peek() == ']') { ++i_; return true; }
    while (true) {
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') { ++i_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r'))
      ++i_;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  const std::string& s_;
  std::size_t i_ = 0;
};

bool json_well_formed(const std::string& s) { return JsonChecker(s).valid(); }

// Mirrors trace.cpp's append_hex: how async/flow events spell their
// Perfetto correlation "id" in the Chrome-trace export.
std::string hex_id(std::uint64_t v) {
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const int nib = static_cast<int>((v >> shift) & 0xF);
    if (nib == 0 && !started && shift != 0) continue;
    started = true;
    out += "0123456789abcdef"[nib];
  }
  return out;
}

// Extracts a flat {"name":int,...} object embedded under `key` in one
// JSONL record line. Counters/gauges objects are flat by construction
// (histograms are the only nested section, and it comes after both).
std::map<std::string, std::int64_t> parse_int_object(const std::string& line,
                                                     const std::string& key) {
  std::map<std::string, std::int64_t> out;
  const std::string tag = "\"" + key + "\":{";
  std::size_t i = line.find(tag);
  if (i == std::string::npos) return out;
  i += tag.size();
  while (i < line.size() && line[i] != '}') {
    const std::size_t q0 = line.find('"', i);
    const std::size_t q1 = line.find('"', q0 + 1);
    const std::size_t colon = line.find(':', q1);
    const std::size_t end = line.find_first_of(",}", colon);
    if (q0 == std::string::npos || q1 == std::string::npos || end == std::string::npos) break;
    out[line.substr(q0 + 1, q1 - q0 - 1)] = std::stoll(line.substr(colon + 1, end - colon - 1));
    i = line[end] == ',' ? end + 1 : end;
  }
  return out;
}

// Sum of one histogram's "count" deltas in a JSONL record line.
std::int64_t histogram_count_delta(const std::string& line, const std::string& name) {
  const std::size_t h = line.find("\"histograms\":{");
  if (h == std::string::npos) return 0;
  const std::string tag = "\"" + name + "\":{\"count\":";
  const std::size_t at = line.find(tag, h);
  if (at == std::string::npos) return 0;
  return std::stoll(line.substr(at + tag.size()));
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);)
    if (!line.empty()) lines.push_back(line);
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  return std::string((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
}

// Start every test from a clean slate and leave the process-global
// switches the way the rest of the suite expects (off).
struct TelReset {
  TelReset() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
    set_flight_recording_enabled(false);
    metrics().reset();
    tracer().clear();
    flight_recorder().clear();
    flight_recorder().configure(FlightRecorderConfig{});
  }
  ~TelReset() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
    set_flight_recording_enabled(false);
  }
};

// ----------------------------------------------------- tracer ring buffer --

TEST(TracerRing, WrapDropsOldestCountsDroppedAndKeepsChronology) {
  Tracer t(8);
  for (int i = 0; i < 20; ++i) {
    TraceEvent e;
    e.name = "ev";
    e.ts_us = static_cast<std::uint64_t>(i);
    e.args[0] = {"seq", i};
    e.n_args = 1;
    t.record(std::move(e));
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.dropped(), 12);

  // events() is oldest-first: exactly the newest 8, in recording order.
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].args[0].second, static_cast<std::int64_t>(12 + i));

  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0);
}

TEST(TracerRing, ConcurrentRecordersStayPerThreadChronologicalAcrossWrap) {
  // A ring far smaller than the event volume, hammered from 4 threads:
  // every event is accounted (retained + dropped == recorded), and the
  // retained subsequence of each thread is strictly ordered — wraparound
  // may drop a prefix, never shuffle.
  Tracer t(64);
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int tid = 0; tid < kThreads; ++tid) {
    ts.emplace_back([&t, tid] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.name = "ev";
        e.args[0] = {"thread", tid};
        e.args[1] = {"seq", i};
        e.n_args = 2;
        t.record(std::move(e));
      }
    });
  }
  for (std::thread& th : ts) th.join();

  EXPECT_EQ(t.size(), 64u);
  EXPECT_EQ(static_cast<std::int64_t>(t.size()) + t.dropped(),
            static_cast<std::int64_t>(kThreads) * kPerThread);

  std::map<std::int64_t, std::int64_t> last_seq;  // thread -> last seen seq
  for (const TraceEvent& e : t.events()) {
    ASSERT_EQ(e.n_args, 2);
    const std::int64_t tid = e.args[0].second;
    const std::int64_t seq = e.args[1].second;
    const auto it = last_seq.find(tid);
    if (it != last_seq.end())
      EXPECT_LT(it->second, seq) << "thread " << tid << " events out of order";
    last_seq[tid] = seq;
  }
}

// ------------------------------------------------------ telemetry exporter --

TEST(TelemetryExporter, DueIsImmediateAtFirstThenFollowsThePeriod) {
  TelReset reset;
  TelemetryConfig cfg;
  cfg.period_us = 1000;
  TelemetryExporter exp(cfg);
  EXPECT_TRUE(exp.due(5));  // never flushed: due immediately
  exp.flush(5);
  EXPECT_FALSE(exp.due(5 + 999));
  EXPECT_TRUE(exp.due(5 + 1000));
}

TEST(TelemetryExporter, DeltaRecordsSumExactlyToTheFinalSnapshot) {
  TelReset reset;
  set_metrics_enabled(true);
  const std::string path = ::testing::TempDir() + "mupod_tel_unit.jsonl";
  std::remove(path.c_str());

  TelemetryConfig cfg;
  cfg.jsonl_path = path;
  TelemetryExporter exp(cfg);

  metrics().counter("telt.alpha.count").add(3);
  metrics().histogram("telt.lat.ms", {1.0, 10.0}).record(0.5);
  exp.flush(1000);

  metrics().counter("telt.alpha.count").add(4);
  metrics().counter("telt.beta.count").add(7);
  metrics().gauge("telt.depth.now").set(11);
  metrics().histogram("telt.lat.ms", {1.0, 10.0}).record(5.0);
  metrics().histogram("telt.lat.ms", {1.0, 10.0}).record(20.0);
  exp.flush(2000);

  metrics().counter("telt.beta.count").add(1);
  exp.flush(3000);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(exp.records_written(), 3);
  EXPECT_EQ(exp.io_errors(), 0);

  std::map<std::string, std::int64_t> sums;
  std::int64_t hist_count = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line)) << line;
    for (const auto& [name, delta] : parse_int_object(line, "counters")) sums[name] += delta;
    hist_count += histogram_count_delta(line, "telt.lat.ms");
  }
  // Zero deltas are omitted: the last record only moved beta.
  EXPECT_EQ(lines[2].find("telt.alpha.count"), std::string::npos);
  EXPECT_NE(lines[2].find("telt.beta.count"), std::string::npos);
  // Gauges export current values, not deltas.
  EXPECT_NE(lines[1].find("\"telt.depth.now\":11"), std::string::npos);

  // The exactness contract: integrate the series, land on the snapshot.
  const MetricsSnapshot snap = exp.last_snapshot();
  std::map<std::string, std::int64_t> want;
  for (const auto& c : snap.counters)
    if (c.value != 0) want[c.name] = c.value;
  EXPECT_EQ(sums, want);
  for (const auto& h : snap.histograms)
    if (h.name == "telt.lat.ms") EXPECT_EQ(hist_count, h.count);
  std::remove(path.c_str());
}

TEST(TelemetryExporter, PrometheusTextManglesNamesAndEmitsCumulativeBuckets) {
  TelReset reset;
  set_metrics_enabled(true);
  metrics().counter("telt.req.ok").add(5);
  metrics().gauge("telt.depth.now").set(-2);
  HistogramMetric& h = metrics().histogram("telt.lat.ms", {1.0, 10.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);

  const std::string text = TelemetryExporter::prometheus_text(metrics().snapshot());
  EXPECT_NE(text.find("# TYPE mupod_telt_req_ok counter"), std::string::npos);
  EXPECT_NE(text.find("mupod_telt_req_ok 5"), std::string::npos);
  EXPECT_NE(text.find("mupod_telt_depth_now -2"), std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="10" holds 2, +Inf holds all 3.
  EXPECT_NE(text.find("mupod_telt_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mupod_telt_lat_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("mupod_telt_lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("mupod_telt_lat_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("mupod_telt_lat_ms_sum "), std::string::npos);
}

TEST(TelemetryExporter, BackgroundThreadFlushesAndStopWritesTheFinalRecord) {
  TelReset reset;
  set_metrics_enabled(true);
  const std::string path = ::testing::TempDir() + "mupod_tel_bg.jsonl";
  std::remove(path.c_str());

  TelemetryConfig cfg;
  cfg.jsonl_path = path;
  cfg.period_us = 2000;  // 2 ms
  TelemetryExporter exp(cfg);
  exp.start();
  metrics().counter("telt.bg.count").add(9);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exp.stop();  // idempotent; joins and flushes the final record
  exp.stop();

  EXPECT_GE(exp.records_written(), 2);  // at least one periodic + the final
  EXPECT_EQ(exp.io_errors(), 0);
  const std::vector<std::string> lines = read_lines(path);
  EXPECT_EQ(static_cast<std::int64_t>(lines.size()), exp.records_written());
  std::int64_t sum = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line)) << line;
    sum += parse_int_object(line, "counters")["telt.bg.count"];
  }
  EXPECT_EQ(sum, 9);  // the final flush caught everything
  std::remove(path.c_str());
}

// --------------------------------------------------------- flight recorder --

RequestRecord make_record(std::uint64_t id, std::int64_t t_us, bool ok = true) {
  RequestRecord r;
  r.request_id = id;
  r.trace_id = id * 1000;
  r.source = "infer";
  r.status = ok ? "ok" : "deadline_exceeded";
  r.ok = ok;
  r.deadline_hit = !ok;
  r.total_us = 100;
  r.t_us = t_us;
  return r;
}

TEST(FlightRecorder, ShardRingRetainsNewestAndCountsOverwrites) {
  FlightRecorderConfig cfg;
  cfg.capacity_per_shard = 4;
  cfg.on_deadline_exceeded = false;
  FlightRecorder fr(cfg);

  // Single thread -> single shard: total retention is one ring.
  for (int i = 1; i <= 10; ++i) fr.record(make_record(static_cast<std::uint64_t>(i), i));
  EXPECT_EQ(fr.recorded(), 10);
  EXPECT_EQ(fr.overwritten(), 6);

  const std::vector<RequestRecord> recs = fr.recent();
  ASSERT_EQ(recs.size(), 4u);
  for (std::size_t i = 0; i < recs.size(); ++i)
    EXPECT_EQ(recs[i].request_id, 7 + i);  // newest 4, oldest first

  fr.clear();
  EXPECT_EQ(fr.recorded(), 0);
  EXPECT_TRUE(fr.recent().empty());
}

TEST(FlightRecorder, DeadlineTriggerWritesBoundedIncidentBundles) {
  const std::string dir = ::testing::TempDir() + "mupod_fr_unit";
  std::filesystem::remove_all(dir);

  FlightRecorderConfig cfg;
  cfg.incident_dir = dir;
  cfg.max_incidents = 2;
  FlightRecorder fr(cfg);

  fr.record(make_record(1, 10));
  fr.record(make_record(2, 20, /*ok=*/false));  // incident 0
  fr.record(make_record(3, 30, /*ok=*/false));  // incident 1
  fr.record(make_record(4, 40, /*ok=*/false));  // over the bound: suppressed

  EXPECT_EQ(fr.incidents_written(), 2);
  EXPECT_EQ(fr.incidents_suppressed(), 1);

  const std::vector<IncidentInfo> incidents = fr.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  for (const IncidentInfo& info : incidents) {
    EXPECT_EQ(info.trigger, "deadline_exceeded");
    ASSERT_FALSE(info.path.empty());
    EXPECT_TRUE(std::filesystem::exists(info.path));
    const std::string bundle = read_file(info.path);
    EXPECT_TRUE(json_well_formed(bundle)) << info.path;
    EXPECT_NE(bundle.find("\"incident\""), std::string::npos);
    EXPECT_NE(bundle.find("\"records\""), std::string::npos);
    EXPECT_NE(bundle.find("\"spans\""), std::string::npos);
    EXPECT_NE(bundle.find("\"metric_deltas\""), std::string::npos);
    EXPECT_NE(bundle.find("\"trigger\":\"deadline_exceeded\""), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, SlowRequestThresholdTriggersAndExternalTriggerIsHonored) {
  FlightRecorderConfig cfg;
  cfg.slow_request_ms = 1.0;
  FlightRecorder fr(cfg);  // no incident_dir: triggers evaluate, nothing written

  RequestRecord r = make_record(1, 10);
  r.total_us = 500;  // under threshold
  fr.record(r);
  EXPECT_EQ(fr.incidents_written(), 0);
  r.total_us = 5000;  // 5 ms > 1 ms
  fr.record(r);
  EXPECT_EQ(fr.incidents_written(), 1);
  ASSERT_EQ(fr.incidents().size(), 1u);
  EXPECT_EQ(fr.incidents()[0].trigger, "slow_request");
  EXPECT_TRUE(fr.incidents()[0].path.empty());  // nothing on disk

  fr.incident("breaker_open", "node 2 circuit breaker closed -> open");
  EXPECT_EQ(fr.incidents_written(), 2);
  EXPECT_EQ(fr.incidents()[1].trigger, "breaker_open");
  EXPECT_TRUE(json_well_formed(fr.incident_bundle_json(fr.incidents()[1])));
}

// -------------------------------------------------- chaos acceptance sweep --

struct ChaosFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
};

const ChaosFixture& chaos_fixture() {
  static ChaosFixture* f = [] {
    auto* fx = new ChaosFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 606;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    zo.head_images = 0;
    fx->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    fx->dataset = std::make_unique<SyntheticImageDataset>(dc);
    return fx;
  }();
  return *f;
}

PlanServiceConfig chaos_service_config() {
  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = 8;
  scfg.pipeline.harness.eval_images = 64;
  scfg.pipeline.profiler.points = 5;
  return scfg;
}

// Patient everywhere except the chaos knobs under test: quick hedges, a
// short attempt timeout so a killed node's parked dispatch becomes a
// breaker failure within the test, and a threshold-1 breaker.
ClusterConfig chaos_cluster_config() {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replicas = 2;
  cfg.node_threads = 2;
  cfg.attempt_timeout_us = 400'000;
  cfg.hedge_delay_us = 25'000;
  cfg.deadline_us = 60'000'000;
  cfg.max_attempts = 6;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.cooldown_us = 60'000'000;  // stays open; no flapping mid-test
  return cfg;
}

TEST(TelemetryChaos, EveryRequestHasAConnectedTraceOrATerminalFlightRecord) {
  TelReset reset;
  const ChaosFixture& f = chaos_fixture();

  const std::string incident_dir = ::testing::TempDir() + "mupod_chaos_incidents";
  const std::string jsonl_path = ::testing::TempDir() + "mupod_chaos_tel.jsonl";
  std::filesystem::remove_all(incident_dir);
  std::remove(jsonl_path.c_str());

  set_metrics_enabled(true);
  FlightRecorderConfig fcfg;
  fcfg.incident_dir = incident_dir;
  fcfg.max_incidents = 6;
  flight_recorder().configure(fcfg);
  set_flight_recording_enabled(true);

  TelemetryConfig tcfg;
  tcfg.jsonl_path = jsonl_path;
  TelemetryExporter exporter(tcfg);
  std::int64_t tel_now = 0;
  exporter.flush(tel_now += 1'000'000);  // baseline record

  // --- cluster leg: straggler + hedge, then a node kill -------------------
  ClusterController cluster(chaos_cluster_config(), chaos_service_config());
  const PlanKey key = cluster.register_network(f.model.net, f.model.analyzed, *f.dataset);
  const PlanQuery q = [&] {
    PlanQuery query;
    query.accuracy_target = 0.02;
    query.objective = objective_input_bits(f.model.net, f.model.analyzed);
    return query;
  }();
  // Warm every replica's own PlanService (bypassing the router) so the
  // chaos queries only exercise the memoized path — then start tracing,
  // so the warm pipelines can't wrap the ring over the request events.
  cluster.replicate_profile(key);
  for (int id : cluster.replicas_for_hash(key.net_hash)) cluster.node(id).service().plan(key, q);
  set_tracing_enabled(true);

  std::vector<ClusterQueryResult> cluster_results;
  cluster_results.push_back(cluster.plan(key, q));
  ASSERT_TRUE(cluster_results[0].ok) << cluster_results[0].error;

  // Straggler: stall the node that just served far past the hedge delay;
  // the hedge to the other replica must win.
  FaultSchedule stall;
  stall.kind = FaultKind::kDelay;
  stall.delay_us = 3'000'000;
  cluster.faults().arm(cluster.node(cluster_results[0].node).fault_point(), stall);
  cluster_results.push_back(cluster.plan(key, q));
  cluster.faults().disarm(cluster.node(cluster_results[0].node).fault_point());
  ASSERT_TRUE(cluster_results[1].ok) << cluster_results[1].error;
  EXPECT_GE(cluster_results[1].hedges, 1);
  EXPECT_TRUE(cluster_results[1].hedge_won);
  exporter.flush(tel_now += 1'000'000);

  // Kill the hedge winner; queries must fail over to surviving replicas.
  const int victim = cluster_results[1].node;
  cluster.kill_node(victim);
  for (int i = 0; i < 4; ++i) {
    cluster_results.push_back(cluster.plan(key, q));
    ASSERT_TRUE(cluster_results.back().ok) << cluster_results.back().error;
    EXPECT_NE(cluster_results.back().node, victim);
  }
  // Let the parked dispatches cross the attempt deadline, then sweep: the
  // timeout becomes a breaker failure, the breaker opens, and the
  // on_transition hook dumps a breaker_open incident.
  std::this_thread::sleep_for(
      std::chrono::microseconds(cluster.config().attempt_timeout_us + 100'000));
  cluster.sweep_pending();
  exporter.flush(tel_now += 1'000'000);

  // --- infer leg: batched serving with deadline-doomed requests ------------
  InferenceServerConfig icfg;
  icfg.batch.max_batch = 4;
  icfg.batch.max_wait_us = 2000;
  icfg.max_queue = 64;
  InferenceServer server(icfg);
  server.register_model("tiny", f.model.net, f.model.analyzed);
  server.start();

  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 24; ++i) {
    Tensor img(Shape({1, 3, 16, 16}));
    f.dataset->render_image(i, img, 0);
    InferOptions opts;
    if (i % 6 == 5) opts.deadline_us = 1;  // doomed: expires before any batch cuts
    futs.push_back(server.submit(std::move(img), opts));
  }
  std::vector<InferenceResult> infer_results;
  for (auto& fu : futs) infer_results.push_back(fu.get());
  server.stop();
  exporter.flush(tel_now += 1'000'000);

  // --- acceptance: every request -> connected trace OR failure record -----
  const std::vector<TraceEvent> events = tracer().events();
  EXPECT_EQ(tracer().dropped(), 0);  // the ring held the whole chaos run
  std::map<std::uint64_t, std::set<char>> phases_by_trace;
  for (const TraceEvent& e : events)
    if (e.ctx.valid()) phases_by_trace[e.ctx.trace_id].insert(e.ph);

  const std::string chrome = tracer().chrome_trace_json();
  EXPECT_TRUE(json_well_formed(chrome));

  const auto expect_connected = [&](std::uint64_t trace_id, const char* what) {
    ASSERT_NE(trace_id, 0u) << what;
    const auto it = phases_by_trace.find(trace_id);
    ASSERT_NE(it, phases_by_trace.end()) << what;
    // A connected lane: async begin + end, a flow arrow, and at least one
    // complete span, all sharing one trace id.
    EXPECT_TRUE(it->second.count('b')) << what;
    EXPECT_TRUE(it->second.count('e')) << what;
    EXPECT_TRUE(it->second.count('s') || it->second.count('t') || it->second.count('f')) << what;
    // And the Chrome export carries the same lane under the hex id.
    EXPECT_NE(chrome.find("\"id\":\"" + hex_id(trace_id) + "\""), std::string::npos) << what;
  };

  const std::vector<RequestRecord> records = flight_recorder().recent();
  for (const ClusterQueryResult& r : cluster_results) {
    expect_connected(r.trace_id, "cluster query");
    const auto rec = std::find_if(records.begin(), records.end(), [&](const RequestRecord& x) {
      return x.trace_id == r.trace_id && std::string(x.source) == "cluster";
    });
    ASSERT_NE(rec, records.end());  // every query leaves a terminal record
    EXPECT_EQ(rec->ok, r.ok);
    EXPECT_NE(std::string(rec->status), "");
  }
  // The hedged query's lane carries the hedge milestones.
  {
    const std::uint64_t hedged = cluster_results[1].trace_id;
    bool saw_hedge = false, saw_attempt = false;
    for (const TraceEvent& e : events) {
      if (!e.ctx.valid() || e.ctx.trace_id != hedged) continue;
      if (e.name == "cluster.hedge" || e.name == "cluster.hedge_won") saw_hedge = true;
      if (e.name == "cluster.attempt") saw_attempt = true;
    }
    EXPECT_TRUE(saw_hedge);
    EXPECT_TRUE(saw_attempt);
  }

  int failed_infer = 0;
  for (const InferenceResult& r : infer_results) {
    expect_connected(r.trace_id, "infer request");
    const auto rec = std::find_if(records.begin(), records.end(), [&](const RequestRecord& x) {
      return x.request_id == r.id && std::string(x.source) == "infer";
    });
    ASSERT_NE(rec, records.end());
    if (r.status != InferStatus::kOk) {
      // The disjunction's second arm: a terminal failure record naming
      // the status, flagged as a deadline hit when it was one.
      ++failed_infer;
      EXPECT_FALSE(rec->ok);
      EXPECT_EQ(std::string(rec->status), infer_status_name(r.status));
      if (r.status == InferStatus::kExpiredInQueue || r.status == InferStatus::kDeadlineExceeded)
        EXPECT_TRUE(rec->deadline_hit);
    } else {
      EXPECT_TRUE(rec->ok);
      EXPECT_GE(rec->batch_id, 0);
    }
  }
  EXPECT_GE(failed_infer, 1);  // the doomed deadlines actually failed

  // Incidents: the kill tripped a breaker and the doomed requests missed
  // deadlines; every written bundle is valid JSON on disk.
  std::set<std::string> triggers;
  for (const IncidentInfo& info : flight_recorder().incidents()) {
    triggers.insert(info.trigger);
    if (!info.path.empty()) {
      const std::string bundle = read_file(info.path);
      EXPECT_TRUE(json_well_formed(bundle)) << info.path;
      EXPECT_NE(bundle.find("\"records\""), std::string::npos);
    }
  }
  EXPECT_TRUE(triggers.count("breaker_open")) << "breaker open never dumped an incident";
  EXPECT_TRUE(triggers.count("deadline_exceeded"));

  // Exporter exactness across the whole run: the JSONL series integrates
  // to the final snapshot, counter for counter.
  std::map<std::string, std::int64_t> sums;
  std::int64_t latency_count = 0;
  const std::vector<std::string> lines = read_lines(jsonl_path);
  ASSERT_EQ(static_cast<std::int64_t>(lines.size()), exporter.records_written());
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line));
    for (const auto& [name, delta] : parse_int_object(line, "counters")) sums[name] += delta;
    latency_count += histogram_count_delta(line, "infer.latency.ms");
  }
  const MetricsSnapshot snap = exporter.last_snapshot();
  std::map<std::string, std::int64_t> want;
  for (const auto& c : snap.counters)
    if (c.value != 0) want[c.name] = c.value;
  EXPECT_EQ(sums, want);
  for (const auto& h : snap.histograms)
    if (h.name == "infer.latency.ms") EXPECT_EQ(latency_count, h.count);

  std::filesystem::remove_all(incident_dir);
  std::remove(jsonl_path.c_str());
}

}  // namespace
}  // namespace mupod
