#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/layers.hpp"
#include "stats/rng.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// A small diamond DAG: data -> conv1 -> {branch_a, branch_b} -> add -> relu.
Network make_diamond() {
  Network net("diamond");
  net.add_input("data", 2, 4, 4);
  Conv2DLayer::Config c1;
  c1.in_channels = 2;
  c1.out_channels = 4;
  c1.kernel_h = c1.kernel_w = 3;
  c1.pad = 1;
  net.add("conv1", std::make_unique<Conv2DLayer>(c1), std::vector<std::string>{"data"});
  Conv2DLayer::Config cb;
  cb.in_channels = 4;
  cb.out_channels = 4;
  cb.kernel_h = cb.kernel_w = 1;
  net.add("branch_a", std::make_unique<Conv2DLayer>(cb), std::vector<std::string>{"conv1"});
  net.add("branch_b", std::make_unique<Conv2DLayer>(cb), std::vector<std::string>{"conv1"});
  net.add("add", std::make_unique<EltwiseAddLayer>(),
          std::vector<std::string>{"branch_a", "branch_b"});
  net.add("relu", std::make_unique<ReLULayer>(), std::vector<std::string>{"add"});
  net.finalize();
  init_weights_he(net, 99);
  return net;
}

Tensor random_input(const Shape& s, std::uint64_t seed) {
  Tensor t(s);
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian());
  return t;
}

TEST(Network, BuildAndIntrospect) {
  Network net = make_diamond();
  EXPECT_EQ(net.num_nodes(), 6);
  EXPECT_EQ(net.input_node(), 0);
  EXPECT_EQ(net.output_node(), 5);
  EXPECT_EQ(net.node_id("conv1"), 1);
  EXPECT_EQ(net.node_id("missing"), -1);
  EXPECT_EQ(net.analyzable_nodes().size(), 3u);  // conv1, branch_a, branch_b
}

TEST(Network, RejectsDuplicateNames) {
  Network net;
  net.add_input("data", 1, 2, 2);
  EXPECT_THROW(net.add_input("data2", 1, 2, 2), std::logic_error);  // second input
  Conv2DLayer::Config c;
  c.in_channels = 1;
  c.out_channels = 1;
  c.kernel_h = c.kernel_w = 1;
  net.add("conv", std::make_unique<Conv2DLayer>(c), std::vector<std::string>{"data"});
  EXPECT_THROW(net.add("conv", std::make_unique<ReLULayer>(), std::vector<std::string>{"data"}),
               std::invalid_argument);
}

TEST(Network, RejectsUnknownInput) {
  Network net;
  net.add_input("data", 1, 2, 2);
  EXPECT_THROW(net.add("relu", std::make_unique<ReLULayer>(), std::vector<std::string>{"nope"}),
               std::invalid_argument);
}

TEST(Network, UnitShapesInferred) {
  Network net = make_diamond();
  EXPECT_EQ(net.node(net.node_id("conv1")).unit_shape, Shape({1, 4, 4, 4}));
  EXPECT_EQ(net.node(net.node_id("relu")).unit_shape, Shape({1, 4, 4, 4}));
}

TEST(Network, CostsPopulated) {
  Network net = make_diamond();
  const auto& conv1 = net.node(net.node_id("conv1"));
  EXPECT_EQ(conv1.cost.input_elems, 2 * 4 * 4);
  EXPECT_EQ(conv1.cost.macs, 4LL * 4 * 4 * 2 * 3 * 3);
  EXPECT_EQ(net.total_macs(),
            conv1.cost.macs + 2 * net.node(net.node_id("branch_a")).cost.macs);
}

TEST(Network, ForwardShapes) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({3, 2, 4, 4}), 1);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), Shape({3, 4, 4, 4}));
}

TEST(Network, ForwardDeterministic) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({2, 2, 4, 4}), 2);
  const Tensor a = net.forward(x);
  const Tensor b = net.forward(x);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Network, ForwardAllMatchesForward) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({2, 2, 4, 4}), 3);
  const Tensor y = net.forward(x);
  const std::vector<Tensor> acts = net.forward_all(x);
  EXPECT_DOUBLE_EQ(max_abs_diff(acts[static_cast<std::size_t>(net.output_node())], y), 0.0);
  // Input is materialized in the cache.
  EXPECT_DOUBLE_EQ(max_abs_diff(acts[0], x), 0.0);
}

TEST(Network, ForwardFromIdentityWithoutInjection) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({2, 2, 4, 4}), 4);
  const std::vector<Tensor> acts = net.forward_all(x);
  for (int k = 0; k < net.num_nodes(); ++k) {
    const Tensor y = net.forward_from(k, acts);
    EXPECT_NEAR(max_abs_diff(y, acts[static_cast<std::size_t>(net.output_node())]), 0.0, 1e-6)
        << "node " << k;
  }
}

TEST(Network, ForwardFromMatchesFullForwardWithInjection) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({2, 2, 4, 4}), 5);
  const std::vector<Tensor> acts = net.forward_all(x);

  const int target = net.node_id("branch_a");
  std::unordered_map<int, InjectionSpec> inject;
  inject.emplace(target, InjectionSpec::uniform(0.05));
  ForwardOptions opts;
  opts.inject = &inject;
  opts.seed = 42;

  const Tensor full = net.forward(x, opts);
  const Tensor partial = net.forward_from(target, acts, opts);
  EXPECT_NEAR(max_abs_diff(full, partial), 0.0, 1e-6);
}

TEST(Network, UpdateFromRecomputesDownstreamOnly) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({1, 2, 4, 4}), 6);
  std::vector<Tensor> acts = net.forward_all(x);

  // Scale branch_a weights and update in place.
  const int target = net.node_id("branch_a");
  *net.layer(target).mutable_weights() *= 2.0f;
  std::vector<Tensor> fresh = net.forward_all(x);
  net.update_from(target, acts);
  for (int k = 0; k < net.num_nodes(); ++k) {
    EXPECT_NEAR(max_abs_diff(acts[static_cast<std::size_t>(k)], fresh[static_cast<std::size_t>(k)]),
                0.0, 1e-6)
        << "node " << k;
  }
}

TEST(Network, ProfileInputRanges) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({2, 2, 4, 4}), 7);
  const std::vector<double> ranges = net.profile_input_ranges(x);
  // conv1's input is the raw data tensor.
  EXPECT_DOUBLE_EQ(ranges[static_cast<std::size_t>(net.node_id("conv1"))],
                   static_cast<double>(x.max_abs()));
  for (int id : net.analyzable_nodes()) EXPECT_GT(ranges[static_cast<std::size_t>(id)], 0.0);
}

TEST(Network, WeightSnapshotRestores) {
  Network net = make_diamond();
  const Tensor x = random_input(Shape({1, 2, 4, 4}), 8);
  const Tensor before = net.forward(x);

  const Network::WeightSnapshot snap = net.snapshot_weights();
  net.quantize_weights_uniform(3);
  const Tensor coarse = net.forward(x);
  EXPECT_GT(max_abs_diff(before, coarse), 0.0);

  net.restore_weights(snap);
  const Tensor after = net.forward(x);
  EXPECT_DOUBLE_EQ(max_abs_diff(before, after), 0.0);
}

TEST(Network, QuantizeWeightsReducesPrecisionMonotonically) {
  const Tensor x = random_input(Shape({2, 2, 4, 4}), 9);
  Network net = make_diamond();
  const Tensor exact = net.forward(x);
  const Network::WeightSnapshot snap = net.snapshot_weights();

  double prev_err = 0.0;
  for (int bits : {12, 8, 5, 3}) {
    net.quantize_weights_uniform(bits);
    const double err = max_abs_diff(exact, net.forward(x));
    net.restore_weights(snap);
    // Fewer weight bits -> larger forward error (weakly monotone).
    EXPECT_GE(err, prev_err * 0.5) << bits;
    prev_err = err;
  }
  EXPECT_GT(prev_err, 0.0);
}

TEST(Network, FinalizeRequiredBeforeUse) {
  Network net;
  net.add_input("data", 1, 2, 2);
  EXPECT_THROW(net.finalize(), std::logic_error);  // single-node network
}

}  // namespace
}  // namespace mupod
