#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"

namespace mupod {
namespace {

DatasetConfig small_cfg() {
  DatasetConfig cfg;
  cfg.num_classes = 5;
  cfg.channels = 3;
  cfg.height = 8;
  cfg.width = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(Synthetic, Deterministic) {
  SyntheticImageDataset a(small_cfg());
  SyntheticImageDataset b(small_cfg());
  const Tensor ba = a.make_batch(10, 4);
  const Tensor bb = b.make_batch(10, 4);
  EXPECT_DOUBLE_EQ(max_abs_diff(ba, bb), 0.0);
}

TEST(Synthetic, BatchSplitInvariant) {
  SyntheticImageDataset ds(small_cfg());
  const Tensor whole = ds.make_batch(0, 6);
  const Tensor first = ds.make_batch(0, 3);
  const Tensor second = ds.make_batch(3, 3);
  for (int n = 0; n < 3; ++n)
    for (int c = 0; c < 3; ++c)
      for (int h = 0; h < 8; ++h)
        for (int w = 0; w < 8; ++w) {
          EXPECT_FLOAT_EQ(whole.at(n, c, h, w), first.at(n, c, h, w));
          EXPECT_FLOAT_EQ(whole.at(n + 3, c, h, w), second.at(n, c, h, w));
        }
}

TEST(Synthetic, LabelsCycleClasses) {
  SyntheticImageDataset ds(small_cfg());
  const std::vector<int> labels = ds.labels(0, 12);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(labels[static_cast<std::size_t>(i)], i % 5);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  DatasetConfig c1 = small_cfg();
  DatasetConfig c2 = small_cfg();
  c2.seed = 8;
  SyntheticImageDataset a(c1), b(c2);
  EXPECT_GT(max_abs_diff(a.make_batch(0, 2), b.make_batch(0, 2)), 0.0);
}

TEST(Synthetic, SameClassSharesStructure) {
  // Images of the same class must correlate more than images of different
  // classes (otherwise the class prototypes are meaningless).
  DatasetConfig cfg = small_cfg();
  cfg.noise = 0.1f;
  SyntheticImageDataset ds(cfg);
  const Tensor b = ds.make_batch(0, 15);  // 3 images per class

  const auto correlation = [&](int i, int j) {
    double si = 0, sj = 0, sij = 0, sii = 0, sjj = 0;
    const std::int64_t sz = b.numel() / 15;
    for (std::int64_t k = 0; k < sz; ++k) {
      const double x = b[i * sz + k], y = b[j * sz + k];
      si += x; sj += y; sij += x * y; sii += x * x; sjj += y * y;
    }
    const double n = static_cast<double>(sz);
    const double cov = sij / n - (si / n) * (sj / n);
    const double vx = sii / n - (si / n) * (si / n);
    const double vy = sjj / n - (sj / n) * (sj / n);
    return cov / std::sqrt(vx * vy);
  };

  // Same class: (0, 5), (0, 10). Different: (0, 1), (0, 2).
  const double same = 0.5 * (correlation(0, 5) + correlation(0, 10));
  const double diff = 0.5 * (correlation(0, 1) + correlation(0, 2));
  EXPECT_GT(same, diff + 0.2);
}

TEST(Synthetic, ValuesBounded) {
  SyntheticImageDataset ds(small_cfg());
  const Tensor b = ds.make_batch(0, 20);
  // Sum of <=4 unit-amplitude gratings + noise: must stay in sane range.
  EXPECT_LT(b.max_abs(), 10.0f);
  EXPECT_GT(b.stddev(), 0.1);
}

TEST(ArgmaxRows, MatchesTensorArgmax) {
  Tensor logits(Shape({3, 4}));
  logits[1] = 1.0f;            // row 0 -> 1
  logits[4 + 3] = 2.0f;        // row 1 -> 3
  logits[8 + 0] = 0.5f;        // row 2 -> 0
  const std::vector<int> am = argmax_rows(logits);
  EXPECT_EQ(am, (std::vector<int>{1, 3, 0}));
}

TEST(Top1Agreement, CountsMatches) {
  Tensor logits(Shape({2, 3}));
  logits[2] = 1.0f;  // row 0 -> 2
  logits[3] = 1.0f;  // row 1 -> 0
  EXPECT_DOUBLE_EQ(top1_agreement(logits, {2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(top1_agreement(logits, {2, 1}), 0.5);
  EXPECT_DOUBLE_EQ(top1_agreement(logits, {0, 1}), 0.0);
}

}  // namespace
}  // namespace mupod
