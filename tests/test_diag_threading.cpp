// Concurrency regression tests for the shared observability surfaces:
// DiagnosticSink (now internally synchronized), the metrics registry, and
// PlanService's diagnostic/stat reporting under concurrent plan() calls.
//
// These tests live in their own executable labeled `sanitize` (see
// tests/CMakeLists.txt): they pass unremarkably in a plain build, but
// under -DMUPOD_SANITIZE=thread every asserted interleaving is a TSan
// check — `ctest -L sanitize` in that build is the regression gate for
// the data race the mutex in DiagnosticSink fixes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/diagnostics.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "serve/plan_service.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

TEST(DiagThreading, ConcurrentReportersAndReadersStayConsistent) {
  DiagnosticSink sink;
  constexpr int kWriters = 4, kReaders = 3, kPerWriter = 500;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Every read path the report consumers use, racing the writers.
        // The sink is append-only, so any earlier-read quantity must be
        // bounded by any later-read total.
        const std::vector<Diagnostic> snap = sink.snapshot();
        const std::size_t warns = static_cast<std::size_t>(sink.count(DiagSeverity::kWarning));
        ASSERT_LE(warns, sink.size());
        const DiagnosticSink copy = sink;  // copy ctor locks the source
        ASSERT_LE(copy.size(), sink.size());
        ASSERT_LE(snap.size(), copy.size());
      }
    });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&sink, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        sink.report(i % 3 == 0 ? DiagSeverity::kWarning : DiagSeverity::kInfo,
                    w % 2 == 0 ? PipelineStage::kServe : PipelineStage::kProfile,
                    /*layer=*/w, "writer " + std::to_string(w) + " entry " + std::to_string(i),
                    "none");
      }
    });
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(sink.size(), static_cast<std::size_t>(kWriters) * kPerWriter);
  int warns = 0;
  for (const Diagnostic& d : sink.snapshot())
    if (d.severity == DiagSeverity::kWarning) ++warns;
  EXPECT_EQ(warns, sink.count(DiagSeverity::kWarning));
}

TEST(DiagThreading, MetricsRegistryConcurrentRegistrationAndSnapshot) {
  metrics().reset();
  constexpr int kThreads = 4, kIters = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([t] {
      // Mix of shared and per-thread instruments: registration (map
      // mutation) races value updates and snapshots.
      Counter& shared = metrics().counter("tsan.shared");
      for (int i = 0; i < kIters; ++i) {
        shared.add(1);
        metrics().counter("tsan.thread" + std::to_string(t)).add(1);
        metrics().histogram("tsan.hist", {1.0, 2.0}).record(static_cast<double>(i % 3));
        if (i % 256 == 0) (void)metrics().snapshot();
      }
    });
  for (std::thread& t : ts) t.join();
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.counter("tsan.shared"), static_cast<std::int64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(snap.counter("tsan.thread" + std::to_string(t)), kIters);
  metrics().reset();
}

TEST(DiagThreading, PlanServiceConcurrentQueriesShareOneProfile) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 8;
  ZooModel model = build_tiny_cnn(zo);
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 8;
  SyntheticImageDataset dataset(dc);

  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = 8;
  scfg.pipeline.harness.eval_images = 64;
  scfg.pipeline.profiler.points = 4;
  PlanService service(scfg);
  const PlanKey key = service.register_network(model.net, model.analyzed, dataset);

  // Four threads race the same grid cell plus a second target: the
  // once-per-key future must hand every thread the same bits while the
  // service-level stats/diagnostics absorb concurrent updates.
  constexpr int kThreads = 4;
  std::vector<PlanResult> results(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      PlanQuery q;
      q.accuracy_target = (t % 2 == 0) ? 0.05 : 0.10;
      q.objective = objective_input_bits(model.net, model.analyzed);
      results[static_cast<std::size_t>(t)] = service.plan(key, q);
      (void)service.stats();                          // racing reads
      (void)service.service_diagnostics().snapshot(); // of shared state
    });
  for (std::thread& t : ts) t.join();

  for (int t = 2; t < kThreads; ++t) {
    const PlanResult& a = results[static_cast<std::size_t>(t - 2)];
    const PlanResult& b = results[static_cast<std::size_t>(t)];
    EXPECT_EQ(a.alloc.bits, b.alloc.bits);  // same query -> identical answer
    EXPECT_EQ(a.alloc.formats, b.alloc.formats);
  }
  const CacheStats s = service.stats();
  EXPECT_EQ(s.profile_misses, 1);  // charged-once even under the race
  EXPECT_EQ(s.profile_hits, kThreads - 1);
  EXPECT_EQ(s.sigma_misses, 2);
  EXPECT_EQ(s.plans_served(), kThreads);
}

}  // namespace
}  // namespace mupod
