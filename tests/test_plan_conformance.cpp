// Golden end-to-end plan conformance: plan -> integer-executed forward ->
// accuracy, for two small zoo networks.
//
// Two layers of assertion:
//   1. The committed contract (always enforced): each plan's
//      integer-executed accuracy drop stays within its accuracy budget
//      plus kValidationTolerance — the same bound sweep_tool --validate
//      gates on.
//   2. A golden snapshot (tests/golden/plan_conformance.txt) of the full
//      validation record — allocated bits, float/emulated/integer/compiled
//      accuracy — so any change in the lowering, the kernels, the graph
//      compiler, or the planner shows up as a reviewable diff, not a
//      silent drift. The whole pipeline is deterministic (see
//      test_determinism.cpp), so the comparison is exact.
//
// The compiled columns (added with the graph compiler) measure the FUSED
// artifact the inference server serves; `integer` stays the unfused qexec
// path. The two may differ by at most one quantization step per fused
// region boundary (requantize-once vs dequantize+requantize;
// docs/method.md Sec. 17), which can flip individual argmaxes — hence
// separate columns rather than an equality assertion. Both are held to
// the same drop budget.
//
// Updating the golden after an intentional change:
//   ./mupod_quant_tests --update-golden
//   (or MUPOD_UPDATE_GOLDEN=1 ./mupod_quant_tests)
// then review and commit the new tests/golden/plan_conformance.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/plan_service.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

bool g_update_golden = false;

#ifndef MUPOD_SOURCE_DIR
#error "tests/CMakeLists.txt must define MUPOD_SOURCE_DIR"
#endif

std::string golden_path() {
  return std::string(MUPOD_SOURCE_DIR) + "/tests/golden/plan_conformance.txt";
}

struct ConformanceCase {
  const char* net;
  double drop;
  const char* objective;  // "input" or "mac"
};

// Two small zoo networks x two budgets; nin is the smallest *real* paper
// topology (mlpconv stacks + global average pooling).
const ConformanceCase kCases[] = {
    {"tiny", 0.05, "input"},
    {"tiny", 0.01, "mac"},
    {"nin", 0.05, "input"},
    {"nin", 0.02, "mac"},
};

// One validation rendered as a stable, greppable line. Accuracies are
// ratios of integer hit counts over a fixed eval set, so %.6f is exact
// for any eval size this test uses.
std::string render_line(const ConformanceCase& c, const PlanValidation& v) {
  std::ostringstream os;
  char head[64];
  std::snprintf(head, sizeof head, "%s drop=%.4f objective=%s bits=", c.net, c.drop, c.objective);
  os << head;
  for (std::size_t i = 0; i < v.plan.alloc.bits.size(); ++i) {
    if (i > 0) os << ',';
    os << v.plan.alloc.bits[i];
  }
  char buf[240];
  std::snprintf(buf, sizeof buf,
                " float=%.6f emulated=%.6f integer=%.6f compiled=%.6f lowered=%d relu_fused=%d "
                "qdq_elided=%d regions=%d",
                v.float_accuracy, v.emulated_accuracy, v.integer_accuracy, v.compiled_accuracy,
                v.lowered_layers, v.fusion.relu_fused, v.fusion.qdq_elided, v.fusion.regions);
  os << buf;
  return os.str();
}

PlanValidation run_case(const ConformanceCase& c) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 8;
  ZooModel m = build_model(c.net, zo);

  DatasetConfig dc;
  dc.num_classes = 10;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  dc.seed = 8;
  SyntheticImageDataset dataset(dc);

  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = 16;
  scfg.pipeline.harness.eval_images = 128;
  scfg.pipeline.profiler.points = 6;
  PlanService service(scfg);
  const PlanKey key = service.register_network(m.net, m.analyzed, dataset);

  PlanQuery q;
  q.accuracy_target = c.drop;
  q.objective = std::string(c.objective) == "input"
                    ? objective_input_bits(m.net, m.analyzed)
                    : objective_mac_energy(m.net, m.analyzed);
  return service.validate_plan(key, q);
}

TEST(PlanConformance, IntegerExecutionStaysWithinBudgetAndMatchesGolden) {
  std::vector<std::string> lines;
  for (const ConformanceCase& c : kCases) {
    SCOPED_TRACE(std::string(c.net) + " " + c.objective);
    const PlanValidation v = run_case(c);

    // The committed contract — holds regardless of the golden state.
    EXPECT_GT(v.lowered_layers, 0);
    EXPECT_GT(v.integer_accuracy, 0.0);
    EXPECT_LE(v.integer_drop, c.drop + v.tolerance)
        << c.net << " " << c.objective << " drop budget " << c.drop << ": integer-executed drop "
        << v.integer_drop << " exceeds budget + tolerance " << (c.drop + v.tolerance);
    EXPECT_TRUE(v.within_budget);
    // The fused serving artifact is held to the same contract.
    EXPECT_GT(v.compiled_accuracy, 0.0);
    EXPECT_LE(v.compiled_drop, c.drop + v.tolerance)
        << c.net << " " << c.objective << ": compiled (fused) drop " << v.compiled_drop
        << " exceeds budget + tolerance " << (c.drop + v.tolerance);
    EXPECT_TRUE(v.compiled_within_budget);

    lines.push_back(render_line(c, v));
  }

  std::ostringstream all;
  for (const std::string& l : lines) all << l << '\n';
  const std::string actual = all.str();

  if (g_update_golden) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    std::fprintf(stderr, "updated %s\n", golden_path().c_str());
    return;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — run mupod_quant_tests --update-golden once and commit it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "conformance results drifted from the golden snapshot; if the change is intentional "
         "re-run with --update-golden and commit the new file";
}

// The memoized plan() inside validate_plan must not perturb the check:
// validating the same query twice gives identical ground truth.
TEST(PlanConformance, RepeatedValidationIsIdentical) {
  const ConformanceCase c{"tiny", 0.05, "input"};
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 404;
  zo.data_seed = 8;
  zo.calibration_images = 8;
  ZooModel m = build_model(c.net, zo);
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  dc.seed = 8;
  SyntheticImageDataset dataset(dc);
  PlanServiceConfig scfg;
  scfg.pipeline.harness.profile_images = 16;
  scfg.pipeline.harness.eval_images = 128;
  scfg.pipeline.profiler.points = 6;
  PlanService service(scfg);
  const PlanKey key = service.register_network(m.net, m.analyzed, dataset);
  PlanQuery q;
  q.accuracy_target = c.drop;
  q.objective = objective_input_bits(m.net, m.analyzed);

  const PlanValidation v1 = service.validate_plan(key, q);
  const PlanValidation v2 = service.validate_plan(key, q);
  EXPECT_EQ(v1.integer_accuracy, v2.integer_accuracy);
  EXPECT_EQ(v1.compiled_accuracy, v2.compiled_accuracy);
  EXPECT_EQ(v1.emulated_accuracy, v2.emulated_accuracy);
  EXPECT_EQ(v1.act_saturated, v2.act_saturated);
  EXPECT_EQ(v1.plan.alloc.bits, v2.plan.alloc.bits);
  EXPECT_FALSE(v1.plan.plan_cached);
  EXPECT_TRUE(v2.plan.plan_cached);
}

}  // namespace
}  // namespace mupod

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--update-golden") mupod::g_update_golden = true;
  if (std::getenv("MUPOD_UPDATE_GOLDEN") != nullptr) mupod::g_update_golden = true;
  return RUN_ALL_TESTS();
}
