// Full-pipeline smoke tests across topology families: sequential+LRN
// (AlexNet head excluded), concat (SqueezeNet fire), depthwise
// (MobileNet). Budgets are kept tiny so each case runs in seconds; the
// assertions check pipeline INVARIANTS, not specific numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

class PipelineZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineZoo, EndToEndInvariantsHold) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 97;
  zo.data_seed = 55;
  zo.calibration_images = 8;
  zo.head_images = 96;
  ZooModel m = build_model(GetParam(), zo);

  DatasetConfig dc;
  dc.num_classes = 10;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  dc.seed = 55;
  SyntheticImageDataset ds(dc);

  PipelineConfig cfg;
  cfg.harness.profile_images = 8;
  cfg.harness.eval_images = 96;
  cfg.harness.metric = AccuracyMetric::kLabels;
  cfg.profiler.points = 5;
  cfg.profiler.reps_per_point = 1;
  cfg.sigma.relative_accuracy_drop = 0.10;

  const std::vector<ObjectiveSpec> objectives = {objective_mac_energy(m.net, m.analyzed)};
  const PipelineResult r = run_pipeline(m.net, m.analyzed, ds, objectives, cfg);

  // Every analyzed layer got a model and a format.
  ASSERT_EQ(r.models.size(), m.analyzed.size());
  const auto& alloc = r.objectives[0].alloc;
  ASSERT_EQ(alloc.bits.size(), m.analyzed.size());

  int profiled = 0;
  for (const auto& lm : r.models) {
    if (lm.lambda > 0.0) {
      ++profiled;
      EXPECT_TRUE(std::isfinite(lm.lambda));
      EXPECT_GT(lm.r2, 0.5) << GetParam() << " layer " << lm.layer_index;
    }
  }
  // The vast majority of layers must profile successfully.
  EXPECT_GE(profiled, static_cast<int>(m.analyzed.size()) - 1) << GetParam();

  // xi is a distribution; bits are sane; accuracy constraint enforced.
  const double xi_sum = std::accumulate(alloc.xi.begin(), alloc.xi.end(), 0.0);
  EXPECT_NEAR(xi_sum, 1.0, 1e-6) << GetParam();
  for (int b : alloc.bits) {
    EXPECT_GE(b, 1) << GetParam();
    EXPECT_LE(b, 24) << GetParam();
  }
  // Accuracy must be non-degenerate (well above the 10% chance level) —
  // the exact (1 - drop) * float_accuracy constraint is asserted in the
  // tiny-net pipeline tests where the harness is accessible; here we
  // check the refinement loop produced a usable operating point for
  // every topology family.
  EXPECT_GT(r.objectives[0].validated_accuracy, 0.2) << GetParam();
  EXPECT_GT(r.objectives[0].sigma_used, 0.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, PipelineZoo,
                         ::testing::Values("tiny", "squeezenet", "mobilenet", "nin"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace mupod
