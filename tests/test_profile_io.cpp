#include "io/profile_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>

#include "core/allocator.hpp"
#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct ProfiledFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  PipelineResult result;
};

const ProfiledFixture& fixture() {
  static ProfiledFixture* fix = [] {
    auto* f = new ProfiledFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 404;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    f->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    f->dataset = std::make_unique<SyntheticImageDataset>(dc);
    PipelineConfig cfg;
    cfg.harness.profile_images = 16;
    cfg.harness.eval_images = 128;
    cfg.profiler.points = 6;
    cfg.sigma.relative_accuracy_drop = 0.05;
    f->result = run_pipeline(f->model.net, f->model.analyzed, *f->dataset,
                             {objective_input_bits(f->model.net, f->model.analyzed)}, cfg);
    return f;
  }();
  return *fix;
}

TEST(ProfileIo, RoundTripPreservesEverything) {
  const ProfiledFixture& f = fixture();
  const ProfileBundle a = make_profile_bundle(f.model.net, f.model.analyzed, f.result);
  const ProfileBundle b = parse_profile(serialize_profile(a));

  EXPECT_EQ(b.network, a.network);
  EXPECT_DOUBLE_EQ(b.sigma_yl, a.sigma_yl);
  EXPECT_DOUBLE_EQ(b.sigma_calibrated, a.sigma_calibrated);
  ASSERT_EQ(b.models.size(), a.models.size());
  for (std::size_t k = 0; k < a.models.size(); ++k) {
    EXPECT_DOUBLE_EQ(b.models[k].lambda, a.models[k].lambda);
    EXPECT_DOUBLE_EQ(b.models[k].theta, a.models[k].theta);
    EXPECT_DOUBLE_EQ(b.ranges[k], a.ranges[k]);
    EXPECT_EQ(b.layer_names[k], a.layer_names[k]);
    ASSERT_EQ(b.models[k].deltas.size(), a.models[k].deltas.size());
    for (std::size_t i = 0; i < a.models[k].deltas.size(); ++i) {
      EXPECT_DOUBLE_EQ(b.models[k].deltas[i], a.models[k].deltas[i]);
      EXPECT_DOUBLE_EQ(b.models[k].sigmas[i], a.models[k].sigmas[i]);
    }
  }
}

TEST(ProfileIo, ReoptimizationFromLoadedProfileMatches) {
  // The paper's workflow: persist the profile, re-run only the last step.
  const ProfiledFixture& f = fixture();
  const ProfileBundle bundle =
      parse_profile(serialize_profile(make_profile_bundle(f.model.net, f.model.analyzed, f.result)));

  ObjectiveSpec obj = objective_input_bits(f.model.net, f.model.analyzed);
  const BitwidthAllocation from_memory =
      allocate_bitwidths(f.result.models, f.result.sigma_calibrated, f.result.ranges, obj);
  const BitwidthAllocation from_disk =
      allocate_bitwidths(bundle.models, bundle.sigma_calibrated, bundle.ranges, obj);
  EXPECT_EQ(from_memory.bits, from_disk.bits);
}

TEST(ProfileIo, FileRoundTrip) {
  const ProfiledFixture& f = fixture();
  const std::string path = std::string(::testing::TempDir()) + "/profile.txt";
  ASSERT_TRUE(save_profile(path, make_profile_bundle(f.model.net, f.model.analyzed, f.result)));
  const ProfileBundle loaded = load_profile(path);
  EXPECT_EQ(loaded.models.size(), f.result.models.size());
  std::remove(path.c_str());
}

TEST(ProfileIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_profile("not a profile"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v1\nbogus tag\n"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v1\npoint 5 0.1 0.2\n"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v1\nlayer 3 0 x 1 1 0 1\n"), std::runtime_error);
  EXPECT_THROW(load_profile("/nonexistent/profile.txt"), std::runtime_error);
}

TEST(ProfileIo, SaveProfileReportsUnwritablePath) {
  const ProfiledFixture& f = fixture();
  EXPECT_FALSE(save_profile("/nonexistent-dir/profile.txt",
                            make_profile_bundle(f.model.net, f.model.analyzed, f.result)));
}

TEST(ProfileIo, RejectsNonFiniteValues) {
  EXPECT_THROW(parse_profile("mupod-profile v2\nsigma nan 0.5\nend 0 0\n"), std::runtime_error);
  EXPECT_THROW(
      parse_profile("mupod-profile v2\nlayer 0 2 conv1 inf 1.0 0.0 0.9\nend 1 0\n"),
      std::runtime_error);
}

TEST(ProfileIo, AcceptsV1FilesWithoutEndMarker) {
  const std::string v1 =
      "mupod-profile v1\n"
      "network old-net\n"
      "sigma 0.5 0.45\n"
      "layer 0 2 conv1 2.0 1.5 0.01 0.99 100 1000\n"
      "point 0 0.001 0.001\n";
  const ProfileBundle b = parse_profile(v1);
  EXPECT_EQ(b.network, "old-net");
  ASSERT_EQ(b.models.size(), 1u);
  EXPECT_EQ(b.models[0].fit_status, FitStatus::kOk);
  EXPECT_EQ(b.models[0].deltas.size(), 1u);
}

// Structural invariants any successfully parsed bundle must satisfy —
// a parse that returns is a claim the data is usable.
void expect_consistent(const ProfileBundle& b) {
  EXPECT_EQ(b.models.size(), b.ranges.size());
  EXPECT_EQ(b.models.size(), b.layer_names.size());
  EXPECT_EQ(b.models.size(), b.input_elems.size());
  EXPECT_EQ(b.models.size(), b.macs.size());
  EXPECT_TRUE(std::isfinite(b.sigma_yl));
  EXPECT_TRUE(std::isfinite(b.sigma_calibrated));
  for (const LayerLinearModel& m : b.models) {
    EXPECT_TRUE(std::isfinite(m.lambda));
    EXPECT_TRUE(std::isfinite(m.theta));
    EXPECT_TRUE(std::isfinite(m.r2));
    EXPECT_EQ(m.deltas.size(), m.sigmas.size());
    for (double d : m.deltas) EXPECT_TRUE(std::isfinite(d));
    for (double s : m.sigmas) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(ProfileIoProperty, TruncationAtEveryByteIsDetected) {
  const ProfiledFixture& f = fixture();
  const std::string text =
      serialize_profile(make_profile_bundle(f.model.net, f.model.analyzed, f.result));
  ASSERT_GT(text.size(), 100u);
  // Any prefix that drops more than the final newline must throw: the v2
  // end marker makes "parsed fine but smaller" impossible.
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    EXPECT_THROW(parse_profile(text.substr(0, len)), std::runtime_error)
        << "prefix of " << len << " bytes parsed as a valid profile";
  }
  // Dropping only the trailing '\n' keeps all content; either outcome must
  // be a consistent bundle, never a crash.
  try {
    expect_consistent(parse_profile(text.substr(0, text.size() - 1)));
  } catch (const std::runtime_error&) {
  }
}

TEST(ProfileIoProperty, RandomByteCorruptionNeverCrashesOrHalfParses) {
  const ProfiledFixture& f = fixture();
  const std::string text =
      serialize_profile(make_profile_bundle(f.model.net, f.model.analyzed, f.result));
  std::mt19937 rng(20260806u);
  std::uniform_int_distribution<std::size_t> pos_dist(0, text.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> count_dist(1, 8);

  int parsed_ok = 0, rejected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::string corrupted = text;
    const int flips = count_dist(rng);
    for (int c = 0; c < flips; ++c)
      corrupted[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    try {
      const ProfileBundle b = parse_profile(corrupted);
      expect_consistent(b);  // if it parses, it must be structurally sound
      ++parsed_ok;
    } catch (const std::runtime_error& e) {
      EXPECT_GT(std::strlen(e.what()), 10u);  // descriptive, not empty
      ++rejected;
    }
  }
  EXPECT_EQ(parsed_ok + rejected, 200);
  // Corrupting random bytes overwhelmingly breaks a line somewhere.
  EXPECT_GT(rejected, 0);
}

TEST(ProfileIoV3, NetHashRoundTrips) {
  const ProfiledFixture& f = fixture();
  const ProfileBundle a = make_profile_bundle(f.model.net, f.model.analyzed, f.result);
  EXPECT_EQ(a.net_hash, network_content_hash(f.model.net));
  ASSERT_NE(a.net_hash, 0u);
  const std::string text = serialize_profile(a);
  EXPECT_NE(text.find("mupod-profile v3"), std::string::npos);
  EXPECT_NE(text.find("nethash "), std::string::npos);
  const ProfileBundle b = parse_profile(text);
  EXPECT_EQ(b.net_hash, a.net_hash);
}

TEST(ProfileIoV3, CheckAcceptsMatchingNetwork) {
  const ProfiledFixture& f = fixture();
  const ProfileBundle b =
      parse_profile(serialize_profile(make_profile_bundle(f.model.net, f.model.analyzed, f.result)));
  EXPECT_NO_THROW(check_profile_network(b, f.model.net));
}

TEST(ProfileIoV3, CheckRejectsDifferentNetwork) {
  const ProfiledFixture& f = fixture();
  ProfileBundle b = make_profile_bundle(f.model.net, f.model.analyzed, f.result);

  // Same topology, different weights: a retrained network must invalidate
  // the profile (the lambda/theta fits are weight-dependent).
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 405;  // different weight seed than the fixture's 404
  zo.data_seed = 8;
  zo.calibration_images = 8;
  ZooModel other = build_tiny_cnn(zo);
  EXPECT_NE(network_content_hash(other.net), b.net_hash);
  try {
    check_profile_network(b, other.net);
    FAIL() << "expected check_profile_network to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    // The message must carry both hashes so the mismatch is auditable.
    EXPECT_NE(msg.find("hash"), std::string::npos) << msg;
  }
}

TEST(ProfileIoV3, PreV3FilesCheckNameOnly) {
  const ProfiledFixture& f = fixture();
  ProfileBundle b = make_profile_bundle(f.model.net, f.model.analyzed, f.result);
  b.net_hash = 0;  // as parsed from a v1/v2 file
  EXPECT_NO_THROW(check_profile_network(b, f.model.net));
  b.network = "some-other-net";
  EXPECT_THROW(check_profile_network(b, f.model.net), std::runtime_error);
}

TEST(ProfileIoV3, V2FilesWithoutHashStillParse) {
  const std::string v2 =
      "mupod-profile v2\n"
      "network old-net\n"
      "sigma 0.5 0.45\n"
      "layer 0 2 conv1 2.0 1.5 0.01 0.99 100 1000 ok\n"
      "point 0 0.001 0.001\n"
      "end 1 1\n";
  const ProfileBundle b = parse_profile(v2);
  EXPECT_EQ(b.network, "old-net");
  EXPECT_EQ(b.net_hash, 0u);
}

TEST(ProfileIoV3, RejectsMalformedNetHashLine) {
  EXPECT_THROW(parse_profile("mupod-profile v3\nnethash ZORK\nend 0 0\n"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v3\nnethash 0\nend 0 0\n"), std::runtime_error);
}

TEST(ProfileIoV3, LoadProfileForRejectsMismatchedFile) {
  const ProfiledFixture& f = fixture();
  ProfileBundle b = make_profile_bundle(f.model.net, f.model.analyzed, f.result);
  b.net_hash ^= 0xdeadbeefull;  // simulate a profile of a different network
  const std::string path = std::string(::testing::TempDir()) + "/stale_profile.txt";
  ASSERT_TRUE(save_profile(path, b));
  EXPECT_THROW(load_profile_for(path, f.model.net), std::runtime_error);
  // Plain load_profile still works: the check is the caller's choice.
  EXPECT_NO_THROW(load_profile(path));
  std::remove(path.c_str());
}

TEST(ProfileIoProperty, ErrorsNameLineNumberAndContent) {
  const std::string bad =
      "mupod-profile v2\n"
      "network n\n"
      "sigma 0.5 WRECKED\n"
      "end 0 0\n";
  try {
    parse_profile(bad);
    FAIL() << "expected parse_profile to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sigma 0.5 WRECKED"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace mupod
