#include "io/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/allocator.hpp"
#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct ProfiledFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  PipelineResult result;
};

const ProfiledFixture& fixture() {
  static ProfiledFixture* fix = [] {
    auto* f = new ProfiledFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 404;
    zo.data_seed = 8;
    zo.calibration_images = 8;
    f->model = build_tiny_cnn(zo);
    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = 16;
    dc.width = 16;
    dc.seed = 8;
    f->dataset = std::make_unique<SyntheticImageDataset>(dc);
    PipelineConfig cfg;
    cfg.harness.profile_images = 16;
    cfg.harness.eval_images = 128;
    cfg.profiler.points = 6;
    cfg.sigma.relative_accuracy_drop = 0.05;
    f->result = run_pipeline(f->model.net, f->model.analyzed, *f->dataset,
                             {objective_input_bits(f->model.net, f->model.analyzed)}, cfg);
    return f;
  }();
  return *fix;
}

TEST(ProfileIo, RoundTripPreservesEverything) {
  const ProfiledFixture& f = fixture();
  const ProfileBundle a = make_profile_bundle(f.model.net, f.model.analyzed, f.result);
  const ProfileBundle b = parse_profile(serialize_profile(a));

  EXPECT_EQ(b.network, a.network);
  EXPECT_DOUBLE_EQ(b.sigma_yl, a.sigma_yl);
  EXPECT_DOUBLE_EQ(b.sigma_calibrated, a.sigma_calibrated);
  ASSERT_EQ(b.models.size(), a.models.size());
  for (std::size_t k = 0; k < a.models.size(); ++k) {
    EXPECT_DOUBLE_EQ(b.models[k].lambda, a.models[k].lambda);
    EXPECT_DOUBLE_EQ(b.models[k].theta, a.models[k].theta);
    EXPECT_DOUBLE_EQ(b.ranges[k], a.ranges[k]);
    EXPECT_EQ(b.layer_names[k], a.layer_names[k]);
    ASSERT_EQ(b.models[k].deltas.size(), a.models[k].deltas.size());
    for (std::size_t i = 0; i < a.models[k].deltas.size(); ++i) {
      EXPECT_DOUBLE_EQ(b.models[k].deltas[i], a.models[k].deltas[i]);
      EXPECT_DOUBLE_EQ(b.models[k].sigmas[i], a.models[k].sigmas[i]);
    }
  }
}

TEST(ProfileIo, ReoptimizationFromLoadedProfileMatches) {
  // The paper's workflow: persist the profile, re-run only the last step.
  const ProfiledFixture& f = fixture();
  const ProfileBundle bundle =
      parse_profile(serialize_profile(make_profile_bundle(f.model.net, f.model.analyzed, f.result)));

  ObjectiveSpec obj = objective_input_bits(f.model.net, f.model.analyzed);
  const BitwidthAllocation from_memory =
      allocate_bitwidths(f.result.models, f.result.sigma_calibrated, f.result.ranges, obj);
  const BitwidthAllocation from_disk =
      allocate_bitwidths(bundle.models, bundle.sigma_calibrated, bundle.ranges, obj);
  EXPECT_EQ(from_memory.bits, from_disk.bits);
}

TEST(ProfileIo, FileRoundTrip) {
  const ProfiledFixture& f = fixture();
  const std::string path = std::string(::testing::TempDir()) + "/profile.txt";
  ASSERT_TRUE(save_profile(path, make_profile_bundle(f.model.net, f.model.analyzed, f.result)));
  const ProfileBundle loaded = load_profile(path);
  EXPECT_EQ(loaded.models.size(), f.result.models.size());
  std::remove(path.c_str());
}

TEST(ProfileIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_profile("not a profile"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v1\nbogus tag\n"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v1\npoint 5 0.1 0.2\n"), std::runtime_error);
  EXPECT_THROW(parse_profile("mupod-profile v1\nlayer 3 0 x 1 1 0 1\n"), std::runtime_error);
  EXPECT_THROW(load_profile("/nonexistent/profile.txt"), std::runtime_error);
}

}  // namespace
}  // namespace mupod
