#include "quant/rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"

namespace mupod {
namespace {

FixedPointFormat fmt44() { return {.integer_bits = 4, .fraction_bits = 4}; }

TEST(Rounding, NearestMatchesDefaultQuantizer) {
  Rng rng(1);
  const FixedPointFormat f = fmt44();
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-7.0, 7.0));
    EXPECT_EQ(quantize_value_mode(x, f, RoundingMode::kNearest, rng), quantize_value(x, f));
  }
}

TEST(Rounding, TruncateNeverRoundsUp) {
  Rng rng(2);
  const FixedPointFormat f = fmt44();
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-7.0, 7.0));
    EXPECT_LE(quantize_value_mode(x, f, RoundingMode::kTruncate, rng), x + 1e-6);
  }
}

TEST(Rounding, StochasticIsUnbiased) {
  Rng rng(3);
  const FixedPointFormat f = fmt44();
  const float x = 1.03125f;  // half a step above 1.0
  RunningStats rs;
  for (int i = 0; i < 40000; ++i) rs.add(quantize_value_mode(x, f, RoundingMode::kStochastic, rng));
  EXPECT_NEAR(rs.mean(), x, 5e-4);
}

TEST(Rounding, StochasticRoundsToNeighbors) {
  Rng rng(4);
  const FixedPointFormat f = fmt44();
  const float x = 2.02f;
  const float lo = 2.0f, hi = 2.0625f;
  for (int i = 0; i < 1000; ++i) {
    const float q = quantize_value_mode(x, f, RoundingMode::kStochastic, rng);
    EXPECT_TRUE(q == lo || q == hi) << q;
  }
}

class RoundingMoments : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(RoundingMoments, MeasuredMomentsMatchModel) {
  const FixedPointFormat f = fmt44();
  const RoundingErrorModel model = rounding_error_model(f, GetParam());

  Tensor t(Shape({200000}));
  Rng rng(7);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-7.0, 7.0));
  Tensor q = t;
  quantize_tensor_mode(q, f, GetParam(), 99);

  RunningStats rs;
  for (std::int64_t i = 0; i < t.numel(); ++i) rs.add(static_cast<double>(q[i]) - t[i]);
  EXPECT_NEAR(rs.mean(), model.mean, f.step() * 0.02);
  EXPECT_NEAR(rs.stddev(), model.stddev, model.stddev * 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllModes, RoundingMoments,
                         ::testing::Values(RoundingMode::kNearest, RoundingMode::kTruncate,
                                           RoundingMode::kStochastic),
                         [](const auto& info) {
                           switch (info.param) {
                             case RoundingMode::kNearest: return "nearest";
                             case RoundingMode::kTruncate: return "truncate";
                             default: return "stochastic";
                           }
                         });

TEST(Rounding, TruncationBiasIsWorstForErrorModel) {
  // The paper's zero-mean uniform noise model requires correct rounding;
  // truncation shifts the mean by -step/2, which the model cannot absorb.
  const FixedPointFormat f = fmt44();
  EXPECT_DOUBLE_EQ(rounding_error_model(f, RoundingMode::kNearest).mean, 0.0);
  EXPECT_LT(rounding_error_model(f, RoundingMode::kTruncate).mean, 0.0);
  EXPECT_GT(rounding_error_model(f, RoundingMode::kStochastic).stddev,
            rounding_error_model(f, RoundingMode::kNearest).stddev);
}

TEST(Rounding, DeterministicGivenSeed) {
  const FixedPointFormat f = fmt44();
  Tensor a(Shape({256}));
  Rng rng(5);
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(rng.uniform(-7, 7));
  Tensor b = a;
  quantize_tensor_mode(a, f, RoundingMode::kStochastic, 42);
  quantize_tensor_mode(b, f, RoundingMode::kStochastic, 42);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
}

}  // namespace
}  // namespace mupod
