#include <gtest/gtest.h>

#include <cmath>

#include "core/weight_search.hpp"
#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

std::vector<std::int64_t> mac_rho() {
  std::vector<std::int64_t> rho;
  for (int id : tiny().harness->analyzed())
    rho.push_back(tiny().harness->net().node(id).cost.macs);
  return rho;
}

TEST(PerLayerWeightSearch, MeetsConstraint) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  WeightSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  const auto res = search_weight_bitwidth_per_layer(net, *tiny().harness, {}, mac_rho(), cfg);
  EXPECT_EQ(res.bits.size(), static_cast<std::size_t>(tiny().harness->num_layers()));
  EXPECT_GE(res.accuracy, 0.95);
  for (int b : res.bits) {
    EXPECT_GE(b, cfg.min_bits);
    EXPECT_LE(b, cfg.max_bits);
  }
}

TEST(PerLayerWeightSearch, NotWorseThanUniform) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  WeightSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  const auto rho = mac_rho();
  const WeightSearchResult uniform = search_weight_bitwidth(net, *tiny().harness, {}, cfg);
  const auto per_layer = search_weight_bitwidth_per_layer(net, *tiny().harness, {}, rho, cfg);

  // Weighted weight-bit cost must not regress vs uniform (greedy starts
  // from the uniform solution and only keeps improving moves).
  std::int64_t uni_cost = 0, pl_cost = 0;
  for (std::size_t k = 0; k < rho.size(); ++k) {
    uni_cost += rho[k] * uniform.bits;
    pl_cost += rho[k] * per_layer.bits[k];
  }
  EXPECT_LE(pl_cost, uni_cost);
}

TEST(PerLayerWeightSearch, RestoresWeights) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  DatasetConfig dc;
  dc.height = 16;
  dc.width = 16;
  SyntheticImageDataset ds(dc);
  const Tensor probe = ds.make_batch(7000, 4);
  const Tensor before = net.forward(probe);
  WeightSearchConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  (void)search_weight_bitwidth_per_layer(net, *tiny().harness, {}, mac_rho(), cfg);
  EXPECT_DOUBLE_EQ(max_abs_diff(before, net.forward(probe)), 0.0);
}

TEST(QuantizeLayerWeights, AffectsOnlyThatLayer) {
  Network& net = const_cast<Network&>(tiny().harness->net());
  const Network::WeightSnapshot snap = net.snapshot_weights();
  const int target = tiny().harness->analyzed()[1];

  quantize_layer_weights(net, target, 3);
  for (int id : tiny().harness->analyzed()) {
    const Tensor* w = net.layer(id).weights();
    ASSERT_NE(w, nullptr);
    // Find the snapshot entry.
    for (const auto& [sid, sw] : snap.weights) {
      if (sid != id) continue;
      if (id == target) {
        EXPECT_GT(max_abs_diff(*w, sw), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(max_abs_diff(*w, sw), 0.0);
      }
    }
  }
  net.restore_weights(snap);
}

}  // namespace
}  // namespace mupod
