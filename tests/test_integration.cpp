// End-to-end pipeline tests: the full flow of the paper (profile ->
// sigma search -> multi-objective allocation -> validation -> weight
// search) on small networks, plus the headline comparison against the
// search-based baseline.
#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "baseline/search_baseline.hpp"
#include "core/pipeline.hpp"
#include "hw/energy_model.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

struct PipelineFixture {
  ZooModel model;
  std::unique_ptr<SyntheticImageDataset> dataset;
  PipelineResult result;
};

// Run the pipeline once on the tiny CNN with both objectives.
const PipelineFixture& pipeline_fixture() {
  static PipelineFixture* fix = [] {
    auto* f = new PipelineFixture();
    ZooOptions zo;
    zo.num_classes = 10;
    zo.seed = 31337;
    zo.calibration_images = 8;
    f->model = build_tiny_cnn(zo);

    DatasetConfig dc;
    dc.num_classes = 10;
    dc.height = f->model.height;
    dc.width = f->model.width;
    dc.seed = 4;
    f->dataset = std::make_unique<SyntheticImageDataset>(dc);

    PipelineConfig cfg;
    cfg.harness.profile_images = 16;
    cfg.harness.eval_images = 256;
    cfg.profiler.points = 8;
    cfg.sigma.relative_accuracy_drop = 0.05;
    cfg.search_weights = true;

    const std::vector<ObjectiveSpec> objectives = {
        objective_input_bits(f->model.net, f->model.analyzed),
        objective_mac_energy(f->model.net, f->model.analyzed),
    };
    f->result = run_pipeline(f->model.net, f->model.analyzed, *f->dataset, objectives, cfg);
    return f;
  }();
  return *fix;
}

TEST(Pipeline, ProducesModelForEveryLayer) {
  const PipelineResult& r = pipeline_fixture().result;
  EXPECT_EQ(r.models.size(), 4u);
  EXPECT_EQ(r.ranges.size(), 4u);
  for (const auto& m : r.models) EXPECT_GT(m.lambda, 0.0);
}

TEST(Pipeline, SigmaPositiveAndMeetsAccuracy) {
  const PipelineResult& r = pipeline_fixture().result;
  EXPECT_GT(r.sigma.sigma_yl, 0.0);
  EXPECT_GE(r.sigma.accuracy_at_sigma, 0.95 - 1e-9);
}

TEST(Pipeline, BothObjectivesAllocated) {
  const PipelineResult& r = pipeline_fixture().result;
  ASSERT_EQ(r.objectives.size(), 2u);
  EXPECT_EQ(r.objectives[0].spec.name, "input_bits");
  EXPECT_EQ(r.objectives[1].spec.name, "mac_energy");
  for (const auto& obj : r.objectives) {
    EXPECT_EQ(obj.alloc.bits.size(), 4u);
    for (int b : obj.alloc.bits) {
      EXPECT_GE(b, 1);
      EXPECT_LE(b, 32);
    }
  }
}

TEST(Pipeline, ValidatedAccuracyMeetsConstraint) {
  // The paper: "No accuracy criterion was violated" — real quantized
  // validation must satisfy the 5% budget exactly (the refinement loop
  // shrinks sigma until it does).
  const PipelineResult& r = pipeline_fixture().result;
  for (const auto& obj : r.objectives) {
    EXPECT_GE(obj.validated_accuracy, 0.95) << obj.spec.name;
    EXPECT_LE(obj.sigma_used, r.sigma_calibrated * (1.0 + 1e-12));
  }
}

TEST(Pipeline, ObjectivesSpecialize) {
  // Each optimized allocation must win (or tie) its own objective against
  // the allocation optimized for the other objective — the essence of
  // "multi-objective" (paper Table II / Fig. 4).
  const PipelineResult& r = pipeline_fixture().result;
  const auto& input_alloc = r.objectives[0];
  const auto& mac_alloc = r.objectives[1];

  // Continuous objective (Eq. 8): each solution must be at least as good
  // as the other objective's solution evaluated under its own weights.
  const auto cont = [&](const ObjectiveSpec& spec, const std::vector<double>& xi) {
    return allocation_objective(r.models, r.sigma.sigma_yl, spec.rho, xi);
  };
  EXPECT_LE(cont(input_alloc.spec, input_alloc.alloc.xi),
            cont(input_alloc.spec, mac_alloc.alloc.xi) + 1e-6);
  EXPECT_LE(cont(mac_alloc.spec, mac_alloc.alloc.xi),
            cont(mac_alloc.spec, input_alloc.alloc.xi) + 1e-6);

  // After integer bit rounding (ceil of fraction bits), allow a small
  // regression: on a 4-layer net with ~3-bit formats, one bit of rounding
  // is ~10% of the objective and can exceed the continuous gap. (On the
  // paper-scale nets of Table II/III the specialization signal dominates.)
  const auto value = [&](const ObjectiveSpec& spec, const std::vector<int>& bits) {
    return static_cast<double>(total_weighted_bits(spec.rho, bits));
  };
  EXPECT_LE(value(input_alloc.spec, input_alloc.alloc.bits),
            value(input_alloc.spec, mac_alloc.alloc.bits) * 1.12);
  EXPECT_LE(value(mac_alloc.spec, mac_alloc.alloc.bits),
            value(mac_alloc.spec, input_alloc.alloc.bits) * 1.12);
}

TEST(Pipeline, WeightSearchRan) {
  const PipelineResult& r = pipeline_fixture().result;
  for (const auto& obj : r.objectives) {
    EXPECT_GE(obj.weight_bits, 2);
    EXPECT_LE(obj.weight_bits, 16);
  }
}

TEST(Pipeline, TimingsRecorded) {
  const PipelineTimings& t = pipeline_fixture().result.timings;
  EXPECT_GT(t.harness_ms, 0.0);
  EXPECT_GT(t.profile_ms, 0.0);
  EXPECT_GT(t.sigma_ms, 0.0);
  EXPECT_GT(t.allocate_ms, 0.0);
}

TEST(Pipeline, BeatsOrMatchesSearchBaselineOnItsObjective) {
  // The headline claim: the analytical method achieves savings over the
  // search-based baseline at the same accuracy budget. On a 4-layer net
  // the gap can be small, so assert "never worse by more than 10%",
  // and that both meet accuracy.
  const PipelineFixture& f = pipeline_fixture();
  HarnessConfig hc;
  hc.profile_images = 16;
  hc.eval_images = 256;
  AnalysisHarness harness(f.model.net, f.model.analyzed, *f.dataset, hc);
  BaselineConfig bcfg;
  bcfg.relative_accuracy_drop = 0.05;
  const BaselineResult base = profile_search_baseline(harness, bcfg);

  const auto& mac_obj = f.result.objectives[1];
  const double ours = static_cast<double>(total_weighted_bits(mac_obj.spec.rho, mac_obj.alloc.bits));
  const double theirs = static_cast<double>(total_weighted_bits(mac_obj.spec.rho, base.bits));
  EXPECT_LE(ours, theirs * 1.10);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  // Re-run the pipeline with the same seeds: identical bit allocations.
  ZooOptions zo;
  zo.num_classes = 10;
  zo.seed = 31337;
  zo.calibration_images = 8;
  ZooModel model = build_tiny_cnn(zo);
  DatasetConfig dc;
  dc.num_classes = 10;
  dc.height = model.height;
  dc.width = model.width;
  dc.seed = 4;
  SyntheticImageDataset ds(dc);

  PipelineConfig cfg;
  cfg.harness.profile_images = 16;
  cfg.harness.eval_images = 256;
  cfg.profiler.points = 8;
  cfg.sigma.relative_accuracy_drop = 0.05;

  const std::vector<ObjectiveSpec> objectives = {objective_input_bits(model.net, model.analyzed)};
  const PipelineResult r = run_pipeline(model.net, model.analyzed, ds, objectives, cfg);
  EXPECT_EQ(r.objectives[0].alloc.bits, pipeline_fixture().result.objectives[0].alloc.bits);
}

TEST(ObjectiveHelpers, MatchNodeCosts) {
  const PipelineFixture& f = pipeline_fixture();
  const ObjectiveSpec in_obj = objective_input_bits(f.model.net, f.model.analyzed);
  const ObjectiveSpec mac_obj = objective_mac_energy(f.model.net, f.model.analyzed);
  ASSERT_EQ(in_obj.rho.size(), f.model.analyzed.size());
  for (std::size_t k = 0; k < f.model.analyzed.size(); ++k) {
    EXPECT_EQ(in_obj.rho[k], f.model.net.node(f.model.analyzed[k]).cost.input_elems);
    EXPECT_EQ(mac_obj.rho[k], f.model.net.node(f.model.analyzed[k]).cost.macs);
  }
}

}  // namespace
}  // namespace mupod
