#include "zoo/zoo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/layers.hpp"

namespace mupod {
namespace {

ZooOptions fast_opts() {
  ZooOptions o;
  o.num_classes = 20;
  o.seed = 77;
  o.calibration_images = 4;
  return o;
}

ZooOptions uncalibrated() {
  ZooOptions o = fast_opts();
  o.calibration_images = 0;
  return o;
}

// The paper's Table III "# layers" column — the load-bearing topology fact.
struct LayerCountCase {
  const char* name;
  int layers;
};

class ZooLayerCount : public ::testing::TestWithParam<LayerCountCase> {};

TEST_P(ZooLayerCount, MatchesPaperTable3) {
  const auto& p = GetParam();
  const ZooModel m = build_model(p.name, uncalibrated());
  EXPECT_EQ(static_cast<int>(m.analyzed.size()), p.layers) << p.name;
}

INSTANTIATE_TEST_SUITE_P(PaperTable3, ZooLayerCount,
                         ::testing::Values(LayerCountCase{"alexnet", 5},
                                           LayerCountCase{"nin", 12},
                                           LayerCountCase{"googlenet", 57},
                                           LayerCountCase{"vgg19", 16},
                                           LayerCountCase{"resnet50", 54},
                                           LayerCountCase{"resnet152", 156},
                                           LayerCountCase{"squeezenet", 26},
                                           LayerCountCase{"mobilenet", 28}),
                         [](const auto& info) { return std::string(info.param.name); });

class ZooForward : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooForward, ProducesFiniteLogits) {
  ZooModel m = build_model(GetParam(), fast_opts());
  DatasetConfig dc;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  dc.num_classes = m.num_classes;
  SyntheticImageDataset ds(dc);
  const Tensor logits = m.net.forward(ds.make_batch(0, 2));
  EXPECT_EQ(logits.shape().dim(0), 2);
  EXPECT_EQ(logits.numel() / 2, m.num_classes);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(logits[i])) << GetParam();
  }
  // Calibrated activations: logits should be O(1), not exploded/vanished.
  EXPECT_GT(logits.stddev(), 1e-3) << GetParam();
  EXPECT_LT(logits.stddev(), 100.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooForward,
                         ::testing::Values("tiny", "alexnet", "nin", "googlenet", "vgg19",
                                           "resnet50", "squeezenet", "mobilenet"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Zoo, NamesListMatchesPaperOrder) {
  const auto names = zoo_model_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "alexnet");
  EXPECT_EQ(names.back(), "mobilenet");
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW(build_model("lenet9000", fast_opts()), std::invalid_argument);
}

TEST(Zoo, DeterministicGivenSeed) {
  ZooModel a = build_model("tiny", fast_opts());
  ZooModel b = build_model("tiny", fast_opts());
  DatasetConfig dc;
  dc.height = a.height;
  dc.width = a.width;
  SyntheticImageDataset ds(dc);
  const Tensor batch = ds.make_batch(0, 2);
  EXPECT_DOUBLE_EQ(max_abs_diff(a.net.forward(batch), b.net.forward(batch)), 0.0);
}

TEST(Zoo, AlexNetExcludesFcFromAnalysis) {
  const ZooModel m = build_alexnet(uncalibrated());
  for (int id : m.analyzed) {
    EXPECT_EQ(m.net.layer(id).kind(), LayerKind::kConv);
  }
  // But the network itself still has the fc layers for classification.
  EXPECT_GE(m.net.analyzable_nodes().size(), m.analyzed.size() + 3);
}

TEST(Zoo, ResnetIncludesFcInAnalysis) {
  const ZooModel m = build_resnet50(uncalibrated());
  bool has_fc = false;
  for (int id : m.analyzed)
    if (m.net.layer(id).kind() == LayerKind::kInnerProduct) has_fc = true;
  EXPECT_TRUE(has_fc);
}

TEST(Zoo, CalibrationNormalizesActivations) {
  ZooModel raw = build_model("vgg19", uncalibrated());
  ZooModel cal = build_model("vgg19", fast_opts());

  DatasetConfig dc;
  dc.num_classes = 20;
  SyntheticImageDataset ds(dc);
  const Tensor batch = ds.make_batch(0, 4);

  // Without calibration, a 16-layer He-initialized stack drifts in scale;
  // with calibration every analyzable layer's output s.d. is ~1 — except
  // the classifier head, whose scale is set by head training instead.
  const std::vector<Tensor> acts = cal.net.forward_all(batch);
  const auto& nodes = cal.net.analyzable_nodes();
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const int id = nodes[i];
    const double sd = acts[static_cast<std::size_t>(id)].stddev();
    EXPECT_GT(sd, 0.5) << "node " << id;
    EXPECT_LT(sd, 2.0) << "node " << id;
  }
  (void)raw;
}

TEST(Zoo, CostsAggregateOverAnalyzedLayers) {
  const ZooModel m = build_nin(uncalibrated());
  std::int64_t inputs = 0, macs = 0;
  for (int id : m.analyzed) {
    inputs += m.net.node(id).cost.input_elems;
    macs += m.net.node(id).cost.macs;
    EXPECT_GT(m.net.node(id).cost.macs, 0);
  }
  EXPECT_GT(inputs, 0);
  EXPECT_GT(macs, inputs);  // convolutions always do >1 MAC per input read
}

TEST(Zoo, MobilenetUsesDepthwiseGroups) {
  const ZooModel m = build_mobilenet(uncalibrated());
  bool found_depthwise = false;
  for (int id : m.analyzed) {
    if (m.net.layer(id).kind() != LayerKind::kConv) continue;
    const auto& cfg = static_cast<const Conv2DLayer&>(m.net.layer(id)).config();
    if (cfg.groups > 1 && cfg.groups == cfg.in_channels) found_depthwise = true;
  }
  EXPECT_TRUE(found_depthwise);
}

}  // namespace
}  // namespace mupod
