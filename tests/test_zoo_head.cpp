// Tests of the classifier-head training that gives the zoo models real
// decision margins (DESIGN.md substitution #1).
#include <gtest/gtest.h>

#include <memory>

#include "nn/layers.hpp"

#include "core/harness.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

DatasetConfig data_cfg(int classes, const ZooModel& m, std::uint64_t seed) {
  DatasetConfig dc;
  dc.num_classes = classes;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  dc.seed = seed;
  return dc;
}

double label_accuracy(const ZooModel& m, const SyntheticImageDataset& ds) {
  HarnessConfig hc;
  hc.profile_images = 4;
  hc.eval_images = 128;
  hc.metric = AccuracyMetric::kLabels;
  AnalysisHarness h(m.net, m.analyzed, ds, hc);
  return h.float_accuracy();
}

TEST(HeadTraining, ReportsTrainAccuracy) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.head_images = 0;  // build untrained
  zo.data_seed = 11;
  ZooModel m = build_tiny_cnn(zo);
  SyntheticImageDataset ds(data_cfg(10, m, 11));
  const double train_acc = train_classifier_head(m.net, ds, 10, 96, 20, 0.5f, 3);
  EXPECT_GT(train_acc, 0.6);  // linearly separable synthetic task
  EXPECT_LE(train_acc, 1.0);
}

TEST(HeadTraining, ImprovesHeldOutLabelAccuracy) {
  ZooOptions untrained;
  untrained.num_classes = 10;
  untrained.head_images = 0;
  untrained.data_seed = 11;
  ZooModel base = build_tiny_cnn(untrained);
  SyntheticImageDataset ds(data_cfg(10, base, 11));
  const double before = label_accuracy(base, ds);

  ZooOptions trained = untrained;
  trained.head_images = 128;
  ZooModel with_head = build_tiny_cnn(trained);
  const double after = label_accuracy(with_head, ds);

  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.5);
}

TEST(HeadTraining, FailsGracefullyWithoutTrainableHead) {
  // A network ending in ReLU has no (fc | 1x1-conv)+linear-path head.
  Network net("headless");
  net.add_input("data", 1, 4, 4);
  Conv2DLayer::Config c;
  c.in_channels = 1;
  c.out_channels = 2;
  c.kernel_h = c.kernel_w = 3;
  c.pad = 1;
  net.add("conv", std::make_unique<Conv2DLayer>(c), std::vector<std::string>{"data"});
  net.add("relu", std::make_unique<ReLULayer>(), std::vector<std::string>{"conv"});
  net.finalize();
  DatasetConfig dc;
  dc.num_classes = 2;
  dc.channels = 1;
  dc.height = 4;
  dc.width = 4;
  SyntheticImageDataset ds(dc);
  EXPECT_LT(train_classifier_head(net, ds, 2, 16, 2, 0.5f, 1), 0.0);
}

TEST(HeadTraining, ClassCountMismatchRejected) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.head_images = 0;
  ZooModel m = build_tiny_cnn(zo);
  SyntheticImageDataset ds(data_cfg(10, m, 11));
  // Asking to train for 7 classes against a 10-way head must refuse.
  EXPECT_LT(train_classifier_head(m.net, ds, 7, 32, 2, 0.5f, 1), 0.0);
}

TEST(HeadTraining, DeterministicGivenSeeds) {
  ZooOptions zo;
  zo.num_classes = 10;
  zo.data_seed = 31;
  ZooModel a = build_tiny_cnn(zo);
  ZooModel b = build_tiny_cnn(zo);
  SyntheticImageDataset ds(data_cfg(10, a, 31));
  const Tensor batch = ds.make_batch(5000, 4);
  EXPECT_DOUBLE_EQ(max_abs_diff(a.net.forward(batch), b.net.forward(batch)), 0.0);
}

TEST(HeadTraining, ConvHeadTrainsToo) {
  // NiN's head is a 1x1 conv feeding a global average pool.
  ZooOptions zo;
  zo.num_classes = 10;
  zo.data_seed = 77;
  zo.head_images = 96;
  ZooModel m = build_nin(zo);
  SyntheticImageDataset ds(data_cfg(10, m, 77));
  EXPECT_GT(label_accuracy(m, ds), 0.5);
}

}  // namespace
}  // namespace mupod
