// Property tests of fixed point quantization, parameterized over a grid
// of I.F formats (including negative-F implicit-shift formats).
#include <gtest/gtest.h>

#include <cmath>

#include "quant/fixed_point.hpp"
#include "stats/rng.hpp"

namespace mupod {
namespace {

struct FormatCase {
  int integer_bits;
  int fraction_bits;
};

class QuantFormatProperty : public ::testing::TestWithParam<FormatCase> {
 protected:
  FixedPointFormat fmt() const {
    return {.integer_bits = GetParam().integer_bits, .fraction_bits = GetParam().fraction_bits};
  }
  // Values well inside the representable range.
  float sample(Rng& rng) const {
    const double hi = fmt().max_value() * 0.9;
    return static_cast<float>(rng.uniform(-hi, hi));
  }
};

TEST_P(QuantFormatProperty, Idempotent) {
  Rng rng(GetParam().integer_bits * 131 + GetParam().fraction_bits + 64);
  const FixedPointFormat f = fmt();
  for (int i = 0; i < 2000; ++i) {
    const float x = sample(rng);
    const float q = quantize_value(x, f);
    EXPECT_EQ(quantize_value(q, f), q) << "x=" << x;
  }
}

TEST_P(QuantFormatProperty, ErrorBoundedByDelta) {
  Rng rng(GetParam().integer_bits * 7 + GetParam().fraction_bits + 512);
  const FixedPointFormat f = fmt();
  const double bound = f.delta() * (1.0 + 1e-6) + 1e-7;
  for (int i = 0; i < 2000; ++i) {
    const float x = sample(rng);
    EXPECT_LE(std::fabs(quantize_value(x, f) - x), bound) << "x=" << x;
  }
}

TEST_P(QuantFormatProperty, Monotone) {
  Rng rng(GetParam().integer_bits * 31 + GetParam().fraction_bits + 1024);
  const FixedPointFormat f = fmt();
  for (int i = 0; i < 2000; ++i) {
    const float a = sample(rng);
    const float b = sample(rng);
    const float qa = quantize_value(std::min(a, b), f);
    const float qb = quantize_value(std::max(a, b), f);
    EXPECT_LE(qa, qb);
  }
}

TEST_P(QuantFormatProperty, ZeroIsExact) {
  EXPECT_EQ(quantize_value(0.0f, fmt()), 0.0f);
}

TEST_P(QuantFormatProperty, OutputOnStepGrid) {
  Rng rng(GetParam().integer_bits * 17 + GetParam().fraction_bits + 99);
  const FixedPointFormat f = fmt();
  for (int i = 0; i < 1000; ++i) {
    const float q = quantize_value(sample(rng), f);
    const double steps = static_cast<double>(q) / f.step();
    EXPECT_NEAR(steps, std::nearbyint(steps), 1e-6) << q;
  }
}

TEST_P(QuantFormatProperty, SaturationClampsToRange) {
  const FixedPointFormat f = fmt();
  EXPECT_FLOAT_EQ(quantize_value(1e30f, f), static_cast<float>(f.max_value()));
  EXPECT_FLOAT_EQ(quantize_value(-1e30f, f), static_cast<float>(f.min_value()));
}

TEST_P(QuantFormatProperty, NoiseStddevTracksTheory) {
  // Dense uniform population: measured error s.d. ~= 2*Delta/sqrt(12).
  const FixedPointFormat f = fmt();
  Tensor t(Shape({100000}));
  Rng rng(5);
  const double hi = f.max_value() * 0.9;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-hi, hi));
  const QuantErrorStats st = quantization_error_stats(t, f);
  EXPECT_NEAR(st.stddev, f.noise_stddev(), f.noise_stddev() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    FormatGrid, QuantFormatProperty,
    ::testing::Values(FormatCase{2, 10}, FormatCase{4, 8}, FormatCase{6, 4}, FormatCase{8, 0},
                      FormatCase{9, -3}, FormatCase{10, -4}, FormatCase{3, 13},
                      FormatCase{12, 2}),
    [](const auto& info) {
      const int f = info.param.fraction_bits;
      return "I" + std::to_string(info.param.integer_bits) +
             (f < 0 ? "Fm" + std::to_string(-f) : "F" + std::to_string(f));
    });

}  // namespace
}  // namespace mupod
