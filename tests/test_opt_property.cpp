// Property tests of the simplex machinery over randomized problems.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "opt/simplex.hpp"
#include "stats/rng.hpp"

namespace mupod {
namespace {

class SimplexProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProjectionProperty, FeasibleAndIdempotent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_index(10));
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = rng.uniform(-3.0, 3.0);
    const double lower = rng.uniform(0.0, 0.5 / n);

    const auto p = project_to_simplex(v, 1.0, lower);
    double sum = 0.0;
    for (double x : p) {
      EXPECT_GE(x, lower - 1e-12);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);

    const auto pp = project_to_simplex(p, 1.0, lower);
    for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(pp[i], p[i], 1e-9);
  }
}

TEST_P(SimplexProjectionProperty, IsClosestFeasiblePoint) {
  // Projection must be at least as close to v as any random feasible point.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3;
    std::vector<double> v = {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    const auto p = project_to_simplex(v);
    const auto dist2 = [&](const std::vector<double>& q) {
      double d = 0;
      for (int i = 0; i < n; ++i) d += (q[static_cast<std::size_t>(i)] - v[static_cast<std::size_t>(i)]) *
                                       (q[static_cast<std::size_t>(i)] - v[static_cast<std::size_t>(i)]);
      return d;
    };
    const double dp = dist2(p);
    for (int probe = 0; probe < 100; ++probe) {
      std::vector<double> q = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
      const double s = q[0] + q[1] + q[2];
      for (double& x : q) x /= s;
      EXPECT_LE(dp, dist2(q) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProjectionProperty, ::testing::Values(1, 2, 3, 4));

class SolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverProperty, SolversAgreeOnRandomWeightedLogObjectives) {
  // Random instances of the paper's objective family:
  //   F(xi) = -sum rho_K log(a_K sqrt(xi_K) + b_K), b_K small.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_index(6));
    std::vector<double> rho(static_cast<std::size_t>(n)), a(static_cast<std::size_t>(n)),
        b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      rho[static_cast<std::size_t>(i)] = rng.uniform(1.0, 100.0);
      a[static_cast<std::size_t>(i)] = rng.uniform(0.5, 5.0);
      b[static_cast<std::size_t>(i)] = rng.uniform(-0.01, 0.01);
    }
    SimplexProblem prob;
    prob.objective = [&](std::span<const double> xi) {
      double f = 0.0;
      for (int i = 0; i < n; ++i) {
        const double d = std::max(a[static_cast<std::size_t>(i)] * std::sqrt(xi[static_cast<std::size_t>(i)]) +
                                  b[static_cast<std::size_t>(i)], 1e-12);
        f -= rho[static_cast<std::size_t>(i)] * std::log(d);
      }
      return f;
    };
    const SimplexResult pg = minimize_on_simplex(n, prob);
    const SimplexResult sqp = sqp_minimize_on_simplex(n, prob);
    // Both should find near-identical objective values.
    EXPECT_NEAR(pg.objective, sqp.objective,
                std::fabs(pg.objective) * 0.01 + 0.5)
        << "n=" << n << " trial=" << trial;
    // And both must beat the uniform start.
    const std::vector<double> uniform(static_cast<std::size_t>(n), 1.0 / n);
    EXPECT_LE(pg.objective, prob.objective(uniform) + 1e-9);
    EXPECT_LE(sqp.objective, prob.objective(uniform) + 1e-9);
  }
}

TEST_P(SolverProperty, SolutionsAreStationary) {
  // At the solution, the projected gradient step must not improve the
  // objective by more than a hair (first-order optimality).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const int n = 4;
  std::vector<double> rho(static_cast<std::size_t>(n));
  for (double& r : rho) r = rng.uniform(1.0, 50.0);
  SimplexProblem prob;
  prob.objective = [&](std::span<const double> xi) {
    double f = 0.0;
    for (int i = 0; i < n; ++i)
      f -= rho[static_cast<std::size_t>(i)] * std::log(std::max(xi[static_cast<std::size_t>(i)], 1e-12));
    return f;
  };
  const SimplexResult r = minimize_on_simplex(n, prob);
  // Known optimum: xi ~ rho.
  const double total = std::accumulate(rho.begin(), rho.end(), 0.0);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(r.xi[static_cast<std::size_t>(i)], rho[static_cast<std::size_t>(i)] / total, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace mupod
