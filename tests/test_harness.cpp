#include "core/harness.hpp"

#include <gtest/gtest.h>

#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

TEST(Harness, ReportsAnalyzedLayers) {
  const AnalysisHarness& h = *tiny().harness;
  EXPECT_EQ(h.num_layers(), 4);  // conv1..3 + fc
  EXPECT_EQ(h.analyzed(), tiny().model.analyzed);
}

TEST(Harness, InputRangesPositive) {
  const AnalysisHarness& h = *tiny().harness;
  for (double r : h.input_ranges()) EXPECT_GT(r, 0.0);
}

TEST(Harness, FloatAccuracyIsOneByConstruction) {
  EXPECT_DOUBLE_EQ(tiny().harness->float_accuracy(), 1.0);
}

TEST(Harness, NoInjectionGivesPerfectAgreement) {
  const AnalysisHarness& h = *tiny().harness;
  EXPECT_DOUBLE_EQ(h.accuracy_with_injection({}), 1.0);
}

TEST(Harness, SigmaGrowsWithDelta) {
  const AnalysisHarness& h = *tiny().harness;
  const int node = h.analyzed()[1];
  const double s1 = h.output_sigma_for_injection(node, 0.01);
  const double s2 = h.output_sigma_for_injection(node, 0.02);
  const double s4 = h.output_sigma_for_injection(node, 0.04);
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s2, s1);
  EXPECT_GT(s4, s2);
  // Roughly linear (paper Sec. IV).
  EXPECT_NEAR(s4 / s1, 4.0, 1.5);
}

TEST(Harness, SigmaDeterministicPerRep) {
  const AnalysisHarness& h = *tiny().harness;
  const int node = h.analyzed()[0];
  EXPECT_DOUBLE_EQ(h.output_sigma_for_injection(node, 0.03, 1),
                   h.output_sigma_for_injection(node, 0.03, 1));
  EXPECT_NE(h.output_sigma_for_injection(node, 0.03, 1),
            h.output_sigma_for_injection(node, 0.03, 2));
}

TEST(Harness, AccuracyDecreasesWithNoise) {
  const AnalysisHarness& h = *tiny().harness;
  const int node = h.analyzed()[0];
  std::unordered_map<int, InjectionSpec> small, large;
  small.emplace(node, InjectionSpec::uniform(0.001));
  large.emplace(node, InjectionSpec::uniform(5.0));
  const double acc_small = h.accuracy_with_injection(small);
  const double acc_large = h.accuracy_with_injection(large);
  EXPECT_GT(acc_small, 0.9);
  EXPECT_LT(acc_large, acc_small);
}

TEST(Harness, GaussianOutputAccuracyMonotone) {
  const AnalysisHarness& h = *tiny().harness;
  const double a0 = h.accuracy_with_output_gaussian(0.0);
  const double a1 = h.accuracy_with_output_gaussian(0.2);
  const double a2 = h.accuracy_with_output_gaussian(5.0);
  EXPECT_DOUBLE_EQ(a0, 1.0);
  EXPECT_LE(a1, a0);
  EXPECT_LT(a2, a1);
  EXPECT_GT(a2, 0.0);  // still above zero agreement (chance ~ 1/10)
}

TEST(Harness, SingleInjectionBatchMatchesIndividual) {
  const AnalysisHarness& h = *tiny().harness;
  std::vector<std::pair<int, InjectionSpec>> candidates;
  candidates.emplace_back(h.analyzed()[0], InjectionSpec::uniform(0.05));
  candidates.emplace_back(h.analyzed()[2], InjectionSpec::uniform(0.2));
  const std::vector<double> batch = h.accuracy_single_injections(candidates);
  ASSERT_EQ(batch.size(), 2u);
  std::unordered_map<int, InjectionSpec> one;
  one.emplace(candidates[0].first, candidates[0].second);
  EXPECT_NEAR(batch[0], h.accuracy_with_injection(one), 1e-12);
}

TEST(Harness, MultiNodeInjectionWorsensAccuracy) {
  const AnalysisHarness& h = *tiny().harness;
  std::unordered_map<int, InjectionSpec> one, all;
  one.emplace(h.analyzed()[0], InjectionSpec::uniform(0.3));
  for (int node : h.analyzed()) all.emplace(node, InjectionSpec::uniform(0.3));
  EXPECT_LE(h.accuracy_with_injection(all), h.accuracy_with_injection(one) + 0.02);
}

TEST(Harness, OutputErrorsHaveExpectedSize) {
  const AnalysisHarness& h = *tiny().harness;
  std::unordered_map<int, InjectionSpec> inject;
  inject.emplace(h.analyzed()[0], InjectionSpec::uniform(0.05));
  const std::vector<float> errors = h.output_errors_for_injection(inject);
  // profile_images * num_classes samples.
  EXPECT_EQ(errors.size(), static_cast<std::size_t>(h.config().profile_images) * 10u);
}

TEST(Harness, ForwardCountAdvances) {
  const AnalysisHarness& h = *tiny().harness;
  const std::int64_t before = h.forward_count();
  (void)h.accuracy_with_output_gaussian(0.1);
  (void)h.output_sigma_for_injection(h.analyzed()[0], 0.01);
  EXPECT_GT(h.forward_count(), before);
}

}  // namespace
}  // namespace mupod
