#include "opt/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

namespace mupod {
namespace {

double sum_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(SimplexProjection, AlreadyFeasibleUnchanged) {
  std::vector<double> v = {0.2, 0.3, 0.5};
  const auto p = project_to_simplex(v);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(p[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)], 1e-12);
}

TEST(SimplexProjection, NormalizesSum) {
  std::vector<double> v = {2.0, 2.0};
  const auto p = project_to_simplex(v);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(SimplexProjection, ClampsNegatives) {
  std::vector<double> v = {-5.0, 1.0, 1.0};
  const auto p = project_to_simplex(v);
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_NEAR(sum_of(p), 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(SimplexProjection, RespectsLowerBound) {
  std::vector<double> v = {-10.0, 5.0, 5.0};
  const auto p = project_to_simplex(v, 1.0, 0.05);
  EXPECT_NEAR(p[0], 0.05, 1e-12);
  EXPECT_NEAR(sum_of(p), 1.0, 1e-12);
  for (double x : p) EXPECT_GE(x, 0.05 - 1e-12);
}

TEST(SimplexProjection, CustomTotal) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  const auto p = project_to_simplex(v, 2.0);
  EXPECT_NEAR(sum_of(p), 2.0, 1e-12);
}

// --- solvers ---------------------------------------------------------------

SimplexProblem quadratic_problem(const std::vector<double>& target) {
  SimplexProblem prob;
  prob.objective = [target](std::span<const double> x) {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) f += (x[i] - target[i]) * (x[i] - target[i]);
    return f;
  };
  prob.gradient = [target](std::span<const double> x, std::span<double> g) {
    for (std::size_t i = 0; i < x.size(); ++i) g[i] = 2.0 * (x[i] - target[i]);
  };
  return prob;
}

TEST(SimplexSolvers, QuadraticWithInteriorOptimum) {
  const std::vector<double> target = {0.5, 0.3, 0.2};  // already on the simplex
  for (auto solver : {&minimize_on_simplex, &sqp_minimize_on_simplex}) {
    const SimplexResult r = solver(3, quadratic_problem(target), {}, {});
    for (int i = 0; i < 3; ++i)
      EXPECT_NEAR(r.xi[static_cast<std::size_t>(i)], target[static_cast<std::size_t>(i)], 1e-4);
    EXPECT_NEAR(sum_of(r.xi), 1.0, 1e-9);
  }
}

TEST(SimplexSolvers, QuadraticWithExteriorOptimum) {
  // Unconstrained optimum off the simplex; solution is its projection.
  const std::vector<double> target = {2.0, 0.0, 0.0};
  const auto expected = project_to_simplex(target, 1.0, 1e-4);
  for (auto solver : {&minimize_on_simplex, &sqp_minimize_on_simplex}) {
    const SimplexResult r = solver(3, quadratic_problem(target), {}, {});
    for (int i = 0; i < 3; ++i)
      EXPECT_NEAR(r.xi[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-3);
  }
}

TEST(SimplexSolvers, EntropyLikeObjectiveClosedForm) {
  // min -sum(w_i * log(x_i)) on the simplex has solution x_i = w_i/sum(w).
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  SimplexProblem prob;
  prob.objective = [w](std::span<const double> x) {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) f -= w[i] * std::log(std::max(x[i], 1e-300));
    return f;
  };
  const double total = 10.0;
  for (auto solver : {&minimize_on_simplex, &sqp_minimize_on_simplex}) {
    const SimplexResult r = solver(4, prob, {}, {});
    for (int i = 0; i < 4; ++i)
      EXPECT_NEAR(r.xi[static_cast<std::size_t>(i)], w[static_cast<std::size_t>(i)] / total, 2e-3);
  }
}

TEST(SimplexSolvers, NumericGradientFallback) {
  SimplexProblem prob;
  prob.objective = [](std::span<const double> x) {
    return (x[0] - 0.7) * (x[0] - 0.7) + (x[1] - 0.3) * (x[1] - 0.3);
  };
  // No gradient supplied.
  const SimplexResult r = minimize_on_simplex(2, prob);
  EXPECT_NEAR(r.xi[0], 0.7, 1e-3);
  EXPECT_NEAR(r.xi[1], 0.3, 1e-3);
}

TEST(SimplexSolvers, RespectsMinXi) {
  SimplexProblem prob = quadratic_problem({1.0, 0.0, 0.0});
  SimplexSolverOptions opts;
  opts.min_xi = 0.01;
  for (auto solver : {&minimize_on_simplex, &sqp_minimize_on_simplex}) {
    const SimplexResult r = solver(3, prob, opts, {});
    for (double x : r.xi) EXPECT_GE(x, 0.01 - 1e-9);
  }
}

TEST(SimplexSolvers, HonorsInitialPoint) {
  SimplexProblem prob = quadratic_problem({0.25, 0.25, 0.25, 0.25});
  const std::vector<double> init = {0.97, 0.01, 0.01, 0.01};
  const SimplexResult r = minimize_on_simplex(4, prob, {}, init);
  for (double x : r.xi) EXPECT_NEAR(x, 0.25, 1e-3);
}

TEST(SimplexSolvers, SingleCoordinate) {
  SimplexProblem prob;
  prob.objective = [](std::span<const double> x) { return x[0] * x[0]; };
  const SimplexResult r = minimize_on_simplex(1, prob);
  EXPECT_NEAR(r.xi[0], 1.0, 1e-12);  // only feasible point
}

// --- broken / adversarial objectives ---------------------------------------
// A solver must never claim convergence on an objective it could not
// actually evaluate — that is what lets the allocator escalate.

TEST(SimplexSolvers, NanObjectiveEverywhereNotConverged) {
  SimplexProblem prob;
  prob.objective = [](std::span<const double>) { return std::nan(""); };
  const SimplexResult pg = minimize_on_simplex(3, prob);
  EXPECT_FALSE(pg.converged);
  const SimplexResult sqp = sqp_minimize_on_simplex(3, prob);
  EXPECT_FALSE(sqp.converged);
  // The returned point is still feasible (useful as a fallback iterate).
  for (double x : pg.xi) EXPECT_TRUE(std::isfinite(x));
  for (double x : sqp.xi) EXPECT_TRUE(std::isfinite(x));
}

TEST(SimplexSolvers, NanWallBlockingDescentNotConverged) {
  // Finite only at the exact uniform start; the (analytic) gradient pushes
  // outward, so every candidate step — however small the backtracking makes
  // it — lands in the NaN region. The stall is a broken objective, not
  // optimality. (A finite neighborhood would not do: backtracking shrinks
  // steps below any fixed radius and finds real improvements inside it.)
  SimplexProblem prob;
  prob.objective = [](std::span<const double> x) {
    for (double v : x)
      if (v != 1.0 / 3.0) return std::nan("");
    return -x[0];
  };
  prob.gradient = [](std::span<const double>, std::span<double> g) {
    g[0] = -1.0;
    for (std::size_t i = 1; i < g.size(); ++i) g[i] = 0.0;
  };
  const SimplexResult pg = minimize_on_simplex(3, prob);
  EXPECT_FALSE(pg.converged);
  const SimplexResult sqp = sqp_minimize_on_simplex(3, prob);
  EXPECT_FALSE(sqp.converged);
}

TEST(SimplexSolvers, IterationBudgetExhaustedReportsNotConverged) {
  // A well-posed problem with an iteration budget far too small: the
  // result must admit it did not converge rather than pretending.
  const std::vector<double> target = {0.9, 0.05, 0.05};
  SimplexProblem prob = quadratic_problem(target);
  SimplexSolverOptions opts;
  opts.max_iterations = 1;
  opts.tolerance = 1e-16;
  const SimplexResult pg = minimize_on_simplex(3, prob, opts);
  EXPECT_FALSE(pg.converged);
  EXPECT_TRUE(std::isfinite(pg.objective));
}

TEST(SimplexProjection, SanitizesNonFiniteInput) {
  const std::vector<double> v = {std::nan(""), 1.0,
                                 std::numeric_limits<double>::infinity()};
  const auto p = project_to_simplex(v, 1.0, 0.01);
  double sum = 0.0;
  for (double x : p) {
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GE(x, 0.01 - 1e-12);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace mupod
