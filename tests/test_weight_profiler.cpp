// Tests of the analytic weight-precision extension: the Eq. 5 linear law
// holds for weight perturbations too, and the analytic allocation is
// competitive with the paper's uniform weight search.
#include <gtest/gtest.h>

#include <cmath>

#include "core/weight_profiler.hpp"
#include "core/weight_search.hpp"
#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

Network& net() { return const_cast<Network&>(tiny().harness->net()); }

const std::vector<LayerLinearModel>& wmodels() {
  static const std::vector<LayerLinearModel>* m = [] {
    ProfilerConfig cfg;
    cfg.points = 8;
    // Weight noise is one realization shared by every image (unlike
    // activation noise, which is fresh per element), so each sigma
    // estimate has realization-level variance: average more reps.
    cfg.reps_per_point = 4;
    return new std::vector<LayerLinearModel>(
        profile_weight_lambda_theta(net(), *tiny().harness, cfg));
  }();
  return *m;
}

TEST(WeightProfiler, LinearLawHoldsForWeights) {
  for (const auto& m : wmodels()) {
    EXPECT_GT(m.lambda, 0.0) << "layer " << m.layer_index;
    EXPECT_GT(m.r2, 0.9) << "layer " << m.layer_index;
    EXPECT_TRUE(std::isfinite(m.theta));
  }
}

TEST(WeightProfiler, RestoresWeights) {
  DatasetConfig dc;
  dc.height = 16;
  dc.width = 16;
  SyntheticImageDataset ds(dc);
  const Tensor probe = ds.make_batch(8000, 4);
  const Tensor before = net().forward(probe);
  ProfilerConfig cfg;
  cfg.points = 4;
  (void)profile_weight_layer(net(), *tiny().harness, 1, cfg);
  EXPECT_DOUBLE_EQ(max_abs_diff(before, net().forward(probe)), 0.0);
}

TEST(WeightProfiler, SigmasMonotoneInDelta) {
  const LayerLinearModel& m = wmodels()[0];
  for (std::size_t i = 1; i < m.sigmas.size(); ++i)
    EXPECT_GT(m.sigmas[i], m.sigmas[i - 1] * 0.8) << i;
}

TEST(WeightProfiler, RangesMatchMaxAbs) {
  const auto ranges = weight_ranges(net(), tiny().harness->analyzed());
  ASSERT_EQ(ranges.size(), tiny().harness->analyzed().size());
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    const Tensor* w = net().layer(tiny().harness->analyzed()[k]).weights();
    ASSERT_NE(w, nullptr);
    EXPECT_DOUBLE_EQ(ranges[k], static_cast<double>(w->max_abs()));
  }
}

TEST(WeightProfiler, AnalyticAllocationMeetsAccuracy) {
  // Allocate per-layer weight formats for a modest budget and validate
  // with real weight quantization.
  ObjectiveSpec obj;
  obj.name = "unit";
  obj.rho.assign(wmodels().size(), 1);
  const auto ranges = weight_ranges(net(), tiny().harness->analyzed());
  // Use a deliberately conservative weight budget: a third of an
  // activation budget that itself passes at 10% drop.
  const BitwidthAllocation a = allocate_weight_bitwidths(wmodels(), 0.05, ranges, obj);

  const Network::WeightSnapshot snap = net().snapshot_weights();
  apply_weight_formats(net(), tiny().harness->analyzed(), a.formats);
  const double acc = tiny().harness->accuracy_full_forward({});
  net().restore_weights(snap);
  EXPECT_GE(acc, 0.85);
  for (int b : a.bits) {
    EXPECT_GE(b, 1);
    EXPECT_LE(b, 24);
  }
}

TEST(WeightProfiler, AnalyticCompetitiveWithUniformSearch) {
  // The analytic per-layer weight allocation should not need dramatically
  // more total weight bits than the paper's uniform search at a matched
  // accuracy level.
  WeightSearchConfig scfg;
  scfg.relative_accuracy_drop = 0.10;
  const WeightSearchResult uniform = search_weight_bitwidth(net(), *tiny().harness, {}, scfg);

  ObjectiveSpec obj;
  obj.name = "unit";
  obj.rho.assign(wmodels().size(), 1);
  const auto ranges = weight_ranges(net(), tiny().harness->analyzed());

  // Find an analytic budget meeting the same constraint by doubling.
  const double threshold = (1.0 - scfg.relative_accuracy_drop) * tiny().harness->float_accuracy();
  double sigma_w = 0.01;
  BitwidthAllocation best;
  for (int it = 0; it < 12; ++it, sigma_w *= 2.0) {
    const BitwidthAllocation a = allocate_weight_bitwidths(wmodels(), sigma_w, ranges, obj);
    const Network::WeightSnapshot snap = net().snapshot_weights();
    apply_weight_formats(net(), tiny().harness->analyzed(), a.formats);
    const double acc = tiny().harness->accuracy_full_forward({});
    net().restore_weights(snap);
    if (acc >= threshold) {
      best = a;
    } else {
      break;
    }
  }
  ASSERT_FALSE(best.bits.empty());
  double analytic_total = 0, uniform_total = 0;
  for (int b : best.bits) analytic_total += b;
  uniform_total = static_cast<double>(uniform.bits) * static_cast<double>(best.bits.size());
  EXPECT_LE(analytic_total, uniform_total * 1.5 + 4.0);
}

}  // namespace
}  // namespace mupod
