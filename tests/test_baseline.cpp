#include "baseline/search_baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

BaselineConfig cfg5() {
  BaselineConfig cfg;
  cfg.relative_accuracy_drop = 0.05;
  return cfg;
}

TEST(UniformBaseline, MeetsConstraint) {
  const BaselineResult res = uniform_baseline(*tiny().harness, cfg5());
  EXPECT_EQ(res.bits.size(), static_cast<std::size_t>(tiny().harness->num_layers()));
  for (std::size_t k = 1; k < res.bits.size(); ++k) EXPECT_EQ(res.bits[k], res.bits[0]);
  EXPECT_GE(res.accuracy, 0.95);
}

TEST(UniformBaseline, MinimalityOneFewerBitFails) {
  const BaselineConfig cfg = cfg5();
  const BaselineResult res = uniform_baseline(*tiny().harness, cfg);
  if (res.bits[0] > cfg.min_bits) {
    std::vector<int> fewer(res.bits.size(), res.bits[0] - 1);
    std::unordered_map<int, InjectionSpec> inject;
    for (std::size_t k = 0; k < fewer.size(); ++k) {
      FixedPointFormat f;
      f.integer_bits =
          FixedPointFormat::integer_bits_for_range(tiny().harness->input_ranges()[k]);
      f.fraction_bits = fewer[k] - f.integer_bits;
      inject.emplace(tiny().harness->analyzed()[k], InjectionSpec::quantize(f));
    }
    EXPECT_LT(tiny().harness->accuracy_with_injection(inject), 0.95);
  }
}

TEST(ProfileSearchBaseline, MeetsConstraint) {
  const BaselineResult res = profile_search_baseline(*tiny().harness, cfg5());
  EXPECT_GE(res.accuracy, 0.95);
  for (int b : res.bits) {
    EXPECT_GE(b, cfg5().min_bits);
    EXPECT_LE(b, cfg5().max_bits);
  }
}

TEST(ProfileSearchBaseline, NotWorseThanUniformOnAverage) {
  const BaselineResult uni = uniform_baseline(*tiny().harness, cfg5());
  const BaselineResult prof = profile_search_baseline(*tiny().harness, cfg5());
  double uni_total = 0, prof_total = 0;
  for (std::size_t k = 0; k < uni.bits.size(); ++k) {
    uni_total += uni.bits[k];
    prof_total += prof.bits[k];
  }
  // Per-layer search should not use more total bits than one-size-fits-all
  // (it may tie when the uniform answer is already per-layer optimal).
  EXPECT_LE(prof_total, uni_total + 1.0);
}

TEST(ProfileSearchBaseline, TighterConstraintNeedsMoreBits) {
  BaselineConfig tight = cfg5();
  tight.relative_accuracy_drop = 0.01;
  const BaselineResult t = profile_search_baseline(*tiny().harness, tight);
  const BaselineResult l = profile_search_baseline(*tiny().harness, cfg5());
  double bits_t = 0, bits_l = 0;
  for (std::size_t k = 0; k < t.bits.size(); ++k) {
    bits_t += t.bits[k];
    bits_l += l.bits[k];
  }
  // The Judd-style uniform joint repair (+1 to every layer) makes the
  // total only coarsely monotone in the constraint: a looser budget can
  // start from smaller per-layer minima yet trigger one extra uniform
  // bump. Allow that one-bump slop.
  EXPECT_GE(bits_t, bits_l - static_cast<double>(t.bits.size()));
}

TEST(Baselines, ReportEvaluationCounts) {
  const BaselineResult uni = uniform_baseline(*tiny().harness, cfg5());
  const BaselineResult prof = profile_search_baseline(*tiny().harness, cfg5());
  EXPECT_GT(uni.accuracy_evaluations, 0);
  // The per-layer profile sweep is the expensive part the paper's method
  // eliminates; it must dominate the uniform baseline's count.
  EXPECT_GT(prof.accuracy_evaluations, uni.accuracy_evaluations);
}

}  // namespace
}  // namespace mupod
