#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace mupod {
namespace {

TEST(Shape, DefaultIsEmpty) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, RankAndDims) {
  Shape s({2, 3, 4, 5});
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(3), 5);
  EXPECT_EQ(s[1], 3);
}

TEST(Shape, Numel) {
  EXPECT_EQ(Shape({7}).numel(), 7);
  EXPECT_EQ(Shape({2, 3}).numel(), 6);
  EXPECT_EQ(Shape({2, 3, 4, 5}).numel(), 120);
}

TEST(Shape, NumelWithZeroDim) {
  EXPECT_EQ(Shape({0, 5}).numel(), 0);
}

TEST(Shape, NchwAccessors) {
  Shape s({8, 3, 32, 16});
  EXPECT_EQ(s.n(), 8);
  EXPECT_EQ(s.c(), 3);
  EXPECT_EQ(s.h(), 32);
  EXPECT_EQ(s.w(), 16);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(Shape, WithDim) {
  Shape s({4, 3, 8, 8});
  Shape t = s.with_dim(0, 16);
  EXPECT_EQ(t.n(), 16);
  EXPECT_EQ(t.c(), 3);
  EXPECT_EQ(s.n(), 4);  // original untouched
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({1, 2, 3}).to_string(), "(1, 2, 3)");
  EXPECT_EQ(Shape({7}).to_string(), "(7)");
}

TEST(Shape, ScalarFactory) {
  EXPECT_EQ(Shape::scalar().numel(), 1);
}

}  // namespace
}  // namespace mupod
