// Tests of the lambda/theta profiling pass — the paper's core empirical
// law (Eq. 5): Delta_XK is linear in sigma_{Y_{K->L}} with R^2 ~ 1.
#include "core/profiler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fixtures.hpp"

namespace mupod {
namespace {

using testfix::tiny;

ProfilerConfig fast_cfg() {
  ProfilerConfig cfg;
  cfg.points = 8;
  return cfg;
}

TEST(Profiler, FitsEveryAnalyzedLayer) {
  const auto models = profile_lambda_theta(*tiny().harness, fast_cfg());
  ASSERT_EQ(models.size(), 4u);
  for (const auto& m : models) {
    EXPECT_GE(m.node, 0);
    EXPECT_EQ(static_cast<int>(m.deltas.size()), 8);
    EXPECT_EQ(m.deltas.size(), m.sigmas.size());
  }
}

TEST(Profiler, LinearLawHolds) {
  // The paper reports the regression predicts Delta mostly within 5%,
  // worst case ~10%. Our tiny network should satisfy the same bound.
  const auto models = profile_lambda_theta(*tiny().harness, fast_cfg());
  for (const auto& m : models) {
    EXPECT_GT(m.lambda, 0.0) << "layer " << m.layer_index;
    EXPECT_GT(m.r2, 0.98) << "layer " << m.layer_index;
    EXPECT_LT(m.max_rel_error, 0.25) << "layer " << m.layer_index;
  }
}

TEST(Profiler, SigmasIncreaseWithDelta) {
  const LayerLinearModel m = profile_layer(*tiny().harness, 1, fast_cfg());
  for (std::size_t i = 1; i < m.sigmas.size(); ++i) {
    EXPECT_GT(m.sigmas[i], m.sigmas[i - 1]) << i;
    EXPECT_GT(m.deltas[i], m.deltas[i - 1]) << i;
  }
}

TEST(Profiler, DeltaForSigmaInvertsFit) {
  const LayerLinearModel m = profile_layer(*tiny().harness, 0, fast_cfg());
  // At a measured point, the model prediction is close to the true Delta.
  const std::size_t mid = m.sigmas.size() / 2;
  EXPECT_NEAR(m.delta_for_sigma(m.sigmas[mid]), m.deltas[mid], m.deltas[mid] * 0.15);
}

TEST(Profiler, EarlierLayersNotCheaperThanFreeLunch) {
  // lambda encodes how much input noise a layer tolerates per unit of
  // output error. All lambdas must be positive and finite.
  const auto models = profile_lambda_theta(*tiny().harness, fast_cfg());
  for (const auto& m : models) {
    EXPECT_TRUE(std::isfinite(m.lambda));
    EXPECT_TRUE(std::isfinite(m.theta));
    EXPECT_GT(m.lambda, 0.0);
    EXPECT_LT(m.lambda, 1e6);
  }
}

TEST(Profiler, NoInterceptModeForcesThetaZero) {
  ProfilerConfig cfg = fast_cfg();
  cfg.no_intercept = true;
  const LayerLinearModel m = profile_layer(*tiny().harness, 2, cfg);
  EXPECT_DOUBLE_EQ(m.theta, 0.0);
  EXPECT_GT(m.lambda, 0.0);
}

TEST(Profiler, DeterministicAcrossRuns) {
  const LayerLinearModel a = profile_layer(*tiny().harness, 1, fast_cfg());
  const LayerLinearModel b = profile_layer(*tiny().harness, 1, fast_cfg());
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.theta, b.theta);
}

TEST(Profiler, PointCountRespected) {
  ProfilerConfig cfg;
  cfg.points = 5;
  const LayerLinearModel m = profile_layer(*tiny().harness, 0, cfg);
  EXPECT_EQ(m.deltas.size(), 5u);
}

}  // namespace
}  // namespace mupod
