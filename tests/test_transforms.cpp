#include "nn/transforms.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/layers.hpp"
#include "stats/rng.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

// conv -> bn -> relu -> conv -> bn(shared conv) chain + a BN whose conv
// feeds two consumers (unfoldable).
Network make_bn_net() {
  Network net("bn_net");
  net.add_input("data", 2, 6, 6);
  Conv2DLayer::Config c;
  c.in_channels = 2;
  c.out_channels = 4;
  c.kernel_h = c.kernel_w = 3;
  c.pad = 1;
  net.add("conv1", std::make_unique<Conv2DLayer>(c), std::vector<std::string>{"data"});
  net.add("bn1", std::make_unique<BatchNormScaleLayer>(4), std::vector<std::string>{"conv1"});
  net.add("relu1", std::make_unique<ReLULayer>(), std::vector<std::string>{"bn1"});
  Conv2DLayer::Config c2 = c;
  c2.in_channels = 4;
  c2.has_bias = false;  // exercises the bias-materialization path
  net.add("conv2", std::make_unique<Conv2DLayer>(c2), std::vector<std::string>{"relu1"});
  net.add("bn2", std::make_unique<BatchNormScaleLayer>(4), std::vector<std::string>{"conv2"});
  // conv3 feeds BOTH bn3 and the eltwise: bn3 must NOT fold.
  Conv2DLayer::Config c3 = c;
  c3.in_channels = 4;
  net.add("conv3", std::make_unique<Conv2DLayer>(c3), std::vector<std::string>{"bn2"});
  net.add("bn3", std::make_unique<BatchNormScaleLayer>(4), std::vector<std::string>{"conv3"});
  net.add("add", std::make_unique<EltwiseAddLayer>(), std::vector<std::string>{"bn3", "conv3"});
  net.finalize();

  init_weights_he(net, 17);
  // Non-trivial BN parameters.
  Rng rng(5);
  for (const char* name : {"bn1", "bn2", "bn3"}) {
    auto& bn = static_cast<BatchNormScaleLayer&>(net.layer(net.node_id(name)));
    for (std::int64_t i = 0; i < bn.scale().numel(); ++i) {
      bn.scale()[i] = static_cast<float>(rng.uniform(0.5, 1.5));
      bn.shift()[i] = static_cast<float>(rng.uniform(-0.3, 0.3));
    }
  }
  return net;
}

Tensor probe_input(std::uint64_t seed) {
  Tensor x(Shape({3, 2, 6, 6}));
  Rng rng(seed);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  return x;
}

TEST(FoldBatchnorm, CountsFoldablePairs) {
  Network net = make_bn_net();
  EXPECT_EQ(count_foldable_batchnorm(net), 2);  // bn1, bn2; bn3 blocked
}

TEST(FoldBatchnorm, PreservesForwardExactly) {
  Network net = make_bn_net();
  Network folded = fold_batchnorm(net);
  const Tensor x = probe_input(3);
  EXPECT_LT(max_abs_diff(net.forward(x), folded.forward(x)), 1e-4);
}

TEST(FoldBatchnorm, RemovesFoldedNodes) {
  Network net = make_bn_net();
  Network folded = fold_batchnorm(net);
  EXPECT_EQ(folded.num_nodes(), net.num_nodes() - 2);
  EXPECT_EQ(folded.node_id("bn1"), -1);
  EXPECT_EQ(folded.node_id("bn2"), -1);
  EXPECT_NE(folded.node_id("bn3"), -1);  // unfoldable BN survives
  EXPECT_NE(folded.node_id("conv1"), -1);
}

TEST(FoldBatchnorm, MaterializesBiasWhenAbsent) {
  Network net = make_bn_net();
  Network folded = fold_batchnorm(net);
  const auto& conv2 = static_cast<const Conv2DLayer&>(folded.layer(folded.node_id("conv2")));
  ASSERT_NE(conv2.bias(), nullptr);
  // Folded bias equals bn2's shift (conv2 had no bias of its own).
  const auto& bn2 = static_cast<const BatchNormScaleLayer&>(net.layer(net.node_id("bn2")));
  for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ((*conv2.bias())[c], bn2.shift()[c]);
}

TEST(FoldBatchnorm, IdempotentOnBnFreeNets) {
  ZooOptions opts;
  opts.calibration_images = 0;
  opts.head_images = 0;
  ZooModel m = build_nin(opts);
  EXPECT_EQ(count_foldable_batchnorm(m.net), 0);
  Network folded = fold_batchnorm(m.net);
  EXPECT_EQ(folded.num_nodes(), m.net.num_nodes());
}

TEST(NetworkSummary, ListsEveryNodeAndTotals) {
  Network net = make_bn_net();
  const std::string s = network_summary(net);
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("bn3"), std::string::npos);
  EXPECT_NE(s.find("total params:"), std::string::npos);
  EXPECT_NE(s.find("total MACs/image:"), std::string::npos);
}

}  // namespace
}  // namespace mupod
