#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hpp"

namespace mupod {
namespace {

TEST(Histogram, BinPlacement) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(9), 1);
  EXPECT_EQ(h.count(5), 1);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge counts as overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, BinCenters) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), -0.75);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.75);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(-3.0, 3.0, 30);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.gaussian());
  double integral = 0.0;
  const double width = 6.0 / 30.0;
  for (int b = 0; b < h.bins(); ++b) integral += h.density(b) * width;
  EXPECT_NEAR(integral, 1.0, 0.01);  // tails excluded
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  const std::string s = h.render(20);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(KsStatistic, GaussianSampleIsClose) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian(0.0, 1.0));
  EXPECT_LT(ks_statistic_vs_normal(xs, 0.0, 1.0), 0.02);
}

TEST(KsStatistic, UniformSampleIsFar) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform(-1.0, 1.0));
  EXPECT_GT(ks_statistic_vs_normal(xs, 0.0, 1.0), 0.05);
}

TEST(KsStatistic, DegenerateInputs) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(ks_statistic_vs_normal(empty, 0.0, 1.0), 1.0);
  std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(ks_statistic_vs_normal(xs, 0.0, 0.0), 1.0);
}

}  // namespace
}  // namespace mupod
