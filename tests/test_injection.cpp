// Tests of the error-injection machinery that drives the paper's
// measurements (Sec. V-A) and the statistical facts it relies on
// (Secs. II-III): uniform noise moments, zero exclusion, linear error
// growth through a dot product.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "zoo/zoo.hpp"

namespace mupod {
namespace {

TEST(Injection, UniformNoiseMomentsAndBounds) {
  Tensor t(Shape({100000}), 1.0f);
  Tensor orig = t;
  apply_injection(t, InjectionSpec::uniform(0.25), /*seed=*/9, /*node=*/3);
  RunningStats rs;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const double e = static_cast<double>(t[i]) - orig[i];
    EXPECT_LE(std::fabs(e), 0.25 + 1e-7);
    rs.add(e);
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.005);
  // U[-d, d] stddev = 2d/sqrt(12).
  EXPECT_NEAR(rs.stddev(), 2.0 * 0.25 / std::sqrt(12.0), 0.005);
}

TEST(Injection, SkipZerosLeavesZerosExact) {
  Tensor t(Shape({1000}));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = (i % 2 == 0) ? 0.0f : 1.0f;
  apply_injection(t, InjectionSpec::uniform(0.5), 1, 1);
  for (std::int64_t i = 0; i < t.numel(); i += 2) EXPECT_FLOAT_EQ(t[i], 0.0f);
  // Non-zeros perturbed (statistically: almost all).
  int changed = 0;
  for (std::int64_t i = 1; i < t.numel(); i += 2)
    if (t[i] != 1.0f) ++changed;
  EXPECT_GT(changed, 450);
}

TEST(Injection, NoSkipPerturbsZeros) {
  Tensor t(Shape({1000}), 0.0f);
  apply_injection(t, InjectionSpec::uniform(0.5, /*skip_zeros=*/false), 1, 1);
  int changed = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    if (t[i] != 0.0f) ++changed;
  EXPECT_GT(changed, 900);
}

TEST(Injection, DeterministicPerSeedAndNode) {
  Tensor a(Shape({64}), 1.0f), b(Shape({64}), 1.0f), c(Shape({64}), 1.0f);
  apply_injection(a, InjectionSpec::uniform(0.1), 5, 2);
  apply_injection(b, InjectionSpec::uniform(0.1), 5, 2);
  apply_injection(c, InjectionSpec::uniform(0.1), 5, 3);  // different node
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
  EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(Injection, QuantizeKindAppliesFormat) {
  Tensor t(Shape({4}));
  t[0] = 0.3f; t[1] = 1.26f; t[2] = -0.76f; t[3] = 0.0f;
  FixedPointFormat fmt{.integer_bits = 3, .fraction_bits = 1};  // step 0.5
  apply_injection(t, InjectionSpec::quantize(fmt), 1, 1);
  EXPECT_FLOAT_EQ(t[0], 0.5f);
  EXPECT_FLOAT_EQ(t[1], 1.5f);
  EXPECT_FLOAT_EQ(t[2], -1.0f);
  EXPECT_FLOAT_EQ(t[3], 0.0f);
}

TEST(Injection, ZeroDeltaIsNoop) {
  Tensor t(Shape({16}), 2.0f);
  apply_injection(t, InjectionSpec::uniform(0.0), 1, 1);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 2.0f);
}

// ---------------------------------------------------------------------------
// The motivating single-layer error model (paper Sec. II / Eq. 3-4): for a
// dot product y = sum w_i x_i with input errors of s.d. sigma_x, the output
// error s.d. is sigma_x * sqrt(sum w_i^2) — i.e. proportional to sigma_x.

TEST(ErrorModel, DotProductErrorScalesLinearly) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 16;
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad = 1;

  Network net("single");
  net.add_input("data", 16, 8, 8);
  net.add("conv", std::make_unique<Conv2DLayer>(cfg), std::vector<std::string>{"data"});
  net.finalize();
  init_weights_he(net, 11);

  Tensor x(Shape({4, 16, 8, 8}));
  Rng rng(13);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  const Tensor y = net.forward(x);

  double prev_sigma = 0.0;
  const int conv = net.node_id("conv");
  for (double delta : {0.001, 0.002, 0.004, 0.008}) {
    std::unordered_map<int, InjectionSpec> inject;
    inject.emplace(conv, InjectionSpec::uniform(delta));
    ForwardOptions opts;
    opts.inject = &inject;
    opts.seed = 21;
    const Tensor yh = net.forward(x, opts);
    const double sigma = stddev_of_diff(yh, y);
    if (prev_sigma > 0.0) {
      // Doubling delta should roughly double the output error s.d.
      EXPECT_NEAR(sigma / prev_sigma, 2.0, 0.25);
    }
    prev_sigma = sigma;
  }
}

TEST(ErrorModel, OutputErrorMeanNearZero) {
  ZooModel m = build_tiny_cnn({.num_classes = 10, .seed = 3, .calibration_images = 8});
  Tensor x(Shape({8, 3, 16, 16}));
  Rng rng(17);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  const Tensor y = m.net.forward(x);

  std::unordered_map<int, InjectionSpec> inject;
  inject.emplace(m.analyzed[1], InjectionSpec::uniform(0.02));
  ForwardOptions opts;
  opts.inject = &inject;
  opts.seed = 5;
  const Tensor yh = m.net.forward(x, opts);
  const Tensor err = subtract(yh, y);
  EXPECT_LT(std::fabs(err.mean()), 3.0 * err.stddev() / std::sqrt(static_cast<double>(err.numel())) + 1e-3);
}

}  // namespace
}  // namespace mupod
