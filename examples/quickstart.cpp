// Quickstart: train a small CNN, then use the mupod pipeline to assign a
// fixed point format to every layer's input under a 1% relative accuracy
// constraint — the end-to-end flow of the paper in ~80 lines.
//
//   $ ./examples/quickstart [--metrics] [--trace FILE]
//
// Steps:
//   1. train a 3-layer CNN on the synthetic dataset (src/train);
//   2. export it to the inference engine (src/nn);
//   3. profile the per-layer error-propagation constants lambda/theta
//      (paper Eq. 5), binary-search the tolerable output error sigma_YL,
//      and solve the multi-objective bitwidth allocation (Eq. 8);
//   4. validate with real fixed point quantization.
//
// --metrics prints the observability counters (forwards per stage, solver
// iterations) after the run; --trace FILE writes a Chrome-trace JSON of
// the pipeline's stage spans (open in chrome://tracing or Perfetto).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace mupod;

  std::string trace_out;
  bool with_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      with_metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::printf("usage: quickstart [--metrics] [--trace FILE]\n");
      return 2;
    }
  }

  // --- 1. train a small CNN -------------------------------------------------
  DatasetConfig dc;
  dc.num_classes = 8;
  dc.channels = 3;
  dc.height = 16;
  dc.width = 16;
  dc.seed = 11;
  SyntheticImageDataset dataset(dc);

  TrainableNet trainer(3, 16, 16, /*seed=*/5);
  trainer.conv(8, 3, 1, 1).relu().maxpool().conv(16, 3, 1, 1).relu().maxpool().fc(8);
  std::printf("training a %d-parameter CNN on the synthetic dataset...\n",
              trainer.num_params());
  for (int epoch = 0; epoch < 12; ++epoch) {
    float loss = 0.0f;
    for (int b = 0; b < 10; ++b) {
      const Tensor batch = dataset.make_batch(b * 32, 32);
      loss = trainer.train_step(batch, dataset.labels(b * 32, 32), 0.05f);
    }
    std::printf("  epoch %2d loss %.3f\n", epoch + 1, loss);
  }
  const Tensor held_out = dataset.make_batch(100000, 256);
  std::printf("held-out accuracy: %.1f%%\n\n",
              trainer.accuracy(held_out, dataset.labels(100000, 256)) * 100);

  // --- 2. export to the inference engine ------------------------------------
  Network net = trainer.export_network("quickstart");
  const std::vector<int> analyzed = net.analyzable_nodes();  // convs + fc

  // --- 3. run the precision-optimization pipeline ---------------------------
  // Instrumentation covers the pipeline only: training above issues its
  // own forwards, which would drown the stage counters.
  if (with_metrics) set_metrics_enabled(true);
  if (!trace_out.empty()) set_tracing_enabled(true);

  PipelineConfig cfg;
  cfg.harness.profile_images = 32;
  cfg.harness.eval_images = 512;
  cfg.sigma.relative_accuracy_drop = 0.01;  // "at most 1% relative drop"
  cfg.search_weights = true;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(net, analyzed),   // minimize memory bandwidth
      objective_mac_energy(net, analyzed),   // minimize MAC energy
  };
  const PipelineResult result = run_pipeline(net, analyzed, dataset, objectives, cfg);

  std::printf("error budget sigma_YL = %.4f (binary search, %d evaluations)\n\n",
              result.sigma.sigma_yl, result.sigma.evaluations);
  for (const ObjectiveResult& obj : result.objectives) {
    std::printf("objective '%s':\n", obj.spec.name.c_str());
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      std::printf("  %-8s xi=%.3f  Delta=%.5f  format I.F = %s  (%d bits)\n",
                  net.node(analyzed[k]).name.c_str(), obj.alloc.xi[k], obj.alloc.deltas[k],
                  obj.alloc.formats[k].to_string().c_str(), obj.alloc.bits[k]);
    }
    std::printf("  validated accuracy with real quantization: %.2f%% (float = 100%%)\n",
                obj.validated_accuracy * 100);
    std::printf("  uniform weight bitwidth from Sec. V-E search: %d bits\n\n", obj.weight_bits);
  }
  std::printf("done — different objectives yield different per-layer bitwidths, both\n"
              "within the same accuracy budget (the paper's key capability).\n");

  if (with_metrics)
    std::printf("\nmetrics:\n%s", metrics().snapshot().render_text().c_str());
  if (!trace_out.empty()) {
    if (!write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace event(s) to %s (open in chrome://tracing)\n", tracer().size(),
                trace_out.c_str());
  }
  return 0;
}
