// serve_tool: stand up the online inference server on a zoo model and
// drive it with a small closed-loop client fleet — the deployment-shaped
// end of the pipeline. The integer path is installed the way a real
// deployment would: the PlanService answers a precision query (profile +
// sigma search + allocation, memoized as usual) and the resulting plan is
// hot-swapped into the running server with install_plan, without stalling
// the in-flight float traffic.
//
// Usage:
//   serve_tool [--net tiny|nin|alexnet|...] [--requests N] [--clients N]
//              [--batch N] [--wait-us N] [--deadline-us N] [--drop D]
//              [--float-only] [--metrics] [--trace FILE]
//
// Prints per-backend throughput, a latency table (p50/p90/p99 from the
// infer.latency.ms histogram via HistogramMetric::summary), the batch-size
// distribution, and the full ServerStats accounting. --metrics dumps the
// raw obs registry snapshot to stderr afterwards; --trace FILE writes a
// Chrome-trace JSON of the served requests (request-correlated async
// lanes + flow arrows, docs/method.md §15) for chrome://tracing /
// Perfetto.
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "infer/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/plan_service.hpp"
#include "zoo/zoo.hpp"

using namespace mupod;

namespace {

struct LoadReport {
  double wall_s = 0.0;
  int requests = 0;
  int correct = 0;
  HistogramSummary latency;
  HistogramSummary batch;
};

LoadReport drive(InferenceServer& server, const SyntheticImageDataset& data, const ZooModel& m,
                 InferBackend backend, int requests, int clients, std::int64_t deadline_us) {
  metrics().reset();
  std::vector<std::future<InferenceResult>> futs(static_cast<std::size_t>(requests));
  std::vector<std::thread> fleet;
  std::atomic<int> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      Tensor img(Shape({1, m.channels, m.height, m.width}));
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        data.render_image(i, img, 0);
        InferOptions opts;
        opts.backend = backend;
        opts.deadline_us = deadline_us;
        futs[static_cast<std::size_t>(i)] = server.submit(Tensor(img), opts);
        futs[static_cast<std::size_t>(i)].wait();
      }
    });
  }
  for (auto& t : fleet) t.join();

  LoadReport r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.requests = requests;
  for (int i = 0; i < requests; ++i) {
    const InferenceResult res = futs[static_cast<std::size_t>(i)].get();
    if (res.status == InferStatus::kOk && res.predicted == data.label_of(i)) ++r.correct;
  }
  const MetricsSnapshot snap = metrics().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "infer.latency.ms") r.latency = h.summary();
    if (h.name == "infer.batch.size") r.batch = h.summary();
  }
  return r;
}

void print_report(const char* label, const LoadReport& r) {
  std::printf("%-8s %7.1f req/s   top-1 %5.1f%%   batch mean %.2f\n", label,
              static_cast<double>(r.requests) / r.wall_s,
              100.0 * r.correct / static_cast<double>(r.requests), r.batch.mean);
  std::printf("         latency ms   p50 %7.2f   p90 %7.2f   p99 %7.2f   mean %7.2f\n",
              r.latency.p50, r.latency.p90, r.latency.p99, r.latency.mean);
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_name = "tiny";
  int requests = 128;
  int clients = 8;
  int batch = 8;
  std::int64_t wait_us = 2000;
  std::int64_t deadline_us = 0;
  double drop = 0.05;
  bool float_only = false;
  bool show_metrics = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--net" && i + 1 < argc) net_name = argv[++i];
    else if (arg == "--requests" && i + 1 < argc) requests = std::max(8, std::atoi(argv[++i]));
    else if (arg == "--clients" && i + 1 < argc) clients = std::max(1, std::atoi(argv[++i]));
    else if (arg == "--batch" && i + 1 < argc) batch = std::max(1, std::atoi(argv[++i]));
    else if (arg == "--wait-us" && i + 1 < argc) wait_us = std::atoll(argv[++i]);
    else if (arg == "--deadline-us" && i + 1 < argc) deadline_us = std::atoll(argv[++i]);
    else if (arg == "--drop" && i + 1 < argc) drop = std::atof(argv[++i]);
    else if (arg == "--float-only") float_only = true;
    else if (arg == "--metrics") show_metrics = true;
    else if (arg == "--trace" && i + 1 < argc) trace_out = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: serve_tool [--net NAME] [--requests N] [--clients N] [--batch N]\n"
                   "                  [--wait-us N] [--deadline-us N] [--drop D]\n"
                   "                  [--float-only] [--metrics] [--trace FILE]\n");
      return 2;
    }
  }

  set_metrics_enabled(true);
  if (!trace_out.empty()) set_tracing_enabled(true);

  ZooOptions zo;
  zo.num_classes = 10;
  const ZooModel model = build_model(net_name, zo);
  DatasetConfig dc;
  dc.num_classes = zo.num_classes;
  dc.channels = model.channels;
  dc.height = model.height;
  dc.width = model.width;
  SyntheticImageDataset dataset(dc);

  InferenceServerConfig cfg;
  cfg.batch.max_batch = batch;
  cfg.batch.max_wait_us = wait_us;
  InferenceServer server(cfg);
  server.register_model(net_name, model.net, model.analyzed);
  server.start();

  std::printf("serving %s: cap %d, window %lld us, %d clients, %d requests/backend\n\n",
              net_name.c_str(), batch, static_cast<long long>(wait_us), clients, requests);

  const LoadReport fp = drive(server, dataset, model, InferBackend::kFloat, requests, clients,
                              deadline_us);
  print_report("float", fp);

  if (!float_only) {
    // Deployment path: answer a precision query through the PlanService and
    // hot-swap the lowered plan into the running server.
    std::fprintf(stderr, "\n[plan] running the precision pipeline (drop budget %.3f)...\n", drop);
    PlanServiceConfig scfg;
    scfg.pipeline.harness.profile_images = 16;
    scfg.pipeline.harness.eval_images = 128;
    scfg.pipeline.profiler.points = 6;
    PlanService service(scfg);
    const PlanKey key = service.register_network(model.net, model.analyzed, dataset);
    PlanQuery q;
    q.accuracy_target = drop;
    q.objective = objective_input_bits(model.net, model.analyzed);
    const std::uint64_t version = server.install_plan(net_name, service, key, q);
    std::fprintf(stderr, "[plan] installed plan version %llu\n\n",
                 static_cast<unsigned long long>(version));

    const LoadReport qi = drive(server, dataset, model, InferBackend::kInteger, requests,
                                clients, deadline_us);
    print_report("integer", qi);
  }

  server.stop();
  const ServerStats s = server.stats();
  std::printf("\nstats: submitted %lld  ok %lld  rejected %lld  expired %lld  late %lld  "
              "errors %lld  batches %lld  swaps %lld\n",
              static_cast<long long>(s.submitted), static_cast<long long>(s.completed),
              static_cast<long long>(s.rejected_queue_full + s.rejected_deadline),
              static_cast<long long>(s.expired_in_queue),
              static_cast<long long>(s.deadline_exceeded), static_cast<long long>(s.errors),
              static_cast<long long>(s.batches), static_cast<long long>(s.plan_swaps));

  if (show_metrics) std::fputs(metrics().snapshot().render_text().c_str(), stderr);
  if (!trace_out.empty()) {
    if (!write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu events, %lld dropped)\n", trace_out.c_str(),
                 tracer().size(), static_cast<long long>(tracer().dropped()));
  }
  return 0;
}
