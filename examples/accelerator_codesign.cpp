// Hardware/precision co-design: the workflow the paper's conclusion
// envisions ("aid in the deployment of efficient deep neural network
// accelerators"). For one network, compare how the SAME per-layer
// bitwidth assignment performs on two accelerator styles (Stripes-like
// activation-serial vs Loom-like fully-serial), and how the optimization
// objective should change with the memory system (compute-bound vs
// bandwidth-starved configurations).
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hw/accelerator_sim.hpp"
#include "io/table.hpp"
#include "zoo/zoo.hpp"

int main() {
  using namespace mupod;

  ZooOptions zo;
  zo.num_classes = 20;
  ZooModel model = build_squeezenet(zo);
  DatasetConfig dc;
  dc.num_classes = zo.num_classes;
  dc.height = model.height;
  dc.width = model.width;
  SyntheticImageDataset dataset(dc);

  PipelineConfig cfg;
  cfg.harness.profile_images = 16;
  cfg.harness.eval_images = 192;
  cfg.harness.metric = AccuracyMetric::kLabels;
  cfg.profiler.points = 8;
  cfg.sigma.relative_accuracy_drop = 0.05;
  cfg.search_weights = true;

  std::printf("optimizing SqueezeNet precision (5%% budget), then sweeping hardware...\n\n");
  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(model.net, model.analyzed),
      objective_mac_energy(model.net, model.analyzed),
  };
  const PipelineResult r = run_pipeline(model.net, model.analyzed, dataset, objectives, cfg);
  const int weight_bits = r.objectives[1].weight_bits > 0 ? r.objectives[1].weight_bits : 10;

  TextTable t({"accelerator", "assignment", "cycles/img", "speedup", "energy (arb)",
               "bw-bound layers"});
  for (const AcceleratorConfig& accel :
       {AcceleratorConfig::stripes_like(), AcceleratorConfig::loom_like()}) {
    for (const auto& obj : r.objectives) {
      const auto sim = simulate_network(accel, model.net, model.analyzed, obj.alloc.bits,
                                        weight_bits);
      int bw = 0;
      for (const auto& l : sim.layers) bw += l.bandwidth_bound ? 1 : 0;
      t.add_row({accel.name, obj.spec.name, TextTable::fmt(sim.total_cycles, 0),
                 TextTable::fmt(sim.speedup_vs_baseline, 2) + "x",
                 TextTable::fmt(sim.total_energy / 1e6, 2),
                 std::to_string(bw) + "/" + std::to_string(sim.layers.size())});
    }
  }
  std::printf("%s\n", t.render_text().c_str());

  // A bandwidth-starved variant of the same accelerator: now the
  // bandwidth-optimized assignment should win cycles too.
  AcceleratorConfig starved = AcceleratorConfig::stripes_like();
  starved.name = "stripes_starved";
  starved.offchip_bits_per_cycle = 8.0;
  TextTable s({"assignment", "cycles/img (starved)", "bw-bound layers"});
  for (const auto& obj : r.objectives) {
    const auto sim =
        simulate_network(starved, model.net, model.analyzed, obj.alloc.bits, weight_bits);
    int bw = 0;
    for (const auto& l : sim.layers) bw += l.bandwidth_bound ? 1 : 0;
    s.add_row({obj.spec.name, TextTable::fmt(sim.total_cycles, 0),
               std::to_string(bw) + "/" + std::to_string(sim.layers.size())});
  }
  std::printf("%s\n", s.render_text().c_str());
  std::printf("takeaway: the right rho vector depends on the accelerator — exactly why the\n"
              "framework exposes the objective instead of hard-coding one (paper Sec. V-D).\n");
  return 0;
}
