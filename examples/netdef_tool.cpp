// netdef_tool: command-line precision optimizer for user-supplied network
// descriptions — the "open source precision optimization framework" of the
// paper's contribution list, decoupled from the built-in zoo.
//
// Usage:
//   netdef_tool <net.netdef> [--drop 0.01] [--objective input|mac|both]
//               [--weights file.bin] [--save-weights file.bin]
//               [--classes 100] [--eval 512] [--csv | --json]
//               [--report out.md] [--save-profile p.txt]
//
// --json emits the per-layer models and allocations machine-readable on
// stdout (same writer and field conventions as sweep_tool --json).
//
// With no arguments it runs a built-in demo network.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "io/json_writer.hpp"
#include "io/model_io.hpp"
#include "io/netdef.hpp"
#include "io/profile_io.hpp"
#include "io/report.hpp"
#include "io/table.hpp"
#include "nn/layers.hpp"
#include "zoo/zoo.hpp"

namespace {

constexpr const char* kDemoNet = R"(
name: demo
input: 3 24 24
layer conv1 type=conv in=data out=12 kernel=3 stride=1 pad=1
layer relu1 type=relu in=conv1
layer pool1 type=maxpool in=relu1 kernel=2 stride=2
layer conv2a type=conv in=pool1 out=8 kernel=1
layer relu2a type=relu in=conv2a
layer conv2b type=conv in=pool1 out=8 kernel=3 pad=1
layer relu2b type=relu in=conv2b
layer cat type=concat in=relu2a,relu2b
layer conv3 type=conv in=cat out=24 kernel=3 pad=1
layer relu3 type=relu in=conv3
layer gap type=avgpool in=relu3 global=1
layer fc type=fc in=gap out=100
)";

void usage() {
  std::printf(
      "usage: netdef_tool [net.netdef] [--drop D] [--objective input|mac|both]\n"
      "                   [--weights in.bin] [--save-weights out.bin]\n"
      "                   [--classes N] [--eval N] [--csv | --json]\n"
      "                   [--report out.md] [--save-profile p.txt]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mupod;

  std::string netdef_path;
  double drop = 0.01;
  std::string objective = "both";
  std::string weights_in, weights_out, report_out, profile_out;
  int classes = 100;
  int eval_images = 512;
  bool csv = false, json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--drop") drop = std::atof(next());
    else if (arg == "--objective") objective = next();
    else if (arg == "--weights") weights_in = next();
    else if (arg == "--save-weights") weights_out = next();
    else if (arg == "--classes") classes = std::atoi(next());
    else if (arg == "--eval") eval_images = std::atoi(next());
    else if (arg == "--csv") csv = true;
    else if (arg == "--json") json = true;
    else if (arg == "--report") report_out = next();
    else if (arg == "--save-profile") profile_out = next();
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else if (!arg.empty() && arg[0] == '-') { usage(); return 2; }
    else netdef_path = arg;
  }

  Network net = [&] {
    try {
      if (netdef_path.empty()) {
        std::fprintf(stderr, "no netdef given; running the built-in demo network\n");
        return parse_netdef(kDemoNet);
      }
      return load_netdef_file(netdef_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  const auto& input = static_cast<const InputLayer&>(net.layer(net.input_node()));
  DatasetConfig dc;
  dc.num_classes = classes;
  dc.channels = input.channels();
  dc.height = input.height();
  dc.width = input.width();
  SyntheticImageDataset dataset(dc);

  if (!weights_in.empty()) {
    try {
      load_weights(net, weights_in);
      std::fprintf(stderr, "loaded weights from %s\n", weights_in.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading weights: %s\n", e.what());
      return 1;
    }
  } else {
    init_weights_he(net, 1234);
    calibrate_activations(net, dataset.make_batch(0, 16));
    center_output_logits(net, dataset.make_batch(0, 16));
    std::fprintf(stderr, "no weights given; He-initialized and calibrated\n");
  }
  if (!weights_out.empty()) {
    errno = 0;
    if (!save_weights(net, weights_out)) {
      std::fprintf(stderr, "error: cannot write weights '%s': %s\n", weights_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(stderr, "saved weights to %s\n", weights_out.c_str());
  }

  const std::vector<int> analyzed = net.analyzable_nodes();
  std::fprintf(stderr, "network '%s': %d nodes, %zu analyzable layers\n", net.name().c_str(),
               net.num_nodes(), analyzed.size());

  std::vector<ObjectiveSpec> objectives;
  if (objective == "input" || objective == "both")
    objectives.push_back(objective_input_bits(net, analyzed));
  if (objective == "mac" || objective == "both")
    objectives.push_back(objective_mac_energy(net, analyzed));
  if (objectives.empty()) {
    std::fprintf(stderr, "unknown objective '%s'\n", objective.c_str());
    return 2;
  }

  PipelineConfig cfg;
  cfg.harness.eval_images = eval_images;
  cfg.sigma.relative_accuracy_drop = drop;

  const PipelineResult r = run_pipeline(net, analyzed, dataset, objectives, cfg);
  std::fprintf(stderr, "sigma_YL = %.4f (accuracy target: %.1f%% relative)\n\n", r.sigma.sigma_yl,
               (1.0 - drop) * 100);

  if (json) {
    JsonWriter j;
    j.begin_object();
    j.kv("network", net.name());
    j.kv("net_hash", network_content_hash(net));
    j.kv("accuracy_target", drop);
    j.kv("sigma_yl", r.sigma.sigma_yl);
    j.key("layers").begin_array();
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      j.begin_object();
      j.kv("name", net.node(analyzed[k]).name);
      j.kv("range", r.ranges[k]);
      j.kv("lambda", r.models[k].lambda);
      j.kv("theta", r.models[k].theta);
      j.end_object();
    }
    j.end_array();
    j.key("objectives").begin_array();
    for (const auto& obj : r.objectives) {
      j.begin_object();
      j.kv("name", obj.spec.name);
      j.kv("validated_accuracy", obj.validated_accuracy);
      j.kv("refinements", obj.refinements);
      j.key("bits").begin_array();
      for (int b : obj.alloc.bits) j.value(b);
      j.end_array();
      j.key("formats").begin_array();
      for (const auto& f : obj.alloc.formats) j.value(f.to_string());
      j.end_array();
      j.end_object();
    }
    j.end_array();
    j.kv("diagnostics", static_cast<int>(r.diagnostics.size()));
    j.end_object();
    std::printf("%s\n", j.str().c_str());
  } else {
    std::vector<std::string> header = {"layer", "max|X|", "lambda", "theta"};
    for (const auto& obj : r.objectives) header.push_back("bits:" + obj.spec.name);
    TextTable t(header);
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      std::vector<std::string> row = {net.node(analyzed[k]).name, TextTable::fmt(r.ranges[k], 2),
                                      TextTable::fmt(r.models[k].lambda, 3),
                                      TextTable::fmt(r.models[k].theta, 4)};
      for (const auto& obj : r.objectives)
        row.push_back(obj.alloc.formats[k].to_string() + " (" + std::to_string(obj.alloc.bits[k]) +
                      ")");
      t.add_row(row);
    }
    std::printf("%s\n", csv ? t.render_csv().c_str() : t.render_text().c_str());
    for (const auto& obj : r.objectives) {
      std::printf("objective %-12s validated accuracy: %.2f%%\n", obj.spec.name.c_str(),
                  obj.validated_accuracy * 100);
    }
  }
  if (!r.diagnostics.empty()) {
    std::fprintf(stderr, "%d diagnostic(s) (%d error(s), %d warning(s)):\n",
                 static_cast<int>(r.diagnostics.size()),
                 r.diagnostics.count(DiagSeverity::kError),
                 r.diagnostics.count(DiagSeverity::kWarning));
    for (const Diagnostic& d : r.diagnostics.entries())
      std::fprintf(stderr, "  %s\n", format_diagnostic(d).c_str());
  }

  if (!profile_out.empty()) {
    errno = 0;
    if (!save_profile(profile_out, make_profile_bundle(net, analyzed, r))) {
      std::fprintf(stderr, "error: cannot write profile '%s': %s\n", profile_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(stderr, "saved profile to %s\n", profile_out.c_str());
  }

  if (!report_out.empty()) {
    ReportOptions ropts;
    ropts.title = "precision report — " + net.name();
    errno = 0;
    if (!write_report(report_out, net, analyzed, r, ropts)) {
      std::fprintf(stderr, "error: cannot write report '%s': %s\n", report_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(stderr, "wrote report to %s\n", report_out.c_str());
  }
  return 0;
}
