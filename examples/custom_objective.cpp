// "Our method can be used to optimize for different criteria" (paper
// Sec. I / Conclusion): the objective weights rho_K are fully
// user-definable. This example invents a realistic deployment constraint
// the paper does not evaluate — a two-tier edge accelerator where early
// layers run from on-chip SRAM (cheap reads) and late layers spill to
// DRAM (expensive reads) — and optimizes bitwidths for total memory
// energy under that cost model, comparing against the plain bandwidth
// objective.
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "io/table.hpp"
#include "zoo/zoo.hpp"

int main() {
  using namespace mupod;

  ZooOptions zo;
  zo.num_classes = 20;  // paper-like top-1 accuracy band for the zoo heads
  ZooModel model = build_squeezenet(zo);

  DatasetConfig dc;
  dc.num_classes = zo.num_classes;
  dc.height = model.height;
  dc.width = model.width;
  SyntheticImageDataset dataset(dc);

  const std::size_t L = model.analyzed.size();

  // Plain bandwidth objective: rho = #input elements.
  ObjectiveSpec bandwidth = objective_input_bits(model.net, model.analyzed);

  // Custom tiered-memory objective: reads from DRAM cost ~20x an SRAM
  // read per bit (typical 45nm numbers). Assume activations of the first
  // half of the network fit in SRAM; the rest stream from DRAM.
  ObjectiveSpec tiered;
  tiered.name = "tiered_memory_energy";
  tiered.rho = bandwidth.rho;
  for (std::size_t k = L / 2; k < L; ++k) tiered.rho[k] *= 20;

  PipelineConfig cfg;
  cfg.harness.profile_images = 32;
  cfg.harness.eval_images = 512;
  cfg.harness.metric = AccuracyMetric::kLabels;  // accuracy vs labels, as the paper measures
  cfg.sigma.relative_accuracy_drop = 0.05;

  std::printf("SqueezeNet (26 layers), 5%% budget, bandwidth vs tiered-memory objective\n\n");
  const PipelineResult r =
      run_pipeline(model.net, model.analyzed, dataset, {bandwidth, tiered}, cfg);

  TextTable t({"layer", "tier", "bits(bandwidth)", "bits(tiered)"});
  for (std::size_t k = 0; k < L; ++k) {
    t.add_row({model.net.node(model.analyzed[k]).name, k < L / 2 ? "SRAM" : "DRAM",
               std::to_string(r.objectives[0].alloc.bits[k]),
               std::to_string(r.objectives[1].alloc.bits[k])});
  }
  std::printf("%s\n", t.render_text().c_str());

  const auto cost = [&](const ObjectiveSpec& spec, const std::vector<int>& bits) {
    double c = 0;
    for (std::size_t k = 0; k < L; ++k) c += static_cast<double>(spec.rho[k]) * bits[k];
    return c;
  };
  const double plain = cost(tiered, r.objectives[0].alloc.bits);
  const double opt = cost(tiered, r.objectives[1].alloc.bits);
  std::printf("tiered-memory energy: bandwidth-opt = %.3g, tiered-opt = %.3g  (%.1f%% saving)\n",
              plain, opt, (plain - opt) / plain * 100);
  std::printf("validated accuracy: %.1f%% / %.1f%% of float (%.1f%%); budget: >= 95%% relative\n",
              r.objectives[0].validated_accuracy / r.float_accuracy * 100,
              r.objectives[1].validated_accuracy / r.float_accuracy * 100,
              r.float_accuracy * 100);
  std::printf("\nthe tiered objective pushes precision out of the DRAM-resident layers —\n"
              "a criterion the original authors never hard-coded, expressed purely as rho.\n");
  return 0;
}
