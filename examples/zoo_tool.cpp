// zoo_tool: inspect and optimize the built-in model zoo from the command
// line.
//
//   zoo_tool list
//   zoo_tool summary <model>
//   zoo_tool netdef <model>              # dump the topology as netdef text
//   zoo_tool optimize <model> [--drop D] [--classes N] [--eval N]
//                            [--report out.md] [--save-profile p.txt]
//   zoo_tool reoptimize <profile.txt> [--objective input|mac]
//       # re-runs ONLY the optimization step from a saved profile — the
//       # paper's "changing the user constraints only requires re-running
//       # the last optimization step" (Sec. VI-A), across processes
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "io/netdef.hpp"
#include "io/profile_io.hpp"
#include "io/report.hpp"
#include "io/table.hpp"
#include "nn/transforms.hpp"
#include "zoo/zoo.hpp"

namespace {

void usage() {
  std::printf("usage: zoo_tool list\n"
              "       zoo_tool summary <model>\n"
              "       zoo_tool netdef <model>\n"
              "       zoo_tool optimize <model> [--drop D] [--classes N] [--eval N]\n"
              "                                 [--report out.md] [--save-profile p.txt]\n"
              "       zoo_tool reoptimize <profile.txt> [--objective input|mac]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mupod;
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];

  if (cmd == "list") {
    for (const std::string& name : zoo_model_names()) {
      ZooOptions opts;
      opts.calibration_images = 0;
      opts.head_images = 0;
      const ZooModel m = build_model(name, opts);
      std::printf("%-11s %4zu analyzed layers  %10lld MACs/img  input %dx%dx%d\n", name.c_str(),
                  m.analyzed.size(), static_cast<long long>(m.net.total_macs()), m.channels,
                  m.height, m.width);
    }
    return 0;
  }

  if (argc < 3) {
    usage();
    return 2;
  }
  const std::string model_name = argv[2];

  if (cmd == "summary" || cmd == "netdef") {
    ZooOptions opts;
    opts.calibration_images = 0;
    opts.head_images = 0;
    ZooModel m = [&] {
      try {
        return build_model(model_name, opts);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
      }
    }();
    if (cmd == "summary") {
      std::printf("%s", network_summary(m.net).c_str());
    } else {
      std::printf("%s", to_netdef(m.net).c_str());
    }
    return 0;
  }

  if (cmd == "reoptimize") {
    std::string objective = "mac";
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--objective" && i + 1 < argc) objective = argv[++i];
    }
    ProfileBundle bundle = [&] {
      try {
        return load_profile(model_name);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
      }
    }();
    ObjectiveSpec spec;
    spec.name = objective == "input" ? "input_bits" : "mac_energy";
    spec.rho = objective == "input" ? bundle.input_elems : bundle.macs;
    const BitwidthAllocation a =
        allocate_bitwidths(bundle.models, bundle.sigma_calibrated, bundle.ranges, spec);
    std::printf("re-optimized '%s' (%zu layers) from saved profile, sigma = %.4f\n",
                bundle.network.c_str(), bundle.models.size(), bundle.sigma_calibrated);
    TextTable t({"layer", "format I.F", "bits"});
    for (std::size_t k = 0; k < bundle.models.size(); ++k) {
      t.add_row({bundle.layer_names[k], a.formats[k].to_string(), std::to_string(a.bits[k])});
    }
    std::printf("%s", t.render_text().c_str());
    return 0;
  }

  if (cmd != "optimize") {
    usage();
    return 2;
  }

  double drop = 0.01;
  int classes = 20;
  int eval_images = 192;
  std::string report_out, profile_out;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--drop") drop = std::atof(next());
    else if (arg == "--classes") classes = std::atoi(next());
    else if (arg == "--eval") eval_images = std::atoi(next());
    else if (arg == "--report") report_out = next();
    else if (arg == "--save-profile") profile_out = next();
    else {
      usage();
      return 2;
    }
  }

  ZooOptions opts;
  opts.num_classes = classes;
  ZooModel m = [&] {
    try {
      return build_model(model_name, opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  DatasetConfig dc;
  dc.num_classes = classes;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  SyntheticImageDataset dataset(dc);

  PipelineConfig cfg;
  cfg.harness.eval_images = eval_images;
  cfg.harness.metric = AccuracyMetric::kLabels;
  cfg.sigma.relative_accuracy_drop = drop;
  cfg.search_weights = true;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(m.net, m.analyzed),
      objective_mac_energy(m.net, m.analyzed),
  };
  std::fprintf(stderr, "optimizing %s (%zu layers) at %.1f%% relative drop...\n",
               model_name.c_str(), m.analyzed.size(), drop * 100);
  const PipelineResult r = run_pipeline(m.net, m.analyzed, dataset, objectives, cfg);

  std::printf("sigma_YL = %.4f (calibrated %.4f); float accuracy on eval set\n",
              r.sigma.sigma_yl, r.sigma_calibrated);
  TextTable t({"layer", "bits:input_bits", "bits:mac_energy"});
  for (std::size_t k = 0; k < m.analyzed.size(); ++k) {
    t.add_row({m.net.node(m.analyzed[k]).name,
               r.objectives[0].alloc.formats[k].to_string(),
               r.objectives[1].alloc.formats[k].to_string()});
  }
  std::printf("%s", t.render_text().c_str());
  for (const auto& obj : r.objectives) {
    std::printf("%s: validated accuracy %.2f%%, weight bits %d\n", obj.spec.name.c_str(),
                obj.validated_accuracy * 100, obj.weight_bits);
  }
  if (!r.diagnostics.empty()) {
    std::fprintf(stderr, "%d diagnostic(s) (%d error(s), %d warning(s)):\n",
                 static_cast<int>(r.diagnostics.size()),
                 r.diagnostics.count(DiagSeverity::kError),
                 r.diagnostics.count(DiagSeverity::kWarning));
    for (const Diagnostic& d : r.diagnostics.entries())
      std::fprintf(stderr, "  %s\n", format_diagnostic(d).c_str());
  }

  if (!profile_out.empty()) {
    errno = 0;
    if (!save_profile(profile_out, make_profile_bundle(m.net, m.analyzed, r))) {
      std::fprintf(stderr, "error: cannot write profile '%s': %s\n", profile_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(stderr, "wrote profile to %s (reoptimize with: zoo_tool reoptimize %s)\n",
                 profile_out.c_str(), profile_out.c_str());
  }

  if (!report_out.empty()) {
    ReportOptions ropts;
    ropts.title = "precision report — " + model_name;
    errno = 0;
    if (!write_report(report_out, m.net, m.analyzed, r, ropts)) {
      std::fprintf(stderr, "error: cannot write report '%s': %s\n", report_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", report_out.c_str());
  }
  return 0;
}
