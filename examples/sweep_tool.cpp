// sweep_tool: the multi-objective tradeoff explorer the paper's framing
// implies — one profiling pass, a whole accuracy x objective grid of
// precision plans, and the Pareto front over (accuracy loss, hardware
// cost) extracted from the results.
//
// Usage:
//   sweep_tool [--net tiny|alexnet|nin|...] [--drops 0.005,0.01,0.02,0.05]
//              [--objectives input,mac,equal] [--solver sqp|pg|closed]
//              [--serial] [--csv | --json] [--save-plans plans.txt]
//              [--classes N] [--eval N] [--validate]
//              [--metrics] [--trace FILE]
//
// Cells marked 'yes' in the pareto column are on the accuracy-cost front
// of their objective group; dominated cells are the configurations no
// deployment should pick. Per-cell diagnostics go to stderr; --json emits
// the whole sweep machine-readable on stdout (same writer as
// netdef_tool --json). --metrics enables the obs registry and prints the
// snapshot to stderr (or embeds it under "metrics" with --json);
// --trace FILE writes a Chrome-trace JSON (chrome://tracing / Perfetto).
//
// --validate executes every cell's plan on the INTEGER backend
// (quant/qexec) and reports actual vs predicted accuracy drop per cell;
// a cell conforms when its integer-executed drop stays within the
// accuracy budget + the committed tolerance (kValidationTolerance).
// Violations are flagged in the output (and exit status 3) so a CI lane
// can gate on plan conformance.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/json_writer.hpp"
#include "io/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/sweep.hpp"
#include "tensor/parallel.hpp"
#include "zoo/zoo.hpp"

namespace {

void usage() {
  std::printf(
      "usage: sweep_tool [--net NAME] [--drops D1,D2,...] [--objectives input,mac,equal]\n"
      "                  [--solver sqp|pg|closed] [--serial] [--csv | --json]\n"
      "                  [--save-plans FILE] [--classes N] [--eval N] [--validate]\n"
      "                  [--metrics] [--trace FILE]\n");
}

std::vector<double> parse_doubles(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mupod;

  std::string net_name = "tiny";
  std::string drops_arg = "0.005,0.01,0.02,0.05";
  std::string objectives_arg = "input,mac";
  std::string solver_arg = "sqp";
  std::string plans_out;
  std::string trace_out;
  int classes = 10;
  int eval_images = 256;
  bool serial = false, csv = false, json = false, with_metrics = false, validate = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--net") net_name = next();
    else if (arg == "--drops") drops_arg = next();
    else if (arg == "--objectives") objectives_arg = next();
    else if (arg == "--solver") solver_arg = next();
    else if (arg == "--serial") serial = true;
    else if (arg == "--csv") csv = true;
    else if (arg == "--json") json = true;
    else if (arg == "--save-plans") plans_out = next();
    else if (arg == "--classes") classes = std::atoi(next());
    else if (arg == "--eval") eval_images = std::atoi(next());
    else if (arg == "--validate") validate = true;
    else if (arg == "--metrics") with_metrics = true;
    else if (arg == "--trace") trace_out = next();
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else { usage(); return 2; }
  }

  XiSolver solver = XiSolver::kSqp;
  if (solver_arg == "sqp") solver = XiSolver::kSqp;
  else if (solver_arg == "pg") solver = XiSolver::kProjectedGradient;
  else if (solver_arg == "closed") solver = XiSolver::kClosedForm;
  else { std::fprintf(stderr, "unknown solver '%s'\n", solver_arg.c_str()); return 2; }

  ZooOptions zopts;
  zopts.num_classes = classes;
  ZooModel m = [&] {
    try {
      return build_model(net_name, zopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  DatasetConfig dc;
  dc.num_classes = classes;
  dc.channels = m.channels;
  dc.height = m.height;
  dc.width = m.width;
  SyntheticImageDataset dataset(dc);

  SweepSpec spec;
  spec.accuracy_targets = parse_doubles(drops_arg);
  spec.solver = solver;
  spec.concurrent = !serial;
  for (const std::string& o : split_csv(objectives_arg)) {
    if (o == "input") spec.objectives.push_back(objective_input_bits(m.net, m.analyzed));
    else if (o == "mac") spec.objectives.push_back(objective_mac_energy(m.net, m.analyzed));
    else if (o == "equal") {
      // Uniform rho: every layer's bits weighted equally — effectively
      // minimizing the summed bitwidth. A third standard objective for
      // 3-way sweeps.
      ObjectiveSpec s;
      s.name = "equal";
      s.rho.assign(m.analyzed.size(), 1);
      spec.objectives.push_back(std::move(s));
    } else {
      std::fprintf(stderr, "unknown objective '%s' (want input, mac, or equal)\n", o.c_str());
      return 2;
    }
  }
  if (spec.accuracy_targets.empty() || spec.objectives.empty()) {
    usage();
    return 2;
  }

  // Enable instrumentation AFTER the zoo model is built so the counters
  // describe the sweep, not the head-training forwards.
  if (with_metrics) mupod::set_metrics_enabled(true);
  if (!trace_out.empty()) mupod::set_tracing_enabled(true);

  PlanServiceConfig scfg;
  scfg.pipeline.harness.eval_images = eval_images;
  PlanService service(scfg);
  const PlanKey key = service.register_network(m.net, m.analyzed, dataset);

  std::fprintf(stderr,
               "sweeping %s: %zu accuracy target(s) x %zu objective(s), %d pool worker(s)%s\n",
               net_name.c_str(), spec.accuracy_targets.size(), spec.objectives.size(),
               parallel_worker_count(), serial ? " (serial tails)" : "");

  SweepResult sweep = [&] {
    try {
      return run_sweep(service, key, spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();
  const CacheStats stats = service.stats();

  // Conformance pass: run every cell's plan through the integer execution
  // backend on the service's own harness. validations[i] pairs with
  // sweep.cells[i]; plan() inside validate_plan replays from the memo, so
  // the extra cost is exactly one integer-executed eval pass per cell.
  std::vector<PlanValidation> validations;
  int violations = 0;
  if (validate) {
    validations.reserve(sweep.cells.size());
    for (const SweepCell& cell : sweep.cells) {
      try {
        validations.push_back(service.validate_plan(key, cell.result.query));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: validation failed: %s\n", e.what());
        std::exit(1);
      }
      if (!validations.back().within_budget) ++violations;
    }
  }

  // Per-cell diagnostics (the existing DiagnosticSink, per allocation
  // tail) plus the shared profile-stage diagnostics, all on stderr.
  const DiagnosticSink& prof_diag = service.profile_diagnostics(key);
  if (!prof_diag.empty()) {
    std::fprintf(stderr, "profile stage: %d diagnostic(s):\n", static_cast<int>(prof_diag.size()));
    for (const Diagnostic& d : prof_diag.entries())
      std::fprintf(stderr, "  %s\n", format_diagnostic(d).c_str());
  }
  for (const SweepCell& cell : sweep.cells) {
    if (cell.result.diagnostics.empty()) continue;
    std::fprintf(stderr, "cell drop=%.4f objective=%s: %d diagnostic(s):\n",
                 cell.result.query.accuracy_target, cell.result.query.objective.name.c_str(),
                 static_cast<int>(cell.result.diagnostics.size()));
    for (const Diagnostic& d : cell.result.diagnostics.entries())
      std::fprintf(stderr, "  %s\n", format_diagnostic(d).c_str());
  }

  if (json) {
    JsonWriter j;
    j.begin_object();
    j.kv("network", net_name);
    j.kv("net_hash", key.net_hash);
    j.kv("config_digest", key.config_digest);
    j.kv("workers", sweep.workers);
    j.kv("wall_ms", sweep.wall_ms);
    j.kv("profile_warm_ms", sweep.profile_warm_ms);
    j.kv("sigma_warm_ms", sweep.sigma_warm_ms);
    j.kv("tails_ms", sweep.tails_ms);
    j.key("stats").begin_object();
    j.kv("profile_misses", stats.profile_misses).kv("profile_hits", stats.profile_hits);
    j.kv("sigma_misses", stats.sigma_misses).kv("sigma_hits", stats.sigma_hits);
    j.kv("plan_misses", stats.plan_misses).kv("plan_hits", stats.plan_hits);
    j.kv("profile_waits", stats.profile_waits).kv("sigma_waits", stats.sigma_waits);
    j.kv("plan_evictions", stats.plan_evictions);
    j.kv("profile_loads", stats.profile_loads)
        .kv("profile_load_rejected", stats.profile_load_rejected);
    j.end_object();
    j.key("cells").begin_array();
    for (const SweepCell& cell : sweep.cells) {
      const PlanResult& r = cell.result;
      j.begin_object();
      j.kv("accuracy_target", r.query.accuracy_target);
      j.kv("objective", r.query.objective.name);
      j.kv("solver", xi_solver_name(r.query.solver));
      j.kv("pareto", cell.pareto);
      // Cache disposition of this cell's answer: "memoized" replayed from
      // the plan memo, "warm" recomputed its tail on cached profile+sigma,
      // "cold" forced at least one stage computation.
      j.kv("cache", r.plan_cached ? "memoized"
                                  : (r.profile_cached && r.sigma_cached ? "warm" : "cold"));
      j.kv("accuracy_loss", r.accuracy_loss);
      j.kv("validated_accuracy", r.validated_accuracy);
      j.kv("objective_cost", r.objective_cost);
      j.kv("effective_bits", r.effective_bits);
      j.kv("energy", r.energy);
      j.kv("sim_cycles", r.sim_cycles);
      j.kv("sim_speedup", r.sim_speedup);
      j.kv("sigma_used", r.sigma_used);
      j.kv("refinements", r.refinements);
      j.kv("diagnostics", static_cast<int>(r.diagnostics.size()));
      if (validate) {
        const PlanValidation& v = validations[static_cast<std::size_t>(&cell - sweep.cells.data())];
        j.key("validation").begin_object();
        j.kv("weight_bits", v.weight_bits);
        j.kv("tolerance", v.tolerance);
        j.kv("float_accuracy", v.float_accuracy);
        j.kv("emulated_accuracy", v.emulated_accuracy);
        j.kv("integer_accuracy", v.integer_accuracy);
        j.kv("predicted_drop", v.predicted_drop);
        j.kv("emulated_drop", v.emulated_drop);
        j.kv("integer_drop", v.integer_drop);
        j.kv("within_budget", v.within_budget);
        j.kv("act_saturated", v.act_saturated);
        j.kv("lowered_layers", v.lowered_layers);
        j.end_object();
      }
      j.key("bits").begin_array();
      for (int b : r.alloc.bits) j.value(b);
      j.end_array();
      j.key("formats").begin_array();
      for (const FixedPointFormat& f : r.alloc.formats) j.value(f.to_string());
      j.end_array();
      j.end_object();
    }
    j.end_array();
    if (with_metrics) {
      j.key("metrics");
      metrics().snapshot().write_json(j);
    }
    j.end_object();
    std::printf("%s\n", j.str().c_str());
  } else {
    TextTable t({"drop%", "objective", "eff_bits", "cost", "energy", "cycles", "speedup",
                 "loss%", "sigma", "ref", "pareto"});
    for (const SweepCell& cell : sweep.cells) {
      const PlanResult& r = cell.result;
      t.add_row({TextTable::fmt(r.query.accuracy_target * 100, 2), r.query.objective.name,
                 TextTable::fmt(r.effective_bits, 2), TextTable::fmt_int(r.objective_cost),
                 TextTable::fmt(r.energy, 0), TextTable::fmt(r.sim_cycles, 0),
                 TextTable::fmt(r.sim_speedup, 2), TextTable::fmt(r.accuracy_loss * 100, 2),
                 TextTable::fmt(r.sigma_used, 4), TextTable::fmt_int(r.refinements),
                 cell.pareto ? "yes" : "dominated"});
    }
    std::printf("%s", csv ? t.render_csv().c_str() : t.render_text().c_str());
    if (validate) {
      TextTable vt({"drop%", "objective", "predicted%", "emulated%", "integer%", "budget+tol%",
                    "act_sat", "conforms"});
      for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        const PlanResult& r = sweep.cells[i].result;
        const PlanValidation& v = validations[i];
        vt.add_row({TextTable::fmt(r.query.accuracy_target * 100, 2), r.query.objective.name,
                    TextTable::fmt(v.predicted_drop * 100, 2),
                    TextTable::fmt(v.emulated_drop * 100, 2),
                    TextTable::fmt(v.integer_drop * 100, 2),
                    TextTable::fmt((r.query.accuracy_target + v.tolerance) * 100, 2),
                    TextTable::fmt_int(v.act_saturated), v.within_budget ? "yes" : "VIOLATION"});
      }
      std::printf("\nplan conformance (integer-executed, %d-bit weights, tolerance %.2f%%):\n%s",
                  validations.empty() ? 0 : validations.front().weight_bits,
                  (validations.empty() ? 0.0 : validations.front().tolerance) * 100,
                  csv ? vt.render_csv().c_str() : vt.render_text().c_str());
    }
    std::printf(
        "\n1 profile + %lld sigma search(es) + %lld allocation tail(s) "
        "(%lld plan-cache hit(s)); %lld forwards total; %.0f ms "
        "(profile %.0f, sigma %.0f, tails %.0f) on %d worker(s)\n",
        static_cast<long long>(stats.sigma_misses), static_cast<long long>(stats.plan_misses),
        static_cast<long long>(stats.plan_hits),
        static_cast<long long>(service.forward_count(key)), sweep.wall_ms,
        sweep.profile_warm_ms, sweep.sigma_warm_ms, sweep.tails_ms, sweep.workers);
  }

  if (with_metrics && !json)
    std::fprintf(stderr, "metrics:\n%s", metrics().snapshot().render_text().c_str());
  if (!trace_out.empty()) {
    if (!write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace event(s) to %s (open in chrome://tracing)\n",
                 tracer().size(), trace_out.c_str());
  }

  if (!plans_out.empty()) {
    errno = 0;
    if (!save_plan_store(plans_out, service.export_plans())) {
      std::fprintf(stderr, "error: cannot write plan store '%s': %s\n", plans_out.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(stderr, "saved plan store to %s\n", plans_out.c_str());
  }
  if (validate && violations > 0) {
    std::fprintf(stderr, "plan conformance: %d of %zu cell(s) exceeded budget + tolerance\n",
                 violations, validations.size());
    return 3;
  }
  return 0;
}
