// The paper's motivating scenario (Sec. V-D): the same AlexNet, deployed
// under two different hardware constraints, wants two different bitwidth
// assignments. This example optimizes for memory bandwidth and for MAC
// energy, then cross-evaluates each assignment under both cost models to
// show the trade-off surface a hardware designer navigates.
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hw/energy_model.hpp"
#include "io/table.hpp"
#include "zoo/zoo.hpp"

int main() {
  using namespace mupod;

  ZooOptions zo;
  zo.num_classes = 20;  // paper-like top-1 accuracy band for the zoo heads
  ZooModel model = build_alexnet(zo);

  DatasetConfig dc;
  dc.num_classes = zo.num_classes;
  dc.height = model.height;
  dc.width = model.width;
  SyntheticImageDataset dataset(dc);

  PipelineConfig cfg;
  cfg.harness.profile_images = 32;
  cfg.harness.eval_images = 512;
  cfg.harness.metric = AccuracyMetric::kLabels;  // accuracy vs labels, as the paper measures
  cfg.sigma.relative_accuracy_drop = 0.01;

  const std::vector<ObjectiveSpec> objectives = {
      objective_input_bits(model.net, model.analyzed),
      objective_mac_energy(model.net, model.analyzed),
  };
  std::printf("optimizing AlexNet (5 analyzed conv layers) for two objectives...\n\n");
  const PipelineResult r =
      run_pipeline(model.net, model.analyzed, dataset, objectives, cfg);

  TextTable t({"layer", "max|X|", "lambda", "bits(BW-opt)", "bits(E-opt)"});
  for (std::size_t k = 0; k < model.analyzed.size(); ++k) {
    t.add_row({model.net.node(model.analyzed[k]).name, TextTable::fmt(r.ranges[k], 1),
               TextTable::fmt(r.models[k].lambda, 3),
               std::to_string(r.objectives[0].alloc.bits[k]),
               std::to_string(r.objectives[1].alloc.bits[k])});
  }
  std::printf("%s\n", t.render_text().c_str());

  // Cross-evaluate both assignments under both cost models.
  const MacEnergyModel energy = MacEnergyModel::stripes_like();
  const auto& in_rho = objectives[0].rho;
  const auto& mac_rho = objectives[1].rho;
  TextTable x({"assignment", "bandwidth bits/img", "MAC energy (arb)"});
  for (const auto& obj : r.objectives) {
    x.add_row({obj.spec.name,
               TextTable::fmt_int(total_weighted_bits(in_rho, obj.alloc.bits)),
               TextTable::fmt(energy.network_energy(mac_rho, obj.alloc.bits, 10) / 1e6, 2)});
  }
  std::printf("%s\n", x.render_text().c_str());
  std::printf("each assignment wins its own column; changing the objective costs nothing\n"
              "but a re-run of the 'allocate' step (profiling is reused).\n");
  return 0;
}
