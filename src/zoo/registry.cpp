#include <stdexcept>

#include "zoo/zoo.hpp"

namespace mupod {

std::vector<std::string> zoo_model_names() {
  return {"alexnet",  "nin",       "googlenet",  "vgg19",
          "resnet50", "resnet152", "squeezenet", "mobilenet"};
}

ZooModel build_model(const std::string& name, const ZooOptions& opts) {
  if (name == "tiny") return build_tiny_cnn(opts);
  if (name == "alexnet") return build_alexnet(opts);
  if (name == "nin") return build_nin(opts);
  if (name == "googlenet") return build_googlenet(opts);
  if (name == "vgg19") return build_vgg19(opts);
  if (name == "resnet50") return build_resnet50(opts);
  if (name == "resnet152") return build_resnet152(opts);
  if (name == "squeezenet") return build_squeezenet(opts);
  if (name == "mobilenet") return build_mobilenet(opts);
  throw std::invalid_argument("unknown zoo model: " + name);
}

}  // namespace mupod
