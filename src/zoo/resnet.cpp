#include <memory>
#include <vector>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

namespace {

// Pre-activation-free (v1) bottleneck: 1x1 -> 3x3 -> 1x1 with a shortcut
// (identity, or 1x1 projection when the geometry changes). 3 convolutions
// per block + 1 projection conv per stage.
std::string bottleneck(Network& net, const std::string& name, const std::string& input,
                       int in_c, int mid_c, int out_c, int stride, bool project) {
  std::string t = add_conv_relu(net, name + "_a", input, in_c, mid_c, 1, stride, 0);
  t = add_conv_relu(net, name + "_b", t, mid_c, mid_c, 3, 1, 1);
  t = add_conv(net, name + "_c", t, mid_c, out_c, 1, 1, 0);
  std::string shortcut = input;
  if (project) {
    shortcut = add_conv(net, name + "_proj", input, in_c, out_c, 1, stride, 0);
  }
  net.add(name + "_add", std::make_unique<EltwiseAddLayer>(),
          std::vector<std::string>{t, shortcut});
  net.add(name + "_relu", std::make_unique<ReLULayer>(), std::vector<std::string>{name + "_add"});
  return name + "_relu";
}

ZooModel build_resnet(const std::string& name, const std::vector<int>& blocks,
                      const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 32;
  m.width = 32;
  Network& net = m.net;
  net = Network(name);

  net.add_input("data", 3, 32, 32);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 16, 5, 2, 2);  // 16x16
  top = add_maxpool(net, "pool1", top, 3, 2);                             // 8x8

  const int mids[4] = {8, 16, 32, 64};
  int in_c = 16;
  for (int stage = 0; stage < 4; ++stage) {
    const int mid = mids[stage];
    const int out = mid * 4;
    const int stage_stride = stage == 0 ? 1 : 2;
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::string bname = "s" + std::to_string(stage + 1) + "b" + std::to_string(b + 1);
      const bool first = b == 0;
      top = bottleneck(net, bname, top, in_c, mid, out, first ? stage_stride : 1, first);
      in_c = out;
    }
  }
  top = add_global_avgpool(net, "gap", top);
  add_fc(net, "fc", top, in_c, opts.num_classes);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = true});
  return m;
}

}  // namespace

// ResNet-50: 1 stem + 16 blocks x 3 + 4 projections + fc = 54 analyzed
// layers (paper Table III).
ZooModel build_resnet50(const ZooOptions& opts) {
  return build_resnet("resnet50", {3, 4, 6, 3}, opts);
}

// ResNet-152: 1 stem + 50 blocks x 3 + 4 projections + fc = 156 analyzed
// layers — the deepest network in the paper ("hitherto not achievable").
ZooModel build_resnet152(const ZooOptions& opts) {
  return build_resnet("resnet152", {3, 8, 36, 3}, opts);
}

}  // namespace mupod
