#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

// Network-in-Network: 4 blocks of (conv, 1x1 cccp, 1x1 cccp) = 12 analyzed
// convolutions, global average pooling classifier, no fully connected
// layers — matching the paper's "NiN, 12 layers" (Fig. 4).
ZooModel build_nin(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 32;
  m.width = 32;
  Network& net = m.net;
  net = Network("nin");

  net.add_input("data", 3, 32, 32);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 24, 5, 1, 2);
  top = add_conv_relu(net, "cccp1", top, 24, 24, 1, 1, 0);
  top = add_conv_relu(net, "cccp2", top, 24, 16, 1, 1, 0);
  top = add_maxpool(net, "pool1", top, 3, 2);  // 16x16

  top = add_conv_relu(net, "conv2", top, 16, 32, 5, 1, 2);
  top = add_conv_relu(net, "cccp3", top, 32, 32, 1, 1, 0);
  top = add_conv_relu(net, "cccp4", top, 32, 32, 1, 1, 0);
  top = add_maxpool(net, "pool2", top, 3, 2);  // 8x8

  top = add_conv_relu(net, "conv3", top, 32, 48, 3, 1, 1);
  top = add_conv_relu(net, "cccp5", top, 48, 48, 1, 1, 0);
  top = add_conv_relu(net, "cccp6", top, 48, 48, 1, 1, 0);
  top = add_maxpool(net, "pool3", top, 3, 2);  // 4x4

  top = add_conv_relu(net, "conv4", top, 48, 64, 3, 1, 1);
  top = add_conv_relu(net, "cccp7", top, 64, 64, 1, 1, 0);
  // The classifier head stays linear (no ReLU) so the global average pool
  // yields unclipped class logits — see center_output_logits().
  top = add_conv(net, "cccp8", top, 64, opts.num_classes, 1, 1, 0);
  add_global_avgpool(net, "gap", top);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = true});
  return m;
}

}  // namespace mupod
