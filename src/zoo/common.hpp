// Internal helpers shared by the zoo builders.
#pragma once

#include <memory>
#include <string>

#include "nn/layers.hpp"
#include "nn/network.hpp"
#include "stats/rng.hpp"
#include "zoo/zoo.hpp"

namespace mupod::zoo_detail {

// Adds a convolution; returns the node name.
std::string add_conv(Network& net, const std::string& name, const std::string& input,
                     int in_c, int out_c, int kernel, int stride, int pad, int groups = 1);

// Convolution followed by ReLU; returns the ReLU node name.
std::string add_conv_relu(Network& net, const std::string& name, const std::string& input,
                          int in_c, int out_c, int kernel, int stride, int pad, int groups = 1);

std::string add_maxpool(Network& net, const std::string& name, const std::string& input,
                        int kernel, int stride, int pad = 0);

std::string add_global_avgpool(Network& net, const std::string& name, const std::string& input);

std::string add_fc(Network& net, const std::string& name, const std::string& input,
                   int in_features, int out_features);

// Finishes a ZooModel: He init, finalize (done by builders), calibration,
// and collection of analyzed nodes.
struct FinishOptions {
  bool include_fc = true;  // include fully connected layers in `analyzed`
};

void finish_model(::mupod::ZooModel& model, const ::mupod::ZooOptions& opts,
                  const FinishOptions& fin);

}  // namespace mupod::zoo_detail
