#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

// A 4-analyzable-layer CNN on 16x16 inputs: the workhorse of the unit and
// property tests, small enough that a full profiling run takes milliseconds.
ZooModel build_tiny_cnn(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 16;
  m.width = 16;
  Network& net = m.net;
  net = Network("tiny_cnn");

  net.add_input("data", 3, 16, 16);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 8, 3, 1, 1);
  top = add_maxpool(net, "pool1", top, 2, 2);                       // 8x8
  top = add_conv_relu(net, "conv2", top, 8, 16, 3, 1, 1);
  top = add_maxpool(net, "pool2", top, 2, 2);                       // 4x4
  top = add_conv_relu(net, "conv3", top, 16, 32, 3, 1, 1);
  top = add_global_avgpool(net, "gap", top);
  add_fc(net, "fc", top, 32, opts.num_classes);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = true});
  return m;
}

}  // namespace mupod
