#include "zoo/common.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/synthetic.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

void init_weights_he(Network& net, std::uint64_t seed) {
  Rng rng(seed);
  for (int id = 0; id < net.num_nodes(); ++id) {
    Layer& l = net.layer(id);
    Tensor* w = l.mutable_weights();
    if (w == nullptr) continue;
    // Fan-in: product of all weight dims except the output one (dim 0).
    const std::int64_t fan_in = w->numel() / w->shape().dim(0);
    const double std = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (std::int64_t i = 0; i < w->numel(); ++i)
      (*w)[i] = static_cast<float>(rng.gaussian(0.0, std));
    if (Tensor* b = l.mutable_bias()) b->fill(0.0f);
  }
}

void calibrate_activations(Network& net, const Tensor& calib_batch, double target_std) {
  std::vector<Tensor> acts = net.forward_all(calib_batch);
  for (int id : net.analyzable_nodes()) {
    Tensor& out = acts[static_cast<std::size_t>(id)];
    const double sd = out.stddev();
    if (sd <= 1e-12) continue;
    const float scale = static_cast<float>(target_std / sd);
    Layer& l = net.layer(id);
    *l.mutable_weights() *= scale;
    if (Tensor* b = l.mutable_bias()) *b *= scale;
    net.update_from(id, acts);
  }
}

namespace {
// Walks back from the output through shape-preserving linear layers to
// the layer that produces the logits. Returns -1 if none.
int find_head_node(const Network& net) {
  int id = net.output_node();
  while (id >= 0) {
    const LayerKind kind = net.layer(id).kind();
    if (kind == LayerKind::kFlatten || kind == LayerKind::kDropout ||
        (kind == LayerKind::kAvgPool &&
         static_cast<const PoolLayer&>(net.layer(id)).config().global)) {
      id = net.node(id).inputs[0];
      continue;
    }
    break;
  }
  return id;
}
}  // namespace

bool center_output_logits(Network& net, const Tensor& calib_batch) {
  const int id = find_head_node(net);
  if (id < 0) return false;
  Tensor* bias = net.layer(id).mutable_bias();
  if (bias == nullptr) return false;

  const Tensor logits = net.forward(calib_batch);
  const int n = logits.shape().dim(0);
  const std::int64_t classes = logits.numel() / n;
  if (classes != bias->numel()) return false;

  for (std::int64_t c = 0; c < classes; ++c) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += logits[static_cast<std::int64_t>(i) * classes + c];
    (*bias)[c] -= static_cast<float>(mean / n);
  }
  return true;
}

double train_classifier_head(Network& net, const SyntheticImageDataset& dataset,
                             int num_classes, int images, int epochs, float lr,
                             std::uint64_t seed) {
  const int head = find_head_node(net);
  if (head < 0) return -1.0;
  Layer& layer = net.layer(head);
  Tensor* weights = layer.mutable_weights();
  Tensor* bias = layer.mutable_bias();
  if (weights == nullptr || bias == nullptr) return -1.0;

  // Feature extraction mode: fc head -> flattened input; 1x1-conv head
  // followed by a global average pool -> spatially averaged input (the
  // two commute, so training on averaged features is exact).
  int dim = 0;
  bool conv_head = false;
  if (layer.kind() == LayerKind::kInnerProduct) {
    const auto& fc = static_cast<const InnerProductLayer&>(layer);
    if (fc.out_features() != num_classes) return -1.0;
    dim = fc.in_features();
  } else if (layer.kind() == LayerKind::kConv) {
    const auto& cfg = static_cast<const Conv2DLayer&>(layer).config();
    if (cfg.kernel_h != 1 || cfg.kernel_w != 1 || cfg.groups != 1 ||
        cfg.out_channels != num_classes) {
      return -1.0;
    }
    dim = cfg.in_channels;
    conv_head = true;
  } else {
    return -1.0;
  }

  // --- collect features with the frozen backbone -------------------------
  const int feed = net.node(head).inputs[0];
  std::vector<float> feats(static_cast<std::size_t>(images) * dim);
  std::vector<int> labels(static_cast<std::size_t>(images));
  const int batch_size = 32;
  for (int first = 0; first < images; first += batch_size) {
    const int n = std::min(batch_size, images - first);
    const Tensor batch = dataset.make_batch(first, n);
    const std::vector<Tensor> acts = net.forward_all(batch);
    const Tensor& x = acts[static_cast<std::size_t>(feed)];
    for (int i = 0; i < n; ++i) {
      float* out = feats.data() + static_cast<std::size_t>(first + i) * dim;
      if (conv_head) {
        const int spatial = x.shape().h() * x.shape().w();
        for (int c = 0; c < dim; ++c) {
          double acc = 0.0;
          for (int s = 0; s < spatial; ++s)
            acc += x[((static_cast<std::int64_t>(i) * dim + c) * spatial) + s];
          out[c] = static_cast<float>(acc / spatial);
        }
      } else {
        const std::int64_t row = x.numel() / x.shape().dim(0);
        for (std::int64_t c = 0; c < row; ++c)
          out[c] = x[static_cast<std::int64_t>(i) * row + c];
      }
      labels[static_cast<std::size_t>(first + i)] = dataset.label_of(first + i);
    }
  }

  // --- softmax regression -------------------------------------------------
  std::vector<double> W(static_cast<std::size_t>(num_classes) * dim, 0.0);
  std::vector<double> B(static_cast<std::size_t>(num_classes), 0.0);
  std::vector<double> logits(static_cast<std::size_t>(num_classes));
  Rng rng(seed);
  float cur_lr = lr;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int i = 0; i < images; ++i) {
      const float* f = feats.data() + static_cast<std::size_t>(i) * dim;
      // Forward.
      double mx = -1e300;
      for (int c = 0; c < num_classes; ++c) {
        double z = B[static_cast<std::size_t>(c)];
        const double* w = W.data() + static_cast<std::size_t>(c) * dim;
        for (int d = 0; d < dim; ++d) z += w[d] * f[d];
        logits[static_cast<std::size_t>(c)] = z;
        mx = std::max(mx, z);
      }
      double zsum = 0.0;
      for (int c = 0; c < num_classes; ++c) {
        logits[static_cast<std::size_t>(c)] = std::exp(logits[static_cast<std::size_t>(c)] - mx);
        zsum += logits[static_cast<std::size_t>(c)];
      }
      // Gradient step.
      const int y = labels[static_cast<std::size_t>(i)];
      for (int c = 0; c < num_classes; ++c) {
        const double p = logits[static_cast<std::size_t>(c)] / zsum;
        const double g = p - (c == y ? 1.0 : 0.0);
        if (g == 0.0) continue;
        double* w = W.data() + static_cast<std::size_t>(c) * dim;
        const double step = cur_lr * g;
        for (int d = 0; d < dim; ++d) w[d] -= step * f[d];
        B[static_cast<std::size_t>(c)] -= step;
      }
    }
    cur_lr *= 0.95f;
  }

  // --- temperature normalization -------------------------------------------
  // Rescale the trained head so train logits have s.d. ~2 (argmax- and
  // margin-structure-preserving; keeps downstream numerics tidy).
  {
    double sum = 0.0, sumsq = 0.0;
    std::int64_t count = 0;
    for (int i = 0; i < images; ++i) {
      const float* f = feats.data() + static_cast<std::size_t>(i) * dim;
      for (int c = 0; c < num_classes; ++c) {
        double z = B[static_cast<std::size_t>(c)];
        const double* w = W.data() + static_cast<std::size_t>(c) * dim;
        for (int d = 0; d < dim; ++d) z += w[d] * f[d];
        sum += z;
        sumsq += z * z;
        ++count;
      }
    }
    const double mean = sum / static_cast<double>(count);
    const double sd = std::sqrt(std::max(sumsq / static_cast<double>(count) - mean * mean, 1e-12));
    const double scale = 2.0 / sd;
    for (double& w : W) w *= scale;
    for (double& b : B) b *= scale;
  }

  // --- write back and measure train accuracy ------------------------------
  for (int c = 0; c < num_classes; ++c)
    for (int d = 0; d < dim; ++d)
      (*weights)[static_cast<std::int64_t>(c) * dim + d] =
          static_cast<float>(W[static_cast<std::size_t>(c) * dim + d]);
  for (int c = 0; c < num_classes; ++c)
    (*bias)[c] = static_cast<float>(B[static_cast<std::size_t>(c)]);

  int hits = 0;
  for (int i = 0; i < images; ++i) {
    const float* f = feats.data() + static_cast<std::size_t>(i) * dim;
    int best = 0;
    double bv = -1e300;
    for (int c = 0; c < num_classes; ++c) {
      double z = B[static_cast<std::size_t>(c)];
      const double* w = W.data() + static_cast<std::size_t>(c) * dim;
      for (int d = 0; d < dim; ++d) z += w[d] * f[d];
      if (z > bv) {
        bv = z;
        best = c;
      }
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++hits;
  }
  return static_cast<double>(hits) / images;
}

namespace zoo_detail {

std::string add_conv(Network& net, const std::string& name, const std::string& input,
                     int in_c, int out_c, int kernel, int stride, int pad, int groups) {
  Conv2DLayer::Config cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel_h = kernel;
  cfg.kernel_w = kernel;
  cfg.stride = stride;
  cfg.pad = pad;
  cfg.groups = groups;
  net.add(name, std::make_unique<Conv2DLayer>(cfg), std::vector<std::string>{input});
  return name;
}

std::string add_conv_relu(Network& net, const std::string& name, const std::string& input,
                          int in_c, int out_c, int kernel, int stride, int pad, int groups) {
  add_conv(net, name, input, in_c, out_c, kernel, stride, pad, groups);
  const std::string relu_name = name + "_relu";
  net.add(relu_name, std::make_unique<ReLULayer>(), std::vector<std::string>{name});
  return relu_name;
}

std::string add_maxpool(Network& net, const std::string& name, const std::string& input,
                        int kernel, int stride, int pad) {
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kMax;
  cfg.kernel = kernel;
  cfg.stride = stride;
  cfg.pad = pad;
  net.add(name, std::make_unique<PoolLayer>(cfg), std::vector<std::string>{input});
  return name;
}

std::string add_global_avgpool(Network& net, const std::string& name, const std::string& input) {
  PoolLayer::Config cfg;
  cfg.mode = PoolLayer::Mode::kAvg;
  cfg.global = true;
  net.add(name, std::make_unique<PoolLayer>(cfg), std::vector<std::string>{input});
  return name;
}

std::string add_fc(Network& net, const std::string& name, const std::string& input,
                   int in_features, int out_features) {
  net.add(name, std::make_unique<InnerProductLayer>(in_features, out_features),
          std::vector<std::string>{input});
  return name;
}

void finish_model(ZooModel& model, const ZooOptions& opts, const FinishOptions& fin) {
  Network& net = model.net;
  if (!net.finalized()) net.finalize();
  init_weights_he(net, opts.seed);

  if (opts.calibration_images > 0) {
    DatasetConfig dc;
    dc.channels = model.channels;
    dc.height = model.height;
    dc.width = model.width;
    dc.num_classes = model.num_classes;
    dc.seed = opts.data_seed;
    SyntheticImageDataset ds(dc);
    const Tensor batch = ds.make_batch(0, opts.calibration_images);
    calibrate_activations(net, batch);
    if (opts.head_images > 0 &&
        train_classifier_head(net, ds, model.num_classes, opts.head_images, opts.head_epochs,
                              opts.head_lr, opts.seed ^ 0x4EADULL) >= 0.0) {
      // Trained head: margins are real, no centering needed.
    } else {
      center_output_logits(net, batch);
    }
  }

  model.analyzed.clear();
  for (int id : net.analyzable_nodes()) {
    if (!fin.include_fc && net.layer(id).kind() == LayerKind::kInnerProduct) continue;
    model.analyzed.push_back(id);
  }
}

}  // namespace zoo_detail
}  // namespace mupod
