#include <memory>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

namespace {

// Fire module: squeeze 1x1 -> (expand 1x1 || expand 3x3) -> concat.
// 3 convolutions per module.
std::string fire(Network& net, const std::string& name, const std::string& input,
                 int in_c, int s, int e1, int e3) {
  const std::string sq = add_conv_relu(net, name + "_squeeze", input, in_c, s, 1, 1, 0);
  const std::string x1 = add_conv_relu(net, name + "_expand1", sq, s, e1, 1, 1, 0);
  const std::string x3 = add_conv_relu(net, name + "_expand3", sq, s, e3, 3, 1, 1);
  net.add(name + "_concat", std::make_unique<ConcatLayer>(), std::vector<std::string>{x1, x3});
  return name + "_concat";
}

}  // namespace

// SqueezeNet v1.0 topology: conv1 + 8 fire modules x 3 + conv10 = 26
// analyzed layers, global-average-pool classifier (no FC).
ZooModel build_squeezenet(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 32;
  m.width = 32;
  Network& net = m.net;
  net = Network("squeezenet");

  net.add_input("data", 3, 32, 32);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 16, 3, 2, 1);  // 16x16
  top = add_maxpool(net, "pool1", top, 3, 2);                             // 8x8

  top = fire(net, "fire2", top, 16, 2, 8, 8);    // out 16
  top = fire(net, "fire3", top, 16, 2, 8, 8);    // out 16
  top = fire(net, "fire4", top, 16, 4, 16, 16);  // out 32
  top = add_maxpool(net, "pool4", top, 3, 2);    // 4x4

  top = fire(net, "fire5", top, 32, 4, 16, 16);  // out 32
  top = fire(net, "fire6", top, 32, 6, 24, 24);  // out 48
  top = fire(net, "fire7", top, 48, 6, 24, 24);  // out 48
  top = fire(net, "fire8", top, 48, 8, 32, 32);  // out 64
  top = add_maxpool(net, "pool8", top, 3, 2);    // 2x2

  top = fire(net, "fire9", top, 64, 8, 32, 32);  // out 64
  // Linear classifier head (no ReLU) so logits are unclipped class scores.
  top = add_conv(net, "conv10", top, 64, opts.num_classes, 1, 1, 0);
  add_global_avgpool(net, "gap", top);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = true});
  return m;
}

}  // namespace mupod
