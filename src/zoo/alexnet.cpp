#include <memory>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

// AlexNet topology at reduced scale: 5 analyzed convolutions (conv2/4/5
// grouped, LRN after conv1/conv2 as in the original) plus 3 fully
// connected layers that are excluded from the analysis, matching the
// paper's treatment ("Stripes ignored the fully connected layers").
ZooModel build_alexnet(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 56;
  m.width = 56;
  Network& net = m.net;
  net = Network("alexnet");

  net.add_input("data", 3, 56, 56);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 24, 7, 2, 3);  // 28x28
  net.add("norm1", std::make_unique<LRNLayer>(LRNLayer::Config{}), std::vector<std::string>{top});
  top = add_maxpool(net, "pool1", "norm1", 3, 2);                         // 14x14 (ceil)
  top = add_conv_relu(net, "conv2", top, 24, 64, 5, 1, 2, /*groups=*/2);
  net.add("norm2", std::make_unique<LRNLayer>(LRNLayer::Config{}), std::vector<std::string>{top});
  top = add_maxpool(net, "pool2", "norm2", 3, 2);                         // 7x7
  top = add_conv_relu(net, "conv3", top, 64, 96, 3, 1, 1);
  top = add_conv_relu(net, "conv4", top, 96, 96, 3, 1, 1, /*groups=*/2);
  top = add_conv_relu(net, "conv5", top, 96, 64, 3, 1, 1, /*groups=*/2);
  top = add_maxpool(net, "pool5", top, 3, 2);                             // 3x3
  top = add_fc(net, "fc6", top, 64 * 3 * 3, 128);
  net.add("relu6", std::make_unique<ReLULayer>(), std::vector<std::string>{top});
  top = add_fc(net, "fc7", "relu6", 128, 128);
  net.add("relu7", std::make_unique<ReLULayer>(), std::vector<std::string>{top});
  add_fc(net, "fc8", "relu7", 128, opts.num_classes);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = false});
  return m;
}

}  // namespace mupod
