#include <array>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

// MobileNet v1 topology: conv1 + 13 x (depthwise 3x3 + pointwise 1x1) + fc
// = 28 analyzed layers (paper Table III). Depthwise convolutions use
// groups == channels.
ZooModel build_mobilenet(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 32;
  m.width = 32;
  Network& net = m.net;
  net = Network("mobilenet");

  net.add_input("data", 3, 32, 32);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 8, 3, 2, 1);  // 16x16

  // (depthwise stride, pointwise out channels)
  const std::array<std::pair<int, int>, 13> stages = {{
      {1, 16}, {2, 32}, {1, 32}, {2, 64}, {1, 64}, {2, 128}, {1, 128},
      {1, 128}, {1, 128}, {1, 128}, {1, 128}, {2, 256}, {1, 256},
  }};

  int in_c = 8;
  int idx = 0;
  for (const auto& [stride, out_c] : stages) {
    ++idx;
    const std::string dw = "dw" + std::to_string(idx);
    const std::string pw = "pw" + std::to_string(idx);
    top = add_conv_relu(net, dw, top, in_c, in_c, 3, stride, 1, /*groups=*/in_c);
    top = add_conv_relu(net, pw, top, in_c, out_c, 1, 1, 0);
    in_c = out_c;
  }

  top = add_global_avgpool(net, "gap", top);
  add_fc(net, "fc", top, in_c, opts.num_classes);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = true});
  return m;
}

}  // namespace mupod
