#include <memory>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

namespace {

struct InceptionCfg {
  int c1;   // 1x1 branch
  int c3r;  // 3x3 reduce
  int c3;   // 3x3
  int c5r;  // 5x5 reduce
  int c5;   // 5x5
  int pp;   // pool projection
  int out() const { return c1 + c3 + c5 + pp; }
};

// One inception module: 6 convolutions + concat.
std::string inception(Network& net, const std::string& name, const std::string& input,
                      int in_c, const InceptionCfg& cfg) {
  const std::string b1 = add_conv_relu(net, name + "_1x1", input, in_c, cfg.c1, 1, 1, 0);
  std::string b3 = add_conv_relu(net, name + "_3x3r", input, in_c, cfg.c3r, 1, 1, 0);
  b3 = add_conv_relu(net, name + "_3x3", b3, cfg.c3r, cfg.c3, 3, 1, 1);
  std::string b5 = add_conv_relu(net, name + "_5x5r", input, in_c, cfg.c5r, 1, 1, 0);
  b5 = add_conv_relu(net, name + "_5x5", b5, cfg.c5r, cfg.c5, 5, 1, 2);
  PoolLayer::Config pc;
  pc.mode = PoolLayer::Mode::kMax;
  pc.kernel = 3;
  pc.stride = 1;
  pc.pad = 1;
  net.add(name + "_pool", std::make_unique<PoolLayer>(pc), std::vector<std::string>{input});
  const std::string bp = add_conv_relu(net, name + "_poolproj", name + "_pool", in_c, cfg.pp, 1, 1, 0);
  net.add(name + "_concat", std::make_unique<ConcatLayer>(),
          std::vector<std::string>{b1, b3, b5, bp});
  return name + "_concat";
}

}  // namespace

// GoogleNet (Inception v1) topology: 3 stem convolutions + 9 inception
// modules x 6 convolutions = 57 analyzed layers, plus an excluded
// classifier FC — the paper's "GoogleNet, 57 layers". Channel widths are
// the originals divided by 8.
ZooModel build_googlenet(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 32;
  m.width = 32;
  Network& net = m.net;
  net = Network("googlenet");

  net.add_input("data", 3, 32, 32);
  std::string top = add_conv_relu(net, "conv1", "data", 3, 16, 5, 2, 2);  // 16x16
  top = add_maxpool(net, "pool1", top, 3, 2);                             // 8x8
  top = add_conv_relu(net, "conv2_reduce", top, 16, 16, 1, 1, 0);
  top = add_conv_relu(net, "conv2", top, 16, 48, 3, 1, 1);
  top = add_maxpool(net, "pool2", top, 3, 2);                             // 4x4

  int in_c = 48;
  const InceptionCfg i3a{8, 12, 16, 2, 4, 4};
  top = inception(net, "3a", top, in_c, i3a);
  in_c = i3a.out();
  const InceptionCfg i3b{16, 16, 24, 4, 12, 8};
  top = inception(net, "3b", top, in_c, i3b);
  in_c = i3b.out();
  top = add_maxpool(net, "pool3", top, 3, 2);                             // 2x2

  const InceptionCfg i4a{24, 12, 26, 2, 6, 8};
  top = inception(net, "4a", top, in_c, i4a);
  in_c = i4a.out();
  const InceptionCfg i4b{20, 14, 28, 3, 8, 8};
  top = inception(net, "4b", top, in_c, i4b);
  in_c = i4b.out();
  const InceptionCfg i4c{16, 16, 32, 3, 8, 8};
  top = inception(net, "4c", top, in_c, i4c);
  in_c = i4c.out();
  const InceptionCfg i4d{14, 18, 36, 4, 8, 8};
  top = inception(net, "4d", top, in_c, i4d);
  in_c = i4d.out();
  const InceptionCfg i4e{32, 20, 40, 4, 16, 16};
  top = inception(net, "4e", top, in_c, i4e);
  in_c = i4e.out();
  top = add_maxpool(net, "pool4", top, 3, 2);                             // 1x1

  const InceptionCfg i5a{32, 20, 40, 4, 16, 16};
  top = inception(net, "5a", top, in_c, i5a);
  in_c = i5a.out();
  const InceptionCfg i5b{48, 24, 48, 6, 16, 16};
  top = inception(net, "5b", top, in_c, i5b);
  in_c = i5b.out();

  top = add_global_avgpool(net, "gap", top);
  add_fc(net, "fc", top, in_c, opts.num_classes);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = false});
  return m;
}

}  // namespace mupod
