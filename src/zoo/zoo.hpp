// Model zoo: programmatic builders for the eight CNN topologies of the
// paper's evaluation (Table III), plus small networks for tests and
// examples.
//
// Substitution note (see DESIGN.md): the paper uses ImageNet-scale
// pretrained Caffe models. We reconstruct the same *topologies* — same
// layer structure and analyzable-layer counts (AlexNet 5, NiN 12,
// GoogleNet 57, VGG-19 16, ResNet-50 54, ResNet-152 156, SqueezeNet 26,
// MobileNet 28) — at reduced spatial/channel scale, with deterministic
// He-initialized weights passed through an LSUV-style activation
// calibration so per-layer activation statistics resemble a trained
// network's. The paper's method only consumes those statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/network.hpp"

namespace mupod {

struct ZooOptions {
  int num_classes = 100;
  std::uint64_t seed = 1234;
  // Seed of the synthetic data distribution used for calibration and head
  // training. MUST match the dataset the model will be evaluated on:
  // the trained classifier head is specific to that distribution's class
  // prototypes (just like pretrained weights are specific to ImageNet).
  std::uint64_t data_seed = 42;
  // Images used by the LSUV-style activation calibration (0 disables it).
  int calibration_images = 16;
  // Images used to train the classifier head (0 disables head training).
  // With a trained head the network has genuine decision margins, so the
  // accuracy-vs-noise behaviour matches a trained model's: few images sit
  // at near-zero margin and small noise budgets remain usable — the
  // regime the paper's 1% experiments operate in. (Backbone features stay
  // calibrated-random; only the final linear classifier is fit.)
  int head_images = 256;
  int head_epochs = 30;
  float head_lr = 0.5f;
};

struct ZooModel {
  Network net;
  // Node ids whose input precision the optimizer allocates. Matches the
  // paper's per-network layer counts: for AlexNet and VGG-19 the fully
  // connected layers are excluded ("Stripes ignored the fully connected
  // layers, so we did the same").
  std::vector<int> analyzed;
  int num_classes = 0;
  // Input geometry.
  int channels = 3, height = 32, width = 32;
};

ZooModel build_tiny_cnn(const ZooOptions& opts = {});  // 3 conv + 1 fc, 16x16 input
ZooModel build_alexnet(const ZooOptions& opts = {});
ZooModel build_nin(const ZooOptions& opts = {});
ZooModel build_googlenet(const ZooOptions& opts = {});
ZooModel build_vgg19(const ZooOptions& opts = {});
ZooModel build_resnet50(const ZooOptions& opts = {});
ZooModel build_resnet152(const ZooOptions& opts = {});
ZooModel build_squeezenet(const ZooOptions& opts = {});
ZooModel build_mobilenet(const ZooOptions& opts = {});

// Names accepted by build_model, in the order of the paper's Table III.
std::vector<std::string> zoo_model_names();
ZooModel build_model(const std::string& name, const ZooOptions& opts = {});

// LSUV-style calibration: walks analyzable layers in topological order and
// rescales each layer's weights so its output activations have s.d.
// ~= target_std on the calibration batch. Replaces the role of trained
// weight magnitudes for the statistical analysis.
void calibrate_activations(Network& net, const Tensor& calib_batch, double target_std = 1.0);

// Removes the class prior of a randomly-initialized classifier: subtracts
// the per-class mean logit (over the calibration batch) from the bias of
// the layer producing the logits. Without this, an uncalibrated random
// net predicts one dominant class for every input, which makes argmax
// agreement insensitive to noise — unlike any trained network. Requires
// the path from that layer to the output to be linear (global average
// pool / flatten only). Returns false if no such bias was found.
bool center_output_logits(Network& net, const Tensor& calib_batch);

// Trains the logits-producing layer (fc, or 1x1 conv feeding a global
// average pool) as a softmax regression on the synthetic labels, using
// features produced by the (frozen) backbone. Returns the final training
// accuracy, or a negative value when no trainable head was found.
double train_classifier_head(Network& net, const SyntheticImageDataset& dataset,
                             int num_classes, int images, int epochs, float lr,
                             std::uint64_t seed);

// He-style random init of every conv / fc in the network (biases zero).
void init_weights_he(Network& net, std::uint64_t seed);

}  // namespace mupod
