#include <memory>

#include "zoo/common.hpp"
#include "zoo/zoo.hpp"

namespace mupod {

using namespace zoo_detail;

namespace {
std::string vgg_block(Network& net, const std::string& name, std::string top, int convs,
                      int in_c, int out_c) {
  for (int i = 1; i <= convs; ++i) {
    top = add_conv_relu(net, name + "_" + std::to_string(i), top,
                        i == 1 ? in_c : out_c, out_c, 3, 1, 1);
  }
  return add_maxpool(net, name + "_pool", top, 2, 2);
}
}  // namespace

// VGG-19 topology: 16 analyzed 3x3 convolutions in blocks of (2,2,4,4,4)
// plus 3 excluded fully connected layers (the paper's "VGG-19, 16 layers").
ZooModel build_vgg19(const ZooOptions& opts) {
  ZooModel m;
  m.num_classes = opts.num_classes;
  m.channels = 3;
  m.height = 32;
  m.width = 32;
  Network& net = m.net;
  net = Network("vgg19");

  net.add_input("data", 3, 32, 32);
  std::string top = vgg_block(net, "block1", "data", 2, 3, 16);     // 16x16
  top = vgg_block(net, "block2", top, 2, 16, 32);                   // 8x8
  top = vgg_block(net, "block3", top, 4, 32, 64);                   // 4x4
  top = vgg_block(net, "block4", top, 4, 64, 128);                  // 2x2
  top = vgg_block(net, "block5", top, 4, 128, 128);                 // 1x1

  top = add_fc(net, "fc6", top, 128, 128);
  net.add("relu6", std::make_unique<ReLULayer>(), std::vector<std::string>{top});
  top = add_fc(net, "fc7", "relu6", 128, 128);
  net.add("relu7", std::make_unique<ReLULayer>(), std::vector<std::string>{top});
  add_fc(net, "fc8", "relu7", 128, opts.num_classes);

  net.finalize();
  finish_model(m, opts, FinishOptions{.include_fc = false});
  return m;
}

}  // namespace mupod
