#include "serve/sweep.hpp"

#include <chrono>
#include <exception>
#include <mutex>

#include "obs/trace.hpp"
#include "tensor/parallel.hpp"

namespace mupod {

namespace {
using Clock = std::chrono::steady_clock;
double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool dominates(const SweepCell& a, const SweepCell& b) {
  const bool no_worse = a.result.accuracy_loss <= b.result.accuracy_loss &&
                        a.result.objective_cost <= b.result.objective_cost;
  const bool strictly_better = a.result.accuracy_loss < b.result.accuracy_loss ||
                               a.result.objective_cost < b.result.objective_cost;
  return no_worse && strictly_better;
}
}  // namespace

void mark_pareto_front(std::vector<SweepCell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < cells.size() && !dominated; ++j) {
      if (i == j) continue;
      // Tradeoffs only compare within one objective group; costs of
      // different rho vectors are not commensurable.
      if (cells[j].result.query.objective.name != cells[i].result.query.objective.name) continue;
      if (dominates(cells[j], cells[i])) dominated = true;
    }
    cells[i].pareto = !dominated;
  }
}

SweepResult run_sweep(PlanService& service, const PlanKey& key, const SweepSpec& spec) {
  SweepResult res;
  res.workers = parallel_worker_count();
  ScopedSpan span("sweep.run", "serve");
  span.arg("targets", static_cast<std::int64_t>(spec.accuracy_targets.size()));
  span.arg("objectives", static_cast<std::int64_t>(spec.objectives.size()));
  span.arg("workers", res.workers);
  const auto t_start = Clock::now();

  // Warm the shared stages OUTSIDE the pool: they are internally parallel,
  // and the once-per-key future in the service makes each a single
  // computation no matter how many sweeps run at once.
  auto t0 = Clock::now();
  service.ensure_profile(key);
  res.profile_warm_ms = ms_since(t0);

  t0 = Clock::now();
  for (double target : spec.accuracy_targets) service.ensure_sigma(key, target);
  res.sigma_warm_ms = ms_since(t0);

  // Fan the cheap tails. Each is serial inside (nested parallel_for calls
  // degrade to inline loops), so pool workers map 1:1 to grid cells.
  const std::size_t n_cells = spec.accuracy_targets.size() * spec.objectives.size();
  res.cells.resize(n_cells);
  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto run_cell = [&](std::int64_t c) {
    const std::size_t ti = static_cast<std::size_t>(c) / spec.objectives.size();
    const std::size_t oi = static_cast<std::size_t>(c) % spec.objectives.size();
    PlanQuery q;
    q.accuracy_target = spec.accuracy_targets[ti];
    q.objective = spec.objectives[oi];
    q.solver = spec.solver;
    try {
      res.cells[static_cast<std::size_t>(c)].result = service.plan(key, q);
    } catch (...) {
      std::lock_guard<std::mutex> lk(err_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  t0 = Clock::now();
  {
    ScopedSpan tails_span("sweep.tails", "serve");
    tails_span.arg("cells", static_cast<std::int64_t>(n_cells));
    if (spec.concurrent) {
      parallel_for(0, static_cast<std::int64_t>(n_cells), run_cell);
    } else {
      for (std::int64_t c = 0; c < static_cast<std::int64_t>(n_cells); ++c) run_cell(c);
    }
  }
  res.tails_ms = ms_since(t0);
  if (first_error) std::rethrow_exception(first_error);

  mark_pareto_front(res.cells);
  res.wall_ms = ms_since(t_start);
  return res;
}

}  // namespace mupod
