#include "serve/plan_service.hpp"

#include <bit>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "hw/energy_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/qexec.hpp"

namespace mupod {

namespace {

// FNV-1a for config digests and memo keys (same scheme as
// network_content_hash; collisions only risk a gratuitous re-profile or a
// rejected stale hit, never a wrong answer served silently... a profile
// digest collision WOULD alias two configs, hence 64 bits + every field).
struct Fnv1a {
  std::uint64_t h = 14695981039346656037ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void b1(bool v) { i64(v ? 1 : 0); }
  void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

std::uint64_t target_bits(double accuracy_target) {
  return std::bit_cast<std::uint64_t>(accuracy_target);
}

// serve.* cache counters are low-frequency (once per query), so a name
// lookup per bump is fine.
void bump(const char* name, std::int64_t n = 1) {
  if (metrics_enabled()) metrics().counter(name).add(n);
}

}  // namespace

std::string PlanKey::to_string() const {
  std::ostringstream os;
  os << std::hex << net_hash << ':' << config_digest;
  return os.str();
}

std::uint64_t plan_config_digest(const PlanServiceConfig& cfg, const DatasetConfig& dataset) {
  Fnv1a f;
  // Harness: defines the measurement substrate.
  const HarnessConfig& h = cfg.pipeline.harness;
  f.i32(h.profile_images);
  f.i32(h.eval_images);
  f.i32(h.batch);
  f.i32(static_cast<int>(h.metric));
  f.i64(h.eval_start_index);
  f.u64(h.noise_seed);
  f.b1(h.quarantine_nonfinite);
  // Profiler: defines the lambda/theta models.
  const ProfilerConfig& p = cfg.pipeline.profiler;
  f.i32(p.points);
  f.i32(p.reps_per_point);
  f.d(p.log2_lo_scale);
  f.d(p.log2_hi_scale);
  f.b1(p.no_intercept);
  f.d(p.min_r2);
  f.d(p.max_rel_error_gate);
  f.d(p.pin_r2);
  // Sigma search: scheme + bracket options (the accuracy target itself is
  // the memo key, not part of the digest).
  const SigmaSearchConfig& s = cfg.pipeline.sigma;
  f.i32(static_cast<int>(s.scheme));
  f.d(s.search.initial_upper);
  f.d(s.search.tolerance);
  f.d(s.search.relative_tolerance);
  f.i32(s.search.max_doublings);
  f.i32(s.search.max_iterations);
  f.b1(cfg.pipeline.calibrate_sigma);
  // Tail: validation/refinement and allocator settings (minus the solver,
  // which is per-query).
  f.b1(cfg.pipeline.validate);
  f.b1(cfg.pipeline.refine_on_violation);
  f.i32(cfg.pipeline.max_refinements);
  f.d(cfg.pipeline.refinement_shrink);
  const AllocatorConfig& a = cfg.pipeline.allocator;
  f.d(a.min_xi);
  f.i32(a.min_total_bits);
  f.i32(a.max_fraction_bits);
  f.i32(a.solver_options.max_iterations);
  f.d(a.solver_options.min_xi);
  f.d(a.solver_options.tolerance);
  f.d(a.solver_options.initial_step);
  // Dataset identity: the same network profiled on different data is a
  // different profile.
  f.i32(dataset.num_classes);
  f.i32(dataset.channels);
  f.i32(dataset.height);
  f.i32(dataset.width);
  f.i32(dataset.gratings_per_class);
  f.d(static_cast<double>(dataset.noise));
  f.u64(dataset.seed);
  return f.h;
}

struct PlanService::SigmaMemo {
  bool ready = false;
  bool running = false;
  bool failed = false;
  // Charged-once stats flag: set by the first plan() that consumes this
  // search (that query is charged the miss; see CacheStats).
  bool charged = false;
  std::string error;
  SigmaStageResult result;
  DiagnosticSink diag;
};

struct PlanService::Entry {
  const Network* net = nullptr;
  std::vector<int> analyzed;
  const SyntheticImageDataset* dataset = nullptr;
  PlanKey key;
  std::string name;

  // Guards everything below; cv signals profile/sigma completion. Once a
  // stage's `ready` flag is set its data is immutable, so readers may keep
  // references across an unlock (the maps are node-stable).
  mutable std::mutex mu;
  std::condition_variable cv;
  bool profile_ready = false;
  bool profile_running = false;
  bool profile_failed = false;
  bool profile_charged = false;  // charged-once stats flag (see CacheStats)
  std::string profile_error;
  std::unique_ptr<AnalysisHarness> harness;
  // Persisted profile accepted by load_profile, consumed (moved out) by
  // the next ensure_profile in place of the fit measurements.
  std::unique_ptr<ProfileBundle> preloaded;
  ProfileStageResult prof;
  DiagnosticSink profile_diag;
  std::map<std::uint64_t, SigmaMemo> sigma;  // key: accuracy-target bit pattern
  std::map<std::string, PlanResult> plans;
  std::deque<std::string> plan_order;  // FIFO insertion order, for eviction
};

PlanService::PlanService(PlanServiceConfig cfg) : cfg_(std::move(cfg)) {
  // The Sec. V-E weight search mutates network weights; concurrent tails
  // share one const network, so it cannot be part of a served plan.
  cfg_.pipeline.search_weights = false;
}

PlanService::~PlanService() = default;

PlanKey PlanService::register_network(const Network& net, std::vector<int> analyzed,
                                      const SyntheticImageDataset& dataset) {
  assert(net.finalized());
  assert(!analyzed.empty());
  PlanKey key;
  key.net_hash = network_content_hash(net);
  key.config_digest = plan_config_digest(cfg_, dataset.config());

  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto e = std::make_unique<Entry>();
    e->net = &net;
    e->analyzed = std::move(analyzed);
    e->dataset = &dataset;
    e->key = key;
    e->name = net.name();
    entries_.emplace(key, std::move(e));
  }
  return key;
}

PlanService::Entry& PlanService::entry(const PlanKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end())
    throw std::runtime_error("plan service: unknown key " + key.to_string() +
                             " (register_network first)");
  return *it->second;
}

const PlanService::Entry& PlanService::entry(const PlanKey& key) const {
  return const_cast<PlanService*>(this)->entry(key);
}

bool PlanService::ensure_profile_locked(Entry& e, std::unique_lock<std::mutex>& lk, bool* waited) {
  if (e.profile_failed) throw std::runtime_error(e.profile_error);
  if (e.profile_ready) return true;
  if (e.profile_running) {
    // Once-per-key future: somebody else is already measuring this
    // profile; wait for their result and share it.
    if (waited != nullptr) *waited = true;
    bump("serve.profile.waits");
    e.cv.wait(lk, [&] { return e.profile_ready || e.profile_failed; });
    if (e.profile_failed) throw std::runtime_error(e.profile_error);
    return true;
  }
  e.profile_running = true;
  std::unique_ptr<ProfileBundle> pre = std::move(e.preloaded);
  lk.unlock();
  ScopedSpan span("serve.profile", "serve");
  std::unique_ptr<AnalysisHarness> harness;
  ProfileStageResult prof;
  DiagnosticSink diag;
  try {
    harness = std::make_unique<AnalysisHarness>(*e.net, e.analyzed, *e.dataset,
                                                cfg_.pipeline.harness, &diag);
    if (pre != nullptr) {
      // Accepted by load_profile (hash-checked): reuse the persisted fits
      // and ranges; only the harness had to be rebuilt.
      prof.models = pre->models;
      prof.ranges = pre->ranges;
      for (const LayerLinearModel& m : prof.models)
        if (m.usable()) ++prof.usable_models;
      diag_report(&diag, DiagSeverity::kInfo, PipelineStage::kServe, -1,
                  "profile stage seeded from a loaded bundle (" +
                      std::to_string(prof.models.size()) + " layer models)",
                  "lambda/theta fit measurements skipped");
    } else {
      prof = run_profile_stage(*harness, cfg_.pipeline.profiler, &diag);
    }
  } catch (const std::exception& ex) {
    lk.lock();
    e.profile_failed = true;
    e.profile_error = std::string("plan service: profile stage failed: ") + ex.what();
    e.profile_running = false;
    e.cv.notify_all();
    throw;
  }
  lk.lock();
  span.arg("forwards", harness->forward_count());
  span.arg("seeded", pre != nullptr ? 1 : 0);
  e.harness = std::move(harness);
  e.prof = std::move(prof);
  e.profile_diag = std::move(diag);
  e.profile_ready = true;
  e.profile_running = false;
  e.cv.notify_all();
  return false;
}

bool PlanService::ensure_sigma_locked(Entry& e, std::unique_lock<std::mutex>& lk,
                                      double accuracy_target, bool* waited) {
  assert(e.profile_ready);
  SigmaMemo& m = e.sigma[target_bits(accuracy_target)];
  if (m.failed) throw std::runtime_error(m.error);
  if (m.ready) return true;
  if (m.running) {
    if (waited != nullptr) *waited = true;
    bump("serve.sigma.waits");
    e.cv.wait(lk, [&] { return m.ready || m.failed; });
    if (m.failed) throw std::runtime_error(m.error);
    return true;
  }
  m.running = true;
  lk.unlock();
  ScopedSpan span("serve.sigma", "serve");
  SigmaSearchConfig scfg = cfg_.pipeline.sigma;
  scfg.relative_accuracy_drop = accuracy_target;
  SigmaStageResult result;
  DiagnosticSink diag;
  try {
    result = run_sigma_stage(*e.harness, e.prof, scfg, cfg_.pipeline.calibrate_sigma, &diag);
  } catch (const std::exception& ex) {
    lk.lock();
    m.failed = true;
    m.error = std::string("plan service: sigma stage failed: ") + ex.what();
    m.running = false;
    e.cv.notify_all();
    throw;
  }
  lk.lock();
  span.arg("evaluations", result.sigma.evaluations);
  m.result = std::move(result);
  m.diag = std::move(diag);
  m.ready = true;
  m.running = false;
  e.cv.notify_all();
  return false;
}

bool PlanService::ensure_profile(const PlanKey& key) {
  Entry& e = entry(key);
  std::unique_lock<std::mutex> lk(e.mu);
  bool waited = false;
  const bool hit = ensure_profile_locked(e, lk, &waited);
  lk.unlock();
  bump(hit ? "serve.profile.warm_hits" : "serve.profile.warm_misses");
  std::lock_guard<std::mutex> slk(mu_);
  (hit ? stats_.profile_warm_hits : stats_.profile_warm_misses)++;
  if (waited) ++stats_.profile_waits;
  return hit;
}

bool PlanService::ensure_sigma(const PlanKey& key, double accuracy_target) {
  Entry& e = entry(key);
  std::unique_lock<std::mutex> lk(e.mu);
  bool prof_waited = false, sigma_waited = false;
  const bool prof_hit = ensure_profile_locked(e, lk, &prof_waited);
  const bool hit = ensure_sigma_locked(e, lk, accuracy_target, &sigma_waited);
  lk.unlock();
  bump(prof_hit ? "serve.profile.warm_hits" : "serve.profile.warm_misses");
  bump(hit ? "serve.sigma.warm_hits" : "serve.sigma.warm_misses");
  std::lock_guard<std::mutex> slk(mu_);
  (prof_hit ? stats_.profile_warm_hits : stats_.profile_warm_misses)++;
  (hit ? stats_.sigma_warm_hits : stats_.sigma_warm_misses)++;
  if (prof_waited) ++stats_.profile_waits;
  if (sigma_waited) ++stats_.sigma_waits;
  return hit;
}

bool PlanService::load_profile(const PlanKey& key, const ProfileBundle& bundle) {
  Entry& e = entry(key);
  std::unique_lock<std::mutex> lk(e.mu);
  const auto reject = [&](DiagSeverity sev, std::string what) {
    lk.unlock();
    serve_diag_.report(sev, PipelineStage::kServe, -1,
                       "profile load rejected for " + key.to_string() + ": " + std::move(what),
                       "profile will be measured from scratch");
    bump("serve.profile.load_rejected");
    std::lock_guard<std::mutex> slk(mu_);
    ++stats_.profile_load_rejected;
    return false;
  };
  if (e.profile_ready || e.profile_running)
    return reject(DiagSeverity::kInfo, "profile already measured (or being measured)");
  if (bundle.net_hash == 0)
    return reject(DiagSeverity::kWarning,
                  "bundle carries no network hash (pre-v3 file); provenance unverifiable");
  if (bundle.net_hash != key.net_hash) {
    std::ostringstream os;
    os << "network hash mismatch (bundle " << std::hex << bundle.net_hash << ", key "
       << key.net_hash << "); the profile was measured on a different network";
    return reject(DiagSeverity::kError, os.str());
  }
  if (bundle.models.size() != e.analyzed.size())
    return reject(DiagSeverity::kError,
                  "layer count mismatch (bundle " + std::to_string(bundle.models.size()) +
                      ", analyzed " + std::to_string(e.analyzed.size()) + ")");
  e.preloaded = std::make_unique<ProfileBundle>(bundle);
  lk.unlock();
  serve_diag_.report(DiagSeverity::kInfo, PipelineStage::kServe, -1,
                     "profile bundle accepted for " + key.to_string() + " (" +
                         std::to_string(bundle.models.size()) + " layer models)",
                     "next ensure_profile skips the fit measurements");
  bump("serve.profile.loads");
  std::lock_guard<std::mutex> slk(mu_);
  ++stats_.profile_loads;
  return true;
}

ProfileBundle PlanService::export_profile(const PlanKey& key) const {
  const Entry& e = entry(key);
  std::lock_guard<std::mutex> lk(e.mu);
  if (!e.profile_ready)
    throw std::runtime_error("plan service: export_profile on " + key.to_string() +
                             " before the profile is ready (call ensure_profile first)");
  ProfileBundle b;
  b.network = e.name;
  b.net_hash = key.net_hash;
  b.models = e.prof.models;
  b.ranges = e.prof.ranges;
  b.layer_names.reserve(e.analyzed.size());
  for (int id : e.analyzed) {
    b.layer_names.push_back(e.net->node(id).name);
    b.input_elems.push_back(e.net->node(id).cost.input_elems);
    b.macs.push_back(e.net->node(id).cost.macs);
  }
  return b;
}

namespace {

std::string plan_memo_key(const PlanQuery& q) {
  Fnv1a rho;
  for (std::int64_t r : q.objective.rho) rho.i64(r);
  std::ostringstream os;
  os << std::hex << target_bits(q.accuracy_target) << '|' << static_cast<int>(q.solver) << '|'
     << q.objective.name << '|' << rho.h;
  return os.str();
}

}  // namespace

PlanResult PlanService::plan(const PlanKey& key, const PlanQuery& query) {
  ScopedSpan span("serve.plan", "serve");
  Entry& e = entry(key);
  std::unique_lock<std::mutex> lk(e.mu);
  bool prof_waited = false, sigma_waited = false;
  const bool prof_hit = ensure_profile_locked(e, lk, &prof_waited);
  const bool sigma_hit = ensure_sigma_locked(e, lk, query.accuracy_target, &sigma_waited);
  SigmaMemo& sm = e.sigma.at(target_bits(query.accuracy_target));

  // Charged-once accounting (under the entry lock, so exactly one query is
  // charged each stage's miss — see CacheStats).
  const bool prof_charged = e.profile_charged;
  e.profile_charged = true;
  const bool sigma_charged = sm.charged;
  sm.charged = true;

  const auto charge = [&](std::lock_guard<std::mutex>&) {
    (prof_charged ? stats_.profile_hits : stats_.profile_misses)++;
    (sigma_charged ? stats_.sigma_hits : stats_.sigma_misses)++;
    if (prof_waited) ++stats_.profile_waits;
    if (sigma_waited) ++stats_.sigma_waits;
  };
  const auto charge_metrics = [&] {
    bump(prof_charged ? "serve.profile.hits" : "serve.profile.misses");
    bump(sigma_charged ? "serve.sigma.hits" : "serve.sigma.misses");
  };

  const std::string memo_key = plan_memo_key(query);
  if (auto it = e.plans.find(memo_key); it != e.plans.end()) {
    PlanResult r = it->second;
    lk.unlock();
    r.profile_cached = prof_hit;
    r.sigma_cached = sigma_hit;
    r.plan_cached = true;
    charge_metrics();
    bump("serve.plan.hits");
    span.arg("plan_cached", 1);
    std::lock_guard<std::mutex> slk(mu_);
    charge(slk);
    ++stats_.plan_hits;
    return r;
  }
  // `prof` and `sm.result` are immutable once ready; the tail runs outside
  // the entry lock so independent queries proceed concurrently.
  lk.unlock();

  PipelineConfig tail_cfg = cfg_.pipeline;
  tail_cfg.sigma.relative_accuracy_drop = query.accuracy_target;
  tail_cfg.allocator.solver = query.solver;
  tail_cfg.search_weights = false;

  PlanResult r;
  r.query = query;
  r.key = key;
  r.network = e.name;
  r.profile_cached = prof_hit;
  r.sigma_cached = sigma_hit;
  r.plan_cached = false;

  ObjectiveResult obj =
      run_objective_stage(*e.harness, e.prof, sm.result, query.objective, tail_cfg,
                          &r.diagnostics);
  r.sigma_searched = sm.result.sigma.sigma_yl;
  r.sigma_used = obj.sigma_used;
  r.refinements = obj.refinements;
  r.float_accuracy = e.harness->float_accuracy();
  r.validated_accuracy = obj.validated_accuracy;
  if (r.float_accuracy > 0.0) {
    if (obj.validated_accuracy >= 0.0)
      r.accuracy_loss = std::max(0.0, 1.0 - obj.validated_accuracy / r.float_accuracy);
    else if (sm.result.sigma.accuracy_at_sigma >= 0.0)
      r.accuracy_loss = std::max(0.0, 1.0 - sm.result.sigma.accuracy_at_sigma / r.float_accuracy);
  }
  r.alloc = std::move(obj.alloc);

  // Hardware cost attribution (hw/energy_model + hw/accelerator_sim).
  r.objective_cost = total_weighted_bits(query.objective.rho, r.alloc.bits);
  r.effective_bits = effective_bitwidth(query.objective.rho, r.alloc.bits);
  std::vector<std::int64_t> macs;
  macs.reserve(e.analyzed.size());
  for (int id : e.analyzed) macs.push_back(e.net->node(id).cost.macs);
  r.energy = cfg_.energy.network_energy(macs, r.alloc.bits, cfg_.weight_bits);
  const NetworkSimResult sim =
      simulate_network(cfg_.accelerator, *e.net, e.analyzed, r.alloc.bits, cfg_.weight_bits);
  r.sim_cycles = sim.total_cycles;
  r.sim_speedup = sim.speedup_vs_baseline;

  lk.lock();
  int evicted = 0;
  std::string victim;
  // Two racers compute identical answers; keep the first.
  if (e.plans.emplace(memo_key, r).second) {
    e.plan_order.push_back(memo_key);
    while (cfg_.max_plans_per_entry > 0 && e.plans.size() > cfg_.max_plans_per_entry) {
      victim = std::move(e.plan_order.front());
      e.plan_order.pop_front();
      e.plans.erase(victim);
      ++evicted;
    }
  }
  lk.unlock();
  if (evicted > 0) {
    serve_diag_.report(DiagSeverity::kInfo, PipelineStage::kServe, -1,
                       "plan memo for " + key.to_string() + " exceeded max_plans_per_entry (" +
                           std::to_string(cfg_.max_plans_per_entry) + "); evicted " +
                           std::to_string(evicted) + " oldest plan(s)",
                       "evicted queries recompute their allocation tail on next ask");
    bump("serve.plan.evictions", evicted);
  }
  charge_metrics();
  bump("serve.plan.misses");
  span.arg("plan_cached", 0);
  span.arg("refinements", r.refinements);
  std::lock_guard<std::mutex> slk(mu_);
  charge(slk);
  ++stats_.plan_misses;
  stats_.plan_evictions += evicted;
  return r;
}

LoweredPlan PlanService::lower_plan(const PlanKey& key, const PlanQuery& query) {
  LoweredPlan lp;
  lp.plan = plan(key, query);  // leaves the entry's profile (and network) ready
  Entry& e = entry(key);
  const Network* net = nullptr;
  const std::vector<int>* analyzed = nullptr;
  {
    // Immutable once profile_ready (guaranteed by the plan() above), so
    // the borrowed pointers stay valid outside the lock.
    std::lock_guard<std::mutex> lk(e.mu);
    net = e.net;
    analyzed = &e.analyzed;
  }
  QExecOptions qopts;
  qopts.weight_bits = cfg_.weight_bits;
  lp.qnet = std::make_shared<QuantizedNetwork>(*net, *analyzed, lp.plan.alloc.formats, qopts);
  CompileOptions copts;
  copts.weight_bits = cfg_.weight_bits;
  lp.compiled = std::make_shared<CompiledNetwork>(
      GraphCompiler(copts).compile(*net, *analyzed, lp.plan.alloc.formats));
  return lp;
}

PlanValidation PlanService::validate_plan(const PlanKey& key, const PlanQuery& query,
                                          double tolerance) {
  ScopedSpan span("serve.validate", "serve");
  PlanValidation v;
  LoweredPlan lp = lower_plan(key, query);
  v.plan = lp.plan;
  v.weight_bits = cfg_.weight_bits;
  v.tolerance = tolerance;
  v.float_accuracy = v.plan.float_accuracy;
  v.predicted_drop = v.plan.accuracy_loss;

  Entry& e = entry(key);
  const std::vector<int>* analyzed = nullptr;
  const AnalysisHarness* harness = nullptr;
  {
    // Immutable once profile_ready (guaranteed by lower_plan's plan()), so
    // the borrowed pointers stay valid outside the lock.
    std::lock_guard<std::mutex> lk(e.mu);
    analyzed = &e.analyzed;
    harness = e.harness.get();
  }

  // Emulated accuracy: the pipeline's validated measurement when its tail
  // ran validation; otherwise measure the kQuantize injection here so the
  // comparison always has both sides.
  if (v.plan.validated_accuracy >= 0.0) {
    v.emulated_accuracy = v.plan.validated_accuracy;
  } else {
    std::unordered_map<int, InjectionSpec> inject;
    for (std::size_t i = 0; i < analyzed->size() && i < v.plan.alloc.formats.size(); ++i)
      inject[(*analyzed)[i]] = InjectionSpec::quantize(v.plan.alloc.formats[i]);
    v.emulated_accuracy = harness->accuracy_with_injection(inject);
  }

  // Ground truth: the lowered integer network runs the SAME eval set
  // against the SAME references.
  QuantizedNetwork& qnet = *lp.qnet;
  v.lowered_layers = qnet.num_lowered();
  v.integer_accuracy =
      harness->accuracy_with_executor([&](const Tensor& x) { return qnet.forward(x); });
  v.act_saturated = qnet.act_saturated();

  // Compiled path: the fused artifact the inference server serves, run on
  // the SAME eval set — the plan is only conformant if the artifact that
  // actually answers requests also holds the budget.
  CompiledNetwork& cnet = *lp.compiled;
  v.compiled_accuracy =
      harness->accuracy_with_executor([&](const Tensor& x) { return cnet.forward(x); });
  v.fusion = cnet.coverage();

  if (v.float_accuracy > 0.0) {
    if (v.emulated_accuracy >= 0.0)
      v.emulated_drop = std::max(0.0, 1.0 - v.emulated_accuracy / v.float_accuracy);
    v.integer_drop = std::max(0.0, 1.0 - v.integer_accuracy / v.float_accuracy);
    v.compiled_drop = std::max(0.0, 1.0 - v.compiled_accuracy / v.float_accuracy);
  }
  v.within_budget = v.integer_drop <= query.accuracy_target + tolerance;
  v.compiled_within_budget = v.compiled_drop <= query.accuracy_target + tolerance;

  bump("serve.validate.calls");
  if (!v.within_budget || !v.compiled_within_budget) bump("serve.validate.violations");
  span.arg("lowered_layers", v.lowered_layers);
  span.arg("within_budget", v.within_budget ? 1 : 0);
  span.arg("compiled_within_budget", v.compiled_within_budget ? 1 : 0);
  return v;
}

const DiagnosticSink& PlanService::profile_diagnostics(const PlanKey& key) const {
  const Entry& e = entry(key);
  std::lock_guard<std::mutex> lk(e.mu);
  if (!e.profile_ready)
    throw std::runtime_error("plan service: profile not computed yet for " + key.to_string());
  return e.profile_diag;
}

std::int64_t PlanService::forward_count(const PlanKey& key) const {
  const Entry& e = entry(key);
  std::lock_guard<std::mutex> lk(e.mu);
  return e.harness != nullptr ? e.harness->forward_count() : 0;
}

const std::string& PlanService::network_name(const PlanKey& key) const {
  return entry(key).name;
}

CacheStats PlanService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

PlanStore PlanService::export_plans() const {
  PlanStore store;
  std::lock_guard<std::mutex> slk(mu_);
  for (const auto& [key, ep] : entries_) {
    Entry& e = *ep;
    std::lock_guard<std::mutex> lk(e.mu);
    for (const auto& [memo_key, r] : e.plans) {
      (void)memo_key;
      PlanRecord rec;
      rec.net_hash = key.net_hash;
      rec.config_digest = key.config_digest;
      rec.network = e.name;
      rec.accuracy_target = r.query.accuracy_target;
      rec.objective = r.query.objective.name;
      rec.solver = xi_solver_name(r.query.solver);
      rec.sigma_searched = r.sigma_searched;
      rec.sigma_used = r.sigma_used;
      rec.validated_accuracy = r.validated_accuracy;
      rec.accuracy_loss = r.accuracy_loss;
      rec.objective_cost = static_cast<double>(r.objective_cost);
      rec.refinements = r.refinements;
      rec.formats = r.alloc.formats;
      store.plans.push_back(std::move(rec));
    }
  }
  return store;
}

void PlanService::clear_plan_memo() {
  std::lock_guard<std::mutex> slk(mu_);
  for (auto& [key, ep] : entries_) {
    (void)key;
    std::lock_guard<std::mutex> lk(ep->mu);
    ep->plans.clear();
    ep->plan_order.clear();
  }
}

}  // namespace mupod
