// SweepEngine: concurrent Pareto sweeps over accuracy x objective grids.
//
// A sweep is the workload the paper's "multi-objective" framing implies
// but a single pipeline invocation cannot serve: the full tradeoff
// surface accuracy-constraint x hardware-objective for one network. The
// engine drives a PlanService so the grid costs 1 profile + M sigma
// searches + N*M allocation tails, and schedules those tails concurrently
// on the global parallel_for pool.
//
// Scheduling discipline: the profile and the per-target sigma searches
// are warmed *before* the fan-out, serially — they are internally
// parallel over the pool already, and running them inside a pool worker
// would degrade them to single-threaded (no nested parallelism). The
// tails are internally serial, so fanning them across the pool is pure
// win; each tail's nested measurement loops simply run inline.
#pragma once

#include <vector>

#include "serve/plan_service.hpp"

namespace mupod {

struct SweepSpec {
  // Grid axes: every accuracy target is combined with every objective.
  std::vector<double> accuracy_targets;
  std::vector<ObjectiveSpec> objectives;
  XiSolver solver = XiSolver::kSqp;
  // Fan the allocation tails across the thread pool; false runs them
  // serially (bench_sweep compares the two).
  bool concurrent = true;
};

struct SweepCell {
  PlanResult result;
  // True when the cell is on the Pareto front of its objective group:
  // no other cell with the same objective has (accuracy_loss <=, cost <=)
  // with at least one strict. Dominated cells are the ones a deployment
  // never picks — the sweep's headline output.
  bool pareto = false;
};

struct SweepResult {
  // Row-major over accuracy_targets x objectives.
  std::vector<SweepCell> cells;
  double profile_warm_ms = 0.0;  // ensure_profile (0-ish when cached)
  double sigma_warm_ms = 0.0;    // all ensure_sigma calls
  double tails_ms = 0.0;         // the fanned allocation tails
  double wall_ms = 0.0;
  int workers = 1;               // effective pool width during the sweep
};

// Marks the Pareto front per objective-name group over
// (accuracy_loss, objective_cost), both minimized. Exposed for tests.
void mark_pareto_front(std::vector<SweepCell>& cells);

// Runs the grid through the service. Throws what PlanService::plan throws
// (first failure wins; remaining cells still complete).
SweepResult run_sweep(PlanService& service, const PlanKey& key, const SweepSpec& spec);

}  // namespace mupod
