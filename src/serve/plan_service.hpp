// PlanService: the serving layer that amortizes the paper's expensive
// profiling pass across many precision-planning queries.
//
// The pipeline (src/core/pipeline.*) factors into three stages with very
// different costs and very different reuse scopes:
//
//   stage          cost (forwards)     reusable across
//   -------------  ------------------  --------------------------------
//   profile        layers x points     EVERY query on the same network
//   sigma search   ~log(1/tol) evals   every objective at one constraint
//   allocate+val.  1 + refinements     nothing (this IS the query)
//
// PlanService caches the first two at exactly those scopes, keyed
// content-addressed: a profile entry is identified by (network content
// hash, service config digest), so two identically-built networks share
// one entry and a *changed* network (different weights, topology, harness
// or profiler settings) can never be served stale measurements. Sigma
// searches are memoized per accuracy target inside each entry, and fully
// answered plans are memoized per (target, objective, solver) query.
// Answering N objectives x M constraints therefore costs 1 profile +
// M searches + N*M allocation tails instead of N*M full pipelines.
//
// Concurrency: all public methods are thread-safe. The profile and each
// sigma search run once per key — a once-per-key future discipline: the
// first caller computes (the computation is internally parallel on the
// global thread pool), concurrent callers for the same key block until
// the result is ready and then share it. The allocation tails are
// read-only over the cached state and may run genuinely concurrently;
// SweepEngine (sweep.hpp) exploits exactly that split.
//
// Answers are bit-identical to a cold run_pipeline with the same
// configuration: plan() executes the same run_objective_stage the
// pipeline does, on the same cached inputs (see test_plan_service.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compile/compiled_network.hpp"
#include "core/pipeline.hpp"
#include "hw/accelerator_sim.hpp"
#include "io/plan_io.hpp"
#include "io/profile_io.hpp"
#include "quant/qexec.hpp"

namespace mupod {

struct PlanServiceConfig {
  // Stage configuration shared by every query. Per-query knobs
  // (sigma.relative_accuracy_drop, allocator.solver) are overridden from
  // the PlanQuery; search_weights is forced off (the Sec. V-E weight
  // search mutates the network, which would break concurrent tails).
  PipelineConfig pipeline;
  // Hardware models used to attach objective costs to each plan.
  MacEnergyModel energy = MacEnergyModel::stripes_like();
  AcceleratorConfig accelerator = AcceleratorConfig::stripes_like();
  int weight_bits = 16;  // uniform weight width for the cost models
  // Upper bound on memoized plans kept per network entry; 0 = unlimited.
  // When the cap is exceeded the oldest memo is evicted (FIFO) and the
  // eviction is reported through service_diagnostics() — a long-running
  // serve process over a churning query stream stays bounded.
  std::size_t max_plans_per_entry = 0;
};

// Content-addressed cache key: (network content hash, config digest).
struct PlanKey {
  std::uint64_t net_hash = 0;
  std::uint64_t config_digest = 0;
  bool operator==(const PlanKey& o) const = default;
  bool operator<(const PlanKey& o) const {
    return net_hash != o.net_hash ? net_hash < o.net_hash : config_digest < o.config_digest;
  }
  std::string to_string() const;
};

struct PlanQuery {
  // Maximum tolerated relative top-1 accuracy drop (the paper's 1% / 5%).
  double accuracy_target = 0.01;
  ObjectiveSpec objective;
  XiSolver solver = XiSolver::kSqp;
};

struct PlanResult {
  PlanQuery query;
  PlanKey key;
  std::string network;
  BitwidthAllocation alloc;
  double sigma_searched = 0.0;  // Sec. V-C budget (pre-calibration)
  double sigma_used = 0.0;      // budget behind the final allocation
  int refinements = 0;
  double float_accuracy = 1.0;
  double validated_accuracy = -1.0;
  // Realized relative accuracy loss vs the float network (>= 0; falls back
  // to the sigma-search estimate when validation is disabled).
  double accuracy_loss = 0.0;
  // Hardware cost of the allocation:
  std::int64_t objective_cost = 0;  // sum(rho_K * B_K) under the query's rho
  double effective_bits = 0.0;      // sum(rho_K * B_K) / sum(rho_K)
  double energy = 0.0;              // MacEnergyModel, per image
  double sim_cycles = 0.0;          // accelerator_sim, per image
  double sim_speedup = 0.0;         // vs the 16-bit baseline
  // Diagnostics from this query's allocation tail only (profile/sigma
  // diagnostics live once per cache entry; see profile_diagnostics()).
  DiagnosticSink diagnostics;
  // Cache provenance of this answer.
  bool profile_cached = false;
  bool sigma_cached = false;
  bool plan_cached = false;
};

// Result of executing a plan on the INTEGER backend (quant/qexec) and
// comparing against what the emulated pipeline predicted. The committed
// conformance contract: integer_drop <= query.accuracy_target +
// tolerance, where tolerance defaults to kValidationTolerance and covers
// the emulated-vs-executed gap (integer MACs + requantized boundaries vs
// fp32 MACs on rounded inputs; see docs/method.md Sec. 12).
struct PlanValidation {
  PlanResult plan;           // the answer being validated (memoized as usual)
  int weight_bits = 16;      // uniform weight width the lowering used
  double tolerance = 0.0;    // budget slack this validation applied
  double float_accuracy = 1.0;
  double emulated_accuracy = -1.0;  // kQuantize-injection accuracy (fp32 MACs)
  double integer_accuracy = -1.0;   // integer-executed accuracy (qexec)
  double predicted_drop = 0.0;      // the plan's accuracy_loss estimate
  double emulated_drop = 0.0;       // measured, emulated path
  double integer_drop = 0.0;        // measured, integer path
  bool within_budget = false;       // integer_drop <= target + tolerance
  std::int64_t act_saturated = 0;   // activations clipped by quantize-on-load
  int lowered_layers = 0;           // layers actually executed in integer
  // Compiled path (compile/graph_compiler.hpp): the SAME plan run through
  // the fused artifact the inference server actually serves. Held to the
  // same budget; the fused region boundaries requantize once instead of
  // dequantize+requantize, so compiled_drop may differ from integer_drop
  // by at most the one-step boundary contract (docs/method.md Sec. 17).
  double compiled_accuracy = -1.0;
  double compiled_drop = 0.0;
  bool compiled_within_budget = false;
  FusionCoverage fusion;            // the compiled artifact's fusion report
};

// Committed emulated-vs-executed tolerance: the conformance battery
// (tests/test_plan_conformance.cpp) and sweep_tool --validate both hold
// integer_drop to accuracy_target + this.
inline constexpr double kValidationTolerance = 0.02;

// A plan answer lowered onto the integer backend (quant/qexec,
// cfg.weight_bits weights): the query's per-layer formats bound to the
// entry's registered Network as a ready-to-run QuantizedNetwork. The
// lowered network borrows that Network — which the caller already
// guarantees outlives the service — so the shared_ptr may be handed to
// long-lived consumers (the inference server holds one per serving
// snapshot and hot-swaps it on plan refresh).
struct LoweredPlan {
  PlanResult plan;
  std::shared_ptr<QuantizedNetwork> qnet;
  // The fused artifact for the same plan (graph compiler: norm folding,
  // ReLU epilogues, cross-layer requantize). This is what the inference
  // server serves; qnet stays the unfused reference executor.
  std::shared_ptr<CompiledNetwork> compiled;
};

// Charged-once accounting: each computed profile/sigma stage is charged to
// exactly ONE plan() query as its miss (the first query that consumes it,
// even when a warm-up computed it); every later consumer is a hit. So for
// an N-objective x M-target sweep: profile_misses == 1, profile_hits ==
// N*M - 1, sigma_misses == M, sigma_hits == M*(N-1) — regardless of
// whether the sweep pre-warmed the caches. Warm-up calls (ensure_profile /
// ensure_sigma) are tallied separately in the *_warm_* fields.
struct CacheStats {
  std::int64_t profile_misses = 0;  // plan() queries charged a profile computation
  std::int64_t profile_hits = 0;    // plan() queries served an already-charged profile
  std::int64_t sigma_misses = 0;
  std::int64_t sigma_hits = 0;
  std::int64_t plan_misses = 0;     // allocation tails actually run
  std::int64_t plan_hits = 0;       // answers replayed from the plan memo
  // Warm-up accounting: ensure_profile/ensure_sigma calls that computed
  // (miss) or found (hit) their stage, outside plan() charging.
  std::int64_t profile_warm_misses = 0;
  std::int64_t profile_warm_hits = 0;
  std::int64_t sigma_warm_misses = 0;
  std::int64_t sigma_warm_hits = 0;
  // Callers that blocked on another caller's in-flight computation of the
  // same stage (the once-per-key future discipline in action).
  std::int64_t profile_waits = 0;
  std::int64_t sigma_waits = 0;
  // Cache lifecycle (see service_diagnostics()).
  std::int64_t plan_evictions = 0;
  std::int64_t profile_loads = 0;          // bundles accepted by load_profile
  std::int64_t profile_load_rejected = 0;  // bundles rejected (hash mismatch etc.)
  std::int64_t plans_served() const { return plan_misses + plan_hits; }
};

// Digest of everything that invalidates cached measurements: harness,
// profiler, sigma-search and tail configuration plus the dataset identity.
std::uint64_t plan_config_digest(const PlanServiceConfig& cfg, const DatasetConfig& dataset);

class PlanService {
 public:
  explicit PlanService(PlanServiceConfig cfg = {});
  ~PlanService();
  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  const PlanServiceConfig& config() const { return cfg_; }

  // Registers a network for serving; `net` and `dataset` are borrowed and
  // must outlive the service. Returns the content-addressed key. A second
  // registration with an identical (content hash, config digest) shares
  // the existing entry — its profile is never measured twice.
  PlanKey register_network(const Network& net, std::vector<int> analyzed,
                           const SyntheticImageDataset& dataset);

  // Stage warm-up, usable independently of plan(). Both follow the
  // once-per-key future discipline described above and return true when
  // the result was already cached (or computed by a concurrent caller).
  bool ensure_profile(const PlanKey& key);
  bool ensure_sigma(const PlanKey& key, double accuracy_target);

  // Seeds the profile stage for `key` from a persisted bundle
  // (io/profile_io.hpp), skipping the lambda/theta fit measurements on the
  // next ensure_profile (the harness — activation caches — is still
  // built). The bundle must carry the network content hash of the profiled
  // network and it must match the key's: a mismatching or hashless bundle
  // is REJECTED (returns false) and the rejection is reported through
  // service_diagnostics() — a stale profile must never be served silently.
  // Also returns false (benignly) when the profile was already measured.
  bool load_profile(const PlanKey& key, const ProfileBundle& bundle);

  // The inverse of load_profile: packages the cached profile stage as a
  // persistable/replicable bundle carrying the network content hash (so a
  // receiving service's load_profile can verify provenance). Requires the
  // profile to be ready (ensure_profile first); throws otherwise. The
  // sigma fields are left zero — seeding only consumes models/ranges.
  ProfileBundle export_profile(const PlanKey& key) const;

  // Answers one query: profile and sigma stages from cache (computing them
  // on first need), then the cheap allocate+validate tail. Thread-safe.
  PlanResult plan(const PlanKey& key, const PlanQuery& query);

  // plan() plus lowering: answers the query and binds the resulting
  // formats to the registered network on the integer backend. Thread-safe;
  // the plan itself is memoized as usual, the lowering is built fresh per
  // call (each consumer owns its snapshot). validate_plan executes through
  // this; InferenceServer::install_plan serves from it.
  LoweredPlan lower_plan(const PlanKey& key, const PlanQuery& query);

  // plan() plus ground truth: lowers the answer onto the integer backend
  // (quant/qexec, cfg.weight_bits weights), runs the eval set through the
  // integer-executed network on the entry's own harness, and reports the
  // actual vs predicted accuracy drop. Thread-safe; the plan itself is
  // memoized as usual (the integer execution is not — it IS the check).
  PlanValidation validate_plan(const PlanKey& key, const PlanQuery& query,
                               double tolerance = kValidationTolerance);

  // Cached per-entry state, for reporting. Valid after ensure_profile.
  const DiagnosticSink& profile_diagnostics(const PlanKey& key) const;
  std::int64_t forward_count(const PlanKey& key) const;
  const std::string& network_name(const PlanKey& key) const;

  CacheStats stats() const;

  // Service-level cache-lifecycle diagnostics (PipelineStage::kServe):
  // rejected profile loads, plan-memo evictions. Thread-safe to read via
  // snapshot(); distinct from the per-entry profile_diagnostics().
  const DiagnosticSink& service_diagnostics() const { return serve_diag_; }

  // Every memoized plan as a persistable store (io/plan_io.hpp).
  PlanStore export_plans() const;

  // Drops only the per-query plan memo, keeping profiles and sigma
  // searches — used to re-time allocation tails (bench_sweep).
  void clear_plan_memo();

 private:
  struct SigmaMemo;
  struct Entry;

  Entry& entry(const PlanKey& key);
  const Entry& entry(const PlanKey& key) const;
  // `waited`, when given, is set when this caller blocked on another
  // caller's in-flight computation of the same stage.
  bool ensure_profile_locked(Entry& e, std::unique_lock<std::mutex>& lk, bool* waited = nullptr);
  bool ensure_sigma_locked(Entry& e, std::unique_lock<std::mutex>& lk, double accuracy_target,
                           bool* waited = nullptr);

  PlanServiceConfig cfg_;
  mutable std::mutex mu_;  // guards entries_ map shape and stats_
  std::map<PlanKey, std::unique_ptr<Entry>> entries_;
  CacheStats stats_;
  DiagnosticSink serve_diag_;  // internally synchronized
};

}  // namespace mupod
