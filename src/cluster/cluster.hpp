// Sharded plan-serving cluster (in-process simulation).
//
// Scales PlanService past one process: a ClusterController fronts N
// WorkerNodes, each owning its own executor thread pool, its own
// PlanService (content-addressed profile/sigma/plan caches), and a
// checksum-verified node-local plan cache. The robustness contract is the
// headline: under injected node kills, slowdowns, and poisoned
// (bit-flipped) cache entries, the cluster must converge to plans
// byte-identical to a single-process PlanService run — degraded latency
// is acceptable, degraded answers are not (tests/test_cluster.cpp holds
// the line under ASan and TSan).
//
// Routing / resilience policy:
//  * SHARDING: plan queries are sharded by consistent hashing on the
//    query's network content hash — cfg.virtual_nodes ring points per
//    node, cfg.replicas distinct nodes clockwise from the key's point
//    form the replica set. All profile/sigma/plan reuse for one network
//    therefore concentrates on the same few nodes.
//  * SELECTION: among replicas whose circuit breaker admits, the node
//    with the lowest (load + 1) / weight wins (weighted least-loaded;
//    load = queued + in-flight).
//  * CIRCUIT BREAKERS: one per node (cluster/breaker.hpp). Timeouts and
//    errors trip it open; recovery is probe-based (half-open admits
//    exactly one probe).
//  * RETRIES: deadline-bounded attempts with exponential backoff and
//    seeded jitter. A retry never re-waits on a node that already has an
//    unresolved dispatch for this query.
//  * HEDGING: when the primary dispatch has not answered within
//    hedge_delay_us, the query is hedged to a second admitted replica;
//    first response wins, the loser is cancelled (its node observes the
//    settled query state and discards the work).
//  * REPLICATION: profile bundles flow between replicas as SealedProfile
//    (bundle + content checksum). A bit-flipped bundle is rejected at the
//    cluster seam; a stale one is rejected by PlanService::load_profile's
//    network-hash check. A rejected replica simply re-measures.
//
// Failure injection: each node consults FaultInjector point
// "cluster.node<i>" per dispatch — kDelay stalls it, kDrop makes the node
// unresponsive for that dispatch, and the data kinds bit-flip the node's
// cached entry for the query (which the checksum then catches). kill_node
// parks the executor threads wholesale. Every breaker transition, retry,
// hedge, and rejection flows through src/obs counters (cluster.* —
// docs/method.md Sec. 13) and the controller's DiagnosticSink.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/breaker.hpp"
#include "core/fault.hpp"
#include "io/profile_io.hpp"
#include "obs/trace.hpp"
#include "serve/plan_service.hpp"

namespace mupod {

// One steady-clock timeline shared by every breaker and deadline in the
// process (microseconds since the first call). Aliases of core/clock.hpp's
// mono_origin/mono_now_us, kept so cluster call sites read in cluster
// vocabulary; the inference server (src/infer) shares the same origin.
std::chrono::steady_clock::time_point cluster_origin();
std::int64_t cluster_now_us();

struct ClusterConfig {
  int nodes = 3;
  int replicas = 2;       // replica set size on the hash ring
  int virtual_nodes = 32; // ring points per node
  int node_threads = 2;   // executor threads per worker node
  // Per-dispatch patience: a node that has not answered within this is
  // recorded as a breaker failure and the query moves on.
  std::int64_t attempt_timeout_us = 500'000;
  // Straggler threshold: hedge to a second replica after this long.
  std::int64_t hedge_delay_us = 20'000;
  bool hedging = true;
  int max_attempts = 4;
  std::int64_t deadline_us = 5'000'000;  // overall per-query deadline
  std::int64_t backoff_base_us = 500;    // doubled per attempt
  double backoff_jitter = 0.5;           // uniform [0, jitter) multiplier
  std::uint64_t seed = 0x5eedULL;        // jitter determinism
  BreakerConfig breaker;
  // Per-node capacity weights for least-loaded selection; empty = all 1.
  std::vector<double> node_weights;
};

// What a node posts back for a dispatched query.
struct ClusterResponse {
  bool ok = false;
  PlanResult plan;
  std::string error;
  int node = -1;
  bool from_hedge = false;
};

// Shared first-response-wins slot for one query; every dispatch of the
// query (primary, hedges, retries) references the same state.
struct ClusterQueryState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::atomic<bool> cancelled{false};
  ClusterResponse resp;

  bool is_done() {
    std::lock_guard<std::mutex> lk(mu);
    return done;
  }
  bool finished() {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    return is_done();
  }
  // Returns done; wakes early when a (late) dispatch settles the query.
  bool wait_until_us(std::int64_t deadline_us) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait_until(lk, cluster_origin() + std::chrono::microseconds(deadline_us),
                  [&] { return done; });
    return done;
  }
};

// One dispatch of a query to one node.
struct ClusterDispatch {
  std::shared_ptr<ClusterQueryState> q;
  PlanKey key;
  PlanQuery query;
  int node = -1;
  int attempt = 0;     // 1-based attempt round that issued this dispatch
  // Child context of the query's trace, carried across the node-queue hop;
  // the executing worker installs it so its attempt span (and the
  // PlanService stage spans under it) correlate to the query.
  TraceContext ctx;
  bool probe = false;  // admitted as the node's half-open probe
  bool hedge = false;
  std::atomic<bool> completed{false};
  // First resolver (node on completion, router on timeout) does the
  // breaker accounting; the other side skips.
  std::atomic<bool> breaker_resolved{false};
};

struct ClusterQueryResult {
  bool ok = false;
  PlanResult plan;
  std::string error;   // the explicit diagnosis when !ok
  int node = -1;       // responding node
  int attempts = 0;    // dispatch rounds (retries = attempts - 1)
  int hedges = 0;      // hedge dispatches issued
  bool hedge_won = false;
  int timeouts = 0;    // dispatches abandoned at attempt_timeout
  int rejected = 0;    // breaker fast-fails observed while routing
  double wall_ms = 0.0;
  // Correlation id of the query's trace (0 when tracing was off): joins
  // this result to its Chrome-trace lane and flight-recorder record.
  std::uint64_t trace_id = 0;
};

struct NodeStats {
  int id = -1;
  bool killed = false;
  int load = 0;
  std::int64_t served = 0;        // responses posted (won or lost)
  std::int64_t errors = 0;        // PlanService failures surfaced
  std::int64_t hedge_losses = 0;  // completed after another replica won
  std::int64_t cache_hits = 0;    // node-local verified cache
  std::int64_t cache_misses = 0;
  std::int64_t poison_injected = 0;  // data-fault bit flips applied
  std::int64_t poison_rejected = 0;  // checksum mismatches caught
  std::int64_t bundles_accepted = 0;
  std::int64_t bundles_rejected = 0;  // sealed-checksum mismatches
  std::int64_t dropped = 0;  // kDrop faults + killed-before-reply
  std::int64_t delayed = 0;  // kDelay faults honored
  BreakerCounters breaker;
  BreakerState breaker_state = BreakerState::kClosed;
};

struct ClusterStats {
  std::int64_t queries_ok = 0;
  std::int64_t queries_failed = 0;
  std::int64_t attempts = 0;
  std::int64_t retries = 0;
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t timeouts = 0;
  std::int64_t breaker_rejections = 0;
  std::vector<NodeStats> nodes;
};

// A profile bundle sealed for replication: checksum over the serialized
// bundle bytes, verified at the receiving node before load_profile.
struct SealedProfile {
  ProfileBundle bundle;
  std::uint64_t checksum = 0;
};
SealedProfile seal_profile(const ProfileBundle& bundle);

// Content checksum guarding node-local cached plans against bit flips.
std::uint64_t plan_result_checksum(const PlanResult& r);
// Node-cache key for one (network, query) pair.
std::string cluster_query_key(const PlanKey& key, const PlanQuery& query);

class ClusterController;

// One worker node: its own executor threads, its own PlanService, and a
// checksum-verified plan cache in front of it. Nodes never talk to each
// other — replication and routing are the controller's job.
class WorkerNode {
 public:
  WorkerNode(int id, const ClusterConfig& cfg, const PlanServiceConfig& service_cfg,
             FaultInjector* faults, CircuitBreaker* breaker, DiagnosticSink* diag);
  ~WorkerNode();
  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  int id() const { return id_; }
  // FaultInjector point this node consults per dispatch: "cluster.node<i>".
  const std::string& fault_point() const { return point_; }
  PlanService& service() { return service_; }

  PlanKey register_network(const Network& net, std::vector<int> analyzed,
                           const SyntheticImageDataset& dataset);

  void start();
  void stop();
  // Unresponsive-node simulation: queued and in-flight dispatches are
  // never answered (a crashed process, not a clean error). revive() brings
  // the executors back; stale dispatches whose queries have settled are
  // discarded on pop.
  void kill();
  void revive();
  bool killed() const { return killed_.load(std::memory_order_relaxed); }

  void submit(std::shared_ptr<ClusterDispatch> d);
  // Weighted-least-loaded input: queued + in-flight dispatches.
  int load() const;

  // Flips one bit in the node-local cached plan for (key, query); returns
  // false when nothing is cached. The checksum catches it on next read.
  bool poison_cache(const PlanKey& key, const PlanQuery& query);
  // Verifies the sealed checksum, then PlanService::load_profile (which
  // re-checks the network hash). False = rejected or already measured.
  bool seed_profile(const PlanKey& key, const SealedProfile& sealed);

  NodeStats stats() const;

 private:
  struct CachedPlan {
    PlanResult plan;
    std::uint64_t checksum = 0;
  };

  void run_worker();
  void execute(const std::shared_ptr<ClusterDispatch>& d);

  const int id_;
  const std::string point_;
  ClusterConfig cfg_;
  PlanService service_;
  FaultInjector* faults_;      // borrowed from the controller; may be null
  CircuitBreaker* breaker_;    // borrowed from the controller
  DiagnosticSink* diag_;       // borrowed from the controller; may be null

  mutable std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<std::shared_ptr<ClusterDispatch>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;  // guarded by qmu_
  std::atomic<bool> killed_{false};
  std::atomic<int> inflight_{0};

  mutable std::mutex cache_mu_;
  std::map<std::string, CachedPlan> cache_;

  std::atomic<std::int64_t> served_{0}, errors_{0}, hedge_losses_{0};
  std::atomic<std::int64_t> cache_hits_{0}, cache_misses_{0};
  std::atomic<std::int64_t> poison_injected_{0}, poison_rejected_{0};
  std::atomic<std::int64_t> bundles_accepted_{0}, bundles_rejected_{0};
  std::atomic<std::int64_t> dropped_{0}, delayed_{0};
};

class ClusterController {
 public:
  ClusterController(ClusterConfig cfg, PlanServiceConfig service_cfg);
  ~ClusterController();
  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  const ClusterConfig& config() const { return cfg_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  WorkerNode& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  CircuitBreaker& breaker(int id) { return *breakers_.at(static_cast<std::size_t>(id)); }
  FaultInjector& faults() { return faults_; }
  // Breaker transitions, poison detections, replication rejections, and
  // failed queries, attributed under PipelineStage::kServe.
  const DiagnosticSink& diagnostics() const { return diag_; }

  // Registers on every node (identical content-addressed key everywhere).
  PlanKey register_network(const Network& net, std::vector<int> analyzed,
                           const SyntheticImageDataset& dataset);

  // Replica set for a key hash: cfg.replicas distinct nodes clockwise on
  // the ring. Deterministic for a given (nodes, virtual_nodes).
  std::vector<int> replicas_for_hash(std::uint64_t h) const;

  // Routes, retries, hedges; never throws for serving failures — a query
  // either succeeds or returns ok=false with an explicit diagnosis.
  ClusterQueryResult plan(const PlanKey& key, const PlanQuery& query);
  ClusterQueryResult plan(const PlanKey& key, const PlanQuery& query, std::int64_t deadline_us);

  // Warms the profile on the key's primary replica and replicates the
  // sealed bundle to the other replicas. Returns bundles accepted.
  int replicate_profile(const PlanKey& key);
  // Offers a sealed bundle to every replica of the key (chaos hook for
  // corrupt-in-transit scenarios). Returns bundles accepted.
  int seed_profile(const PlanKey& key, const SealedProfile& sealed);

  void kill_node(int id);
  void revive_node(int id);
  bool poison_cache(int id, const PlanKey& key, const PlanQuery& query);

  // Lazily resolves parked dispatches whose attempt deadline has passed
  // (e.g. a hedge won and the straggler never answered): each becomes a
  // breaker failure for its node unless the node completed it meanwhile.
  // plan() sweeps on entry; chaos tests/benches may call it directly to
  // observe breaker trips without issuing further queries.
  void sweep_pending();

  ClusterStats stats() const;

 private:
  struct Candidate {
    int node = -1;
    bool probe = false;
  };
  // Weighted least-loaded admitted replica, excluding `exclude` node ids;
  // counts breaker fast-fails into *rejected. node = -1 when none admit.
  Candidate pick(const std::vector<int>& replicas, const std::vector<int>& exclude,
                 std::int64_t now_us, int* rejected);
  double weight(int id) const;
  void sweep_pending(std::int64_t now_us);

  ClusterConfig cfg_;
  FaultInjector faults_;
  DiagnosticSink diag_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<WorkerNode>> nodes_;
  std::vector<std::pair<std::uint64_t, int>> ring_;  // sorted (point, node)

  // Dispatches whose query settled before they answered, parked with their
  // attempt deadline until sweep_pending() resolves or discards them.
  std::mutex pending_mu_;
  std::vector<std::pair<std::shared_ptr<ClusterDispatch>, std::int64_t>> pending_;

  std::atomic<std::uint64_t> query_seq_{0};
  std::atomic<std::int64_t> queries_ok_{0}, queries_failed_{0};
  std::atomic<std::int64_t> attempts_{0}, retries_{0};
  std::atomic<std::int64_t> hedges_{0}, hedge_wins_{0};
  std::atomic<std::int64_t> timeouts_{0}, breaker_rejections_{0};
};

}  // namespace mupod
