// Per-node circuit breaker: closed -> open -> half-open with probe-based
// recovery.
//
// The cluster router consults one breaker per worker node before
// dispatching. A node that times out or errors `failure_threshold` times
// in a row trips its breaker OPEN: queries fast-fail over to the other
// replicas instead of each paying the attempt timeout against a dead
// node. After `cooldown_us` the breaker admits exactly ONE probe request
// (HALF-OPEN); the probe's outcome decides — success (after
// `probe_successes` probes) fully closes the breaker, failure re-opens it
// for another cooldown. While a probe is in flight every other caller is
// rejected, so a recovering node is never stampeded.
//
// Time is an explicit microsecond timestamp supplied by the caller, never
// read from a real clock here — the state machine is testable with a fake
// clock (tests/test_cluster.cpp walks every transition without sleeping)
// and the cluster uses one steady-clock origin for all breakers.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

namespace mupod {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState s);

struct BreakerConfig {
  int failure_threshold = 3;           // consecutive failures to trip open
  std::int64_t cooldown_us = 100'000;  // open -> half-open (probe) delay
  int probe_successes = 1;             // successful probes to fully close
};

// What admit() decided for this call.
enum class BreakerDecision {
  kAdmit,   // closed: proceed normally
  kProbe,   // half-open: proceed, and report the outcome as a probe
  kReject,  // open (or probe already in flight): fast-fail
};

struct BreakerCounters {
  std::int64_t opened = 0;    // closed -> open trips
  std::int64_t reopened = 0;  // half-open probe failures
  std::int64_t closed = 0;    // half-open -> closed recoveries
  std::int64_t probes = 0;    // probe admissions
  std::int64_t rejected = 0;  // fast-failed admission attempts
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig cfg = {});

  // Admission decision at time `now_us`. kProbe admissions MUST be
  // resolved by a later record_success/record_failure with probe=true
  // (whichever side observes the outcome first — the node on completion
  // or the router on timeout).
  BreakerDecision admit(std::int64_t now_us);

  void record_success(std::int64_t now_us, bool probe = false);
  void record_failure(std::int64_t now_us, bool probe = false);

  // The state an admit() at `now_us` would act from (an elapsed cooldown
  // reads as half-open even before the transition is taken).
  BreakerState state(std::int64_t now_us) const;

  BreakerCounters counters() const;

  // Observer for transitions (metrics / diagnostics); called outside the
  // internal lock with (from, to, now_us). Install before use.
  void on_transition(std::function<void(BreakerState, BreakerState, std::int64_t)> fn);

 private:
  void transition(BreakerState to, std::int64_t now_us);  // requires mu_ held

  BreakerConfig cfg_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  bool probe_in_flight_ = false;
  std::int64_t open_until_us_ = 0;
  BreakerCounters counters_;
  std::function<void(BreakerState, BreakerState, std::int64_t)> on_transition_;
};

}  // namespace mupod
