#include "cluster/cluster.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <utility>

#include "core/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace mupod {

namespace {

// FNV-1a, same scheme as the PlanService content addressing: collisions
// only risk a gratuitous recompute (a checksum "mismatch" cannot happen by
// collision — only a collision on a *corrupted* value could mask one, at
// 2^-64 odds per flip).
struct Fnv1a {
  std::uint64_t h = 14695981039346656037ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

void bump(const char* name, std::int64_t n = 1) {
  if (metrics_enabled()) metrics().counter(name).add(n);
}

std::uint64_t splitmix(std::uint64_t* s) {
  std::uint64_t z = (*s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double u01(std::uint64_t* s) { return static_cast<double>(splitmix(s) >> 11) * 0x1.0p-53; }

}  // namespace

std::chrono::steady_clock::time_point cluster_origin() { return mono_origin(); }

std::int64_t cluster_now_us() { return mono_now_us(); }

SealedProfile seal_profile(const ProfileBundle& bundle) {
  SealedProfile s;
  s.bundle = bundle;
  Fnv1a f;
  f.str(serialize_profile(bundle));
  s.checksum = f.h;
  return s;
}

std::uint64_t plan_result_checksum(const PlanResult& r) {
  Fnv1a f;
  f.u64(r.key.net_hash);
  f.u64(r.key.config_digest);
  f.d(r.query.accuracy_target);
  f.i32(static_cast<int>(r.query.solver));
  f.str(r.query.objective.name);
  for (std::int64_t rho : r.query.objective.rho) f.i64(rho);
  for (int b : r.alloc.bits) f.i32(b);
  for (double x : r.alloc.xi) f.d(x);
  for (double d : r.alloc.deltas) f.d(d);
  for (const FixedPointFormat& fmt : r.alloc.formats) {
    f.i32(fmt.integer_bits);
    f.i32(fmt.fraction_bits);
  }
  f.d(r.sigma_searched);
  f.d(r.sigma_used);
  f.i32(r.refinements);
  f.d(r.float_accuracy);
  f.d(r.validated_accuracy);
  f.d(r.accuracy_loss);
  f.i64(r.objective_cost);
  f.d(r.effective_bits);
  f.d(r.energy);
  f.d(r.sim_cycles);
  f.d(r.sim_speedup);
  return f.h;
}

std::string cluster_query_key(const PlanKey& key, const PlanQuery& query) {
  Fnv1a rho;
  for (std::int64_t r : query.objective.rho) rho.i64(r);
  std::ostringstream os;
  os << key.to_string() << '|' << std::hex
     << std::bit_cast<std::uint64_t>(query.accuracy_target) << '|'
     << static_cast<int>(query.solver) << '|' << query.objective.name << '|' << rho.h;
  return os.str();
}

// --- WorkerNode ------------------------------------------------------------

WorkerNode::WorkerNode(int id, const ClusterConfig& cfg, const PlanServiceConfig& service_cfg,
                       FaultInjector* faults, CircuitBreaker* breaker, DiagnosticSink* diag)
    : id_(id),
      point_("cluster.node" + std::to_string(id)),
      cfg_(cfg),
      service_(service_cfg),
      faults_(faults),
      breaker_(breaker),
      diag_(diag) {}

WorkerNode::~WorkerNode() { stop(); }

PlanKey WorkerNode::register_network(const Network& net, std::vector<int> analyzed,
                                     const SyntheticImageDataset& dataset) {
  return service_.register_network(net, std::move(analyzed), dataset);
}

void WorkerNode::start() {
  std::lock_guard<std::mutex> lk(qmu_);
  if (!threads_.empty()) return;
  const int n = std::max(cfg_.node_threads, 1);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads_.emplace_back([this] { run_worker(); });
}

void WorkerNode::stop() {
  {
    std::lock_guard<std::mutex> lk(qmu_);
    if (threads_.empty()) return;
    stop_ = true;
  }
  qcv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  stop_ = false;
}

void WorkerNode::kill() {
  killed_.store(true, std::memory_order_relaxed);
  qcv_.notify_all();
}

void WorkerNode::revive() {
  killed_.store(false, std::memory_order_relaxed);
  qcv_.notify_all();
}

void WorkerNode::submit(std::shared_ptr<ClusterDispatch> d) {
  {
    std::lock_guard<std::mutex> lk(qmu_);
    queue_.push_back(std::move(d));
  }
  qcv_.notify_one();
}

int WorkerNode::load() const {
  int queued;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    queued = static_cast<int>(queue_.size());
  }
  return queued + inflight_.load(std::memory_order_relaxed);
}

void WorkerNode::run_worker() {
  for (;;) {
    std::shared_ptr<ClusterDispatch> d;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      qcv_.wait(lk, [&] {
        return stop_ || (!queue_.empty() && !killed_.load(std::memory_order_relaxed));
      });
      if (stop_) return;
      d = std::move(queue_.front());
      queue_.pop_front();
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    execute(d);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool WorkerNode::poison_cache(const PlanKey& key, const PlanQuery& query) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  auto it = cache_.find(cluster_query_key(key, query));
  if (it == cache_.end()) return false;
  PlanResult& p = it->second.plan;
  // One flipped bit, as a cosmic ray (or a bad DIMM) would deliver it. The
  // stored checksum is left stale on purpose: detection is the contract.
  if (!p.alloc.formats.empty())
    p.alloc.formats[0].fraction_bits ^= 1;
  else
    p.objective_cost ^= 1;
  poison_injected_.fetch_add(1, std::memory_order_relaxed);
  bump("cluster.poison.injected");
  return true;
}

bool WorkerNode::seed_profile(const PlanKey& key, const SealedProfile& sealed) {
  const SealedProfile check = seal_profile(sealed.bundle);
  if (check.checksum != sealed.checksum) {
    bundles_rejected_.fetch_add(1, std::memory_order_relaxed);
    bump("cluster.replicate.rejected");
    diag_report(diag_, DiagSeverity::kError, PipelineStage::kServe, -1,
                "node " + std::to_string(id_) + " rejected a replicated profile bundle for " +
                    key.to_string() + ": sealed checksum mismatch (corrupted in transit)",
                "bundle discarded; the profile will be re-measured locally");
    return false;
  }
  // load_profile re-verifies the network content hash and rejects stale or
  // mismatched bundles with its own diagnostics.
  const bool ok = service_.load_profile(key, sealed.bundle);
  if (ok) {
    bundles_accepted_.fetch_add(1, std::memory_order_relaxed);
    bump("cluster.replicate.accepted");
  }
  return ok;
}

void WorkerNode::execute(const std::shared_ptr<ClusterDispatch>& d) {
  if (d->q->finished()) return;  // settled (or cancelled) while queued

  // Install the dispatch's trace context for the duration: the attempt
  // span becomes a child of the query, and every PlanService stage span
  // under service_.plan() chains off the attempt automatically.
  TraceContextScope tscope(d->ctx);
  ScopedSpan attempt_span("cluster.attempt", "cluster");
  attempt_span.arg("node", id_);
  attempt_span.arg("attempt", d->attempt);
  attempt_span.arg("hedge", d->hedge ? 1 : 0);
  trace_flow('t', "cluster.query", d->ctx);

  if (faults_ != nullptr) {
    if (auto a = faults_->check(point_)) {
      switch (a->kind) {
        case FaultKind::kDrop:
          // Unresponsive node: no reply ever leaves. The router's attempt
          // timeout resolves this dispatch as a breaker failure.
          dropped_.fetch_add(1, std::memory_order_relaxed);
          bump("cluster.node.dropped");
          return;
        case FaultKind::kDelay:
          delayed_.fetch_add(1, std::memory_order_relaxed);
          bump("cluster.node.delayed");
          std::this_thread::sleep_for(std::chrono::microseconds(a->delay_us));
          break;
        default:
          // Data fault: bit-flip this query's cached entry (when present);
          // the checksum verification below must catch it.
          poison_cache(d->key, d->query);
          break;
      }
    }
  }

  ClusterResponse resp;
  resp.node = id_;
  resp.from_hedge = d->hedge;
  const std::string ckey = cluster_query_key(d->key, d->query);
  bool poison_detected = false;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    auto it = cache_.find(ckey);
    if (it != cache_.end()) {
      if (plan_result_checksum(it->second.plan) == it->second.checksum) {
        resp.plan = it->second.plan;
        resp.ok = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // A corrupted plan must never reach a device: drop the entry and
        // recompute from the (content-addressed, deterministic) service.
        cache_.erase(it);
        poison_rejected_.fetch_add(1, std::memory_order_relaxed);
        poison_detected = true;
      }
    }
  }
  if (poison_detected) {
    bump("cluster.poison.detected");
    diag_report(diag_, DiagSeverity::kWarning, PipelineStage::kServe, -1,
                "node " + std::to_string(id_) + " caught a corrupted cached plan for " + ckey +
                    " (checksum mismatch)",
                "entry discarded; plan recomputed from the service stages");
  }
  if (!resp.ok) {
    try {
      resp.plan = service_.plan(d->key, d->query);
      resp.ok = true;
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      bump("cluster.cache.misses");
      CachedPlan c;
      c.plan = resp.plan;
      c.checksum = plan_result_checksum(c.plan);
      std::lock_guard<std::mutex> lk(cache_mu_);
      cache_.insert_or_assign(ckey, std::move(c));
    } catch (const std::exception& ex) {
      resp.ok = false;
      resp.error = "node " + std::to_string(id_) + ": " + ex.what();
    }
  } else {
    bump("cluster.cache.hits");
  }

  if (killed_.load(std::memory_order_relaxed)) {
    // Crashed before the reply left: from the router's side this dispatch
    // is indistinguishable from a drop.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    bump("cluster.node.dropped");
    return;
  }

  const bool ok = resp.ok;
  bool posted = false;
  bool lost_to_winner = false;
  {
    std::lock_guard<std::mutex> lk(d->q->mu);
    if (!d->q->done && !d->q->cancelled.load(std::memory_order_relaxed)) {
      d->q->resp = std::move(resp);
      d->q->done = true;
      posted = true;
    } else {
      lost_to_winner = d->q->done;
    }
  }
  if (posted) d->q->cv.notify_all();
  if (!posted && lost_to_winner && ok) {
    hedge_losses_.fetch_add(1, std::memory_order_relaxed);
    bump("cluster.hedge_losses");
    trace_async('n', "cluster.hedge_lost", d->ctx, "node", id_);
  }
  d->completed.store(true, std::memory_order_release);
  if (!d->breaker_resolved.exchange(true, std::memory_order_acq_rel)) {
    const std::int64_t now = cluster_now_us();
    if (ok)
      breaker_->record_success(now, d->probe);
    else
      breaker_->record_failure(now, d->probe);
  }
  if (ok)
    served_.fetch_add(1, std::memory_order_relaxed);
  else
    errors_.fetch_add(1, std::memory_order_relaxed);
}

NodeStats WorkerNode::stats() const {
  NodeStats s;
  s.id = id_;
  s.killed = killed_.load(std::memory_order_relaxed);
  s.load = load();
  s.served = served_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.hedge_losses = hedge_losses_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.poison_injected = poison_injected_.load(std::memory_order_relaxed);
  s.poison_rejected = poison_rejected_.load(std::memory_order_relaxed);
  s.bundles_accepted = bundles_accepted_.load(std::memory_order_relaxed);
  s.bundles_rejected = bundles_rejected_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.delayed = delayed_.load(std::memory_order_relaxed);
  if (breaker_ != nullptr) {
    s.breaker = breaker_->counters();
    s.breaker_state = breaker_->state(cluster_now_us());
  }
  return s;
}

// --- ClusterController -----------------------------------------------------

ClusterController::ClusterController(ClusterConfig cfg, PlanServiceConfig service_cfg)
    : cfg_(std::move(cfg)) {
  cfg_.nodes = std::max(cfg_.nodes, 1);
  cfg_.replicas = std::clamp(cfg_.replicas, 1, cfg_.nodes);
  cfg_.virtual_nodes = std::max(cfg_.virtual_nodes, 1);
  cfg_.max_attempts = std::max(cfg_.max_attempts, 1);

  breakers_.reserve(static_cast<std::size_t>(cfg_.nodes));
  nodes_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int i = 0; i < cfg_.nodes; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(cfg_.breaker));
    breakers_.back()->on_transition([this, i](BreakerState from, BreakerState to, std::int64_t) {
      if (to == BreakerState::kOpen) {
        bump(from == BreakerState::kHalfOpen ? "cluster.breaker.reopened"
                                             : "cluster.breaker.opened");
        diag_.report(DiagSeverity::kWarning, PipelineStage::kServe, -1,
                     "node " + std::to_string(i) + " circuit breaker " +
                         breaker_state_name(from) + " -> open",
                     "queries fast-fail over to the other replicas until a probe succeeds");
        // A breaker opening is an incident by definition: capture the
        // recent request records + correlated spans while they are hot.
        if (flight_recording_enabled())
          flight_recorder().incident("breaker_open",
                                     "node " + std::to_string(i) + " circuit breaker " +
                                         breaker_state_name(from) + " -> open");
      } else if (to == BreakerState::kClosed) {
        bump("cluster.breaker.closed");
        diag_.report(DiagSeverity::kInfo, PipelineStage::kServe, -1,
                     "node " + std::to_string(i) + " circuit breaker closed (probe succeeded)",
                     "node back in rotation");
      } else {
        bump("cluster.breaker.half_open");
      }
    });
  }
  for (int i = 0; i < cfg_.nodes; ++i)
    nodes_.push_back(std::make_unique<WorkerNode>(i, cfg_, service_cfg, &faults_,
                                                  breakers_[static_cast<std::size_t>(i)].get(),
                                                  &diag_));

  // Consistent-hash ring: virtual_nodes points per node, FNV over
  // (node, replica-point). Fixed for the controller's lifetime.
  ring_.reserve(static_cast<std::size_t>(cfg_.nodes * cfg_.virtual_nodes));
  for (int i = 0; i < cfg_.nodes; ++i) {
    for (int v = 0; v < cfg_.virtual_nodes; ++v) {
      Fnv1a f;
      f.i32(i);
      f.i32(v);
      ring_.emplace_back(f.h, i);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  for (auto& n : nodes_) n->start();
}

ClusterController::~ClusterController() {
  for (auto& n : nodes_) n->stop();
}

PlanKey ClusterController::register_network(const Network& net, std::vector<int> analyzed,
                                            const SyntheticImageDataset& dataset) {
  PlanKey key;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const PlanKey k = nodes_[i]->register_network(net, analyzed, dataset);
    if (i == 0)
      key = k;
    else
      assert(k == key);  // same content + same config => same address everywhere
  }
  return key;
}

std::vector<int> ClusterController::replicas_for_hash(std::uint64_t h) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(cfg_.replicas));
  auto it = std::lower_bound(ring_.begin(), ring_.end(), std::make_pair(h, -1));
  for (std::size_t steps = 0;
       steps < ring_.size() && out.size() < static_cast<std::size_t>(cfg_.replicas); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) out.push_back(it->second);
    ++it;
  }
  return out;
}

double ClusterController::weight(int id) const {
  const auto i = static_cast<std::size_t>(id);
  if (i < cfg_.node_weights.size() && cfg_.node_weights[i] > 0.0) return cfg_.node_weights[i];
  return 1.0;
}

ClusterController::Candidate ClusterController::pick(const std::vector<int>& replicas,
                                                     const std::vector<int>& exclude,
                                                     std::int64_t now_us, int* rejected) {
  struct Scored {
    double score;
    int node;
  };
  std::vector<Scored> order;
  order.reserve(replicas.size());
  for (int id : replicas) {
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) continue;
    const double load = nodes_[static_cast<std::size_t>(id)]->load() + 1.0;
    order.push_back({load / weight(id), id});
  }
  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score < b.score : a.node < b.node;
  });
  for (const Scored& s : order) {
    const BreakerDecision d = breakers_[static_cast<std::size_t>(s.node)]->admit(now_us);
    if (d == BreakerDecision::kReject) {
      ++*rejected;
      continue;
    }
    return Candidate{s.node, d == BreakerDecision::kProbe};
  }
  return Candidate{};
}

ClusterQueryResult ClusterController::plan(const PlanKey& key, const PlanQuery& query) {
  return plan(key, query, cfg_.deadline_us);
}

ClusterQueryResult ClusterController::plan(const PlanKey& key, const PlanQuery& query,
                                           std::int64_t deadline_us) {
  const std::int64_t t0 = cluster_now_us();
  sweep_pending(t0);
  const std::int64_t deadline = t0 + std::max<std::int64_t>(deadline_us, 1);
  auto q = std::make_shared<ClusterQueryState>();
  const std::vector<int> replicas = replicas_for_hash(key.net_hash);
  const std::uint64_t qid = query_seq_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t rng = cfg_.seed ^ (qid * 0x9e3779b97f4a7c15ull) ^ key.net_hash;

  // Root of the query's trace: the async lane opens here and closes when
  // the query settles; each dispatch carries a child context to its node.
  const TraceContext root = mint_trace();
  trace_async('b', "cluster.query", root, "query", static_cast<std::int64_t>(qid));
  trace_flow('s', "cluster.query", root);
  TraceContextScope trace_scope(root);
  ScopedSpan query_span("cluster.query", "cluster");
  query_span.arg("query", static_cast<std::int64_t>(qid));

  ClusterQueryResult out;
  // Each dispatch paired with its attempt deadline, so a straggler that
  // outlives the query can still be timeout-resolved by a later sweep.
  std::vector<std::pair<std::shared_ptr<ClusterDispatch>, std::int64_t>> outstanding;

  const auto backoff_until = [&](std::int64_t now) {
    const int shift = std::min(out.attempts - 1, 10);
    const std::int64_t base = cfg_.backoff_base_us << shift;
    const auto jitter = static_cast<std::int64_t>(static_cast<double>(base) *
                                                  cfg_.backoff_jitter * u01(&rng));
    return std::min(now + base + jitter, deadline);
  };

  while (out.attempts < cfg_.max_attempts && !q->is_done()) {
    std::int64_t now = cluster_now_us();
    if (now >= deadline) break;
    ++out.attempts;

    std::vector<int> exclude;
    for (const auto& [d, dl] : outstanding)
      if (!d->completed.load(std::memory_order_acquire)) exclude.push_back(d->node);
    int rejected = 0;
    const Candidate primary = pick(replicas, exclude, now, &rejected);
    out.rejected += rejected;
    if (primary.node < 0) {
      // No replica admitted right now; back off (a late response or a
      // breaker cooldown can change that).
      if (q->wait_until_us(backoff_until(now))) break;
      continue;
    }

    const std::int64_t attempt_deadline = std::min(now + cfg_.attempt_timeout_us, deadline);
    auto d = std::make_shared<ClusterDispatch>();
    d->q = q;
    d->key = key;
    d->query = query;
    d->node = primary.node;
    d->attempt = out.attempts;
    d->ctx = child_span(current_trace_context());
    d->probe = primary.probe;
    trace_async('n', "cluster.dispatch", d->ctx, "node", primary.node);
    outstanding.emplace_back(d, attempt_deadline);
    nodes_[static_cast<std::size_t>(primary.node)]->submit(d);

    // Hedge: when the primary stalls past hedge_delay_us, race a second
    // admitted replica against it; first response wins.
    if (cfg_.hedging && cfg_.hedge_delay_us >= 0 &&
        cfg_.hedge_delay_us < cfg_.attempt_timeout_us) {
      if (!q->wait_until_us(std::min(now + cfg_.hedge_delay_us, attempt_deadline))) {
        std::vector<int> hexclude = exclude;
        hexclude.push_back(primary.node);
        int hrejected = 0;
        const Candidate hedge = pick(replicas, hexclude, cluster_now_us(), &hrejected);
        out.rejected += hrejected;
        if (hedge.node >= 0) {
          auto hd = std::make_shared<ClusterDispatch>();
          hd->q = q;
          hd->key = key;
          hd->query = query;
          hd->node = hedge.node;
          hd->attempt = out.attempts;
          hd->ctx = child_span(current_trace_context());
          hd->probe = hedge.probe;
          hd->hedge = true;
          trace_async('n', "cluster.hedge", hd->ctx, "node", hedge.node);
          outstanding.emplace_back(hd, attempt_deadline);
          nodes_[static_cast<std::size_t>(hedge.node)]->submit(hd);
          ++out.hedges;
          bump("cluster.hedges");
        }
      }
    }

    if (q->wait_until_us(attempt_deadline)) break;

    // Attempt expired: every unanswered dispatch is a breaker failure for
    // its node (first resolver wins — a late node-side completion that
    // already resolved it is left alone).
    const std::int64_t tnow = cluster_now_us();
    for (const auto& [od, dl] : outstanding) {
      if (od->completed.load(std::memory_order_acquire)) continue;
      if (!od->breaker_resolved.exchange(true, std::memory_order_acq_rel)) {
        breakers_[static_cast<std::size_t>(od->node)]->record_failure(tnow, od->probe);
        ++out.timeouts;
        bump("cluster.timeouts");
      }
    }
    outstanding.clear();
    if (out.attempts < cfg_.max_attempts && !q->wait_until_us(backoff_until(tnow))) continue;
    break;
  }

  // Park any dispatch the query no longer waits for (typically the hedge
  // race's loser against a dead node); a later sweep turns it into a
  // breaker failure once its attempt deadline passes.
  if (!outstanding.empty()) {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (auto& od : outstanding)
      if (!od.first->completed.load(std::memory_order_acquire) &&
          !od.first->breaker_resolved.load(std::memory_order_acquire))
        pending_.push_back(std::move(od));
  }

  bool done;
  {
    std::lock_guard<std::mutex> lk(q->mu);
    done = q->done;
    // Settled from the router's side either way: stale queued dispatches
    // and hedge losers observe this and discard their work.
    q->cancelled.store(true, std::memory_order_relaxed);
    if (done) {
      out.ok = q->resp.ok;
      out.node = q->resp.node;
      out.error = q->resp.error;
      out.hedge_won = q->resp.from_hedge;
      out.plan = std::move(q->resp.plan);
    }
  }
  const std::int64_t t_done = cluster_now_us();
  out.wall_ms = static_cast<double>(t_done - t0) / 1000.0;
  out.trace_id = root.trace_id;
  if (!done) {
    std::ostringstream os;
    os << "cluster: query on " << key.to_string() << " exhausted its deadline ("
       << (deadline - t0) / 1000 << " ms) after " << out.attempts << " attempt(s): "
       << out.timeouts << " timeout(s), " << out.rejected << " breaker rejection(s), "
       << out.hedges << " hedge(s)";
    out.ok = false;
    out.error = os.str();
    diag_.report(DiagSeverity::kError, PipelineStage::kServe, -1, out.error,
                 "no plan was served; the caller may retry with a longer deadline");
  }

  if (out.ok) {
    bump("cluster.queries.ok");
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
    if (out.hedge_won) {
      bump("cluster.hedge_wins");
      hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    }
    if (metrics_enabled())
      metrics()
          .histogram("cluster.query.ms",
                     {0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000})
          .record(out.wall_ms);
  } else {
    bump("cluster.queries.failed");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::int64_t retries = std::max(out.attempts - 1, 0);
  bump("cluster.retries", retries);
  attempts_.fetch_add(out.attempts, std::memory_order_relaxed);
  retries_.fetch_add(retries, std::memory_order_relaxed);
  hedges_.fetch_add(out.hedges, std::memory_order_relaxed);
  timeouts_.fetch_add(out.timeouts, std::memory_order_relaxed);
  breaker_rejections_.fetch_add(out.rejected, std::memory_order_relaxed);

  if (out.hedge_won) trace_async('n', "cluster.hedge_won", root, "node", out.node);
  trace_async('e', "cluster.query", root, "ok", out.ok ? 1 : 0);
  trace_flow('f', "cluster.query", root);
  if (flight_recording_enabled()) {
    RequestRecord rec;
    rec.trace_id = root.trace_id;
    rec.request_id = qid;
    rec.source = "cluster";
    rec.status = out.ok ? "ok" : (done ? "error" : "deadline_exhausted");
    rec.ok = out.ok;
    rec.deadline_hit = !done;  // the query ran out its overall deadline
    rec.exec_us = t_done - t0;
    rec.total_us = t_done - t0;
    rec.node_id = out.node;
    rec.retries = static_cast<int>(retries);
    rec.hedges = out.hedges;
    rec.t_us = t_done;
    flight_recorder().record(rec);
  }
  return out;
}

void ClusterController::sweep_pending() { sweep_pending(cluster_now_us()); }

void ClusterController::sweep_pending(std::int64_t now_us) {
  std::vector<std::pair<std::shared_ptr<ClusterDispatch>, std::int64_t>> expired;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    std::vector<std::pair<std::shared_ptr<ClusterDispatch>, std::int64_t>> keep;
    keep.reserve(pending_.size());
    for (auto& p : pending_) {
      if (p.first->completed.load(std::memory_order_acquire)) continue;  // node resolved it
      if (now_us >= p.second)
        expired.push_back(std::move(p));
      else
        keep.push_back(std::move(p));
    }
    pending_.swap(keep);
  }
  for (const auto& [d, dl] : expired) {
    if (!d->breaker_resolved.exchange(true, std::memory_order_acq_rel)) {
      breakers_[static_cast<std::size_t>(d->node)]->record_failure(now_us, d->probe);
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      bump("cluster.timeouts");
    }
  }
}

int ClusterController::replicate_profile(const PlanKey& key) {
  const std::vector<int> reps = replicas_for_hash(key.net_hash);
  WorkerNode& primary = node(reps.front());
  primary.service().ensure_profile(key);
  const SealedProfile sealed = seal_profile(primary.service().export_profile(key));
  int accepted = 0;
  for (std::size_t i = 1; i < reps.size(); ++i)
    accepted += node(reps[i]).seed_profile(key, sealed) ? 1 : 0;
  return accepted;
}

int ClusterController::seed_profile(const PlanKey& key, const SealedProfile& sealed) {
  int accepted = 0;
  for (int id : replicas_for_hash(key.net_hash)) accepted += node(id).seed_profile(key, sealed);
  return accepted;
}

void ClusterController::kill_node(int id) {
  node(id).kill();
  bump("cluster.node.kills");
  diag_.report(DiagSeverity::kWarning, PipelineStage::kServe, -1,
               "node " + std::to_string(id) + " killed (unresponsive; replies suppressed)",
               "queries re-route to the other replicas; breaker opens after timeouts");
}

void ClusterController::revive_node(int id) {
  node(id).revive();
  bump("cluster.node.revives");
  diag_.report(DiagSeverity::kInfo, PipelineStage::kServe, -1,
               "node " + std::to_string(id) + " revived",
               "half-open probe re-admits it once its breaker cools down");
}

bool ClusterController::poison_cache(int id, const PlanKey& key, const PlanQuery& query) {
  return node(id).poison_cache(key, query);
}

ClusterStats ClusterController::stats() const {
  ClusterStats s;
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.breaker_rejections = breaker_rejections_.load(std::memory_order_relaxed);
  s.nodes.reserve(nodes_.size());
  for (const auto& n : nodes_) s.nodes.push_back(n->stats());
  return s;
}

}  // namespace mupod
