#include "cluster/breaker.hpp"

#include <utility>
#include <vector>

namespace mupod {

namespace {

struct Transition {
  BreakerState from;
  BreakerState to;
  std::int64_t now_us;
};

}  // namespace

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg) {
  if (cfg_.failure_threshold < 1) cfg_.failure_threshold = 1;
  if (cfg_.probe_successes < 1) cfg_.probe_successes = 1;
}

void CircuitBreaker::on_transition(
    std::function<void(BreakerState, BreakerState, std::int64_t)> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  on_transition_ = std::move(fn);
}

void CircuitBreaker::transition(BreakerState to, std::int64_t) { state_ = to; }

BreakerDecision CircuitBreaker::admit(std::int64_t now_us) {
  std::vector<Transition> fired;
  BreakerDecision decision = BreakerDecision::kReject;
  std::function<void(BreakerState, BreakerState, std::int64_t)> cb;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cb = on_transition_;
    switch (state_) {
      case BreakerState::kClosed:
        decision = BreakerDecision::kAdmit;
        break;
      case BreakerState::kOpen:
        if (now_us >= open_until_us_) {
          // Cooldown elapsed: half-open, and this caller IS the probe.
          fired.push_back({BreakerState::kOpen, BreakerState::kHalfOpen, now_us});
          transition(BreakerState::kHalfOpen, now_us);
          probe_in_flight_ = true;
          probe_successes_ = 0;
          ++counters_.probes;
          decision = BreakerDecision::kProbe;
        } else {
          ++counters_.rejected;
          decision = BreakerDecision::kReject;
        }
        break;
      case BreakerState::kHalfOpen:
        if (probe_in_flight_) {
          // Exactly one in-flight probe: everyone else fast-fails.
          ++counters_.rejected;
          decision = BreakerDecision::kReject;
        } else {
          probe_in_flight_ = true;
          ++counters_.probes;
          decision = BreakerDecision::kProbe;
        }
        break;
    }
  }
  if (cb) {
    for (const Transition& t : fired) cb(t.from, t.to, t.now_us);
  }
  return decision;
}

void CircuitBreaker::record_success(std::int64_t now_us, bool probe) {
  std::vector<Transition> fired;
  std::function<void(BreakerState, BreakerState, std::int64_t)> cb;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cb = on_transition_;
    if (probe) {
      // A probe admitted before a concurrent re-open resolves against the
      // current state; only count it while still half-open.
      if (state_ == BreakerState::kHalfOpen) {
        probe_in_flight_ = false;
        if (++probe_successes_ >= cfg_.probe_successes) {
          fired.push_back({state_, BreakerState::kClosed, now_us});
          transition(BreakerState::kClosed, now_us);
          consecutive_failures_ = 0;
          probe_successes_ = 0;
          ++counters_.closed;
        }
      }
    } else if (state_ == BreakerState::kClosed) {
      consecutive_failures_ = 0;
    }
  }
  if (cb) {
    for (const Transition& t : fired) cb(t.from, t.to, t.now_us);
  }
}

void CircuitBreaker::record_failure(std::int64_t now_us, bool probe) {
  std::vector<Transition> fired;
  std::function<void(BreakerState, BreakerState, std::int64_t)> cb;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cb = on_transition_;
    if (probe) {
      if (state_ == BreakerState::kHalfOpen) {
        // Probe failed: straight back to open for another cooldown.
        probe_in_flight_ = false;
        probe_successes_ = 0;
        fired.push_back({state_, BreakerState::kOpen, now_us});
        transition(BreakerState::kOpen, now_us);
        open_until_us_ = now_us + cfg_.cooldown_us;
        ++counters_.reopened;
      }
    } else if (state_ == BreakerState::kClosed) {
      if (++consecutive_failures_ >= cfg_.failure_threshold) {
        fired.push_back({state_, BreakerState::kOpen, now_us});
        transition(BreakerState::kOpen, now_us);
        open_until_us_ = now_us + cfg_.cooldown_us;
        consecutive_failures_ = 0;
        ++counters_.opened;
      }
    }
  }
  if (cb) {
    for (const Transition& t : fired) cb(t.from, t.to, t.now_us);
  }
}

BreakerState CircuitBreaker::state(std::int64_t now_us) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::kOpen && now_us >= open_until_us_) return BreakerState::kHalfOpen;
  return state_;
}

BreakerCounters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace mupod
