// Shape: dimension vector for dense tensors (NCHW convention for 4-d).
//
// Part of mupod-cpp, a reproduction of "Multi-objective Precision
// Optimization of Deep Neural Networks for Edge Devices" (DATE 2019).
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace mupod {

// A small fixed-capacity dimension list. Rank 0 denotes an empty shape.
// For 4-d tensors the convention is (N, C, H, W).
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<int> dims);

  static Shape scalar() { return Shape({1}); }

  int rank() const { return rank_; }
  int dim(int i) const;
  int operator[](int i) const { return dim(i); }

  // Number of elements; 0 for an empty shape.
  std::int64_t numel() const;

  // NCHW accessors; valid only for rank-4 shapes.
  int n() const { return dim(0); }
  int c() const { return dim(1); }
  int h() const { return dim(2); }
  int w() const { return dim(3); }

  bool operator==(const Shape& o) const;
  bool operator!=(const Shape& o) const { return !(*this == o); }

  // Returns a copy with dimension `i` replaced by `v`.
  Shape with_dim(int i, int v) const;

  std::string to_string() const;

 private:
  std::array<int, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace mupod
