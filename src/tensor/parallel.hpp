// A minimal persistent thread pool exposing parallel_for over an index
// range. Used by the convolution kernels and the profiling passes — the
// profiling workload of the paper (hundreds of partial forward passes on
// ResNet-152) is embarrassingly parallel over images and output channels.
#pragma once

#include <cstdint>
#include <functional>

namespace mupod {

// Global worker count. Resolution order, decided once when the pool first
// runs: set_parallel_worker_count() override > MUPOD_THREADS environment
// variable > hardware_concurrency (min 1). Tools and benches print this so
// their timings are reproducible.
int parallel_worker_count();

// Override worker count (0 restores the default). Not thread-safe with
// respect to concurrently running parallel_for calls; call at startup.
void set_parallel_worker_count(int n);

// Parses a MUPOD_THREADS-style value: returns the worker count (>= 1), or
// 0 when the value is null/empty/non-numeric/non-positive (meaning "no
// override"). Exposed for tests; parallel_worker_count applies it to the
// actual environment at pool startup.
int parse_worker_override(const char* value);

// Runs fn(i) for i in [begin, end), partitioned across the pool in
// contiguous chunks. Falls back to a serial loop for small ranges or when
// called from inside another parallel_for (no nested parallelism).
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn);

// Chunked variant: fn(chunk_begin, chunk_end). Preferred for tight loops
// so the std::function dispatch happens once per chunk, not per index.
void parallel_for_chunked(std::int64_t begin, std::int64_t end,
                          const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace mupod
