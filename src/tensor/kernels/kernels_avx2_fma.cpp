// FMA 6x16 SGEMM micro-kernel — the only TU compiled with -mfma. Keeping
// fused multiply-add isolated here means the kAvx2 registry's mul+add
// kernel (kernels_avx2.cpp, no -mfma) can never be silently contracted,
// so each ISA's float results are stable properties of the kernel, not of
// compiler flags. Integer kernels are shared with kAvx2 (see
// avx2_fma_kernel_registry in kernels_avx2.cpp) — exact arithmetic has
// nothing to gain from FMA.
//
// Accuracy note (docs/method.md §16): relative to the scalar/mul+add
// kernels, each fused a*b+acc skips one float rounding. The per-element
// divergence after k accumulation steps is bounded by ~k * eps * |a|·|b|
// summed over the reduction — the test battery checks against the scalar
// reference with the same 1e-4 * sqrt(k) relative bound used for
// reference-vs-blocked parity.
#include "tensor/kernels/kernels_internal.hpp"

#ifdef MUPOD_HAVE_AVX2_KERNELS

#include <immintrin.h>

namespace mupod::internal {

void sgemm_micro_6x16_fma(int kc, const float* __restrict ap, const float* __restrict bp,
                          float* __restrict c, std::int64_t ldc, float beta) {
  constexpr int MR = 6;
  constexpr int NR = 16;
  __m256 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + static_cast<std::ptrdiff_t>(kk) * NR);
    const __m256 b1 = _mm256_loadu_ps(bp + static_cast<std::ptrdiff_t>(kk) * NR + 8);
    const float* ak = ap + static_cast<std::ptrdiff_t>(kk) * MR;
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(ak + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      _mm256_storeu_ps(crow, acc[r][0]);
      _mm256_storeu_ps(crow + 8, acc[r][1]);
    } else if (beta == 1.0f) {
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
    } else {
      const __m256 vb = _mm256_set1_ps(beta);
      _mm256_storeu_ps(crow, _mm256_fmadd_ps(vb, _mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(crow + 8, _mm256_fmadd_ps(vb, _mm256_loadu_ps(crow + 8), acc[r][1]));
    }
  }
}

}  // namespace mupod::internal

#endif  // MUPOD_HAVE_AVX2_KERNELS
