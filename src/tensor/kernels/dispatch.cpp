// Runtime ISA selection for the kernel registry (see kernels.hpp).
//
// Detection runs once (function-local static): CPUID feature bits plus an
// XGETBV check that the OS actually saves ymm state — AVX2 reported by
// CPUID is not usable unless XCR0 enables the SSE+AVX state components.
// MUPOD_FORCE_KERNEL overrides the startup choice (tests force the scalar
// baseline this way; the sanitizer lanes run the whole battery under it);
// set_kernel_isa() overrides it in-process for per-ISA test loops.
#include "tensor/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "tensor/kernels/kernels_internal.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace mupod {
namespace {

#if defined(__x86_64__) || defined(__i386__)
bool os_saves_ymm() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  unsigned lo = 0, hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (lo & 0x6u) == 0x6u;  // XMM + YMM state enabled
}

bool cpu_has_avx2() {
  if (!os_saves_ymm()) return false;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 5)) != 0;
}

bool cpu_has_fma() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 12)) != 0;
}
#endif

KernelIsa detect_isa() {
#if defined(MUPOD_HAVE_AVX2_KERNELS)
  if (cpu_has_avx2()) return cpu_has_fma() ? KernelIsa::kAvx2Fma : KernelIsa::kAvx2;
#endif
  return KernelIsa::kScalar;
}

KernelIsa clamp_available(KernelIsa isa) {
  return kernel_isa_available(isa) ? isa : detected_kernel_isa();
}

KernelIsa startup_isa() {
  if (const char* force = std::getenv("MUPOD_FORCE_KERNEL"); force != nullptr) {
    KernelIsa want;
    if (parse_kernel_isa(force, &want)) return clamp_available(want);
  }
  return detected_kernel_isa();
}

// Relaxed atomic, same discipline as GemmMode: reads are per-call cheap,
// writes happen at startup or between forwards only.
std::atomic<KernelIsa>& active_isa() {
  static std::atomic<KernelIsa> isa{startup_isa()};
  return isa;
}

void mirror_isa_gauge(KernelIsa isa) {
  if (metrics_enabled()) {
    static Gauge* g = &metrics().gauge("tensor.kernel.isa");
    g->set(static_cast<std::int64_t>(isa));
  }
}

}  // namespace

const char* kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx2Fma: return "avx2fma";
  }
  return "?";
}

bool parse_kernel_isa(const char* s, KernelIsa* out) {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    *out = KernelIsa::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = KernelIsa::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx2fma") == 0 || std::strcmp(s, "avx2_fma") == 0 ||
      std::strcmp(s, "fma") == 0) {
    *out = KernelIsa::kAvx2Fma;
    return true;
  }
  return false;
}

KernelIsa detected_kernel_isa() {
  static const KernelIsa isa = detect_isa();
  return isa;
}

bool kernel_isa_available(KernelIsa isa) {
  if (isa == KernelIsa::kScalar) return true;
#if defined(MUPOD_HAVE_AVX2_KERNELS)
  const KernelIsa best = detected_kernel_isa();
  // kAvx2 runs wherever kAvx2Fma does (FMA implies AVX2 here); kAvx2Fma
  // needs the full detection.
  if (isa == KernelIsa::kAvx2) return best != KernelIsa::kScalar;
  return best == KernelIsa::kAvx2Fma;
#else
  (void)isa;
  return false;
#endif
}

KernelIsa kernel_isa() { return active_isa().load(std::memory_order_relaxed); }

void set_kernel_isa(KernelIsa isa) {
  const KernelIsa eff = clamp_available(isa);
  active_isa().store(eff, std::memory_order_relaxed);
  mirror_isa_gauge(eff);
}

const KernelRegistry& kernel_registry_for(KernelIsa isa) {
  switch (clamp_available(isa)) {
    case KernelIsa::kScalar: break;
#if defined(MUPOD_HAVE_AVX2_KERNELS)
    case KernelIsa::kAvx2: return internal::avx2_kernel_registry();
    case KernelIsa::kAvx2Fma: return internal::avx2_fma_kernel_registry();
#else
    default: break;
#endif
  }
  return internal::scalar_kernel_registry();
}

const KernelRegistry& kernel_registry() { return kernel_registry_for(kernel_isa()); }

}  // namespace mupod
