// Baseline (scalar-ISA) SGEMM micro-kernel — the generic C++ kernel the
// blocked GEMM has always used, moved here from gemm.cpp so the driver
// can swap micro-kernels through the registry. Plain loops with
// compile-time tile sizes so GCC/Clang auto-vectorize under the
// project-default flags; this entry is the correctness reference and the
// fallback ISA on every target. The integer function pointers are null:
// qgemm.cpp's generic templates (its own scalar reference) handle those.
#include "tensor/kernels/kernels_internal.hpp"

namespace mupod {
namespace {

// Same geometry rule as the pre-dispatch gemm.cpp: 6x16 fills the ymm
// register file when the TU is compiled with AVX enabled (-DMUPOD_NATIVE),
// 4x8 fits xmm on baseline x86-64 / other targets.
#if defined(__AVX__)
constexpr int MR = 6;
constexpr int NR = 16;
#else
constexpr int MR = 4;
constexpr int NR = 8;
#endif

void sgemm_micro_scalar(int kc, const float* __restrict ap, const float* __restrict bp,
                        float* __restrict c, std::int64_t ldc, float beta) {
  float acc[MR][NR] = {};
  for (int kk = 0; kk < kc; ++kk) {
    const float* __restrict ak = ap + static_cast<std::ptrdiff_t>(kk) * MR;
    const float* __restrict bk = bp + static_cast<std::ptrdiff_t>(kk) * NR;
    for (int r = 0; r < MR; ++r) {
      const float av = ak[r];
      for (int cc = 0; cc < NR; ++cc) acc[r][cc] += av * bk[cc];
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (int cc = 0; cc < NR; ++cc) crow[cc] = acc[r][cc];
    } else if (beta == 1.0f) {
      for (int cc = 0; cc < NR; ++cc) crow[cc] += acc[r][cc];
    } else {
      for (int cc = 0; cc < NR; ++cc) crow[cc] = beta * crow[cc] + acc[r][cc];
    }
  }
}

}  // namespace

namespace internal {

const KernelRegistry& scalar_kernel_registry() {
  static const KernelRegistry reg{
      KernelIsa::kScalar,
      MR,
      NR,
      &sgemm_micro_scalar,
      nullptr,  // qmicro8
      nullptr,  // qmicro8_maddubs
      nullptr,  // qmicro16
      nullptr,  // qdot8
      nullptr,  // qdot16
      nullptr,  // quantize8
      nullptr,  // quantize16
  };
  return reg;
}

}  // namespace internal
}  // namespace mupod
