// AVX2 micro-kernels (compiled with -mavx2, NO -mfma — the mul+add SGEMM
// entry here must stay contraction-free so kAvx2 float results are
// reproducible independent of compiler fusion decisions; the FMA variant
// lives in kernels_avx2_fma.cpp).
//
// Integer exactness argument (docs/method.md §16): every kernel below
// computes the same products as the scalar reference and adds them in
// modular int32/int64 arithmetic, which is associative and commutative —
// so any SIMD accumulation order is bitwise identical to the scalar
// ascending-k loop.
//
//  * qmicro8 (k-pair): operands are sign-extended int8 pairs packed as
//    int16; vpmaddwd products are <= 127*127 = 16129 and pair sums
//    <= 32258 < 2^31 per step, accumulated in int32 — exact for ALL
//    int8 inputs.
//  * qmicro8_maddubs (k-quad): vpmaddubsw computes u8*s8 with signed
//    16-bit SATURATION; the packers offset A by +128 (u8 side) and the
//    caller pre-initializes the accumulator with -128 * colsum so the
//    offset cancels in integer arithmetic. qgemm.cpp only selects this
//    kernel when every |b| <= 64 (pair sums <= 2*255*64 = 32640 < 32768:
//    no saturation) and k <= 2^16 (acc magnitude <= 2^16 * 255 * 64 +
//    compensation < 2^31: no wrap), so it is exact whenever invoked.
//  * qmicro16 (k-pair): vpmaddwd pair sums are exact in int32 except the
//    single corner where both pairs are (-32768)*(-32768); qgemm.cpp
//    scans B for -32768 and falls back to the generic path, so the corner
//    is unreachable here. Pair sums are widened to int64 before
//    accumulation (matches the scalar int64 accumulator bit-for-bit).
#include "tensor/kernels/kernels_internal.hpp"

#ifdef MUPOD_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <cmath>

namespace mupod {
namespace {

// ---------------------------------------------------------------------------
// SGEMM 6x16 micro-kernel, explicit mul + add (this TU has no -mfma, so
// the compiler cannot contract these into fmadd).

constexpr int MR = 6;
constexpr int NR = 16;

void sgemm_micro_avx2(int kc, const float* __restrict ap, const float* __restrict bp,
                      float* __restrict c, std::int64_t ldc, float beta) {
  __m256 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + static_cast<std::ptrdiff_t>(kk) * NR);
    const __m256 b1 = _mm256_loadu_ps(bp + static_cast<std::ptrdiff_t>(kk) * NR + 8);
    const float* ak = ap + static_cast<std::ptrdiff_t>(kk) * MR;
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(ak + r);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      _mm256_storeu_ps(crow, acc[r][0]);
      _mm256_storeu_ps(crow + 8, acc[r][1]);
    } else if (beta == 1.0f) {
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
    } else {
      const __m256 vb = _mm256_set1_ps(beta);
      _mm256_storeu_ps(crow,
                       _mm256_add_ps(_mm256_mul_ps(vb, _mm256_loadu_ps(crow)), acc[r][0]));
      _mm256_storeu_ps(
          crow + 8, _mm256_add_ps(_mm256_mul_ps(vb, _mm256_loadu_ps(crow + 8)), acc[r][1]));
    }
  }
}

// ---------------------------------------------------------------------------
// int8 k-pair kernel: exact for all inputs.
// ap[p*4 + r] = (int32) two sign-extended int16s (a[2p,r], a[2p+1,r]);
// bp, per pair p, 32 int16s: cols 0..7 interleaved then cols 8..15.

void qmicro8_madd_avx2(std::int64_t k_pairs, const std::int32_t* __restrict ap,
                       const std::int16_t* __restrict bp, std::int32_t* __restrict acc) {
  __m256i vacc[kQMr][2];
  for (int r = 0; r < kQMr; ++r) {
    vacc[r][0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr));
    vacc[r][1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr + 8));
  }
  for (std::int64_t p = 0; p < k_pairs; ++p) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + p * 2 * kQNr));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + p * 2 * kQNr + 16));
    const std::int32_t* apk = ap + p * kQMr;
    for (int r = 0; r < kQMr; ++r) {
      const __m256i va = _mm256_set1_epi32(apk[r]);
      vacc[r][0] = _mm256_add_epi32(vacc[r][0], _mm256_madd_epi16(b0, va));
      vacc[r][1] = _mm256_add_epi32(vacc[r][1], _mm256_madd_epi16(b1, va));
    }
  }
  for (int r = 0; r < kQMr; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr), vacc[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr + 8), vacc[r][1]);
  }
}

// ---------------------------------------------------------------------------
// int8 k-quad kernel (u8 x s8 offset trick). ap[q*4 + r] = 4 offset bytes
// (a + 128) of rows' k-quad; bp, per quad q, 64 int8s: cols 0..7 as 4
// consecutive-k bytes each, then cols 8..15. Caller guarantees
// no-saturation / no-wrap preconditions and compensation-initializes acc.

void qmicro8_maddubs_avx2(std::int64_t k_quads, const std::int32_t* __restrict ap,
                          const std::int8_t* __restrict bp, std::int32_t* __restrict acc) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i vacc[kQMr][2];
  for (int r = 0; r < kQMr; ++r) {
    vacc[r][0] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr));
    vacc[r][1] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr + 8));
  }
  for (std::int64_t q = 0; q < k_quads; ++q) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + q * 4 * kQNr));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + q * 4 * kQNr + 32));
    const std::int32_t* apk = ap + q * kQMr;
    for (int r = 0; r < kQMr; ++r) {
      const __m256i va = _mm256_set1_epi32(apk[r]);
      // u8 (A+128) x s8 (B) pairs -> s16, then pair-sum to s32 via ones.
      const __m256i p0 = _mm256_maddubs_epi16(va, b0);
      const __m256i p1 = _mm256_maddubs_epi16(va, b1);
      vacc[r][0] = _mm256_add_epi32(vacc[r][0], _mm256_madd_epi16(p0, ones));
      vacc[r][1] = _mm256_add_epi32(vacc[r][1], _mm256_madd_epi16(p1, ones));
    }
  }
  for (int r = 0; r < kQMr; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr), vacc[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr + 8), vacc[r][1]);
  }
}

// ---------------------------------------------------------------------------
// int16 k-pair kernel: vpmaddwd pair sums widened to int64. Same packed
// layouts as qmicro8's pair layout, with real int16 operand values.

void qmicro16_madd_avx2(std::int64_t k_pairs, const std::int32_t* __restrict ap,
                        const std::int16_t* __restrict bp, std::int64_t* __restrict acc) {
  for (int r = 0; r < kQMr; ++r) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr + 4));
    __m256i a2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr + 8));
    __m256i a3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r * kQNr + 12));
    for (std::int64_t p = 0; p < k_pairs; ++p) {
      const __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + p * 2 * kQNr));
      const __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + p * 2 * kQNr + 16));
      const __m256i va = _mm256_set1_epi32(ap[p * kQMr + r]);
      const __m256i m0 = _mm256_madd_epi16(b0, va);  // cols 0..7 pair sums (s32)
      const __m256i m1 = _mm256_madd_epi16(b1, va);  // cols 8..15
      a0 = _mm256_add_epi64(a0, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m0)));
      a1 = _mm256_add_epi64(a1, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m0, 1)));
      a2 = _mm256_add_epi64(a2, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m1)));
      a3 = _mm256_add_epi64(a3, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m1, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr + 4), a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr + 8), a2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNr + 12), a3);
  }
}

// ---------------------------------------------------------------------------
// GEMV dot products (contiguous rows, no packing).

std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

std::int64_t hsum_epi64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  const __m128i hi = _mm_unpackhi_epi64(s, s);
  return _mm_cvtsi128_si64(_mm_add_epi64(s, hi));
}

std::int32_t qdot8_avx2(std::int64_t k, const std::int8_t* __restrict a,
                        const std::int8_t* __restrict x) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i va =
        _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vx =
        _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vx));
  }
  std::int32_t s = hsum_epi32(acc);
  for (; i < k; ++i) {
    s = static_cast<std::int32_t>(static_cast<std::uint32_t>(s) +
                                  static_cast<std::uint32_t>(static_cast<std::int32_t>(a[i]) *
                                                             static_cast<std::int32_t>(x[i])));
  }
  return s;
}

std::int64_t qdot16_avx2(std::int64_t k, const std::int16_t* __restrict a,
                         const std::int16_t* __restrict x) {
  __m256i accA = _mm256_setzero_si256();
  __m256i accB = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i m = _mm256_madd_epi16(va, vx);
    accA = _mm256_add_epi64(accA, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m)));
    accB = _mm256_add_epi64(accB, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m, 1)));
  }
  std::int64_t s = hsum_epi64(_mm256_add_epi64(accA, accB));
  for (; i < k; ++i) {
    s += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(x[i]);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Vectorized saturating quantize-on-load. Bit-compatible with the scalar
// quantize_to: x * inv_step is exact in the power-of-two grid (so float
// multiply == the scalar double multiply after rounding), vroundps
// nearest-even == nearbyint under default rounding, NaN -> 0 via the
// ordered-compare mask, clamp counts from pre-clamp compares.

std::int64_t quantize8_avx2(const float* __restrict x, std::int64_t n, float inv_step,
                            std::int32_t lo, std::int32_t hi, std::int8_t* __restrict out) {
  const __m256 vinv = _mm256_set1_ps(inv_step);
  const __m256 vlo = _mm256_set1_ps(static_cast<float>(lo));
  const __m256 vhi = _mm256_set1_ps(static_cast<float>(hi));
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::int64_t sat = 0;
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256 v[4];
    for (int j = 0; j < 4; ++j) {
      __m256 r = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * j), vinv);
      r = _mm256_and_ps(r, _mm256_cmp_ps(r, r, _CMP_ORD_Q));  // NaN -> 0
      r = _mm256_round_ps(r, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
      sat += __builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_cmp_ps(r, vhi, _CMP_GT_OQ))));
      sat += __builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_cmp_ps(r, vlo, _CMP_LT_OQ))));
      v[j] = _mm256_min_ps(_mm256_max_ps(r, vlo), vhi);
    }
    const __m256i i0 = _mm256_cvtps_epi32(v[0]);
    const __m256i i1 = _mm256_cvtps_epi32(v[1]);
    const __m256i i2 = _mm256_cvtps_epi32(v[2]);
    const __m256i i3 = _mm256_cvtps_epi32(v[3]);
    // packs are saturating s32->s16->s8 but post-clamp values fit exactly.
    const __m256i p01 = _mm256_packs_epi32(i0, i1);
    const __m256i p23 = _mm256_packs_epi32(i2, i3);
    const __m256i packed = _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p01, p23), perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
  }
  for (; i < n; ++i) {
    // Tail mirrors qgemm.cpp's quantize_to_t branch-for-branch.
    double q = std::nearbyint(static_cast<double>(x[i]) * static_cast<double>(inv_step));
    if (q > hi) {
      q = hi;
      ++sat;
    } else if (q < lo) {
      q = lo;
      ++sat;
    } else if (!(q == q)) {
      q = 0.0;
    }
    out[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(q));
  }
  return sat;
}

std::int64_t quantize16_avx2(const float* __restrict x, std::int64_t n, float inv_step,
                             std::int32_t lo, std::int32_t hi, std::int16_t* __restrict out) {
  const __m256 vinv = _mm256_set1_ps(inv_step);
  const __m256 vlo = _mm256_set1_ps(static_cast<float>(lo));
  const __m256 vhi = _mm256_set1_ps(static_cast<float>(hi));
  std::int64_t sat = 0;
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 v[2];
    for (int j = 0; j < 2; ++j) {
      __m256 r = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * j), vinv);
      r = _mm256_and_ps(r, _mm256_cmp_ps(r, r, _CMP_ORD_Q));
      r = _mm256_round_ps(r, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
      sat += __builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_cmp_ps(r, vhi, _CMP_GT_OQ))));
      sat += __builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_cmp_ps(r, vlo, _CMP_LT_OQ))));
      v[j] = _mm256_min_ps(_mm256_max_ps(r, vlo), vhi);
    }
    const __m256i i0 = _mm256_cvtps_epi32(v[0]);
    const __m256i i1 = _mm256_cvtps_epi32(v[1]);
    const __m256i packed =
        _mm256_permute4x64_epi64(_mm256_packs_epi32(i0, i1), _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
  }
  for (; i < n; ++i) {
    double q = std::nearbyint(static_cast<double>(x[i]) * static_cast<double>(inv_step));
    if (q > hi) {
      q = hi;
      ++sat;
    } else if (q < lo) {
      q = lo;
      ++sat;
    } else if (!(q == q)) {
      q = 0.0;
    }
    out[i] = static_cast<std::int16_t>(static_cast<std::int32_t>(q));
  }
  return sat;
}

}  // namespace

namespace internal {

const KernelRegistry& avx2_kernel_registry() {
  static const KernelRegistry reg{
      KernelIsa::kAvx2,
      MR,
      NR,
      &sgemm_micro_avx2,
      &qmicro8_madd_avx2,
      &qmicro8_maddubs_avx2,
      &qmicro16_madd_avx2,
      &qdot8_avx2,
      &qdot16_avx2,
      &quantize8_avx2,
      &quantize16_avx2,
  };
  return reg;
}

const KernelRegistry& avx2_fma_kernel_registry() {
  // Same integer kernels (exactness is ISA-wide); only the SGEMM
  // micro-kernel differs (vfmadd231ps, defined in kernels_avx2_fma.cpp).
  static const KernelRegistry reg{
      KernelIsa::kAvx2Fma,
      MR,
      NR,
      &sgemm_micro_6x16_fma,
      &qmicro8_madd_avx2,
      &qmicro8_maddubs_avx2,
      &qmicro16_madd_avx2,
      &qdot8_avx2,
      &qdot16_avx2,
      &quantize8_avx2,
      &quantize16_avx2,
  };
  return reg;
}

}  // namespace internal
}  // namespace mupod

#endif  // MUPOD_HAVE_AVX2_KERNELS
