// Internal cross-TU wiring for the kernel registries. The per-ISA TUs
// (kernels_scalar.cpp, kernels_avx2.cpp, kernels_avx2_fma.cpp) each
// export one registry accessor; dispatch.cpp selects among them. The
// AVX2 accessors exist only when CMake compiled the AVX2 TUs
// (MUPOD_HAVE_AVX2_KERNELS) — on other targets dispatch links against
// the scalar entry alone.
#pragma once

#include "tensor/kernels/kernels.hpp"

namespace mupod::internal {

const KernelRegistry& scalar_kernel_registry();

#ifdef MUPOD_HAVE_AVX2_KERNELS
// Both AVX2 registries are assembled in kernels_avx2.cpp; the FMA SGEMM
// micro-kernel itself is compiled in kernels_avx2_fma.cpp (the only TU
// built with -mfma, so mul+add in the kAvx2 SGEMM can never be contracted
// while the kAvx2Fma entry gets real vfmadd231ps).
const KernelRegistry& avx2_kernel_registry();
const KernelRegistry& avx2_fma_kernel_registry();
void sgemm_micro_6x16_fma(int kc, const float* ap, const float* bp, float* c, std::int64_t ldc,
                          float beta);
#endif

}  // namespace mupod::internal
