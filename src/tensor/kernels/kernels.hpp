// Runtime-dispatched SIMD micro-kernels for the forward hot path.
//
// The paper's premise is that reduced-precision integer execution buys
// speed on edge hardware — but that only materializes when the int8/int16
// dot products map onto the CPU's multiply-accumulate instructions.
// Compiler autovectorization of the generic C++ kernels in gemm.cpp /
// qgemm.cpp does not get there (BENCH_forward.json showed int8 *losing*
// to the blocked float path on every zoo net). This module adds
// hand-written intrinsic micro-kernels behind a registry selected once at
// startup by CPUID:
//
//   kScalar    the generic C++ kernels (compiler-vectorized), the
//              baseline ISA on every target and the correctness
//              reference for the other entries;
//   kAvx2      AVX2 integer kernels (vpmaddwd / vpmaddubsw dot products,
//              vectorized quantize-on-load) plus a mul+add 6x16 SGEMM
//              micro-kernel;
//   kAvx2Fma   kAvx2's integer kernels plus an FMA 6x16 SGEMM
//              micro-kernel (vfmadd231ps).
//
// Dispatch rules (docs/method.md §16):
//   * the active ISA is detected once via CPUID (+ XGETBV for OS ymm
//     state); MUPOD_FORCE_KERNEL={scalar,avx2,avx2fma} overrides it at
//     startup, and set_kernel_isa() overrides it from tests/benches
//     (not thread-safe: flip at startup or between forwards, like
//     set_gemm_mode);
//   * forcing an ISA the build or CPU cannot run falls back to the
//     detected one — kernel_isa() always names an ISA that can execute;
//   * non-x86 builds compile only the scalar entry (the AVX2 TUs are
//     excluded by CMake and MUPOD_HAVE_AVX2_KERNELS is undefined).
//
// Determinism contract (extends tensor/gemm.hpp's): within a fixed ISA,
// results are bitwise independent of worker count and task decomposition.
// INTEGER kernels are additionally bitwise identical ACROSS ISAs — every
// intrinsic path computes exact products and accumulates them in the same
// modular integer arithmetic as the scalar reference (the property
// battery asserts byte equality, not tolerance). Float kernels may differ
// across ISAs by reassociation/FMA contraction only (bounded, see
// docs/method.md §16).
#pragma once

#include <cstdint>

namespace mupod {

// ---------------------------------------------------------------------------
// ISA selection

enum class KernelIsa : int { kScalar = 0, kAvx2 = 1, kAvx2Fma = 2 };

// "scalar" / "avx2" / "avx2fma".
const char* kernel_isa_name(KernelIsa isa);
// Parses the MUPOD_FORCE_KERNEL spellings ("scalar", "avx2",
// "avx2fma" / "avx2_fma" / "fma"). Returns false on unknown input.
bool parse_kernel_isa(const char* s, KernelIsa* out);

// The best ISA this build + CPU + OS can run (CPUID, evaluated once).
KernelIsa detected_kernel_isa();
// Whether `isa` can run here (compiled in and CPU-supported).
bool kernel_isa_available(KernelIsa isa);

// The active ISA. Startup value: MUPOD_FORCE_KERNEL if set, parseable and
// available, else detected_kernel_isa(). Mirrored into the
// `tensor.kernel.isa` gauge whenever metrics are enabled.
KernelIsa kernel_isa();
// Test/bench hook. Unavailable ISAs are clamped to detected_kernel_isa().
// Not thread-safe: never flip while a forward is running.
void set_kernel_isa(KernelIsa isa);

// ---------------------------------------------------------------------------
// Registry
//
// Fixed micro-tile geometry shared by every integer kernel (the scalar
// qgemm reference uses the same 4 x 16 tile, so tile-task ownership — and
// therefore determinism — is ISA-independent).
inline constexpr int kQMr = 4;
inline constexpr int kQNr = 16;
// Upper bounds on the float micro-tile geometry across ISAs (the generic
// edge-tile path sizes its accumulators with these).
inline constexpr int kMaxMr = 8;
inline constexpr int kMaxNr = 16;

// Packed-operand layouts consumed by the integer kernels (produced by
// qgemm.cpp's packers; byte-exact definitions in docs/method.md §16):
//
//  * k-PAIR layout (qmicro8 / qmicro16, exact for all inputs): A strip
//    ap[p * kQMr + r] is an int32 holding the sign-extended pair
//    (a[2p, r], a[2p+1, r]) as two int16s (low half = even k). B strip
//    bp[p * 2*kQNr + ...] holds, per pair p, 32 int16s: columns 0..7
//    interleaved (b[2p,0], b[2p+1,0], b[2p,1], ...) then columns 8..15.
//    Odd k is zero-padded.
//  * k-QUAD layout (qmicro8_maddubs, the u8 x s8 fast path): A strip
//    ap[q * kQMr + r] is an int32 holding 4 bytes a[4q..4q+3, r] + 128
//    (unsigned, the offset trick; padding bytes are 128 == offset 0).
//    B strip bp[q * 4*kQNr + ...] holds, per quad q, 64 int8s: columns
//    0..7 as 4 consecutive-k bytes each, then columns 8..15. The caller
//    pre-initializes acc[r][c] = -128 * colsum[c] so the offset cancels
//    exactly; legal only when every |b| <= 64 (no vpmaddubsw saturation)
//    and k <= 2^16 (no int32 accumulator wrap) — qgemm.cpp checks both.
struct KernelRegistry {
  KernelIsa isa;

  // SGEMM micro-kernel: C_tile(mr x nr) = A_strip · B_strip + beta*C.
  // ap: kc x mr (r-contiguous per k), bp: kc x nr (c-contiguous per k),
  // k ascending, C touched once at the end.
  int mr, nr;
  void (*sgemm_micro)(int kc, const float* ap, const float* bp, float* c,
                      std::int64_t ldc, float beta);

  // Integer micro-kernels; null => qgemm.cpp uses its generic C++ path.
  // acc is the kQMr x kQNr int32/int64 accumulator tile, accumulated
  // in-place (callers zero- or compensation-initialize it).
  void (*qmicro8)(std::int64_t k_pairs, const std::int32_t* ap, const std::int16_t* bp,
                  std::int32_t* acc);
  void (*qmicro8_maddubs)(std::int64_t k_quads, const std::int32_t* ap, const std::int8_t* bp,
                          std::int32_t* acc);
  void (*qmicro16)(std::int64_t k_pairs, const std::int32_t* ap, const std::int16_t* bp,
                   std::int64_t* acc);

  // GEMV dot products (n == 1 calls — the batch-1 inner product): plain
  // contiguous rows, no packing. Exact (same modular arithmetic as the
  // scalar accumulation); qdot16 requires x free of -32768 (the caller
  // scans: the single vpmaddwd overflow case needs -32768 pairs in BOTH
  // operands).
  std::int32_t (*qdot8)(std::int64_t k, const std::int8_t* a, const std::int8_t* x);
  std::int64_t (*qdot16)(std::int64_t k, const std::int16_t* a, const std::int16_t* x);

  // Vectorized saturating quantize-on-load (bit-compatible with
  // tensor/qgemm.hpp's quantize_to: same grid, clamp and NaN->0 rule;
  // returns the clamp count). inv_step = 1/step exactly (power of two).
  std::int64_t (*quantize8)(const float* x, std::int64_t n, float inv_step, std::int32_t lo,
                            std::int32_t hi, std::int8_t* out);
  std::int64_t (*quantize16)(const float* x, std::int64_t n, float inv_step, std::int32_t lo,
                             std::int32_t hi, std::int16_t* out);
};

// The registry for the ACTIVE ISA (kernel_isa()).
const KernelRegistry& kernel_registry();
// The registry for a specific ISA (clamped to an available one).
const KernelRegistry& kernel_registry_for(KernelIsa isa);

}  // namespace mupod
