#include "tensor/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mupod {

Tensor::Tensor(const Shape& shape, float fill)
    : shape_(shape),
      data_(static_cast<std::size_t>(std::max<std::int64_t>(shape.numel(), 0)), fill) {}

std::int64_t Tensor::index(int n, int c, int h, int w) const {
  assert(shape_.rank() == 4);
  assert(n >= 0 && n < shape_.n() && c >= 0 && c < shape_.c());
  assert(h >= 0 && h < shape_.h() && w >= 0 && w < shape_.w());
  return ((static_cast<std::int64_t>(n) * shape_.c() + c) * shape_.h() + h) * shape_.w() + w;
}

float& Tensor::at(int n, int c, int h, int w) { return data_[static_cast<std::size_t>(index(n, c, h, w))]; }
float Tensor::at(int n, int c, int h, int w) const { return data_[static_cast<std::size_t>(index(n, c, h, w))]; }

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(const Shape& s) {
  assert(s.numel() == shape_.numel());
  shape_ = s;
}

void Tensor::apply(const std::function<float(float)>& f) {
  for (float& v : data_) v = f(v);
}

Tensor& Tensor::operator+=(const Tensor& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

bool Tensor::all_finite() const {
  for (float v : data_)
    if (!std::isfinite(v)) return false;
  return true;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::min() const {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::min(m, v);
  return m;
}

float Tensor::max() const {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::max(m, v);
  return m;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

double Tensor::stddev() const {
  if (data_.empty()) return 0.0;
  const double mu = mean();
  double acc = 0.0;
  for (float v : data_) {
    const double d = v - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(data_.size()));
}

int Tensor::argmax_row(int n) const {
  assert(shape_.rank() >= 2);
  std::int64_t row = shape_.numel() / shape_.dim(0);
  const float* p = data_.data() + static_cast<std::int64_t>(n) * row;
  int best = 0;
  float bv = p[0];
  for (std::int64_t i = 1; i < row; ++i) {
    if (p[i] > bv) {
      bv = p[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

Tensor subtract(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, static_cast<double>(std::fabs(a[i] - b[i])));
  return m;
}

double stddev_of_diff(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  const std::int64_t n = a.numel();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) sum += static_cast<double>(a[i]) - b[i];
  const double mu = sum / static_cast<double>(n);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = (static_cast<double>(a[i]) - b[i]) - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace mupod
