// Packed integer GEMM for the quantized execution path.
//
// The float pipeline only *emulates* fixed-point formats (the kQuantize
// injection rounds activations and keeps computing in fp32). This kernel
// family actually executes the dot products in integer arithmetic:
//
//   C (m x n) = A_int (m x k) · B_int (k x n)      accumulated in int32
//                                                  (int8) or int64
//                                                  (int16/int32 operands),
//
// with two store epilogues applied once per output element:
//   * dequantize-on-store: C_f32 = (acc + bias) * scale — the layer-
//     boundary store used by quant/qexec (the next layer re-quantizes to
//     its own I.F format);
//   * saturating requantize-on-store: C_int = clamp(round(acc * M * 2^-s))
//     with a gemmlowp-style q31 fixed-point multiplier — the fused form a
//     real integer accelerator uses, exercised by the property tests.
//
// Operand widths are homogeneous per call: int8 operands accumulate in
// int32 (a 2^14 product bound keeps any k <= 2^17 exact); int16 and int32
// operands widen the accumulator to int64 so the kernel stays EXACT
// against a naive int64 reference for every representable input — the
// conformance battery depends on that exactness.
//
// Determinism contract (inherits tensor/gemm.hpp's, and is strictly
// stronger): each output tile is owned by exactly one task, the task
// accumulates the full k extent in a fixed ascending order, and C is
// touched exactly once — in the epilogue. Integer addition is associative,
// so the result is bitwise independent of worker count, chunking, and of
// whether the call runs serial (nested in a parallel region) or fans its
// tile tasks across the pool.
//
// Scratch reuses the per-thread GemmScratch arena (byte slots qa/qb/
// qcol/qact, counted in the same tensor.scratch.bytes gauge). Counters
// (when metrics are enabled): qgemm.calls, qgemm.macs, qgemm.tiles,
// qgemm.requant.saturated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mupod {

// ---------------------------------------------------------------------------
// Execution-mode gate, parallel to GemmMode. THREAD-LOCAL, unlike the
// global GemmMode: the integer path is selected per forward by the
// executor (quant/qexec) on the calling thread, so one thread running a
// quantized forward can never flip a float forward running concurrently
// on another service thread.
enum class ExecMode { kFloat, kInteger };
ExecMode exec_mode();
void set_exec_mode(ExecMode m);

// Integer storage widths the kernels are instantiated for.
enum class QType : int { kInt8 = 0, kInt16 = 1, kInt32 = 2 };
const char* qtype_name(QType t);
int qtype_bits(QType t);
std::size_t qtype_bytes(QType t);
// Narrowest storage that holds a signed fixed-point value of `total_bits`
// (I + F, clamped to [1, 32]).
QType qtype_for_bits(int total_bits);

// ---------------------------------------------------------------------------
// Requantization: y ~= acc * multiplier * 2^-(31 + shift), round to
// nearest, ties toward +inf (the cheap add-half-then-floor hardware
// nudge). `multiplier` is a q31 mantissa in [2^30, 2^31).
struct QRequant {
  std::int32_t multiplier = 1 << 30;
  int shift = 0;
};
// Decomposes a positive real multiplier into the q31 form.
QRequant make_requant(double real_multiplier);
// The exact scalar the kernel applies per element; exposed so tests can
// compute bit-exact expectations from a naive int64 reference.
std::int32_t apply_requant(std::int64_t acc, const QRequant& rq);

// ---------------------------------------------------------------------------
// Store epilogue, applied once per output element after the full-k
// integer accumulation. The optional bias is in ACCUMULATOR scale
// (bias_real / (step_a * step_b), pre-rounded by the caller) and is added
// before either store; bias_row indexes the m axis (conv output
// channels), bias_col the n axis (batched inner product).
struct QGemmEpilogue {
  const std::int64_t* bias_row = nullptr;
  const std::int64_t* bias_col = nullptr;
  // quant_store == false: C is float*, c[i,j] = (acc + bias) * scale.
  double scale = 1.0;
  // quant_store == true: C has the operand type, c[i,j] =
  // clamp(apply_requant(acc + bias), lo, hi); clips count as saturations.
  bool quant_store = false;
  QRequant requant;
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  // Optional saturation sink; incremented once per task (relaxed), so the
  // total is deterministic. Also mirrored into qgemm.requant.saturated
  // when metrics are enabled.
  std::atomic<std::int64_t>* saturated = nullptr;
  // Fused ReLU, applied inside the store (no extra tensor pass). Float
  // store: the exact ReLULayer expression (x > 0 ? x : 0) on the
  // dequantized value. Requantize store: max(q, 0) on the integer value
  // BEFORE the clamp — exact, because the grids are symmetric about 0,
  // requantization is monotone, and 0 maps to 0 (relu zeros are semantic,
  // never counted as saturations).
  bool relu = false;
};

// C = A · B with the given epilogue, row-major, homogeneous operand type:
//   A: m x k ints of `type`, leading dimension lda;
//   B: k x n ints of `type`, ldb — or Bᵀ (n x k) memory with trans_b, the
//      packing absorbs the transpose exactly as the float gemm does;
//   C: m x n, ldc — float* (dequant store) or `type`* (requantize store).
// Parallelises over output-tile tasks on the global pool; runs inline
// below a MAC cutoff or inside an existing parallel region.
void qgemm(QType type, std::int64_t m, std::int64_t n, std::int64_t k,
           const void* a, std::int64_t lda,
           const void* b, std::int64_t ldb,
           void* c, std::int64_t ldc,
           const QGemmEpilogue& ep, bool trans_b = false);

// Micro-tile geometry built into this binary (tests cover its edges).
struct QGemmBlocking {
  int mr, nr;
};
QGemmBlocking qgemm_blocking();

// ---------------------------------------------------------------------------
// Saturating quantize-on-load: out[i] = clamp(nearbyint(x[i] / step), lo,
// hi) stored as `type`. Bit-compatible with quant/fixed_point.hpp's
// quantize_tensor (same nearbyint grid, and [lo, hi] = [-2^(B-1),
// 2^(B-1)-1] reproduces its value clamp exactly since step is a power of
// two). Returns the number of clamped (saturated) values. Serial — the
// callers chunk it across the pool themselves.
std::int64_t quantize_to(QType type, const float* x, std::int64_t n, double step,
                         std::int32_t lo, std::int32_t hi, void* out);

// ---------------------------------------------------------------------------
// Per-layer integer operands, bound by the executor around a layer's
// forward call on the SAME thread (thread-local, like ExecMode).
// Conv2DLayer/InnerProductLayer read it when exec_mode() == kInteger and
// fall back to the float path when it is unbound.
struct QLayerBinding {
  QType type = QType::kInt16;
  // Quantized weights in the layer's native layout ((OC, k_dim) rows for
  // conv OIHW, (out, in) for inner product).
  const void* weights = nullptr;
  // Accumulator-scale bias per output channel; null when the layer has none.
  const std::int64_t* bias = nullptr;
  // Activation quantize-on-load parameters (the plan's I.F format).
  double act_step = 1.0;
  std::int32_t act_lo = 0;
  std::int32_t act_hi = 0;
  // Dequantize-on-store factor: act_step * weight_step.
  double acc_scale = 1.0;
  // Saturation sink for clipped activations (owned by the executor).
  std::atomic<std::int64_t>* act_saturated = nullptr;

  // --- Fused-region fields, set by compile/CompiledNetwork only. The
  // per-layer executor (quant/qexec) leaves them at the defaults, which
  // reproduce its quantize-on-load / dequantize-on-store round trip. ---
  // Input tensor already holds `type` integers on this layer's activation
  // grid (bit-cast inside the float Tensor buffer): skip quantize-on-load
  // and feed the carrier straight into the integer GEMM.
  bool in_quantized = false;
  // Store requantized integers on the CONSUMER layer's activation grid
  // instead of dequantizing to float: one cross-layer requantize
  // (acc_scale / consumer act_step as a q31 multiplier) replaces the
  // dequantize/quantize pair the unfused path pays at the boundary.
  bool quant_store = false;
  QRequant store_requant;
  std::int32_t store_lo = 0;
  std::int32_t store_hi = 0;
  // Fused ReLU in the store epilogue (see QGemmEpilogue::relu).
  bool relu = false;
};
const QLayerBinding* current_qlayer();
void set_current_qlayer(const QLayerBinding* b);

// ---------------------------------------------------------------------------
// Float-path fusion binding, bound by the compiled executor (compile/)
// around a conv/FC forward on the same thread (thread-local, like
// QLayerBinding). When scale/shift are non-null they hold one entry per
// output channel and apply the folded BatchNormScale affine (x*a + b,
// the exact expression of BatchNormScaleLayer::forward) ahead of the
// optional ReLU — so the fused store is bitwise identical to running the
// separate layers.
struct FloatFusion {
  bool relu = false;
  const float* scale = nullptr;
  const float* shift = nullptr;
};
const FloatFusion* current_float_fusion();
void set_current_float_fusion(const FloatFusion* f);

}  // namespace mupod
