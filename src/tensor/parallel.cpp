#include "tensor/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mupod {
namespace {

thread_local bool tls_in_parallel_region = false;

// Per-worker busy-time/chunk accounting (pool.worker<slot>.busy_us and
// .chunks). Gauges are resolved once per thread: the registry lookup
// (string build + mutex) happens on the first instrumented chunk only, so
// the steady-state cost per chunk is two atomic adds.
struct WorkerMetrics {
  Gauge* busy_us;
  Gauge* chunks;
};

WorkerMetrics& worker_metrics() {
  thread_local WorkerMetrics m = [] {
    const std::string base = "pool.worker" + std::to_string(obs_thread_slot());
    return WorkerMetrics{&metrics().gauge(base + ".busy_us"), &metrics().gauge(base + ".chunks")};
  }();
  return m;
}

class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    workers = std::max(workers, 1);
    // worker 0 is the calling thread; spawn workers-1 helpers.
    for (int i = 1; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
    n_workers_ = workers;
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  int workers() const { return n_workers_; }

  void run(std::int64_t begin, std::int64_t end,
           const std::function<void(std::int64_t, std::int64_t)>& fn) {
    // One job at a time: concurrent submitters (e.g. PlanService queries
    // issued from independent caller threads, each fanning GEMM tiles)
    // serialize here instead of clobbering each other's job fields. Held
    // for the whole run; safe because the holder participates in its own
    // job, and nested parallel_for calls never reach run() (they fall
    // back to serial via tls_in_parallel_region before getting here).
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    const std::int64_t total = end - begin;
    const int parts = static_cast<int>(std::min<std::int64_t>(n_workers_, total));
    std::uint64_t gen;
    {
      std::unique_lock<std::mutex> lk(mu_);
      job_fn_ = &fn;
      job_begin_ = begin;
      job_end_ = end;
      job_parts_ = parts;
      next_part_ = 0;
      pending_ = parts;
      gen = ++generation_;
    }
    cv_.notify_all();
    // The calling thread participates.
    run_parts(fn, gen);
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    job_fn_ = nullptr;
  }

 private:
  void run_parts(const std::function<void(std::int64_t, std::int64_t)>& fn, std::uint64_t gen) {
    for (;;) {
      int part;
      std::int64_t b, e;
      {
        std::unique_lock<std::mutex> lk(mu_);
        // The generation check pins this loop to the job `fn` belongs to:
        // after the last part is claimed, the submitting thread can return
        // and publish a new job while a worker is still between parts —
        // without the check it would claim parts of the new job against
        // the old (already destroyed) callable.
        if (generation_ != gen || next_part_ >= job_parts_) return;
        part = next_part_++;
        const std::int64_t total = job_end_ - job_begin_;
        const std::int64_t chunk = (total + job_parts_ - 1) / job_parts_;
        b = job_begin_ + part * chunk;
        e = std::min(job_end_, b + chunk);
      }
      if (b < e) {
        tls_in_parallel_region = true;
        if (metrics_enabled()) {
          const auto t0 = std::chrono::steady_clock::now();
          fn(b, e);
          const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0);
          WorkerMetrics& wm = worker_metrics();
          wm.busy_us->add(dt.count());
          wm.chunks->add(1);
        } else {
          fn(b, e);
        }
        tls_in_parallel_region = false;
      }
      std::unique_lock<std::mutex> lk(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || (job_fn_ != nullptr && generation_ != seen_generation); });
        if (stop_) return;
        seen_generation = generation_;
        fn = job_fn_;
      }
      if (fn != nullptr) run_parts(*fn, seen_generation);
    }
  }

  std::vector<std::thread> threads_;
  int n_workers_ = 1;

  std::mutex submit_mu_;  // serializes run() across submitting threads
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  const std::function<void(std::int64_t, std::int64_t)>* job_fn_ = nullptr;
  std::int64_t job_begin_ = 0, job_end_ = 0;
  int job_parts_ = 0;
  int next_part_ = 0;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
};

std::atomic<int> g_override_workers{0};

int default_worker_count() {
  // MUPOD_THREADS pins the pool size for reproducible sweep/bench timings
  // (read once, at pool startup — resizing a live pool is not supported).
  const int env = parse_worker_override(std::getenv("MUPOD_THREADS"));
  if (env > 0) return env;
  return static_cast<int>(std::thread::hardware_concurrency());
}

ThreadPool& pool() {
  static ThreadPool p(g_override_workers.load() > 0 ? g_override_workers.load()
                                                    : default_worker_count());
  return p;
}

}  // namespace

int parse_worker_override(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value) return 0;
  while (*end == ' ' || *end == '\t') ++end;   // tolerate trailing whitespace
  if (*end != '\0') return 0;                  // trailing garbage -> ignore
  if (n <= 0 || n > 4096) return 0;
  return static_cast<int>(n);
}

int parallel_worker_count() { return pool().workers(); }

void set_parallel_worker_count(int n) { g_override_workers.store(n); }

void parallel_for_chunked(std::int64_t begin, std::int64_t end,
                          const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t total = end - begin;
  if (tls_in_parallel_region || total < 2 || pool().workers() == 1) {
    fn(begin, end);
    return;
  }
  pool().run(begin, end, fn);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) fn(i);
  });
}

}  // namespace mupod
