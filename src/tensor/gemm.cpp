#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "obs/metrics.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"

namespace mupod {
namespace {

// Micro-tile geometry now comes from the dispatched kernel registry
// (tensor/kernels/kernels.hpp): the AVX2/FMA intrinsic micro-kernels use a
// 6x16 tile (12 of 16 ymm registers for the accumulator, leaving room for
// the two B strip loads and the A broadcast), the scalar reference 4x8 on
// baseline x86-64 (8 of 16 xmm) — so -DMUPOD_NATIVE is no longer needed
// for vectorized kernels. The cache blocks follow BLIS sizing, scaled
// from the micro-tile: an MR x KC strip of packed A lives in L1 under the
// k-loop, the MC x KC packed block in L2, the KC x NC packed B panel in
// L3.
constexpr int KC = 256;
constexpr int kMcStrips = 24;  // MC = 24 * MR rows, ~96-144 KiB packed
constexpr int kNcStrips = 64;  // NC = 64 * NR columns

// Below this many multiply-accumulates a GEMM runs its tile loop inline:
// the pool dispatch (mutex + condvar wakeup) costs more than it buys.
constexpr std::int64_t kSerialMacCutoff = 1 << 16;

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// ---------------------------------------------------------------------------
// Packing

// Packs rows [i0, i0+mr_cur) x ks [p0, p0+kc) of A into an mr-wide strip:
// ap[kk*mr + r], rows beyond mr_cur zero-padded so the micro-kernel never
// branches on the row count.
void pack_a_strip(const float* a, std::int64_t lda, std::int64_t i0, int mr, int mr_cur,
                  std::int64_t p0, int kc, float* ap) {
  const float* src = a + i0 * lda + p0;
  if (mr_cur == mr) {
    for (int kk = 0; kk < kc; ++kk)
      for (int r = 0; r < mr; ++r) ap[kk * mr + r] = src[r * lda + kk];
    return;
  }
  for (int kk = 0; kk < kc; ++kk) {
    int r = 0;
    for (; r < mr_cur; ++r) ap[kk * mr + r] = src[r * lda + kk];
    for (; r < mr; ++r) ap[kk * mr + r] = 0.0f;
  }
}

// Packs columns [j0, j0+nr_cur) x ks [p0, p0+kc) of B into an nr-wide
// strip bp[kk*nr + c], zero-padding columns beyond nr_cur. With trans_b
// the memory holds Bᵀ (n x k), so the pack is the transpose gather.
void pack_b_strip(const float* b, std::int64_t ldb, bool trans_b, std::int64_t j0, int nr,
                  int nr_cur, std::int64_t p0, int kc, float* bp) {
  if (!trans_b) {
    const float* src = b + p0 * ldb + j0;
    if (nr_cur == nr) {
      for (int kk = 0; kk < kc; ++kk)
        for (int c = 0; c < nr; ++c) bp[kk * nr + c] = src[kk * ldb + c];
      return;
    }
    for (int kk = 0; kk < kc; ++kk) {
      int c = 0;
      for (; c < nr_cur; ++c) bp[kk * nr + c] = src[kk * ldb + c];
      for (; c < nr; ++c) bp[kk * nr + c] = 0.0f;
    }
    return;
  }
  for (int c = 0; c < nr_cur; ++c) {
    const float* src = b + (j0 + c) * ldb + p0;
    for (int kk = 0; kk < kc; ++kk) bp[kk * nr + c] = src[kk];
  }
  for (int c = nr_cur; c < nr; ++c)
    for (int kk = 0; kk < kc; ++kk) bp[kk * nr + c] = 0.0f;
}

// ---------------------------------------------------------------------------
// Micro-kernels
//
// The full-tile kernel is the registry's sgemm_micro entry (scalar
// reference, AVX2 mul+add, or FMA — see tensor/kernels/). All kernels
// consume packed strips (A r-contiguous per k, B c-contiguous per k) and
// accumulate k in ascending order into a local register tile, touching C
// exactly once at the end — this fixed order is what makes the whole GEMM
// bitwise independent of the task decomposition (within a fixed ISA).

// Edge tile (mr_cur < mr and/or nr_cur < nr), generic over the registry
// geometry. Accumulates column-major so the inner loop runs over the
// r-contiguous packed A strip; only the valid nr_cur columns are computed,
// which keeps the n == 1 (GEMV) case at full efficiency instead of
// wasting nr-1 padded lanes.
void micro_edge(int kc, int mr, int nr, int mr_cur, int nr_cur, const float* __restrict ap,
                const float* __restrict bp, float* __restrict c, std::int64_t ldc, float beta) {
  float acc[kMaxNr][kMaxMr] = {};
  for (int kk = 0; kk < kc; ++kk) {
    const float* __restrict ak = ap + static_cast<std::ptrdiff_t>(kk) * mr;
    const float* __restrict bk = bp + static_cast<std::ptrdiff_t>(kk) * nr;
    for (int cc = 0; cc < nr_cur; ++cc) {
      const float bv = bk[cc];
      for (int r = 0; r < mr; ++r) acc[cc][r] += ak[r] * bv;
    }
  }
  for (int r = 0; r < mr_cur; ++r) {
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (int cc = 0; cc < nr_cur; ++cc) crow[cc] = acc[cc][r];
    } else if (beta == 1.0f) {
      for (int cc = 0; cc < nr_cur; ++cc) crow[cc] += acc[cc][r];
    } else {
      for (int cc = 0; cc < nr_cur; ++cc) crow[cc] = beta * crow[cc] + acc[cc][r];
    }
  }
}

// ---------------------------------------------------------------------------
// Mode flag and instrumentation

std::atomic<GemmMode> g_mode{GemmMode::kBlocked};

struct GemmCounters {
  Counter* calls;
  Counter* flops;
  Counter* tiles;
  // Per-kernel dispatch counters: which SGEMM micro-kernel served each call.
  Counter* sgemm_scalar;
  Counter* sgemm_avx2;
  Counter* sgemm_fma;
};

GemmCounters& gemm_counters() {
  static GemmCounters c{&metrics().counter("gemm.calls"),
                        &metrics().counter("gemm.flops"),
                        &metrics().counter("gemm.tiles"),
                        &metrics().counter("kernel.sgemm.scalar"),
                        &metrics().counter("kernel.sgemm.avx2"),
                        &metrics().counter("kernel.sgemm.fma")};
  return c;
}

void note_sgemm_kernel(GemmCounters& gc, KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: gc.sgemm_scalar->add(1); break;
    case KernelIsa::kAvx2: gc.sgemm_avx2->add(1); break;
    case KernelIsa::kAvx2Fma: gc.sgemm_fma->add(1); break;
  }
}

std::atomic<std::int64_t> g_scratch_bytes{0};

void note_scratch_growth(std::int64_t delta) {
  const std::int64_t total = g_scratch_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (metrics_enabled()) {
    static Gauge* g = &metrics().gauge("tensor.scratch.bytes");
    g->set(total);
  }
}

}  // namespace

GemmMode gemm_mode() { return g_mode.load(std::memory_order_relaxed); }
void set_gemm_mode(GemmMode m) { g_mode.store(m, std::memory_order_relaxed); }

GemmBlocking gemm_blocking() {
  const KernelRegistry& reg = kernel_registry();
  return {reg.mr, reg.nr, kMcStrips * reg.mr, KC, kNcStrips * reg.nr};
}

// ---------------------------------------------------------------------------
// GemmScratch

float* GemmScratch::grow(std::vector<float>& v, std::size_t floats) {
  if (v.size() < floats) {
    const std::size_t old_cap = v.capacity();
    v.resize(floats);
    // shrink_to_fit is never called, so capacity growth == live growth.
    if (v.capacity() > old_cap)
      note_scratch_growth(static_cast<std::int64_t>((v.capacity() - old_cap) * sizeof(float)));
  }
  return v.data();
}

unsigned char* GemmScratch::grow_bytes(std::vector<unsigned char>& v, std::size_t bytes) {
  if (v.size() < bytes) {
    const std::size_t old_cap = v.capacity();
    v.resize(bytes);
    if (v.capacity() > old_cap)
      note_scratch_growth(static_cast<std::int64_t>(v.capacity() - old_cap));
  }
  return v.data();
}

std::size_t GemmScratch::bytes() const {
  return (a_.capacity() + b_.capacity() + col_.capacity()) * sizeof(float) + qa_.capacity() +
         qb_.capacity() + qcol_.capacity() + qact_.capacity();
}

GemmScratch::~GemmScratch() {
  g_scratch_bytes.fetch_sub(static_cast<std::int64_t>(bytes()), std::memory_order_relaxed);
}

GemmScratch& GemmScratch::local() {
  thread_local GemmScratch s;
  return s;
}

std::int64_t gemm_scratch_bytes() { return g_scratch_bytes.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Driver

void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc,
          bool trans_b, bool relu) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate product is all-zero; apply beta (and the fused ReLU) only.
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0f)
        std::fill(crow, crow + n, 0.0f);
      else if (beta != 1.0f)
        for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
      if (relu)
        for (std::int64_t j = 0; j < n; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
    }
    return;
  }

  // One registry read per call: the ISA (and so the geometry) is stable
  // for the whole GEMM even if set_kernel_isa races from a test harness.
  const KernelRegistry& reg = kernel_registry();
  const int MR = reg.mr;
  const int NR = reg.nr;
  const std::int64_t MC = static_cast<std::int64_t>(kMcStrips) * MR;
  const std::int64_t NC = static_cast<std::int64_t>(kNcStrips) * NR;

  if (metrics_enabled()) {
    GemmCounters& gc = gemm_counters();
    gc.calls->add(1);
    gc.flops->add(2 * m * n * k);
    gc.tiles->add(ceil_div(m, MR) * ceil_div(n, NR) * ceil_div(k, KC));
    note_sgemm_kernel(gc, reg.isa);
  }

  const bool par = 2 * m * n * k >= kSerialMacCutoff;

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min<std::int64_t>(NC, n - jc);
    const std::int64_t n_js = ceil_div(nc, NR);

    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const int kc = static_cast<int>(std::min<std::int64_t>(KC, k - pc));
      const float beta_pc = pc == 0 ? beta : 1.0f;
      // The fused ReLU must see the COMPLETE accumulation, so it fires
      // only on the final KC panel, right after each tile's store — every
      // C element is written exactly once per panel, so this clamps each
      // value exactly once.
      const bool relu_pc = relu && pc + KC >= k;

      // Pack the KC x NC panel of B into NR strips. The buffer belongs to
      // the calling thread's arena; tile tasks only read it.
      float* bp = GemmScratch::local().packed_b(static_cast<std::size_t>(n_js) * kc * NR);
      const auto pack_b_range = [&](std::int64_t sb, std::int64_t se) {
        for (std::int64_t js = sb; js < se; ++js) {
          const std::int64_t j0 = jc + js * NR;
          const int nr_cur = static_cast<int>(std::min<std::int64_t>(NR, n - j0));
          pack_b_strip(b, ldb, trans_b, j0, NR, nr_cur, pc, kc,
                       bp + static_cast<std::size_t>(js) * kc * NR);
        }
      };
      if (par && n_js >= 4)
        parallel_for_chunked(0, n_js, pack_b_range);
      else
        pack_b_range(0, n_js);

      // Tile tasks: flattened (MC block, NR strip) pairs, block-major so a
      // contiguous chunk packs each A block once and then reuses it across
      // its run of B strips (block in L2, strip in L1).
      const std::int64_t n_ic = ceil_div(m, MC);
      const auto tile_range = [&](std::int64_t tb, std::int64_t te) {
        GemmScratch& scratch = GemmScratch::local();
        float* ap = scratch.packed_a(static_cast<std::size_t>(MC) * kc);
        std::int64_t packed_ic = -1;
        for (std::int64_t t = tb; t < te; ++t) {
          const std::int64_t ic = t / n_js;
          const std::int64_t js = t % n_js;
          const std::int64_t i0 = ic * MC;
          const std::int64_t mc_cur = std::min<std::int64_t>(MC, m - i0);
          const std::int64_t n_ir = ceil_div(mc_cur, MR);
          if (ic != packed_ic) {
            for (std::int64_t ir = 0; ir < n_ir; ++ir) {
              const int mr_cur = static_cast<int>(std::min<std::int64_t>(MR, mc_cur - ir * MR));
              pack_a_strip(a, lda, i0 + ir * MR, MR, mr_cur, pc, kc,
                           ap + static_cast<std::size_t>(ir) * kc * MR);
            }
            packed_ic = ic;
          }
          const std::int64_t j0 = jc + js * NR;
          const int nr_cur = static_cast<int>(std::min<std::int64_t>(NR, n - j0));
          const float* bs = bp + static_cast<std::size_t>(js) * kc * NR;
          for (std::int64_t ir = 0; ir < n_ir; ++ir) {
            const int mr_cur = static_cast<int>(std::min<std::int64_t>(MR, mc_cur - ir * MR));
            const float* as = ap + static_cast<std::size_t>(ir) * kc * MR;
            float* ct = c + (i0 + ir * MR) * ldc + j0;
            if (mr_cur == MR && nr_cur == NR)
              reg.sgemm_micro(kc, as, bs, ct, ldc, beta_pc);
            else
              micro_edge(kc, MR, NR, mr_cur, nr_cur, as, bs, ct, ldc, beta_pc);
            if (relu_pc) {
              for (int r = 0; r < mr_cur; ++r) {
                float* crow = ct + r * ldc;
                for (int cc = 0; cc < nr_cur; ++cc)
                  crow[cc] = crow[cc] > 0.0f ? crow[cc] : 0.0f;
              }
            }
          }
        }
      };
      if (par)
        parallel_for_chunked(0, n_ic * n_js, tile_range);
      else
        tile_range(0, n_ic * n_js);
    }
  }
}

}  // namespace mupod
