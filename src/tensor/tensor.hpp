// Dense float tensor with NCHW layout and the small set of numeric
// utilities the inference engine and the precision-analysis passes need.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace mupod {

// A dense row-major float tensor. Value-semantic: copies copy the buffer.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(const Shape& shape, float fill = 0.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  // NCHW element access (rank-4 tensors).
  float& at(int n, int c, int h, int w);
  float at(int n, int c, int h, int w) const;

  // Flat NCHW index.
  std::int64_t index(int n, int c, int h, int w) const;

  void fill(float v);
  // Reinterpret the buffer with a new shape of identical numel.
  void reshape(const Shape& s);

  // Elementwise in-place transforms.
  void apply(const std::function<float(float)>& f);
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);

  // Reductions.
  // True when every element is finite (no NaN/Inf) — the poisoned-
  // activation check of the pipeline's measurement path.
  bool all_finite() const;
  float max_abs() const;
  float min() const;
  float max() const;
  double sum() const;
  double mean() const;
  // Population standard deviation over all elements.
  double stddev() const;

  // Index of the maximum element within channel-of-batch row `n` for a
  // rank-2 (N, C) tensor — the classifier argmax.
  int argmax_row(int n) const;

  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// out = a - b (shapes must match).
Tensor subtract(const Tensor& a, const Tensor& b);

// Maximum absolute elementwise difference.
double max_abs_diff(const Tensor& a, const Tensor& b);

// Population s.d. of (a - b) over all elements, without materializing the
// difference tensor. This is the sigma_{Y_{K->L}} measurement primitive.
double stddev_of_diff(const Tensor& a, const Tensor& b);

}  // namespace mupod
