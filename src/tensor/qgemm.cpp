#include "tensor/qgemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"

namespace mupod {
namespace {

// Micro-tile geometry. Integer accumulators are wider than floats (int32
// for int8 operands, int64 otherwise), so the tile is kept at 4 x 16: the
// int32 case fits the vector register file on SSE2 and the int64 case
// stays inside one L1 line set. Unlike the float kernel there are no
// KC/MC/NC cache blocks: a tile task owns its output tile for the FULL k
// extent (the requantize epilogue needs the complete accumulator), packing
// its 4-row A strip once per row of tiles and streaming the shared packed
// B panel.
constexpr int QMR = 4;
constexpr int QNR = 16;

// Same pool-dispatch crossover as the float GEMM.
constexpr std::int64_t kSerialMacCutoff = 1 << 16;

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

thread_local ExecMode t_exec_mode = ExecMode::kFloat;
thread_local const QLayerBinding* t_qlayer = nullptr;

struct QGemmCounters {
  Counter* calls;
  Counter* macs;
  Counter* tiles;
  Counter* requant_saturated;
};

QGemmCounters& qgemm_counters() {
  static QGemmCounters c{&metrics().counter("qgemm.calls"), &metrics().counter("qgemm.macs"),
                         &metrics().counter("qgemm.tiles"),
                         &metrics().counter("qgemm.requant.saturated")};
  return c;
}

// ---------------------------------------------------------------------------
// Packing (same layout discipline as the float kernel: A strips
// r-contiguous per k, B strips c-contiguous per k, edges zero-padded so
// the micro-kernel never branches on tile size).

template <typename T>
void pack_a_strip(const T* a, std::int64_t lda, std::int64_t i0, int mr_cur, std::int64_t k,
                  T* ap) {
  const T* src = a + i0 * lda;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    int r = 0;
    for (; r < mr_cur; ++r) ap[kk * QMR + r] = src[r * lda + kk];
    for (; r < QMR; ++r) ap[kk * QMR + r] = T(0);
  }
}

template <typename T>
void pack_b_strip(const T* b, std::int64_t ldb, bool trans_b, std::int64_t j0, int nr_cur,
                  std::int64_t k, T* bp) {
  if (!trans_b) {
    const T* src = b + j0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      int c = 0;
      for (; c < nr_cur; ++c) bp[kk * QNR + c] = src[kk * ldb + c];
      for (; c < QNR; ++c) bp[kk * QNR + c] = T(0);
    }
    return;
  }
  for (int c = 0; c < nr_cur; ++c) {
    const T* src = b + (j0 + c) * ldb;
    for (std::int64_t kk = 0; kk < k; ++kk) bp[kk * QNR + c] = src[kk];
  }
  for (int c = nr_cur; c < QNR; ++c)
    for (std::int64_t kk = 0; kk < k; ++kk) bp[kk * QNR + c] = T(0);
}

// ---------------------------------------------------------------------------
// Micro-kernel: full QMR x QNR register tile over the whole k extent,
// fixed ascending order (the determinism contract; for integers the order
// is also value-irrelevant — addition is exact and associative).

template <typename T, typename Acc>
void qmicro(std::int64_t k, const T* __restrict ap, const T* __restrict bp,
            Acc acc[QMR][QNR]) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const T* __restrict ak = ap + static_cast<std::ptrdiff_t>(kk) * QMR;
    const T* __restrict bk = bp + static_cast<std::ptrdiff_t>(kk) * QNR;
    for (int r = 0; r < QMR; ++r) {
      const Acc av = static_cast<Acc>(ak[r]);
      for (int cc = 0; cc < QNR; ++cc) acc[r][cc] += av * static_cast<Acc>(bk[cc]);
    }
  }
}

// Epilogue: bias in accumulator scale, then either dequantized float
// store or saturating requantized integer store. Returns the tile's
// saturation count (summed per task, added to the sink once — keeps the
// total deterministic).
template <typename T, typename Acc>
std::int64_t store_tile(const Acc acc[QMR][QNR], std::int64_t i0, std::int64_t j0, int mr_cur,
                        int nr_cur, void* c, std::int64_t ldc, const QGemmEpilogue& ep) {
  std::int64_t sat = 0;
  for (int r = 0; r < mr_cur; ++r) {
    for (int cc = 0; cc < nr_cur; ++cc) {
      std::int64_t v = static_cast<std::int64_t>(acc[r][cc]);
      if (ep.bias_row != nullptr)
        v += ep.bias_row[i0 + r];
      else if (ep.bias_col != nullptr)
        v += ep.bias_col[j0 + cc];
      if (!ep.quant_store) {
        static_cast<float*>(c)[(i0 + r) * ldc + j0 + cc] =
            static_cast<float>(static_cast<double>(v) * ep.scale);
      } else {
        std::int32_t q = apply_requant(v, ep.requant);
        if (q > ep.hi) {
          q = ep.hi;
          ++sat;
        } else if (q < ep.lo) {
          q = ep.lo;
          ++sat;
        }
        static_cast<T*>(c)[(i0 + r) * ldc + j0 + cc] = static_cast<T>(q);
      }
    }
  }
  return sat;
}

// ---------------------------------------------------------------------------
// Driver

template <typename T, typename Acc>
void qgemm_impl(std::int64_t m, std::int64_t n, std::int64_t k,
                const T* a, std::int64_t lda, const T* b, std::int64_t ldb,
                void* c, std::int64_t ldc, const QGemmEpilogue& ep, bool trans_b) {
  const std::int64_t n_ir = ceil_div(m, QMR);
  const std::int64_t n_js = ceil_div(n, QNR);
  const bool par = 2 * m * n * std::max<std::int64_t>(k, 1) >= kSerialMacCutoff;

  // Pack ALL of B once into the calling thread's arena (strip-major,
  // full-k strips); tile tasks only read it.
  T* bp = reinterpret_cast<T*>(
      GemmScratch::local().qb(static_cast<std::size_t>(n_js * std::max<std::int64_t>(k, 1)) *
                              QNR * sizeof(T)));
  const auto pack_b_range = [&](std::int64_t sb, std::int64_t se) {
    for (std::int64_t js = sb; js < se; ++js) {
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      pack_b_strip(b, ldb, trans_b, j0, nr_cur, k, bp + js * k * QNR);
    }
  };
  if (par && n_js >= 4)
    parallel_for_chunked(0, n_js, pack_b_range);
  else
    pack_b_range(0, n_js);

  std::atomic<std::int64_t> sat{0};
  // Tile tasks, row-of-tiles major: a contiguous chunk packs each A strip
  // once and reuses it across its run of B strips.
  const auto tile_range = [&](std::int64_t tb, std::int64_t te) {
    T* ap = reinterpret_cast<T*>(GemmScratch::local().qa(
        static_cast<std::size_t>(std::max<std::int64_t>(k, 1)) * QMR * sizeof(T)));
    std::int64_t packed_ir = -1;
    std::int64_t local_sat = 0;
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t ir = t / n_js;
      const std::int64_t js = t % n_js;
      const std::int64_t i0 = ir * QMR;
      const int mr_cur = static_cast<int>(std::min<std::int64_t>(QMR, m - i0));
      if (ir != packed_ir) {
        pack_a_strip(a, lda, i0, mr_cur, k, ap);
        packed_ir = ir;
      }
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      Acc acc[QMR][QNR] = {};
      qmicro(k, ap, bp + js * k * QNR, acc);
      local_sat += store_tile<T>(acc, i0, j0, mr_cur, nr_cur, c, ldc, ep);
    }
    if (local_sat != 0) sat.fetch_add(local_sat, std::memory_order_relaxed);
  };
  if (par)
    parallel_for_chunked(0, n_ir * n_js, tile_range);
  else
    tile_range(0, n_ir * n_js);

  const std::int64_t total_sat = sat.load(std::memory_order_relaxed);
  if (total_sat != 0) {
    if (ep.saturated != nullptr) ep.saturated->fetch_add(total_sat, std::memory_order_relaxed);
    if (metrics_enabled()) qgemm_counters().requant_saturated->add(total_sat);
  }
}

template <typename T>
std::int64_t quantize_to_t(const float* x, std::int64_t n, double step, std::int32_t lo,
                           std::int32_t hi, T* out) {
  const double inv = 1.0 / step;  // step is a power of two: x * inv is exact
  std::int64_t sat = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    double q = std::nearbyint(static_cast<double>(x[i]) * inv);
    if (q > hi) {
      q = hi;
      ++sat;
    } else if (q < lo) {
      q = lo;
      ++sat;
    } else if (!(q == q)) {
      q = 0.0;  // NaN input: deterministic zero, like a flushed lane
    }
    out[i] = static_cast<T>(static_cast<std::int32_t>(q));
  }
  return sat;
}

}  // namespace

ExecMode exec_mode() { return t_exec_mode; }
void set_exec_mode(ExecMode m) { t_exec_mode = m; }

const QLayerBinding* current_qlayer() { return t_qlayer; }
void set_current_qlayer(const QLayerBinding* b) { t_qlayer = b; }

const char* qtype_name(QType t) {
  switch (t) {
    case QType::kInt8: return "int8";
    case QType::kInt16: return "int16";
    case QType::kInt32: return "int32";
  }
  return "?";
}

int qtype_bits(QType t) {
  switch (t) {
    case QType::kInt8: return 8;
    case QType::kInt16: return 16;
    case QType::kInt32: return 32;
  }
  return 0;
}

std::size_t qtype_bytes(QType t) { return static_cast<std::size_t>(qtype_bits(t)) / 8; }

QType qtype_for_bits(int total_bits) {
  if (total_bits <= 8) return QType::kInt8;
  if (total_bits <= 16) return QType::kInt16;
  return QType::kInt32;
}

QRequant make_requant(double real_multiplier) {
  assert(real_multiplier > 0.0);
  QRequant rq;
  int exp = 0;
  const double q = std::frexp(real_multiplier, &exp);  // real = q * 2^exp, q in [0.5, 1)
  std::int64_t qi = std::llround(q * static_cast<double>(std::int64_t{1} << 31));
  if (qi == (std::int64_t{1} << 31)) {
    qi >>= 1;
    ++exp;
  }
  rq.multiplier = static_cast<std::int32_t>(qi);
  rq.shift = -exp;  // y = acc * multiplier * 2^-(31 + shift)
  return rq;
}

std::int32_t apply_requant(std::int64_t acc, const QRequant& rq) {
  // 128-bit product: |acc| < 2^63 and multiplier < 2^31 always fit.
  __int128 p = static_cast<__int128>(acc) * rq.multiplier;
  const int s = 31 + rq.shift;
  if (s > 0) {
    // Round to nearest, ties toward +inf: add half, floor (arithmetic
    // shift). One fixed rule for both signs keeps it branch-free and
    // bit-reproducible.
    p = (p + (static_cast<__int128>(1) << (s - 1))) >> s;
  } else if (s < 0) {
    p <<= -s;
  }
  if (p > std::numeric_limits<std::int32_t>::max()) return std::numeric_limits<std::int32_t>::max();
  if (p < std::numeric_limits<std::int32_t>::min()) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(p);
}

QGemmBlocking qgemm_blocking() { return {QMR, QNR}; }

void qgemm(QType type, std::int64_t m, std::int64_t n, std::int64_t k,
           const void* a, std::int64_t lda, const void* b, std::int64_t ldb,
           void* c, std::int64_t ldc, const QGemmEpilogue& ep, bool trans_b) {
  if (m <= 0 || n <= 0) return;
  if (k < 0) k = 0;

  if (metrics_enabled()) {
    QGemmCounters& qc = qgemm_counters();
    qc.calls->add(1);
    qc.macs->add(m * n * k);
    qc.tiles->add(ceil_div(m, QMR) * ceil_div(n, QNR));
  }

  switch (type) {
    case QType::kInt8:
      // int8 x int8 products are < 2^14, so int32 accumulation is exact
      // for any k < 2^17 — far beyond any layer this pipeline lowers.
      qgemm_impl<std::int8_t, std::int32_t>(m, n, k, static_cast<const std::int8_t*>(a), lda,
                                            static_cast<const std::int8_t*>(b), ldb, c, ldc, ep,
                                            trans_b);
      break;
    case QType::kInt16:
      qgemm_impl<std::int16_t, std::int64_t>(m, n, k, static_cast<const std::int16_t*>(a), lda,
                                             static_cast<const std::int16_t*>(b), ldb, c, ldc, ep,
                                             trans_b);
      break;
    case QType::kInt32:
      qgemm_impl<std::int32_t, std::int64_t>(m, n, k, static_cast<const std::int32_t*>(a), lda,
                                             static_cast<const std::int32_t*>(b), ldb, c, ldc, ep,
                                             trans_b);
      break;
  }
}

std::int64_t quantize_to(QType type, const float* x, std::int64_t n, double step, std::int32_t lo,
                         std::int32_t hi, void* out) {
  switch (type) {
    case QType::kInt8:
      return quantize_to_t(x, n, step, lo, hi, static_cast<std::int8_t*>(out));
    case QType::kInt16:
      return quantize_to_t(x, n, step, lo, hi, static_cast<std::int16_t*>(out));
    case QType::kInt32:
      return quantize_to_t(x, n, step, lo, hi, static_cast<std::int32_t*>(out));
  }
  return 0;
}

}  // namespace mupod
