#include "tensor/qgemm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/parallel.hpp"

namespace mupod {
namespace {

// Micro-tile geometry. Integer accumulators are wider than floats (int32
// for int8 operands, int64 otherwise), so the tile is kept at 4 x 16: the
// int32 case fits the vector register file on SSE2 and the int64 case
// stays inside one L1 line set. Unlike the float kernel there are no
// KC/MC/NC cache blocks: a tile task owns its output tile for the FULL k
// extent (the requantize epilogue needs the complete accumulator), packing
// its 4-row A strip once per row of tiles and streaming the shared packed
// B panel.
constexpr int QMR = 4;
constexpr int QNR = 16;

// Same pool-dispatch crossover as the float GEMM.
constexpr std::int64_t kSerialMacCutoff = 1 << 16;

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

thread_local ExecMode t_exec_mode = ExecMode::kFloat;
thread_local const QLayerBinding* t_qlayer = nullptr;
thread_local const FloatFusion* t_float_fusion = nullptr;

struct QGemmCounters {
  Counter* calls;
  Counter* macs;
  Counter* tiles;
  Counter* requant_saturated;
  // Per-kernel dispatch counters: which integer kernel served each call.
  Counter* k_scalar;    // generic C++ tile path
  Counter* k_madd;      // AVX2 k-pair vpmaddwd kernel (int8 or int16)
  Counter* k_maddubs;   // AVX2 k-quad vpmaddubsw fast path
  Counter* k_gemv;      // AVX2 dot-product GEMV path (n == 1)
};

QGemmCounters& qgemm_counters() {
  static QGemmCounters c{&metrics().counter("qgemm.calls"),
                         &metrics().counter("qgemm.macs"),
                         &metrics().counter("qgemm.tiles"),
                         &metrics().counter("qgemm.requant.saturated"),
                         &metrics().counter("kernel.qgemm.scalar"),
                         &metrics().counter("kernel.qgemm.madd"),
                         &metrics().counter("kernel.qgemm.maddubs"),
                         &metrics().counter("kernel.qgemm.gemv")};
  return c;
}

void count_qgemm_kernel(Counter* QGemmCounters::*which) {
  if (metrics_enabled()) (qgemm_counters().*which)->add(1);
}

void report_requant_sat(std::int64_t total_sat, const QGemmEpilogue& ep) {
  if (total_sat != 0) {
    if (ep.saturated != nullptr) ep.saturated->fetch_add(total_sat, std::memory_order_relaxed);
    if (metrics_enabled()) qgemm_counters().requant_saturated->add(total_sat);
  }
}

// ---------------------------------------------------------------------------
// Packing (same layout discipline as the float kernel: A strips
// r-contiguous per k, B strips c-contiguous per k, edges zero-padded so
// the micro-kernel never branches on tile size).

template <typename T>
void pack_a_strip(const T* a, std::int64_t lda, std::int64_t i0, int mr_cur, std::int64_t k,
                  T* ap) {
  const T* src = a + i0 * lda;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    int r = 0;
    for (; r < mr_cur; ++r) ap[kk * QMR + r] = src[r * lda + kk];
    for (; r < QMR; ++r) ap[kk * QMR + r] = T(0);
  }
}

template <typename T>
void pack_b_strip(const T* b, std::int64_t ldb, bool trans_b, std::int64_t j0, int nr_cur,
                  std::int64_t k, T* bp) {
  if (!trans_b) {
    const T* src = b + j0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      int c = 0;
      for (; c < nr_cur; ++c) bp[kk * QNR + c] = src[kk * ldb + c];
      for (; c < QNR; ++c) bp[kk * QNR + c] = T(0);
    }
    return;
  }
  for (int c = 0; c < nr_cur; ++c) {
    const T* src = b + (j0 + c) * ldb;
    for (std::int64_t kk = 0; kk < k; ++kk) bp[kk * QNR + c] = src[kk];
  }
  for (int c = nr_cur; c < QNR; ++c)
    for (std::int64_t kk = 0; kk < k; ++kk) bp[kk * QNR + c] = T(0);
}

// ---------------------------------------------------------------------------
// Micro-kernel: full QMR x QNR register tile over the whole k extent,
// fixed ascending order (the determinism contract; for integers the order
// is also value-irrelevant — addition is exact and associative).

template <typename T, typename Acc>
void qmicro(std::int64_t k, const T* __restrict ap, const T* __restrict bp,
            Acc acc[QMR][QNR]) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const T* __restrict ak = ap + static_cast<std::ptrdiff_t>(kk) * QMR;
    const T* __restrict bk = bp + static_cast<std::ptrdiff_t>(kk) * QNR;
    for (int r = 0; r < QMR; ++r) {
      const Acc av = static_cast<Acc>(ak[r]);
      for (int cc = 0; cc < QNR; ++cc) acc[r][cc] += av * static_cast<Acc>(bk[cc]);
    }
  }
}

// Epilogue: bias in accumulator scale, then either dequantized float
// store or saturating requantized integer store. Returns the tile's
// saturation count (summed per task, added to the sink once — keeps the
// total deterministic).
template <typename T, typename Acc>
std::int64_t store_tile(const Acc acc[QMR][QNR], std::int64_t i0, std::int64_t j0, int mr_cur,
                        int nr_cur, void* c, std::int64_t ldc, const QGemmEpilogue& ep) {
  std::int64_t sat = 0;
  for (int r = 0; r < mr_cur; ++r) {
    for (int cc = 0; cc < nr_cur; ++cc) {
      std::int64_t v = static_cast<std::int64_t>(acc[r][cc]);
      if (ep.bias_row != nullptr)
        v += ep.bias_row[i0 + r];
      else if (ep.bias_col != nullptr)
        v += ep.bias_col[j0 + cc];
      if (!ep.quant_store) {
        float f = static_cast<float>(static_cast<double>(v) * ep.scale);
        // Branchless relu: GCC compiles `f > 0 ? f : 0` (and std::max) to
        // comiss+branch here, and that branch mispredicts ~50% on
        // random-sign accumulators — costing more than the fused relu
        // saves. Masking with the comparison result forces setcc+and and
        // keeps the ternary's exact semantics (+0 for negatives, -0.0,
        // and NaN alike).
        if (ep.relu)
          f = std::bit_cast<float>(std::bit_cast<std::uint32_t>(f) &
                                   -static_cast<std::uint32_t>(f > 0.0f));
        static_cast<float*>(c)[(i0 + r) * ldc + j0 + cc] = f;
      } else {
        std::int32_t q = apply_requant(v, ep.requant);
        if (ep.relu) q = std::max(q, 0);
        // Branchless saturation: min/max compile to cmov while the
        // compare-and-assign form branches, and requantized values land
        // on both sides of the clamp range often enough to mispredict.
        const std::int32_t qc = std::min(std::max(q, ep.lo), ep.hi);
        sat += qc != q;
        static_cast<T*>(c)[(i0 + r) * ldc + j0 + cc] = static_cast<T>(qc);
      }
    }
  }
  return sat;
}

// ---------------------------------------------------------------------------
// Driver

template <typename T, typename Acc>
void qgemm_impl(std::int64_t m, std::int64_t n, std::int64_t k,
                const T* a, std::int64_t lda, const T* b, std::int64_t ldb,
                void* c, std::int64_t ldc, const QGemmEpilogue& ep, bool trans_b) {
  const std::int64_t n_ir = ceil_div(m, QMR);
  const std::int64_t n_js = ceil_div(n, QNR);
  const bool par = 2 * m * n * std::max<std::int64_t>(k, 1) >= kSerialMacCutoff;

  // Pack ALL of B once into the calling thread's arena (strip-major,
  // full-k strips); tile tasks only read it.
  T* bp = reinterpret_cast<T*>(
      GemmScratch::local().qb(static_cast<std::size_t>(n_js * std::max<std::int64_t>(k, 1)) *
                              QNR * sizeof(T)));
  const auto pack_b_range = [&](std::int64_t sb, std::int64_t se) {
    for (std::int64_t js = sb; js < se; ++js) {
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      pack_b_strip(b, ldb, trans_b, j0, nr_cur, k, bp + js * k * QNR);
    }
  };
  if (par && n_js >= 4)
    parallel_for_chunked(0, n_js, pack_b_range);
  else
    pack_b_range(0, n_js);

  std::atomic<std::int64_t> sat{0};
  // Tile tasks, row-of-tiles major: a contiguous chunk packs each A strip
  // once and reuses it across its run of B strips.
  const auto tile_range = [&](std::int64_t tb, std::int64_t te) {
    T* ap = reinterpret_cast<T*>(GemmScratch::local().qa(
        static_cast<std::size_t>(std::max<std::int64_t>(k, 1)) * QMR * sizeof(T)));
    std::int64_t packed_ir = -1;
    std::int64_t local_sat = 0;
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t ir = t / n_js;
      const std::int64_t js = t % n_js;
      const std::int64_t i0 = ir * QMR;
      const int mr_cur = static_cast<int>(std::min<std::int64_t>(QMR, m - i0));
      if (ir != packed_ir) {
        pack_a_strip(a, lda, i0, mr_cur, k, ap);
        packed_ir = ir;
      }
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      Acc acc[QMR][QNR] = {};
      qmicro(k, ap, bp + js * k * QNR, acc);
      local_sat += store_tile<T>(acc, i0, j0, mr_cur, nr_cur, c, ldc, ep);
    }
    if (local_sat != 0) sat.fetch_add(local_sat, std::memory_order_relaxed);
  };
  if (par)
    parallel_for_chunked(0, n_ir * n_js, tile_range);
  else
    tile_range(0, n_ir * n_js);

  report_requant_sat(sat.load(std::memory_order_relaxed), ep);
}

template <typename T>
std::int64_t quantize_to_t(const float* x, std::int64_t n, double step, std::int32_t lo,
                           std::int32_t hi, T* out) {
  const double inv = 1.0 / step;  // step is a power of two: x * inv is exact
  std::int64_t sat = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    double q = std::nearbyint(static_cast<double>(x[i]) * inv);
    if (q > hi) {
      q = hi;
      ++sat;
    } else if (q < lo) {
      q = lo;
      ++sat;
    } else if (!(q == q)) {
      q = 0.0;  // NaN input: deterministic zero, like a flushed lane
    }
    out[i] = static_cast<T>(static_cast<std::int32_t>(q));
  }
  return sat;
}

// ---------------------------------------------------------------------------
// SIMD paths (tensor/kernels/). All of these compute the exact same
// modular-integer results as the generic templates above, so dispatching
// through them never changes a single output byte — the property battery
// asserts this across ISAs. Layout documentation lives in kernels.hpp;
// saturation/overflow analysis in docs/method.md §16.

template <typename T>
inline T load_b_elem(const T* b, std::int64_t ldb, bool trans_b, std::int64_t kk,
                     std::int64_t j) {
  return trans_b ? b[j * ldb + kk] : b[kk * ldb + j];
}

// Min/max over the used region of B. One streaming pass, cheap next to
// the m*n*k multiply-accumulates it gates.
template <typename T>
void scan_b_range(const T* b, std::int64_t ldb, bool trans_b, std::int64_t n, std::int64_t k,
                  std::int32_t* min_out, std::int32_t* max_out) {
  std::int32_t mn = 0, mx = 0;
  const std::int64_t rows = trans_b ? n : k;
  const std::int64_t cols = trans_b ? k : n;
  for (std::int64_t i = 0; i < rows; ++i) {
    const T* row = b + i * ldb;
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::int32_t v = static_cast<std::int32_t>(row[j]);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
  }
  *min_out = mn;
  *max_out = mx;
}

// k-PAIR packers (qmicro8 / qmicro16). A pairs go into int32s (two int16
// halves, low = even k); B pairs are interleaved int16 per column. Odd-k
// and edge padding is zero, which contributes nothing to any dot product.
template <typename T>
void pack_a_pairs(const T* a, std::int64_t lda, std::int64_t i0, int mr_cur, std::int64_t k,
                  std::int32_t* ap) {
  const std::int64_t kp = (k + 1) / 2;
  for (std::int64_t p = 0; p < kp; ++p) {
    for (int r = 0; r < QMR; ++r) {
      std::int16_t lo = 0, hi = 0;
      if (r < mr_cur) {
        const T* row = a + (i0 + r) * lda;
        lo = static_cast<std::int16_t>(row[2 * p]);
        if (2 * p + 1 < k) hi = static_cast<std::int16_t>(row[2 * p + 1]);
      }
      ap[p * QMR + r] =
          static_cast<std::int32_t>(static_cast<std::uint16_t>(lo) |
                                    (static_cast<std::uint32_t>(static_cast<std::uint16_t>(hi))
                                     << 16));
    }
  }
}

template <typename T>
void pack_b_pairs(const T* b, std::int64_t ldb, bool trans_b, std::int64_t j0, int nr_cur,
                  std::int64_t k, std::int16_t* bp) {
  const std::int64_t kp = (k + 1) / 2;
  for (std::int64_t p = 0; p < kp; ++p) {
    std::int16_t* dst = bp + p * 2 * QNR;
    for (int c = 0; c < QNR; ++c) {
      std::int16_t e0 = 0, e1 = 0;
      if (c < nr_cur) {
        e0 = static_cast<std::int16_t>(load_b_elem(b, ldb, trans_b, 2 * p, j0 + c));
        if (2 * p + 1 < k)
          e1 = static_cast<std::int16_t>(load_b_elem(b, ldb, trans_b, 2 * p + 1, j0 + c));
      }
      dst[2 * c] = e0;
      dst[2 * c + 1] = e1;
    }
  }
}

// k-QUAD packers (qmicro8_maddubs). A bytes carry the +128 offset (the u8
// side of vpmaddubsw); padding is 128 == offset-domain zero, and the
// -128 * colsum compensation cancels padded rows' contribution exactly.
// B bytes are plain int8, zero-padded; colsum[c] accumulates the strip's
// true column sums for the compensation.
void pack_a_quads8(const std::int8_t* a, std::int64_t lda, std::int64_t i0, int mr_cur,
                   std::int64_t k, std::int32_t* ap) {
  const std::int64_t kq = (k + 3) / 4;
  std::uint8_t* bytes = reinterpret_cast<std::uint8_t*>(ap);
  for (std::int64_t q = 0; q < kq; ++q) {
    for (int r = 0; r < QMR; ++r) {
      std::uint8_t* dst = bytes + (q * QMR + r) * 4;
      for (int t = 0; t < 4; ++t) {
        const std::int64_t kk = 4 * q + t;
        std::uint8_t v = 128;
        if (r < mr_cur && kk < k)
          v = static_cast<std::uint8_t>(static_cast<std::int32_t>(a[(i0 + r) * lda + kk]) + 128);
        dst[t] = v;
      }
    }
  }
}

void pack_b_quads8(const std::int8_t* b, std::int64_t ldb, bool trans_b, std::int64_t j0,
                   int nr_cur, std::int64_t k, std::int8_t* bp, std::int32_t* colsum) {
  const std::int64_t kq = (k + 3) / 4;
  for (int c = 0; c < QNR; ++c) colsum[c] = 0;
  for (std::int64_t q = 0; q < kq; ++q) {
    std::int8_t* dst = bp + q * 4 * QNR;
    for (int c = 0; c < QNR; ++c) {
      for (int t = 0; t < 4; ++t) {
        const std::int64_t kk = 4 * q + t;
        std::int8_t v = 0;
        if (c < nr_cur && kk < k) {
          v = load_b_elem(b, ldb, trans_b, kk, j0 + c);
          colsum[c] += v;
        }
        dst[c * 4 + t] = v;
      }
    }
  }
}

// GEMV (n == 1): per-row dot products over contiguous memory, no packing.
// Strided x (ldb != 1 without trans_b) is compacted into scratch first.
template <typename T, typename Acc, typename DotFn>
void qgemv_simd(std::int64_t m, std::int64_t k, const T* a, std::int64_t lda, const T* b,
                std::int64_t ldb, bool trans_b, void* c, std::int64_t ldc,
                const QGemmEpilogue& ep, DotFn dot) {
  const std::int64_t x_stride = trans_b ? 1 : ldb;
  const T* x = b;
  if (x_stride != 1) {
    T* xbuf = reinterpret_cast<T*>(
        GemmScratch::local().qb(static_cast<std::size_t>(k) * sizeof(T)));
    for (std::int64_t kk = 0; kk < k; ++kk) xbuf[kk] = b[kk * x_stride];
    x = xbuf;
  }
  const bool par = 2 * m * k >= kSerialMacCutoff;
  std::atomic<std::int64_t> sat{0};
  const auto row_range = [&](std::int64_t rb, std::int64_t re) {
    std::int64_t local_sat = 0;
    for (std::int64_t i = rb; i < re; ++i) {
      Acc acc[QMR][QNR] = {};
      acc[0][0] = dot(k, a + i * lda, x);
      local_sat += store_tile<T>(acc, i, 0, 1, 1, c, ldc, ep);
    }
    if (local_sat != 0) sat.fetch_add(local_sat, std::memory_order_relaxed);
  };
  if (par)
    parallel_for_chunked(0, m, row_range);
  else
    row_range(0, m);
  report_requant_sat(sat.load(std::memory_order_relaxed), ep);
}

// Matrix drivers. Same task decomposition as qgemm_impl (full-k output
// tiles, strip-major, A packed once per row of tiles per chunk), so
// worker-count determinism carries over unchanged.
enum class PairKernel { kInt8, kInt16 };

template <typename T, typename Acc>
void qgemm_pairs_simd(const KernelRegistry& reg, PairKernel which, std::int64_t m,
                      std::int64_t n, std::int64_t k, const T* a, std::int64_t lda, const T* b,
                      std::int64_t ldb, void* c, std::int64_t ldc, const QGemmEpilogue& ep,
                      bool trans_b) {
  const std::int64_t kp = (k + 1) / 2;
  const std::int64_t n_ir = ceil_div(m, QMR);
  const std::int64_t n_js = ceil_div(n, QNR);
  const bool par = 2 * m * n * k >= kSerialMacCutoff;

  std::int16_t* bp = reinterpret_cast<std::int16_t*>(GemmScratch::local().qb(
      static_cast<std::size_t>(n_js * kp) * 2 * QNR * sizeof(std::int16_t)));
  const auto pack_b_range = [&](std::int64_t sb, std::int64_t se) {
    for (std::int64_t js = sb; js < se; ++js) {
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      pack_b_pairs(b, ldb, trans_b, j0, nr_cur, k, bp + js * kp * 2 * QNR);
    }
  };
  if (par && n_js >= 4)
    parallel_for_chunked(0, n_js, pack_b_range);
  else
    pack_b_range(0, n_js);

  std::atomic<std::int64_t> sat{0};
  const auto tile_range = [&](std::int64_t tb, std::int64_t te) {
    std::int32_t* ap = reinterpret_cast<std::int32_t*>(GemmScratch::local().qa(
        static_cast<std::size_t>(kp) * QMR * sizeof(std::int32_t)));
    std::int64_t packed_ir = -1;
    std::int64_t local_sat = 0;
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t ir = t / n_js;
      const std::int64_t js = t % n_js;
      const std::int64_t i0 = ir * QMR;
      const int mr_cur = static_cast<int>(std::min<std::int64_t>(QMR, m - i0));
      if (ir != packed_ir) {
        pack_a_pairs(a, lda, i0, mr_cur, k, ap);
        packed_ir = ir;
      }
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      alignas(32) Acc acc[QMR][QNR] = {};
      if (which == PairKernel::kInt8)
        reg.qmicro8(kp, ap, bp + js * kp * 2 * QNR,
                    reinterpret_cast<std::int32_t*>(&acc[0][0]));
      else
        reg.qmicro16(kp, ap, bp + js * kp * 2 * QNR,
                     reinterpret_cast<std::int64_t*>(&acc[0][0]));
      local_sat += store_tile<T>(acc, i0, j0, mr_cur, nr_cur, c, ldc, ep);
    }
    if (local_sat != 0) sat.fetch_add(local_sat, std::memory_order_relaxed);
  };
  if (par)
    parallel_for_chunked(0, n_ir * n_js, tile_range);
  else
    tile_range(0, n_ir * n_js);
  report_requant_sat(sat.load(std::memory_order_relaxed), ep);
}

void qgemm_quads_simd(const KernelRegistry& reg, std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                      std::int64_t ldb, void* c, std::int64_t ldc, const QGemmEpilogue& ep,
                      bool trans_b) {
  const std::int64_t kq = (k + 3) / 4;
  const std::int64_t n_ir = ceil_div(m, QMR);
  const std::int64_t n_js = ceil_div(n, QNR);
  const bool par = 2 * m * n * k >= kSerialMacCutoff;

  // One arena block: quad-packed strips, then the per-strip column sums
  // the compensation init needs.
  const std::size_t quads_bytes = static_cast<std::size_t>(n_js * kq) * 4 * QNR;
  unsigned char* raw =
      GemmScratch::local().qb(quads_bytes + static_cast<std::size_t>(n_js) * QNR *
                                                sizeof(std::int32_t));
  std::int8_t* bq = reinterpret_cast<std::int8_t*>(raw);
  std::int32_t* colsums = reinterpret_cast<std::int32_t*>(raw + quads_bytes);
  const auto pack_b_range = [&](std::int64_t sb, std::int64_t se) {
    for (std::int64_t js = sb; js < se; ++js) {
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      pack_b_quads8(b, ldb, trans_b, j0, nr_cur, k, bq + js * kq * 4 * QNR,
                    colsums + js * QNR);
    }
  };
  if (par && n_js >= 4)
    parallel_for_chunked(0, n_js, pack_b_range);
  else
    pack_b_range(0, n_js);

  std::atomic<std::int64_t> sat{0};
  const auto tile_range = [&](std::int64_t tb, std::int64_t te) {
    std::int32_t* ap = reinterpret_cast<std::int32_t*>(GemmScratch::local().qa(
        static_cast<std::size_t>(kq) * QMR * sizeof(std::int32_t)));
    std::int64_t packed_ir = -1;
    std::int64_t local_sat = 0;
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t ir = t / n_js;
      const std::int64_t js = t % n_js;
      const std::int64_t i0 = ir * QMR;
      const int mr_cur = static_cast<int>(std::min<std::int64_t>(QMR, m - i0));
      if (ir != packed_ir) {
        pack_a_quads8(a, lda, i0, mr_cur, k, ap);
        packed_ir = ir;
      }
      const std::int64_t j0 = js * QNR;
      const int nr_cur = static_cast<int>(std::min<std::int64_t>(QNR, n - j0));
      const std::int32_t* cs = colsums + js * QNR;
      alignas(32) std::int32_t acc[QMR][QNR];
      for (int r = 0; r < QMR; ++r)
        for (int cc = 0; cc < QNR; ++cc) acc[r][cc] = -128 * cs[cc];
      reg.qmicro8_maddubs(kq, ap, bq + js * kq * 4 * QNR, &acc[0][0]);
      local_sat += store_tile<std::int8_t>(acc, i0, j0, mr_cur, nr_cur, c, ldc, ep);
    }
    if (local_sat != 0) sat.fetch_add(local_sat, std::memory_order_relaxed);
  };
  if (par)
    parallel_for_chunked(0, n_ir * n_js, tile_range);
  else
    tile_range(0, n_ir * n_js);
  report_requant_sat(sat.load(std::memory_order_relaxed), ep);
}

// Top-level SIMD dispatch per type. Returns false when the generic
// template path should run (scalar registry, k == 0, or an input pattern
// a SIMD kernel cannot handle exactly).
bool qgemm8_simd(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                 std::int64_t lda, const std::int8_t* b, std::int64_t ldb, void* c,
                 std::int64_t ldc, const QGemmEpilogue& ep, bool trans_b) {
  const KernelRegistry& reg = kernel_registry();
  if (k <= 0) return false;
  if (n == 1 && reg.qdot8 != nullptr) {
    count_qgemm_kernel(&QGemmCounters::k_gemv);
    qgemv_simd<std::int8_t, std::int32_t>(m, k, a, lda, b, ldb, trans_b, c, ldc, ep, reg.qdot8);
    return true;
  }
  if (reg.qmicro8 == nullptr) return false;
  if (reg.qmicro8_maddubs != nullptr && k <= (std::int64_t{1} << 16)) {
    // vpmaddubsw fast path: safe only when every |b| <= 64 (no 16-bit
    // saturation) — true for plans whose B-side format is <= 7 bits.
    std::int32_t bmin = 0, bmax = 0;
    scan_b_range(b, ldb, trans_b, n, k, &bmin, &bmax);
    if (bmin >= -64 && bmax <= 64) {
      count_qgemm_kernel(&QGemmCounters::k_maddubs);
      qgemm_quads_simd(reg, m, n, k, a, lda, b, ldb, c, ldc, ep, trans_b);
      return true;
    }
  }
  count_qgemm_kernel(&QGemmCounters::k_madd);
  qgemm_pairs_simd<std::int8_t, std::int32_t>(reg, PairKernel::kInt8, m, n, k, a, lda, b, ldb,
                                              c, ldc, ep, trans_b);
  return true;
}

bool qgemm16_simd(std::int64_t m, std::int64_t n, std::int64_t k, const std::int16_t* a,
                  std::int64_t lda, const std::int16_t* b, std::int64_t ldb, void* c,
                  std::int64_t ldc, const QGemmEpilogue& ep, bool trans_b) {
  const KernelRegistry& reg = kernel_registry();
  if (k <= 0) return false;
  // The single vpmaddwd overflow case needs a (-32768, -32768) pair in
  // BOTH operands; excluding -32768 from the B side makes it unreachable.
  if (n == 1 && reg.qdot16 != nullptr) {
    const std::int64_t x_stride = trans_b ? 1 : ldb;
    bool has_min = false;
    for (std::int64_t kk = 0; kk < k && !has_min; ++kk)
      has_min = b[kk * x_stride] == std::numeric_limits<std::int16_t>::min();
    if (!has_min) {
      count_qgemm_kernel(&QGemmCounters::k_gemv);
      qgemv_simd<std::int16_t, std::int64_t>(m, k, a, lda, b, ldb, trans_b, c, ldc, ep,
                                             reg.qdot16);
      return true;
    }
    return false;
  }
  if (reg.qmicro16 == nullptr) return false;
  std::int32_t bmin = 0, bmax = 0;
  scan_b_range(b, ldb, trans_b, n, k, &bmin, &bmax);
  if (bmin == std::numeric_limits<std::int16_t>::min()) return false;
  count_qgemm_kernel(&QGemmCounters::k_madd);
  qgemm_pairs_simd<std::int16_t, std::int64_t>(reg, PairKernel::kInt16, m, n, k, a, lda, b, ldb,
                                               c, ldc, ep, trans_b);
  return true;
}

}  // namespace

ExecMode exec_mode() { return t_exec_mode; }
void set_exec_mode(ExecMode m) { t_exec_mode = m; }

const QLayerBinding* current_qlayer() { return t_qlayer; }
void set_current_qlayer(const QLayerBinding* b) { t_qlayer = b; }

const FloatFusion* current_float_fusion() { return t_float_fusion; }
void set_current_float_fusion(const FloatFusion* f) { t_float_fusion = f; }

const char* qtype_name(QType t) {
  switch (t) {
    case QType::kInt8: return "int8";
    case QType::kInt16: return "int16";
    case QType::kInt32: return "int32";
  }
  return "?";
}

int qtype_bits(QType t) {
  switch (t) {
    case QType::kInt8: return 8;
    case QType::kInt16: return 16;
    case QType::kInt32: return 32;
  }
  return 0;
}

std::size_t qtype_bytes(QType t) { return static_cast<std::size_t>(qtype_bits(t)) / 8; }

QType qtype_for_bits(int total_bits) {
  if (total_bits <= 8) return QType::kInt8;
  if (total_bits <= 16) return QType::kInt16;
  return QType::kInt32;
}

QRequant make_requant(double real_multiplier) {
  assert(real_multiplier > 0.0);
  QRequant rq;
  int exp = 0;
  const double q = std::frexp(real_multiplier, &exp);  // real = q * 2^exp, q in [0.5, 1)
  std::int64_t qi = std::llround(q * static_cast<double>(std::int64_t{1} << 31));
  if (qi == (std::int64_t{1} << 31)) {
    qi >>= 1;
    ++exp;
  }
  rq.multiplier = static_cast<std::int32_t>(qi);
  rq.shift = -exp;  // y = acc * multiplier * 2^-(31 + shift)
  return rq;
}

std::int32_t apply_requant(std::int64_t acc, const QRequant& rq) {
  // Power-of-two fast path: with multiplier == 2^30 the q31 product is
  // acc << 30, so the rounding shift by s = 31 + shift collapses to a
  // plain int64 add-half-floor shift by t = s - 30 — bit-identical to
  // the 128-bit path below (the half-constant 2^(s-1) is (acc-domain)
  // 2^(t-1) · 2^30 whenever t >= 1) and several times cheaper. This is
  // the only shape the graph compiler emits: activation and weight steps
  // are powers of two, so every cross-layer requantize multiplier is too.
  if (rq.multiplier == (std::int32_t{1} << 30)) {
    const int t = rq.shift + 1;
    if (t >= 1 && t <= 62) {
      const std::int64_t q = (acc + (std::int64_t{1} << (t - 1))) >> t;
      if (q > std::numeric_limits<std::int32_t>::max())
        return std::numeric_limits<std::int32_t>::max();
      if (q < std::numeric_limits<std::int32_t>::min())
        return std::numeric_limits<std::int32_t>::min();
      return static_cast<std::int32_t>(q);
    }
  }
  // 128-bit product: |acc| < 2^63 and multiplier < 2^31 always fit.
  __int128 p = static_cast<__int128>(acc) * rq.multiplier;
  const int s = 31 + rq.shift;
  if (s > 0) {
    // Round to nearest, ties toward +inf: add half, floor (arithmetic
    // shift). One fixed rule for both signs keeps it branch-free and
    // bit-reproducible.
    p = (p + (static_cast<__int128>(1) << (s - 1))) >> s;
  } else if (s < 0) {
    p <<= -s;
  }
  if (p > std::numeric_limits<std::int32_t>::max()) return std::numeric_limits<std::int32_t>::max();
  if (p < std::numeric_limits<std::int32_t>::min()) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(p);
}

QGemmBlocking qgemm_blocking() { return {QMR, QNR}; }

void qgemm(QType type, std::int64_t m, std::int64_t n, std::int64_t k,
           const void* a, std::int64_t lda, const void* b, std::int64_t ldb,
           void* c, std::int64_t ldc, const QGemmEpilogue& ep, bool trans_b) {
  if (m <= 0 || n <= 0) return;
  if (k < 0) k = 0;

  if (metrics_enabled()) {
    QGemmCounters& qc = qgemm_counters();
    qc.calls->add(1);
    qc.macs->add(m * n * k);
    qc.tiles->add(ceil_div(m, QMR) * ceil_div(n, QNR));
  }

  switch (type) {
    case QType::kInt8:
      // int8 x int8 products are < 2^14, so int32 accumulation is exact
      // for any k < 2^17 — far beyond any layer this pipeline lowers.
      // The SIMD paths compute identical bits (kernels.hpp contract); the
      // generic template is the scalar ISA and the fallback.
      if (qgemm8_simd(m, n, k, static_cast<const std::int8_t*>(a), lda,
                      static_cast<const std::int8_t*>(b), ldb, c, ldc, ep, trans_b))
        return;
      count_qgemm_kernel(&QGemmCounters::k_scalar);
      qgemm_impl<std::int8_t, std::int32_t>(m, n, k, static_cast<const std::int8_t*>(a), lda,
                                            static_cast<const std::int8_t*>(b), ldb, c, ldc, ep,
                                            trans_b);
      break;
    case QType::kInt16:
      if (qgemm16_simd(m, n, k, static_cast<const std::int16_t*>(a), lda,
                       static_cast<const std::int16_t*>(b), ldb, c, ldc, ep, trans_b))
        return;
      count_qgemm_kernel(&QGemmCounters::k_scalar);
      qgemm_impl<std::int16_t, std::int64_t>(m, n, k, static_cast<const std::int16_t*>(a), lda,
                                             static_cast<const std::int16_t*>(b), ldb, c, ldc, ep,
                                             trans_b);
      break;
    case QType::kInt32:
      count_qgemm_kernel(&QGemmCounters::k_scalar);
      qgemm_impl<std::int32_t, std::int64_t>(m, n, k, static_cast<const std::int32_t*>(a), lda,
                                             static_cast<const std::int32_t*>(b), ldb, c, ldc, ep,
                                             trans_b);
      break;
  }
}

std::int64_t quantize_to(QType type, const float* x, std::int64_t n, double step, std::int32_t lo,
                         std::int32_t hi, void* out) {
  // int8/int16 dispatch to the registry's vectorized quantizer when one is
  // compiled in (bit-compatible with quantize_to_t by contract). int32
  // stays scalar: 2^31 - 1 is not float-representable, so the clamp needs
  // the double path.
  const KernelRegistry& reg = kernel_registry();
  switch (type) {
    case QType::kInt8:
      if (reg.quantize8 != nullptr) {
        if (metrics_enabled()) {
          static Counter* c = &metrics().counter("kernel.quantize.simd");
          c->add(1);
        }
        return reg.quantize8(x, n, static_cast<float>(1.0 / step), lo, hi,
                             static_cast<std::int8_t*>(out));
      }
      return quantize_to_t(x, n, step, lo, hi, static_cast<std::int8_t*>(out));
    case QType::kInt16:
      if (reg.quantize16 != nullptr) {
        if (metrics_enabled()) {
          static Counter* c = &metrics().counter("kernel.quantize.simd");
          c->add(1);
        }
        return reg.quantize16(x, n, static_cast<float>(1.0 / step), lo, hi,
                              static_cast<std::int16_t*>(out));
      }
      return quantize_to_t(x, n, step, lo, hi, static_cast<std::int16_t*>(out));
    case QType::kInt32:
      return quantize_to_t(x, n, step, lo, hi, static_cast<std::int32_t*>(out));
  }
  return 0;
}

}  // namespace mupod
