#include "tensor/shape.hpp"

#include <cassert>
#include <sstream>

namespace mupod {

Shape::Shape(std::initializer_list<int> dims) {
  assert(dims.size() <= static_cast<std::size_t>(kMaxRank));
  rank_ = static_cast<int>(dims.size());
  int i = 0;
  for (int d : dims) {
    assert(d >= 0);
    dims_[i++] = d;
  }
}

int Shape::dim(int i) const {
  assert(i >= 0 && i < rank_);
  return dims_[i];
}

std::int64_t Shape::numel() const {
  if (rank_ == 0) return 0;
  std::int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

bool Shape::operator==(const Shape& o) const {
  if (rank_ != o.rank_) return false;
  for (int i = 0; i < rank_; ++i)
    if (dims_[i] != o.dims_[i]) return false;
  return true;
}

Shape Shape::with_dim(int i, int v) const {
  assert(i >= 0 && i < rank_ && v >= 0);
  Shape s = *this;
  s.dims_[i] = v;
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '(';
  for (int i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace mupod
