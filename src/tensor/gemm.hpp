// Register-blocked packed single-precision GEMM for the forward hot path.
//
// Every stage of the pipeline — λ/θ profiling, the sigma binary search,
// the objective sweeps — bottoms out in Network::forward, and the stage
// accounting of the observability layer shows the forward passes carry
// nearly all wall time. This kernel replaces the scalar rank-1 update in
// Conv2DLayer::forward and the per-row dot product in
// InnerProductLayer::forward with one blocked matrix multiply:
//
//   C (m x n) = A (m x k) · B (k x n)  +  beta · C
//
// organised BLIS-style: B is packed KC x NC panel by panel into NR-wide
// strips, A is packed MC x KC block by block into MR-wide strips, and an
// MR x NR register-tile micro-kernel sweeps the packed panels. The inner
// loops are plain C with compile-time tile sizes so GCC/Clang
// auto-vectorize them — no intrinsics, so the kernel builds on any
// target (MR/NR widen automatically when AVX is available, see gemm.cpp).
//
// Determinism contract (load-bearing: the plan-service determinism suite
// asserts bit-identical runs and warm == cold plans):
//   * blocking parameters are compile-time constants;
//   * each output tile is owned by exactly one task per KC step, KC steps
//     are separated by a barrier (sequential loop in gemm()), and the
//     micro-kernel accumulates k in a fixed ascending order;
//   * there are no cross-thread reductions.
// Consequently the result is bitwise independent of the worker count and
// of whether the call runs serial (nested inside a parallel region) or
// parallel — only the wall time changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mupod {

// Forward-kernel selection. kBlocked is the packed GEMM above; kLegacy
// keeps the pre-GEMM scalar paths alive (rank-1 im2col update in conv,
// per-row dot in inner product) so bench_forward can measure the old/new
// trajectory on the same binary. Not thread-safe: flip at startup or
// between forwards, never while one is running.
enum class GemmMode { kBlocked, kLegacy };
GemmMode gemm_mode();
void set_gemm_mode(GemmMode m);

// The compile-time blocking actually built into this binary (micro-tile
// MR x NR, cache blocks MC/KC/NC). Exposed so tests can cover the
// non-multiple edge cases of the real configuration.
struct GemmBlocking {
  int mr, nr;
  int mc, kc, nc;
};
GemmBlocking gemm_blocking();

// C = A · B + beta * C, row-major.
//   A: m x k with leading dimension lda.
//   B: k x n with leading dimension ldb — or, with trans_b, the memory
//      holds Bᵀ (n x k, leading dimension ldb); packing absorbs the
//      transpose, so e.g. an (out, in) weight matrix multiplies activations
//      without an explicit transpose pass.
//   C: m x n with leading dimension ldc.
// beta == 0 never reads C (safe on uninitialised output buffers); any
// other beta scales the existing C into the first KC step.
// relu applies the exact ReLULayer expression (x > 0 ? x : 0) to each
// output element once its full-k accumulation completes (on the last KC
// panel, per tile) — bitwise identical to a separate elementwise pass,
// without re-reading C.
// Parallelises over (MC block x NR strip) tile tasks on the global pool;
// inside an existing parallel region it runs serial with identical
// results (see the determinism contract above).
void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb,
          float beta, float* c, std::int64_t ldc,
          bool trans_b = false, bool relu = false);

// Per-thread grow-only scratch arena. One instance lives per worker
// thread for the thread's lifetime; buffers only ever grow, so steady
// state does zero heap traffic no matter how many forwards run. Slots:
//   packed_a / packed_b  the GEMM packing buffers (packed_b is written by
//                        the calling thread and read by tile tasks);
//   col                  the im2col column buffer of Conv2DLayer;
//   qa / qb / qcol /     byte-granular slots for the integer path
//   qact                 (tensor/qgemm.cpp): packed int A strips, packed
//                        int B panels, the integer im2col buffer, and the
//                        quantized copy of a layer's input activations
//                        (qb/qact are written by the calling thread and
//                        read by tile tasks).
// The returned pointers stay valid until the next call for the same slot
// on the same thread with a larger size.
class GemmScratch {
 public:
  ~GemmScratch();

  float* packed_a(std::size_t floats) { return grow(a_, floats); }
  float* packed_b(std::size_t floats) { return grow(b_, floats); }
  float* col(std::size_t floats) { return grow(col_, floats); }

  unsigned char* qa(std::size_t bytes) { return grow_bytes(qa_, bytes); }
  unsigned char* qb(std::size_t bytes) { return grow_bytes(qb_, bytes); }
  unsigned char* qcol(std::size_t bytes) { return grow_bytes(qcol_, bytes); }
  unsigned char* qact(std::size_t bytes) { return grow_bytes(qact_, bytes); }

  // Bytes currently held by this thread's arena.
  std::size_t bytes() const;

  // The calling thread's arena.
  static GemmScratch& local();

 private:
  float* grow(std::vector<float>& v, std::size_t floats);
  unsigned char* grow_bytes(std::vector<unsigned char>& v, std::size_t bytes);

  std::vector<float> a_, b_, col_;
  std::vector<unsigned char> qa_, qb_, qcol_, qact_;
};

// Process-wide total of live scratch-arena bytes across all threads.
// Mirrored into the `tensor.scratch.bytes` gauge whenever metrics are
// enabled; always available here for tests and tools.
std::int64_t gemm_scratch_bytes();

}  // namespace mupod
