// Graph compiler: rewrites a Network (+ optional per-layer fixed-point
// plan) into a fused execution program (compile/compiled_network.hpp).
//
// The rewriter runs three STRUCTURAL rules to a fixpoint over the DAG —
// the rule set is confluent (each rule only removes a single-consumer
// intermediate node and marks its producer, and no rule ever un-fires),
// so the emitted graph is independent of rule order, which the
// metamorphic battery in tests/test_compile.cpp asserts by permuting it:
//
//   drop-noop   kDropout is the identity at inference and is always
//               elided; kFlatten is a pure NCHW reshape and is elided
//               when its sole consumer is an inner product (which
//               flattens by construction). The network's output node is
//               never dropped — the caller observes its shape.
//   fold-norm   a BatchNormScale whose producer is a conv with exactly
//               one consumer folds into the conv: the float path keeps
//               the per-channel affine as a store epilogue (bitwise
//               identical to the separate layer); the integer path folds
//               it into the weights/bias BEFORE quantization
//               (w' = w*s[oc], b' = b*s[oc] + t[oc]). A conv folds at
//               most one norm and never one across a fused ReLU — the
//               epilogue applies norm-then-relu, so conv->ReLU->BN keeps
//               its BN separate.
//   fuse-relu   a ReLU whose producer is a conv/FC with exactly one
//               consumer runs inside the producer's GEMM/qgemm store
//               epilogue (tensor/gemm.hpp, tensor/qgemm.hpp) — no extra
//               tensor pass.
//
// After the structural fixpoint, REGION FORMATION (a deterministic
// function of the rewritten graph, so not part of the permutable rule
// set) walks integer-lowered producer/consumer pairs: when a lowered
// node's only consumer is another lowered node of the same storage type,
// the dequantize/quantize pair at the boundary is elided — the producer
// stores integers directly on the consumer's activation grid through one
// gemmlowp-style q31 requantize (acc_scale_u / act_step_v; both are
// powers of two, so the q31 decomposition is exact). Chains of such
// edges form fused regions whose interior activations stay int8/int16.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/network.hpp"
#include "quant/qexec.hpp"

namespace mupod {

struct CompileOptions {
  // Uniform weight bitwidth for integer lowering, matching
  // QExecOptions/PlanServiceConfig::weight_bits.
  int weight_bits = 16;
  // Per-rule gates (all on by default; tests use them to isolate rules).
  bool drop_noops = true;
  bool fold_norm = true;
  bool fuse_relu = true;
  bool elide_requant = true;
};

// The permutable structural rules (see rewrite_with_order).
enum class RewriteRule { kDropNoop, kFoldNorm, kFuseReLU };

// Per-model fusion report; also the schema of the golden coverage file
// (tests/golden/fusion_coverage.txt, docs/method.md section 17).
struct FusionCoverage {
  int source_nodes = 0;   // nodes in the source network
  int steps = 0;          // executing steps after rewriting
  int lowered = 0;        // steps running integer dot products
  int relu_fused = 0;     // fuse-relu firings
  int norm_folded = 0;    // fold-norm firings
  int noops_dropped = 0;  // drop-noop firings
  int qdq_elided = 0;     // integer boundaries stored requantized
  int regions = 0;        // fused integer regions (>= 2 layers)
  int largest_region = 0; // layers in the largest fused region
};

// One source node after rewriting.
struct IrNode {
  int src = -1;          // source network node id
  LayerKind kind = LayerKind::kInput;
  std::vector<int> inputs;  // producer SRC ids, resolved through absorptions

  // >= 0: this node no longer executes; its value is that src node's
  // output (the producer for noops, the producer WITH the fused epilogue
  // for absorbed ReLU/norm nodes).
  int absorbed_into = -1;
  bool noop_dropped = false;  // absorbed by drop-noop (vs a fusion)

  bool relu_fused = false;  // a consumer ReLU runs in this node's store
  int norm_src = -1;        // src id of the BatchNormScale folded in here

  // Integer lowering (plan-aware compiles only).
  bool lowered = false;
  FixedPointFormat act_fmt;  // the plan's activation format
  FixedPointFormat w_fmt;    // derived from the FOLDED weights' max |w|
  QType type = QType::kInt16;
  bool in_quantized = false;  // input arrives as carrier integers
  bool quant_store = false;   // store requantized onto the consumer grid
  int quant_consumer = -1;    // src id whose activation grid the store targets

  bool operator==(const IrNode& o) const = default;
};

// The rewriter's output: one IrNode per source node (indexed by src id)
// plus the coverage counters. compile() lowers this into a
// CompiledNetwork; the metamorphic tests compare CompiledGraphs directly.
struct CompiledGraph {
  std::vector<IrNode> nodes;
  FusionCoverage coverage;

  // Follows absorption chains to the src id whose step carries `src`'s
  // value.
  int resolve(int src) const;

  // Structural equality (nodes only — coverage is derived).
  bool operator==(const CompiledGraph& o) const { return nodes == o.nodes; }
};

class CompiledNetwork;

class GraphCompiler {
 public:
  explicit GraphCompiler(const CompileOptions& opts = {}) : opts_(opts) {}

  const CompileOptions& options() const { return opts_; }

  // Rewrite only — exposed for the metamorphic/property battery. The
  // plan-aware overload additionally marks integer lowering and forms
  // fused regions; `analyzed[i]` is the node id `formats[i]` applies to.
  CompiledGraph rewrite(const Network& net) const;
  CompiledGraph rewrite(const Network& net, const std::vector<int>& analyzed,
                        const std::vector<FixedPointFormat>& formats) const;
  // Same, with an explicit structural-rule order (each listed rule is
  // attempted in sequence inside every fixpoint iteration; rules absent
  // from `order` never fire). The default order is kDropNoop, kFoldNorm,
  // kFuseReLU.
  CompiledGraph rewrite_with_order(const Network& net, const std::vector<int>& analyzed,
                                   const std::vector<FixedPointFormat>& formats,
                                   std::span<const RewriteRule> order) const;

  // Rewrite + lower into an executable program. The float overload emits
  // no integer steps; the plan-aware overload lowers every formatted
  // weight-bearing node exactly as QuantizedNetwork does (byte-identical
  // operands via lower_layer_operands), on norm-folded weights where
  // fold-norm fired. The source network is borrowed and never mutated —
  // it must outlive the CompiledNetwork.
  CompiledNetwork compile(const Network& net) const;
  CompiledNetwork compile(const Network& net, const std::vector<int>& analyzed,
                          const std::vector<FixedPointFormat>& formats) const;

 private:
  CompileOptions opts_;
};

// Renders the coverage report line used by the golden file:
//   "<tag> nodes=N steps=S lowered=L relu_fused=R norm_folded=B
//    noops_dropped=D qdq_elided=Q regions=G largest_region=M"
std::string render_fusion_coverage(const std::string& tag, const FusionCoverage& c);

}  // namespace mupod
