// CompiledNetwork: the executable artifact emitted by GraphCompiler.
//
// A program is a topologically ordered list of steps, one per surviving
// source node. Each step borrows its Layer from the source network and
// carries the fusion state the rewriter attached:
//
//   * float steps with a fused epilogue bind a FloatFusion (folded norm
//     affine and/or ReLU) around the layer's forward — the layer applies
//     it inside its store loops, bitwise identical to the separate
//     layers;
//   * integer-lowered steps own their quantized operands (norm-folded
//     where fold-norm fired) and bind an extended QLayerBinding: fused
//     ReLU, carrier input (in_quantized skips quantize-on-load), and
//     cross-layer requantized store (quant_store writes integers on the
//     consumer's grid). Interior tensors of a fused region hold carrier
//     integers bit-cast inside the ordinary float Tensor buffers; their
//     logical (float) shapes are preserved so downstream output_shape
//     computations are unchanged.
//
// Determinism inherits qexec's contract: forward() is bitwise independent
// of the worker count, and integer steps are byte-identical across ISAs.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "compile/graph_compiler.hpp"
#include "nn/network.hpp"
#include "quant/qexec.hpp"
#include "tensor/qgemm.hpp"

namespace mupod {

// One executing step of the compiled program.
struct CompiledStep {
  int src = -1;               // source node id
  const Layer* layer = nullptr;  // borrowed from the source network
  std::vector<int> inputs;    // indices into the step list

  // Float-path fusion.
  bool relu = false;
  std::vector<float> norm_scale;  // folded norm affine (empty if none)
  std::vector<float> norm_shift;

  // Integer lowering.
  bool lowered = false;
  QLayerLowering lw;          // owned operands (norm-folded weights)
  bool in_quantized = false;
  bool quant_store = false;
  QGrid store_grid;           // the consumer's activation grid
  QRequant store_requant;     // acc_scale / consumer act_step, q31
};

class CompiledNetwork {
 public:
  CompiledNetwork() = default;
  CompiledNetwork(const Network& net, CompiledGraph graph, const CompileOptions& opts);
  // Movable (the atomic counters carry over by value); not thread-safe to
  // move while other threads are forwarding through the source.
  CompiledNetwork(CompiledNetwork&& o) noexcept
      : net_(o.net_),
        graph_(std::move(o.graph_)),
        steps_(std::move(o.steps_)),
        step_of_src_(std::move(o.step_of_src_)),
        output_step_(o.output_step_),
        act_saturated_(o.act_saturated_.load(std::memory_order_relaxed)),
        forwards_(o.forwards_.load(std::memory_order_relaxed)) {}
  CompiledNetwork& operator=(CompiledNetwork&& o) noexcept {
    net_ = o.net_;
    graph_ = std::move(o.graph_);
    steps_ = std::move(o.steps_);
    step_of_src_ = std::move(o.step_of_src_);
    output_step_ = o.output_step_;
    act_saturated_.store(o.act_saturated_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    forwards_.store(o.forwards_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  // Runs the compiled program; returns the output of the (resolved)
  // final node, always a plain float tensor.
  Tensor forward(const Tensor& input) const;

  // Same, additionally copying each step's RAW output tensor (fused
  // regions' interior tensors hold carrier integers bit-cast in the
  // float buffer) into `step_outputs[i]` for step i. The differential
  // battery reads these to check every region boundary against a
  // double-rounding reference.
  Tensor forward_captured(const Tensor& input, std::vector<Tensor>* step_outputs) const;

  const std::vector<CompiledStep>& steps() const { return steps_; }
  const CompiledGraph& graph() const { return graph_; }
  const FusionCoverage& coverage() const { return graph_.coverage; }
  const Network& source() const { return *net_; }
  int output_step() const { return output_step_; }
  // -1 when the src node was absorbed (its value lives in another step).
  int step_of_src(int src) const;

  // Clipped values (quantize-on-load + requantized stores) across all
  // forwards so far; weight clips from offline lowering.
  std::int64_t act_saturated() const { return act_saturated_.load(std::memory_order_relaxed); }
  std::int64_t weight_saturated() const;
  std::int64_t forwards() const { return forwards_.load(std::memory_order_relaxed); }

 private:
  Tensor run(const Tensor& input, std::vector<Tensor>* step_outputs) const;

  const Network* net_ = nullptr;
  CompiledGraph graph_;
  std::vector<CompiledStep> steps_;
  std::vector<int> step_of_src_;  // src id -> executing step index, or -1
  int output_step_ = -1;
  mutable std::atomic<std::int64_t> act_saturated_{0};
  mutable std::atomic<std::int64_t> forwards_{0};
};

}  // namespace mupod
