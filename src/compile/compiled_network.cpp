#include "compile/compiled_network.hpp"

#include <cassert>
#include <utility>

#include "nn/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_scope.hpp"

namespace mupod {

CompiledNetwork::CompiledNetwork(const Network& net, CompiledGraph graph,
                                 const CompileOptions& opts)
    : net_(&net), graph_(std::move(graph)) {
  assert(net.finalized());
  const int n_nodes = net.num_nodes();
  step_of_src_.assign(static_cast<std::size_t>(n_nodes), -1);

  for (int id = 0; id < n_nodes; ++id) {
    const IrNode& n = graph_.nodes[static_cast<std::size_t>(id)];
    if (n.absorbed_into >= 0) continue;

    CompiledStep st;
    st.src = id;
    st.layer = &net.layer(id);
    st.inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      const int si = step_of_src_[static_cast<std::size_t>(in)];
      assert(si >= 0 && "compiled step consumes an absorbed node");
      st.inputs.push_back(si);
    }
    st.relu = n.relu_fused;

    if (n.lowered) {
      const Tensor* w = st.layer->weights();
      const Tensor* b = st.layer->bias();
      Tensor wf, bf;
      if (n.norm_src >= 0) {
        // Fold the norm affine into the operands BEFORE quantization:
        // w' = w * s[oc], b' = b * s[oc] + t[oc] (the fold_batchnorm
        // math); the same float products folded_wmax scanned, so the
        // derived w_fmt/type match the rewriter's decision.
        const auto& bn = static_cast<const BatchNormScaleLayer&>(net.layer(n.norm_src));
        const float* sc = bn.scale().data();
        const float* sh = bn.shift().data();
        const int oc_n = w->shape().dim(0);
        const std::int64_t per_oc = w->numel() / oc_n;
        wf = *w;
        float* wd = wf.data();
        for (int oc = 0; oc < oc_n; ++oc) {
          const float s = sc[oc];
          float* row = wd + static_cast<std::int64_t>(oc) * per_oc;
          for (std::int64_t j = 0; j < per_oc; ++j) row[j] = row[j] * s;
        }
        bf = Tensor(Shape({oc_n}));
        for (int oc = 0; oc < oc_n; ++oc)
          bf[oc] = (b != nullptr ? (*b)[oc] : 0.0f) * sc[oc] + sh[oc];
        w = &wf;
        b = &bf;
      }
      const bool ok = lower_layer_operands(id, n.act_fmt, opts.weight_bits, w, b, &st.lw);
      assert(ok);
      (void)ok;
      assert(st.lw.type == n.type && "rewrite/lowering storage-type mismatch");
      st.lowered = true;
      st.in_quantized = n.in_quantized;
      if (n.quant_store) {
        st.quant_store = true;
        const IrNode& cons = graph_.nodes[static_cast<std::size_t>(n.quant_consumer)];
        st.store_grid = qgrid_for(cons.act_fmt);
        const QGrid ag = qgrid_for(st.lw.act_fmt);
        const QGrid wg = qgrid_for(st.lw.w_fmt);
        // acc_scale / consumer act_step: all powers of two, so the q31
        // decomposition is exact and the requantize rounds exactly once.
        st.store_requant = make_requant(ag.step * wg.step / st.store_grid.step);
      }
    } else if (n.norm_src >= 0) {
      // Float execution keeps the folded norm as a store epilogue —
      // bitwise identical to the separate BatchNormScale pass.
      const auto& bn = static_cast<const BatchNormScaleLayer&>(net.layer(n.norm_src));
      const float* sc = bn.scale().data();
      const float* sh = bn.shift().data();
      const std::int64_t c_n = bn.scale().numel();
      st.norm_scale.assign(sc, sc + c_n);
      st.norm_shift.assign(sh, sh + c_n);
    }

    step_of_src_[static_cast<std::size_t>(id)] = static_cast<int>(steps_.size());
    steps_.push_back(std::move(st));
  }
  output_step_ = step_of_src_[static_cast<std::size_t>(graph_.resolve(net.output_node()))];
  assert(output_step_ >= 0);
}

int CompiledNetwork::step_of_src(int src) const {
  if (src < 0 || src >= static_cast<int>(step_of_src_.size())) return -1;
  return step_of_src_[static_cast<std::size_t>(src)];
}

std::int64_t CompiledNetwork::weight_saturated() const {
  std::int64_t total = 0;
  for (const CompiledStep& st : steps_)
    if (st.lowered) total += st.lw.weight_saturated;
  return total;
}

Tensor CompiledNetwork::forward(const Tensor& input) const { return run(input, nullptr); }

Tensor CompiledNetwork::forward_captured(const Tensor& input,
                                         std::vector<Tensor>* step_outputs) const {
  return run(input, step_outputs);
}

Tensor CompiledNetwork::run(const Tensor& input, std::vector<Tensor>* cap) const {
  forwards_.fetch_add(1, std::memory_order_relaxed);
  // Same cost currency as Network::forward / QuantizedNetwork::forward:
  // compiled batches are forward passes charged to the caller's stage.
  note_forwards(input.shape().n());
  if (metrics_enabled()) {
    static Counter& calls = metrics().counter("compile.forward.calls");
    calls.add(1);
  }

  const int n_steps = static_cast<int>(steps_.size());
  std::vector<Tensor> local(static_cast<std::size_t>(n_steps));
  std::vector<const Tensor*> outs(static_cast<std::size_t>(n_steps), nullptr);
  if (cap != nullptr) {
    cap->clear();
    cap->resize(static_cast<std::size_t>(n_steps));
  }

  // Save/restore all thread-local gates so a compiled forward nested in
  // other work leaves the calling thread exactly as it found it.
  const ExecMode saved_mode = exec_mode();
  const QLayerBinding* saved_binding = current_qlayer();
  const FloatFusion* saved_fusion = current_float_fusion();
  std::atomic<std::int64_t> sat{0};

  for (int i = 0; i < n_steps; ++i) {
    const CompiledStep& st = steps_[i];
    if (st.layer->kind() == LayerKind::kInput) {
      outs[static_cast<std::size_t>(i)] = &input;
      if (cap != nullptr) (*cap)[static_cast<std::size_t>(i)] = input;
      continue;
    }

    std::vector<const Tensor*> ins;
    ins.reserve(st.inputs.size());
    for (int in : st.inputs) {
      const Tensor* t = outs[static_cast<std::size_t>(in)];
      assert(t != nullptr && "compiled step consumed before produced");
      ins.push_back(t);
    }
    std::vector<Shape> in_shapes;
    in_shapes.reserve(ins.size());
    for (const Tensor* t : ins) in_shapes.push_back(t->shape());
    Tensor& out = local[static_cast<std::size_t>(i)];
    const Shape os = st.layer->output_shape(in_shapes);
    if (out.shape() != os) out = Tensor(os);

    if (st.lowered) {
      const QGrid ag = qgrid_for(st.lw.act_fmt);
      const QGrid wg = qgrid_for(st.lw.w_fmt);
      QLayerBinding b;
      b.type = st.lw.type;
      b.weights = st.lw.weights_ptr();
      b.bias = st.lw.bias.empty() ? nullptr : st.lw.bias.data();
      b.act_step = ag.step;
      b.act_lo = ag.lo;
      b.act_hi = ag.hi;
      b.acc_scale = ag.step * wg.step;
      b.act_saturated = &sat;
      b.in_quantized = st.in_quantized;
      b.quant_store = st.quant_store;
      b.store_requant = st.store_requant;
      b.store_lo = st.store_grid.lo;
      b.store_hi = st.store_grid.hi;
      b.relu = st.relu;
      set_exec_mode(ExecMode::kInteger);
      set_current_qlayer(&b);
      st.layer->forward(ins, out);
      set_current_qlayer(saved_binding);
      set_exec_mode(saved_mode);
    } else if (st.relu || !st.norm_scale.empty()) {
      FloatFusion fu;
      fu.relu = st.relu;
      if (!st.norm_scale.empty()) {
        fu.scale = st.norm_scale.data();
        fu.shift = st.norm_shift.data();
      }
      set_current_float_fusion(&fu);
      st.layer->forward(ins, out);
      set_current_float_fusion(saved_fusion);
    } else {
      st.layer->forward(ins, out);
    }
    outs[static_cast<std::size_t>(i)] = &out;
    if (cap != nullptr) (*cap)[static_cast<std::size_t>(i)] = out;
  }

  const std::int64_t total_sat = sat.load(std::memory_order_relaxed);
  if (total_sat != 0) {
    act_saturated_.fetch_add(total_sat, std::memory_order_relaxed);
    if (metrics_enabled()) {
      static Counter& c = metrics().counter("compile.act.saturated");
      c.add(total_sat);
    }
  }
  return std::move(local[static_cast<std::size_t>(output_step_)]);
}

}  // namespace mupod
