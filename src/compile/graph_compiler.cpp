#include "compile/graph_compiler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "compile/compiled_network.hpp"
#include "nn/layers.hpp"
#include "obs/metrics.hpp"

namespace mupod {
namespace {

constexpr RewriteRule kDefaultOrder[] = {RewriteRule::kDropNoop, RewriteRule::kFoldNorm,
                                         RewriteRule::kFuseReLU};

bool is_dot_product(LayerKind k) {
  return k == LayerKind::kConv || k == LayerKind::kInnerProduct;
}

// src ids of executing nodes that read `u` (inputs are kept resolved, so
// a plain scan is exact).
int count_live_consumers(const std::vector<IrNode>& ir, int u, int* only) {
  int count = 0;
  for (const IrNode& n : ir) {
    if (n.absorbed_into >= 0) continue;
    for (int in : n.inputs) {
      if (in == u) {
        ++count;
        *only = n.src;
        break;  // one consumer counts once even if it reads u twice
      }
    }
  }
  return count;
}

// Re-resolves every executing node's inputs after an absorption.
void rewire(std::vector<IrNode>& ir, const CompiledGraph& g) {
  for (IrNode& n : ir) {
    if (n.absorbed_into >= 0) continue;
    for (int& in : n.inputs) in = g.resolve(in);
  }
}

struct Rewriter {
  const Network& net;
  const CompileOptions& opts;
  CompiledGraph g;

  bool apply_drop_noop() {
    if (!opts.drop_noops) return false;
    bool changed = false;
    for (IrNode& v : g.nodes) {
      if (v.absorbed_into >= 0) continue;
      if (v.kind != LayerKind::kDropout && v.kind != LayerKind::kFlatten) continue;
      if (v.kind == LayerKind::kFlatten) {
        // A flatten changes the logical shape, so it is only transparent
        // when every consumer is an inner product (which flattens by
        // construction) — and never as the output node, whose shape the
        // caller observes. NCHW flatten moves no elements, so the data
        // handoff is exact.
        if (v.src == net.output_node()) continue;
        bool ok = false;
        for (const IrNode& w : g.nodes) {
          if (w.absorbed_into >= 0) continue;
          for (int in : w.inputs) {
            if (in != v.src) continue;
            if (w.kind != LayerKind::kInnerProduct) {
              ok = false;
              goto decided;
            }
            ok = true;
          }
        }
      decided:
        if (!ok) continue;
      }
      v.absorbed_into = v.inputs[0];
      v.noop_dropped = true;
      rewire(g.nodes, g);
      changed = true;
    }
    return changed;
  }

  bool apply_fold_norm() {
    if (!opts.fold_norm) return false;
    bool changed = false;
    for (IrNode& v : g.nodes) {
      if (v.absorbed_into >= 0 || v.kind != LayerKind::kBatchNormScale) continue;
      IrNode& u = g.nodes[static_cast<std::size_t>(v.inputs[0])];
      // Conv only: BatchNormScale is rank-4, so it never follows an inner
      // product. One norm per conv, and never across a fused ReLU — the
      // store epilogue applies norm-then-relu, which would reorder
      // conv->ReLU->BN.
      if (u.kind != LayerKind::kConv || u.relu_fused || u.norm_src >= 0) continue;
      int only = -1;
      if (count_live_consumers(g.nodes, u.src, &only) != 1) continue;
      u.norm_src = v.src;
      v.absorbed_into = u.src;
      rewire(g.nodes, g);
      changed = true;
    }
    return changed;
  }

  bool apply_fuse_relu() {
    if (!opts.fuse_relu) return false;
    bool changed = false;
    for (IrNode& v : g.nodes) {
      if (v.absorbed_into >= 0 || v.kind != LayerKind::kReLU) continue;
      IrNode& u = g.nodes[static_cast<std::size_t>(v.inputs[0])];
      if (!is_dot_product(u.kind) || u.relu_fused) continue;
      int only = -1;
      if (count_live_consumers(g.nodes, u.src, &only) != 1) continue;
      u.relu_fused = true;
      v.absorbed_into = u.src;
      rewire(g.nodes, g);
      changed = true;
    }
    return changed;
  }

  bool apply(RewriteRule r) {
    switch (r) {
      case RewriteRule::kDropNoop: return apply_drop_noop();
      case RewriteRule::kFoldNorm: return apply_fold_norm();
      case RewriteRule::kFuseReLU: return apply_fuse_relu();
    }
    return false;
  }
};

// max |w| of the node's weights with the folded norm scale applied the
// same way the lowering will build the folded tensor (per-element float
// product, then |.| in double) — so the storage-type decision here and
// the w_fmt lower_layer_operands derives from the folded tensor agree
// exactly.
double folded_wmax(const Network& net, const IrNode& n) {
  const Tensor* w = net.layer(n.src).weights();
  const float* wd = w->data();
  double wmax = 0.0;
  if (n.norm_src >= 0) {
    const auto& bn = static_cast<const BatchNormScaleLayer&>(net.layer(n.norm_src));
    const float* sc = bn.scale().data();
    const int oc_n = w->shape().dim(0);
    const std::int64_t per_oc = w->numel() / oc_n;
    for (int oc = 0; oc < oc_n; ++oc) {
      const float s = sc[oc];
      const float* row = wd + static_cast<std::int64_t>(oc) * per_oc;
      for (std::int64_t j = 0; j < per_oc; ++j) {
        const float fw = row[j] * s;
        wmax = std::max(wmax, std::abs(static_cast<double>(fw)));
      }
    }
  } else {
    for (std::int64_t j = 0; j < w->numel(); ++j)
      wmax = std::max(wmax, std::abs(static_cast<double>(wd[j])));
  }
  return wmax;
}

void note_compile_metrics(const FusionCoverage& c) {
  if (!metrics_enabled()) return;
  static Counter& calls = metrics().counter("compile.calls");
  static Counter& relu = metrics().counter("compile.relu_fused");
  static Counter& norm = metrics().counter("compile.norm_folded");
  static Counter& noops = metrics().counter("compile.noops_dropped");
  static Counter& elided = metrics().counter("compile.qdq_elided");
  static Counter& regions = metrics().counter("compile.regions");
  calls.add(1);
  relu.add(c.relu_fused);
  norm.add(c.norm_folded);
  noops.add(c.noops_dropped);
  elided.add(c.qdq_elided);
  regions.add(c.regions);
}

}  // namespace

int CompiledGraph::resolve(int src) const {
  while (nodes[static_cast<std::size_t>(src)].absorbed_into >= 0)
    src = nodes[static_cast<std::size_t>(src)].absorbed_into;
  return src;
}

CompiledGraph GraphCompiler::rewrite(const Network& net) const {
  return rewrite(net, {}, {});
}

CompiledGraph GraphCompiler::rewrite(const Network& net, const std::vector<int>& analyzed,
                                     const std::vector<FixedPointFormat>& formats) const {
  return rewrite_with_order(net, analyzed, formats, kDefaultOrder);
}

CompiledGraph GraphCompiler::rewrite_with_order(const Network& net,
                                                const std::vector<int>& analyzed,
                                                const std::vector<FixedPointFormat>& formats,
                                                std::span<const RewriteRule> order) const {
  assert(net.finalized());
  assert(analyzed.size() == formats.size());

  Rewriter rw{net, opts_, {}};
  CompiledGraph& g = rw.g;
  g.nodes.resize(static_cast<std::size_t>(net.num_nodes()));
  for (int id = 0; id < net.num_nodes(); ++id) {
    IrNode& n = g.nodes[static_cast<std::size_t>(id)];
    n.src = id;
    n.kind = net.layer(id).kind();
    n.inputs = net.node(id).inputs;
  }

  // Mark plan coverage up front (act formats only; the weight format
  // depends on fold-norm and is derived after the structural fixpoint).
  for (std::size_t i = 0; i < analyzed.size(); ++i) {
    const int id = analyzed[i];
    const Tensor* w = net.layer(id).weights();
    if (w == nullptr || w->numel() == 0) continue;
    IrNode& n = g.nodes[static_cast<std::size_t>(id)];
    n.lowered = true;
    n.act_fmt = formats[i];
  }

  // Structural rules to a fixpoint. The rule set is confluent (each
  // firing removes one single-consumer node, marks its producer, and no
  // firing invalidates another), so the result is order-independent —
  // asserted by the metamorphic battery.
  bool changed = true;
  while (changed) {
    changed = false;
    for (RewriteRule r : order) changed = rw.apply(r) || changed;
  }

  // Canonicalize absorption chains. A firing records the producer as of
  // the moment it fired, and rewire() only touches live nodes — so an
  // absorbed node can be left pointing at an intermediate that was
  // itself absorbed later, a stale hop whose identity depends on rule
  // order even though resolve() does not. Collapsing every chain (and
  // every absorbed node's inputs) to the live endpoint makes the graph a
  // canonical function of the firing SET, which is what the rule-order
  // metamorphic tests compare.
  for (IrNode& n : g.nodes) {
    if (n.absorbed_into >= 0) n.absorbed_into = g.resolve(n.absorbed_into);
    for (int& in : n.inputs) in = g.resolve(in);
  }

  // Storage types, from the FOLDED weights.
  for (IrNode& n : g.nodes) {
    if (n.absorbed_into >= 0 || !n.lowered) continue;
    n.w_fmt.integer_bits = FixedPointFormat::integer_bits_for_range(folded_wmax(net, n));
    n.w_fmt.fraction_bits = opts_.weight_bits - n.w_fmt.integer_bits;
    n.type = qtype_for_bits(std::max(n.act_fmt.total_bits(), n.w_fmt.total_bits()));
  }

  // Region formation: a deterministic function of the rewritten graph
  // (not part of the permutable rule set). A lowered node whose ONLY
  // consumer is another lowered node of the same storage type stores its
  // output requantized straight onto that consumer's activation grid.
  if (opts_.elide_requant) {
    for (IrNode& u : g.nodes) {
      if (u.absorbed_into >= 0 || !u.lowered) continue;
      int only = -1;
      if (count_live_consumers(g.nodes, u.src, &only) != 1) continue;
      IrNode& v = g.nodes[static_cast<std::size_t>(only)];
      if (!v.lowered || v.type != u.type) continue;
      assert(v.inputs.size() == 1 && v.inputs[0] == u.src);
      u.quant_store = true;
      u.quant_consumer = v.src;
      v.in_quantized = true;
    }
  }

  // Coverage counters, derived from the final node flags.
  FusionCoverage& c = g.coverage;
  c.source_nodes = net.num_nodes();
  for (const IrNode& n : g.nodes) {
    if (n.absorbed_into >= 0) {
      if (n.noop_dropped) ++c.noops_dropped;
      continue;
    }
    ++c.steps;
    if (n.lowered) ++c.lowered;
    if (n.relu_fused) ++c.relu_fused;
    if (n.norm_src >= 0) ++c.norm_folded;
    if (n.quant_store) ++c.qdq_elided;
  }
  for (const IrNode& n : g.nodes) {
    if (n.absorbed_into >= 0 || !n.quant_store || n.in_quantized) continue;
    int len = 1, cur = n.src;
    while (g.nodes[static_cast<std::size_t>(cur)].quant_store) {
      cur = g.nodes[static_cast<std::size_t>(cur)].quant_consumer;
      ++len;
    }
    ++c.regions;
    c.largest_region = std::max(c.largest_region, len);
  }
  return g;
}

CompiledNetwork GraphCompiler::compile(const Network& net) const {
  return compile(net, {}, {});
}

CompiledNetwork GraphCompiler::compile(const Network& net, const std::vector<int>& analyzed,
                                       const std::vector<FixedPointFormat>& formats) const {
  CompiledGraph g = rewrite(net, analyzed, formats);
  note_compile_metrics(g.coverage);
  return CompiledNetwork(net, std::move(g), opts_);
}

std::string render_fusion_coverage(const std::string& tag, const FusionCoverage& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s nodes=%d steps=%d lowered=%d relu_fused=%d norm_folded=%d noops_dropped=%d "
                "qdq_elided=%d regions=%d largest_region=%d",
                tag.c_str(), c.source_nodes, c.steps, c.lowered, c.relu_fused, c.norm_folded,
                c.noops_dropped, c.qdq_elided, c.regions, c.largest_region);
  return buf;
}

}  // namespace mupod
