// Search-based per-layer bitwidth assignment — the state of the art the
// paper compares against (Stripes [1], Loom [2], and the profile-search
// method of Judd et al. [3]).
//
// Two baselines:
//   * uniform_baseline: the smallest single bitwidth applied to every
//     layer that meets the accuracy constraint (what the paper uses when
//     no published Stripes bitwidths exist for a network);
//   * profile_search_baseline: Judd-style per-layer profiling (minimum
//     bitwidth per layer with only that layer quantized) followed by an
//     iterative joint repair loop — the "empirical search that repeatedly
//     assigns bitwidths followed by testing" of the paper's introduction.
#pragma once

#include <string>
#include <vector>

#include "core/harness.hpp"

namespace mupod {

struct BaselineConfig {
  double relative_accuracy_drop = 0.01;
  int min_bits = 2;
  int max_bits = 16;
  // Joint repair iterations for the profile search.
  int max_joint_iterations = 24;
};

struct BaselineResult {
  std::string method;
  std::vector<int> bits;   // per analyzed layer
  double accuracy = 0.0;   // with every layer quantized to `bits`
  int accuracy_evaluations = 0;
};

BaselineResult uniform_baseline(const AnalysisHarness& harness, const BaselineConfig& cfg = {});

BaselineResult profile_search_baseline(const AnalysisHarness& harness,
                                       const BaselineConfig& cfg = {});

}  // namespace mupod
