#include "baseline/search_baseline.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/allocator.hpp"
#include "quant/fixed_point.hpp"

namespace mupod {

namespace {

FixedPointFormat format_for(double range, int bits) {
  FixedPointFormat f;
  f.integer_bits = FixedPointFormat::integer_bits_for_range(range);
  f.fraction_bits = bits - f.integer_bits;
  return f;
}

std::unordered_map<int, InjectionSpec> quantize_all(const AnalysisHarness& harness,
                                                    const std::vector<int>& bits) {
  std::unordered_map<int, InjectionSpec> inject;
  const auto& analyzed = harness.analyzed();
  for (std::size_t k = 0; k < analyzed.size(); ++k) {
    inject.emplace(analyzed[k],
                   InjectionSpec::quantize(format_for(harness.input_ranges()[k], bits[k])));
  }
  return inject;
}

}  // namespace

BaselineResult uniform_baseline(const AnalysisHarness& harness, const BaselineConfig& cfg) {
  const double threshold = (1.0 - cfg.relative_accuracy_drop) * harness.float_accuracy();
  const int L = harness.num_layers();
  BaselineResult res;
  res.method = "uniform";

  const auto accuracy_at = [&](int b) {
    std::vector<int> bits(static_cast<std::size_t>(L), b);
    ++res.accuracy_evaluations;
    return harness.accuracy_with_injection(quantize_all(harness, bits));
  };

  // Binary search the smallest satisfying uniform bitwidth.
  int lo = cfg.min_bits, hi = cfg.max_bits;
  double acc_hi = accuracy_at(hi);
  int best = hi;
  double best_acc = acc_hi;
  if (acc_hi >= threshold) {
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      const double acc = accuracy_at(mid);
      if (acc >= threshold) {
        best = mid;
        best_acc = acc;
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  res.bits.assign(static_cast<std::size_t>(L), best);
  res.accuracy = best_acc;
  return res;
}

BaselineResult profile_search_baseline(const AnalysisHarness& harness,
                                       const BaselineConfig& cfg) {
  const double threshold = (1.0 - cfg.relative_accuracy_drop) * harness.float_accuracy();
  const int L = harness.num_layers();
  const auto& analyzed = harness.analyzed();
  BaselineResult res;
  res.method = "profile_search";

  // Stage 1: per-layer profile. Evaluate every (layer, bitwidth) candidate
  // with only that layer quantized; the harness amortizes this over shared
  // activation caches.
  const int n_bits = cfg.max_bits - cfg.min_bits + 1;
  std::vector<std::pair<int, InjectionSpec>> candidates;
  candidates.reserve(static_cast<std::size_t>(L * n_bits));
  for (int k = 0; k < L; ++k) {
    for (int b = cfg.min_bits; b <= cfg.max_bits; ++b) {
      candidates.emplace_back(
          analyzed[static_cast<std::size_t>(k)],
          InjectionSpec::quantize(format_for(harness.input_ranges()[static_cast<std::size_t>(k)], b)));
    }
  }
  const std::vector<double> acc = harness.accuracy_single_injections(candidates);
  res.accuracy_evaluations += static_cast<int>(candidates.size());

  // acc_table[k][b - min_bits]
  const auto acc_of = [&](int k, int b) {
    return acc[static_cast<std::size_t>(k * n_bits + (b - cfg.min_bits))];
  };

  res.bits.assign(static_cast<std::size_t>(L), cfg.max_bits);
  for (int k = 0; k < L; ++k) {
    for (int b = cfg.min_bits; b <= cfg.max_bits; ++b) {
      if (acc_of(k, b) >= threshold) {
        res.bits[static_cast<std::size_t>(k)] = b;
        break;
      }
    }
  }

  // Stage 2: joint repair, as in Judd et al.: simultaneous quantization
  // compounds the error, so scale the whole profile up uniformly (+1 bit
  // to every layer) until the joint test passes. (A smarter repair that
  // bumps only the most fragile layers is possible, but the published
  // baselines the paper compares against used uniform scaling.)
  double joint = harness.accuracy_with_injection(quantize_all(harness, res.bits));
  ++res.accuracy_evaluations;
  for (int it = 0; it < cfg.max_joint_iterations && joint < threshold; ++it) {
    int bumped = 0;
    for (std::size_t k = 0; k < static_cast<std::size_t>(L); ++k) {
      if (res.bits[k] < cfg.max_bits) {
        ++res.bits[k];
        ++bumped;
      }
    }
    if (bumped == 0) break;  // everything at max already
    joint = harness.accuracy_with_injection(quantize_all(harness, res.bits));
    ++res.accuracy_evaluations;
  }
  res.accuracy = joint;
  return res;
}

}  // namespace mupod
