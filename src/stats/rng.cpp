#include "stats/rng.hpp"

#include <cmath>
#include <numbers>

namespace mupod {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free for our purposes; modulo bias is negligible for n << 2^64.
  return next_u64() % n;
}

Rng Rng::fork() {
  std::uint64_t seed = next_u64();
  return Rng(splitmix64(seed));
}

}  // namespace mupod
