// Streaming descriptive statistics (Welford) and quantiles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mupod {

// Numerically stable streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  // Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& o);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance / stddev (divide by n) — matches how the paper
  // measures the s.d. of an error tensor.
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  // Sample variance (divide by n-1).
  double sample_variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// q in [0,1]; linear interpolation between order statistics. Copies data.
double quantile(std::span<const double> xs, double q);

double mean_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);

}  // namespace mupod
