#include "stats/regression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace mupod {

double LinearFit::invert(double y) const {
  assert(slope != 0.0);
  return (y - intercept) / slope;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit f;
  const std::size_t n = xs.size();
  if (n < 2 || ys.size() != n) return f;

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return f;

  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.n = static_cast<int>(n);

  if (syy == 0.0) {
    f.r2 = 1.0;  // ys constant and perfectly predicted by a flat line
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = ys[i] - f.predict(xs[i]);
      ss_res += e * e;
    }
    f.r2 = 1.0 - ss_res / syy;
  }
  return f;
}

LinearFit fit_linear_no_intercept(std::span<const double> xs, std::span<const double> ys) {
  LinearFit f;
  const std::size_t n = xs.size();
  if (n < 1 || ys.size() != n) return f;

  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  if (sxx == 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = 0.0;
  f.n = static_cast<int>(n);

  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) sy += ys[i];
  const double my = sy / static_cast<double>(n);
  double syy = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    syy += (ys[i] - my) * (ys[i] - my);
    const double e = ys[i] - f.predict(xs[i]);
    ss_res += e * e;
  }
  f.r2 = syy == 0.0 ? 1.0 : 1.0 - ss_res / syy;
  return f;
}

LinearFit fit_theil_sen(std::span<const double> xs, std::span<const double> ys) {
  LinearFit f;
  const std::size_t n = xs.size();
  if (n < 2 || ys.size() != n) return f;

  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[j] - xs[i];
      if (dx == 0.0) continue;
      slopes.push_back((ys[j] - ys[i]) / dx);
    }
  }
  if (slopes.empty()) return f;  // all xs identical
  const auto median_of = [](std::vector<double>& v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
    if (v.size() % 2 == 1) return v[mid];
    const double hi = v[mid];
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid - 1), v.end());
    return 0.5 * (v[mid - 1] + hi);
  };
  f.slope = median_of(slopes);

  std::vector<double> residuals(n);
  for (std::size_t i = 0; i < n; ++i) residuals[i] = ys[i] - f.slope * xs[i];
  f.intercept = median_of(residuals);
  f.n = static_cast<int>(n);

  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) sy += ys[i];
  const double my = sy / static_cast<double>(n);
  double syy = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    syy += (ys[i] - my) * (ys[i] - my);
    const double e = ys[i] - f.predict(xs[i]);
    ss_res += e * e;
  }
  f.r2 = syy == 0.0 ? 1.0 : 1.0 - ss_res / syy;
  return f;
}

}  // namespace mupod
