// Fixed-bin histogram and a Kolmogorov-Smirnov check against N(mu, sigma).
// Used to reproduce the right panel of the paper's Fig. 3 (the final-layer
// error is approximately Gaussian).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mupod {

class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void add_all(std::span<const float> xs);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  long long count(int bin) const { return counts_[static_cast<std::size_t>(bin)]; }
  long long total() const { return total_; }
  long long underflow() const { return underflow_; }
  long long overflow() const { return overflow_; }
  double bin_center(int bin) const;
  // Normalized density of a bin (integrates to ~1 over [lo, hi]).
  double density(int bin) const;

  // ASCII rendering for bench/report output.
  std::string render(int width = 60) const;

 private:
  double lo_, hi_;
  std::vector<long long> counts_;
  long long total_ = 0;
  long long underflow_ = 0;
  long long overflow_ = 0;
};

// Standard normal CDF.
double normal_cdf(double x);

// One-sample Kolmogorov-Smirnov statistic of xs against N(mean, stddev).
// Operates on a sorted copy; for large samples a subsample cap keeps it
// cheap (cap <= 0 means no cap).
double ks_statistic_vs_normal(std::span<const double> xs, double mean, double stddev,
                              int subsample_cap = 100000);

}  // namespace mupod
