// Ordinary least squares y = a*x + b — the fitting primitive behind the
// paper's Eq. 5 (Delta_XK ~= lambda_K * sigma_{Y_{K->L}} + theta_K).
#pragma once

#include <span>

namespace mupod {

struct LinearFit {
  double slope = 0.0;      // lambda
  double intercept = 0.0;  // theta
  double r2 = 0.0;         // coefficient of determination
  int n = 0;

  double predict(double x) const { return slope * x + intercept; }
  // Inverse prediction x = (y - intercept) / slope.
  double invert(double y) const;
};

// Fits y ~= slope*x + intercept. Requires xs.size() == ys.size() >= 2 and
// non-degenerate xs (not all identical); otherwise returns a zero fit with
// n = 0.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

// Fit through the origin: y ~= slope*x (used by the theta-ablation bench).
LinearFit fit_linear_no_intercept(std::span<const double> xs, std::span<const double> ys);

// Theil–Sen robust fit: slope = median of pairwise slopes, intercept =
// median of (y - slope*x). Tolerates a minority of wild outliers (e.g.
// sweep points poisoned by saturated activations) that would wreck the
// OLS fit; O(n^2) in the number of points, fine for profiling sweeps.
// r2 is computed against the data like fit_linear's. Same degenerate-input
// contract as fit_linear (returns a zero fit with n = 0).
LinearFit fit_theil_sen(std::span<const double> xs, std::span<const double> ys);

}  // namespace mupod
