#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mupod {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  assert(hi > lo && bins > 0);
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double f = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::add_all(std::span<const float> xs) {
  for (float x : xs) add(x);
}

double Histogram::bin_center(int bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::density(int bin) const {
  if (total_ == 0) return 0.0;
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return static_cast<double>(counts_[static_cast<std::size_t>(bin)]) /
         (static_cast<double>(total_) * w);
}

std::string Histogram::render(int width) const {
  long long peak = 1;
  for (long long c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (int b = 0; b < bins(); ++b) {
    const int len = static_cast<int>(static_cast<double>(count(b)) / static_cast<double>(peak) *
                                     width);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+8.3f | ", bin_center(b));
    os << buf << std::string(static_cast<std::size_t>(len), '#') << '\n';
  }
  return os.str();
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double ks_statistic_vs_normal(std::span<const double> xs, double mean, double stddev,
                              int subsample_cap) {
  if (xs.empty() || stddev <= 0.0) return 1.0;
  std::vector<double> v;
  if (subsample_cap > 0 && xs.size() > static_cast<std::size_t>(subsample_cap)) {
    const std::size_t stride = xs.size() / static_cast<std::size_t>(subsample_cap);
    for (std::size_t i = 0; i < xs.size(); i += stride) v.push_back(xs[i]);
  } else {
    v.assign(xs.begin(), xs.end());
  }
  std::sort(v.begin(), v.end());
  const double n = static_cast<double>(v.size());
  double d = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double cdf = normal_cdf((v[i] - mean) / stddev);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(cdf - lo), std::fabs(hi - cdf)));
  }
  return d;
}

}  // namespace mupod
