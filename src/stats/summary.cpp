#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mupod {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double total = static_cast<double>(n_ + o.n_);
  const double delta = o.mean_ - mean_;
  m2_ += o.m2_ + delta * delta * (static_cast<double>(n_) * static_cast<double>(o.n_)) / total;
  mean_ += delta * static_cast<double>(o.n_) / total;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double mu = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace mupod
