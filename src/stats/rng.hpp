// Deterministic random number generation for the error-injection passes.
//
// Every stochastic component of the framework takes an explicit seed so
// the experiment tables are reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace mupod {

// splitmix64: used to derive decorrelated stream seeds from a base seed.
std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256** — a small, fast, high-quality PRNG. Value-semantic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box-Muller (cached spare).
  double gaussian();
  double gaussian(double mean, double stddev);
  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  // Derive a decorrelated child stream (e.g. one per worker thread).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mupod
