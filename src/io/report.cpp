#include "io/report.hpp"

#include <fstream>
#include <sstream>

#include "io/table.hpp"

namespace mupod {

std::string render_report(const Network& net, const std::vector<int>& analyzed,
                          const PipelineResult& result, const ReportOptions& opts) {
  std::ostringstream os;
  os << "# " << opts.title << "\n\n";
  os << "Network `" << net.name() << "`: " << net.num_nodes() << " nodes, " << analyzed.size()
     << " analyzed layers, " << net.total_macs() << " MACs/image, " << net.total_input_elems()
     << " input elements/image.\n\n";
  os << "Error budget `sigma_YL = " << TextTable::fmt(result.sigma.sigma_yl, 4) << "` found in "
     << result.sigma.evaluations << " accuracy evaluations (accuracy at budget: "
     << TextTable::fmt(result.sigma.accuracy_at_sigma * 100, 2) << "%).\n\n";

  if (opts.include_lambda_theta) {
    os << "## Per-layer error propagation (Eq. 5)\n\n";
    TextTable t({"layer", "max|X|", "lambda", "theta", "R^2"});
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      t.add_row({net.node(analyzed[k]).name, TextTable::fmt(result.ranges[k], 2),
                 TextTable::fmt(result.models[k].lambda, 4),
                 TextTable::fmt(result.models[k].theta, 5),
                 TextTable::fmt(result.models[k].r2, 4)});
    }
    os << t.render_markdown() << '\n';
  }

  for (const ObjectiveResult& obj : result.objectives) {
    os << "## Objective `" << obj.spec.name << "`\n\n";
    os << "- sigma used: " << TextTable::fmt(obj.sigma_used, 4);
    if (obj.refinements > 0) os << " (after " << obj.refinements << " refinement(s))";
    os << "\n- validated accuracy: " << TextTable::fmt(obj.validated_accuracy * 100, 2) << "%\n";
    if (obj.weight_bits > 0) os << "- uniform weight bitwidth: " << obj.weight_bits << "\n";
    os << '\n';

    std::vector<std::string> header = {"layer", "format I.F", "bits", "Delta"};
    if (opts.include_xi) header.push_back("xi");
    TextTable t(header);
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      std::vector<std::string> row = {net.node(analyzed[k]).name,
                                      obj.alloc.formats[k].to_string(),
                                      std::to_string(obj.alloc.bits[k]),
                                      TextTable::fmt(obj.alloc.deltas[k], 5)};
      if (opts.include_xi) row.push_back(TextTable::fmt(obj.alloc.xi[k], 4));
      t.add_row(row);
    }
    os << t.render_markdown() << '\n';
  }

  os << "## Timings\n\n";
  TextTable t({"stage", "ms"});
  t.add_row({"harness", TextTable::fmt(result.timings.harness_ms, 1)});
  t.add_row({"profile", TextTable::fmt(result.timings.profile_ms, 1)});
  t.add_row({"sigma search", TextTable::fmt(result.timings.sigma_ms, 1)});
  t.add_row({"allocate", TextTable::fmt(result.timings.allocate_ms, 1)});
  t.add_row({"validate", TextTable::fmt(result.timings.validate_ms, 1)});
  t.add_row({"weight search", TextTable::fmt(result.timings.weights_ms, 1)});
  os << t.render_markdown();
  return os.str();
}

bool write_report(const std::string& path, const Network& net, const std::vector<int>& analyzed,
                  const PipelineResult& result, const ReportOptions& opts) {
  std::ofstream f(path);
  if (!f) return false;
  f << render_report(net, analyzed, result, opts);
  return static_cast<bool>(f);
}

}  // namespace mupod
