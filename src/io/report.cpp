#include "io/report.hpp"

#include <fstream>
#include <sstream>

#include "io/table.hpp"
#include "obs/metrics.hpp"

namespace mupod {

std::string render_report(const Network& net, const std::vector<int>& analyzed,
                          const PipelineResult& result, const ReportOptions& opts) {
  std::ostringstream os;
  os << "# " << opts.title << "\n\n";
  os << "Network `" << net.name() << "`: " << net.num_nodes() << " nodes, " << analyzed.size()
     << " analyzed layers, " << net.total_macs() << " MACs/image, " << net.total_input_elems()
     << " input elements/image.\n\n";
  if (result.sigma.bracket_ok()) {
    os << "Error budget `sigma_YL = " << TextTable::fmt(result.sigma.sigma_yl, 4) << "` found in "
       << result.sigma.evaluations << " accuracy evaluations (accuracy at budget: "
       << TextTable::fmt(result.sigma.accuracy_at_sigma * 100, 2) << "%).\n\n";
    if (result.sigma.status == SigmaSearchStatus::kUnbounded)
      os << "**Warning:** the accuracy constraint was never violated inside the probe "
            "range; the budget above is the largest probed value, not a converged "
            "bracket.\n\n";
  } else {
    os << "**Sigma search failed**: no noise budget satisfies the accuracy constraint ("
       << result.sigma.evaluations << " accuracy evaluations). All layers fall back to "
       << "their max profiled precision.\n\n";
  }

  if (opts.include_lambda_theta) {
    os << "## Per-layer error propagation (Eq. 5)\n\n";
    const auto fit_name = [](FitStatus s) {
      switch (s) {
        case FitStatus::kOk: return "ok";
        case FitStatus::kRobustRefit: return "robust refit";
        case FitStatus::kPinned: return "pinned";
      }
      return "?";
    };
    TextTable t({"layer", "max|X|", "lambda", "theta", "R^2", "fit"});
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      t.add_row({net.node(analyzed[k]).name, TextTable::fmt(result.ranges[k], 2),
                 TextTable::fmt(result.models[k].lambda, 4),
                 TextTable::fmt(result.models[k].theta, 5),
                 TextTable::fmt(result.models[k].r2, 4),
                 fit_name(result.models[k].fit_status)});
    }
    os << t.render_markdown() << '\n';
  }

  for (const ObjectiveResult& obj : result.objectives) {
    os << "## Objective `" << obj.spec.name << "`\n\n";
    os << "- sigma used: " << TextTable::fmt(obj.sigma_used, 4);
    if (obj.refinements > 0) os << " (after " << obj.refinements << " refinement(s))";
    os << "\n- validated accuracy: " << TextTable::fmt(obj.validated_accuracy * 100, 2) << "%\n";
    if (obj.weight_bits > 0) os << "- uniform weight bitwidth: " << obj.weight_bits << "\n";
    if (obj.alloc.solver_downgrades > 0 || !obj.alloc.solver_converged) {
      os << "- solver: " << xi_solver_name(obj.alloc.solver_used) << " ("
         << obj.alloc.solver_downgrades << " downgrade(s)"
         << (obj.alloc.solver_converged ? "" : ", NOT converged") << ")\n";
    }
    os << '\n';

    std::vector<std::string> header = {"layer", "format I.F", "bits", "Delta"};
    if (opts.include_xi) header.push_back("xi");
    TextTable t(header);
    for (std::size_t k = 0; k < analyzed.size(); ++k) {
      std::vector<std::string> row = {net.node(analyzed[k]).name,
                                      obj.alloc.formats[k].to_string(),
                                      std::to_string(obj.alloc.bits[k]),
                                      TextTable::fmt(obj.alloc.deltas[k], 5)};
      if (opts.include_xi) row.push_back(TextTable::fmt(obj.alloc.xi[k], 4));
      t.add_row(row);
    }
    os << t.render_markdown() << '\n';
  }

  if (!result.diagnostics.empty()) {
    os << "## Diagnostics\n\n";
    const auto layer_name = [&](int node) -> std::string {
      if (node < 0 || node >= net.num_nodes()) return "-";
      return net.node(node).name;
    };
    TextTable t({"severity", "stage", "layer", "message", "remediation"});
    for (const Diagnostic& d : result.diagnostics.entries()) {
      t.add_row({severity_name(d.severity), stage_name(d.stage), layer_name(d.layer), d.message,
                 d.remediation});
    }
    os << t.render_markdown() << '\n';
  }

  if (opts.include_timings) {
    os << "## Timings\n\n";
    TextTable t({"stage", "ms"});
    t.add_row({"harness", TextTable::fmt(result.timings.harness_ms, 1)});
    t.add_row({"profile", TextTable::fmt(result.timings.profile_ms, 1)});
    t.add_row({"sigma search", TextTable::fmt(result.timings.sigma_ms, 1)});
    t.add_row({"allocate", TextTable::fmt(result.timings.allocate_ms, 1)});
    t.add_row({"validate", TextTable::fmt(result.timings.validate_ms, 1)});
    t.add_row({"weight search", TextTable::fmt(result.timings.weights_ms, 1)});
    os << t.render_markdown();
  }

  if (opts.include_metrics) {
    const MetricsSnapshot snap = metrics().snapshot();
    os << (opts.include_timings ? "\n" : "") << "## Metrics\n\n";
    if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty()) {
      os << "No metrics recorded (enable with set_metrics_enabled(true) before the run).\n";
    } else {
      if (!snap.counters.empty() || !snap.gauges.empty()) {
        TextTable t({"metric", "value"});
        for (const auto& c : snap.counters) t.add_row({c.name, std::to_string(c.value)});
        for (const auto& g : snap.gauges) t.add_row({g.name, std::to_string(g.value)});
        os << t.render_markdown() << '\n';
      }
      if (!snap.histograms.empty()) {
        // Percentiles (HistogramMetric::summary), not raw bucket counts:
        // the report reader wants the latency shape, not the bucketing.
        TextTable t({"histogram", "count", "mean", "p50", "p90", "p99"});
        for (const auto& h : snap.histograms) {
          const HistogramSummary s = h.summary();
          t.add_row({h.name, std::to_string(h.count), TextTable::fmt(h.mean(), 3),
                     TextTable::fmt(s.p50, 3), TextTable::fmt(s.p90, 3),
                     TextTable::fmt(s.p99, 3)});
        }
        os << t.render_markdown();
      }
    }
  }
  return os.str();
}

bool write_report(const std::string& path, const Network& net, const std::vector<int>& analyzed,
                  const PipelineResult& result, const ReportOptions& opts) {
  std::ofstream f(path);
  if (!f) return false;
  f << render_report(net, analyzed, result, opts);
  return static_cast<bool>(f);
}

}  // namespace mupod
