#include "io/json_writer.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mupod {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Ctx::kObject) {
    assert(key_pending_ && "object members need key() before value()");
    key_pending_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Ctx::kObject && !key_pending_);
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Ctx::kArray);
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && stack_.back() == Ctx::kObject && !key_pending_);
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  pre_value();
  char buf[32];
  // %.17g round-trips doubles; trim to a cleaner %g when exact.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%g", v);
  std::sscanf(shorter, "%lf", &back);
  out_ += (back == v) ? shorter : buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

bool write_json_file(const std::string& path, const std::string& json) {
  std::ofstream f(path);
  if (!f) return false;
  f << json << '\n';
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace mupod
