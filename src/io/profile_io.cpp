#include "io/profile_io.hpp"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mupod {

namespace {

// Every parse failure names the line *and* shows its content: a corrupted
// or truncated file is debugged from the message alone, without reopening
// the file in an editor.
[[noreturn]] void parse_fail(const std::string& what, int line_no, const std::string& line) {
  throw std::runtime_error("profile: " + what + " at line " + std::to_string(line_no) + ": '" +
                           line + "'");
}

void require_finite(double v, const char* field, int line_no, const std::string& line) {
  if (!std::isfinite(v))
    parse_fail(std::string("non-finite ") + field, line_no, line);
}

}  // namespace

ProfileBundle make_profile_bundle(const Network& net, const std::vector<int>& analyzed,
                                  const PipelineResult& result) {
  assert(analyzed.size() == result.models.size());
  ProfileBundle b;
  b.network = net.name();
  b.net_hash = network_content_hash(net);
  b.sigma_yl = result.sigma.sigma_yl;
  b.sigma_calibrated = result.sigma_calibrated;
  b.models = result.models;
  b.ranges = result.ranges;
  b.layer_names.reserve(analyzed.size());
  for (int id : analyzed) {
    b.layer_names.push_back(net.node(id).name);
    b.input_elems.push_back(net.node(id).cost.input_elems);
    b.macs.push_back(net.node(id).cost.macs);
  }
  return b;
}

std::string serialize_profile(const ProfileBundle& bundle) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "mupod-profile v3\n";
  os << "network " << bundle.network << "\n";
  if (bundle.net_hash != 0)
    os << "nethash " << std::hex << bundle.net_hash << std::dec << "\n";
  os << "sigma " << bundle.sigma_yl << ' ' << bundle.sigma_calibrated << "\n";
  std::size_t n_points = 0;
  for (std::size_t k = 0; k < bundle.models.size(); ++k) {
    const LayerLinearModel& m = bundle.models[k];
    os << "layer " << k << ' ' << m.node << ' '
       << (k < bundle.layer_names.size() ? bundle.layer_names[k] : std::string("?")) << ' '
       << (k < bundle.ranges.size() ? bundle.ranges[k] : 0.0) << ' ' << m.lambda << ' '
       << m.theta << ' ' << m.r2 << ' '
       << (k < bundle.input_elems.size() ? bundle.input_elems[k] : 0) << ' '
       << (k < bundle.macs.size() ? bundle.macs[k] : 0) << ' '
       << static_cast<int>(m.fit_status) << "\n";
    for (std::size_t i = 0; i < m.deltas.size(); ++i)
      os << "point " << k << ' ' << m.deltas[i] << ' ' << m.sigmas[i] << "\n";
    n_points += m.deltas.size();
  }
  // Explicit end marker with counts: a file cut off at any line boundary
  // is detected as truncated instead of parsing as a smaller bundle.
  os << "end " << bundle.models.size() << ' ' << n_points << "\n";
  return os.str();
}

ProfileBundle parse_profile(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("profile: empty input (no header)");
  int version = 0;
  if (line.rfind("mupod-profile v1", 0) == 0) version = 1;
  else if (line.rfind("mupod-profile v2", 0) == 0) version = 2;
  else if (line.rfind("mupod-profile v3", 0) == 0) version = 3;
  else parse_fail("bad header (expected 'mupod-profile v1'..'v3')", 1, line);

  ProfileBundle b;
  int line_no = 1;
  std::size_t n_points = 0;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (saw_end) parse_fail("content after end marker", line_no, line);
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "network") {
      if (!(ls >> b.network)) parse_fail("bad network line", line_no, line);
    } else if (tag == "nethash") {
      if (!(ls >> std::hex >> b.net_hash)) parse_fail("bad nethash line", line_no, line);
      if (b.net_hash == 0) parse_fail("zero nethash", line_no, line);
    } else if (tag == "sigma") {
      if (!(ls >> b.sigma_yl >> b.sigma_calibrated))
        parse_fail("bad sigma line", line_no, line);
      require_finite(b.sigma_yl, "sigma", line_no, line);
      require_finite(b.sigma_calibrated, "calibrated sigma", line_no, line);
    } else if (tag == "layer") {
      std::size_t k = 0;
      LayerLinearModel m;
      std::string name;
      double range = 0.0;
      std::int64_t inputs = 0, macs = 0;
      if (!(ls >> k >> m.node >> name >> range >> m.lambda >> m.theta >> m.r2))
        parse_fail("bad layer line", line_no, line);
      ls >> inputs >> macs;  // optional (older files omit them)
      int fit_status = 0;
      if (ls >> fit_status) {  // v2 field; absent in v1
        if (fit_status < 0 || fit_status > static_cast<int>(FitStatus::kPinned))
          parse_fail("fit status out of range", line_no, line);
        m.fit_status = static_cast<FitStatus>(fit_status);
      }
      require_finite(range, "range", line_no, line);
      require_finite(m.lambda, "lambda", line_no, line);
      require_finite(m.theta, "theta", line_no, line);
      require_finite(m.r2, "r2", line_no, line);
      if (k != b.models.size())
        parse_fail("layers out of order (expected layer " + std::to_string(b.models.size()) + ")",
                   line_no, line);
      m.layer_index = static_cast<int>(k);
      b.models.push_back(m);
      b.ranges.push_back(range);
      b.layer_names.push_back(name);
      b.input_elems.push_back(inputs);
      b.macs.push_back(macs);
    } else if (tag == "point") {
      std::size_t k = 0;
      double delta = 0.0, sigma = 0.0;
      if (!(ls >> k >> delta >> sigma)) parse_fail("bad point line", line_no, line);
      if (k >= b.models.size())
        parse_fail("point references unknown layer " + std::to_string(k), line_no, line);
      require_finite(delta, "delta", line_no, line);
      require_finite(sigma, "sigma", line_no, line);
      b.models[k].deltas.push_back(delta);
      b.models[k].sigmas.push_back(sigma);
      ++n_points;
    } else if (tag == "end") {
      std::size_t n_layers_decl = 0, n_points_decl = 0;
      if (!(ls >> n_layers_decl >> n_points_decl)) parse_fail("bad end marker", line_no, line);
      if (n_layers_decl != b.models.size())
        parse_fail("end marker declares " + std::to_string(n_layers_decl) + " layers but " +
                       std::to_string(b.models.size()) + " were parsed",
                   line_no, line);
      if (n_points_decl != n_points)
        parse_fail("end marker declares " + std::to_string(n_points_decl) + " points but " +
                       std::to_string(n_points) + " were parsed",
                   line_no, line);
      saw_end = true;
    } else {
      parse_fail("unknown tag '" + tag + "'", line_no, line);
    }
  }
  if (version >= 2 && !saw_end)
    throw std::runtime_error(
        "profile: truncated input — v2 end marker missing (file cut off after line " +
        std::to_string(line_no) + ")");
  return b;
}

bool save_profile(const std::string& path, const ProfileBundle& bundle) {
  std::ofstream f(path);
  if (!f) return false;
  f << serialize_profile(bundle);
  f.flush();
  return static_cast<bool>(f);
}

ProfileBundle load_profile(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw std::runtime_error("cannot open profile '" + path + "': " + std::strerror(errno));
  std::ostringstream os;
  os << f.rdbuf();
  return parse_profile(os.str());
}

void check_profile_network(const ProfileBundle& bundle, const Network& net) {
  const auto hex = [](std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
  };
  if (bundle.net_hash != 0) {
    const std::uint64_t actual = network_content_hash(net);
    if (bundle.net_hash != actual)
      throw std::runtime_error(
          "profile was measured on a different network: profile nethash " +
          hex(bundle.net_hash) + " (network '" + bundle.network + "') vs target nethash " +
          hex(actual) + " (network '" + net.name() + "'); its lambda/theta models do not "
          "describe this network — re-profile instead of reusing the file");
    return;
  }
  // Pre-v3 file: the name is the only identity we have. A mismatch there
  // is certainly wrong; a match is accepted on trust.
  if (bundle.network != net.name())
    throw std::runtime_error("profile is for network '" + bundle.network +
                             "' but the target network is '" + net.name() + "'");
}

ProfileBundle load_profile_for(const std::string& path, const Network& net) {
  ProfileBundle b = load_profile(path);
  check_profile_network(b, net);
  return b;
}

}  // namespace mupod
